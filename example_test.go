package rmcast_test

// Runnable godoc examples for the public API. Outputs are deterministic
// because every stochastic component is seeded.

import (
	"fmt"

	"rmcast"
)

// ExampleStrategyFor computes one client's prioritized recovery list on a
// hand-built topology where the source is distant and a peer is nearby.
func ExampleStrategyFor() {
	b := rmcast.NewBuilder()
	src := b.Source()
	r1, r2 := b.Router(), b.Router()
	b.TreeLink(src, r1, 20) // slow long-haul toward the source
	b.TreeLink(r1, r2, 1)
	u := b.Client()
	b.TreeLink(r2, u, 1)
	peer := b.Client()
	b.TreeLink(r2, peer, 1)
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}

	st, err := rmcast.StrategyFor(topo, u, rmcast.DefaultPlannerOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("peers in plan: %d\n", len(st.Peers))
	fmt.Printf("first hop is the LAN peer: %v\n", len(st.Peers) > 0 && st.Peers[0].Peer == peer)
	fmt.Printf("expected delay beats the %v ms source RTT: %v\n",
		st.SourceRTT, st.ExpectedDelay < st.SourceRTT)
	// Output:
	// peers in plan: 1
	// first hop is the LAN peer: true
	// expected delay beats the 44 ms source RTT: true
}

// ExampleSimulate runs a deterministic session and prints the recovery
// outcome.
func ExampleSimulate() {
	topo, err := rmcast.NewTopology(rmcast.DefaultTopologyConfig(40), 7)
	if err != nil {
		panic(err)
	}
	cfg := rmcast.DefaultSessionConfig()
	cfg.Packets = 20
	res, err := rmcast.Simulate(topo, "RP", cfg, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("all %d losses recovered: %v\n",
		res.Stats.Losses, res.Stats.Recoveries == res.Stats.Losses)
	// Output:
	// all 100 losses recovered: true
}

// ExampleProtocols lists the registered recovery protocols.
func ExampleProtocols() {
	for _, p := range rmcast.Protocols() {
		fmt.Println(p)
	}
	// Output:
	// SRM
	// RMA
	// RP
	// RP-AWARE
	// RP-NOSRC
	// RP-NAK
	// RP-SUBGROUP
	// SRC
	// SRM-HONEST
	// SRM-ADAPT
	// FEC
	// ACK
}

// ExampleNewRoster shows incremental strategy maintenance under churn.
func ExampleNewRoster() {
	topo, err := rmcast.NewTopology(rmcast.DefaultTopologyConfig(80), 5)
	if err != nil {
		panic(err)
	}
	roster, err := rmcast.NewRoster(topo, rmcast.DefaultPlannerOptions())
	if err != nil {
		panic(err)
	}
	v := topo.Clients[0]
	affected, err := roster.Leave(v)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leave replanned %d of %d clients\n", len(affected), len(topo.Clients)-1)
	fmt.Printf("left member inactive: %v\n", !roster.Active(v))
	// Output:
	// leave replanned 4 of 32 clients
	// left member inactive: true
}

// ExampleLinkStateRouting runs a session over the converged OSPF-style
// substrate instead of the omniscient oracle.
func ExampleLinkStateRouting() {
	topo, err := rmcast.NewTopology(rmcast.DefaultTopologyConfig(40), 6)
	if err != nil {
		panic(err)
	}
	router, stats := rmcast.LinkStateRouting(topo, 0.1, 7)
	fmt.Printf("flooding converged: %v\n", stats.ConvergenceMs > 0 && stats.Messages > 0)

	cfg := rmcast.DefaultSessionConfig()
	cfg.Packets = 20
	res, err := rmcast.SimulateFull(topo, "RP", cfg, 8, router, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fully recovered: %v\n", res.Stats.Unrecovered == 0)
	// Output:
	// flooding converged: true
	// fully recovered: true
}
