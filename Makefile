# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race vet check bench bench-json bench-diff bench-parallel smoke-bench profile figures cover fuzz fuzz-short soak clean

all: build vet test

# The default verification gate: build, vet, tests, and the race detector
# over the parallel harness and routing tables.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One short benchmark pass over every suite (full runs: drop -benchtime).
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x ./...

# Same pass in machine-readable form, recorded per day so the perf
# trajectory is tracked across PRs (see EXPERIMENTS.md "Performance").
# Three whole suite passes appended to one file (NOT -count 3, which runs
# a benchmark's repeats back-to-back so one burst of CPU steal poisons
# them all): bench-diff keeps each cell's minimum across samples that are
# minutes apart, which is robust to time-correlated steal on a shared host.
bench-json:
	{ for i in 1 2 3; do $(GO) test -run xxx -bench . -benchmem -benchtime 3x -json ./...; done; } > BENCH_$$(date +%Y-%m-%d).json

# Compare the two newest BENCH_*.json captures: fails when a tracked
# benchmark (the Figure-5 macro benchmarks and the batch planner) regressed
# > 10% in ns/op or allocs/op.
bench-diff:
	@files="$$(ls -t BENCH_*.json 2>/dev/null | head -2)"; \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "bench-diff: need two BENCH_*.json captures (run 'make bench-json')"; exit 1; fi; \
	echo "comparing $$2 (old) -> $$1 (new)"; \
	$(GO) run ./cmd/benchdiff "$$2" "$$1"

# Cheap CI perf gate: one iteration of the n=50 macro benchmarks plus the
# allocation-budget tests, so a perf-hostile change fails fast without
# burning CI minutes on the full sweep. The n=1000 scaling cell also runs
# the O(N²) scan baseline and cross-verifies the fast path against it, and
# -simworkers adds a sharded simulation whose digest must match its serial
# twin exactly (the sweep exits nonzero on divergence).
smoke-bench:
	$(GO) test -run TestAllocs -count=1 ./internal/sim
	$(GO) test -run xxx -bench 'BenchmarkFigure5/n=50$$' -benchmem -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkCoopRecovery/n=100/chaos' -benchmem -benchtime 1x .
	$(GO) run ./cmd/rmsim -scaling -sizes 1000 -simworkers 4
	$(GO) run ./cmd/rmsim -scaling -sizes 1000 -simworkers 4 -domainsize 64
	$(GO) run ./cmd/rmsim -churn -routers 40 -packets 15
	$(GO) test -run xxx -bench 'BenchmarkFailover$$' -benchmem -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkStrategyService/readers=4/churn=2000$$' -benchmem -benchtime 1x ./internal/strategysvc

# Wall-clock serial-vs-sharded capture for the conservative parallel engine:
# every scaling cell runs one serial and one sharded RP simulation (digest
# equality enforced) and records both times as JSON for EXPERIMENTS.md.
# Override PARALLEL_SIZES / SIMWORKERS to probe other points; set
# DOMAINSIZE to run the sharded half in hierarchical-domain mode (e.g.
# `make bench-parallel PARALLEL_SIZES=200000,1000000 DOMAINSIZE=65536`
# for the million-client tier).
PARALLEL_SIZES ?= 1000,5000,20000,50000
SIMWORKERS ?= 8
DOMAINSIZE ?= 0
bench-parallel:
	$(GO) run ./cmd/rmsim -scaling -sizes $(PARALLEL_SIZES) -simworkers $(SIMWORKERS) -domainsize $(DOMAINSIZE) -json \
		| tee BENCH_PARALLEL_$$(date +%Y-%m-%d).json

# CPU+heap profile of a representative run; inspect with `go tool pprof`.
profile:
	$(GO) run ./cmd/rmsim -routers 200 -protocol all -parallel 1 \
		-cpuprofile cpu.out -memprofile mem.out
	@echo "view: $(GO) tool pprof cpu.out   /   $(GO) tool pprof mem.out"

# Regenerate the paper's figures and the ablation tables.
figures:
	$(GO) run ./cmd/figures

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzEvalAny -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzCondLossProb -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzSchedule -fuzztime 30s ./internal/fault
	$(GO) test -fuzz FuzzMutator -fuzztime 30s ./internal/experiment

# Quick fuzz pass for CI: a few seconds per target.
fuzz-short:
	$(GO) test -fuzz FuzzEvalAny -fuzztime 5s ./internal/core
	$(GO) test -fuzz FuzzCondLossProb -fuzztime 5s ./internal/core
	$(GO) test -fuzz FuzzSchedule -fuzztime 5s ./internal/fault
	$(GO) test -fuzz FuzzMutator -fuzztime 5s ./internal/experiment
	$(GO) test -fuzz FuzzCoopDecode -fuzztime 5s ./internal/protocol/coop
	$(GO) test -fuzz FuzzElection -fuzztime 5s ./internal/protocol/rpproto

# Long-haul adversarial soak: the full default mutation sweep at production
# scale plus max-intensity mutation layered over mid-severity chaos, strict
# invariant oracle on throughout. Minutes, not CI seconds.
soak:
	RMCAST_SOAK=1 $(GO) test -run TestAdversarialSoak -v -timeout 30m ./internal/experiment

clean:
	$(GO) clean ./...
