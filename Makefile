# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench figures cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One short benchmark pass over every suite (full runs: drop -benchtime).
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x ./...

# Regenerate the paper's figures and the ablation tables.
figures:
	$(GO) run ./cmd/figures

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzEvalAny -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzCondLossProb -fuzztime 30s ./internal/core

clean:
	$(GO) clean ./...
