# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race vet check bench bench-json figures cover fuzz fuzz-short soak clean

all: build vet test

# The default verification gate: build, vet, tests, and the race detector
# over the parallel harness and routing tables.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One short benchmark pass over every suite (full runs: drop -benchtime).
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x ./...

# Same pass in machine-readable form, recorded per day so the perf
# trajectory is tracked across PRs (see EXPERIMENTS.md "Performance").
bench-json:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x -json ./... > BENCH_$$(date +%Y-%m-%d).json

# Regenerate the paper's figures and the ablation tables.
figures:
	$(GO) run ./cmd/figures

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzEvalAny -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzCondLossProb -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzSchedule -fuzztime 30s ./internal/fault
	$(GO) test -fuzz FuzzMutator -fuzztime 30s ./internal/experiment

# Quick fuzz pass for CI: a few seconds per target.
fuzz-short:
	$(GO) test -fuzz FuzzEvalAny -fuzztime 5s ./internal/core
	$(GO) test -fuzz FuzzCondLossProb -fuzztime 5s ./internal/core
	$(GO) test -fuzz FuzzSchedule -fuzztime 5s ./internal/fault
	$(GO) test -fuzz FuzzMutator -fuzztime 5s ./internal/experiment

# Long-haul adversarial soak: the full default mutation sweep at production
# scale plus max-intensity mutation layered over mid-severity chaos, strict
# invariant oracle on throughout. Minutes, not CI seconds.
soak:
	RMCAST_SOAK=1 $(GO) test -run TestAdversarialSoak -v -timeout 30m ./internal/experiment

clean:
	$(GO) clean ./...
