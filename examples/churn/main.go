// Churn demonstrates incremental strategy maintenance under group
// membership changes (rmcast.Roster): when a member joins or leaves, only
// the clients whose competitive-class winners change need replanning —
// Lemma 4 guarantees nobody else's optimal list can be affected.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"rmcast"
)

func main() {
	topo, err := rmcast.NewTopology(rmcast.DefaultTopologyConfig(300), 77)
	if err != nil {
		log.Fatal(err)
	}
	roster, err := rmcast.NewRoster(topo, rmcast.DefaultPlannerOptions())
	if err != nil {
		log.Fatal(err)
	}
	k := len(topo.Clients)
	fmt.Printf("group of %d clients; initial planning = %d strategy computations\n\n",
		k, roster.Recomputes())

	// Churn: the first 20 clients leave one by one, then rejoin.
	before := roster.Recomputes()
	var leaveAffected, joinAffected int
	for _, c := range topo.Clients[:20] {
		aff, err := roster.Leave(c)
		if err != nil {
			log.Fatal(err)
		}
		leaveAffected += len(aff)
	}
	for _, c := range topo.Clients[:20] {
		aff, err := roster.Join(c)
		if err != nil {
			log.Fatal(err)
		}
		joinAffected += len(aff)
	}
	incremental := roster.Recomputes() - before
	naive := 40 * k // full recomputation per event

	fmt.Printf("40 membership events (20 leaves + 20 joins):\n")
	fmt.Printf("  peers invalidated by leaves:  %d\n", leaveAffected)
	fmt.Printf("  peers invalidated by joins:   %d\n", joinAffected)
	fmt.Printf("  incremental recomputations:   %d\n", incremental)
	fmt.Printf("  naive full recomputations:    %d  (%.0f× more work)\n",
		naive, float64(naive)/float64(incremental))

	// The maintained strategies are exactly what a fresh planner computes.
	fresh, err := rmcast.Strategies(topo, rmcast.DefaultPlannerOptions())
	if err != nil {
		log.Fatal(err)
	}
	for c, st := range fresh {
		got := roster.Strategy(c)
		if got == nil || got.ExpectedDelay != st.ExpectedDelay {
			log.Fatalf("client %d: roster %v != fresh %v", c, got, st)
		}
	}
	fmt.Println("\nroster state verified identical to a from-scratch recomputation ✓")
}
