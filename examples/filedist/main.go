// Filedist models the paper's motivating workload (§2: "distributing a
// large file to a number of clients … such applications need full
// reliability"): a 64 MiB file chunked into 1 KiB packets is multicast to
// every client, and the recovery protocols race to fill the gaps. The
// example reports, per protocol, how long until every client holds the
// whole file and how much recovery traffic that cost.
//
//	go run ./examples/filedist
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rmcast"
)

func main() {
	const (
		fileMiB    = 64
		packetKiB  = 1
		packets    = fileMiB * 1024 / packetKiB / 64 // scaled: every 64th chunk simulated
		intervalMs = 5.0                             // ~1.6 Mbit/s at 1 KiB packets
		lossProb   = 0.05
	)

	cfg := rmcast.DefaultTopologyConfig(120)
	cfg.LossProb = lossProb
	topo, err := rmcast.NewTopology(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributing a %d MiB file (%d simulated packets) to %d clients, p=%.0f%%\n\n",
		fileMiB, packets, len(topo.Clients), lossProb*100)

	sess := rmcast.DefaultSessionConfig()
	sess.Packets = packets
	sess.Interval = intervalMs

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tcompletion(ms)\tlosses\tmean recovery(ms)\trepair hops/rec\tduplicates")
	for _, proto := range []string{"SRM", "RMA", "RP", "RP-AWARE"} {
		res, err := rmcast.Simulate(topo, proto, sess, 23)
		if err != nil {
			log.Fatal(err)
		}
		if res.Stats.Unrecovered > 0 {
			log.Fatalf("%s left %d chunks unrecovered", proto, res.Stats.Unrecovered)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.2f\t%.2f\t%d\n",
			proto, res.SimTime, res.Stats.Losses, res.AvgLatency(),
			res.BandwidthPerRecovery(), res.Stats.Duplicates)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompletion = simulated time until the last client held the last chunk")
}
