// Losssweep compares the recovery protocols across per-link loss rates on
// one fixed topology — a compact interactive version of the paper's
// Figures 7 and 8 (which cmd/figures regenerates at full scale).
//
//	go run ./examples/losssweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rmcast"
)

func main() {
	protocols := []string{"SRM", "RMA", "RP", "RP-AWARE", "SRC"}
	losses := []float64{0.02, 0.05, 0.10, 0.15, 0.20}

	fmt.Println("recovery latency (ms) and repair bandwidth (hops/recovery)")
	fmt.Println("fixed 150-router topology, 100 packets per run")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "loss"
	for _, p := range protocols {
		header += "\t" + p
	}
	fmt.Fprintln(tw, header)

	for _, loss := range losses {
		cfg := rmcast.DefaultTopologyConfig(150)
		cfg.LossProb = loss
		topo, err := rmcast.NewTopology(cfg, 31) // same seed: same topology
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%.0f%%", loss*100)
		for _, proto := range protocols {
			res, err := rmcast.Simulate(topo, proto, rmcast.DefaultSessionConfig(), 37)
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("\t%.1fms/%.1fh", res.AvgLatency(), res.BandwidthPerRecovery())
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnote how SRM's bandwidth per recovery falls as loss rises (one shared")
	fmt.Println("whole-tree repair amortized over more losers) while RMA/RP/SRC rise —")
	fmt.Println("the paper's Figure 8 effect.")
}
