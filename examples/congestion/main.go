// Congestion exercises the store-and-forward queueing model that the
// paper's own simulator omits (§5.1: "simulations will favor protocols
// that generate more data"): with a per-link service time, SRM's whole-tree
// NACK/repair floods queue behind the data stream and behind each other,
// while RP's sparse unicasts barely notice.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rmcast"
)

func main() {
	const serviceMs = 1.5

	fmt.Println("recovery under congestion: per-link service time", serviceMs, "ms")
	fmt.Println("(the paper's model is the 0-ms column; its bias favours the chatty protocols)")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tno queueing lat(ms)\tqueued lat(ms)\tslowdown")
	for _, proto := range []string{"SRM-HONEST", "RMA", "RP"} {
		run := func(pt float64) float64 {
			cfg := rmcast.DefaultTopologyConfig(150)
			topo, err := rmcast.NewTopology(cfg, 5)
			if err != nil {
				log.Fatal(err)
			}
			sess := rmcast.DefaultSessionConfig()
			sess.Packets = 80
			sess.PacketTime = pt
			// Queued data can trail the idealised detector; give it room.
			sess.DetectLag = 20 * pt
			res, err := rmcast.Simulate(topo, proto, sess, 9)
			if err != nil {
				log.Fatal(err)
			}
			if res.Stats.Unrecovered > 0 {
				log.Fatalf("%s: unrecovered losses", proto)
			}
			return res.AvgLatency()
		}
		base := run(0)
		queued := run(serviceMs)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.2f×\n", proto, base, queued, queued/base)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nslowdown = queued/unqueued mean recovery latency; flood-based")
	fmt.Println("protocols pay for their own traffic once links have finite capacity.")
}
