// Quickstart: generate a small multicast topology, compute the RP recovery
// strategies (the paper's Algorithm 1), and run one simulated session to
// watch the protocol recover real losses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"rmcast"
)

func main() {
	// A 60-router backbone at the paper's standard parameters: nominal
	// link delays U[1,10) ms, mean degree 3, 5% per-link loss, clients at
	// the leaves of a uniform random spanning tree.
	cfg := rmcast.DefaultTopologyConfig(60)
	topo, err := rmcast.NewTopology(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d nodes, %d links, %d clients, source %d\n",
		topo.NumNodes(), topo.NumLinks(), len(topo.Clients), topo.Source)

	// Compute every client's prioritized recovery list.
	strategies, err := rmcast.Strategies(topo, rmcast.DefaultPlannerOptions())
	if err != nil {
		log.Fatal(err)
	}
	clients := append([]rmcast.NodeID(nil), topo.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	withPeers := 0
	for _, c := range clients[:min(5, len(clients))] {
		fmt.Println(" ", strategies[c])
	}
	for _, st := range strategies {
		if len(st.Peers) > 0 {
			withPeers++
		}
	}
	fmt.Printf("%d/%d clients plan to recover from peers before the source\n\n",
		withPeers, len(strategies))

	// Run one session: 100 packets multicast at 50 ms spacing, losses
	// recovered by the RP protocol.
	res, err := rmcast.Simulate(topo, "RP", rmcast.DefaultSessionConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation:", res)
	fmt.Printf("  mean recovery latency  %.2f ms\n", res.AvgLatency())
	fmt.Printf("  repair bandwidth       %.2f hops/recovery\n", res.BandwidthPerRecovery())
	fmt.Printf("  request bandwidth      %.2f hops/recovery\n", res.RequestHopsPerRecovery())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
