// Sharedlan demonstrates the paper's ghost-node transform (§2.2, Figure 2):
// a shared broadcast segment (e.g. a campus LAN) joining several clients is
// modelled as a ghost node with point-to-point branches, so partial loss on
// the segment — some stations miss a frame others hear — can be assigned to
// individual branches.
//
//	go run ./examples/sharedlan
package main

import (
	"fmt"
	"log"

	"rmcast"
)

func main() {
	// Backbone: source — r1 — r2, with a shared LAN hanging off r2 and a
	// distant lone client off r1.
	b := rmcast.NewBuilder()
	src := b.Source()
	r1 := b.Router()
	r2 := b.Router()
	b.TreeLink(src, r1, 8)
	b.TreeLink(r1, r2, 4)
	lone := b.Client()
	b.TreeLink(r1, lone, 2)

	// Three LAN stations share one segment with r2. The ghost node *is*
	// the segment: each branch gets the segment delay, and loss can be
	// set per branch.
	s1, s2, s3 := b.Client(), b.Client(), b.Client()
	ghost, branches := b.SharedSegment([]rmcast.NodeID{r2, s1, s2, s3}, 0.5, true)
	// Station s1 has a flaky NIC: 30% of frames die on its branch only.
	b.SetLoss(branches[1], 0.30)
	// The backbone is otherwise lightly lossy.
	b.SetLoss(branches[0], 0.02)

	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ghost node %d models the shared segment; branches %v\n",
		ghost, branches)
	fmt.Printf("clients: lone=%d, LAN stations=%d,%d,%d\n\n", lone, s1, s2, s3)

	// Strategies: the LAN stations are mutual first-choice repair peers —
	// their meet "router" is the ghost node itself, one hop away.
	sts, err := rmcast.Strategies(topo, rmcast.DefaultPlannerOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []rmcast.NodeID{lone, s1, s2, s3} {
		fmt.Println(" ", sts[c])
	}
	if len(sts[s1].Peers) == 0 || sts[s1].Peers[0].Meet != ghost {
		fmt.Println("  (unexpected: station s1 does not lean on its LAN peers)")
	} else {
		fmt.Println("  → station s1 recovers flaky-NIC losses from a LAN neighbour in ~1 ms")
	}

	cfgSess := rmcast.DefaultSessionConfig()
	cfgSess.Packets = 500
	cfgSess.Interval = 10
	res, err := rmcast.Simulate(topo, "RP", cfgSess, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation: %v\n", res)
	fmt.Printf("mean recovery latency %.2f ms — compare the ~%.0f ms a source round trip costs\n",
		res.AvgLatency(), 2*(8+4+0.5))
}
