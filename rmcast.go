// Package rmcast is a from-scratch reproduction of "A Recovery Algorithm
// for Reliable Multicasting in Reliable Networks" (Zhang, Ray, Kannan,
// Iyengar — ICPP 2003): the RP recovery-strategy algorithm, the SRM and RMA
// baselines it is evaluated against, and the discrete-event packet-level
// simulator that regenerates the paper's Figures 5–8.
//
// The package is a thin facade over the internal implementation:
//
//   - NewTopology / Chain / Star / Binary build networks (random backbones
//     per the paper's §5.1, or hand-wired ones for experiments).
//   - Strategies runs the paper's Algorithm 1 (§4) for every client and
//     returns the prioritized recovery lists with their expected delays.
//   - Simulate runs one reliable-multicast session under a named recovery
//     protocol and reports latency and bandwidth per recovery.
//   - Figure5And6 / Figure7And8 / Ablation regenerate the evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's claims.
package rmcast

import (
	"rmcast/internal/core"
	"rmcast/internal/experiment"
	"rmcast/internal/graph"
	"rmcast/internal/lsr"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
	"rmcast/internal/trace"
)

// NodeID identifies a node in a topology.
type NodeID = graph.NodeID

// Topology is a generated or hand-built network plus its multicast tree.
type Topology = topology.Network

// TopologyConfig parameterises random topology generation (§5.1).
type TopologyConfig = topology.Config

// TopologyBuilder hand-constructs topologies (tests, shared-LAN modeling).
type TopologyBuilder = topology.Builder

// Strategy is one client's prioritized recovery list (the paper's L_u).
type Strategy = core.Strategy

// Candidate is one entry of a recovery list.
type Candidate = core.Candidate

// SessionConfig parameterises one simulation run.
type SessionConfig = protocol.Config

// Result is the outcome of one simulation run.
type Result = protocol.Result

// Figure is one reproduced evaluation figure.
type Figure = experiment.Figure

// TreeKind selects the multicast-tree construction for generated
// topologies.
type TreeKind = topology.TreeKind

// Tree construction kinds (see topology.TreeKind).
const (
	RandomTree       = topology.RandomTree
	ShortestPathTree = topology.ShortestPathTree
)

// DetectionMode selects the loss-detection model of a session.
type DetectionMode = protocol.DetectionMode

// Loss-detection modes (see protocol.DetectionMode).
const (
	DetectIdeal   = protocol.DetectIdeal
	DetectGap     = protocol.DetectGap
	DetectSession = protocol.DetectSession
)

// Router is the routing abstraction consumed by planning and simulation:
// either the omniscient oracle or a converged link-state protocol instance.
type Router = route.Router

// Tracer receives structured simulation events (see package trace).
type Tracer = trace.Tracer

// TraceEvent is one structured simulation event.
type TraceEvent = trace.Event

// LinkStateStats reports the convergence cost of LinkStateRouting.
type LinkStateStats = lsr.Stats

// TimeoutPolicy chooses per-attempt timeouts for planning and recovery.
type TimeoutPolicy = core.TimeoutPolicy

// FixedTimeout is a constant per-attempt timeout (ms).
type FixedTimeout = core.FixedTimeout

// ProportionalTimeout sets the timeout to a multiple of the attempt's RTT.
type ProportionalTimeout = core.ProportionalTimeout

// DefaultTopologyConfig returns the paper's standard generation parameters
// for m backbone routers.
func DefaultTopologyConfig(m int) TopologyConfig { return topology.DefaultConfig(m) }

// NewTopology generates a random network per cfg, deterministically from
// seed.
func NewTopology(cfg TopologyConfig, seed uint64) (*Topology, error) {
	return topology.Generate(cfg, rng.New(seed))
}

// TransitStubParams shapes the GT-ITM-style hierarchical generator.
type TransitStubParams = topology.TransitStubParams

// NewTransitStubTopology generates a transit-stub hierarchy (fast transit
// core, stub domains at the edge); cfg's tree/host/loss settings apply and
// its Routers field is ignored.
func NewTransitStubTopology(cfg TopologyConfig, ts TransitStubParams, seed uint64) (*Topology, error) {
	return topology.GenerateTransitStub(cfg, ts, rng.New(seed))
}

// NewBuilder returns a hand-construction builder.
func NewBuilder() *TopologyBuilder { return topology.NewBuilder() }

// Chain builds a source—router-chain—client topology (see topology.Chain).
func Chain(hops int, delay float64, clientAt []int) (*Topology, error) {
	return topology.Chain(hops, delay, clientAt)
}

// Star builds a hub topology with n clients.
func Star(n int, delay float64) (*Topology, error) { return topology.Star(n, delay) }

// Binary builds a complete binary multicast tree of the given depth.
func Binary(depth int, delay float64) (*Topology, error) { return topology.Binary(depth, delay) }

// PlannerOptions tunes strategy computation.
type PlannerOptions struct {
	// Timeout is the per-attempt timeout policy; nil means
	// ProportionalTimeout(3), the experiments' default.
	Timeout TimeoutPolicy
	// AllowDirectSource permits the u→S edge of the strategy graph
	// (the paper's unrestricted form). The zero value of PlannerOptions
	// therefore computes restricted strategies; use DefaultPlannerOptions
	// for the paper's default.
	AllowDirectSource bool
}

// DefaultPlannerOptions returns the paper-faithful planner settings.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{AllowDirectSource: true}
}

// Strategies computes the optimal recovery strategy (Algorithm 1) for every
// client of t.
func Strategies(t *Topology, opt PlannerOptions) (map[NodeID]*Strategy, error) {
	tree, err := mtree.Build(t)
	if err != nil {
		return nil, err
	}
	p := core.NewPlanner(tree, route.Build(t))
	p.Timeout = opt.Timeout
	p.AllowDirectSource = opt.AllowDirectSource
	return p.All(), nil
}

// Roster maintains per-client strategies under group membership churn,
// recomputing only the provably affected clients on Join/Leave.
type Roster = core.Roster

// NewRoster builds a churn-capable strategy roster over t's full client
// set.
func NewRoster(t *Topology, opt PlannerOptions) (*Roster, error) {
	tree, err := mtree.Build(t)
	if err != nil {
		return nil, err
	}
	p := core.NewPlanner(tree, route.Build(t))
	p.Timeout = opt.Timeout
	p.AllowDirectSource = opt.AllowDirectSource
	return core.NewRoster(p), nil
}

// StrategyFor computes the optimal recovery strategy for a single client.
func StrategyFor(t *Topology, client NodeID, opt PlannerOptions) (*Strategy, error) {
	tree, err := mtree.Build(t)
	if err != nil {
		return nil, err
	}
	p := core.NewPlanner(tree, route.Build(t))
	p.Timeout = opt.Timeout
	p.AllowDirectSource = opt.AllowDirectSource
	return p.StrategyFor(client), nil
}

// Protocols lists the recovery protocols Simulate accepts.
func Protocols() []string {
	return append(append([]string{}, experiment.PaperProtocols...),
		"RP-AWARE", "RP-NOSRC", "RP-NAK", "RP-SUBGROUP", "SRC", "SRM-HONEST", "SRM-ADAPT", "FEC", "ACK")
}

// DefaultSessionConfig returns the experiments' session parameters.
func DefaultSessionConfig() SessionConfig { return protocol.DefaultConfig() }

// Simulate runs one reliable-multicast session over t with the named
// recovery protocol (see Protocols), deterministically from seed.
func Simulate(t *Topology, protocolName string, cfg SessionConfig, seed uint64) (*Result, error) {
	return SimulateFull(t, protocolName, cfg, seed, nil, nil)
}

// SimulateFull is Simulate with an optional routing substrate (nil: the
// omniscient oracle) and an optional event tracer.
func SimulateFull(t *Topology, protocolName string, cfg SessionConfig, seed uint64, router Router, tracer Tracer) (*Result, error) {
	eng, err := experiment.NewEngine(protocolName)
	if err != nil {
		return nil, err
	}
	s, err := protocol.NewSessionWithRouter(t, eng, cfg, seed, router)
	if err != nil {
		return nil, err
	}
	s.Trace = tracer
	return s.Run(), nil
}

// LinkStateRouting converges the OSPF-style link-state protocol of
// internal/lsr over t with the given relative HELLO measurement noise and
// returns the resulting Router plus convergence statistics.
func LinkStateRouting(t *Topology, noise float64, seed uint64) (Router, *LinkStateStats) {
	return lsr.Converge(t, lsr.Config{Noise: noise}, rng.New(seed))
}

// Figure5And6 regenerates the paper's group-size sweep (latency and
// bandwidth versus client count at 5% loss). Pass zero-value sweep fields
// to use the paper's parameters.
func Figure5And6() (latency, bandwidth *Figure, err error) {
	return experiment.PaperFigure56().Run()
}

// Figure7And8 regenerates the paper's loss sweep at n=500.
func Figure7And8() (latency, bandwidth *Figure, err error) {
	return experiment.PaperFigure78().Run()
}

// Ablation regenerates the RP-variant ablation (DESIGN.md experiment E7).
func Ablation() (latency, bandwidth *Figure, err error) {
	return experiment.PaperAblation().Run()
}
