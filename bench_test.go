package rmcast

// One benchmark per paper figure (DESIGN.md experiments E1–E4), plus the
// ablation (E7) and the strategy-computation scaling probe (E5; the
// fine-grained version lives in internal/core). Each benchmark iteration
// executes one full simulation run of one figure cell and reports the
// figure's metric via b.ReportMetric, so
//
//	go test -bench 'Figure5' -benchmem
//
// regenerates the latency column of Figure 5 cell by cell
// (ms/recovery), and similarly for the other figures. cmd/figures prints
// the same data as assembled tables.

import (
	"fmt"
	"testing"

	"rmcast/internal/core"
	"rmcast/internal/experiment"
	"rmcast/internal/fault"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// benchPackets keeps each benchmark iteration around 100–500 ms; the
// cmd/figures tool uses the paper-default 100 packets.
const benchPackets = 40

func benchCell(b *testing.B, spec experiment.RunSpec) {
	b.Helper()
	var lat, bw float64
	var losses int64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		lat = res.AvgLatency()
		bw = res.BandwidthPerRecovery()
		losses = res.Stats.Losses
	}
	b.ReportMetric(lat, "ms/recovery")
	b.ReportMetric(bw, "hops/recovery")
	b.ReportMetric(float64(losses), "losses")
}

// BenchmarkFigure5 regenerates Figure 5 (recovery latency vs group size,
// p=5%): read the ms/recovery metric per cell.
func BenchmarkFigure5(b *testing.B) {
	for _, size := range []int{50, 100, 200, 300, 400, 500, 600} {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("n=%d/%s", size, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: size, Loss: 0.05, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003 + uint64(size), SimSeed: 1,
				})
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (recovery bandwidth vs group size,
// p=5%): read the hops/recovery metric per cell. Same runs as Figure 5 —
// the paper derives both figures from one experiment.
func BenchmarkFigure6(b *testing.B) {
	for _, size := range []int{50, 100, 200, 300, 400, 500, 600} {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("n=%d/%s", size, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: size, Loss: 0.05, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003 + uint64(size), SimSeed: 1,
				})
			})
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (recovery latency vs per-link loss,
// n=500): read ms/recovery per cell.
func BenchmarkFigure7(b *testing.B) {
	for _, pct := range []float64{2, 6, 10, 14, 20} {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("p=%g%%/%s", pct, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: 500, Loss: pct / 100, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003, SimSeed: uint64(pct),
				})
			})
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (recovery bandwidth vs per-link
// loss, n=500): read hops/recovery per cell. Same runs as Figure 7.
func BenchmarkFigure8(b *testing.B) {
	for _, pct := range []float64{2, 6, 10, 14, 20} {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("p=%g%%/%s", pct, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: 500, Loss: pct / 100, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003, SimSeed: uint64(pct),
				})
			})
		}
	}
}

// BenchmarkAblation compares the RP variants and the baselines RP
// degenerates to (DESIGN.md experiment E7) at n=300.
func BenchmarkAblation(b *testing.B) {
	for _, pct := range []float64{5, 15} {
		for _, proto := range experiment.AblationProtocols {
			b.Run(fmt.Sprintf("p=%g%%/%s", pct, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: 300, Loss: pct / 100, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003, SimSeed: uint64(pct),
				})
			})
		}
	}
}

// BenchmarkStrategyComputation measures planning cost for every client of a
// topology — the O(k·(N² + LCA)) pipeline behind Algorithm 1 (experiment
// E5; per-N scaling is benchmarked in internal/core).
func BenchmarkStrategyComputation(b *testing.B) {
	for _, size := range []int{100, 300, 600} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			topo, err := NewTopology(DefaultTopologyConfig(size), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Strategies(topo, DefaultPlannerOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event throughput with
// the cheapest protocol, as a substrate baseline.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var elapsedRuns int
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.RunSpec{
			Routers: 200, Loss: 0.05, Protocol: "SRC",
			Packets: benchPackets, Interval: 50, TopoSeed: 5, SimSeed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
		elapsedRuns++
	}
	b.ReportMetric(float64(events), "events/run")
	_ = elapsedRuns
}

// BenchmarkTreeKinds compares the protocols over the two multicast-tree
// constructions of internal/topology: the paper's uniform random spanning
// tree versus a PIM-SM-style shortest-path source tree (§2.2 allows any
// multicast routing protocol to supply the tree).
func BenchmarkTreeKinds(b *testing.B) {
	kinds := []struct {
		name string
		kind topology.TreeKind
	}{
		{"random-st", topology.RandomTree},
		{"shortest-path", topology.ShortestPathTree},
	}
	for _, k := range kinds {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("%s/%s", k.name, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: 300, Loss: 0.05, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003, SimSeed: 1, Tree: k.kind,
				})
			})
		}
	}
}

// BenchmarkEstimationNoise measures RP's sensitivity to routing-estimate
// error (§3.1 discusses estimation quality): the oracle versus the
// link-state substrate at increasing HELLO measurement noise.
func BenchmarkEstimationNoise(b *testing.B) {
	cases := []struct {
		name      string
		linkState bool
		noise     float64
	}{
		{"oracle", false, 0},
		{"lsr-0%", true, 0},
		{"lsr-10%", true, 0.10},
		{"lsr-30%", true, 0.30},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchCell(b, experiment.RunSpec{
				Routers: 300, Loss: 0.05, Protocol: "RP",
				Packets: benchPackets, Interval: 50,
				TopoSeed: 2003, SimSeed: 1,
				LinkState: c.linkState, RouteNoise: c.noise,
			})
		})
	}
}

// BenchmarkCoopRecovery measures the cooperative coded repair engine end
// to end on its home turf: the n=100 cell under plain random loss, and the
// same cell under a mid-severity chaos schedule (crashes, link outages,
// burst loss) — the regime the block-coded peer relay exists for. Tracked
// by benchdiff (cmd/benchdiff -track).
func BenchmarkCoopRecovery(b *testing.B) {
	plain := experiment.RunSpec{
		Routers: 100, Loss: 0.05, Protocol: "COOP",
		Packets: benchPackets, Interval: 50,
		TopoSeed: 2103, SimSeed: 1,
	}
	b.Run("n=100/plain", func(b *testing.B) {
		b.ReportAllocs()
		benchCell(b, plain)
	})
	chaos := plain
	chaos.Chaos = &fault.ChaosParams{
		CrashRate: 0.15, PermanentFrac: 0.3, LinkDownRate: 0.1,
		BurstSeverity: 0.5, BaseLoss: 0.05,
		Span: float64(benchPackets) * 50,
	}
	chaos.FaultSeed = 0xc4a05
	b.Run("n=100/chaos", func(b *testing.B) {
		b.ReportAllocs()
		benchCell(b, chaos)
	})
}

// BenchmarkDetectionModes compares idealised loss detection against
// realistic sequence-gap detection (protocol.DetectGap) for RP.
func BenchmarkDetectionModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode protocol.DetectionMode
	}{
		{"ideal", protocol.DetectIdeal},
		{"gap", protocol.DetectGap},
	} {
		b.Run(mode.name, func(b *testing.B) {
			topo, err := topology.Standard(300, 0.05, 2003)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := experiment.NewEngine("RP")
			if err != nil {
				b.Fatal(err)
			}
			var lat float64
			for i := 0; i < b.N; i++ {
				topo2, _ := topology.Standard(300, 0.05, 2003)
				eng2, _ := experiment.NewEngine("RP")
				s, err := protocol.NewSession(topo2, eng2, protocol.Config{
					Packets: benchPackets, Interval: 50, Detection: mode.mode,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run()
				lat = res.AvgLatency()
			}
			_, _ = topo, eng
			b.ReportMetric(lat, "ms/recovery")
		})
	}
}

// BenchmarkCongestion enables the store-and-forward congestion model the
// paper's own simulator lacks (§5.1 admits the omission "will favor
// protocols that generate more data"): per-link service time makes SRM's
// whole-tree floods pay for themselves in queueing delay.
func BenchmarkCongestion(b *testing.B) {
	for _, pt := range []float64{0, 0.25} {
		for _, proto := range experiment.PaperProtocols {
			name := fmt.Sprintf("service=%.2fms/%s", pt, proto)
			b.Run(name, func(b *testing.B) {
				var lat, bw float64
				for i := 0; i < b.N; i++ {
					topo, err := topology.Standard(200, 0.05, 2003)
					if err != nil {
						b.Fatal(err)
					}
					eng, err := experiment.NewEngine(proto)
					if err != nil {
						b.Fatal(err)
					}
					s, err := protocol.NewSession(topo, eng, protocol.Config{
						Packets: benchPackets, Interval: 50,
						PacketTime: pt,
						// Congestion delays data too: give the idealised
						// detector headroom so late data is not declared
						// lost en masse.
						DetectLag: 20 * pt,
					}, 1)
					if err != nil {
						b.Fatal(err)
					}
					res := s.Run()
					if !res.Complete {
						b.Fatal("incomplete congestion run")
					}
					lat = res.AvgLatency()
					bw = res.BandwidthPerRecovery()
				}
				b.ReportMetric(lat, "ms/recovery")
				b.ReportMetric(bw, "hops/recovery")
			})
		}
	}
}

// BenchmarkMembershipChurn measures incremental strategy maintenance under
// join/leave churn versus full recomputation (internal/core.Roster).
func BenchmarkMembershipChurn(b *testing.B) {
	topo, err := NewTopology(DefaultTopologyConfig(300), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		r, err := NewRoster(topo, DefaultPlannerOptions())
		if err != nil {
			b.Fatal(err)
		}
		clients := topo.Clients
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := clients[i%len(clients)]
			if r.Active(v) {
				if _, err := r.Leave(v); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := r.Join(v); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Strategies(topo, DefaultPlannerOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopologyFamilies compares the protocols across the three
// standard topology families of the multicast-simulation literature: flat
// random (the paper's), Waxman, and GT-ITM transit-stub. Orderings should
// be family-invariant.
func BenchmarkTopologyFamilies(b *testing.B) {
	build := func(family string) *Topology {
		cfg := DefaultTopologyConfig(132)
		switch family {
		case "random":
			t, err := NewTopology(cfg, 9)
			if err != nil {
				b.Fatal(err)
			}
			return t
		case "waxman":
			cfg.Model = topology.Waxman
			t, err := NewTopology(cfg, 9)
			if err != nil {
				b.Fatal(err)
			}
			return t
		case "transit-stub":
			t, err := NewTransitStubTopology(cfg, TransitStubParams{}, 9)
			if err != nil {
				b.Fatal(err)
			}
			return t
		}
		b.Fatalf("unknown family %q", family)
		return nil
	}
	for _, family := range []string{"random", "waxman", "transit-stub"} {
		for _, proto := range experiment.PaperProtocols {
			b.Run(fmt.Sprintf("%s/%s", family, proto), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					topo := build(family)
					res, err := Simulate(topo, proto, SessionConfig{
						Packets: benchPackets, Interval: 50,
					}, 11)
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Unrecovered > 0 {
						b.Fatal("unrecovered")
					}
					lat = res.AvgLatency()
				}
				b.ReportMetric(lat, "ms/recovery")
			})
		}
	}
}

// BenchmarkLCA measures the O(1) Euler-tour LCA query on the paper's
// largest topology — the primitive behind every meet-depth lookup in
// candidate selection (O(k²) queries per planning pass).
func BenchmarkLCA(b *testing.B) {
	net, err := topology.Standard(600, 0.05, 2003)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := mtree.Build(net)
	if err != nil {
		b.Fatal(err)
	}
	clients := tree.Clients
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := clients[i%len(clients)]
		v := clients[(i*31+7)%len(clients)]
		_ = tree.LCA(u, v)
	}
}

// BenchmarkPlannerAll measures the batch planning pass (core.PlanAll):
// every client's candidate classes, strategy graph, and Algorithm 1, with
// scratch shared across clients. The loop replans into the warmed result
// map, so steady state must allocate nothing. Compare against
// BenchmarkStrategyComputation, which additionally pays topology
// routing-table construction.
func BenchmarkPlannerAll(b *testing.B) {
	for _, size := range []int{100, 300, 600} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			net, err := topology.Standard(size, 0.05, 2003)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := mtree.Build(net)
			if err != nil {
				b.Fatal(err)
			}
			p := core.NewPlanner(tree, route.Build(net))
			out := p.PlanAll()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PlanAllInto(out)
			}
		})
	}
}

// BenchmarkParallelSweep runs one small group-size sweep grid serially and
// on a worker pool. On a multi-core runner the parallel variant should
// approach serial-time ÷ min(workers, cells); the figures it produces are
// bit-identical either way (asserted by the experiment tests).
func BenchmarkParallelSweep(b *testing.B) {
	sweep := experiment.GroupSizeSweep{
		Sizes:      []int{50, 100, 150, 200},
		Loss:       0.05,
		Packets:    benchPackets,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
	for _, workers := range []int{1, 2, 4, experiment.DefaultParallelism()} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			s := sweep
			s.Parallel = workers
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEngine measures the conservative parallel engine on a
// 2000-client tree topology: one full RP run per iteration at each worker
// count. workers=1 is the byte-untouched serial path (the regression
// baseline benchdiff gates on); the sharded variants are bit-identical to it
// (gated by the golden-digest tests) and should approach serial ÷
// min(workers, shards) on a multi-core runner. On one core they measure the
// window/barrier overhead instead, which must stay modest.
func BenchmarkParallelEngine(b *testing.B) {
	topo, err := topology.GenerateTree(topology.DefaultTreeConfig(2000), rng.New(31))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				eng, err := experiment.NewEngine("RP")
				if err != nil {
					b.Fatal(err)
				}
				cfg := protocol.Config{Packets: benchPackets, Interval: 50, SimWorkers: workers}
				s, err := protocol.NewSession(topo, eng, cfg, 17)
				if err != nil {
					b.Fatal(err)
				}
				if workers >= 2 && !s.ParallelEligible() {
					b.Fatal("cell unexpectedly ineligible for sharding")
				}
				res := s.Run()
				if !res.Complete || res.Stats.Unrecovered > 0 {
					b.Fatal("incomplete parallel-engine run")
				}
				events = res.Events
			}
			b.ReportMetric(float64(events), "events/run")
		})
	}
}

// BenchmarkHierarchicalDomains measures the hierarchical-domain execution
// mode on the same 2000-client tree as BenchmarkParallelEngine: one full RP
// run per iteration over a (domain count × worker count) grid, each cell
// bit-identical to the serial run (gated by the golden-digest tests). The
// domain axis varies Config.DomainClients — K = ⌈2000/size⌉ domains — and the
// worker axis the goroutines executing them; on a single-core runner the
// worker axis measures window/barrier overhead while the domain axis measures
// the per-domain engine fixed costs, which must stay sublinear in K for the
// million-client tier to work.
func BenchmarkHierarchicalDomains(b *testing.B) {
	topo, err := topology.GenerateTree(topology.DefaultTreeConfig(2000), rng.New(31))
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{500, 250, 125} {
		k := (len(topo.Clients) + size - 1) / size
		for _, workers := range []int{2, 8} {
			b.Run(fmt.Sprintf("d=%d/w=%d", k, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng, err := experiment.NewEngine("RP")
					if err != nil {
						b.Fatal(err)
					}
					cfg := protocol.Config{Packets: benchPackets, Interval: 50,
						SimWorkers: workers, DomainClients: size}
					s, err := protocol.NewSession(topo, eng, cfg, 17)
					if err != nil {
						b.Fatal(err)
					}
					res := s.Run()
					if !res.Complete || res.Stats.Unrecovered > 0 {
						b.Fatal("incomplete domain run")
					}
					if !res.Sharded || res.Domains != k {
						b.Fatalf("expected %d domains, got sharded=%v domains=%d (%s)",
							k, res.Sharded, res.Domains, res.SerialReason)
					}
				}
			})
		}
	}
}

// BenchmarkFailover measures the cost of an epoch-fenced RP failover: one
// full RP-FAILOVER run per iteration with the initial coordinator crashed
// permanently mid-transmission, strict oracle on, so each iteration covers
// suspicion, re-election, promotion and the pending-recovery handover. The
// baseline sub-benchmark runs the identical cell with no crash, so the pair
// isolates what a failover costs over steady-state coordinated recovery.
func BenchmarkFailover(b *testing.B) {
	topo, err := topology.Standard(100, 0.05, 2003)
	if err != nil {
		b.Fatal(err)
	}
	rp0 := core.ElectionOrder(mtree.MustBuild(topo))[0]
	span := float64(benchPackets) * 50
	for _, crash := range []bool{false, true} {
		name := "steady"
		var sched *fault.Schedule
		if crash {
			name = "rpcrash"
			sched = (&fault.Schedule{}).CrashHost(0.25*span, rp0)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var failovers int64
			for i := 0; i < b.N; i++ {
				eng, err := experiment.NewEngine("RP-FAILOVER")
				if err != nil {
					b.Fatal(err)
				}
				cfg := protocol.Config{Packets: benchPackets, Interval: 50, Fault: sched}
				s, err := protocol.NewSession(topo, eng, cfg, 17)
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run()
				if !res.Complete || res.Stats.Unrecovered > 0 || len(res.Violations) > 0 {
					b.Fatal("unhealthy failover benchmark run")
				}
				if crash && res.Stats.Failovers < 1 {
					b.Fatal("crash cell failed to fail over")
				}
				failovers = res.Stats.Failovers
			}
			b.ReportMetric(float64(failovers), "failovers/run")
		})
	}
}

// BenchmarkAdversarialMutation measures what the hostile message plane
// costs each hardened engine: one full run per iteration at mutation
// intensity 0 (the mutator entirely absent) versus 1 (duplication,
// reordering, corruption and repair storms at their sweep maxima), with
// the strict invariant oracle on in both.
func BenchmarkAdversarialMutation(b *testing.B) {
	span := float64(benchPackets) * 50
	for _, intensity := range []float64{0, 1} {
		mut := fault.MutationFromIntensity(intensity, span)
		for _, proto := range experiment.AdversarialProtocols {
			b.Run(fmt.Sprintf("intensity=%g/%s", intensity, proto), func(b *testing.B) {
				benchCell(b, experiment.RunSpec{
					Routers: 100, Loss: 0.05, Protocol: proto,
					Packets: benchPackets, Interval: 50,
					TopoSeed: 2003, SimSeed: 1, Mutation: mut,
				})
			})
		}
	}
}

// BenchmarkOracleOverhead isolates the runtime invariant oracle's cost: the
// same lossy run with the per-event shadow state machine fully on (strict,
// the suite-wide default) versus off. The target is under 5% of run time —
// every hook is O(1) on two bit-arrays.
func BenchmarkOracleOverhead(b *testing.B) {
	run := func(b *testing.B, mode protocol.CheckMode) {
		b.Helper()
		topo, err := topology.Standard(200, 0.05, 5)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			eng, err := experiment.NewEngine("RP")
			if err != nil {
				b.Fatal(err)
			}
			cfg := protocol.Config{Packets: benchPackets, Interval: 50, Check: mode}
			s, err := protocol.NewSession(topo, eng, cfg, 6)
			if err != nil {
				b.Fatal(err)
			}
			if res := s.Run(); res.Stats.Unrecovered > 0 {
				b.Fatal("unrecovered losses")
			}
		}
	}
	b.Run("check=off", func(b *testing.B) { run(b, protocol.CheckOff) })
	b.Run("check=strict", func(b *testing.B) { run(b, protocol.CheckStrict) })
}
