// Package trace provides structured event tracing for simulation runs: a
// Tracer receives typed events (packet deliveries, loss detections,
// recoveries, timer fires) and renders them to an io.Writer, or counts them
// for assertions in tests. Tracing is strictly optional — the session emits
// events only when a Tracer is attached, and the nil Tracer costs nothing.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies trace events.
type Kind uint8

const (
	// SendData is an original multicast transmission from the source.
	SendData Kind = iota
	// RecvData is a data delivery at a client.
	RecvData
	// Detect is a loss detection at a client.
	Detect
	// SendRequest is a recovery request transmission.
	SendRequest
	// SendRepair is a repair transmission.
	SendRepair
	// Recover is a completed recovery at a client.
	Recover
	// Drop is a packet killed by link loss.
	Drop
	numKinds
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case SendData:
		return "send-data"
	case RecvData:
		return "recv-data"
	case Detect:
		return "detect"
	case SendRequest:
		return "send-request"
	case SendRepair:
		return "send-repair"
	case Recover:
		return "recover"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   float64 // simulation time, ms
	Kind Kind
	Node int32 // primary node (receiver/detector/sender)
	Peer int32 // secondary node (source of a repair, target of a request); -1 if n/a
	Seq  int   // data sequence number
}

// String renders the event on one line.
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("%10.3f  %-12s node=%d peer=%d seq=%d",
			e.At, e.Kind, e.Node, e.Peer, e.Seq)
	}
	return fmt.Sprintf("%10.3f  %-12s node=%d seq=%d", e.At, e.Kind, e.Node, e.Seq)
}

// Tracer consumes events.
type Tracer interface {
	Emit(Event)
}

// Writer streams events as text lines to an io.Writer.
type Writer struct {
	W io.Writer
	// Filter, when non-nil, drops events for which it returns false.
	Filter func(Event) bool

	mu  sync.Mutex
	err error
}

// NewWriter returns a Tracer writing one line per event to w.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

// Emit implements Tracer.
func (t *Writer) Emit(e Event) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintln(t.W, e.String())
}

// Err returns the first write error, if any.
func (t *Writer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Counter tallies events by kind — the cheap Tracer for tests.
type Counter struct {
	counts [numKinds]int64
	last   Event
	n      int64
}

// Emit implements Tracer.
func (c *Counter) Emit(e Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind]++
	}
	c.last = e
	c.n++
}

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) int64 { return c.counts[k] }

// Total returns the overall event count.
func (c *Counter) Total() int64 { return c.n }

// Last returns the most recent event.
func (c *Counter) Last() Event { return c.last }

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
