package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		SendData:    "send-data",
		RecvData:    "recv-data",
		Detect:      "detect",
		SendRequest: "send-request",
		SendRepair:  "send-repair",
		Recover:     "recover",
		Drop:        "drop",
		Kind(200):   "kind(200)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1.5, Kind: Recover, Node: 3, Peer: 7, Seq: 12}
	s := e.String()
	for _, frag := range []string{"recover", "node=3", "peer=7", "seq=12"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("event string %q missing %q", s, frag)
		}
	}
	noPeer := Event{At: 1, Kind: Detect, Node: 2, Peer: -1, Seq: 5}
	if strings.Contains(noPeer.String(), "peer=") {
		t.Fatal("peer rendered for peerless event")
	}
}

func TestWriterStreamsLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{At: 1, Kind: Detect, Node: 2, Peer: -1, Seq: 3})
	w.Emit(Event{At: 2, Kind: Recover, Node: 2, Peer: 9, Seq: 3})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
}

func TestWriterFilter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Filter = func(e Event) bool { return e.Kind == Recover }
	w.Emit(Event{Kind: Detect})
	w.Emit(Event{Kind: Recover})
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("filter passed %d events, want 1", n)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "boom" }

func TestWriterRecordsFirstError(t *testing.T) {
	w := NewWriter(failingWriter{})
	w.Emit(Event{Kind: Detect})
	if w.Err() == nil {
		t.Fatal("write error not recorded")
	}
	w.Emit(Event{Kind: Detect}) // must not panic, must keep first error
	if w.Err() == nil {
		t.Fatal("error lost")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Emit(Event{Kind: Detect, Seq: 1})
	c.Emit(Event{Kind: Detect, Seq: 2})
	c.Emit(Event{Kind: Recover, Seq: 2})
	if c.Count(Detect) != 2 || c.Count(Recover) != 1 || c.Count(Drop) != 0 {
		t.Fatalf("counts wrong: %d/%d", c.Count(Detect), c.Count(Recover))
	}
	if c.Total() != 3 || c.Last().Seq != 2 {
		t.Fatal("total/last wrong")
	}
}

func TestMulti(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b}
	m.Emit(Event{Kind: Drop})
	if a.Count(Drop) != 1 || b.Count(Drop) != 1 {
		t.Fatal("multi did not fan out")
	}
}
