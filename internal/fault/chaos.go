package fault

import (
	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// ChaosParams drives the random schedule generator used by the chaos
// sweeps. All rates are per-run probabilities; all times derive from Span,
// the data-transmission duration of the run. The generated schedule is a
// pure function of the parameters and the rng seed, so chaos sweep cells
// stay bit-identical at any worker count.
type ChaosParams struct {
	// CrashRate is the probability that a given client crashes during the
	// run. Crash times fall in [0.1, 0.7]·Span so the protocols both lose
	// traffic to the crash and get time to recover afterwards.
	CrashRate float64
	// PermanentFrac is the fraction of crashing clients that never recover
	// (the rest come back after a downtime in [0.05, 0.25]·Span).
	PermanentFrac float64
	// LinkDownRate is the probability that a given link suffers one outage
	// window during the run, lasting [0.02, 0.1]·Span.
	LinkDownRate float64
	// BurstSeverity in [0, 1] scales Gilbert–Elliott burst loss applied to
	// every link: 0 disables bursts entirely (flat Bernoulli loss only);
	// 1 is the harshest regime (frequent bad states losing most packets).
	BurstSeverity float64
	// BaseLoss is the flat per-link loss probability the burst model's good
	// state inherits, so burst cells degrade from — rather than replace —
	// the sweep's configured loss floor.
	BaseLoss float64
	// Span is the data-transmission duration (Packets·Interval), ms.
	Span float64
}

// BurstFromSeverity maps a severity in [0, 1] and a base loss rate to
// Gilbert–Elliott parameters: the good state keeps the flat base loss, the
// bad state loses 30–70% of crossings, and bad states arrive more often and
// linger longer as severity rises. Severity ≤ 0 returns ok=false (no burst
// chain at all).
func BurstFromSeverity(severity, baseLoss float64) (GEParams, bool) {
	if severity <= 0 {
		return GEParams{}, false
	}
	if severity > 1 {
		severity = 1
	}
	return GEParams{
		PGB:      0.02 * severity,
		PBG:      0.4 - 0.25*severity,
		LossGood: baseLoss,
		LossBad:  0.3 + 0.4*severity,
	}.Clamped(), true
}

// Generate builds a chaos schedule over the given clients and links. Every
// stochastic choice draws from r in a fixed order (clients, then links), so
// the result is deterministic in (params, seed). The source is never
// crashed — the liveness invariant is conditioned on the source staying up.
func Generate(p ChaosParams, clients []graph.NodeID, numLinks int, r *rng.Rand) *Schedule {
	s := &Schedule{}
	span := p.Span
	if span <= 0 {
		span = 1
	}
	for _, c := range clients {
		if r.Float64() >= p.CrashRate {
			continue
		}
		at := r.Uniform(0.1, 0.7) * span
		if r.Float64() < p.PermanentFrac {
			s.CrashWindow(c, at, at) // to ≤ from: down forever
			continue
		}
		s.CrashWindow(c, at, at+r.Uniform(0.05, 0.25)*span)
	}
	for l := 0; l < numLinks; l++ {
		if r.Float64() >= p.LinkDownRate {
			continue
		}
		at := r.Uniform(0.1, 0.7) * span
		s.LinkDownWindow(graph.EdgeID(l), at, at+r.Uniform(0.02, 0.1)*span)
	}
	if ge, ok := BurstFromSeverity(p.BurstSeverity, p.BaseLoss); ok {
		for l := 0; l < numLinks; l++ {
			s.SetBurst(graph.EdgeID(l), ge)
		}
	}
	return s.Normalize()
}
