package fault

import (
	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// ChurnParams drives the mobility-style churn generator used by the churn
// sweep (experiment.ChurnSweep): instead of the chaos generator's uniform
// crash lottery, churn aims its crash waves at the *coordinator succession
// line* — the ranked election order of core.ElectionOrder — so a failover-
// capable protocol is forced through repeated RP re-elections, the scenario
// Baddi & El Kettani's mobile-IPv6 RP re-selection frames. Background
// blackouts model ordinary member mobility. The generated schedule is a pure
// function of (params, ranked, seed), so sweep cells stay bit-identical at
// any worker count, and the same schedule can be handed to protocols with no
// failover notion (for them, wave targets are just well-placed clients).
type ChurnParams struct {
	// Rate in [0, 1] scales the whole generator: wave count and background
	// blackout probability both grow linearly with it. Rate 0 generates an
	// empty schedule.
	Rate float64
	// Waves is the coordinator-kill wave count at Rate 1 (default 4): wave i
	// crashes ranked[i], i.e. the RP the i-th election is expected to seat.
	Waves int
	// BackgroundRate is the per-client probability (at Rate 1) of one
	// mobility blackout window during the run (default 0.15).
	BackgroundRate float64
	// DowntimeFrac scales blackout lengths: each downtime draws from
	// [0.5, 1.5]·DowntimeFrac·Span (default 0.1).
	DowntimeFrac float64
	// PermanentFrac is the fraction of coordinator-kill waves whose target
	// never recovers (default 0.3; set negative for none) — the rest come
	// back and must be re-admitted as regular peers.
	PermanentFrac float64
	// Span is the data-transmission duration (Packets·Interval), ms.
	Span float64
}

// withDefaults fills the zero-value knobs.
func (p ChurnParams) withDefaults() ChurnParams {
	if p.Waves <= 0 {
		p.Waves = 4
	}
	if p.BackgroundRate <= 0 {
		p.BackgroundRate = 0.15
	}
	if p.DowntimeFrac <= 0 {
		p.DowntimeFrac = 0.1
	}
	switch {
	case p.PermanentFrac == 0:
		p.PermanentFrac = 0.3
	case p.PermanentFrac < 0:
		p.PermanentFrac = 0
	}
	if p.Span <= 0 {
		p.Span = 1
	}
	return p
}

// GenerateChurn builds a mobility-style churn schedule. ranked is the
// coordinator succession line (core.ElectionOrder): wave i crashes
// ranked[i], with wave times spread in ascending order across
// [0.15, 0.65]·Span so each re-election has traffic to recover before the
// next wave hits its successor. Clients not consumed by a wave may suffer
// one background blackout each. Every stochastic choice draws from r in a
// fixed order (waves first, then the remaining clients in ranked order), so
// the schedule is deterministic in (params, ranked, seed).
func GenerateChurn(p ChurnParams, ranked []graph.NodeID, r *rng.Rand) *Schedule {
	p = p.withDefaults()
	s := &Schedule{}
	rate := clamp01(p.Rate)
	if rate == 0 {
		return s
	}
	waves := int(float64(p.Waves)*rate + 0.5)
	if waves > len(ranked) {
		waves = len(ranked)
	}
	for i := 0; i < waves; i++ {
		// Ascending, jittered wave instants: the i-th wave lands in the i-th
		// sub-interval of [0.15, 0.65]·Span.
		lo := 0.15 + 0.5*float64(i)/float64(waves)
		hi := 0.15 + 0.5*float64(i+1)/float64(waves)
		at := r.Uniform(lo, hi) * p.Span
		down := r.Uniform(0.5, 1.5) * p.DowntimeFrac * p.Span
		if r.Float64() < p.PermanentFrac {
			s.CrashWindow(ranked[i], at, at) // to ≤ from: down forever
			continue
		}
		s.CrashWindow(ranked[i], at, at+down)
	}
	for _, c := range ranked[waves:] {
		if r.Float64() >= p.BackgroundRate*rate {
			continue
		}
		at := r.Uniform(0.1, 0.7) * p.Span
		s.CrashWindow(c, at, at+r.Uniform(0.5, 1.5)*p.DowntimeFrac*p.Span)
	}
	return s.Normalize()
}
