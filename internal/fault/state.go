package fault

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// window is one half-open downtime interval [From, To). A permanent outage
// has To = +Inf.
type window struct {
	From, To float64
}

// windows is a sorted, disjoint set of downtime intervals.
type windows []window

// downAt reports whether t falls inside any interval.
func (ws windows) downAt(t float64) bool {
	// First window starting after t; the candidate is its predecessor.
	i := sort.Search(len(ws), func(i int) bool { return ws[i].From > t })
	return i > 0 && t < ws[i-1].To
}

// geChain is one link's Gilbert–Elliott state.
type geChain struct {
	p   GEParams
	bad bool
}

// State is the runtime form of a Schedule, bound to one simulation run. It
// answers time-indexed up/down queries from precompiled downtime windows —
// so the network can ask about *future* traversal instants, not just the
// current clock — and steps the burst chains from its own private rng
// stream, keeping the network's Bernoulli loss stream untouched.
//
// State is not safe for concurrent use; like the rest of the simulator it
// belongs to a single run.
type State struct {
	sched *Schedule
	hosts map[graph.NodeID]windows
	links map[graph.EdgeID]windows
	burst map[graph.EdgeID]*geChain
	mut   *Mutator
	r     *rng.Rand
}

// NewState compiles a schedule into its runtime form. The schedule is
// normalized in place (events sorted, probabilities clamped); the rng
// stream is owned by the state afterwards. A nil schedule yields a state
// that injects nothing.
func NewState(s *Schedule, r *rng.Rand) *State {
	st := &State{
		sched: s,
		hosts: make(map[graph.NodeID]windows),
		links: make(map[graph.EdgeID]windows),
		burst: make(map[graph.EdgeID]*geChain),
		r:     r,
	}
	if s == nil {
		return st
	}
	s.Normalize()
	// Compile per-entity downtime windows. Events arrive time-sorted;
	// redundant transitions (crash while down, recover while up) are
	// ignored, and an unmatched down-transition extends to +Inf.
	hostDown := make(map[graph.NodeID]float64)
	linkDown := make(map[graph.EdgeID]float64)
	for _, e := range s.Events {
		switch e.Kind {
		case CrashHost:
			if _, down := hostDown[e.Node]; !down {
				hostDown[e.Node] = e.At
			}
		case RecoverHost:
			if from, down := hostDown[e.Node]; down {
				if e.At > from {
					st.hosts[e.Node] = append(st.hosts[e.Node], window{from, e.At})
				}
				delete(hostDown, e.Node)
			}
		case LinkDown:
			if _, down := linkDown[e.Link]; !down {
				linkDown[e.Link] = e.At
			}
		case LinkUp:
			if from, down := linkDown[e.Link]; down {
				if e.At > from {
					st.links[e.Link] = append(st.links[e.Link], window{from, e.At})
				}
				delete(linkDown, e.Link)
			}
		}
	}
	for n, from := range hostDown {
		st.hosts[n] = append(st.hosts[n], window{from, math.Inf(1)})
	}
	for l, from := range linkDown {
		st.links[l] = append(st.links[l], window{from, math.Inf(1)})
	}
	// Each entity's windows were appended in event-time order (and any
	// trailing +Inf window starts after every closed one), so the per-entity
	// lists are already sorted and disjoint.
	for l, p := range s.Burst {
		st.burst[l] = &geChain{p: p}
	}
	// The mutator's stream is split off only when mutation is configured,
	// so a mutation-free schedule leaves the burst chains' draws — and
	// therefore the whole run — byte-identical to before this layer.
	if !s.Mutation.Empty() {
		st.mut = newMutator(s.Mutation, r.Split())
	}
	return st
}

// Mutator returns the compiled message-plane mutator (nil when the schedule
// configures none).
func (st *State) Mutator() *Mutator { return st.mut }

// Schedule returns the compiled schedule (nil when none).
func (st *State) Schedule() *Schedule { return st.sched }

// HostUpAt reports whether a host is up at time t.
func (st *State) HostUpAt(n graph.NodeID, t float64) bool {
	ws, ok := st.hosts[n]
	return !ok || !ws.downAt(t)
}

// HostDownUntil returns the end of the downtime window containing t for
// host n: NaN when the host is up at t, +Inf for a permanent crash. The
// session uses it to defer a crashed client's loss detection to its
// recovery instant.
func (st *State) HostDownUntil(n graph.NodeID, t float64) float64 {
	ws := st.hosts[n]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].From > t })
	if i > 0 && t < ws[i-1].To {
		return ws[i-1].To
	}
	return math.NaN()
}

// LinkUpAt reports whether a link is up at time t.
func (st *State) LinkUpAt(l graph.EdgeID, t float64) bool {
	ws, ok := st.links[l]
	return !ok || !ws.downAt(t)
}

// HostEverFaulty reports whether the schedule ever takes this host down —
// engines use it to skip fault bookkeeping for hosts the schedule never
// touches.
func (st *State) HostEverFaulty(n graph.NodeID) bool {
	_, ok := st.hosts[n]
	return ok
}

// CrossBurst steps the burst chain of a link for one packet crossing and
// reports whether the crossing is lost, plus whether a chain is configured
// at all (ok=false means the caller should fall back to its flat loss
// model). Chains are stepped in crossing order — the standard per-packet
// Gilbert–Elliott discipline — from the state's private rng stream.
func (st *State) CrossBurst(l graph.EdgeID) (lost, ok bool) {
	c := st.burst[l]
	if c == nil {
		return false, false
	}
	p := c.p.LossGood
	if c.bad {
		p = c.p.LossBad
	}
	lost = st.r.Float64() < p
	// Transition after the draw.
	if c.bad {
		if st.r.Float64() < c.p.PBG {
			c.bad = false
		}
	} else if st.r.Float64() < c.p.PGB {
		c.bad = true
	}
	return lost, true
}

// HostEvents returns the effective host crash/recover transitions, sorted
// by time with ties broken by node ID, for wiring OnCrash/OnRecover hooks
// into an event engine. They are derived from the compiled downtime windows
// rather than the raw schedule, so redundant transitions (a crash while
// already down) never fire a hook twice, and a permanent crash yields no
// recover event.
func (st *State) HostEvents() []Event {
	var out []Event
	for n, ws := range st.hosts {
		for _, w := range ws {
			out = append(out, Event{At: w.From, Kind: CrashHost, Node: n})
			if !math.IsInf(w.To, 1) {
				out = append(out, Event{At: w.To, Kind: RecoverHost, Node: n})
			}
		}
	}
	slices.SortFunc(out, func(a, b Event) int {
		if c := cmp.Compare(a.At, b.At); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Node, b.Node); c != 0 {
			return c
		}
		return cmp.Compare(a.Kind, b.Kind)
	})
	return out
}
