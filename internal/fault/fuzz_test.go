package fault

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// FuzzSchedule drives schedule construction and state compilation with
// arbitrary inputs: whatever the fuzzer supplies, construction must not
// panic, burst probabilities must come out clamped to [0, 1], compiled
// events must be time-sorted, and time queries must be consistent with the
// schedule's windows.
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), 100.0, 200.0, 0.5, 0.5, 0.1, 0.9, int16(4), int16(3))
	f.Add(uint64(2), -5.0, math.Inf(1), 2.0, -1.0, math.NaN(), 1e300, int16(0), int16(0))
	f.Add(uint64(3), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, int16(1), int16(1))
	f.Fuzz(func(t *testing.T, seed uint64, t1, t2, pgb, pbg, lg, lb float64, nodes, links int16) {
		numNodes := int(nodes)%64 + 64 // 64..127, always a valid network
		numLinks := int(links)%64 + 64
		r := rng.New(seed)
		s := &Schedule{}
		// Builder calls with fuzzer-controlled times and entities.
		n1 := graph.NodeID(r.Intn(numNodes))
		n2 := graph.NodeID(r.Intn(numNodes))
		l1 := graph.EdgeID(r.Intn(numLinks))
		s.CrashWindow(n1, t1, t2)
		s.CrashHost(t2, n2)
		s.RecoverHost(t1, n2)
		s.LinkDownWindow(l1, t1, t2)
		ge := GEParams{PGB: pgb, PBG: pbg, LossGood: lg, LossBad: lb}
		s.SetBurst(l1, ge)
		s.Normalize()

		// Probabilities clamped to [0, 1].
		for _, p := range s.Burst {
			for _, v := range []float64{p.PGB, p.PBG, p.LossGood, p.LossBad} {
				if !(v >= 0 && v <= 1) {
					t.Fatalf("unclamped probability %v in %+v", v, p)
				}
			}
		}
		// Events sorted by time (NaN never compares, so skip the order
		// check when one slipped in — Validate rejects it below).
		invalidTime := false
		for _, e := range s.Events {
			if !(e.At >= 0) { // negative or NaN
				invalidTime = true
			}
		}
		if !invalidTime {
			for i := 1; i < len(s.Events); i++ {
				if s.Events[i].At < s.Events[i-1].At {
					t.Fatalf("events unsorted after Normalize: %+v", s.Events)
				}
			}
		}
		// Validate must reject NaN/negative times rather than panic.
		if err := s.Validate(numNodes, numLinks); invalidTime && err == nil {
			t.Fatal("invalid event time accepted")
		}
		// State compilation and queries must never panic, and burst
		// stepping must stay in range.
		st := NewState(s, r)
		for _, at := range []float64{0, t1, t2, 1e308} {
			if at == at { // skip NaN query times
				st.HostUpAt(n1, at)
				st.LinkUpAt(l1, at)
			}
		}
		for i := 0; i < 32; i++ {
			st.CrossBurst(l1)
		}
		st.HostEvents()
	})
}
