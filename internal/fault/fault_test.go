package fault

import (
	"math"
	"reflect"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

func TestWindowsQueries(t *testing.T) {
	s := (&Schedule{}).
		CrashWindow(3, 100, 200).
		CrashWindow(3, 500, 600).
		CrashWindow(7, 50, 50). // permanent
		LinkDownWindow(2, 10, 20)
	st := NewState(s, rng.New(1))

	cases := []struct {
		node graph.NodeID
		at   float64
		up   bool
	}{
		{3, 99.9, true}, {3, 100, false}, {3, 150, false}, {3, 200, true},
		{3, 550, false}, {3, 700, true},
		{7, 49, true}, {7, 50, false}, {7, 1e9, false},
		{1, 0, true}, {1, 1e9, true}, // untouched host
	}
	for _, c := range cases {
		if got := st.HostUpAt(c.node, c.at); got != c.up {
			t.Errorf("HostUpAt(%d, %v) = %v, want %v", c.node, c.at, got, c.up)
		}
	}
	if st.LinkUpAt(2, 15) || !st.LinkUpAt(2, 25) || !st.LinkUpAt(0, 15) {
		t.Error("link window queries wrong")
	}
	if !st.HostEverFaulty(3) || st.HostEverFaulty(1) {
		t.Error("HostEverFaulty wrong")
	}
}

func TestRedundantTransitionsCollapse(t *testing.T) {
	// Crash-while-down and recover-while-up must not duplicate hooks or
	// corrupt windows.
	s := &Schedule{}
	s.CrashHost(10, 1)
	s.CrashHost(15, 1) // redundant
	s.RecoverHost(20, 1)
	s.RecoverHost(25, 1) // redundant
	st := NewState(s, rng.New(1))
	ev := st.HostEvents()
	want := []Event{
		{At: 10, Kind: CrashHost, Node: 1},
		{At: 20, Kind: RecoverHost, Node: 1},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("HostEvents = %+v, want %+v", ev, want)
	}
	if !st.HostUpAt(1, 22) || st.HostUpAt(1, 17) {
		t.Fatal("collapsed windows query wrong")
	}
}

func TestHostEventsSorted(t *testing.T) {
	s := &Schedule{}
	s.CrashWindow(5, 300, 400)
	s.CrashWindow(2, 100, 100) // permanent: no recover event
	s.CrashWindow(9, 100, 150)
	st := NewState(s, rng.New(1))
	ev := st.HostEvents()
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order: %+v", ev)
		}
	}
	for _, e := range ev {
		if e.Node == 2 && e.Kind == RecoverHost {
			t.Fatal("permanent crash produced a recover event")
		}
	}
}

func TestEmptyScheduleInjectsNothing(t *testing.T) {
	for _, st := range []*State{NewState(nil, rng.New(1)), NewState(&Schedule{}, rng.New(1))} {
		if !st.HostUpAt(0, 1e6) || !st.LinkUpAt(0, 1e6) {
			t.Fatal("empty state reports downtime")
		}
		if _, ok := st.CrossBurst(0); ok {
			t.Fatal("empty state has a burst chain")
		}
		if st.HostEvents() != nil {
			t.Fatal("empty state has host events")
		}
	}
	if !(&Schedule{}).Empty() || !(*Schedule)(nil).Empty() {
		t.Fatal("Empty() wrong for empty schedules")
	}
	if (&Schedule{Events: []Event{{At: 1, Kind: CrashHost}}}).Empty() {
		t.Fatal("Empty() wrong for non-empty schedule")
	}
}

func TestGEChainsAreBursty(t *testing.T) {
	// An extreme chain (always lose in bad, never in good) must produce
	// runs of losses, and the long-run loss rate must sit near the chain's
	// stationary bad-state probability PGB/(PGB+PBG).
	s := (&Schedule{}).SetBurst(0, GEParams{PGB: 0.1, PBG: 0.3, LossGood: 0, LossBad: 1})
	st := NewState(s, rng.New(42))
	const n = 200000
	lost := 0
	for i := 0; i < n; i++ {
		if l, ok := st.CrossBurst(0); !ok {
			t.Fatal("chain missing")
		} else if l {
			lost++
		}
	}
	rate := float64(lost) / n
	stationary := 0.1 / (0.1 + 0.3)
	if math.Abs(rate-stationary) > 0.02 {
		t.Fatalf("loss rate %.4f far from stationary %.4f", rate, stationary)
	}
}

func TestGEDeterministic(t *testing.T) {
	mk := func() []bool {
		s := (&Schedule{}).SetBurst(1, GEParams{PGB: 0.2, PBG: 0.4, LossGood: 0.05, LossBad: 0.8})
		st := NewState(s, rng.New(7))
		out := make([]bool, 500)
		for i := range out {
			out[i], _ = st.CrossBurst(1)
		}
		return out
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("identical seeds produced different burst fates")
	}
}

func TestClamping(t *testing.T) {
	g := GEParams{PGB: 2, PBG: -1, LossGood: math.NaN(), LossBad: 0.5}.Clamped()
	want := GEParams{PGB: 1, PBG: 0, LossGood: 0, LossBad: 0.5}
	if g != want {
		t.Fatalf("Clamped() = %+v, want %+v", g, want)
	}
	s := (&Schedule{}).SetBurst(0, GEParams{PGB: 99, LossBad: -3})
	if p := s.Burst[0]; p.PGB != 1 || p.LossBad != 0 {
		t.Fatalf("SetBurst did not clamp: %+v", p)
	}
}

func TestValidate(t *testing.T) {
	ok := (&Schedule{}).CrashWindow(2, 10, 20).LinkDownWindow(1, 5, 6)
	if err := ok.Validate(4, 3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []*Schedule{
		(&Schedule{}).CrashHost(-1, 0),
		(&Schedule{}).CrashHost(math.NaN(), 0),
		(&Schedule{}).CrashHost(1, 99),
		(&Schedule{}).LinkDown(1, 99),
		{Events: []Event{{At: 1, Kind: EventKind(250)}}},
	}
	for i, s := range bad {
		if err := s.Validate(4, 3); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	clients := []graph.NodeID{2, 3, 5, 8, 13}
	p := ChaosParams{
		CrashRate: 0.8, PermanentFrac: 0.3, LinkDownRate: 0.5,
		BurstSeverity: 0.7, BaseLoss: 0.05, Span: 5000,
	}
	a := Generate(p, clients, 10, rng.New(99))
	b := Generate(p, clients, 10, rng.New(99))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic in its seed")
	}
	if err := a.Validate(20, 10); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatal("generated events not sorted")
		}
	}
	// Severity 0 must not attach burst chains.
	p.BurstSeverity = 0
	if c := Generate(p, clients, 10, rng.New(99)); len(c.Burst) != 0 {
		t.Fatal("severity 0 attached burst chains")
	}
}
