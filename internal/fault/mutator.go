// Message-plane mutation: the adversarial half of the fault model. The
// schedule half (schedule.go) attacks the *topology* — hosts crash, links
// die, loss bursts — while the mutator attacks the *messages* themselves:
// recovery requests and repairs are duplicated, delayed out of order,
// corrupted, or amplified into repair storms. The paper's model assumes a
// polite control plane (one NACK begets one repair, §3.1 ignores control
// loss entirely); related work on cooperative recovery treats unreliable
// clients and reordered repairs as the norm, so this layer exists to prove
// the engines stay safe and live when the politeness assumption breaks.
//
// Everything is deterministic: the mutator draws from a private rng stream
// split off the fault state's, and an empty MutationConfig never splits
// that stream at all, so runs without mutation stay byte-identical to runs
// before this layer existed (the same guarantee Schedule gives for empty
// schedules). Configs are never written after construction — the runtime
// Mutator clamps into its own copy — so one config value can be shared
// across parallel sweep cells.
package fault

import "rmcast/internal/rng"

// MsgClass classifies packets for mutation. The fault package cannot see
// sim.Kind (sim imports fault), so the network layer maps packet kinds onto
// these classes; data packets are never mutated — the adversary owns the
// control plane, not the source's transmission, which the loss model
// already covers.
type MsgClass uint8

const (
	// ClassRequest covers recovery requests: RP/RMA/SRC unicast requests,
	// SRM NACK floods, and explicit NAK replies.
	ClassRequest MsgClass = iota
	// ClassRepair covers retransmissions.
	ClassRepair
	// ClassSymbol covers coded repair symbols (the COOP engine's block
	// recovery traffic): repair-kind packets whose payload is a coded
	// symbol rather than a plain retransmission.
	ClassSymbol
	numClasses
)

// CorruptMode says which field of a packet the mutator damaged. Corruption
// models *detectably* invalid packets — post-checksum header damage that
// validation must catch — so corrupted values are always outside the valid
// domain (negative seq/from, or a Garbage payload): the mutator never
// forges a packet that engines could mistake for a legitimate one, which
// would attack the experiment's bookkeeping rather than the protocol.
type CorruptMode uint8

const (
	CorruptNone CorruptMode = iota
	// CorruptSeq flips the sequence number out of range.
	CorruptSeq
	// CorruptFrom flips the sender field out of range.
	CorruptFrom
	// CorruptPayload replaces the payload with garbage (requests only:
	// repair payloads are never inspected, so garbage there is vacuous).
	CorruptPayload
	// CorruptSymbolIndex flips a coded symbol's index out of range
	// (symbol class only): the receiver must reject it as malformed, not
	// credit it toward a block's decode rank.
	CorruptSymbolIndex
	// CorruptSymbolTrunc truncates a coded symbol's payload — modelled as
	// replacing it with garbage (symbol class only). Like every corrupt
	// mode it is detectably invalid, never a forgeable valid symbol.
	CorruptSymbolTrunc
)

// symbolCorruptModes are the corruption outcomes drawn for ClassSymbol:
// header flips plus the two symbol-specific damages.
var symbolCorruptModes = [...]CorruptMode{
	CorruptSeq, CorruptFrom, CorruptSymbolIndex, CorruptSymbolTrunc,
}

const (
	// maxDupDefault bounds the geometric duplicate draw when MaxDup is 0.
	maxDupDefault = 3
	// maxDupCap is the hard per-delivery duplicate bound.
	maxDupCap = 8
	// maxStormExtra is the hard per-delivery storm amplification bound.
	maxStormExtra = 16
	// maxMutationDelay (ms) bounds reorder/duplicate jitter; unbounded
	// delay would be a drop, which the loss model already owns.
	maxMutationDelay = 10_000
	// maxCorruptProb keeps corruption below certainty: a plane that
	// corrupts every packet is a dead network, outside even the
	// adversarial model's "reliable network eventually delivers" floor
	// that the liveness invariant is conditioned on.
	maxCorruptProb = 0.9
)

// MutationParams are the per-class mutation intensities. The zero value
// mutates nothing.
type MutationParams struct {
	// DupProb is the probability of each extra copy of a delivery: copies
	// are drawn geometrically (another copy with probability DupProb,
	// up to MaxDup), each arriving at its own delay in [0, MaxDelay).
	DupProb float64
	// MaxDup caps the extra copies per delivery (0 means 3, hard cap 8).
	MaxDup int
	// ReorderProb is the probability the original delivery is delayed by
	// U[0, MaxDelay) ms — enough to land it behind later traffic.
	ReorderProb float64
	// MaxDelay (ms) bounds all mutation-injected delay (hard cap 10 s).
	MaxDelay float64
	// CorruptProb is the probability the original delivery is corrupted
	// (see CorruptMode); duplicates stay intact. Hard-capped at 0.9.
	CorruptProb float64
}

// clamped returns a copy with every field forced into its legal range
// (probabilities to [0,1], NaN to 0, delay and counts to their caps).
func (p MutationParams) clamped() MutationParams {
	p.DupProb = clamp01(p.DupProb)
	p.ReorderProb = clamp01(p.ReorderProb)
	p.CorruptProb = clamp01(p.CorruptProb)
	if p.CorruptProb > maxCorruptProb {
		p.CorruptProb = maxCorruptProb
	}
	if !(p.MaxDelay > 0) { // negative or NaN
		p.MaxDelay = 0
	}
	if p.MaxDelay > maxMutationDelay {
		p.MaxDelay = maxMutationDelay
	}
	if p.MaxDup <= 0 {
		p.MaxDup = maxDupDefault
	}
	if p.MaxDup > maxDupCap {
		p.MaxDup = maxDupCap
	}
	return p
}

// Empty reports whether the parameters mutate nothing.
func (p MutationParams) Empty() bool {
	c := p.clamped()
	return c.DupProb == 0 && c.ReorderProb == 0 && c.CorruptProb == 0
}

// StormWindow is a targeted repair-storm amplification window: every repair
// delivery whose injection instant falls in [From, To) gains Extra further
// copies, modelling the feedback implosions that suppression mechanisms
// exist to prevent.
type StormWindow struct {
	From, To float64
	Extra    int
}

// active reports whether the window can ever amplify anything (NaN bounds
// never match any instant).
func (w StormWindow) active() bool {
	return w.Extra > 0 && w.From == w.From && w.To > w.From
}

// MutationConfig is the declarative message-plane adversary attached to a
// Schedule. The zero value (and nil) mutates nothing. Configs are read-only
// after construction: the runtime clamps into private copies, so a single
// config may be shared across concurrent runs.
type MutationConfig struct {
	// Request, Repair, and Symbol are the per-class mutation intensities
	// (Symbol covers coded repair symbols; inert for engines that send
	// none).
	Request MutationParams
	Repair  MutationParams
	Symbol  MutationParams
	// Storms amplify repair and symbol deliveries inside their windows.
	Storms []StormWindow
}

// Empty reports whether the config mutates nothing.
func (c *MutationConfig) Empty() bool {
	if c == nil {
		return true
	}
	if !c.Request.Empty() || !c.Repair.Empty() || !c.Symbol.Empty() {
		return false
	}
	for _, w := range c.Storms {
		if w.active() {
			return false
		}
	}
	return true
}

// MutationFromIntensity maps one adversarial intensity in [0, 1] to a
// mutation config, the way BurstFromSeverity maps severity to a burst
// regime: at intensity 1, every control delivery is duplicated with
// probability 0.3 (up to 3 extra copies), reordered with probability 0.4 by
// up to 25 ms, corrupted with probability 0.12, and a storm window over the
// middle tenth of the span triples repairs. Intensity ≤ 0 returns nil — the
// legacy, mutation-free plane.
func MutationFromIntensity(intensity, span float64) *MutationConfig {
	if !(intensity > 0) { // ≤ 0 or NaN
		return nil
	}
	if intensity > 1 {
		intensity = 1
	}
	if !(span > 0) {
		span = 1
	}
	p := MutationParams{
		DupProb:     0.3 * intensity,
		ReorderProb: 0.4 * intensity,
		MaxDelay:    25 * intensity,
		CorruptProb: 0.12 * intensity,
	}
	return &MutationConfig{
		Request: p,
		Repair:  p,
		Symbol:  p,
		Storms: []StormWindow{
			{From: 0.35 * span, To: 0.45 * span, Extra: 1 + int(2*intensity)},
		},
	}
}

// Mutation is one delivery's sampled fate: the original copy arrives Delay
// ms late (possibly corrupted), and one extra intact copy arrives per entry
// of Copies. The Copies slice aliases the Mutator's scratch buffer and is
// only valid until the next Sample call.
type Mutation struct {
	Delay   float64
	Copies  []float64
	Corrupt CorruptMode
}

// Mutator is the runtime message-plane adversary, compiled from a
// MutationConfig with a private rng stream. Like the rest of the fault
// state it belongs to a single run.
type Mutator struct {
	classes [numClasses]MutationParams
	active  [numClasses]bool
	storms  []StormWindow
	r       *rng.Rand
	scratch []float64
}

// newMutator clamps the config into a private copy; cfg itself is never
// written (it may be shared across parallel runs).
func newMutator(cfg *MutationConfig, r *rng.Rand) *Mutator {
	m := &Mutator{r: r}
	m.classes[ClassRequest] = cfg.Request.clamped()
	m.classes[ClassRepair] = cfg.Repair.clamped()
	m.classes[ClassSymbol] = cfg.Symbol.clamped()
	for _, w := range cfg.Storms {
		if !w.active() {
			continue
		}
		if w.Extra > maxStormExtra {
			w.Extra = maxStormExtra
		}
		m.storms = append(m.storms, w)
	}
	m.active[ClassRequest] = !cfg.Request.Empty()
	m.active[ClassRepair] = !cfg.Repair.Empty() || len(m.storms) > 0
	m.active[ClassSymbol] = !cfg.Symbol.Empty() || len(m.storms) > 0
	return m
}

// Active reports whether this class can be mutated at all — the network
// layer's cheap pre-check, keeping unmutated classes entirely draw-free so
// their event streams match the mutation-free run exactly.
func (m *Mutator) Active(class MsgClass) bool { return m.active[class] }

// Sample draws one delivery's fate into out and reports whether anything
// was mutated (false means deliver exactly as today). at is the injection
// instant, used for storm-window membership. out.Copies aliases the
// mutator's scratch buffer: consume it before the next Sample.
func (m *Mutator) Sample(class MsgClass, at float64, out *Mutation) bool {
	p := m.classes[class]
	out.Delay = 0
	out.Corrupt = CorruptNone
	m.scratch = m.scratch[:0]
	if p.DupProb > 0 {
		for i := 0; i < p.MaxDup && m.r.Bool(p.DupProb); i++ {
			m.scratch = append(m.scratch, m.jitter(p))
		}
	}
	if class != ClassRequest {
		// Storms amplify repair-plane traffic: plain retransmissions and
		// coded symbols alike.
		for _, w := range m.storms {
			if at >= w.From && at < w.To {
				for i := 0; i < w.Extra; i++ {
					m.scratch = append(m.scratch, m.jitter(p))
				}
			}
		}
	}
	if p.ReorderProb > 0 && m.r.Bool(p.ReorderProb) {
		out.Delay = m.jitter(p)
	}
	if p.CorruptProb > 0 && m.r.Bool(p.CorruptProb) {
		switch class {
		case ClassRequest:
			out.Corrupt = CorruptMode(1 + m.r.Intn(3))
		case ClassSymbol:
			// Symbol payloads ARE inspected: header flips plus the two
			// symbol-specific damages (out-of-range index, truncation).
			out.Corrupt = symbolCorruptModes[m.r.Intn(len(symbolCorruptModes))]
		default:
			// Repair payloads are never inspected, so garbage there
			// would mutate nothing observable; flip header fields only.
			out.Corrupt = CorruptMode(1 + m.r.Intn(2))
		}
	}
	out.Copies = m.scratch
	return len(out.Copies) > 0 || out.Delay > 0 || out.Corrupt != CorruptNone
}

// jitter draws one mutation delay in [0, MaxDelay).
func (m *Mutator) jitter(p MutationParams) float64 {
	if p.MaxDelay <= 0 {
		return 0
	}
	return p.MaxDelay * m.r.Float64()
}
