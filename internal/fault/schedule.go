// Package fault provides the failure-injection layer of the simulator: a
// deterministic, seedable schedule of host crashes, link outages, and
// Gilbert–Elliott burst loss that the simulated network consults on every
// packet event.
//
// The paper derives RP under the "reliable network" approximation — a
// static client group, peers that never die, and independent Bernoulli loss
// per link. Related work studies exactly the regimes that approximation
// skips (Heidarzadeh & Sprintson's unreliable clients; Byun's repair nodes
// that must stay reachable), so this package exists to measure where RP
// degrades gracefully and where it must be hardened. Everything here is a
// deliberate departure from the paper's model; a nil or empty Schedule
// reproduces the paper's network bit-for-bit.
//
// A Schedule is declarative data (events and per-link burst parameters),
// built once per run from a seed. The runtime form is a State (see
// state.go), which answers time-indexed queries ("is host h up at t?") and
// owns the burst chains' private randomness so that attaching an empty
// fault model never perturbs the network's loss stream.
package fault

import (
	"cmp"
	"fmt"
	"slices"

	"rmcast/internal/graph"
)

// EventKind classifies schedule events.
type EventKind uint8

const (
	// CrashHost takes a host down: from the event time it drops every
	// packet it would send or receive.
	CrashHost EventKind = iota
	// RecoverHost brings a crashed host back up.
	RecoverHost
	// LinkDown takes a link down: every packet crossing it is dropped.
	LinkDown
	// LinkUp restores a downed link.
	LinkUp
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case CrashHost:
		return "crash"
	case RecoverHost:
		return "recover"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault transition. Node is meaningful for host
// events, Link for link events.
type Event struct {
	At   float64
	Kind EventKind
	Node graph.NodeID
	Link graph.EdgeID
}

// GEParams parameterises a per-link Gilbert–Elliott chain: a two-state
// Markov model stepped once per packet crossing. In the good state the
// crossing is lost with probability LossGood, in the bad state with
// LossBad; after the draw the chain transitions good→bad with PGB and
// bad→good with PBG. Chains start in the good state.
type GEParams struct {
	PGB, PBG          float64
	LossGood, LossBad float64
}

// clamp01 clamps a probability into [0, 1]; NaN becomes 0.
func clamp01(p float64) float64 {
	if !(p > 0) { // also catches NaN
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Clamped returns the parameters with every probability clamped to [0, 1].
func (g GEParams) Clamped() GEParams {
	return GEParams{
		PGB:      clamp01(g.PGB),
		PBG:      clamp01(g.PBG),
		LossGood: clamp01(g.LossGood),
		LossBad:  clamp01(g.LossBad),
	}
}

// Schedule is a declarative fault plan for one simulation run. The zero
// value is the paper's reliable network: no crashes, no outages, no bursts.
type Schedule struct {
	// Events holds the host/link transitions. Normalize keeps them sorted
	// by time (stable on ties), which State requires.
	Events []Event
	// Burst maps links to Gilbert–Elliott burst parameters; a mapped link's
	// chain replaces its flat Topo.Loss draw. Unmapped links keep the flat
	// Bernoulli model.
	Burst map[graph.EdgeID]GEParams
	// Mutation, when non-empty, attaches the adversarial message-plane
	// mutator (duplication, reorder delay, corruption, repair storms —
	// see mutator.go) to the run. The config is read-only: the runtime
	// clamps into a private copy, so it may be shared across runs.
	Mutation *MutationConfig
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && len(s.Burst) == 0 && s.Mutation.Empty())
}

// SetMutation attaches a message-plane mutation config.
func (s *Schedule) SetMutation(cfg *MutationConfig) *Schedule {
	s.Mutation = cfg
	return s
}

// CrashHost schedules a host crash at the given time.
func (s *Schedule) CrashHost(at float64, node graph.NodeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: CrashHost, Node: node})
	return s
}

// RecoverHost schedules a host recovery.
func (s *Schedule) RecoverHost(at float64, node graph.NodeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: RecoverHost, Node: node})
	return s
}

// CrashWindow schedules a crash at from and a recovery at to. A to ≤ from
// leaves the host down forever (permanent crash).
func (s *Schedule) CrashWindow(node graph.NodeID, from, to float64) *Schedule {
	s.CrashHost(from, node)
	if to > from {
		s.RecoverHost(to, node)
	}
	return s
}

// LinkDown schedules a link outage start.
func (s *Schedule) LinkDown(at float64, link graph.EdgeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: LinkDown, Link: link})
	return s
}

// LinkUp schedules a link restoration.
func (s *Schedule) LinkUp(at float64, link graph.EdgeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: LinkUp, Link: link})
	return s
}

// LinkDownWindow schedules an outage over [from, to); to ≤ from downs the
// link forever.
func (s *Schedule) LinkDownWindow(link graph.EdgeID, from, to float64) *Schedule {
	s.LinkDown(from, link)
	if to > from {
		s.LinkUp(to, link)
	}
	return s
}

// SetBurst attaches Gilbert–Elliott burst loss to one link, clamping the
// probabilities into [0, 1].
func (s *Schedule) SetBurst(link graph.EdgeID, p GEParams) *Schedule {
	if s.Burst == nil {
		s.Burst = make(map[graph.EdgeID]GEParams)
	}
	s.Burst[link] = p.Clamped()
	return s
}

// Normalize sorts the events by time (stable, so same-time events keep
// insertion order) and clamps all burst probabilities. It returns the
// schedule for chaining. State construction normalizes automatically;
// calling it earlier is harmless.
func (s *Schedule) Normalize() *Schedule {
	slices.SortStableFunc(s.Events, func(a, b Event) int { return cmp.Compare(a.At, b.At) })
	for l, p := range s.Burst {
		s.Burst[l] = p.Clamped()
	}
	return s
}

// Validate checks the schedule against a network of numNodes nodes and
// numLinks links: event times must be finite and non-negative, and every
// referenced node/link must exist. It returns the first violation found.
func (s *Schedule) Validate(numNodes, numLinks int) error {
	for i, e := range s.Events {
		if !(e.At >= 0) || e.At != e.At { // negative, NaN
			return fmt.Errorf("fault: event %d at invalid time %v", i, e.At)
		}
		switch e.Kind {
		case CrashHost, RecoverHost:
			if e.Node < 0 || int(e.Node) >= numNodes {
				return fmt.Errorf("fault: event %d references node %d of %d", i, e.Node, numNodes)
			}
		case LinkDown, LinkUp:
			if e.Link < 0 || int(e.Link) >= numLinks {
				return fmt.Errorf("fault: event %d references link %d of %d", i, e.Link, numLinks)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, e.Kind)
		}
	}
	for l := range s.Burst {
		if l < 0 || int(l) >= numLinks {
			return fmt.Errorf("fault: burst references link %d of %d", l, numLinks)
		}
	}
	return nil
}

// CrashesHost reports whether any event in the schedule crashes h.
func (s *Schedule) CrashesHost(h graph.NodeID) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == CrashHost && e.Node == h {
			return true
		}
	}
	return false
}

// ValidateRoles layers role-aware checks on top of Validate, with the two
// protected roles kept distinct:
//
//   - the SOURCE may never crash, whatever the engine: the liveness
//     invariant (every gap at a live client is eventually filled) is
//     conditioned on the source staying up, exactly as the paper's
//     source-as-last-resort argument requires;
//   - the RP/meet-router may crash only when the engine carries the
//     failover capability (rpproto's epoch-fenced re-election) — without
//     it, killing the coordinator makes every result vacuous, so the
//     schedule is rejected with instructions instead.
//
// rp is graph.None for engines with no coordinator role.
func (s *Schedule) ValidateRoles(source, rp graph.NodeID, rpFailover bool) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.Kind != CrashHost {
			continue
		}
		if e.Node == source {
			return fmt.Errorf("fault: event %d crashes the source (host %d); source crashes are always rejected — liveness is conditioned on the source staying up", i, e.Node)
		}
		if rp != graph.None && e.Node == rp && !rpFailover {
			return fmt.Errorf("fault: event %d crashes the RP (host %d) but the engine has no failover capability; enable rpproto failover (RP-FAILOVER) or keep the coordinator out of the schedule", i, e.Node)
		}
	}
	return nil
}
