package fault

import (
	"reflect"
	"strings"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

func TestValidateRoles(t *testing.T) {
	src, rp := graph.NodeID(0), graph.NodeID(5)
	srcCrash := (&Schedule{}).CrashHost(100, src)
	rpCrash := (&Schedule{}).CrashWindow(rp, 100, 200)
	bystander := (&Schedule{}).CrashHost(100, 9)

	// Source crashes are rejected unconditionally — even with failover.
	for _, fo := range []bool{false, true} {
		err := srcCrash.ValidateRoles(src, rp, fo)
		if err == nil {
			t.Fatalf("source crash accepted (failover=%v)", fo)
		}
		if !strings.Contains(err.Error(), "source") {
			t.Fatalf("source-crash error does not name the role: %v", err)
		}
	}
	// RP crashes: rejected without failover capability, accepted with.
	if err := rpCrash.ValidateRoles(src, rp, false); err == nil {
		t.Fatal("RP crash accepted without failover capability")
	} else if !strings.Contains(err.Error(), "failover") {
		t.Fatalf("RP-crash error does not point at failover: %v", err)
	}
	if err := rpCrash.ValidateRoles(src, rp, true); err != nil {
		t.Fatalf("RP crash rejected despite failover capability: %v", err)
	}
	// Non-role hosts are always fine; unknown RP (graph.None) never matches.
	if err := bystander.ValidateRoles(src, rp, false); err != nil {
		t.Fatalf("bystander crash rejected: %v", err)
	}
	if err := rpCrash.ValidateRoles(src, graph.None, false); err != nil {
		t.Fatalf("schedule rejected with no RP designated: %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.ValidateRoles(src, rp, false); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}
}

func TestCrashesHost(t *testing.T) {
	s := (&Schedule{}).CrashWindow(3, 100, 200).LinkDown(50, 1)
	if !s.CrashesHost(3) {
		t.Fatal("CrashesHost misses a crashed host")
	}
	if s.CrashesHost(1) {
		t.Fatal("CrashesHost flags a link event's ID as a host crash")
	}
	var nilSched *Schedule
	if nilSched.CrashesHost(3) {
		t.Fatal("nil schedule crashes hosts")
	}
}

// TestGenerateChurnDeterministic: the schedule is a pure function of
// (params, ranked, seed).
func TestGenerateChurnDeterministic(t *testing.T) {
	ranked := []graph.NodeID{4, 9, 2, 7, 11, 3, 8, 6, 10, 5}
	p := ChurnParams{Rate: 0.75, Span: 1000}
	a := GenerateChurn(p, ranked, rng.New(42))
	b := GenerateChurn(p, ranked, rng.New(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs, different schedules")
	}
	c := GenerateChurn(p, ranked, rng.New(43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("seed does not influence the schedule")
	}
}

// TestGenerateChurnTargetsSuccession: at full rate the first Waves entries
// of the succession line are each hit by a crash wave, wave times ascend
// within [0.15, 0.65]·Span, and rate 0 yields an empty schedule.
func TestGenerateChurnTargetsSuccession(t *testing.T) {
	ranked := []graph.NodeID{4, 9, 2, 7, 11, 3, 8, 6, 10, 5}
	const span = 1000.0
	s := GenerateChurn(ChurnParams{Rate: 1, Span: span}, ranked, rng.New(7))
	crashAt := map[graph.NodeID]float64{}
	for _, ev := range s.Events {
		if ev.Kind == CrashHost {
			if _, dup := crashAt[ev.Node]; !dup {
				crashAt[ev.Node] = ev.At
			}
		}
	}
	prev := 0.0
	for i, c := range ranked[:4] { // default Waves = 4
		at, ok := crashAt[c]
		if !ok {
			t.Fatalf("wave %d target %d never crashed", i, c)
		}
		if at < 0.15*span || at > 0.65*span {
			t.Fatalf("wave %d at %g outside [0.15, 0.65]·Span", i, at)
		}
		if at < prev {
			t.Fatalf("wave %d at %g before previous wave %g", i, at, prev)
		}
		prev = at
	}
	if !GenerateChurn(ChurnParams{Rate: 0, Span: span}, ranked, rng.New(7)).Empty() {
		t.Fatal("rate 0 generated faults")
	}
}

// TestGenerateChurnPermanentFrac: PermanentFrac < 0 disables permanent
// waves — every crash in the schedule gets a recovery.
func TestGenerateChurnPermanentFrac(t *testing.T) {
	ranked := []graph.NodeID{4, 9, 2, 7, 11, 3, 8, 6, 10, 5}
	s := GenerateChurn(ChurnParams{Rate: 1, Span: 1000, PermanentFrac: -1},
		ranked, rng.New(5))
	crashes, recovers := 0, 0
	for _, ev := range s.Events {
		switch ev.Kind {
		case CrashHost:
			crashes++
		case RecoverHost:
			recovers++
		}
	}
	if crashes == 0 || crashes != recovers {
		t.Fatalf("PermanentFrac<0: %d crashes, %d recoveries", crashes, recovers)
	}
}
