package fault

import (
	"math"
	"testing"

	"rmcast/internal/rng"
)

func TestMutationParamsClamped(t *testing.T) {
	p := MutationParams{
		DupProb:     2,
		MaxDup:      99,
		ReorderProb: -1,
		MaxDelay:    1e12,
		CorruptProb: 1,
	}.clamped()
	if p.DupProb != 1 {
		t.Fatalf("DupProb %v, want 1", p.DupProb)
	}
	if p.MaxDup != maxDupCap {
		t.Fatalf("MaxDup %d, want %d", p.MaxDup, maxDupCap)
	}
	if p.ReorderProb != 0 {
		t.Fatalf("ReorderProb %v, want 0", p.ReorderProb)
	}
	if p.MaxDelay != maxMutationDelay {
		t.Fatalf("MaxDelay %v, want %v", p.MaxDelay, float64(maxMutationDelay))
	}
	if p.CorruptProb != maxCorruptProb {
		t.Fatalf("CorruptProb %v, want %v (liveness floor)", p.CorruptProb, maxCorruptProb)
	}

	n := MutationParams{DupProb: math.NaN(), MaxDelay: math.NaN(), MaxDup: -3}.clamped()
	if n.DupProb != 0 || n.MaxDelay != 0 {
		t.Fatalf("NaN not clamped to 0: %+v", n)
	}
	if n.MaxDup != maxDupDefault {
		t.Fatalf("MaxDup %d, want default %d", n.MaxDup, maxDupDefault)
	}
}

func TestMutationConfigEmpty(t *testing.T) {
	var nilCfg *MutationConfig
	if !nilCfg.Empty() {
		t.Fatal("nil config not empty")
	}
	if !(&MutationConfig{}).Empty() {
		t.Fatal("zero config not empty")
	}
	// An inert storm window (Extra 0, inverted, or NaN bounds) keeps the
	// config empty; an active one does not.
	inert := &MutationConfig{Storms: []StormWindow{
		{From: 0, To: 100, Extra: 0},
		{From: 100, To: 0, Extra: 5},
		{From: math.NaN(), To: 100, Extra: 5},
	}}
	if !inert.Empty() {
		t.Fatal("inert storms made config non-empty")
	}
	live := &MutationConfig{Storms: []StormWindow{{From: 0, To: 100, Extra: 1}}}
	if live.Empty() {
		t.Fatal("active storm window reported empty")
	}
	if (&MutationConfig{Request: MutationParams{DupProb: 0.1}}).Empty() {
		t.Fatal("request duplication reported empty")
	}
}

func TestMutationFromIntensity(t *testing.T) {
	if MutationFromIntensity(0, 5000) != nil {
		t.Fatal("intensity 0 must map to nil (the legacy plane)")
	}
	if MutationFromIntensity(-1, 5000) != nil || MutationFromIntensity(math.NaN(), 5000) != nil {
		t.Fatal("invalid intensity must map to nil")
	}
	c := MutationFromIntensity(1, 5000)
	if c == nil || c.Empty() {
		t.Fatal("intensity 1 mapped to an empty config")
	}
	if c.Request.DupProb != 0.3 || c.Request.ReorderProb != 0.4 ||
		c.Request.MaxDelay != 25 || c.Request.CorruptProb != 0.12 {
		t.Fatalf("intensity-1 params %+v", c.Request)
	}
	if len(c.Storms) != 1 || c.Storms[0].From != 0.35*5000 || c.Storms[0].To != 0.45*5000 {
		t.Fatalf("storm window %+v, want middle tenth of span", c.Storms)
	}
	if c.Storms[0].Extra != 3 {
		t.Fatalf("storm extra %d, want 3", c.Storms[0].Extra)
	}
	// Intensity above 1 clamps to 1.
	over := MutationFromIntensity(7, 5000)
	if over.Storms[0] != c.Storms[0] || over.Request != c.Request {
		t.Fatalf("intensity 7 did not clamp to 1: %+v vs %+v", over, c)
	}
}

// TestMutatorDeterminism: two mutators built from the same config and seed
// produce identical sample streams; a different seed diverges.
func TestMutatorDeterminism(t *testing.T) {
	cfg := MutationFromIntensity(0.8, 1000)
	sample := func(seed uint64) []Mutation {
		m := newMutator(cfg, rng.New(seed))
		var out []Mutation
		for i := 0; i < 200; i++ {
			class := ClassRequest
			if i%2 == 1 {
				class = ClassRepair
			}
			var mu Mutation
			m.Sample(class, float64(i)*10, &mu)
			cp := mu
			cp.Copies = append([]float64(nil), mu.Copies...)
			out = append(out, cp)
		}
		return out
	}
	a, b := sample(7), sample(7)
	for i := range a {
		if a[i].Delay != b[i].Delay || a[i].Corrupt != b[i].Corrupt ||
			len(a[i].Copies) != len(b[i].Copies) {
			t.Fatalf("sample %d diverged under the same seed: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Copies {
			if a[i].Copies[j] != b[i].Copies[j] {
				t.Fatalf("sample %d copy %d diverged: %v vs %v", i, j, a[i].Copies[j], b[i].Copies[j])
			}
		}
	}
	c := sample(8)
	same := true
	for i := range a {
		if a[i].Delay != c[i].Delay || a[i].Corrupt != c[i].Corrupt ||
			len(a[i].Copies) != len(c[i].Copies) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sample streams")
	}
}

// TestMutatorStormWindow: inside the window every repair gains at least
// Extra copies; requests never do; outside the window a duplication-free
// config adds nothing.
func TestMutatorStormWindow(t *testing.T) {
	cfg := &MutationConfig{Storms: []StormWindow{{From: 100, To: 200, Extra: 4}}}
	m := newMutator(cfg, rng.New(1))
	var mu Mutation
	if !m.Active(ClassRepair) {
		t.Fatal("storm config left repairs inactive")
	}
	if m.Active(ClassRequest) {
		t.Fatal("storm config activated requests (storms amplify repairs only)")
	}
	if !m.Sample(ClassRepair, 150, &mu) || len(mu.Copies) != 4 {
		t.Fatalf("in-window repair got %d copies, want 4", len(mu.Copies))
	}
	if m.Sample(ClassRepair, 250, &mu) || len(mu.Copies) != 0 {
		t.Fatalf("out-of-window repair mutated: %+v", mu)
	}
	if m.Sample(ClassRepair, 200, &mu) {
		t.Fatal("window upper bound must be exclusive")
	}

	// Extra clamps to the hard cap.
	big := newMutator(&MutationConfig{Storms: []StormWindow{{From: 0, To: 1, Extra: 1000}}}, rng.New(1))
	big.Sample(ClassRepair, 0.5, &mu)
	if len(mu.Copies) != maxStormExtra {
		t.Fatalf("storm extra not capped: %d copies, want %d", len(mu.Copies), maxStormExtra)
	}
}

// TestMutatorCorruptionModes: request corruption draws all three modes;
// repair corruption only ever flips header fields (payloads are never
// inspected, so garbage there would be vacuous).
func TestMutatorCorruptionModes(t *testing.T) {
	cfg := &MutationConfig{
		Request: MutationParams{CorruptProb: 1},
		Repair:  MutationParams{CorruptProb: 1},
	}
	m := newMutator(cfg, rng.New(3))
	var mu Mutation
	reqModes := map[CorruptMode]bool{}
	misses := 0
	for i := 0; i < 200; i++ {
		m.Sample(ClassRequest, 0, &mu)
		if mu.Corrupt == CorruptNone {
			misses++ // CorruptProb 1 clamps to 0.9: ~10% stay clean
		} else {
			reqModes[mu.Corrupt] = true
		}
		m.Sample(ClassRepair, 0, &mu)
		if mu.Corrupt == CorruptPayload {
			t.Fatal("repair corruption produced a payload mode")
		}
	}
	if len(reqModes) != 3 {
		t.Fatalf("request corruption drew %d modes, want all 3", len(reqModes))
	}
	if misses == 0 || misses > 60 {
		t.Fatalf("%d/200 clean samples under the 0.9 cap, want roughly 20", misses)
	}
}

// TestScheduleMutationPlumbing: a schedule that carries only a mutation
// config is non-empty, and compiling it yields a state with a mutator; an
// empty config yields none (and so never splits the rng stream).
func TestScheduleMutationPlumbing(t *testing.T) {
	s := (&Schedule{}).SetMutation(&MutationConfig{Request: MutationParams{DupProb: 0.5}})
	if s.Empty() {
		t.Fatal("schedule with live mutation config reported empty")
	}
	if st := NewState(s, rng.New(1)); st.Mutator() == nil {
		t.Fatal("state compiled without a mutator")
	}
	empty := (&Schedule{}).SetMutation(&MutationConfig{})
	if !empty.Empty() {
		t.Fatal("schedule with empty mutation config reported non-empty")
	}
	if st := NewState(empty, rng.New(1)); st.Mutator() != nil {
		t.Fatal("empty mutation config compiled a mutator")
	}
}
