package check

import (
	"strings"
	"testing"
)

// drive replays the clean two-client, two-packet history: both packets
// sent, client 0 loses and recovers seq 1, everything else arrives.
func drive(o *Oracle) Totals {
	o.OnSent(0)
	o.OnSent(1)
	o.OnData(0, 0, false, false)
	o.OnData(1, 0, false, false)
	o.OnData(1, 1, false, false)
	o.OnDetect(0, 1)
	o.OnRepair(0, 1, false, true)
	return Totals{
		Losses: 1, Recoveries: 1, DataDeliveries: 3,
		Delivered: 4,
	}
}

func TestCleanRunNoViolations(t *testing.T) {
	o := New(2, 2, true) // strict: any violation would panic
	tot := drive(o)
	if v := o.Finish(true, []bool{false, false}, tot); len(v) != 0 {
		t.Fatalf("clean run produced violations: %v", v)
	}
}

func TestStrictModePanicsOnSafetyViolation(t *testing.T) {
	o := New(1, 2, true)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("repair for a never-sent seq did not panic in strict mode")
		}
	}()
	o.OnRepair(0, 1, false, false) // nothing was ever sent
}

func TestRecordModeCollectsSafetyViolations(t *testing.T) {
	o := New(2, 3, false)
	o.OnSent(0)
	o.OnSent(0)                    // double multicast
	o.OnRepair(0, 2, false, false) // never sent
	o.OnData(0, 0, false, false)
	o.OnDetect(0, 0) // detect after delivery
	o.OnDetect(1, 5) // out of range
	v := o.Finish(false, nil, Totals{})
	for _, want := range []string{"multicast twice", "never-sent", "after delivery", "out-of-range"} {
		found := false
		for _, msg := range v {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no violation mentioning %q in %v", want, v)
		}
	}
}

// TestDuplicateRepairNeverTransitionsTwice: the oracle counts a repeated
// repair as a duplicate, never a second recovery, and a conservation check
// that claims otherwise fails.
func TestDuplicateRepairNeverTransitionsTwice(t *testing.T) {
	o := New(1, 1, true)
	o.OnSent(0)
	o.OnDetect(0, 0)
	o.OnRepair(0, 0, false, true)
	o.OnRepair(0, 0, true, true) // duplicate: session already holds it
	v := o.Finish(true, nil, Totals{
		Losses: 1, Recoveries: 1, Duplicates: 1, Delivered: 1,
	})
	if len(v) != 0 {
		t.Fatalf("idempotent duplicate handling flagged: %v", v)
	}
	// Same history, but the session books the duplicate as a recovery.
	o2 := New(1, 1, false)
	o2.OnSent(0)
	o2.OnDetect(0, 0)
	o2.OnRepair(0, 0, false, true)
	o2.OnRepair(0, 0, true, true)
	v2 := o2.Finish(true, nil, Totals{
		Losses: 1, Recoveries: 2, Delivered: 1,
	})
	if len(v2) == 0 {
		t.Fatal("double-counted recovery passed conservation")
	}
}

// TestShadowDivergence: a session whose per-pair view disagrees with the
// oracle's is a safety violation at the event.
func TestShadowDivergence(t *testing.T) {
	o := New(1, 1, false)
	o.OnSent(0)
	o.OnData(0, 0, true, false) // session claims it already has seq 0
	v := o.Finish(false, nil, Totals{})
	if len(v) == 0 {
		t.Fatal("shadow divergence not flagged")
	}
	if !strings.Contains(v[0], "session has=true") {
		t.Fatalf("unexpected violation %q", v[0])
	}
}

func TestLivenessViolationOnOpenGap(t *testing.T) {
	o := New(1, 2, true) // strict: liveness must still only record, not panic
	o.OnSent(0)
	o.OnSent(1)
	o.OnData(0, 0, false, false)
	o.OnDetect(0, 1)
	// seq 1 never recovered; client 0 is up. Complete run → liveness fires.
	v := o.Finish(true, []bool{false}, Totals{
		Losses: 1, DataDeliveries: 1, Delivered: 1, Unrecovered: 1,
	})
	if len(v) != 1 || !strings.Contains(v[0], "liveness") {
		t.Fatalf("violations %v, want exactly one liveness finding", v)
	}
	// The same open gap on a crashed client is fine: it is classified.
	o2 := New(1, 2, true)
	o2.OnSent(0)
	o2.OnSent(1)
	o2.OnData(0, 0, false, false)
	o2.OnDetect(0, 1)
	v2 := o2.Finish(true, []bool{true}, Totals{
		Losses: 1, DataDeliveries: 1, Delivered: 1, UnrecoveredCrashed: 1,
	})
	if len(v2) != 0 {
		t.Fatalf("crashed client's gap flagged: %v", v2)
	}
	// An incomplete (event-capped) run asserts no liveness at all.
	o3 := New(1, 2, true)
	o3.OnSent(0)
	o3.OnSent(1)
	o3.OnData(0, 0, false, false)
	o3.OnDetect(0, 1)
	v3 := o3.Finish(false, []bool{false}, Totals{
		Losses: 1, DataDeliveries: 1, Delivered: 1, Unrecovered: 1,
	})
	if len(v3) != 0 {
		t.Fatalf("incomplete run flagged for liveness: %v", v3)
	}
}

func TestCheckBound(t *testing.T) {
	o := New(1, 1, false)
	o.CheckBound("cache", 10, 10)
	if v := o.Finish(false, nil, Totals{}); len(v) != 0 {
		t.Fatalf("at-capacity bound flagged: %v", v)
	}
	o.CheckBound("cache", 11, 10)
	if v := o.Finish(false, nil, Totals{}); len(v) != 1 || !strings.Contains(v[0], "exceeds its bound") {
		t.Fatalf("violations %v, want one bound finding", v)
	}
}

func TestViolationListBounded(t *testing.T) {
	o := New(1, 1, false)
	for i := 0; i < 10*maxViolations; i++ {
		o.OnDetect(0, -1) // out of range, recorded each time
	}
	if v := o.Finish(false, nil, Totals{}); len(v) > maxViolations {
		t.Fatalf("violation list unbounded: %d entries", len(v))
	}
}
