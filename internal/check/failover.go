package check

// failoverState is the failover-mode extension of the oracle: an
// independent registry of RP epoch claims and per-host epoch adoptions.
// The invariants it polices are the ones the epoch fence is supposed to
// guarantee —
//
//   - at most one RP claims any given epoch, and claims are strictly
//     increasing (the engine allocates epochs through a single sequencer,
//     so a duplicate or stale claim means the fence is broken);
//   - each host's adopted epoch is monotonic, and a host only ever adopts
//     an epoch some RP actually claimed, with the matching RP identity
//     (adopting an unclaimed epoch means a forged or corrupted
//     announcement got past validation).
//
// Together these give "at most one active RP per epoch": activity is
// conditioned on adoption, and every adoption points at the unique
// claimant of its epoch.
type failoverState struct {
	claimedBy  map[int]int // epoch → claiming RP host
	maxClaimed int
	epochOf    []int // per-host adopted epoch (0 = none yet)
	rpOf       []int // per-host adopted RP for that epoch
	claims     int64 // claims past the bootstrap epoch (== failovers)
	fenced     int64 // control messages rejected by the epoch fence
}

// EnableFailover switches the oracle into failover mode for a run over
// numNodes hosts. Idempotent; the first call wins.
func (o *Oracle) EnableFailover(numNodes int) {
	if o.fo != nil {
		return
	}
	if numNodes < 1 {
		o.violate("failover: invalid node count %d", numNodes)
		return
	}
	o.fo = &failoverState{
		claimedBy: make(map[int]int),
		epochOf:   make([]int, numNodes),
		rpOf:      make([]int, numNodes),
	}
}

// OnRPClaim observes host rp claiming epoch. Claims must be unique per
// epoch and strictly increasing across the run; the bootstrap claim
// (epoch 1) is free, every later claim counts as one failover.
func (o *Oracle) OnRPClaim(epoch, rp int) {
	if o.fo == nil {
		o.violate("rp-claim: failover mode not enabled")
		return
	}
	if epoch < 1 {
		o.violate("rp-claim: host %d claimed invalid epoch %d", rp, epoch)
		return
	}
	if rp < 0 || rp >= len(o.fo.epochOf) {
		o.violate("rp-claim: out-of-range host %d", rp)
		return
	}
	if prev, dup := o.fo.claimedBy[epoch]; dup {
		o.violate("rp-claim: epoch %d claimed by host %d and host %d", epoch, prev, rp)
		return
	}
	if epoch <= o.fo.maxClaimed {
		o.violate("rp-claim: host %d claimed stale epoch %d (max claimed %d)",
			rp, epoch, o.fo.maxClaimed)
		return
	}
	o.fo.claimedBy[epoch] = rp
	o.fo.maxClaimed = epoch
	if epoch > 1 {
		o.fo.claims++
	}
}

// OnEpochAdopt observes host adopting (epoch, rp) as its current view.
// Adoption is monotonic per host, and must name the unique claimant of a
// claimed epoch; re-adopting the current view is an idempotent no-op.
func (o *Oracle) OnEpochAdopt(host, epoch, rp int) {
	if o.fo == nil {
		o.violate("epoch-adopt: failover mode not enabled")
		return
	}
	if host < 0 || host >= len(o.fo.epochOf) {
		o.violate("epoch-adopt: out-of-range host %d", host)
		return
	}
	claimant, claimed := o.fo.claimedBy[epoch]
	if !claimed {
		o.violate("epoch-adopt: host %d adopted unclaimed epoch %d", host, epoch)
		return
	}
	if claimant != rp {
		o.violate("epoch-adopt: host %d adopted epoch %d with RP %d, but epoch was claimed by %d",
			host, epoch, rp, claimant)
		return
	}
	if epoch < o.fo.epochOf[host] {
		o.violate("epoch-adopt: host %d regressed from epoch %d to %d",
			host, o.fo.epochOf[host], epoch)
		return
	}
	if epoch == o.fo.epochOf[host] && o.fo.rpOf[host] != rp {
		o.violate("epoch-adopt: host %d switched RP %d→%d within epoch %d",
			host, o.fo.rpOf[host], rp, epoch)
		return
	}
	o.fo.epochOf[host] = epoch
	o.fo.rpOf[host] = rp
}

// OnFenced observes one control message rejected by the epoch fence.
func (o *Oracle) OnFenced() {
	if o.fo == nil {
		o.violate("fenced: failover mode not enabled")
		return
	}
	o.fo.fenced++
}

// finishFailover runs the failover-mode end-of-run cross-checks; cmp is
// Finish's conservation comparator.
func (o *Oracle) finishFailover(t Totals, cmp func(name string, oracle, session int64)) {
	cmp("failovers", o.fo.claims, t.Failovers)
	cmp("fenced-stale", o.fo.fenced, t.FencedStale)
	if len(o.fo.claimedBy) == 0 {
		o.record("failover: mode enabled but no epoch was ever claimed")
	}
	// Per-host convergence is deliberately NOT asserted here: survivors
	// legitimately finish on the max epoch while crashed hosts freeze on
	// whatever view they held, so the per-adoption monotonicity and
	// claimed-epoch checks above are the whole invariant.
}
