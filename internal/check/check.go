// Package check is the runtime invariant oracle: an independent shadow of
// the session's per-(client, seq) delivery state machine, updated event by
// event during every run and cross-checked against the session's own
// bookkeeping at the end.
//
// The oracle exists because the adversarial message plane (fault.Mutator)
// attacks exactly the assumptions the accounting was built on: duplicated
// repairs must not be counted as two recoveries, corrupted packets must
// never reach protocol state, reordering must not re-open a recovered gap.
// Rather than trusting the session to police itself, the oracle maintains
// its own monotonic state machine per (client, seq) —
//
//	unsent → sent → {delivered | detected → recovered}
//
// — and treats any divergence between that machine and what the session
// reports as a safety violation. Liveness (every live client's gap is
// eventually recovered or explicitly classified) and conservation (the
// counters partition the observed events; drops never exceed hops) are
// checked once the run quiesces.
//
// Safety violations at event granularity panic in strict mode: they mean
// the simulator's books are wrong, and continuing would only launder the
// corruption into results. End-of-run findings (liveness, conservation) are
// returned as a violation list instead — some callers run sessions that
// violate liveness on purpose (e.g. a null engine that never repairs) and
// assert on the classified outcome.
// The coded-recovery mode (EnableCoded) extends the shadow machine for
// engines that repair by erasure coding rather than per-seq retransmission:
// a detected gap may then be closed by *any* sufficient set of symbols, so
// the oracle additionally tracks, per (client, block), the set of distinct
// coded symbols held, and admits a decode event only when the block's
// symbol rank — data packets held plus distinct coded symbols — reaches the
// block length. A decode below rank, a double decode, an out-of-range
// symbol index, or a duplicate-verdict mismatch between session and oracle
// are safety violations like any other.
package check

import (
	"fmt"
	"math/bits"
)

// maxViolations bounds the recorded list; a broken run repeats itself.
const maxViolations = 64

// Totals is the session's end-of-run accounting handed to Finish for
// cross-checking against the oracle's independent counts.
type Totals struct {
	Losses, Recoveries, Duplicates, PreDetection int64
	DataDeliveries, LateData, Malformed          int64
	Delivered, Unrecovered, UnrecoveredCrashed   int64
	DataHops, RequestHops, RepairHops            int64
	DataDrops, RequestDrops, RepairDrops         int64
	// CodedSymbols / CodedDuplicates are only cross-checked in coded-
	// recovery mode (EnableCoded): distinct coded symbols credited, and
	// redundant copies absorbed idempotently.
	CodedSymbols, CodedDuplicates int64
	// Failovers / FencedStale are only cross-checked in failover mode
	// (EnableFailover): RP epoch claims past the bootstrap epoch, and
	// control messages rejected by the epoch fence.
	Failovers, FencedStale int64
}

// codedState is the coded-recovery extension: per (client, block) the set
// of distinct coded symbols held (a bitmask — R ≤ 64 by construction) and
// whether the block has been decoded.
type codedState struct {
	k, r, blocks int
	seen         [][]uint64 // [clientIdx][block] coded-index bitmask
	decoded      [][]bool
}

// Oracle is the shadow state machine for one run. Hooks are O(1); the
// memory is two bits per (client, seq) pair plus counters.
type Oracle struct {
	packets int
	strict  bool

	sent     []bool
	have     [][]bool // [clientIdx][seq]
	detected [][]bool

	losses, recoveries, duplicates, preDetection int64
	deliveries, lateData, malformed              int64

	coded                  *codedState
	codedSymbols, codedDup int64

	fo *failoverState

	violations []string
}

// New returns an oracle for a run of packets sequence numbers over clients
// group members. strict makes event-level safety violations panic; finish-
// level findings are always returned, never thrown.
func New(clients, packets int, strict bool) *Oracle {
	o := &Oracle{
		packets:  packets,
		strict:   strict,
		sent:     make([]bool, packets),
		have:     make([][]bool, clients),
		detected: make([][]bool, clients),
	}
	for i := range o.have {
		o.have[i] = make([]bool, packets)
		o.detected[i] = make([]bool, packets)
	}
	return o
}

// NewShard returns an oracle for one shard of a partitioned run: identical
// to New except that the sent vector is the caller's, shared by every
// sibling shard (and the master that later absorbs them). Only the source's
// shard writes it — through OnSent — and the parallel runner's window
// barriers order every cross-shard read after the write, because a remote
// shard can only observe seq at least one lookahead after the multicast.
func NewShard(clients, packets int, strict bool, sent []bool) *Oracle {
	o := New(clients, packets, strict)
	o.sent = sent
	return o
}

// Absorb folds a shard oracle into o: the shadow rows of the clients the
// shard owns (disjoint across shards, so plain copies), its event counters,
// and any violations it recorded. After absorbing every shard, o.Finish
// checks the same global invariants a serial oracle would.
func (o *Oracle) Absorb(sh *Oracle, owned []int) {
	for _, ci := range owned {
		copy(o.have[ci], sh.have[ci])
		copy(o.detected[ci], sh.detected[ci])
	}
	o.losses += sh.losses
	o.recoveries += sh.recoveries
	o.duplicates += sh.duplicates
	o.preDetection += sh.preDetection
	o.deliveries += sh.deliveries
	o.lateData += sh.lateData
	o.malformed += sh.malformed
	if sh.coded != nil {
		// Shards enable coded mode when their engine clone attaches; the
		// master inherits the configuration from the first coded shard.
		if o.coded == nil {
			o.EnableCoded(sh.coded.k, sh.coded.r)
		}
		for _, ci := range owned {
			copy(o.coded.seen[ci], sh.coded.seen[ci])
			copy(o.coded.decoded[ci], sh.coded.decoded[ci])
		}
		o.codedSymbols += sh.codedSymbols
		o.codedDup += sh.codedDup
	}
	for _, v := range sh.violations {
		o.record(v)
	}
}

// EnableCoded switches the oracle into coded-recovery mode for blocks of k
// data packets protected by r coded symbols (both in [1, 64]). Idempotent
// for identical parameters; changing parameters mid-run is a violation.
func (o *Oracle) EnableCoded(k, r int) {
	if o.coded != nil {
		if o.coded.k != k || o.coded.r != r {
			o.violate("coded: reconfigured mid-run (k %d→%d, r %d→%d)",
				o.coded.k, k, o.coded.r, r)
		}
		return
	}
	if k < 1 || k > 64 || r < 1 || r > 64 {
		o.violate("coded: parameters out of range (k=%d, r=%d)", k, r)
		return
	}
	blocks := (o.packets + k - 1) / k
	if blocks < 1 {
		blocks = 1
	}
	c := &codedState{
		k: k, r: r, blocks: blocks,
		seen:    make([][]uint64, len(o.have)),
		decoded: make([][]bool, len(o.have)),
	}
	for i := range c.seen {
		c.seen[i] = make([]uint64, blocks)
		c.decoded[i] = make([]bool, blocks)
	}
	o.coded = c
}

// blockLen returns the number of data sequences in block b (the tail block
// may be short).
func (c *codedState) blockLen(b, packets int) int {
	lo := b * c.k
	hi := lo + c.k
	if hi > packets {
		hi = packets
	}
	return hi - lo
}

// OnSymbol observes the arrival of coded symbol idx (the coded offset, in
// [0, r)) of block at client ci; dup is the session's verdict on whether
// the symbol was already held, shadow-checked against the oracle's own set.
func (o *Oracle) OnSymbol(ci, block, idx int, dup bool) {
	if o.coded == nil {
		o.violate("symbol: coded-recovery mode not enabled")
		return
	}
	if ci < 0 || ci >= len(o.have) || block < 0 || block >= o.coded.blocks {
		o.violate("symbol: out-of-range client %d block %d", ci, block)
		return
	}
	if idx < 0 || idx >= o.coded.r {
		o.violate("symbol: client %d block %d: coded index %d outside [0,%d)",
			ci, block, idx, o.coded.r)
		return
	}
	bit := uint64(1) << uint(idx)
	held := o.coded.seen[ci][block]&bit != 0
	if held != dup {
		o.violate("symbol: client %d block %d index %d: session dup=%v, oracle dup=%v",
			ci, block, idx, dup, held)
	}
	if held {
		o.codedDup++
		return
	}
	o.coded.seen[ci][block] |= bit
	o.codedSymbols++
}

// OnDecode observes client ci decoding block: admissible only once per
// (client, block), and only when the block's symbol rank — data packets
// held plus distinct coded symbols — covers the block length. The session
// recovers the missing sequences immediately afterwards through
// OnLocalRecover, so rank is evaluated on the pre-decode state.
func (o *Oracle) OnDecode(ci, block int) {
	if o.coded == nil {
		o.violate("decode: coded-recovery mode not enabled")
		return
	}
	if ci < 0 || ci >= len(o.have) || block < 0 || block >= o.coded.blocks {
		o.violate("decode: out-of-range client %d block %d", ci, block)
		return
	}
	if o.coded.decoded[ci][block] {
		o.violate("decode: client %d decoded block %d twice", ci, block)
		return
	}
	bl := o.coded.blockLen(block, o.packets)
	rank := bits.OnesCount64(o.coded.seen[ci][block])
	if rank > o.coded.r {
		o.violate("decode: client %d block %d: %d coded symbols exceed r=%d",
			ci, block, rank, o.coded.r)
	}
	lo := block * o.coded.k
	for s := 0; s < bl; s++ {
		if o.have[ci][lo+s] {
			rank++
		}
	}
	if rank < bl {
		o.violate("decode: client %d block %d: rank %d below block length %d",
			ci, block, rank, bl)
		return
	}
	o.coded.decoded[ci][block] = true
}

// violate reports an event-level safety violation: panic in strict mode,
// recorded otherwise.
func (o *Oracle) violate(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if o.strict {
		panic("check: invariant violated: " + msg)
	}
	o.record(msg)
}

// record appends a violation to the bounded list.
func (o *Oracle) record(msg string) {
	if len(o.violations) < maxViolations {
		o.violations = append(o.violations, msg)
	}
}

// shadow cross-checks the session's view of one (client, seq) pair against
// the oracle's before a transition is applied.
func (o *Oracle) shadow(ci, seq int, has, det bool, event string) {
	if o.have[ci][seq] != has {
		o.violate("%s: client %d seq %d: session has=%v, oracle has=%v",
			event, ci, seq, has, o.have[ci][seq])
	}
	if o.detected[ci][seq] != det {
		o.violate("%s: client %d seq %d: session detected=%v, oracle detected=%v",
			event, ci, seq, det, o.detected[ci][seq])
	}
}

// inRange validates a client/seq pair (violations here mean a corrupted
// packet slipped past the session's own validation).
func (o *Oracle) inRange(ci, seq int, event string) bool {
	if seq < 0 || seq >= o.packets || ci < 0 || ci >= len(o.have) {
		o.violate("%s: out-of-range client %d seq %d", event, ci, seq)
		return false
	}
	return true
}

// OnSent observes the source's original multicast of seq.
func (o *Oracle) OnSent(seq int) {
	if seq < 0 || seq >= o.packets {
		o.violate("send: out-of-range seq %d", seq)
		return
	}
	if o.sent[seq] {
		o.violate("send: seq %d multicast twice", seq)
	}
	o.sent[seq] = true
}

// OnData observes an original data arrival of seq at client ci; has/det are
// the session's pre-transition view of the pair.
func (o *Oracle) OnData(ci, seq int, has, det bool) {
	if !o.inRange(ci, seq, "data") {
		return
	}
	if !o.sent[seq] {
		o.violate("data: client %d received never-sent seq %d", ci, seq)
	}
	o.shadow(ci, seq, has, det, "data")
	if !o.have[ci][seq] {
		o.have[ci][seq] = true
		o.deliveries++
		if o.detected[ci][seq] {
			o.lateData++
		}
	}
}

// OnRepair observes a repair arrival of seq. ci is the receiving client's
// index, or -1 for a non-client host (only the never-sent invariant applies
// there); has/det are the session's pre-transition view.
func (o *Oracle) OnRepair(ci, seq int, has, det bool) {
	if seq < 0 || seq >= o.packets {
		o.violate("repair: out-of-range seq %d", seq)
		return
	}
	if !o.sent[seq] {
		o.violate("repair for never-sent seq %d", seq)
	}
	if ci < 0 {
		return
	}
	if ci >= len(o.have) {
		o.violate("repair: out-of-range client %d", ci)
		return
	}
	o.shadow(ci, seq, has, det, "repair")
	switch {
	case o.have[ci][seq]:
		// Duplicate delivery: the pair must not transition again — it is
		// counted as pure overhead, never as a second recovery.
		o.duplicates++
	case o.detected[ci][seq]:
		o.have[ci][seq] = true
		o.recoveries++
	default:
		o.have[ci][seq] = true
		o.preDetection++
	}
}

// OnLocalRecover observes a local (no-traffic) recovery, e.g. an FEC
// decode, of seq at client ci. The session only performs it on pairs it
// does not hold.
func (o *Oracle) OnLocalRecover(ci, seq int, det bool) {
	if !o.inRange(ci, seq, "local-recover") {
		return
	}
	if !o.sent[seq] {
		o.violate("local recovery of never-sent seq %d at client %d", seq, ci)
	}
	o.shadow(ci, seq, false, det, "local-recover")
	o.have[ci][seq] = true
	if det {
		o.recoveries++
	} else {
		o.preDetection++
	}
}

// OnDetect observes client ci detecting the loss of seq. Detection is
// monotonic: a pair is detected at most once, and never after delivery.
func (o *Oracle) OnDetect(ci, seq int) {
	if !o.inRange(ci, seq, "detect") {
		return
	}
	if !o.sent[seq] {
		o.violate("detect: client %d detected loss of never-sent seq %d", ci, seq)
	}
	if o.have[ci][seq] {
		o.violate("detect: client %d detected seq %d after delivery", ci, seq)
	}
	if o.detected[ci][seq] {
		o.violate("detect: client %d detected seq %d twice", ci, seq)
	}
	o.detected[ci][seq] = true
	o.losses++
}

// OnMalformed observes one rejected malformed packet.
func (o *Oracle) OnMalformed() { o.malformed++ }

// CheckBound asserts a bounded structure honours its capacity (the dedup
// caches' memory bound).
func (o *Oracle) CheckBound(name string, length, capacity int) {
	if capacity > 0 && length > capacity {
		o.violate("%s exceeds its bound: %d > %d", name, length, capacity)
	}
}

// Finish runs the end-of-run invariants and returns every violation found
// (event-level ones too, in non-strict mode). down says which clients are
// crashed at the end instant, index-aligned with the oracle's clients;
// liveness is only asserted on complete (quiesced) runs.
func (o *Oracle) Finish(complete bool, down []bool, t Totals) []string {
	// Counter conservation: the session's totals must equal the oracle's
	// independent event counts.
	cmp := func(name string, oracle, session int64) {
		if oracle != session {
			o.record(fmt.Sprintf("conservation: %s: oracle counted %d, session reports %d",
				name, oracle, session))
		}
	}
	cmp("losses", o.losses, t.Losses)
	cmp("recoveries", o.recoveries, t.Recoveries)
	cmp("duplicates", o.duplicates, t.Duplicates)
	cmp("pre-detection repairs", o.preDetection, t.PreDetection)
	cmp("data deliveries", o.deliveries, t.DataDeliveries)
	cmp("late data", o.lateData, t.LateData)
	cmp("malformed", o.malformed, t.Malformed)
	if o.coded != nil {
		cmp("coded symbols", o.codedSymbols, t.CodedSymbols)
		cmp("coded duplicates", o.codedDup, t.CodedDuplicates)
		// A decoded block is a delivered block: the decode recovered every
		// missing sequence, so no decoded (client, block) may leave a gap.
		for ci := range o.coded.decoded {
			for b, dec := range o.coded.decoded[ci] {
				if !dec {
					continue
				}
				lo := b * o.coded.k
				for s := 0; s < o.coded.blockLen(b, o.packets); s++ {
					if !o.have[ci][lo+s] {
						o.record(fmt.Sprintf(
							"coded: client %d decoded block %d but lacks seq %d",
							ci, b, lo+s))
					}
				}
			}
		}
	}

	if o.fo != nil {
		o.finishFailover(t, cmp)
	}

	// Link conservation: a drop is a send that was not delivered, so drops
	// can never exceed hops (sends ≥ deliveries + drops, per kind).
	if t.DataDrops > t.DataHops {
		o.record(fmt.Sprintf("conservation: data drops %d exceed data hops %d", t.DataDrops, t.DataHops))
	}
	if t.RequestDrops > t.RequestHops {
		o.record(fmt.Sprintf("conservation: request drops %d exceed request hops %d", t.RequestDrops, t.RequestHops))
	}
	if t.RepairDrops > t.RepairHops {
		o.record(fmt.Sprintf("conservation: repair drops %d exceed repair hops %d", t.RepairDrops, t.RepairHops))
	}

	// Classification cross-check: recompute the end-of-run partition from
	// the shadow state and compare.
	var delivered, unrec, crashed int64
	for ci := range o.have {
		isDown := ci < len(down) && down[ci]
		for seq, h := range o.have[ci] {
			switch {
			case h:
				delivered++
			case isDown:
				crashed++
			case o.detected[ci][seq]:
				unrec++
			}
		}
	}
	cmp("delivered", delivered, t.Delivered)
	cmp("unrecovered", unrec, t.Unrecovered)
	cmp("unrecovered-crashed", crashed, t.UnrecoveredCrashed)

	// Liveness: once the run has quiesced, every sent packet is either held
	// by each live client or explicitly attributed to its crash. An open
	// gap at a live client — detected or not — means some engine gave up.
	if complete {
		for ci := range o.have {
			if ci < len(down) && down[ci] {
				continue
			}
			for seq := range o.have[ci] {
				if o.sent[seq] && !o.have[ci][seq] {
					o.record(fmt.Sprintf("liveness: client %d never recovered seq %d (detected=%v)",
						ci, seq, o.detected[ci][seq]))
				}
			}
		}
	}
	return o.violations
}
