package graph

import (
	"math"
	"testing"

	"rmcast/internal/rng"
)

func treeWeight(g *Undirected, edges []EdgeID) float64 {
	var sum float64
	for _, id := range edges {
		sum += g.Edge(id).Weight
	}
	return sum
}

// isSpanningTree verifies |E| = |V|-1 and connectivity of the edge subset.
func isSpanningTree(g *Undirected, edges []EdgeID) bool {
	if len(edges) != g.NumNodes()-1 {
		return false
	}
	uf := NewUnionFind(g.NumNodes())
	for _, id := range edges {
		e := g.Edge(id)
		if !uf.Union(int32(e.A), int32(e.B)) {
			return false // cycle
		}
	}
	return uf.Sets() == 1
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatal("fresh union-find should have n sets")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union should fail")
	}
	if uf.Find(0) != uf.Find(2) || uf.Find(0) == uf.Find(3) {
		t.Fatal("Find inconsistent with unions")
	}
	if uf.Sets() != 3 {
		t.Fatalf("Sets() = %d, want 3", uf.Sets())
	}
}

func TestMSTKnownGraph(t *testing.T) {
	// Classic 4-cycle with a chord: MST weight = 1+2+3 = 6.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 4)
	g.AddEdge(0, 2, 5)
	for name, tree := range map[string][]EdgeID{
		"kruskal": MSTKruskal(g, nil),
		"prim":    MSTPrim(g, 0, nil),
	} {
		if !isSpanningTree(g, tree) {
			t.Fatalf("%s: not a spanning tree: %v", name, tree)
		}
		if w := treeWeight(g, tree); w != 6 {
			t.Fatalf("%s: weight %v, want 6", name, w)
		}
	}
}

func TestPrimKruskalAgreeOnWeight(t *testing.T) {
	r := rng.New(555)
	for trial := 0; trial < 25; trial++ {
		g := New(40)
		// Random tree plus chords, distinct-ish weights.
		perm := r.Perm(40)
		for i := 1; i < 40; i++ {
			g.AddEdge(NodeID(perm[i]), NodeID(perm[r.Intn(i)]), r.Uniform(1, 100))
		}
		for i := 0; i < 60; i++ {
			a, b := NodeID(r.Intn(40)), NodeID(r.Intn(40))
			if a != b {
				g.AddEdge(a, b, r.Uniform(1, 100))
			}
		}
		k := MSTKruskal(g, nil)
		p := MSTPrim(g, 0, nil)
		if !isSpanningTree(g, k) || !isSpanningTree(g, p) {
			t.Fatalf("trial %d: non-spanning MST", trial)
		}
		if math.Abs(treeWeight(g, k)-treeWeight(g, p)) > 1e-9 {
			t.Fatalf("trial %d: MST weights differ: %v vs %v",
				trial, treeWeight(g, k), treeWeight(g, p))
		}
	}
}

func TestMSTKruskalForest(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	f := MSTKruskal(g, nil)
	if len(f) != 2 {
		t.Fatalf("forest should have 2 edges, got %v", f)
	}
}

func TestRandomSpanningTreeIsSpanning(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(50)
		g := New(n)
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(NodeID(perm[i]), NodeID(perm[r.Intn(i)]), 1)
		}
		for i := 0; i < n; i++ {
			a, b := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if a != b && !g.HasEdgeBetween(a, b) {
				g.AddEdge(a, b, 1)
			}
		}
		tree := RandomSpanningTree(g, r)
		if !isSpanningTree(g, tree) {
			t.Fatalf("trial %d: Wilson output is not a spanning tree", trial)
		}
	}
}

func TestRandomSpanningTreeUniformOnTriangle(t *testing.T) {
	// A triangle has exactly 3 spanning trees; Wilson's algorithm must pick
	// each with probability 1/3.
	g := New(3)
	g.AddEdge(0, 1, 1) // tree "missing edge 2"
	g.AddEdge(1, 2, 1) // ...
	g.AddEdge(2, 0, 1)
	r := rng.New(9)
	counts := map[EdgeID]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		tree := RandomSpanningTree(g, r)
		present := map[EdgeID]bool{}
		for _, e := range tree {
			present[e] = true
		}
		for id := EdgeID(0); id < 3; id++ {
			if !present[id] {
				counts[id]++
			}
		}
	}
	for id, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-1.0/3) > 0.02 {
			t.Fatalf("missing-edge %d frequency %v, want ~1/3", id, got)
		}
	}
}

func TestSpanningSubgraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 6)
	g.AddEdge(2, 3, 7)
	g.AddEdge(3, 0, 8)
	sub := SpanningSubgraph(g, []EdgeID{0, 2})
	if sub.NumNodes() != 4 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph shape wrong: %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
	if !sub.HasEdgeBetween(0, 1) || !sub.HasEdgeBetween(2, 3) || sub.HasEdgeBetween(1, 2) {
		t.Fatal("subgraph edges wrong")
	}
	if sub.Edge(0).Weight != 5 || sub.Edge(1).Weight != 7 {
		t.Fatal("subgraph weights not preserved")
	}
}

func TestTopologicalOrder(t *testing.T) {
	d := NewDigraph(5)
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 1)
	d.AddArc(1, 3, 1)
	d.AddArc(2, 3, 1)
	d.AddArc(3, 4, 1)
	order := TopologicalOrder(d)
	if order == nil {
		t.Fatal("acyclic digraph reported cyclic")
	}
	pos := make(map[NodeID]int)
	for i, u := range order {
		pos[u] = i
	}
	for u := NodeID(0); int(u) < 5; u++ {
		for _, a := range d.Out(u) {
			if pos[u] >= pos[a.To] {
				t.Fatalf("order violates arc %d→%d", u, a.To)
			}
		}
	}
}

func TestTopologicalOrderDetectsCycle(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1, 1)
	d.AddArc(1, 2, 1)
	d.AddArc(2, 0, 1)
	if TopologicalOrder(d) != nil {
		t.Fatal("cycle not detected")
	}
}

func TestDAGShortestPaths(t *testing.T) {
	// Diamond with a cheaper lower path.
	d := NewDigraph(4)
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 5)
	d.AddArc(1, 3, 1)
	d.AddArc(2, 3, 1)
	d.AddArc(0, 3, 10)
	dist, parent := DAGShortestPaths(d, 0, TopologicalOrder(d))
	if dist[3] != 2 || parent[3] != 1 || parent[1] != 0 {
		t.Fatalf("DAG SP wrong: dist %v parent %v", dist, parent)
	}
}

func TestDAGShortestPathsMatchesDijkstra(t *testing.T) {
	// Random DAG (arcs only low→high ID); compare with Dijkstra run on an
	// equivalent undirected simulation via brute-force relaxation.
	r := rng.New(4242)
	for trial := 0; trial < 20; trial++ {
		n := 30
		d := NewDigraph(n)
		type arc struct {
			a, b NodeID
			w    float64
		}
		var arcs []arc
		for i := 0; i < 120; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			w := r.Uniform(0, 10)
			d.AddArc(NodeID(a), NodeID(b), w)
			arcs = append(arcs, arc{NodeID(a), NodeID(b), w})
		}
		dist, _ := DAGShortestPaths(d, 0, TopologicalOrder(d))
		// Bellman–Ford reference.
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = math.Inf(1)
		}
		ref[0] = 0
		for iter := 0; iter < n; iter++ {
			for _, a := range arcs {
				if nd := ref[a.a] + a.w; nd < ref[a.b] {
					ref[a.b] = nd
				}
			}
		}
		for v := 0; v < n; v++ {
			if math.Abs(dist[v]-ref[v]) > 1e-9 && !(math.IsInf(dist[v], 1) && math.IsInf(ref[v], 1)) {
				t.Fatalf("trial %d: dist[%d] = %v, ref %v", trial, v, dist[v], ref[v])
			}
		}
	}
}
