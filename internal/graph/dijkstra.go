package graph

import "math"

// ShortestPaths holds a single-source shortest-path tree computed by
// Dijkstra. It mirrors BFSResult but with float64 distances.
type ShortestPaths struct {
	Source     NodeID
	Dist       []float64 // +Inf where unreachable
	Parent     []NodeID
	ParentEdge []EdgeID
	// Hops is the edge count of the shortest-delay path from Source; -1
	// where unreachable. Maintained during relaxation so path callers can
	// pre-size reconstruction buffers and hop queries need no path walk.
	Hops []int32
}

// WeightFunc maps an edge to its traversal cost. It must return a
// non-negative, finite value for every edge it is asked about.
type WeightFunc func(EdgeID) float64

// DefaultWeights returns a WeightFunc that reads the weight stored on each
// edge of g.
func DefaultWeights(g *Undirected) WeightFunc {
	return func(id EdgeID) float64 { return g.Edge(id).Weight }
}

// spItem is one binary-heap entry for Dijkstra. Lazily-deleted duplicates
// are cheaper than a decrease-key heap at the sizes we run (≤ a few thousand
// nodes).
type spItem struct {
	dist float64
	node NodeID
}

// spHeap is a typed binary min-heap on dist. The sift routines mirror
// container/heap's up/down exactly (strict less, left child preferred on
// ties), so the pop order — and with it every tie-dependent parent choice —
// is identical to the boxed implementation this replaced, without the
// per-item interface{} allocation.
type spHeap []spItem

func (h *spHeap) push(it spItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *spHeap) pop() spItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// Dijkstra computes single-source shortest paths from src using the given
// weight function (nil means the edges' stored weights). Negative weights
// cause a panic: the routing substrate only ever uses link delays, which are
// strictly positive.
func Dijkstra(g *Undirected, src NodeID, w WeightFunc) *ShortestPaths {
	if w == nil {
		w = DefaultWeights(g)
	}
	n := g.NumNodes()
	res := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
		Hops:       make([]int32, n),
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = None
		res.ParentEdge[i] = NoEdge
		res.Hops[i] = -1
	}
	res.Dist[src] = 0
	res.Hops[src] = 0
	done := make([]bool, n)
	h := spHeap{{0, src}}
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue // stale duplicate
		}
		done[u] = true
		for _, half := range g.Neighbors(u) {
			cost := w(half.Edge)
			if cost < 0 {
				panic("graph: Dijkstra given negative edge weight")
			}
			nd := it.dist + cost
			if nd < res.Dist[half.Peer] {
				res.Dist[half.Peer] = nd
				res.Parent[half.Peer] = u
				res.ParentEdge[half.Peer] = half.Edge
				res.Hops[half.Peer] = res.Hops[u] + 1
				h.push(spItem{nd, half.Peer})
			}
		}
	}
	return res
}

// PathTo reconstructs the node path Source→target. Nil if unreachable.
// The result is sized exactly from the stored hop count, filled back to
// front, so reconstruction is one allocation and no reversal.
func (r *ShortestPaths) PathTo(target NodeID) []NodeID {
	if math.IsInf(r.Dist[target], 1) {
		return nil
	}
	path := make([]NodeID, r.Hops[target]+1)
	i := len(path) - 1
	for v := target; v != None; v = r.Parent[v] {
		path[i] = v
		i--
	}
	return path
}

// EdgePathTo reconstructs the edge path Source→target. Nil if unreachable;
// empty (non-nil) if target == Source.
func (r *ShortestPaths) EdgePathTo(target NodeID) []EdgeID {
	if math.IsInf(r.Dist[target], 1) {
		return nil
	}
	path := make([]EdgeID, r.Hops[target])
	i := len(path) - 1
	for v := target; r.Parent[v] != None; v = r.Parent[v] {
		path[i] = r.ParentEdge[v]
		i--
	}
	return path
}

// DAGShortestPaths computes single-source shortest paths in a directed
// acyclic graph by relaxing arcs in topological order. order must be a
// topological order of every node reachable from src (extra nodes are
// harmless). This is the O(V+E) primitive underlying the paper's
// Algorithm 1; the specialised, pruned version lives in internal/core.
func DAGShortestPaths(d *Digraph, src NodeID, order []NodeID) ([]float64, []NodeID) {
	n := d.NumNodes()
	dist := make([]float64, n)
	parent := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = None
	}
	dist[src] = 0
	for _, u := range order {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for _, a := range d.Out(u) {
			if nd := dist[u] + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
			}
		}
	}
	return dist, parent
}

// TopologicalOrder returns a topological order of d, or nil if d has a
// cycle. Kahn's algorithm; ties are broken by ascending node ID so the
// result is deterministic.
func TopologicalOrder(d *Digraph) []NodeID {
	n := d.NumNodes()
	indeg := make([]int32, n)
	for u := NodeID(0); int(u) < n; u++ {
		for _, a := range d.Out(u) {
			indeg[a.To]++
		}
	}
	// Min-heap on node ID for determinism.
	var h nodeHeap
	for u := NodeID(0); int(u) < n; u++ {
		if indeg[u] == 0 {
			h.push(u)
		}
	}
	order := make([]NodeID, 0, n)
	for len(h) > 0 {
		u := h.pop()
		order = append(order, u)
		for _, a := range d.Out(u) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				h.push(a.To)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

// nodeHeap is a typed binary min-heap on NodeID (IDs are unique, so the
// order is total and any heap yields the same deterministic pop sequence).
type nodeHeap []NodeID

func (h *nodeHeap) push(u NodeID) {
	s := append(*h, u)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j] < s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *nodeHeap) pop() NodeID {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2] < s[j] {
			j = j2
		}
		if !(s[j] < s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	u := s[n]
	*h = s[:n]
	return u
}
