package graph

import (
	"math"
	"testing"
	"testing/quick"

	"rmcast/internal/rng"
)

// genConnected builds a random connected graph from a compact seed tuple,
// for quick.Check properties.
func genConnected(seed uint64, sizeByte, extraByte uint8) *Undirected {
	r := rng.New(seed)
	n := 3 + int(sizeByte)%60
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(perm[i]), NodeID(perm[r.Intn(i)]), r.Uniform(1, 10))
	}
	extra := int(extraByte) % n
	for i := 0; i < extra; i++ {
		a, b := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if a != b {
			g.AddEdge(a, b, r.Uniform(1, 10))
		}
	}
	return g
}

// Property: every generated graph is connected and BFS visits all nodes.
func TestPropGeneratedGraphsConnected(t *testing.T) {
	f := func(seed uint64, size, extra uint8) bool {
		g := genConnected(seed, size, extra)
		return Connected(g) && len(BFS(g, 0).Order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance is a metric lower bound on Dijkstra hops — the
// weighted shortest path can never use fewer edges than the unweighted one.
func TestPropBFSHopsLowerBoundDijkstraPath(t *testing.T) {
	f := func(seed uint64, size, extra uint8) bool {
		g := genConnected(seed, size, extra)
		r := rng.New(seed ^ 0xabcdef)
		src := NodeID(r.Intn(g.NumNodes()))
		dst := NodeID(r.Intn(g.NumNodes()))
		bfs := BFS(g, src)
		sp := Dijkstra(g, src, nil)
		path := sp.PathTo(dst)
		return len(path)-1 >= int(bfs.Dist[dst])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: MST weight is invariant across algorithms and never exceeds
// the weight of any spanning tree (spot-checked against a random one).
func TestPropMSTMinimality(t *testing.T) {
	f := func(seed uint64, size, extra uint8) bool {
		g := genConnected(seed, size, extra)
		r := rng.New(seed ^ 0x1234)
		k := MSTKruskal(g, nil)
		p := MSTPrim(g, 0, nil)
		wk, wp := treeWeight(g, k), treeWeight(g, p)
		if math.Abs(wk-wp) > 1e-9 {
			return false
		}
		rt := RandomSpanningTree(g, r)
		return wk <= treeWeight(g, rt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every spanning tree produced by any generator has exactly n−1
// edges and connects the graph.
func TestPropSpanningTreeShape(t *testing.T) {
	f := func(seed uint64, size, extra uint8) bool {
		g := genConnected(seed, size, extra)
		r := rng.New(seed ^ 0x777)
		for _, tree := range [][]EdgeID{
			MSTKruskal(g, nil),
			MSTPrim(g, 0, nil),
			RandomSpanningTree(g, r),
		} {
			if !isSpanningTree(g, tree) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: union-find set count equals graph component count.
func TestPropUnionFindMatchesComponents(t *testing.T) {
	f := func(seed uint64, size, edges uint8) bool {
		r := rng.New(seed)
		n := 2 + int(size)%50
		g := New(n)
		uf := NewUnionFind(n)
		for i := 0; i < int(edges)%80; i++ {
			a, b := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if a == b {
				continue
			}
			g.AddEdge(a, b, 1)
			uf.Union(int32(a), int32(b))
		}
		_, nc := Components(g)
		return uf.Sets() == nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra distances satisfy d(src,v) ≤ d(src,u) + w(u,v) for all
// edges (already covered directionally) and path reconstruction lengths
// match distances.
func TestPropDijkstraPathSumsMatchDistances(t *testing.T) {
	f := func(seed uint64, size, extra uint8) bool {
		g := genConnected(seed, size, extra)
		sp := Dijkstra(g, 0, nil)
		for v := 0; v < g.NumNodes(); v++ {
			ep := sp.EdgePathTo(NodeID(v))
			var sum float64
			for _, id := range ep {
				sum += g.Edge(id).Weight
			}
			if math.Abs(sum-sp.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
