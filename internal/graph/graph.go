// Package graph provides the graph substrate used by the topology generator,
// the unicast routing tables, and the RP strategy computation: an undirected
// weighted graph with stable edge identifiers, a small directed graph, and
// the classic algorithms the paper relies on (BFS, Dijkstra, minimum and
// random spanning trees, DAG shortest paths).
//
// Node identifiers are dense integers in [0, N); edge identifiers are dense
// integers in [0, M). Dense IDs keep every algorithm allocation-light and
// make per-link attributes (delay, loss probability) trivially attachable as
// parallel slices, which matters once the simulator is pushing millions of
// per-packet loss draws through the hot path.
package graph

import "fmt"

// NodeID identifies a node within a graph. IDs are dense: a graph with N
// nodes uses IDs 0..N-1.
type NodeID int32

// None is the sentinel for "no node" (absent parent, unreachable, …).
const None NodeID = -1

// EdgeID identifies an undirected edge within a graph. IDs are dense.
type EdgeID int32

// NoEdge is the sentinel for "no edge".
const NoEdge EdgeID = -1

// Edge is one undirected edge. A and B are its endpoints; Weight is the
// default metric used by algorithms when the caller does not supply one.
type Edge struct {
	A, B   NodeID
	Weight float64
}

// Other returns the endpoint of e opposite to n. It panics if n is not an
// endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", n, e))
}

// Half is one directed half of an undirected edge as seen from the adjacency
// list of its origin node.
type Half struct {
	Edge EdgeID
	Peer NodeID
}

// Undirected is an undirected weighted graph. The zero value is an empty
// graph with no nodes; use New to create a graph with a fixed node count.
type Undirected struct {
	n     int
	edges []Edge
	adj   [][]Half
}

// New returns an undirected graph with n nodes and no edges.
func New(n int) *Undirected {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Undirected{n: n, adj: make([][]Half, n)}
}

// NumNodes returns the number of nodes.
func (g *Undirected) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Undirected) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected edge between a and b with the given default
// weight and returns its EdgeID. Self-loops are rejected; parallel edges are
// permitted (the topology ghost-node transform can create them transiently).
func (g *Undirected) AddEdge(a, b NodeID, w float64) EdgeID {
	if a == b {
		panic("graph: self-loop")
	}
	g.checkNode(a)
	g.checkNode(b)
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{A: a, B: b, Weight: w})
	g.adj[a] = append(g.adj[a], Half{Edge: id, Peer: b})
	g.adj[b] = append(g.adj[b], Half{Edge: id, Peer: a})
	return id
}

// AddNode appends a fresh node and returns its ID.
func (g *Undirected) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.n++
	return NodeID(g.n - 1)
}

// Edge returns the edge with the given ID.
func (g *Undirected) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the underlying edge slice. Callers must not mutate it.
func (g *Undirected) Edges() []Edge { return g.edges }

// SetWeight updates the default weight of an edge.
func (g *Undirected) SetWeight(id EdgeID, w float64) { g.edges[id].Weight = w }

// Neighbors returns the adjacency list of n. Callers must not mutate it.
func (g *Undirected) Neighbors(n NodeID) []Half { return g.adj[n] }

// Degree returns the number of incident edges of n.
func (g *Undirected) Degree(n NodeID) int { return len(g.adj[n]) }

// HasEdgeBetween reports whether at least one edge joins a and b.
func (g *Undirected) HasEdgeBetween(a, b NodeID) bool {
	// Scan the smaller adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.Peer == b {
			return true
		}
	}
	return false
}

func (g *Undirected) checkNode(n NodeID) {
	if n < 0 || int(n) >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", n, g.n))
	}
}

// Clone returns a deep copy of g.
func (g *Undirected) Clone() *Undirected {
	c := &Undirected{n: g.n}
	c.edges = append([]Edge(nil), g.edges...)
	c.adj = make([][]Half, g.n)
	for i, hs := range g.adj {
		c.adj[i] = append([]Half(nil), hs...)
	}
	return c
}

// Digraph is a small directed weighted graph, used for the RP strategy graph
// and as the target of the DAG shortest-path routine.
type Digraph struct {
	n   int
	out [][]Arc
}

// Arc is one directed edge.
type Arc struct {
	To NodeID
	W  float64
}

// NewDigraph returns a directed graph with n nodes and no arcs.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{n: n, out: make([][]Arc, n)}
}

// NumNodes returns the number of nodes.
func (d *Digraph) NumNodes() int { return d.n }

// AddArc inserts a directed edge from a to b with weight w.
func (d *Digraph) AddArc(a, b NodeID, w float64) {
	if a < 0 || int(a) >= d.n || b < 0 || int(b) >= d.n {
		panic("graph: arc endpoint out of range")
	}
	d.out[a] = append(d.out[a], Arc{To: b, W: w})
}

// Out returns the outgoing arcs of n. Callers must not mutate it.
func (d *Digraph) Out(n NodeID) []Arc { return d.out[n] }

// NumArcs returns the total number of arcs.
func (d *Digraph) NumArcs() int {
	total := 0
	for _, a := range d.out {
		total += len(a)
	}
	return total
}
