package graph

import (
	"cmp"
	"slices"

	"rmcast/internal/rng"
)

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning false if they were already
// one set.
func (uf *UnionFind) Union(a, b int32) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// MSTKruskal returns the edge IDs of a minimum spanning tree (or forest, if
// g is disconnected) under the given weight function (nil means stored
// weights). Ties are broken by edge ID, so the result is deterministic.
func MSTKruskal(g *Undirected, w WeightFunc) []EdgeID {
	if w == nil {
		w = DefaultWeights(g)
	}
	ids := make([]EdgeID, g.NumEdges())
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	slices.SortFunc(ids, func(a, b EdgeID) int {
		if wa, wb := w(a), w(b); wa != wb {
			return cmp.Compare(wa, wb)
		}
		return cmp.Compare(a, b)
	})
	uf := NewUnionFind(g.NumNodes())
	tree := make([]EdgeID, 0, g.NumNodes()-1)
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(int32(e.A), int32(e.B)) {
			tree = append(tree, id)
		}
	}
	return tree
}

// MSTPrim returns the edge IDs of a minimum spanning tree of the component
// containing root, under the given weight function (nil means stored
// weights).
func MSTPrim(g *Undirected, root NodeID, w WeightFunc) []EdgeID {
	if w == nil {
		w = DefaultWeights(g)
	}
	n := g.NumNodes()
	inTree := make([]bool, n)
	bestEdge := make([]EdgeID, n)
	bestCost := make([]float64, n)
	for i := range bestEdge {
		bestEdge[i] = NoEdge
	}
	type item struct {
		cost float64
		node NodeID
		via  EdgeID
	}
	var h primHeap
	h = append(h, item{0, root, NoEdge})
	tree := make([]EdgeID, 0, n-1)
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if it.via != NoEdge {
			tree = append(tree, it.via)
		}
		for _, half := range g.Neighbors(u) {
			if inTree[half.Peer] {
				continue
			}
			c := w(half.Edge)
			if bestEdge[half.Peer] == NoEdge || c < bestCost[half.Peer] {
				bestEdge[half.Peer] = half.Edge
				bestCost[half.Peer] = c
				h.push(item{c, half.Peer, half.Edge})
			}
		}
	}
	return tree
}

type primItem = struct {
	cost float64
	node NodeID
	via  EdgeID
}

type primHeap []primItem

func (h *primHeap) push(it primItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].cost <= (*h)[i].cost {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *primHeap) pop() primItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old = old[:last]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(old) && old[l].cost < old[small].cost {
			small = l
		}
		if r < len(old) && old[r].cost < old[small].cost {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// RandomSpanningTree returns the edge IDs of a spanning tree of g sampled
// uniformly at random from all spanning trees, using Wilson's loop-erased
// random walk algorithm. g must be connected. The uniform distribution
// matters for the experiment harness: the paper's multicast tree is "just a
// spanning subtree generated in the network topology", and a uniform sample
// avoids biasing the client (leaf) count the way, say, randomized-DFS trees
// would.
func RandomSpanningTree(g *Undirected, r *rng.Rand) []EdgeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	inTree := make([]bool, n)
	nextEdge := make([]EdgeID, n) // successor edge chosen during the walk
	nextNode := make([]NodeID, n)
	for i := range nextEdge {
		nextEdge[i] = NoEdge
	}
	root := NodeID(r.Intn(n))
	inTree[root] = true
	tree := make([]EdgeID, 0, n-1)
	for s := NodeID(0); int(s) < n; s++ {
		if inTree[s] {
			continue
		}
		// Random walk from s until hitting the tree, remembering the last
		// exit edge from every visited node (this implicitly loop-erases).
		for u := s; !inTree[u]; {
			hs := g.Neighbors(u)
			if len(hs) == 0 {
				panic("graph: RandomSpanningTree on disconnected graph")
			}
			h := hs[r.Intn(len(hs))]
			nextEdge[u] = h.Edge
			nextNode[u] = h.Peer
			u = h.Peer
		}
		// Commit the loop-erased path from s to the tree.
		for u := s; !inTree[u]; {
			inTree[u] = true
			tree = append(tree, nextEdge[u])
			u = nextNode[u]
		}
	}
	return tree
}

// SpanningSubgraph returns a new graph with the same node set as g and only
// the listed edges (weights preserved). Edge IDs are renumbered densely in
// the order given.
func SpanningSubgraph(g *Undirected, edges []EdgeID) *Undirected {
	sub := New(g.NumNodes())
	for _, id := range edges {
		e := g.Edge(id)
		sub.AddEdge(e.A, e.B, e.Weight)
	}
	return sub
}
