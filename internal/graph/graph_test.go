package graph

import (
	"math"
	"testing"

	"rmcast/internal/rng"
)

// grid builds a w×h grid graph with unit weights; handy because its
// shortest-path structure is known in closed form.
func grid(w, h int) *Undirected {
	g := New(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

// randomConnected builds a random connected graph: a random tree plus extra
// random edges, with weights in [1, 10).
func randomConnected(n, extra int, r *rng.Rand) *Undirected {
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[r.Intn(i)])
		g.AddEdge(a, b, r.Uniform(1, 10))
	}
	for i := 0; i < extra; i++ {
		a := NodeID(r.Intn(n))
		b := NodeID(r.Intn(n))
		if a != b && !g.HasEdgeBetween(a, b) {
			g.AddEdge(a, b, r.Uniform(1, 10))
		}
	}
	return g
}

func TestAddEdgeAndNeighbors(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 2.5)
	if g.NumEdges() != 1 || g.Edge(e).Weight != 2.5 {
		t.Fatalf("edge not stored correctly: %+v", g.Edge(e))
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong after AddEdge")
	}
	if !g.HasEdgeBetween(0, 1) || !g.HasEdgeBetween(1, 0) {
		t.Fatal("HasEdgeBetween should be symmetric")
	}
	if g.HasEdgeBetween(0, 2) {
		t.Fatal("phantom edge reported")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{A: 3, B: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.NumNodes() != 3 {
		t.Fatalf("AddNode returned %d, NumNodes %d", id, g.NumNodes())
	}
	g.AddEdge(2, 0, 1)
	if !g.HasEdgeBetween(2, 0) {
		t.Fatal("edge to added node missing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	c.SetWeight(0, 99)
	if g.NumEdges() != 1 || g.Edge(0).Weight != 1 {
		t.Fatal("mutating clone affected original")
	}
}

func TestBFSGrid(t *testing.T) {
	g := grid(4, 3)
	res := BFS(g, 0)
	// Manhattan distance on a grid.
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			want := int32(x + y)
			if res.Dist[y*4+x] != want {
				t.Fatalf("dist[%d,%d] = %d, want %d", x, y, res.Dist[y*4+x], want)
			}
		}
	}
	if res.Parent[0] != None || res.ParentEdge[0] != NoEdge {
		t.Fatal("source parent should be None")
	}
	path := res.PathTo(11)
	if len(path) != int(res.Dist[11])+1 || path[0] != 0 || path[len(path)-1] != 11 {
		t.Fatalf("bad BFS path %v", path)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	res := BFS(g, 0)
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatal("unreachable nodes should have dist -1")
	}
	if res.PathTo(3) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	if Connected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	comp, n := Components(g)
	if n != 2 {
		t.Fatalf("got %d components, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("bad component labels %v", comp)
	}
	g.AddEdge(2, 3, 1)
	if !Connected(g) {
		t.Fatal("connected graph reported disconnected")
	}
	if Connected(New(0)) != true {
		t.Fatal("empty graph should be connected")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(60, 60, r)
		// Force unit weights.
		unit := func(EdgeID) float64 { return 1 }
		src := NodeID(r.Intn(g.NumNodes()))
		bfs := BFS(g, src)
		sp := Dijkstra(g, src, unit)
		for v := 0; v < g.NumNodes(); v++ {
			if float64(bfs.Dist[v]) != sp.Dist[v] {
				t.Fatalf("trial %d: dist mismatch at %d: bfs %d dijkstra %v",
					trial, v, bfs.Dist[v], sp.Dist[v])
			}
		}
	}
}

func TestDijkstraKnownGraph(t *testing.T) {
	//     1
	//  0 --- 1
	//  |      \
	//  4       1
	//  |        \
	//  2 --- 1 -- 3
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	sp := Dijkstra(g, 0, nil)
	want := []float64{0, 1, 3, 2}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, sp.Dist[v], d)
		}
	}
	if p := sp.PathTo(2); len(p) != 4 || p[0] != 0 || p[1] != 1 || p[2] != 3 || p[3] != 2 {
		t.Fatalf("bad path to 2: %v", p)
	}
	ep := sp.EdgePathTo(2)
	if len(ep) != 3 {
		t.Fatalf("bad edge path %v", ep)
	}
	if ep2 := sp.EdgePathTo(0); ep2 == nil || len(ep2) != 0 {
		t.Fatalf("edge path to source should be empty non-nil, got %v", ep2)
	}
}

func TestDijkstraUnreachableIsInf(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	sp := Dijkstra(g, 0, nil)
	if !math.IsInf(sp.Dist[2], 1) {
		t.Fatal("unreachable node should have +Inf dist")
	}
	if sp.PathTo(2) != nil || sp.EdgePathTo(2) != nil {
		t.Fatal("paths to unreachable node should be nil")
	}
}

func TestDijkstraNegativeWeightPanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	Dijkstra(g, 0, nil)
}

// pathsAreOptimal checks the shortest-path tree triangle condition:
// dist[v] <= dist[u] + w(u,v) for every edge, with equality along tree edges.
func TestDijkstraOptimalityCondition(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(80, 120, r)
		sp := Dijkstra(g, 0, nil)
		for _, e := range g.Edges() {
			if sp.Dist[e.B] > sp.Dist[e.A]+e.Weight+1e-12 ||
				sp.Dist[e.A] > sp.Dist[e.B]+e.Weight+1e-12 {
				t.Fatalf("triangle violation on edge %+v", e)
			}
		}
		for v := 1; v < g.NumNodes(); v++ {
			u := sp.Parent[v]
			if u == None {
				t.Fatalf("connected graph has orphan node %d", v)
			}
			w := g.Edge(sp.ParentEdge[v]).Weight
			if math.Abs(sp.Dist[v]-(sp.Dist[u]+w)) > 1e-9 {
				t.Fatalf("tree edge not tight at %d", v)
			}
		}
	}
}
