package graph

// BFSResult holds the outcome of a breadth-first traversal: hop counts and
// the BFS tree expressed as parent pointers.
type BFSResult struct {
	Source     NodeID
	Dist       []int32  // hop count from Source; -1 if unreachable
	Parent     []NodeID // BFS-tree parent; None for Source and unreachable nodes
	ParentEdge []EdgeID // edge to parent; NoEdge where Parent is None
	Order      []NodeID // visit order (Source first)
}

// BFS performs a breadth-first traversal from src over unit edge costs.
func BFS(g *Undirected, src NodeID) *BFSResult {
	n := g.NumNodes()
	res := &BFSResult{
		Source:     src,
		Dist:       make([]int32, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
		Order:      make([]NodeID, 0, n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = None
		res.ParentEdge[i] = NoEdge
	}
	res.Dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, u)
		for _, h := range g.Neighbors(u) {
			if res.Dist[h.Peer] == -1 {
				res.Dist[h.Peer] = res.Dist[u] + 1
				res.Parent[h.Peer] = u
				res.ParentEdge[h.Peer] = h.Edge
				queue = append(queue, h.Peer)
			}
		}
	}
	return res
}

// Connected reports whether g has a single connected component. The empty
// graph is considered connected.
func Connected(g *Undirected) bool {
	if g.NumNodes() == 0 {
		return true
	}
	return len(BFS(g, 0).Order) == g.NumNodes()
}

// Components returns a component label per node (labels are dense, starting
// at 0) and the number of components.
func Components(g *Undirected) ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	for s := NodeID(0); int(s) < n; s++ {
		if comp[s] != -1 {
			continue
		}
		for _, u := range BFS(g, s).Order {
			comp[u] = next
		}
		next++
	}
	return comp, int(next)
}

// PathTo reconstructs the node path Source→target from a BFS result.
// It returns nil if target is unreachable.
func (r *BFSResult) PathTo(target NodeID) []NodeID {
	if r.Dist[target] == -1 {
		return nil
	}
	path := make([]NodeID, 0, r.Dist[target]+1)
	for v := target; v != None; v = r.Parent[v] {
		path = append(path, v)
	}
	// Reverse in place: collected target→source.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
