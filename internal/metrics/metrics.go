// Package metrics provides the streaming statistics used by the experiment
// harness: Welford mean/variance summaries (numerically stable over the
// millions of per-recovery latency samples a sweep produces) and fixed-width
// histograms for latency distributions.
package metrics

import (
	"fmt"
	"math"
)

// Summary accumulates count, mean, variance (Welford), min and max.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds another summary into s (Chan et al. parallel combination).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	delta := o.mean - s.mean
	tot := s.n + o.n
	s.mean += delta * float64(o.n) / float64(tot)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(tot)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = tot
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f±%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.CI95(), s.Min(), s.Max())
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi), with overflow
// and underflow counters, supporting quantile estimation by linear
// interpolation within buckets.
type Histogram struct {
	Lo, Hi  float64
	buckets []int64
	under   int64
	over    int64
	n       int64
}

// NewHistogram creates a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: bad histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		idx := int(float64(len(h.buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
		if idx == len(h.buckets) { // x == Hi boundary via rounding
			idx--
		}
		h.buckets[idx]++
	}
}

// Count returns the total observation count (including out-of-range).
func (h *Histogram) Count() int64 { return h.n }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Merge folds another histogram of identical shape into h. Bucket counts
// are integers, so unlike Summary.Merge the result is exactly the histogram
// a single accumulator would have produced in any observation order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.buckets) != len(o.buckets) {
		panic("metrics: merging differently-shaped histograms")
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.n += o.n
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by interpolating within
// buckets. Returns Lo−1 if the quantile falls in the underflow region and
// Hi+1 for the overflow region; 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.n)
	cum := float64(h.under)
	if target <= cum && h.under > 0 {
		return h.Lo - 1
	}
	width := (h.Hi - h.Lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			frac := (target - cum) / float64(c)
			return h.Lo + width*(float64(i)+frac)
		}
		cum = next
	}
	return h.Hi + 1
}
