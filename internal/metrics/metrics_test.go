package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"rmcast/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.StdErr() <= 0 || s.CI95() <= s.StdErr() {
		t.Fatal("stderr/CI inconsistent")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single-observation stats wrong")
	}
}

// TestSummaryMatchesNaive cross-checks Welford against the two-pass formula.
func TestSummaryMatchesNaive(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(1000)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
			s.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		v := m2 / float64(n-1)
		if math.Abs(s.Mean()-mean) > 1e-9 || math.Abs(s.Variance()-v) > 1e-9 {
			t.Fatalf("trial %d: welford (%v,%v) vs naive (%v,%v)",
				trial, s.Mean(), s.Variance(), mean, v)
		}
	}
}

// TestSummaryMergeEquivalence: merging partial summaries must equal one
// combined summary (property-based).
func TestSummaryMergeEquivalence(t *testing.T) {
	check := func(seed uint64, splitByte uint8) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		split := 1 + int(splitByte)%(n-1)
		var all, a, b Summary
		for i := 0; i < n; i++ {
			x := r.Uniform(-50, 50)
			all.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // empty other: no-op
	if a != before {
		t.Fatal("merging empty changed summary")
	}
	b.Merge(a) // empty receiver: copy
	if b.Mean() != 2 || b.Count() != 2 {
		t.Fatal("merge into empty wrong")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	h.Add(-5)
	h.Add(100)
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Fatalf("out of range %d/%d", u, o)
	}
	if h.Count() != 12 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median %v, want ≈50", med)
	}
	q9 := h.Quantile(0.9)
	if q9 < 85 || q9 > 95 {
		t.Fatalf("p90 %v, want ≈90", q9)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Add(-1)
	if q := h.Quantile(0.5); q != h.Lo-1 {
		t.Fatalf("underflow quantile %v", q)
	}
	h2 := NewHistogram(0, 10, 5)
	h2.Add(50)
	if q := h2.Quantile(0.99); q != h2.Hi+1 {
		t.Fatalf("overflow quantile %v", q)
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0) // exactly Lo → first bucket
	if h.Bucket(0) != 1 {
		t.Fatal("Lo boundary not in first bucket")
	}
	h.Add(10) // exactly Hi → overflow
	if _, o := h.OutOfRange(); o != 1 {
		t.Fatal("Hi boundary not overflow")
	}
}
