package protocol

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/topology"
	"rmcast/internal/trace"
)

// TestGapDetectionExposesLossOnNextArrival: under DetectGap a loss is
// detected exactly when the next data packet arrives.
func TestGapDetectionExposesLossOnNextArrival(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1

	var detected []float64
	e := &hookEngine{}
	e.onDetect = func(s *Session, cl graph.NodeID, seq int) {
		detected = append(detected, s.Eng.Now())
	}
	s, err := NewSession(topo, e, Config{
		Packets: 3, Interval: 10, Detection: DetectGap,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Packet 0 is lost (link lossy), then heal before packet 1.
	s.Eng.Schedule(5, func() { topo.Loss[link] = 0 })
	s.Run()
	if len(detected) != 1 {
		t.Fatalf("detections %d, want 1 (only packet 0 lost)", len(detected))
	}
	// Packet 1 sent at t=10, arrives at 10+3=13: detection of packet 0
	// happens at that arrival.
	if math.Abs(detected[0]-13) > 1e-6 {
		t.Fatalf("gap detection at %v, want 13", detected[0])
	}
}

func TestGapDetectionTailSweep(t *testing.T) {
	// The LAST packet is lost: only the tail sweep can expose it.
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]

	var detected []float64
	e := &hookEngine{}
	e.onDetect = func(s *Session, cl graph.NodeID, seq int) {
		detected = append(detected, s.Eng.Now())
	}
	s, err := NewSession(topo, e, Config{
		Packets: 3, Interval: 10, Detection: DetectGap, GapTailLag: 50,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Lose only the last packet: make the link lossy just before t=20.
	s.Eng.Schedule(19.5, func() { topo.Loss[link] = 1 })
	res := s.Run()
	if len(detected) != 1 {
		t.Fatalf("detections %d, want 1", len(detected))
	}
	// Sweep at lastSend(20) + wouldArrive(3) + tail lag(50) = 73.
	if math.Abs(detected[0]-73) > 1e-6 {
		t.Fatalf("tail detection at %v, want 73", detected[0])
	}
	if res.Stats.Losses != 1 {
		t.Fatalf("losses %d", res.Stats.Losses)
	}
}

func TestGapDetectionLatencyExceedsIdeal(t *testing.T) {
	// Gap detection can only see a loss later than the idealised mode, so
	// end-to-end recovery latency (measured from the *loss event's
	// idealised arrival*) is larger — here we simply check that both
	// modes recover everything and that the echo loop works under gaps.
	topo, _ := topology.Standard(40, 0.15, 3)
	runMode := func(mode DetectionMode) *Result {
		topo2, _ := topology.Standard(40, 0.15, 3)
		s, err := NewSession(topo2, &echoEngine{}, Config{
			Packets: 60, Interval: 25, Detection: mode,
		}, 9)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	_ = topo
	ideal := runMode(DetectIdeal)
	gap := runMode(DetectGap)
	if gap.Stats.Losses != ideal.Stats.Losses {
		t.Fatalf("loss counts differ across detection modes: %d vs %d",
			gap.Stats.Losses, ideal.Stats.Losses)
	}
	if gap.Stats.Recoveries == 0 {
		t.Fatal("no recoveries under gap detection")
	}
}

func TestTracerReceivesLifecycleEvents(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	s, err := NewSession(topo, &echoEngine{}, Config{Packets: 2, Interval: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Counter
	s.Trace = &tr
	s.Eng.Schedule(0.5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if tr.Count(trace.SendData) != 2 {
		t.Fatalf("send-data events %d, want 2", tr.Count(trace.SendData))
	}
	if tr.Count(trace.Detect) != 1 || tr.Count(trace.Recover) != 1 {
		t.Fatalf("detect/recover %d/%d, want 1/1",
			tr.Count(trace.Detect), tr.Count(trace.Recover))
	}
	if tr.Count(trace.SendRequest) != 1 || tr.Count(trace.SendRepair) != 1 {
		t.Fatalf("request/repair %d/%d", tr.Count(trace.SendRequest), tr.Count(trace.SendRepair))
	}
	if tr.Count(trace.Drop) == 0 {
		t.Fatal("no drop events despite a lossy link")
	}
	// recv-data: packet 0 lost, packet 1 received = 1.
	if tr.Count(trace.RecvData) != 1 {
		t.Fatalf("recv-data %d, want 1", tr.Count(trace.RecvData))
	}
}

func TestLatencyHistogramPopulated(t *testing.T) {
	topo, _ := topology.Standard(40, 0.1, 5)
	s, err := NewSession(topo, &echoEngine{}, Config{Packets: 50, Interval: 25}, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.LatencyHist == nil || res.LatencyHist.Count() != res.Stats.Recoveries {
		t.Fatalf("histogram count %d != recoveries %d",
			res.LatencyHist.Count(), res.Stats.Recoveries)
	}
	p50 := res.LatencyQuantile(0.5)
	p95 := res.LatencyQuantile(0.95)
	if p50 <= 0 || p95 < p50 {
		t.Fatalf("quantiles out of order: p50=%v p95=%v", p50, p95)
	}
	// Median must bracket the mean loosely.
	if p95 < res.Stats.Latency.Mean()*0.5 {
		t.Fatalf("p95 %v implausibly below mean %v", p95, res.Stats.Latency.Mean())
	}
	empty := &Result{}
	if empty.LatencyQuantile(0.5) != 0 {
		t.Fatal("nil histogram quantile should be 0")
	}
}

func TestJitteredSessionStillRecovers(t *testing.T) {
	// 40% queueing jitter stresses timeout margins (planned RTTs assume
	// no jitter); retries must still converge to full recovery.
	topo, _ := topology.Standard(50, 0.1, 6)
	s, err := NewSession(topo, &echoEngine{}, Config{
		Packets: 50, Interval: 30, Jitter: 0.4,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Losses == 0 || res.Stats.Recoveries == 0 {
		t.Fatalf("jittered run degenerate: %+v", res.Stats)
	}
	// Echo recoveries must take at least the unjittered RTT.
	if res.Stats.Latency.Min() <= 0 {
		t.Fatal("non-positive latency under jitter")
	}
}

func TestSessionAccessorsAndRecoverLocal(t *testing.T) {
	topo, _ := topology.Chain(2, 1, []int{1})
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1

	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.Interval = 10
	e := &hookEngine{}
	var localOK, dupNo bool
	e.onDetect = func(s *Session, cl graph.NodeID, seq int) {
		if cl != c {
			return
		}
		// Exercise the accessors from inside a run.
		if s.Config().Packets != 2 || len(s.Clients()) != 2 || !s.IsClient(cl) {
			t.Error("session accessors wrong")
		}
		localOK = s.RecoverLocal(cl, seq)
		dupNo = !s.RecoverLocal(cl, seq) // second call must refuse
	}
	s, err := NewSession(topo, e, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if !localOK || !dupNo {
		t.Fatalf("RecoverLocal sequence wrong: %v %v", localOK, dupNo)
	}
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// RecoverLocal before detection counts as pre-detection.
	if !math.IsNaN(0) { // placeholder to keep math import used if edits change
		_ = math.NaN()
	}
}

func TestRecoverLocalPreDetection(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := &hookEngine{}
	s, err := NewSession(topo, e, Config{Packets: 1, Interval: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Recover locally BEFORE the detector fires (detection at ~3 ms).
	s.Eng.Schedule(1, func() {
		if !s.RecoverLocal(c, 0) {
			t.Error("pre-detection RecoverLocal refused")
		}
	})
	res := s.Run()
	if res.Stats.PreDetection != 1 || res.Stats.Losses != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Non-clients are refused.
	if s.RecoverLocal(topo.Source, 0) {
		t.Fatal("RecoverLocal accepted the source")
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Packets != 100 || cfg.Interval != 50 || cfg.Detection != DetectIdeal {
		t.Fatalf("unexpected defaults %+v", cfg)
	}
}

func TestSessionMessagesExposeTailLossEarly(t *testing.T) {
	// The LAST packet is lost; under DetectSession the next heartbeat
	// exposes it long before the end-of-run tail sweep would.
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]

	var detected []float64
	e := &hookEngine{}
	e.onDetect = func(s *Session, cl graph.NodeID, seq int) {
		detected = append(detected, s.Eng.Now())
	}
	s, err := NewSession(topo, e, Config{
		Packets: 8, Interval: 10,
		Detection: DetectSession, HeartbeatInterval: 15, GapTailLag: 500,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Lose only packet 7 (sent at t=70); heal before the t=75 heartbeat.
	s.Eng.Schedule(69.5, func() { topo.Loss[link] = 1 })
	s.Eng.Schedule(70.5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if len(detected) != 1 {
		t.Fatalf("detections %d, want 1", len(detected))
	}
	// Heartbeat at t=75 (highest=7) arrives at 78 — far before the tail
	// sweep at 70+3+500.
	if math.Abs(detected[0]-78) > 1e-6 {
		t.Fatalf("session detection at %v, want 78", detected[0])
	}
	if res.Stats.Losses != 1 {
		t.Fatalf("losses %d", res.Stats.Losses)
	}
}

func TestSessionDetectionFullRecovery(t *testing.T) {
	topo, _ := topology.Standard(50, 0.1, 8)
	s, err := NewSession(topo, &echoEngine{}, Config{
		Packets: 50, Interval: 25, Detection: DetectSession,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Losses == 0 {
		t.Fatalf("degenerate session-detection run: %+v", res.Stats)
	}
	if res.Stats.Recoveries+res.Stats.Unrecovered != res.Stats.Losses {
		t.Fatal("accounting identity broken under session detection")
	}
}

func TestSessionAndGapModesAgreeOnTotals(t *testing.T) {
	// Same topology and seeds: the set of (client, packet) gaps is a
	// property of the data plane, so every detection mode must converge
	// on the same loss totals once tail sweeps run.
	losses := map[DetectionMode]int64{}
	for _, mode := range []DetectionMode{DetectIdeal, DetectGap, DetectSession} {
		topo, _ := topology.Standard(40, 0.1, 12)
		s, err := NewSession(topo, &echoEngine{}, Config{
			Packets: 40, Interval: 25, Detection: mode,
		}, 13)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		// Heartbeats can trigger slightly different engine behaviour, but
		// (losses + pre-detection heals) must cover the same gap set.
		losses[mode] = res.Stats.Losses + res.Stats.PreDetection
	}
	// Ideal and gap modes add no data-plane traffic, so their loss draws
	// are identical. Session mode's heartbeats consume extra draws from
	// the loss stream, shifting later packets' fates slightly — demand
	// agreement within 2%.
	if losses[DetectGap] != losses[DetectIdeal] {
		t.Fatalf("gap totals differ: %v", losses)
	}
	lo, hi := losses[DetectIdeal], losses[DetectSession]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi-lo) > 0.02*float64(hi) {
		t.Fatalf("session-mode totals diverge beyond draw-shift noise: %v", losses)
	}
}
