// Package protocol provides the reliable-multicast session framework shared
// by the three recovery schemes the paper compares (RP, SRM, RMA) and the
// source-recovery ablation baseline.
//
// A Session drives one simulation run: the source multicasts a stream of
// data packets over the tree; per-link loss leaves gaps at clients; clients
// detect each gap and hand it to the protocol Engine, which exchanges
// Request/Repair packets until every gap is filled. The session — not the
// engines — owns ground truth (who has which packet), loss detection, and
// the latency/bandwidth accounting, so the three protocols are measured
// identically.
//
// Loss detection is idealised and uniform across protocols: a client learns
// it missed packet seq a fixed DetectLag after the instant the packet would
// have arrived loss-free. Real protocols detect via sequence gaps or
// heartbeats; modelling that identically for all three schemes would shift
// every latency curve by the same amount, so the idealisation preserves the
// comparisons the paper reports.
package protocol

import (
	"fmt"
	"math"
	"math/bits"

	"rmcast/internal/check"
	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/metrics"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/sim"
	"rmcast/internal/topology"
	"rmcast/internal/trace"
)

// Engine is one recovery protocol bound to a session.
type Engine interface {
	// Name identifies the protocol in reports ("RP", "SRM", "RMA", …).
	Name() string
	// Attach is called once, before any traffic, with the session.
	Attach(s *Session)
	// OnDetect is called when client c detects that packet seq is missing.
	OnDetect(c graph.NodeID, seq int)
	// OnPacket is called for every Request or Repair delivered to host —
	// including repairs for packets the host already has (needed for
	// SRM-style suppression). Data packets are handled by the session.
	OnPacket(host graph.NodeID, pkt sim.Packet)
}

// Coordinator is optionally implemented by engines that route recovery
// through a designated coordinator host (an RP/meet-router). The session
// uses it after Attach to validate fault schedules role-aware: crashing the
// coordinator is only admissible when the engine can fail over
// (fault.Schedule.ValidateRoles).
type Coordinator interface {
	// CoordinatorInfo returns the initially-designated coordinator
	// (graph.None when the group is empty) and whether the engine can
	// re-elect a replacement when it crashes.
	CoordinatorInfo() (rp graph.NodeID, failover bool)
}

// FaultAware is optionally implemented by engines that react to host
// crash/recover transitions of an installed fault schedule (Config.Fault):
// parking a crashed client's retry timers so a permanent crash cannot wedge
// the event loop, and resuming its recovery after a reboot. The session
// dispatches the hooks at each effective transition; engines without the
// interface rely on the network layer silencing a dead host's traffic.
type FaultAware interface {
	OnCrash(host graph.NodeID)
	OnRecover(host graph.NodeID)
}

// DetectionMode selects how clients learn that a packet is missing.
type DetectionMode uint8

const (
	// DetectIdeal notifies a client DetectLag after the instant the lost
	// packet would have arrived — the uniform idealisation used for the
	// paper's comparisons (see the package comment).
	DetectIdeal DetectionMode = iota
	// DetectGap is the realistic mode: a client notices a gap when a
	// later data packet arrives (sequence-number gap detection), with a
	// session-tail sweep catching losses of the final packets. Latencies
	// measured under this mode include the gap-exposure delay.
	DetectGap
	// DetectSession adds SRM-style session messages to gap detection: the
	// source periodically multicasts a heartbeat advertising the highest
	// sequence sent, so tail losses are exposed within one heartbeat
	// interval instead of waiting for the end-of-run sweep. This is how
	// SRM actually bounds tail-loss detection.
	DetectSession
)

// CheckMode selects how the runtime invariant oracle (internal/check)
// treats what it finds. The zero value is strict, so every session —
// including every existing test and sweep — runs under the oracle unless a
// caller opts out.
type CheckMode uint8

const (
	// CheckStrict (the default) panics on event-level safety violations —
	// shadow-state divergence, a repair for a never-sent seq, a double-
	// counted delivery — and records end-of-run findings (liveness,
	// conservation) in Result.Violations.
	CheckStrict CheckMode = iota
	// CheckRecord records every violation in Result.Violations without
	// panicking (for tests that exercise violations on purpose).
	CheckRecord
	// CheckOff disables the oracle entirely.
	CheckOff
)

// Config parameterises a session run.
type Config struct {
	// Packets is the number of data packets the source multicasts.
	Packets int
	// Interval is the inter-packet send spacing (ms).
	Interval float64
	// Detection selects the loss-detection model (default DetectIdeal).
	Detection DetectionMode
	// GapTailLag is the extra wait, after the last packet's loss-free
	// arrival, before tail losses are declared under DetectGap
	// (default 2·Interval).
	GapTailLag float64
	// HeartbeatInterval is the session-message period under DetectSession
	// (default 4·Interval). Heartbeats are multicast on the data plane and
	// subject to loss like data.
	HeartbeatInterval float64
	// DetectLag is the extra delay between a packet's loss-free arrival
	// time and the client noticing the gap (ms). Zero is allowed: an
	// epsilon is applied internally so detection orders after delivery.
	DetectLag float64
	// LossyRecovery subjects recovery traffic (requests and repairs) to
	// per-link loss. The paper's model keeps recovery traffic lossless
	// (§3.1; see sim.Net.ControlLoss), which is the default; enable this
	// for the robustness experiments.
	LossyRecovery bool
	// Jitter adds per-traversal queueing variability (see sim.Net.Jitter).
	// Zero — the paper's fixed-delay model — is the default.
	Jitter float64
	// Fault, when non-empty, installs a failure-injection schedule (host
	// crashes, link outages, burst loss — see internal/fault). Nil or empty
	// reproduces the paper's reliable network bit-for-bit: the schedule's
	// private rng stream is only split off when faults are configured, and
	// an inert fault state never draws from the network's loss stream.
	Fault *fault.Schedule
	// PacketTime, when positive, enables the store-and-forward congestion
	// model (sim.QueueModel) with this per-packet per-link service time
	// (ms). Under congestion a delayed data packet can arrive after the
	// idealised detector fired — pair this with a DetectLag covering the
	// expected queueing delay, or with DetectGap; late arrivals are
	// counted in Stats.LateData either way.
	PacketTime float64
	// MaxEvents aborts runaway runs; 0 means the package default (50M).
	MaxEvents uint64
	// SimWorkers, when ≥ 2, requests the conservative parallel engine: the
	// tree is partitioned into shards, each simulated on its own event
	// engine, synchronised on lookahead-wide safe-time windows (see
	// parallel.go). Results are bit-identical to serial. Configurations the
	// parallel mode cannot reproduce exactly (queueing, jitter, lossy
	// recovery, non-ideal detection, burst/mutation faults, tracing, or an
	// engine without shard support) silently fall back to the serial path,
	// so any worker count is always safe. 0 or 1 means serial.
	SimWorkers int
	// DomainClients, when positive and SimWorkers ≥ 2, switches the parallel
	// engine to hierarchical-domain mode: the tree is partitioned into local
	// recovery domains of about this many clients each
	// (mtree.PartitionDomains) instead of the fixed small shard count, one
	// engine per domain, cross-domain traffic merged through the same
	// lookahead-window runner. The domain count is a pure function of
	// (group size, DomainClients) — never of SimWorkers — so digests stay
	// bit-identical at any worker count. This is the million-client tier's
	// execution mode: per-domain state is O(n/K), so no single engine ever
	// materialises the full group. Ineligible configurations fall back to
	// serial with a "domain mode: …" SerialReason.
	DomainClients int
	// Check selects the runtime invariant oracle's mode (default: strict —
	// see CheckMode). The oracle shadows the session's per-(client, seq)
	// state machine event by event; it draws no randomness and never
	// perturbs a run's outcome.
	Check CheckMode
}

// DefaultConfig returns the configuration used by the reproduction
// experiments: 100 packets, 50 ms apart, immediate detection.
func DefaultConfig() Config {
	return Config{Packets: 100, Interval: 50, DetectLag: 0}
}

// detectEps orders loss-detection checks after same-instant deliveries.
const detectEps = 1e-3

// heartbeat is the payload of a session message (DetectSession): every
// sequence up to Highest has been transmitted.
type heartbeat struct {
	Highest int
}

// Session is one simulation run of one protocol over one network.
type Session struct {
	Eng    *sim.Engine
	Net    *sim.Net
	Topo   *topology.Network
	Tree   *mtree.Tree
	Routes route.Router
	// Rand is the protocol-side randomness stream (timer jitter), split
	// from the network's loss stream so protocols with different draw
	// counts still see identical link fates under one seed.
	Rand *rng.Rand

	cfg    Config
	engine Engine
	// seed is the session's root seed, kept so the parallel runner can
	// re-derive the serial run's exact rng stream layout per shard.
	seed uint64

	// Trace, when set before Run, receives structured events for every
	// send, delivery, drop, detection, and recovery.
	Trace trace.Tracer

	clientIdx map[graph.NodeID]int
	received  [][]bool    // [clientIdx][seq]
	detectAt  [][]float64 // NaN = not (yet) detected
	sentAt    []float64   // source send time per seq
	nextExp   []int       // per-client next expected seq (DetectGap)

	latHist *metrics.Histogram
	// perClient accumulates recovery latency per client (index-aligned
	// with Topo.Clients), for per-client model validation.
	perClient []metrics.Summary
	stats     Stats

	// oracle is the runtime invariant checker (nil under CheckOff);
	// numNodes caches the topology size for per-packet header validation.
	oracle   *check.Oracle
	numNodes int

	// latLog, when enabled, records every recovery-latency observation with
	// its event time. Welford's update is order-dependent, so the parallel
	// runner replays the per-shard logs in global time order to reproduce
	// the serial Stats.Latency bit-for-bit (see parallel.go). Off — and
	// costless — in serial runs.
	latLogOn bool
	latLog   []latSample

	// coded is the coded-recovery ground truth (nil unless the attached
	// engine called EnableCodedRecovery): per (client, block), the set of
	// distinct coded symbols held, mirrored independently by the oracle.
	coded *codedRecovery

	// failover marks a session whose engine runs the epoch-fenced
	// coordinator mode (EnableFailover); serialReason records why a
	// SimWorkers ≥ 2 run fell back to the serial path (see parallel.go).
	failover     bool
	serialReason string
}

// codedRecovery holds the session-owned coded-symbol state: blocks of k
// data packets protected by r coded symbols, and per (client, block) the
// bitmask of coded indices held. The bitmask IS the idempotency mechanism:
// a redundant symbol sets no new bit, so duplicated or reordered symbol
// deliveries cannot double-count (the symbol-plane equivalent of the
// engines' DedupCache).
type codedRecovery struct {
	k, r, blocks int
	sets         [][]uint64 // [clientIdx][block]
}

// latSample is one recovery-latency observation stamped with its event time.
type latSample struct {
	at, lat float64
}

// Stats aggregates the per-run outcome counters.
type Stats struct {
	// Losses counts detected (client, seq) gaps.
	Losses int64
	// Recoveries counts gaps subsequently filled by a repair.
	Recoveries int64
	// Unrecovered counts gaps still open when the run ends (should be 0).
	Unrecovered int64
	// Duplicates counts repairs delivered to hosts that already had the
	// packet — pure overhead (SRM floods produce many).
	Duplicates int64
	// PreDetection counts repairs that filled a gap before the client
	// even detected it (possible when another client recovers first and
	// the repair is multicast); these never become Losses/Recoveries.
	PreDetection int64
	// DataDeliveries counts original data receptions.
	DataDeliveries int64
	// LateData counts data packets that arrived after the client had
	// already declared them lost (possible only under queueing, where
	// true arrival can trail the idealised detector). Such gaps close
	// without counting as Recoveries.
	LateData int64
	// UnrecoveredCrashed counts packets missing at clients that were down
	// (crashed) when the run ended. Under fault injection these are the
	// expected cost of a crash, not a protocol failure, so they are kept
	// out of Unrecovered — which remains the liveness-violation counter.
	UnrecoveredCrashed int64
	// Delivered counts (client, seq) pairs held when the run ended, however
	// obtained (original transmission, repair, or local decode).
	Delivered int64
	// Malformed counts packets rejected by validation — out-of-range
	// header fields caught by the session, or unparseable payloads caught
	// by the engines. Non-zero only under the message-plane mutator (or a
	// protocol bug).
	Malformed int64
	// CodedSymbols counts distinct coded repair symbols credited toward
	// block decodes; CodedDuplicates counts redundant copies absorbed
	// idempotently. Both are zero unless the engine uses coded recovery.
	CodedSymbols    int64
	CodedDuplicates int64
	// Failovers counts RP re-elections: coordinator claims for epochs past
	// the bootstrap epoch. FencedStale counts control messages rejected by
	// the epoch fence (stale-epoch requests or announces). Both are zero
	// unless the engine runs the epoch-fenced failover mode.
	Failovers   int64
	FencedStale int64
	// Latency summarises per-recovery delay (detection → repair), ms.
	Latency metrics.Summary
}

// Result is the full outcome of a run.
type Result struct {
	Protocol string
	Clients  int
	Packets  int
	Stats    Stats
	Hops     sim.HopCount
	Drops    sim.HopCount
	Events   uint64
	SimTime  float64
	// LatencyHist is the per-recovery latency distribution (ms).
	LatencyHist *metrics.Histogram
	// PerClientLatency maps each client to its recovery-latency summary
	// (clients with no recoveries have empty summaries).
	PerClientLatency map[graph.NodeID]metrics.Summary
	// Complete is false if the run hit MaxEvents before quiescing.
	Complete bool
	// Sharded reports whether the run actually executed on the conservative
	// parallel engine. SerialReason, set only when Config.SimWorkers
	// requested sharding but the run fell back to the serial path, names the
	// first eligibility condition that failed (see parallelEligible) — so
	// users stop guessing why -simworkers made no difference.
	Sharded      bool
	SerialReason string
	// Domains is the recovery-domain count of a hierarchical-domain run
	// (Config.DomainClients; 0 for serial and classic sharded runs), and
	// Aggregators its per-domain aggregator hosts — each domain's best
	// Algorithm-1 candidate (core.DomainAggregators). Both are execution
	// metadata, deliberately outside the result digest: a domain run must
	// hash identically to its serial twin.
	Domains     int
	Aggregators []graph.NodeID
	// Violations lists what the invariant oracle found (nil on a clean
	// run): end-of-run liveness and conservation findings always, plus
	// event-level safety findings under CheckRecord. The experiment
	// harness treats a non-empty list as a failed run.
	Violations []string
}

// LatencyQuantile estimates the q-quantile of per-recovery latency (ms).
func (r *Result) LatencyQuantile(q float64) float64 {
	if r.LatencyHist == nil {
		return 0
	}
	return r.LatencyHist.Quantile(q)
}

// AvgLatency returns the mean recovery latency in ms (0 when no recovery
// happened).
func (r *Result) AvgLatency() float64 { return r.Stats.Latency.Mean() }

// DeliveryRatio returns the fraction of (client, packet) pairs delivered by
// the end of the run — 1.0 in the paper's reliable-network model, lower
// under fault injection when crashed clients miss packets for good.
func (r *Result) DeliveryRatio() float64 {
	total := int64(r.Clients) * int64(r.Packets)
	if total == 0 {
		return 0
	}
	return float64(r.Stats.Delivered) / float64(total)
}

// BandwidthPerRecovery returns retransmission hops per recovery — the
// paper's "average bandwidth usage per packet recovered (hops)". The paper
// counts the repair (retransmission) traffic only: §5.2 argues SRM's
// per-packet recovery bandwidth is *fixed* because its retransmission is a
// whole-tree multicast, which is only true when NACK traffic is excluded.
// Request traffic is reported separately by RequestHopsPerRecovery.
func (r *Result) BandwidthPerRecovery() float64 {
	if r.Stats.Recoveries == 0 {
		return 0
	}
	return float64(r.Hops.Repair) / float64(r.Stats.Recoveries)
}

// RequestHopsPerRecovery returns request/NACK hops per recovery — the part
// of recovery bandwidth the paper's figures leave out.
func (r *Result) RequestHopsPerRecovery() float64 {
	if r.Stats.Recoveries == 0 {
		return 0
	}
	return float64(r.Hops.Request) / float64(r.Stats.Recoveries)
}

// TotalRecoveryHopsPerRecovery returns all recovery-traffic hops (requests
// plus repairs) per recovery — the harsher end-to-end bandwidth measure.
func (r *Result) TotalRecoveryHopsPerRecovery() float64 {
	if r.Stats.Recoveries == 0 {
		return 0
	}
	return float64(r.Hops.Recovery()) / float64(r.Stats.Recoveries)
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: clients=%d losses=%d recovered=%d avgLat=%.2fms bw=%.2fhops dup=%d",
		r.Protocol, r.Clients, r.Stats.Losses, r.Stats.Recoveries,
		r.AvgLatency(), r.BandwidthPerRecovery(), r.Stats.Duplicates)
}

// NewSession assembles a session over topo with the given protocol engine,
// using the omniscient routing oracle. All randomness derives from seed.
func NewSession(topo *topology.Network, engine Engine, cfg Config, seed uint64) (*Session, error) {
	return NewSessionWithRouter(topo, engine, cfg, seed, nil)
}

// NewSessionWithRouter is NewSession with an injected routing substrate
// (e.g. internal/lsr's converged link-state routing, whose delay estimates
// carry measurement noise). nil means route.Build's oracle.
func NewSessionWithRouter(topo *topology.Network, engine Engine, cfg Config, seed uint64, routes route.Router) (*Session, error) {
	tree, err := mtree.Build(topo)
	if err != nil {
		return nil, err
	}
	return NewSessionPrebuilt(topo, tree, engine, cfg, seed, routes)
}

// NewSessionPrebuilt is NewSessionWithRouter with a caller-supplied multicast
// tree (mtree.Build or mtree.BuildLite over topo). The million-client tier
// uses it to build one lite tree per topology and reuse it across sessions —
// at n=1,000,000 the tree (and especially the full Build's O(n log n) LCA
// index) dominates per-run setup cost and heap.
func NewSessionPrebuilt(topo *topology.Network, tree *mtree.Tree, engine Engine, cfg Config, seed uint64, routes route.Router) (*Session, error) {
	if cfg.Packets <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("protocol: bad config %+v", cfg)
	}
	root := rng.New(seed)
	netRand := root.Split()
	protoRand := root.Split()
	eng := sim.NewEngine()
	if routes == nil {
		routes = route.Build(topo)
	} else {
		routes.Prepare(topo.Source)
		for _, c := range topo.Clients {
			routes.Prepare(c)
		}
	}
	net := sim.NewNet(eng, topo, tree, routes, netRand)
	net.ControlLoss = cfg.LossyRecovery
	net.Jitter = cfg.Jitter
	if cfg.PacketTime > 0 {
		net.Queue = sim.NewQueueModelSized(cfg.PacketTime, topo.G.NumEdges())
	}
	if !cfg.Fault.Empty() {
		if err := cfg.Fault.Validate(topo.NumNodes(), len(topo.Loss)); err != nil {
			return nil, err
		}
		// Role-aware validation, pass 1: the source may never crash (the
		// liveness invariant is conditioned on it staying up). The engine's
		// coordinator role, if any, is only known after Attach — pass 2 below.
		if err := cfg.Fault.ValidateRoles(topo.Source, graph.None, false); err != nil {
			return nil, fmt.Errorf("protocol: %w", err)
		}
		net.InstallFault(fault.NewState(cfg.Fault, root.Split()))
	}
	s := &Session{
		Eng:       eng,
		Net:       net,
		Topo:      topo,
		Tree:      tree,
		Routes:    routes,
		Rand:      protoRand,
		cfg:       cfg,
		engine:    engine,
		seed:      seed,
		clientIdx: make(map[graph.NodeID]int, len(topo.Clients)),
		received:  make([][]bool, len(topo.Clients)),
		detectAt:  make([][]float64, len(topo.Clients)),
		sentAt:    make([]float64, cfg.Packets),
		nextExp:   make([]int, len(topo.Clients)),
		latHist:   metrics.NewHistogram(0, 5000, 500),
		perClient: make([]metrics.Summary, len(topo.Clients)),
		numNodes:  topo.NumNodes(),
	}
	if cfg.Check != CheckOff {
		s.oracle = check.New(len(topo.Clients), cfg.Packets, cfg.Check == CheckStrict)
	}
	for i, c := range topo.Clients {
		s.clientIdx[c] = i
		s.received[i] = make([]bool, cfg.Packets)
		s.detectAt[i] = make([]float64, cfg.Packets)
		for j := range s.detectAt[i] {
			s.detectAt[i][j] = math.NaN()
		}
	}
	// Every host (clients + source) feeds deliveries through the session.
	for _, c := range topo.Clients {
		c := c
		s.Net.SetHandler(c, func(pkt sim.Packet) { s.onDeliver(c, pkt) })
	}
	src := topo.Source
	s.Net.SetHandler(src, func(pkt sim.Packet) { s.onDeliver(src, pkt) })
	engine.Attach(s)
	if !cfg.Fault.Empty() {
		// Role-aware validation, pass 2: with the engine attached its
		// coordinator role is known — a schedule that crashes the RP is only
		// admissible when the engine can fail over.
		if co, ok := engine.(Coordinator); ok {
			rp, failover := co.CoordinatorInfo()
			if err := cfg.Fault.ValidateRoles(topo.Source, rp, failover); err != nil {
				return nil, fmt.Errorf("protocol: %w", err)
			}
		}
	}
	if net.Fault != nil {
		fa, _ := engine.(FaultAware)
		net.OnCrash = func(h graph.NodeID) {
			if fa != nil {
				fa.OnCrash(h)
			}
		}
		net.OnRecover = func(h graph.NodeID) {
			if fa != nil {
				fa.OnRecover(h)
			}
		}
	}
	return s, nil
}

// Alive reports whether a host is up at the current simulation time (always
// true without a fault model).
func (s *Session) Alive(h graph.NodeID) bool {
	return s.Net.Fault == nil || s.Net.Fault.HostUpAt(h, s.Eng.Now())
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Clients returns the group members.
func (s *Session) Clients() []graph.NodeID { return s.Topo.Clients }

// IsClient reports group membership.
func (s *Session) IsClient(n graph.NodeID) bool { return s.Topo.IsClient(n) }

// Has reports whether host holds packet seq. The source holds every packet
// it has sent (and, conservatively, every packet of the stream — recovery
// requests only ever concern sent packets).
func (s *Session) Has(host graph.NodeID, seq int) bool {
	if host == s.Topo.Source {
		return true
	}
	idx, ok := s.clientIdx[host]
	if !ok {
		return false
	}
	return s.received[idx][seq]
}

// Missing reports whether client c is a group member that detected the loss
// of seq and has not recovered it yet.
func (s *Session) Missing(c graph.NodeID, seq int) bool {
	idx, ok := s.clientIdx[c]
	if !ok {
		return false
	}
	return !s.received[idx][seq] && !math.IsNaN(s.detectAt[idx][seq])
}

// onDeliver is the single choke point for every packet arriving at a host.
func (s *Session) onDeliver(host graph.NodeID, pkt sim.Packet) {
	// Control-plane header validation: recovery traffic only ever concerns
	// sent sequence numbers and real hosts, so out-of-range fields — the
	// mutator's corruption, by construction detectable — are rejected here,
	// before any bookkeeping or engine state can be touched. Payloads are
	// validated by the engines, which own their types.
	if pkt.Kind != sim.Data &&
		(pkt.Seq < 0 || pkt.Seq >= s.cfg.Packets || pkt.From < 0 || int(pkt.From) >= s.numNodes) {
		s.NoteMalformed()
		return
	}
	switch pkt.Kind {
	case sim.Data:
		if pkt.Seq < 0 || pkt.Seq >= s.cfg.Packets {
			if hb, ok := pkt.Payload.(heartbeat); ok {
				// Session message: every packet up to Highest has been
				// sent; anything not received is now a known gap.
				if idx, isClient := s.clientIdx[host]; isClient {
					for seq := s.nextExp[idx]; seq <= hb.Highest; seq++ {
						s.detectLoss(idx, host, seq)
					}
					if hb.Highest+1 > s.nextExp[idx] {
						s.nextExp[idx] = hb.Highest + 1
					}
				}
				return
			}
			// Auxiliary data-plane packets (e.g. FEC parity): not part of
			// the reliable sequence space; routed to the engine, subject
			// to data-plane loss like any data packet.
			s.engine.OnPacket(host, pkt)
			return
		}
		if idx, ok := s.clientIdx[host]; ok {
			if s.oracle != nil {
				s.oracle.OnData(idx, pkt.Seq,
					s.received[idx][pkt.Seq], !math.IsNaN(s.detectAt[idx][pkt.Seq]))
			}
			if !s.received[idx][pkt.Seq] {
				s.received[idx][pkt.Seq] = true
				s.stats.DataDeliveries++
				if !math.IsNaN(s.detectAt[idx][pkt.Seq]) {
					s.stats.LateData++
				}
				s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.RecvData,
					Node: int32(host), Peer: -1, Seq: pkt.Seq})
			}
			if s.cfg.Detection == DetectGap || s.cfg.Detection == DetectSession {
				s.gapScan(idx, host, pkt.Seq)
			}
		}
	case sim.Repair:
		// A repair payload is either absent, a coded symbol, or mutator
		// garbage (symbol truncation): garbage is rejected here because no
		// engine emits payload-less garbage repairs, so the usual engine-side
		// payload validation would otherwise credit the packet as a plain
		// repair of its (valid-looking) header sequence.
		if _, bad := pkt.Payload.(sim.Garbage); bad {
			s.NoteMalformed()
			return
		}
		if sym, ok := pkt.Payload.(sim.Symbol); ok {
			s.onSymbol(host, pkt, sym)
			return
		}
		if idx, ok := s.clientIdx[host]; ok {
			s.repairArrival(idx, host, pkt)
		} else if s.oracle != nil {
			// Repairs crossing non-client hosts (e.g. the source seeing an
			// SRM flood) still carry the never-sent-seq invariant.
			s.oracle.OnRepair(-1, pkt.Seq, false, false)
		}
		s.engine.OnPacket(host, pkt)
	case sim.Request:
		s.engine.OnPacket(host, pkt)
	}
}

// repairArrival applies the per-(client, seq) bookkeeping of one repair
// delivery — shared by plain repairs and systematic coded symbols, which
// carry a data sequence verbatim.
func (s *Session) repairArrival(idx int, host graph.NodeID, pkt sim.Packet) {
	if s.oracle != nil {
		s.oracle.OnRepair(idx, pkt.Seq,
			s.received[idx][pkt.Seq], !math.IsNaN(s.detectAt[idx][pkt.Seq]))
	}
	switch {
	case s.received[idx][pkt.Seq]:
		s.stats.Duplicates++
	case math.IsNaN(s.detectAt[idx][pkt.Seq]):
		// Repaired before the gap was even noticed.
		s.received[idx][pkt.Seq] = true
		s.stats.PreDetection++
	default:
		s.received[idx][pkt.Seq] = true
		s.stats.Recoveries++
		s.recordLatency(idx, s.Eng.Now()-s.detectAt[idx][pkt.Seq])
		s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.Recover,
			Node: int32(host), Peer: int32(pkt.From), Seq: pkt.Seq})
	}
}

// onSymbol is the delivery path for coded repair symbols: validate against
// the enabled coded-recovery geometry (anything out of domain — including
// the mutator's index flips and truncations — is malformed), then credit a
// systematic symbol as a plain repair of its sequence or a coded symbol as
// one unit of the block's decode rank, idempotently. The engine sees the
// packet afterwards to attempt a decode.
func (s *Session) onSymbol(host graph.NodeID, pkt sim.Packet, sym sim.Symbol) {
	cr := s.coded
	if cr == nil {
		// A symbol in a run whose engine never enabled coded recovery is
		// junk by definition.
		s.NoteMalformed()
		return
	}
	b, si := int(sym.Block), int(sym.Index)
	if b < 0 || b >= cr.blocks || si < 0 || si >= cr.k+cr.r {
		s.NoteMalformed()
		return
	}
	lo := b * cr.k
	bl := s.blockLen(b)
	idx, ok := s.clientIdx[host]
	if !ok {
		// Symbols are unicast to requesting clients; a copy reaching a
		// non-client host is inert.
		return
	}
	if si < cr.k {
		// Systematic symbol: carries data sequence lo+si verbatim. The
		// header sequence must agree (padding indices of a short tail
		// block name no data and are likewise invalid).
		if si >= bl || pkt.Seq != lo+si {
			s.NoteMalformed()
			return
		}
		s.repairArrival(idx, host, pkt)
		s.engine.OnPacket(host, pkt)
		return
	}
	j := si - cr.k
	dup := cr.sets[idx][b]&(1<<uint(j)) != 0
	if s.oracle != nil {
		s.oracle.OnSymbol(idx, b, j, dup)
	}
	if dup {
		s.stats.CodedDuplicates++
	} else {
		cr.sets[idx][b] |= 1 << uint(j)
		s.stats.CodedSymbols++
	}
	s.engine.OnPacket(host, pkt)
}

// EnableCodedRecovery switches the session (and its oracle) into coded-
// recovery mode: the data stream is viewed as blocks of k packets, each
// protected by r coded symbols, with k and r in [1, 64] so a block's
// symbol set fits one machine word. Engines call it from Attach; calling
// it twice with different geometry is an error.
func (s *Session) EnableCodedRecovery(k, r int) error {
	if k < 1 || k > 64 || r < 1 || r > 64 {
		return fmt.Errorf("protocol: coded geometry out of range (k=%d, r=%d)", k, r)
	}
	if s.coded != nil {
		if s.coded.k != k || s.coded.r != r {
			return fmt.Errorf("protocol: coded recovery reconfigured (k %d→%d, r %d→%d)",
				s.coded.k, k, s.coded.r, r)
		}
		return nil
	}
	blocks := (s.cfg.Packets + k - 1) / k
	cr := &codedRecovery{k: k, r: r, blocks: blocks,
		sets: make([][]uint64, len(s.Topo.Clients))}
	for i := range cr.sets {
		cr.sets[i] = make([]uint64, blocks)
	}
	s.coded = cr
	if s.oracle != nil {
		s.oracle.EnableCoded(k, r)
	}
	return nil
}

// CodedBlocks returns the block count of the enabled coded-recovery
// geometry (0 when disabled).
func (s *Session) CodedBlocks() int {
	if s.coded == nil {
		return 0
	}
	return s.coded.blocks
}

// blockLen returns the number of data sequences in block b (the tail block
// may be short).
func (s *Session) blockLen(b int) int {
	lo := b * s.coded.k
	hi := lo + s.coded.k
	if hi > s.cfg.Packets {
		hi = s.cfg.Packets
	}
	return hi - lo
}

// BlockBounds returns the data-sequence range [lo, hi) of block b.
func (s *Session) BlockBounds(b int) (lo, hi int) {
	lo = b * s.coded.k
	hi = lo + s.blockLen(b)
	return lo, hi
}

// BlockRank returns client c's decode rank for block b: data packets held
// plus distinct coded symbols. The block is decodable once the rank
// reaches the block length.
func (s *Session) BlockRank(c graph.NodeID, b int) int {
	idx, ok := s.clientIdx[c]
	if !ok || s.coded == nil {
		return 0
	}
	rank := bits.OnesCount64(s.coded.sets[idx][b])
	lo, hi := s.BlockBounds(b)
	for seq := lo; seq < hi; seq++ {
		if s.received[idx][seq] {
			rank++
		}
	}
	return rank
}

// CodedHeld returns the bitmask of coded symbol indices client c holds for
// block b.
func (s *Session) CodedHeld(c graph.NodeID, b int) uint64 {
	idx, ok := s.clientIdx[c]
	if !ok || s.coded == nil {
		return 0
	}
	return s.coded.sets[idx][b]
}

// DecodeBlock performs client c's erasure decode of block b, recovering
// every data sequence of the block it does not hold (the engine must only
// call it when BlockRank covers the block length — the oracle independently
// verifies the rank and panics on a false decode in strict mode). Returns
// the number of sequences recovered.
func (s *Session) DecodeBlock(c graph.NodeID, b int) int {
	idx, ok := s.clientIdx[c]
	if !ok || s.coded == nil || b < 0 || b >= s.coded.blocks {
		return 0
	}
	if s.oracle != nil {
		s.oracle.OnDecode(idx, b)
	}
	n := 0
	lo, hi := s.BlockBounds(b)
	for seq := lo; seq < hi; seq++ {
		if !s.received[idx][seq] && s.RecoverLocal(c, seq) {
			n++
		}
	}
	return n
}

// emit forwards a trace event when a tracer is attached.
func (s *Session) emit(e trace.Event) {
	if s.Trace != nil {
		s.Trace.Emit(e)
	}
}

// Engine-event opcodes for the typed, closure-free callbacks the session
// schedules on hot paths (see sim.Callee): one per data packet sent, one
// per (client, packet) idealised loss detection, one per heartbeat.
const (
	opSendData = iota
	opDetect
	opHeartbeat
)

// OnSimEvent implements sim.Callee: the session's per-packet events ride in
// typed engine events instead of allocating a closure each.
func (s *Session) OnSimEvent(op, a, b int) {
	switch op {
	case opSendData:
		seq := a
		if s.oracle != nil {
			s.oracle.OnSent(seq)
		}
		s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.SendData,
			Node: int32(s.Topo.Source), Peer: -1, Seq: seq})
		s.Net.MulticastFromSource(sim.Packet{Kind: sim.Data, Seq: seq, From: s.Topo.Source})
	case opDetect:
		i, seq := a, b
		s.detectLoss(i, s.Topo.Clients[i], seq)
	case opHeartbeat:
		s.Net.MulticastFromSource(sim.Packet{
			Kind: sim.Data, Seq: -1, From: s.Topo.Source,
			Payload: heartbeat{Highest: a},
		})
	}
}

// detectLoss records and dispatches one loss detection (idempotent). A
// client that is crashed at the detection instant cannot observe the gap:
// detection is deferred to its recovery time — the recover hook, scheduled
// earlier, fires first — or suppressed entirely for a permanent crash, in
// which case the gap surfaces as UnrecoveredCrashed.
func (s *Session) detectLoss(i int, c graph.NodeID, seq int) {
	if s.received[i][seq] || !math.IsNaN(s.detectAt[i][seq]) {
		return
	}
	if f := s.Net.Fault; f != nil {
		if until := f.HostDownUntil(c, s.Eng.Now()); !math.IsNaN(until) {
			if !math.IsInf(until, 1) {
				s.Eng.ScheduleCall(until, s, opDetect, i, seq)
			}
			return
		}
	}
	s.detectAt[i][seq] = s.Eng.Now()
	s.stats.Losses++
	if s.oracle != nil {
		s.oracle.OnDetect(i, seq)
	}
	s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.Detect,
		Node: int32(c), Peer: -1, Seq: seq})
	s.engine.OnDetect(c, seq)
}

// gapScan performs sequence-gap detection at a client that just received
// data packet seq: every undelivered packet below it is now known missing.
func (s *Session) gapScan(idx int, c graph.NodeID, seq int) {
	if seq < s.nextExp[idx] {
		return
	}
	for s2 := s.nextExp[idx]; s2 < seq; s2++ {
		s.detectLoss(idx, c, s2)
	}
	s.nextExp[idx] = seq + 1
}

// ExpectedArrival returns the loss-free arrival time of packet seq at a
// host: its send time plus the tree-path delay. Before this instant the
// host cannot distinguish "lost" from "still in transit" — protocol engines
// use it to hold recovery requests for data a peer still expects
// (see rpproto.Options.HoldFreshRequests).
func (s *Session) ExpectedArrival(host graph.NodeID, seq int) float64 {
	return s.sentAt[seq] + s.Net.WouldArrive(host)
}

// RecoverLocal marks packet seq as recovered at client c by local
// computation (e.g. an FEC decode) at the current simulation time, with the
// same bookkeeping as a repair arrival but no network traffic. It returns
// false if c already holds the packet (or is not a client).
func (s *Session) RecoverLocal(c graph.NodeID, seq int) bool {
	idx, ok := s.clientIdx[c]
	if !ok || s.received[idx][seq] {
		return false
	}
	if s.oracle != nil {
		s.oracle.OnLocalRecover(idx, seq, !math.IsNaN(s.detectAt[idx][seq]))
	}
	s.received[idx][seq] = true
	if math.IsNaN(s.detectAt[idx][seq]) {
		s.stats.PreDetection++
		return true
	}
	s.stats.Recoveries++
	s.recordLatency(idx, s.Eng.Now()-s.detectAt[idx][seq])
	s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.Recover,
		Node: int32(c), Peer: int32(c), Seq: seq})
	return true
}

// recordLatency folds one recovery latency into every accumulator, logging
// it when the parallel runner needs an order-independent record.
func (s *Session) recordLatency(idx int, lat float64) {
	s.stats.Latency.Add(lat)
	s.latHist.Add(lat)
	s.perClient[idx].Add(lat)
	if s.latLogOn {
		s.latLog = append(s.latLog, latSample{at: s.Eng.Now(), lat: lat})
	}
}

// NoteMalformed counts one rejected malformed packet. The session calls it
// for out-of-range header fields; engines call it from their payload
// validation when a packet parses to nothing they recognise.
func (s *Session) NoteMalformed() {
	s.stats.Malformed++
	if s.oracle != nil {
		s.oracle.OnMalformed()
	}
}

// EnableFailover switches the session (and its oracle) into epoch-fenced
// coordinator mode. Engines call it from Attach; the oracle then enforces
// the failover invariants — at most one coordinator claim per epoch, epoch
// monotonicity per host — independently of the engine's own guards.
func (s *Session) EnableFailover() {
	if s.failover {
		return
	}
	s.failover = true
	if s.oracle != nil {
		s.oracle.EnableFailover(s.numNodes)
	}
}

// NoteRPClaim records a coordinator claiming an epoch: the bootstrap
// designation (epoch 1) is free; every later claim is a failover. The oracle
// independently asserts claim uniqueness and freshness.
func (s *Session) NoteRPClaim(epoch int, rp graph.NodeID) {
	if epoch > 1 {
		s.stats.Failovers++
	}
	if s.oracle != nil {
		s.oracle.OnRPClaim(epoch, int(rp))
	}
}

// NoteEpochAdopt records host h adopting (epoch, rp) as its coordinator
// view. The oracle asserts per-host epoch monotonicity and that the adopted
// view matches the epoch's claimed coordinator.
func (s *Session) NoteEpochAdopt(h graph.NodeID, epoch int, rp graph.NodeID) {
	if s.oracle != nil {
		s.oracle.OnEpochAdopt(int(h), epoch, int(rp))
	}
}

// NoteFencedStale counts one control message rejected by the epoch fence.
func (s *Session) NoteFencedStale() {
	s.stats.FencedStale++
	if s.oracle != nil {
		s.oracle.OnFenced()
	}
}

// Run executes the whole session and returns the result.
func (s *Session) Run() *Result {
	if res := s.runSharded(); res != nil {
		return res
	}
	if s.Trace != nil {
		s.Net.OnSend = func(pkt sim.Packet) {
			var k trace.Kind
			switch pkt.Kind {
			case sim.Data:
				return // SendData is emitted once per multicast below
			case sim.Request:
				k = trace.SendRequest
			case sim.Repair:
				k = trace.SendRepair
			}
			s.emit(trace.Event{At: s.Eng.Now(), Kind: k,
				Node: int32(pkt.From), Peer: -1, Seq: pkt.Seq})
		}
		s.Net.OnDrop = func(pkt sim.Packet, link graph.EdgeID) {
			s.emit(trace.Event{At: s.Eng.Now(), Kind: trace.Drop,
				Node: int32(link), Peer: -1, Seq: pkt.Seq})
		}
	}
	var maxArrive float64
	for _, c := range s.Topo.Clients {
		if w := s.Net.WouldArrive(c); w > maxArrive {
			maxArrive = w
		}
	}
	for seq := 0; seq < s.cfg.Packets; seq++ {
		at := float64(seq) * s.cfg.Interval
		s.sentAt[seq] = at
		s.Eng.ScheduleCall(at, s, opSendData, seq, 0)
		if s.cfg.Detection == DetectIdeal {
			// Idealised loss detection per client.
			for i, c := range s.Topo.Clients {
				when := at + s.Net.WouldArrive(c) + s.cfg.DetectLag + detectEps
				s.Eng.ScheduleCall(when, s, opDetect, i, seq)
			}
		}
	}
	if s.cfg.Detection == DetectGap || s.cfg.Detection == DetectSession {
		// Tail sweep: losses of the final packets are never exposed by a
		// later arrival (and the final heartbeat can itself be lost), so
		// declare them after a grace period.
		tailLag := s.cfg.GapTailLag
		if tailLag <= 0 {
			tailLag = 2 * s.cfg.Interval
		}
		sweepAt := float64(s.cfg.Packets-1)*s.cfg.Interval + maxArrive + tailLag
		s.Eng.Schedule(sweepAt, func() {
			for i, c := range s.Topo.Clients {
				for seq := 0; seq < s.cfg.Packets; seq++ {
					s.detectLoss(i, c, seq)
				}
			}
		})
	}
	if s.cfg.Detection == DetectSession {
		hb := s.cfg.HeartbeatInterval
		if hb <= 0 {
			hb = 4 * s.cfg.Interval
		}
		end := float64(s.cfg.Packets-1) * s.cfg.Interval
		for at := hb; at <= end+hb; at += hb {
			highest := int(at / s.cfg.Interval)
			if highest >= s.cfg.Packets {
				highest = s.cfg.Packets - 1
			}
			s.Eng.ScheduleCall(at, s, opHeartbeat, highest, 0)
		}
	}
	maxEvents := s.cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	executed := s.Eng.Run(maxEvents)
	complete := s.Eng.Pending() == 0

	for i, c := range s.Topo.Clients {
		// A client still down when the run ends (permanent crash, or a
		// window outlasting the traffic) keeps its missing packets as
		// UnrecoveredCrashed; for a live client an open gap is a liveness
		// violation and stays in Unrecovered.
		down := s.Net.Fault != nil && !s.Net.Fault.HostUpAt(c, s.Eng.Now())
		for seq, got := range s.received[i] {
			switch {
			case got:
				s.stats.Delivered++
			case down:
				s.stats.UnrecoveredCrashed++
			case !math.IsNaN(s.detectAt[i][seq]):
				s.stats.Unrecovered++
			}
		}
	}
	var violations []string
	if s.oracle != nil {
		if da, ok := s.engine.(DedupAudited); ok {
			for _, cache := range da.DedupCaches() {
				s.oracle.CheckBound(s.engine.Name()+" dedup cache", cache.Len(), cache.Cap())
			}
		}
		down := make([]bool, len(s.Topo.Clients))
		for i, c := range s.Topo.Clients {
			down[i] = s.Net.Fault != nil && !s.Net.Fault.HostUpAt(c, s.Eng.Now())
		}
		violations = s.oracle.Finish(complete, down, check.Totals{
			Losses:             s.stats.Losses,
			Recoveries:         s.stats.Recoveries,
			Duplicates:         s.stats.Duplicates,
			PreDetection:       s.stats.PreDetection,
			DataDeliveries:     s.stats.DataDeliveries,
			LateData:           s.stats.LateData,
			Malformed:          s.stats.Malformed,
			CodedSymbols:       s.stats.CodedSymbols,
			CodedDuplicates:    s.stats.CodedDuplicates,
			Failovers:          s.stats.Failovers,
			FencedStale:        s.stats.FencedStale,
			Delivered:          s.stats.Delivered,
			Unrecovered:        s.stats.Unrecovered,
			UnrecoveredCrashed: s.stats.UnrecoveredCrashed,
			DataHops:           s.Net.Hops.Data,
			RequestHops:        s.Net.Hops.Request,
			RepairHops:         s.Net.Hops.Repair,
			DataDrops:          s.Net.Drops.Data,
			RequestDrops:       s.Net.Drops.Request,
			RepairDrops:        s.Net.Drops.Repair,
		})
	}
	perClient := make(map[graph.NodeID]metrics.Summary, len(s.Topo.Clients))
	for i, c := range s.Topo.Clients {
		perClient[c] = s.perClient[i]
	}
	return &Result{
		Violations:       violations,
		PerClientLatency: perClient,
		Protocol:         s.engine.Name(),
		Clients:          len(s.Topo.Clients),
		Packets:          s.cfg.Packets,
		Stats:            s.stats,
		Hops:             s.Net.Hops,
		Drops:            s.Net.Drops,
		Events:           executed,
		SimTime:          s.Eng.Now(),
		LatencyHist:      s.latHist,
		Complete:         complete,
		SerialReason:     s.serialReason,
	}
}
