// Epoch-fenced RP failover: the coordinated-RP deployment mode (RP-FAILOVER)
// in which every local recovery is routed through a single elected
// meet-router/RP — the paper's §2.2 read literally — and the RP itself is
// allowed to crash. The paper (and the plain engine) treat the coordinator
// like the source: it simply never dies. This layer lifts that restriction
// with the classic lease-free design:
//
//   - Deterministic election, no agreement round. The winner is
//     core.Electorate.Best(): the active client with the smallest
//     (DelayFromRoot, peer ID) key — the Algorithm-1 class ranking read at
//     the tree root. Because the rule is a pure function of (tree, active
//     set), every survivor that suspects the RP computes the same successor;
//     divergent views (a survivor that missed a death) are arbitrated by the
//     epoch fence, not by voting.
//
//   - Epoch fencing. Every control message carries the sender's epoch. A
//     coordinator claim binds a strictly increasing epoch to one host
//     (allocated through the source's registry, which acts as the sequencer
//     of last resort — becomeRP takes max(proposed, maxClaimed+1), so two
//     racing promotions can never claim the same epoch). Receivers adopt
//     epochs monotonically; control traffic from a deposed RP, or addressed
//     to one, is rejected as fenced-stale and answered with a catch-up
//     announcement. Repairs are deliberately NOT fenced: a repair's payload
//     is idempotent content (the session's per-(client, seq) bookkeeping
//     absorbs duplicates), so a stale RP flushing its last repairs does no
//     harm and often does good.
//
//   - Interregnum degradation. Between suspecting the RP and adopting the
//     next epoch, a client unicasts its requests straight to the source —
//     the paper's guaranteed last resort — so recovery liveness never waits
//     on the election.
//
//   - State handover. Each client re-homes its own in-flight recoveries to
//     the new RP when it adopts the new epoch (ascending sequence order, so
//     the replay is deterministic); the new RP resumes its own parked gaps
//     against the source. Nothing is lost and nothing is double-counted:
//     the invariant oracle (check.EnableFailover) independently asserts one
//     claim per epoch, per-host epoch monotonicity, and the usual
//     conservation of recoveries across the handover.
//
//   - Rejoin. A recovered ex-RP probes the source's registry, adopts the
//     current epoch, and is re-admitted to the electorate as a regular
//     candidate the moment it provably processes a message again.
package rpproto

import (
	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/sim"
)

// Failover configures the coordinated-RP failover mode. The zero value
// disables it, leaving the plain peer-list engine untouched.
type Failover struct {
	// Enabled turns the mode on (and renames the engine RP-FAILOVER).
	Enabled bool
	// SuspicionThreshold is the number of consecutive request timeouts
	// against the current RP before a client suspects it and triggers the
	// election. Values < 1 mean the default (2).
	SuspicionThreshold int
	// NoElection degrades without re-electing: suspecting clients fall back
	// to source unicast forever. With no election the coordinator role can
	// never move, so CoordinatorInfo reports the failover capability absent
	// and schedules that crash the RP are rejected at session build.
	NoElection bool
}

// DefaultFailover returns the configuration used by the churn sweeps.
func DefaultFailover() Failover {
	return Failover{Enabled: true, SuspicionThreshold: 2}
}

// foRequest is the epoch-fenced recovery request of the coordinated mode:
// the requester's identity plus its current (epoch, RP) view. The RP relays
// requests it cannot serve to the source with the original requester
// preserved, so the repair goes straight back.
type foRequest struct {
	Requester graph.NodeID
	Epoch     int
	RP        graph.NodeID
}

// foPromote asks its receiver to claim the coordinator role at (at least)
// the proposed epoch.
type foPromote struct {
	Epoch int
}

// foAnnounce publishes a claimed (epoch, RP) binding — sent by a new RP to
// every client, by the source's registry in answer to a probe, and as the
// catch-up reply to fenced-stale traffic.
type foAnnounce struct {
	Epoch int
	RP    graph.NodeID
}

// foProbe asks the source's registry for the current (epoch, RP) binding —
// the rejoin path of a recovered ex-RP (or any long-crashed client).
type foProbe struct {
	Requester graph.NodeID
}

// promoteState is one suspecting client's watchdog over an outstanding
// promotion: if no epoch ≥ goal is adopted before the timer fires, the
// unresponsive winner is declared dead too and the election moves on.
type promoteState struct {
	goal   int
	target graph.NodeID
	timer  sim.Timer
}

// foThreshold returns the effective suspicion threshold.
func (e *Engine) foThreshold() int {
	if k := e.opt.Failover.SuspicionThreshold; k >= 1 {
		return k
	}
	return 2
}

// initFailover bootstraps the coordinated mode at Attach: epoch 1 is
// claimed by the electorate's initial Best() and adopted by every client,
// so the run starts from an agreed view (the deployment analogue is the
// tree-build handshake distributing the initial RP with the peer lists).
func (e *Engine) initFailover() {
	e.s.EnableFailover()
	e.elect = core.NewElectorate(e.s.Tree)
	rp := e.elect.Best()
	e.initialRP = rp
	e.claimant = rp
	e.maxClaimed = 1
	e.s.NoteRPClaim(1, rp)
	for _, c := range e.s.Topo.Clients {
		e.epochOf[c] = 1
		e.rpView[c] = rp
		e.s.NoteEpochAdopt(c, 1, rp)
	}
}

// CoordinatorInfo implements protocol.Coordinator: the designated RP and
// whether the engine can survive its crash (election enabled).
func (e *Engine) CoordinatorInfo() (graph.NodeID, bool) {
	if !e.opt.Failover.Enabled {
		return graph.None, false
	}
	return e.initialRP, !e.opt.Failover.NoElection
}

// CurrentRP returns a host's current coordinator view (testing).
func (e *Engine) CurrentRP(c graph.NodeID) graph.NodeID { return e.rpView[c] }

// CurrentEpoch returns a host's adopted epoch (testing).
func (e *Engine) CurrentEpoch(c graph.NodeID) int { return e.epochOf[c] }

// foTarget resolves where client c's next request goes: its RP, or the
// source while it has no usable coordinator (interregnum, exhausted
// electorate, or c is the RP itself).
func (e *Engine) foTarget(c graph.NodeID) graph.NodeID {
	rp := e.rpView[c]
	if rp == graph.None || rp == c || e.interregnum[c] {
		return e.s.Topo.Source
	}
	return rp
}

// foSend fires the epoch-stamped request for one pending recovery and arms
// the timeout. A crashed owner parks (resumed by OnRecover).
func (e *Engine) foSend(c graph.NodeID, seq int, a *attempt) {
	if !e.s.Alive(c) {
		a.parked = true
		return
	}
	target := e.foTarget(c)
	t0 := e.timeoutPolicy().Timeout(e.s.Routes.RTT(c, target))
	e.s.Net.Unicast(target, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c,
		Payload: foRequest{Requester: c, Epoch: e.epochOf[c], RP: e.rpView[c]},
	})
	a.target = target
	a.timer = e.s.Eng.NewTimer(e.attemptTimeout(t0, a.retry), func() { e.foTimeout(c, seq, a) })
}

// foTimeout retries the recovery; consecutive timeouts against the current
// RP feed the suspicion counter. Requests re-resolve their target on every
// retry, so a client that entered the interregnum mid-recovery re-routes to
// the source automatically.
func (e *Engine) foTimeout(c graph.NodeID, seq int, a *attempt) {
	k := key{c, seq}
	if e.pending[k] != a || a.parked {
		return
	}
	if !e.s.Missing(c, seq) {
		delete(e.pending, k)
		return
	}
	if a.target != e.s.Topo.Source && a.target == e.rpView[c] && !e.interregnum[c] {
		e.rpTimeouts[c]++
		if e.rpTimeouts[c] >= e.foThreshold() {
			e.foSuspect(c)
		}
	}
	e.foSend(c, seq, a)
}

// foSuspect marks client c's RP as suspected: c degrades to source unicast
// (the interregnum) and, unless NoElection, triggers the deterministic
// election.
func (e *Engine) foSuspect(c graph.NodeID) {
	rp := e.rpView[c]
	if rp == graph.None || rp == c {
		return
	}
	e.interregnum[c] = true
	e.rpTimeouts[c] = 0
	if e.opt.Failover.NoElection {
		return
	}
	e.foElect(c, rp)
}

// foElect withdraws the suspect from the electorate and routes the
// coordinator role to the deterministic winner: self-promotion when c wins,
// a watched foPromote otherwise. An exhausted electorate leaves every
// survivor on source unicast — degraded but live.
func (e *Engine) foElect(c, suspect graph.NodeID) {
	if !e.foDead[suspect] {
		e.foDead[suspect] = true
		e.elect.Leave(suspect)
	}
	w := e.elect.Best()
	if w == graph.None {
		return
	}
	proposed := e.epochOf[c] + 1
	if w == c {
		e.becomeRP(c, proposed)
		return
	}
	e.s.Net.Unicast(w, sim.Packet{
		Kind: sim.Request, Seq: 0, From: c, Payload: foPromote{Epoch: proposed},
	})
	if pw := e.promoteWatch[c]; pw != nil {
		pw.timer.Stop()
	}
	pw := &promoteState{goal: proposed, target: w}
	d := 2 * e.timeoutPolicy().Timeout(e.s.Routes.RTT(c, w))
	pw.timer = e.s.Eng.NewTimer(d, func() { e.promoteTimeout(c, pw) })
	e.promoteWatch[c] = pw
}

// promoteTimeout is the crash-during-handover path: the elected winner
// never took the role (it crashed before, or while, absorbing it), so it is
// declared dead as well and the election falls through to the next
// candidate.
func (e *Engine) promoteTimeout(c graph.NodeID, pw *promoteState) {
	if e.promoteWatch[c] != pw {
		return
	}
	delete(e.promoteWatch, c)
	if e.epochOf[c] >= pw.goal || !e.s.Alive(c) {
		return
	}
	e.foElect(c, pw.target)
}

// becomeRP claims the coordinator role for rp. The epoch is allocated
// through the engine-global registry — max(proposed, maxClaimed+1) — which
// models the source acting as the claim sequencer: two promotions racing
// through lossy control traffic can therefore never bind the same epoch to
// two hosts, which is the invariant the fence needs (the higher epoch
// deposes the lower everywhere it propagates).
func (e *Engine) becomeRP(rp graph.NodeID, proposed int) {
	epoch := proposed
	if epoch <= e.maxClaimed {
		epoch = e.maxClaimed + 1
	}
	e.maxClaimed = epoch
	e.claimant = rp
	e.s.NoteRPClaim(epoch, rp)
	e.adoptEpoch(rp, epoch, rp)
	for _, c := range e.s.Topo.Clients {
		if c == rp {
			continue
		}
		e.s.Net.Unicast(c, sim.Packet{
			Kind: sim.Request, Seq: 0, From: rp, Payload: foAnnounce{Epoch: epoch, RP: rp},
		})
	}
}

// adoptEpoch applies a claimed (epoch, RP) binding to one host's view,
// monotonically. Adoption ends the host's interregnum, clears its
// suspicion and promotion state, re-admits the host to the electorate if it
// had been presumed dead (it just processed a message — provably alive),
// and re-homes its in-flight recoveries onto the new coordinator.
func (e *Engine) adoptEpoch(h graph.NodeID, epoch int, rp graph.NodeID) {
	if epoch <= e.epochOf[h] {
		return
	}
	e.epochOf[h] = epoch
	e.rpView[h] = rp
	e.interregnum[h] = false
	e.rpTimeouts[h] = 0
	if pw := e.promoteWatch[h]; pw != nil {
		pw.timer.Stop()
		delete(e.promoteWatch, h)
	}
	e.s.NoteEpochAdopt(h, epoch, rp)
	if e.foDead[h] {
		delete(e.foDead, h)
		e.elect.Join(h)
	}
	e.foRehome(h)
}

// foRehome re-issues h's un-parked in-flight recoveries whose armed request
// is aimed at a stale target — the requester's half of the state handover.
// pendingKeysFor's ascending-sequence order keeps the replay deterministic.
func (e *Engine) foRehome(h graph.NodeID) {
	target := e.foTarget(h)
	for _, k := range e.pendingKeysFor(h) {
		a := e.pending[k]
		if a.parked || a.target == target {
			continue
		}
		a.timer.Stop()
		a.retry = 0
		e.foSend(h, k.seq, a)
	}
}

// foOnRequest serves one epoch-fenced recovery request arriving at host.
// The source answers unconditionally (it is outside the fence and holds
// every packet). A client host — the RP, or a deposed ex-RP — first applies
// the fence: requests from an older epoch are rejected and answered with a
// catch-up announcement so the requester re-homes instead of timing out
// again. A fresh request is served from cache, held for an in-transit
// packet, or relayed to the source with the original requester preserved.
func (e *Engine) foOnRequest(host graph.NodeID, seq int, pay foRequest) {
	src := e.s.Topo.Source
	if host != src && pay.Epoch < e.epochOf[host] {
		e.s.NoteFencedStale()
		e.s.Net.Unicast(pay.Requester, sim.Packet{
			Kind: sim.Request, Seq: 0, From: host,
			Payload: foAnnounce{Epoch: e.epochOf[host], RP: e.rpView[host]},
		})
		return
	}
	window := 0.5 * e.timeoutPolicy().Timeout(e.s.Routes.RTT(host, pay.Requester))
	if e.served.Seen(host, pay.Requester, seq, e.s.Eng.Now(), window) {
		return
	}
	if e.s.Has(host, seq) {
		e.s.Net.Unicast(pay.Requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	if !e.opt.NoHoldFreshRequests {
		if eta := e.s.ExpectedArrival(host, seq); eta > e.s.Eng.Now() {
			e.s.Eng.Schedule(eta+2e-3, func() { e.foOnRequestHeld(host, seq, pay.Requester) })
			return
		}
	}
	e.foRelay(host, seq, pay.Requester)
}

// foOnRequestHeld re-decides a held request once the RP's own arrival
// window has passed: serve, or relay to the source.
func (e *Engine) foOnRequestHeld(host graph.NodeID, seq int, requester graph.NodeID) {
	if e.s.Has(host, seq) {
		e.s.Net.Unicast(requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	e.foRelay(host, seq, requester)
}

// foRelay forwards a request the RP cannot serve to the source, requester
// preserved, so the source's repair goes straight back to the client that
// needs it.
func (e *Engine) foRelay(host graph.NodeID, seq int, requester graph.NodeID) {
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{
		Kind: sim.Request, Seq: seq, From: host,
		Payload: foRequest{Requester: requester, Epoch: e.epochOf[host], RP: e.rpView[host]},
	})
}

// foOnPromote makes host claim the role — unless the proposal is already
// stale, which is exactly how simultaneous suspicion by many peers resolves
// to a single claim: the first promotion to arrive wins the epoch, every
// later duplicate is fenced.
func (e *Engine) foOnPromote(host graph.NodeID, pay foPromote) {
	if pay.Epoch <= e.epochOf[host] {
		e.s.NoteFencedStale()
		return
	}
	e.becomeRP(host, pay.Epoch)
}

// foOnAnnounce adopts a published binding; announcements older than the
// host's view are fenced.
func (e *Engine) foOnAnnounce(host graph.NodeID, pay foAnnounce) {
	if pay.Epoch < e.epochOf[host] {
		e.s.NoteFencedStale()
		return
	}
	e.adoptEpoch(host, pay.Epoch, pay.RP)
}

// foOnProbe answers a registry probe at the source with the current
// binding. Probes landing anywhere else are ignored (a mutator artefact).
func (e *Engine) foOnProbe(host graph.NodeID, pay foProbe) {
	if host != e.s.Topo.Source {
		return
	}
	e.s.Net.Unicast(pay.Requester, sim.Packet{
		Kind: sim.Request, Seq: 0, From: host,
		Payload: foAnnounce{Epoch: e.maxClaimed, RP: e.claimant},
	})
}

// foOnRecover is the rejoin hook: a recovered client (an ex-RP in
// particular) probes the source's registry; the answering announcement
// re-syncs its epoch, re-homes its resumed recoveries, and re-admits it to
// the electorate.
func (e *Engine) foOnRecover(h graph.NodeID) {
	if !e.s.IsClient(h) {
		return
	}
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{
		Kind: sim.Request, Seq: 0, From: h, Payload: foProbe{Requester: h},
	})
}
