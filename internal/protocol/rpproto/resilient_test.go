package rpproto

import (
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// deepTailTopo builds the distant-source topology the strategy tests use:
// tail behind r3 with two candidate peers (p2 near, p1 far) and a 20 ms
// haul to the source, so peer recovery is strongly preferred.
func deepTailTopo(t *testing.T) (*topology.Network, graph.NodeID) {
	t.Helper()
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	b.TreeLink(src, r1, 20)
	b.TreeLink(r1, r2, 1)
	b.TreeLink(r2, r3, 1)
	tail := b.Client()
	b.TreeLink(r3, tail, 1)
	p2 := b.Client()
	b.TreeLink(r2, p2, 1)
	p1 := b.Client()
	b.TreeLink(r1, p1, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, tail
}

// firstPeerOf runs a throwaway attach on an identical topology to learn
// which peer the planner ranks first for the client.
func firstPeerOf(t *testing.T, mk func(t *testing.T) (*topology.Network, graph.NodeID)) graph.NodeID {
	t.Helper()
	topo, c := mk(t)
	e := New(DefaultOptions())
	if _, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 1); err != nil {
		t.Fatal(err)
	}
	st := e.Strategies()[c]
	if len(st.Peers) == 0 {
		t.Fatal("planner produced no peers for the deep tail")
	}
	return st.Peers[0].Peer
}

// TestDeadPeerEvictedAndRecoveryContinues: the tail's preferred peer
// crashes permanently before traffic starts and the tail loses every data
// packet. The resilience layer must burn its retry budget, grow suspicion
// into a death declaration, evict the peer from the roster, and keep
// recovering every loss from the remaining peers/source — the liveness
// invariant under a silent peer failure.
func TestDeadPeerEvictedAndRecoveryContinues(t *testing.T) {
	victim := firstPeerOf(t, deepTailTopo)

	topo, tail := deepTailTopo(t)
	topo.Loss[mtree.MustBuild(topo).ParentLink[tail]] = 1 // every data packet to tail lost

	opt := DefaultOptions()
	opt.Resilience = DefaultResilience()
	opt.Resilience.JitterFrac = 0        // deterministic timeouts
	opt.Resilience.SuspicionCooldown = 1 // keep probing so suspicion grows
	e := New(opt)
	cfg := protocol.Config{Packets: 12, Interval: 10, Fault: (&fault.Schedule{}).CrashHost(0, victim)}
	s, err := protocol.NewSession(topo, e, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("incomplete run")
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered with a dead first peer", res.Stats.Unrecovered)
	}
	if !e.dead[victim] {
		t.Fatalf("peer %d never declared dead (suspicion %v)", victim, e.suspectCount)
	}
	if e.roster.Active(victim) {
		t.Fatal("declared-dead peer still active in the roster")
	}
	// Eviction replans the survivors: the tail's strategy must no longer
	// route through the victim.
	for _, p := range e.Strategies()[tail].Peers {
		if p.Peer == victim {
			t.Fatal("evicted peer still in the tail's strategy")
		}
	}
}

// TestBaselineRPWedgesWhereResilientRecovers documents what the hardening
// buys: with recovery traffic lossy and the preferred peer dead, baseline
// RP's single fixed plan still works here only because its plan ends at
// the source — but it pays the full timeout chain on every loss, while the
// resilient engine learns to skip the dead peer. Assert both liveness and
// that the resilient run is strictly faster on average.
func TestBaselineRPWedgesWhereResilientRecovers(t *testing.T) {
	victim := firstPeerOf(t, deepTailTopo)
	run := func(resilient bool) *protocol.Result {
		topo, tail := deepTailTopo(t)
		topo.Loss[mtree.MustBuild(topo).ParentLink[tail]] = 1
		opt := DefaultOptions()
		if resilient {
			opt.Resilience = DefaultResilience()
			opt.Resilience.JitterFrac = 0
			opt.Resilience.SuspicionCooldown = 1
		}
		cfg := protocol.Config{Packets: 12, Interval: 10, Fault: (&fault.Schedule{}).CrashHost(0, victim)}
		s, err := protocol.NewSession(topo, New(opt), cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	base := run(false)
	hard := run(true)
	if base.Stats.Unrecovered != 0 || hard.Stats.Unrecovered != 0 {
		t.Fatalf("liveness violated: base %d, resilient %d unrecovered",
			base.Stats.Unrecovered, hard.Stats.Unrecovered)
	}
	if hard.AvgLatency() >= base.AvgLatency() {
		t.Fatalf("resilient latency %v not below baseline %v with a dead peer",
			hard.AvgLatency(), base.AvgLatency())
	}
}
