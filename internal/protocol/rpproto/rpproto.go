// Package rpproto implements the deployed form of the paper's contribution:
// the RP recovery protocol (§2.2). Each client holds the prioritized peer
// list computed by internal/core; on detecting a loss it unicasts a request
// to the first peer, falls through the list on per-attempt timeouts, and
// lands on the source as the guaranteed last resort ("If the packet may not
// be recovered from v1 … vk, then u will recover it from S by default").
//
// Options expose the paper's variants: the restricted strategy graph that
// forbids going to the source directly (§4), the source-subgroup multicast
// repair of §2.2/[4], and an explicit-NAK extension that lets a peer reject
// a request immediately instead of letting it time out.
package rpproto

import (
	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the RP engine.
type Options struct {
	// Timeout is the per-attempt timeout policy shared with planning;
	// nil means core.ProportionalTimeout(3).
	Timeout core.TimeoutPolicy
	// AllowDirectSource mirrors the strategy-graph option (§4): when
	// false the planner never puts the source first.
	AllowDirectSource bool
	// SubgroupRepair makes the source answer requests with a multicast to
	// the requester's subgroup subtree instead of a unicast (§2.2 / [4]).
	SubgroupRepair bool
	// SubgroupDepth is the tree depth of subgroup roots (default 1: the
	// requester's top-level subtree).
	SubgroupDepth int32
	// SubgroupSuppressFactor controls source-side request suppression
	// when SubgroupRepair is on: a request for (seq, subgroup) arriving
	// within factor·RTT(source, requester) of the previous subgroup
	// multicast for the same pair is ignored — the in-flight repair will
	// serve it. This is the load reduction of reference [4] ("the
	// recovery load on S may be reduced by grouping clients", §2.2).
	// Default 1; ≤ 0 disables suppression.
	SubgroupSuppressFactor float64
	// NakReplies makes peers that lack a requested packet reply with an
	// explicit NAK so the requester advances without waiting for the
	// timeout. An extension beyond the paper (it assumes the timeout
	// mechanism); exposed for the ablation benchmarks.
	NakReplies bool
	// LossAware plans with the loss-aware model (core.Planner.LossProb set
	// to the network's mean link loss) instead of the paper's reliable-
	// network model — the extension discussed in internal/core/aware.go.
	LossAware bool
	// NoHoldFreshRequests disables request holding. By default a peer
	// that receives a request for a packet it has not seen — but whose
	// loss-free arrival time is still in the future — holds the request
	// until that instant and answers if the packet shows up. Without
	// holding, a peer farther from the source than the requester can
	// never serve fresh packets (they are still in transit when the
	// request lands), which silently disables deep-meet peers — a transit
	// effect the paper's static model does not represent. Holding needs
	// only peer-local knowledge (its own expected arrival time).
	NoHoldFreshRequests bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{AllowDirectSource: true, SubgroupDepth: 1, SubgroupSuppressFactor: 1}
}

// Engine is the RP protocol engine.
type Engine struct {
	opt        Options
	s          *protocol.Session
	strategies map[graph.NodeID]*core.Strategy
	pending    map[key]*attempt
	// lastSubRepair records the send time of the latest subgroup repair
	// multicast per (seq, subgroup root), for source-side suppression.
	lastSubRepair map[key]float64
}

type key struct {
	c   graph.NodeID
	seq int
}

type attempt struct {
	idx   int // index into the peer list; len(peers) means "at source"
	timer *sim.Timer
}

// request is the payload of an RP recovery request.
type request struct {
	Requester graph.NodeID
}

// nak is the payload of an explicit "don't have it" reply (NakReplies).
type nak struct{}

// New returns an RP engine with the given options.
func New(opt Options) *Engine {
	if opt.SubgroupDepth <= 0 {
		opt.SubgroupDepth = 1
	}
	return &Engine{
		opt:           opt,
		pending:       make(map[key]*attempt),
		lastSubRepair: make(map[key]float64),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "RP" }

// Attach computes the strategies for every client with the core planner.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	p := core.NewPlanner(s.Tree, s.Routes)
	p.Timeout = e.opt.Timeout
	p.AllowDirectSource = e.opt.AllowDirectSource
	if e.opt.LossAware {
		var sum float64
		for _, l := range s.Topo.Loss {
			sum += l
		}
		p.LossProb = sum / float64(len(s.Topo.Loss))
	}
	e.strategies = p.All()
}

// Strategies exposes the computed plans (for tests and tooling).
func (e *Engine) Strategies() map[graph.NodeID]*core.Strategy { return e.strategies }

// OnDetect implements protocol.Engine: start attempt 0.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	k := key{c, seq}
	if _, dup := e.pending[k]; dup {
		return
	}
	a := &attempt{}
	e.pending[k] = a
	e.send(c, seq, a)
}

// send fires the request for the attempt's current index and arms the
// fall-through timer.
func (e *Engine) send(c graph.NodeID, seq int, a *attempt) {
	st := e.strategies[c]
	var target graph.NodeID
	var t0 float64
	if a.idx < len(st.Peers) {
		target = st.Peers[a.idx].Peer
		t0 = st.Peers[a.idx].Timeout
	} else {
		target = e.s.Topo.Source
		t0 = st.SourceTimeout
	}
	e.s.Net.Unicast(target, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: request{Requester: c},
	})
	a.timer = e.s.Eng.NewTimer(t0, func() { e.timeout(c, seq, a) })
}

// timeout advances to the next attempt (the source attempt repeats forever,
// so recovery is guaranteed to terminate).
func (e *Engine) timeout(c graph.NodeID, seq int, a *attempt) {
	k := key{c, seq}
	if e.pending[k] != a {
		return // superseded
	}
	if !e.s.Missing(c, seq) {
		delete(e.pending, k)
		return
	}
	if a.idx < len(e.strategies[c].Peers) {
		a.idx++
	}
	e.send(c, seq, a)
}

// advance is the NAK fast path: skip to the next attempt immediately.
func (e *Engine) advance(c graph.NodeID, seq int) {
	k := key{c, seq}
	a := e.pending[k]
	if a == nil || !a.timer.Stop() {
		return
	}
	e.timeout(c, seq, a)
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		switch pay := pkt.Payload.(type) {
		case request:
			e.onRequest(host, pkt.Seq, pay.Requester)
		case nak:
			e.advance(host, pkt.Seq)
		}
	case sim.Repair:
		k := key{host, pkt.Seq}
		if a := e.pending[k]; a != nil {
			a.timer.Stop()
			delete(e.pending, k)
		}
	}
}

// onRequest serves or declines one recovery request arriving at host.
func (e *Engine) onRequest(host graph.NodeID, seq int, requester graph.NodeID) {
	if !e.s.Has(host, seq) {
		if !e.opt.NoHoldFreshRequests && e.s.IsClient(host) {
			// The packet may still be in transit to us: hold the request
			// until our own expected arrival and re-decide.
			if eta := e.s.ExpectedArrival(host, seq); eta > e.s.Eng.Now() {
				e.s.Eng.Schedule(eta+2e-3, func() {
					e.onRequestHeld(host, seq, requester)
				})
				return
			}
		}
		e.declineRequest(host, seq, requester)
		return
	}
	if host == e.s.Topo.Source && e.opt.SubgroupRepair {
		sub := e.subgroupRoot(requester)
		sk := key{sub, seq}
		if e.opt.SubgroupSuppressFactor > 0 {
			window := e.opt.SubgroupSuppressFactor * e.s.Routes.RTT(host, requester)
			if last, ok := e.lastSubRepair[sk]; ok && e.s.Eng.Now()-last < window {
				return // an in-flight subgroup repair already covers this
			}
		}
		e.lastSubRepair[sk] = e.s.Eng.Now()
		e.s.Net.MulticastDescend(sub, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	e.s.Net.Unicast(requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
}

// onRequestHeld re-decides a held request once the packet's arrival window
// has passed.
func (e *Engine) onRequestHeld(host graph.NodeID, seq int, requester graph.NodeID) {
	if e.s.Has(host, seq) {
		e.s.Net.Unicast(requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	e.declineRequest(host, seq, requester)
}

// declineRequest is the terminal no-packet path: explicit NAK or silence.
func (e *Engine) declineRequest(host graph.NodeID, seq int, requester graph.NodeID) {
	if e.opt.NakReplies && e.s.IsClient(host) {
		e.s.Net.Unicast(requester, sim.Packet{
			Kind: sim.Request, Seq: seq, From: host, Payload: nak{},
		})
	}
}

// subgroupRoot returns the requester's ancestor at SubgroupDepth (or the
// requester itself for very shallow clients).
func (e *Engine) subgroupRoot(requester graph.NodeID) graph.NodeID {
	t := e.s.Tree
	depth := t.Depth[requester]
	if depth <= e.opt.SubgroupDepth {
		return requester
	}
	return t.Ancestor(requester, depth-e.opt.SubgroupDepth)
}

// PendingRecoveries reports the number of in-flight recoveries (testing).
func (e *Engine) PendingRecoveries() int { return len(e.pending) }

var _ protocol.Engine = (*Engine)(nil)
