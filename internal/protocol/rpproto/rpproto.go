// Package rpproto implements the deployed form of the paper's contribution:
// the RP recovery protocol (§2.2). Each client holds the prioritized peer
// list computed by internal/core; on detecting a loss it unicasts a request
// to the first peer, falls through the list on per-attempt timeouts, and
// lands on the source as the guaranteed last resort ("If the packet may not
// be recovered from v1 … vk, then u will recover it from S by default").
//
// Options expose the paper's variants: the restricted strategy graph that
// forbids going to the source directly (§4), the source-subgroup multicast
// repair of §2.2/[4], and an explicit-NAK extension that lets a peer reject
// a request immediately instead of letting it time out.
package rpproto

import (
	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the RP engine.
type Options struct {
	// Timeout is the per-attempt timeout policy shared with planning;
	// nil means core.ProportionalTimeout(3).
	Timeout core.TimeoutPolicy
	// AllowDirectSource mirrors the strategy-graph option (§4): when
	// false the planner never puts the source first.
	AllowDirectSource bool
	// SubgroupRepair makes the source answer requests with a multicast to
	// the requester's subgroup subtree instead of a unicast (§2.2 / [4]).
	SubgroupRepair bool
	// SubgroupDepth is the tree depth of subgroup roots (default 1: the
	// requester's top-level subtree).
	SubgroupDepth int32
	// SubgroupSuppressFactor controls source-side request suppression
	// when SubgroupRepair is on: a request for (seq, subgroup) arriving
	// within factor·RTT(source, requester) of the previous subgroup
	// multicast for the same pair is ignored — the in-flight repair will
	// serve it. This is the load reduction of reference [4] ("the
	// recovery load on S may be reduced by grouping clients", §2.2).
	// Default 1; ≤ 0 disables suppression.
	SubgroupSuppressFactor float64
	// NakReplies makes peers that lack a requested packet reply with an
	// explicit NAK so the requester advances without waiting for the
	// timeout. An extension beyond the paper (it assumes the timeout
	// mechanism); exposed for the ablation benchmarks.
	NakReplies bool
	// LossAware plans with the loss-aware model (core.Planner.LossProb set
	// to the network's mean link loss) instead of the paper's reliable-
	// network model — the extension discussed in internal/core/aware.go.
	LossAware bool
	// Resilience configures the crash/churn hardening layer (see
	// resilient.go). The zero value keeps the paper-faithful engine.
	Resilience Resilience
	// Failover configures the coordinated-RP mode with epoch-fenced
	// re-election (see failover.go). The zero value keeps the peer-list
	// engine; when enabled it takes precedence over Resilience (the two
	// harden different deployments and are not composed).
	Failover Failover
	// NoHoldFreshRequests disables request holding. By default a peer
	// that receives a request for a packet it has not seen — but whose
	// loss-free arrival time is still in the future — holds the request
	// until that instant and answers if the packet shows up. Without
	// holding, a peer farther from the source than the requester can
	// never serve fresh packets (they are still in transit when the
	// request lands), which silently disables deep-meet peers — a transit
	// effect the paper's static model does not represent. Holding needs
	// only peer-local knowledge (its own expected arrival time).
	NoHoldFreshRequests bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{AllowDirectSource: true, SubgroupDepth: 1, SubgroupSuppressFactor: 1}
}

// Engine is the RP protocol engine.
type Engine struct {
	opt        Options
	s          *protocol.Session
	strategies map[graph.NodeID]*core.Strategy
	// sharedPlans, when non-nil, is a parent engine's strategy map adopted
	// verbatim by Attach — shard clones of a partitioned run skip
	// replanning and must never mutate the shared structs.
	sharedPlans map[graph.NodeID]*core.Strategy
	pending     map[key]*attempt
	// lastSubRepair records the send time of the latest subgroup repair
	// multicast per (seq, subgroup root), for source-side suppression.
	lastSubRepair map[key]float64
	// served suppresses duplicated requests: a (host, requester, seq)
	// request repeated within half the requester's retry timeout is a
	// message-plane duplicate, not a retry, and is dropped unanswered.
	served *protocol.DedupCache

	// Resilience state (see resilient.go). roster is non-nil only when
	// Resilience.Enabled; strategies then aliases roster.StrategiesLive(),
	// so incremental replans are visible without re-wiring.
	roster       *core.Roster
	suspectCount map[obs]int
	skipUntil    map[obs]float64
	dead         map[graph.NodeID]bool

	// Failover state (see failover.go). elect is non-nil only when
	// Failover.Enabled; maxClaimed/claimant form the epoch registry (the
	// source-as-sequencer), the per-host maps each simulated host's view.
	elect        *core.Electorate
	initialRP    graph.NodeID
	claimant     graph.NodeID
	maxClaimed   int
	epochOf      map[graph.NodeID]int
	rpView       map[graph.NodeID]graph.NodeID
	interregnum  map[graph.NodeID]bool
	foDead       map[graph.NodeID]bool
	rpTimeouts   map[graph.NodeID]int
	promoteWatch map[graph.NodeID]*promoteState
}

// dedupCacheSize bounds the served-request dedup cache (see
// protocol.DedupCache); eviction only ever re-serves a duplicate.
const dedupCacheSize = 4096

type key struct {
	c   graph.NodeID
	seq int
}

type attempt struct {
	idx   int // index into the peer list; len(peers) means "at source"
	retry int // consecutive attempts at the current index (resilience)
	// parked marks a recovery whose owner is crashed: no timer is armed
	// until OnRecover resumes it.
	parked bool
	// target is the peer the armed timer is waiting on, for attributing
	// the timeout to the right failure-detector entry.
	target graph.NodeID
	timer  sim.Timer
}

// request is the payload of an RP recovery request.
type request struct {
	Requester graph.NodeID
}

// nak is the payload of an explicit "don't have it" reply (NakReplies).
type nak struct{}

// New returns an RP engine with the given options.
func New(opt Options) *Engine {
	if opt.SubgroupDepth <= 0 {
		opt.SubgroupDepth = 1
	}
	return &Engine{
		opt:           opt,
		pending:       make(map[key]*attempt),
		lastSubRepair: make(map[key]float64),
		served:        protocol.NewDedupCache(dedupCacheSize),
		suspectCount:  make(map[obs]int),
		skipUntil:     make(map[obs]float64),
		dead:          make(map[graph.NodeID]bool),
		initialRP:     graph.None,
		claimant:      graph.None,
		epochOf:       make(map[graph.NodeID]int),
		rpView:        make(map[graph.NodeID]graph.NodeID),
		interregnum:   make(map[graph.NodeID]bool),
		foDead:        make(map[graph.NodeID]bool),
		rpTimeouts:    make(map[graph.NodeID]int),
		promoteWatch:  make(map[graph.NodeID]*promoteState),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string {
	if e.opt.Failover.Enabled {
		return "RP-FAILOVER"
	}
	if e.opt.Resilience.Enabled {
		return "RP-RESILIENT"
	}
	return "RP"
}

// CloneForShard implements protocol.ShardCloner: a fresh engine with the
// same options that adopts this (attached) engine's computed strategies
// instead of replanning — the plans are read-only at run time, so shard
// clones share them. The resilience layer is not shardable (its failure
// detector replans into a shared roster at run time), and neither is
// failover (election and the epoch registry are group-global run-time
// state); both force the byte-exact serial fallback.
func (e *Engine) CloneForShard() protocol.Engine {
	if e.opt.Resilience.Enabled || e.opt.Failover.Enabled {
		return nil
	}
	cl := New(e.opt)
	cl.sharedPlans = e.strategies
	return cl
}

// Attach computes the strategies for every client with the core planner.
// In failover mode recovery routes through the coordinator instead of the
// per-client peer lists, so Attach bootstraps the electorate and the
// epoch-1 view instead of planning.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	if e.opt.Failover.Enabled {
		e.initFailover()
		return
	}
	if e.sharedPlans != nil {
		e.strategies = e.sharedPlans
		return
	}
	p := core.NewPlanner(s.Tree, s.Routes)
	p.Timeout = e.opt.Timeout
	p.AllowDirectSource = e.opt.AllowDirectSource
	if e.opt.LossAware {
		var sum float64
		for _, l := range s.Topo.Loss {
			sum += l
		}
		p.LossProb = sum / float64(len(s.Topo.Loss))
	}
	if e.opt.Resilience.Enabled {
		e.roster = core.NewRoster(p)
		e.strategies = e.roster.StrategiesLive()
	} else {
		// PlanAllInto reuses the map and Strategy structs if the engine
		// is ever attached again (e.strategies is nil on first attach).
		e.strategies = p.PlanAllInto(e.strategies)
	}
}

// Strategies exposes the computed plans (for tests and tooling).
func (e *Engine) Strategies() map[graph.NodeID]*core.Strategy { return e.strategies }

// OnDetect implements protocol.Engine: start attempt 0. Monotonic guard:
// a packet the client already holds never (re-)enters pending, whatever
// duplicated or reordered signal suggested it.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	k := key{c, seq}
	if _, dup := e.pending[k]; dup {
		return
	}
	if !e.s.Missing(c, seq) {
		return
	}
	a := &attempt{}
	e.pending[k] = a
	e.dispatchSend(c, seq, a)
}

// dispatchSend routes a fresh or resumed attempt through the mode's send
// path: coordinator-routed (failover) or peer-list walk.
func (e *Engine) dispatchSend(c graph.NodeID, seq int, a *attempt) {
	if e.opt.Failover.Enabled {
		e.foSend(c, seq, a)
		return
	}
	e.send(c, seq, a)
}

// send fires the request for the attempt's current index and arms the
// fall-through timer. A crashed owner parks instead (resumed by OnRecover);
// an owner whose strategy was evicted from the roster (a false-positive
// death declaration) falls back to source-only recovery.
func (e *Engine) send(c graph.NodeID, seq int, a *attempt) {
	if !e.s.Alive(c) {
		a.parked = true
		return
	}
	st := e.strategies[c]
	var target graph.NodeID
	var t0 float64
	switch {
	case st == nil:
		target = e.s.Topo.Source
		t0 = e.timeoutPolicy().Timeout(e.s.Routes.RTT(c, e.s.Topo.Source))
	default:
		for a.idx < len(st.Peers) && e.skipPeer(c, st.Peers[a.idx].Peer) {
			a.idx++
			a.retry = 0
		}
		if a.idx < len(st.Peers) {
			target = st.Peers[a.idx].Peer
			t0 = st.Peers[a.idx].Timeout
		} else {
			target = e.s.Topo.Source
			t0 = st.SourceTimeout
		}
	}
	e.s.Net.Unicast(target, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: request{Requester: c},
	})
	a.target = target
	a.timer = e.s.Eng.NewTimer(e.attemptTimeout(t0, a.retry), func() { e.timeout(c, seq, a) })
}

// timeoutPolicy mirrors the planner's default for clients that lost their
// strategy to eviction.
func (e *Engine) timeoutPolicy() core.TimeoutPolicy {
	if e.opt.Timeout != nil {
		return e.opt.Timeout
	}
	return core.ProportionalTimeout(3)
}

// timeout retries the current peer while its budget lasts, then advances to
// the next attempt (the source attempt repeats forever, so recovery is
// guaranteed to terminate while the client is up).
func (e *Engine) timeout(c graph.NodeID, seq int, a *attempt) {
	k := key{c, seq}
	if e.pending[k] != a || a.parked {
		return // superseded, or owner crashed
	}
	if !e.s.Missing(c, seq) {
		delete(e.pending, k)
		return
	}
	e.noteTimeout(c, a.target)
	res := e.opt.Resilience
	atSource := a.target == e.s.Topo.Source
	if res.Enabled && (a.retry < res.PeerRetries || atSource) {
		a.retry++ // retry the same target (backoff grows; capped)
	} else {
		a.retry = 0
		st := e.strategies[c]
		if st != nil && a.idx < len(st.Peers) {
			a.idx++
		}
	}
	e.send(c, seq, a)
}

// advance is the NAK fast path: the peer answered that it lacks the packet,
// so skip its remaining retry budget immediately (and clear any suspicion —
// an explicit reply is proof of life). Only a NAK from the peer the armed
// timer is actually waiting on advances the walk: a duplicated or delayed
// NAK from an earlier attempt must not double-advance past unasked peers.
func (e *Engine) advance(c graph.NodeID, seq int, from graph.NodeID) {
	k := key{c, seq}
	a := e.pending[k]
	if a == nil || a.parked || from != a.target || !a.timer.Stop() {
		return
	}
	if !e.s.Missing(c, seq) {
		delete(e.pending, k)
		return
	}
	e.clearSuspicion(c, a.target)
	a.retry = 0
	st := e.strategies[c]
	if st != nil && a.idx < len(st.Peers) {
		a.idx++
	}
	e.send(c, seq, a)
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		switch pay := pkt.Payload.(type) {
		case request:
			if !e.s.IsClient(pay.Requester) {
				e.s.NoteMalformed()
				return
			}
			e.onRequest(host, pkt.Seq, pay.Requester)
		case nak:
			e.advance(host, pkt.Seq, pkt.From)
		case foRequest:
			if !e.opt.Failover.Enabled || !e.s.IsClient(pay.Requester) || pay.Epoch < 1 {
				e.s.NoteMalformed()
				return
			}
			e.foOnRequest(host, pkt.Seq, pay)
		case foPromote:
			if !e.opt.Failover.Enabled || pay.Epoch < 1 {
				e.s.NoteMalformed()
				return
			}
			e.foOnPromote(host, pay)
		case foAnnounce:
			if !e.opt.Failover.Enabled || pay.Epoch < 1 {
				e.s.NoteMalformed()
				return
			}
			e.foOnAnnounce(host, pay)
		case foProbe:
			if !e.opt.Failover.Enabled || !e.s.IsClient(pay.Requester) {
				e.s.NoteMalformed()
				return
			}
			e.foOnProbe(host, pay)
		default:
			e.s.NoteMalformed()
		}
	case sim.Repair:
		k := key{host, pkt.Seq}
		if a := e.pending[k]; a != nil {
			a.timer.Stop()
			delete(e.pending, k)
		}
		e.clearSuspicion(host, pkt.From)
		if e.opt.Failover.Enabled {
			// A served recovery is proof the coordinator path works again.
			e.rpTimeouts[host] = 0
		}
	}
}

// onRequest serves or declines one recovery request arriving at host. A
// repeat of the same (requester, seq) within half the requester's own retry
// timeout cannot be a retry — retries are spaced at least one full timeout
// apart — so it is dropped as a message-plane duplicate.
func (e *Engine) onRequest(host graph.NodeID, seq int, requester graph.NodeID) {
	window := 0.5 * e.timeoutPolicy().Timeout(e.s.Routes.RTT(host, requester))
	if e.served.Seen(host, requester, seq, e.s.Eng.Now(), window) {
		return
	}
	if !e.s.Has(host, seq) {
		if !e.opt.NoHoldFreshRequests && e.s.IsClient(host) {
			// The packet may still be in transit to us: hold the request
			// until our own expected arrival and re-decide.
			if eta := e.s.ExpectedArrival(host, seq); eta > e.s.Eng.Now() {
				e.s.Eng.Schedule(eta+2e-3, func() {
					e.onRequestHeld(host, seq, requester)
				})
				return
			}
		}
		e.declineRequest(host, seq, requester)
		return
	}
	if host == e.s.Topo.Source && e.opt.SubgroupRepair {
		sub := e.subgroupRoot(requester)
		sk := key{sub, seq}
		if e.opt.SubgroupSuppressFactor > 0 {
			window := e.opt.SubgroupSuppressFactor * e.s.Routes.RTT(host, requester)
			if last, ok := e.lastSubRepair[sk]; ok && e.s.Eng.Now()-last < window {
				return // an in-flight subgroup repair already covers this
			}
		}
		e.lastSubRepair[sk] = e.s.Eng.Now()
		e.s.Net.MulticastDescend(sub, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	e.s.Net.Unicast(requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
}

// onRequestHeld re-decides a held request once the packet's arrival window
// has passed.
func (e *Engine) onRequestHeld(host graph.NodeID, seq int, requester graph.NodeID) {
	if e.s.Has(host, seq) {
		e.s.Net.Unicast(requester, sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
		return
	}
	e.declineRequest(host, seq, requester)
}

// declineRequest is the terminal no-packet path: explicit NAK or silence.
func (e *Engine) declineRequest(host graph.NodeID, seq int, requester graph.NodeID) {
	if e.opt.NakReplies && e.s.IsClient(host) {
		e.s.Net.Unicast(requester, sim.Packet{
			Kind: sim.Request, Seq: seq, From: host, Payload: nak{},
		})
	}
}

// subgroupRoot returns the requester's ancestor at SubgroupDepth (or the
// requester itself for very shallow clients).
func (e *Engine) subgroupRoot(requester graph.NodeID) graph.NodeID {
	t := e.s.Tree
	depth := t.Depth[requester]
	if depth <= e.opt.SubgroupDepth {
		return requester
	}
	return t.Ancestor(requester, depth-e.opt.SubgroupDepth)
}

// PendingRecoveries reports the number of in-flight recoveries (testing).
func (e *Engine) PendingRecoveries() int { return len(e.pending) }

// DedupCaches implements protocol.DedupAudited.
func (e *Engine) DedupCaches() []*protocol.DedupCache {
	return []*protocol.DedupCache{e.served}
}

var (
	_ protocol.Engine       = (*Engine)(nil)
	_ protocol.FaultAware   = (*Engine)(nil)
	_ protocol.DedupAudited = (*Engine)(nil)
	_ protocol.Coordinator  = (*Engine)(nil)
)
