package rpproto

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// oneLossSession builds a session where exactly the given tree link drops
// the single data packet and is then restored, so recovery traffic is
// lossless and latencies are deterministic.
func oneLossSession(t *testing.T, topo *topology.Network, lossLink graph.EdgeID, e protocol.Engine) *protocol.Session {
	t.Helper()
	topo.Loss[lossLink] = 1
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 42)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(0.5, func() { topo.Loss[lossLink] = 0 })
	return s
}

func TestRecoverFromFirstPeer(t *testing.T) {
	// Distant source, near peers: tail loses only on its access link, so
	// every peer holds the packet and the first strategy entry repairs.
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	b.TreeLink(src, r1, 20)
	b.TreeLink(r1, r2, 1)
	b.TreeLink(r2, r3, 1)
	tail := b.Client()
	tailLink := b.TreeLink(r3, tail, 1)
	p2 := b.Client()
	b.TreeLink(r2, p2, 1)
	p1 := b.Client()
	b.TreeLink(r1, p1, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := New(DefaultOptions())
	s := oneLossSession(t, topo, tailLink, e)
	res := s.Run()
	if res.Stats.Losses != 1 || res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// The repair must come from the strategy's first peer at exactly its
	// RTT (deterministic delays, lossless recovery path).
	st := e.Strategies()[tail]
	if len(st.Peers) == 0 {
		t.Fatal("strategy has no peers despite distant source")
	}
	if math.Abs(res.Stats.Latency.Mean()-st.Peers[0].RTT) > 1e-6 {
		t.Fatalf("latency %v, want first-peer RTT %v",
			res.Stats.Latency.Mean(), st.Peers[0].RTT)
	}
	// Bandwidth: request path + repair path between tail and that peer.
	hops := int64(2 * s.Routes.Hops(tail, st.Peers[0].Peer))
	if res.Hops.Recovery() != hops {
		t.Fatalf("recovery hops %d, want %d", res.Hops.Recovery(), hops)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("pending recoveries left behind")
	}
}

func TestTimeoutFallsThroughToSource(t *testing.T) {
	// Both clients lose (loss above them): each one's peer attempt times
	// out silently, then the source repairs.
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2 := b.Router(), b.Router()
	b.TreeLink(src, r1, 5)
	sharedLink := b.TreeLink(r1, r2, 1)
	c1 := b.Client()
	b.TreeLink(r2, c1, 1)
	c2 := b.Client()
	b.TreeLink(r2, c2, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := New(DefaultOptions())
	s := oneLossSession(t, topo, sharedLink, e)
	res := s.Run()
	if res.Stats.Losses != 2 || res.Stats.Recoveries != 2 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// For each client: its peer list (the sibling, competitive class at
	// r2) times out, then the source answers. Latency = t0 + srcRTT if
	// the plan includes the sibling, else srcRTT.
	for _, c := range topo.Clients {
		st := e.Strategies()[c]
		want := st.SourceRTT
		for _, p := range st.Peers {
			want += p.Timeout
		}
		_ = c
		// Both clients are symmetric; mean should equal the common value.
		if math.Abs(res.Stats.Latency.Mean()-want) > 1e-6 {
			t.Fatalf("latency %v, want %v (strategy %v)",
				res.Stats.Latency.Mean(), want, st)
		}
	}
}

func TestNakRepliesCutLatency(t *testing.T) {
	// Distant source (50 ms) so the sibling peer enters the strategy;
	// the shared loss makes that first attempt fail.
	build := func() (*topology.Network, graph.EdgeID) {
		b := topology.NewBuilder()
		src := b.Source()
		r1, r2 := b.Router(), b.Router()
		b.TreeLink(src, r1, 50)
		shared := b.TreeLink(r1, r2, 1)
		c1 := b.Client()
		b.TreeLink(r2, c1, 1)
		c2 := b.Client()
		b.TreeLink(r2, c2, 1)
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo, shared
	}
	topo1, link1 := build()
	plain := New(DefaultOptions())
	s1 := oneLossSession(t, topo1, link1, plain)
	r1 := s1.Run()

	topo2, link2 := build()
	opt := DefaultOptions()
	opt.NakReplies = true
	nak := New(opt)
	s2 := oneLossSession(t, topo2, link2, nak)
	r2 := s2.Run()

	if r2.Stats.Recoveries != r1.Stats.Recoveries {
		t.Fatalf("recovery counts differ: %d vs %d", r2.Stats.Recoveries, r1.Stats.Recoveries)
	}
	if r2.Stats.Latency.Mean() >= r1.Stats.Latency.Mean() {
		t.Fatalf("NAK replies did not cut latency: %v vs %v",
			r2.Stats.Latency.Mean(), r1.Stats.Latency.Mean())
	}
}

func TestSubgroupRepairCoversSubtree(t *testing.T) {
	// Loss above a subtree with two clients: with SubgroupRepair the
	// source's single multicast repairs both, so repair hops are shared.
	build := func(sub bool) *protocol.Result {
		b := topology.NewBuilder()
		src := b.Source()
		r1, r2 := b.Router(), b.Router()
		b.TreeLink(src, r1, 50)
		shared := b.TreeLink(r1, r2, 1)
		c1 := b.Client()
		b.TreeLink(r2, c1, 1)
		c2 := b.Client()
		b.TreeLink(r2, c2, 1)
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.SubgroupRepair = sub
		e := New(opt)
		s := oneLossSession(t, topo, shared, e)
		return s.Run()
	}
	plain := build(false)
	subgrouped := build(true)
	if subgrouped.Stats.Recoveries+subgrouped.Stats.PreDetection != 2 ||
		subgrouped.Stats.Unrecovered != 0 {
		t.Fatalf("subgroup run stats %+v", subgrouped.Stats)
	}
	// Subgroup repair multicast from the source serves both clients with
	// one descent; plain mode sends two unicast repairs. Repair hops must
	// strictly shrink.
	if subgrouped.Hops.Repair >= plain.Hops.Repair {
		t.Fatalf("subgroup repair hops %d not below plain %d",
			subgrouped.Hops.Repair, plain.Hops.Repair)
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(60, p, 11)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 80, Interval: 30}, 13)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete {
			t.Fatalf("p=%v: run incomplete", p)
		}
		if res.Stats.Losses == 0 {
			t.Fatalf("p=%v: no losses", p)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %d unrecovered losses", p, res.Stats.Unrecovered)
		}
		if e.PendingRecoveries() != 0 {
			t.Fatalf("p=%v: dangling recovery state", p)
		}
	}
}

func TestRestrictedStrategiesStillRecover(t *testing.T) {
	topo, err := topology.Standard(40, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.AllowDirectSource = false
	e := New(opt)
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 40, Interval: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Unrecovered != 0 || !res.Complete {
		t.Fatalf("restricted run failed: %+v", res.Stats)
	}
}

func TestLoneClientGoesToSource(t *testing.T) {
	b := topology.NewBuilder()
	src := b.Source()
	r := b.Router()
	b.TreeLink(src, r, 2)
	c := b.Client()
	link := b.TreeLink(r, c, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, link, e)
	res := s.Run()
	if res.Stats.Recoveries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if math.Abs(res.Stats.Latency.Mean()-8) > 1e-6 { // srcRTT = 2·4
		t.Fatalf("latency %v, want 8", res.Stats.Latency.Mean())
	}
}

func TestRepairLossTriggersRetry(t *testing.T) {
	// The client's access link drops data AND stays lossy only for the
	// uplink direction simulation is symmetric, so emulate with full loss
	// for a while: the first source repair dies, the retry succeeds after
	// the link heals.
	b := topology.NewBuilder()
	src := b.Source()
	r := b.Router()
	b.TreeLink(src, r, 2)
	c := b.Client()
	link := b.TreeLink(r, c, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10, LossyRecovery: true}, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Heal the link only after the first repair attempt has died:
	// detection ≈ 4 ms, request reaches source ≈ +4 ms but dies crossing
	// the lossy access link... the request itself crosses the lossy link
	// first, so it dies immediately; heal at 20 ms (after ~1 timeout) and
	// let the retry complete.
	s.Eng.Schedule(20, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("retry did not recover: %+v", res.Stats)
	}
	// Latency must exceed one clean source round trip (a retry happened).
	if res.Stats.Latency.Mean() <= 8 {
		t.Fatalf("latency %v suggests no retry occurred", res.Stats.Latency.Mean())
	}
	if res.Drops.Recovery() == 0 {
		t.Fatal("no recovery packet was dropped?")
	}
}

func TestSubgroupSuppressionSkipsBurstRequests(t *testing.T) {
	// Two clients under one subtree lose the same packet and both fall
	// back to the source near-simultaneously: with suppression the source
	// multicasts once; with the factor disabled it multicasts per request.
	build := func(factor float64) *protocol.Result {
		b := topology.NewBuilder()
		src := b.Source()
		r1, r2 := b.Router(), b.Router()
		b.TreeLink(src, r1, 50)
		shared := b.TreeLink(r1, r2, 1)
		c1 := b.Client()
		b.TreeLink(r2, c1, 1)
		c2 := b.Client()
		b.TreeLink(r2, c2, 1)
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.SubgroupRepair = true
		opt.SubgroupSuppressFactor = factor
		e := New(opt)
		s := oneLossSession(t, topo, shared, e)
		return s.Run()
	}
	suppressed := build(1)
	unsuppressed := build(0)
	if suppressed.Stats.Unrecovered != 0 || unsuppressed.Stats.Unrecovered != 0 {
		t.Fatal("incomplete recovery")
	}
	if suppressed.Hops.Repair >= unsuppressed.Hops.Repair {
		t.Fatalf("suppression did not reduce repair hops: %d vs %d",
			suppressed.Hops.Repair, unsuppressed.Hops.Repair)
	}
}

func TestHoldFreshRequestsServesDeepPeer(t *testing.T) {
	// The only peer sits much farther from the source than the requester,
	// so for a fresh packet the peer's copy is still in transit when the
	// request arrives. With holding (default) the peer answers as soon as
	// its copy lands; without holding the requester burns the timeout and
	// goes to the source.
	build := func(noHold bool) (*protocol.Result, *Engine) {
		b := topology.NewBuilder()
		src := b.Source()
		r1, r2 := b.Router(), b.Router()
		b.TreeLink(src, r1, 30)
		b.TreeLink(r1, r2, 1)
		u := b.Client()
		uLink := b.TreeLink(r2, u, 1)
		// Peer behind a long private chain below r2.
		prev := r2
		for i := 0; i < 6; i++ {
			rr := b.Router()
			b.TreeLink(prev, rr, 2)
			prev = rr
		}
		peer := b.Client()
		b.TreeLink(prev, peer, 1)
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.NoHoldFreshRequests = noHold
		e := New(opt)
		s := oneLossSession(t, topo, uLink, e)
		res := s.Run()
		// Sanity: the plan must actually use the deep peer first.
		st := e.Strategies()[u]
		if len(st.Peers) == 0 || st.Peers[0].Peer != peer {
			t.Skipf("planner did not pick the deep peer (strategy %v)", st)
		}
		return res, e
	}
	held, _ := build(false)
	unheld, _ := build(true)
	if held.Stats.Recoveries != 1 || unheld.Stats.Recoveries != 1 {
		t.Fatalf("recoveries %d/%d", held.Stats.Recoveries, unheld.Stats.Recoveries)
	}
	if held.AvgLatency() >= unheld.AvgLatency() {
		t.Fatalf("holding did not help: %v vs %v", held.AvgLatency(), unheld.AvgLatency())
	}
}

func TestSubgroupRepairShallowClient(t *testing.T) {
	// A client attached directly to the source (depth 1): the subgroup
	// root degenerates to the client itself and the repair still lands.
	b := topology.NewBuilder()
	src := b.Source()
	c := b.Client()
	link := b.TreeLink(src, c, 3)
	// A second client so the group is non-trivial.
	r := b.Router()
	b.TreeLink(src, r, 1)
	c2 := b.Client()
	b.TreeLink(r, c2, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.SubgroupRepair = true
	e := New(opt)
	s := oneLossSession(t, topo, link, e)
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestSubgroupDepthTwo(t *testing.T) {
	// SubgroupDepth 2 roots the repair multicast deeper: only the closer
	// subtree is covered.
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	b.TreeLink(src, r1, 5)
	b.TreeLink(r1, r2, 1)
	shared := b.TreeLink(r2, r3, 1)
	c1 := b.Client()
	b.TreeLink(r3, c1, 1)
	c2 := b.Client()
	b.TreeLink(r3, c2, 1)
	// A third client under r1 but outside r2's subtree.
	outside := b.Client()
	b.TreeLink(r1, outside, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.SubgroupRepair = true
	opt.SubgroupDepth = 2
	e := New(opt)
	s := oneLossSession(t, topo, shared, e)
	res := s.Run()
	if res.Stats.Recoveries+res.Stats.PreDetection != 2 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// The deeper subgroup root keeps the repair inside r2's subtree, so
	// `outside` (which has the packet) must never see a duplicate.
	if res.Stats.Duplicates != 0 {
		t.Fatalf("repair leaked outside the subgroup: %d duplicates", res.Stats.Duplicates)
	}
}
