package rpproto

import (
	"fmt"
	"testing"

	"rmcast/internal/core"
	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

// churnTopo generates the realistic mid-size network the failover tests run
// on, together with its deterministic election succession line.
func churnTopo(t *testing.T, seed uint64) (*topology.Network, []graph.NodeID) {
	t.Helper()
	cfg := topology.DefaultConfig(40)
	topo, err := topology.Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo, core.ElectionOrder(mtree.MustBuild(topo))
}

// runFailover executes one RP-FAILOVER session (strict oracle — any safety
// violation panics) and returns the result plus the engine for state
// inspection.
func runFailover(t *testing.T, topo *topology.Network, sched *fault.Schedule,
	packets int, seed uint64, mod func(*Options)) (*protocol.Result, *Engine) {
	t.Helper()
	opt := DefaultOptions()
	opt.Failover = DefaultFailover()
	if mod != nil {
		mod(&opt)
	}
	e := New(opt)
	cfg := protocol.Config{Packets: packets, Interval: 10, Fault: sched}
	s, err := protocol.NewSession(topo, e, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("run hit the event cap")
	}
	return res, e
}

// TestFailoverEnvelope is the pinned failover demonstration: the initial RP
// is crashed permanently in the middle of the recovery workload, and still
// every live client reaches full delivery, the strict oracle records zero
// violations (one claim per epoch, per-host epoch monotonicity, recovery
// conservation across the handover), at least one failover is counted, and
// the survivors converge on the deterministic successor.
func TestFailoverEnvelope(t *testing.T) {
	topo, order := churnTopo(t, 7)
	rp0 := order[0]
	sched := (&fault.Schedule{}).CrashHost(150, rp0) // mid-run, permanent
	res, e := runFailover(t, topo, sched, 60, 11, nil)

	if len(res.Violations) != 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d losses unrecovered at live clients", res.Stats.Unrecovered)
	}
	if res.Stats.Failovers < 1 {
		t.Fatalf("RP crashed but Failovers = %d", res.Stats.Failovers)
	}
	if e.initialRP != rp0 {
		t.Fatalf("bootstrap RP %d, election order says %d", e.initialRP, rp0)
	}
	// Every live client's final view names the same successor, and it is
	// not the corpse.
	successor := e.claimant
	if successor == rp0 || successor == graph.None {
		t.Fatalf("claimant %d after crashing %d", successor, rp0)
	}
	for _, c := range topo.Clients {
		if c == rp0 {
			continue
		}
		if got := e.CurrentRP(c); got != successor {
			t.Fatalf("client %d ends on RP %d, want %d", c, got, successor)
		}
	}
}

// TestFailoverDeterministicReplay pins byte-identical re-execution: the
// same (topology, schedule, seed) twice yields identical stats, failover
// counts, and final views — the determinism argument behind sharing fault
// seeds across sweep cells.
func TestFailoverDeterministicReplay(t *testing.T) {
	run := func() (string, string) {
		topo, order := churnTopo(t, 7)
		sched := (&fault.Schedule{}).CrashHost(150, order[0])
		res, e := runFailover(t, topo, sched, 60, 11, nil)
		views := ""
		for _, c := range topo.Clients {
			views += fmt.Sprintf("%d:%d/%d ", c, e.CurrentEpoch(c), e.CurrentRP(c))
		}
		return fmt.Sprintf("%+v", res.Stats), views
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%s\n%s", s1, s2)
	}
	if v1 != v2 {
		t.Fatalf("final views differ across identical runs:\n%s\n%s", v1, v2)
	}
}

// TestSimultaneousSuspicionSingleClaim drives every client into suspicion at
// once (the RP dies under total data loss at high fan-in), so many peers race
// foPromote at the same winner. The strict oracle asserts the race resolves
// to exactly one claim per epoch; the engine must end with everyone on the
// single deterministic winner.
func TestSimultaneousSuspicionSingleClaim(t *testing.T) {
	topo, order := churnTopo(t, 13)
	rp0 := order[0]
	// Crash before traffic: every loss-recovery in the run immediately
	// suspects the bootstrap RP, from many clients in the same timeout
	// window.
	sched := (&fault.Schedule{}).CrashHost(0, rp0)
	res, e := runFailover(t, topo, sched, 30, 17, nil)
	if len(res.Violations) != 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered", res.Stats.Unrecovered)
	}
	if res.Stats.Failovers < 1 {
		t.Fatal("no failover despite a dead bootstrap RP")
	}
	// The deterministic rule: with rp0 withdrawn the winner is the next
	// live name in the election order.
	want := order[1]
	if e.claimant != want {
		t.Fatalf("claimant %d, deterministic successor is %d", e.claimant, want)
	}
}

// TestCrashDuringHandover kills the successor as well — the second wave
// lands while (or right after) the first election seats it — so the group
// must fail over at least twice and still deliver everywhere alive.
func TestCrashDuringHandover(t *testing.T) {
	topo, order := churnTopo(t, 7)
	sched := (&fault.Schedule{}).
		CrashHost(0, order[0]).
		CrashHost(300, order[1]) // the successor, after it has seated
	res, e := runFailover(t, topo, sched, 60, 19, nil)
	if len(res.Violations) != 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered", res.Stats.Unrecovered)
	}
	if res.Stats.Failovers < 2 {
		t.Fatalf("two coordinator crashes but only %d failovers", res.Stats.Failovers)
	}
	if e.claimant == order[0] || e.claimant == order[1] {
		t.Fatalf("final claimant %d is one of the corpses", e.claimant)
	}
}

// TestExRPRejoin exercises the rejoin path end to end: the bootstrap RP
// crashes with a recovery window, comes back after the group has moved to a
// new epoch, probes the registry, adopts the current view, and is
// re-admitted to the electorate as a regular candidate.
func TestExRPRejoin(t *testing.T) {
	topo, order := churnTopo(t, 7)
	rp0 := order[0]
	sched := (&fault.Schedule{}).CrashWindow(rp0, 120, 320)
	res, e := runFailover(t, topo, sched, 60, 23, nil)
	if len(res.Violations) != 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered", res.Stats.Unrecovered)
	}
	if res.Stats.Failovers < 1 {
		t.Fatal("no failover recorded")
	}
	if e.claimant == rp0 {
		t.Fatal("deposed RP still the claimant after rejoin")
	}
	// Re-admitted: back in the electorate, caught up to the current view.
	if !e.elect.Active(rp0) {
		t.Fatal("recovered ex-RP not re-admitted to the electorate")
	}
	if got := e.CurrentRP(rp0); got != e.claimant {
		t.Fatalf("ex-RP's view is %d, current claimant is %d", got, e.claimant)
	}
	if got, cur := e.CurrentEpoch(rp0), e.maxClaimed; got != cur {
		t.Fatalf("ex-RP's epoch %d, current epoch %d", got, cur)
	}
}

// TestAdoptEpochIdempotent pins rejoin/announce idempotency at the unit
// level: replaying the same announcement (a duplicated control message, or
// a probe answered twice) must not change state, re-count a failover, or
// disturb the electorate.
func TestAdoptEpochIdempotent(t *testing.T) {
	topo, order := churnTopo(t, 7)
	sched := (&fault.Schedule{}).CrashHost(120, order[0])
	res, e := runFailover(t, topo, sched, 40, 29, nil)
	if len(res.Violations) != 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	c := order[2]
	epoch, rp := e.CurrentEpoch(c), e.CurrentRP(c)
	max0 := e.maxClaimed
	for i := 0; i < 3; i++ {
		e.foOnAnnounce(c, foAnnounce{Epoch: epoch, RP: rp})
	}
	if e.CurrentEpoch(c) != epoch || e.CurrentRP(c) != rp {
		t.Fatal("replayed announcement changed the adopted view")
	}
	if e.maxClaimed != max0 || e.claimant != rp {
		t.Fatal("replayed announcement disturbed the claim registry")
	}
}

// TestNoElectionRejectsRPCrash: with NoElection the coordinator role can
// never move, so a schedule that crashes the designated RP must be rejected
// at session construction with the role-aware error — while the same
// schedule against a non-coordinator client builds fine.
func TestNoElectionRejectsRPCrash(t *testing.T) {
	topo, order := churnTopo(t, 7)
	mk := func(victim graph.NodeID) error {
		opt := DefaultOptions()
		opt.Failover = DefaultFailover()
		opt.Failover.NoElection = true
		cfg := protocol.Config{Packets: 10, Interval: 10,
			Fault: (&fault.Schedule{}).CrashHost(50, victim)}
		_, err := protocol.NewSession(topo, New(opt), cfg, 3)
		return err
	}
	if err := mk(order[0]); err == nil {
		t.Fatal("RP crash accepted despite NoElection")
	}
	if err := mk(order[len(order)-1]); err != nil {
		t.Fatalf("non-coordinator crash rejected: %v", err)
	}
}

// TestFailoverFallsBackSerial pins the parallel-engine contract: a failover
// run requesting sharding must fall back to the byte-exact serial path and
// say why.
func TestFailoverFallsBackSerial(t *testing.T) {
	topo, order := churnTopo(t, 7)
	sched := (&fault.Schedule{}).CrashHost(150, order[0])
	opt := DefaultOptions()
	opt.Failover = DefaultFailover()
	cfg := protocol.Config{Packets: 40, Interval: 10, Fault: sched, SimWorkers: 4}
	s, err := protocol.NewSession(topo, New(opt), cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Sharded {
		t.Fatal("failover run claimed to have sharded")
	}
	if res.SerialReason == "" {
		t.Fatal("serial fallback left no reason")
	}
	if res.Stats.Unrecovered != 0 || len(res.Violations) != 0 {
		t.Fatalf("fallback run unhealthy: %d unrecovered, %v",
			res.Stats.Unrecovered, res.Violations)
	}
}

// FuzzElection drives the failover machinery through arbitrary crash-window
// placements over the succession line and asserts the envelope invariants
// hold everywhere: the run quiesces, the strict oracle (panicking on any
// safety violation) stays silent, no liveness violation is recorded, and no
// recovery is lost at a live client.
func FuzzElection(f *testing.F) {
	f.Add(uint64(1), 150.0, 80.0, 210.0, 120.0, true)
	f.Add(uint64(2), 0.0, 500.0, 0.0, 500.0, false)
	f.Add(uint64(3), 300.0, 10.0, 305.0, 10.0, true)
	f.Fuzz(func(t *testing.T, seed uint64, at0, down0, at1, down1 float64, second bool) {
		clampT := func(v float64, span float64) float64 {
			if !(v >= 0) || v > span {
				return span / 2
			}
			return v
		}
		const span = 60 * 10
		at0, at1 = clampT(at0, span), clampT(at1, span)
		down0, down1 = clampT(down0, span), clampT(down1, span)
		topo, order := churnTopo(t, 7)
		sched := (&fault.Schedule{}).CrashWindow(order[0], at0, at0+down0)
		if second {
			sched.CrashWindow(order[1], at1, at1+down1)
		}
		opt := DefaultOptions()
		opt.Failover = DefaultFailover()
		cfg := protocol.Config{Packets: 60, Interval: 10, Fault: sched}
		s, err := protocol.NewSession(topo, New(opt), cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run() // strict oracle: safety violations panic here
		if !res.Complete {
			t.Fatal("run hit the event cap")
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations under crash windows (%g+%g, %g+%g): %v",
				at0, down0, at1, down1, res.Violations)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("%d losses unrecovered at live clients", res.Stats.Unrecovered)
		}
	})
}
