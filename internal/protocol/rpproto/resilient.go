// Resilient RP: the hardening layer the paper's reliable-network model does
// not need. The paper assumes peers never die and recovery traffic is never
// lost, so a single request per peer with one fall-through timeout suffices.
// Under fault injection (internal/fault) both assumptions break, and plain
// RP degrades two ways: a transiently lost request wastes a whole timeout
// before advancing, and a crashed peer keeps absorbing first-choice requests
// from every client whose list it tops. The Resilience options add, per the
// usual failure-detector playbook:
//
//   - a per-peer retry budget with exponential backoff and jitter, so a
//     lossy link gets more than one chance before the peer is skipped;
//   - dead-peer suspicion: K consecutive timeouts against a peer makes the
//     requester skip it for a cooldown window;
//   - eviction with roster-driven replanning: enough consecutive timeouts
//     declares the peer dead group-wide, and core.Roster's incremental
//     churn path (Leave/Join) repairs exactly the affected strategies;
//     a recovering peer is re-admitted through Join.
//
// The source remains the guaranteed last resort: a client whose strategy
// was evicted (a false positive under heavy loss) falls back to
// source-only recovery, so the liveness invariant — every gap at a live
// client is eventually filled while the source stays up and the tree is
// eventually connected — survives arbitrary misjudgements.
package rpproto

import (
	"cmp"
	"math"
	"slices"

	"rmcast/internal/graph"
)

// Resilience configures the hardening layer. The zero value disables it,
// leaving the paper-faithful engine untouched.
type Resilience struct {
	// Enabled turns the layer on (and renames the engine RP-RESILIENT).
	Enabled bool
	// PeerRetries is the number of extra attempts (beyond the first) a
	// peer gets before the requester advances past it.
	PeerRetries int
	// BackoffFactor multiplies the attempt timeout per retry
	// (exponential backoff, exponent capped at 6). Values < 1 mean 1.
	BackoffFactor float64
	// JitterFrac adds U[0, JitterFrac)·t0 to every armed timeout,
	// decorrelating retry storms after a shared outage.
	JitterFrac float64
	// SuspicionThreshold is K: after K consecutive timeouts against a
	// peer, the requester skips it for SuspicionCooldown ms. 0 disables
	// suspicion.
	SuspicionThreshold int
	// SuspicionCooldown is the skip window, ms.
	SuspicionCooldown float64
	// DeclareDeadAfter evicts a peer from the roster (with incremental
	// replanning) after this many consecutive timeouts from a single
	// observer. 0 disables eviction.
	DeclareDeadAfter int
}

// DefaultResilience returns the configuration used by the chaos sweeps.
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:            true,
		PeerRetries:        1,
		BackoffFactor:      2,
		JitterFrac:         0.1,
		SuspicionThreshold: 2,
		SuspicionCooldown:  2000,
		DeclareDeadAfter:   4,
	}
}

// obs is one client's view of one peer — suspicion is per observer, the
// way a deployed failure detector would keep it, not group-global.
type obs struct {
	c, peer graph.NodeID
}

// attemptTimeout applies backoff and jitter to a base timeout.
func (e *Engine) attemptTimeout(t0 float64, retry int) float64 {
	res := e.opt.Resilience
	if !res.Enabled {
		return t0
	}
	f := res.BackoffFactor
	if f < 1 {
		f = 1
	}
	n := retry
	if n > 6 {
		n = 6
	}
	to := t0 * math.Pow(f, float64(n))
	if res.JitterFrac > 0 {
		to += t0 * res.JitterFrac * e.s.Rand.Float64()
	}
	return to
}

// skipPeer reports whether a requester should currently pass over a peer:
// evicted peers always, suspected peers until their cooldown expires.
func (e *Engine) skipPeer(c, peer graph.NodeID) bool {
	if !e.opt.Resilience.Enabled {
		return false
	}
	if e.dead[peer] {
		return true
	}
	until, ok := e.skipUntil[obs{c, peer}]
	return ok && e.s.Eng.Now() < until
}

// noteTimeout records one consecutive timeout of peer as seen by c and
// applies the suspicion/eviction thresholds.
func (e *Engine) noteTimeout(c, peer graph.NodeID) {
	res := e.opt.Resilience
	if !res.Enabled || peer == e.s.Topo.Source {
		return
	}
	o := obs{c, peer}
	e.suspectCount[o]++
	n := e.suspectCount[o]
	if res.SuspicionThreshold > 0 && n >= res.SuspicionThreshold {
		e.skipUntil[o] = e.s.Eng.Now() + res.SuspicionCooldown
	}
	if res.DeclareDeadAfter > 0 && n >= res.DeclareDeadAfter {
		e.declareDead(peer)
	}
}

// clearSuspicion resets c's failure-detector state for peer after any
// explicit sign of life (a repair or a NAK from it).
func (e *Engine) clearSuspicion(c, peer graph.NodeID) {
	if !e.opt.Resilience.Enabled {
		return
	}
	o := obs{c, peer}
	delete(e.suspectCount, o)
	delete(e.skipUntil, o)
}

// declareDead evicts a peer group-wide: the roster's incremental Leave
// replans exactly the clients whose strategies contained it as a class
// winner. A false positive (the peer was alive but unreachable) costs the
// evicted client its peer list — send falls back to source-only recovery —
// never liveness.
func (e *Engine) declareDead(v graph.NodeID) {
	if e.roster == nil || e.dead[v] || !e.roster.Active(v) {
		return
	}
	if _, err := e.roster.Leave(v); err != nil {
		return
	}
	e.dead[v] = true
}

// OnCrash implements protocol.FaultAware: park the crashed client's
// in-flight recoveries. Without parking a permanently crashed client would
// re-arm its retry timers forever and the run could never quiesce.
func (e *Engine) OnCrash(h graph.NodeID) {
	for _, k := range e.pendingKeysFor(h) {
		a := e.pending[k]
		a.timer.Stop()
		a.parked = true
	}
}

// OnRecover implements protocol.FaultAware: re-admit the host if it had
// been evicted, forget what observers held against it, and resume its
// parked recoveries from a fresh retry budget.
func (e *Engine) OnRecover(h graph.NodeID) {
	if e.roster != nil && e.dead[h] {
		if _, err := e.roster.Join(h); err == nil {
			delete(e.dead, h)
		}
		for o := range e.suspectCount {
			if o.peer == h {
				delete(e.suspectCount, o)
			}
		}
		for o := range e.skipUntil {
			if o.peer == h {
				delete(e.skipUntil, o)
			}
		}
	}
	for _, k := range e.pendingKeysFor(h) {
		a := e.pending[k]
		if a.parked {
			a.parked = false
			a.retry = 0
			e.dispatchSend(k.c, k.seq, a)
		}
	}
	if e.opt.Failover.Enabled {
		e.foOnRecover(h)
	}
}

// pendingKeysFor returns h's pending recovery keys in sequence order —
// resumption order must be deterministic because each send draws from the
// shared rng streams.
func (e *Engine) pendingKeysFor(h graph.NodeID) []key {
	var ks []key
	for k := range e.pending {
		if k.c == h {
			ks = append(ks, k)
		}
	}
	slices.SortFunc(ks, func(a, b key) int { return cmp.Compare(a.seq, b.seq) })
	return ks
}
