package protocol

import (
	"testing"

	"rmcast/internal/graph"
)

func TestDedupCacheWindow(t *testing.T) {
	d := NewDedupCache(16)
	if d.Seen(1, 2, 5, 100, 10) {
		t.Fatal("first observation reported as duplicate")
	}
	if !d.Seen(1, 2, 5, 105, 10) {
		t.Fatal("repeat inside the window not reported")
	}
	// A hit must NOT refresh the entry: the window is anchored at the
	// first copy, so a steady duplicate stream cannot starve retries.
	if !d.Seen(1, 2, 5, 109, 10) {
		t.Fatal("third copy inside the original window not reported")
	}
	if d.Seen(1, 2, 5, 111, 10) {
		t.Fatal("legitimate retry outside the window reported as duplicate")
	}
	// The retry re-anchored the window.
	if !d.Seen(1, 2, 5, 112, 10) {
		t.Fatal("duplicate of the retry not reported")
	}
}

func TestDedupCacheKeysIndependent(t *testing.T) {
	d := NewDedupCache(16)
	d.Seen(1, 2, 5, 100, 10)
	if d.Seen(1, 2, 6, 100, 10) || d.Seen(1, 3, 5, 100, 10) || d.Seen(2, 2, 5, 100, 10) {
		t.Fatal("distinct keys collided")
	}
}

func TestDedupCacheBound(t *testing.T) {
	const cap = 8
	d := NewDedupCache(cap)
	for i := 0; i < 10*cap; i++ {
		d.Seen(graph.NodeID(i), 0, i, float64(i), 1000)
		if d.Len() > d.Cap() {
			t.Fatalf("cache exceeded its bound: %d > %d", d.Len(), d.Cap())
		}
	}
	if d.Len() != cap {
		t.Fatalf("len %d, want full cache %d", d.Len(), cap)
	}
	// FIFO eviction: the oldest key was overwritten, so its duplicate is
	// re-admitted (re-served, never lost).
	if d.Seen(0, 0, 0, float64(10*cap), 1e9) {
		t.Fatal("evicted key still reported as duplicate")
	}
	// The newest key survived.
	if !d.Seen(graph.NodeID(10*cap-1), 0, 10*cap-1, float64(10*cap), 1e9) {
		t.Fatal("resident key not reported as duplicate")
	}
}

func TestDedupCacheMinCapacity(t *testing.T) {
	d := NewDedupCache(0)
	if d.Cap() != 1 {
		t.Fatalf("cap %d, want minimum 1", d.Cap())
	}
	d.Seen(1, 1, 1, 0, 10)
	d.Seen(2, 2, 2, 0, 10)
	if d.Len() != 1 {
		t.Fatalf("len %d, want 1", d.Len())
	}
}

// BenchmarkDedupCache measures the per-packet cost the hardening layer adds
// to every control delivery: one Seen call on a warm, full cache. The bench
// target in ISSUE terms: the adversarial hardening must stay under 5% of a
// control packet's processing budget, and this path is the hot part.
func BenchmarkDedupCache(b *testing.B) {
	d := NewDedupCache(4096)
	for i := 0; i < 4096; i++ {
		d.Seen(graph.NodeID(i%64), graph.NodeID(i%128), i, float64(i), 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Seen(graph.NodeID(i%64), graph.NodeID(i%128), i%4096, float64(4096+i), 50)
	}
}
