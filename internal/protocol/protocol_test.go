package protocol

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/sim"
	"rmcast/internal/topology"
)

func mustTree(t *testing.T, topo *topology.Network) *mtree.Tree {
	t.Helper()
	tr, err := mtree.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// nullEngine detects losses but never recovers anything.
type nullEngine struct {
	detects int
	packets int
}

func (n *nullEngine) Name() string                      { return "NULL" }
func (n *nullEngine) Attach(*Session)                   {}
func (n *nullEngine) OnDetect(graph.NodeID, int)        { n.detects++ }
func (n *nullEngine) OnPacket(graph.NodeID, sim.Packet) { n.packets++ }

// echoEngine repairs every detected loss by unicasting a request to the
// source, which answers with a unicast repair — a minimal closed loop for
// framework testing.
type echoEngine struct{ s *Session }

func (e *echoEngine) Name() string      { return "ECHO" }
func (e *echoEngine) Attach(s *Session) { e.s = s }
func (e *echoEngine) OnDetect(c graph.NodeID, seq int) {
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{Kind: sim.Request, Seq: seq, From: c, Payload: c})
}
func (e *echoEngine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	if pkt.Kind == sim.Request && host == e.s.Topo.Source {
		e.s.Net.Unicast(pkt.Payload.(graph.NodeID), sim.Packet{Kind: sim.Repair, Seq: pkt.Seq, From: host})
	}
}

func TestLosslessRunHasNoRecoveryTraffic(t *testing.T) {
	topo, err := topology.Chain(3, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := &nullEngine{}
	s, err := NewSession(topo, eng, Config{Packets: 20, Interval: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Losses != 0 || eng.detects != 0 {
		t.Fatalf("lossless run produced losses: %+v", res.Stats)
	}
	if res.Stats.DataDeliveries != int64(20*len(topo.Clients)) {
		t.Fatalf("data deliveries %d, want %d", res.Stats.DataDeliveries, 20*len(topo.Clients))
	}
	if res.Hops.Recovery() != 0 {
		t.Fatal("recovery hops in lossless run")
	}
	if !res.Complete {
		t.Fatal("run did not complete")
	}
	if res.Protocol != "NULL" {
		t.Fatalf("protocol name %q", res.Protocol)
	}
}

func TestLossesDetectedAndUnrecoveredWithNullEngine(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	// Certain loss on the client's access link for data.
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	topo.Loss[tree.ParentLink[c]] = 1
	eng := &nullEngine{}
	s, err := NewSession(topo, eng, Config{Packets: 5, Interval: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Losses != 5 || eng.detects != 5 {
		t.Fatalf("losses %d (detects %d), want 5", res.Stats.Losses, eng.detects)
	}
	if res.Stats.Unrecovered != 5 || res.Stats.Recoveries != 0 {
		t.Fatalf("unrecovered %d recoveries %d", res.Stats.Unrecovered, res.Stats.Recoveries)
	}
}

func TestEchoEngineRecoversEverything(t *testing.T) {
	topo, _ := topology.Chain(3, 2, []int{1})
	topo.SetUniformLoss(0.3)
	s, err := NewSession(topo, &echoEngine{}, Config{Packets: 200, Interval: 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Losses == 0 {
		t.Fatal("no losses at p=0.3?")
	}
	// The echo engine has no retries, so request/repair losses leave gaps.
	if res.Stats.Recoveries+res.Stats.Unrecovered != res.Stats.Losses {
		t.Fatalf("accounting identity broken: %d + %d != %d",
			res.Stats.Recoveries, res.Stats.Unrecovered, res.Stats.Losses)
	}
	if res.Stats.Recoveries == 0 {
		t.Fatal("echo engine recovered nothing")
	}
	// Latency for a successful echo is ≥ the client RTT to the source.
	if res.Stats.Latency.Min() <= 0 {
		t.Fatalf("non-positive recovery latency %v", res.Stats.Latency.Min())
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() *Result {
		topo, _ := topology.Standard(40, 0.15, 7)
		s, err := NewSession(topo, &echoEngine{}, Config{Packets: 50, Interval: 25}, 99)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if a.Stats != b.Stats || a.Hops != b.Hops || a.Events != b.Events {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSessionSeedSensitivity(t *testing.T) {
	topo1, _ := topology.Standard(40, 0.15, 7)
	s1, _ := NewSession(topo1, &echoEngine{}, Config{Packets: 50, Interval: 25}, 1)
	topo2, _ := topology.Standard(40, 0.15, 7)
	s2, _ := NewSession(topo2, &echoEngine{}, Config{Packets: 50, Interval: 25}, 2)
	a, b := s1.Run(), s2.Run()
	if a.Stats.Losses == b.Stats.Losses && a.Hops == b.Hops {
		t.Fatal("different seeds produced identical stochastic runs")
	}
}

func TestBadConfigRejected(t *testing.T) {
	topo, _ := topology.Star(2, 1)
	if _, err := NewSession(topo, &nullEngine{}, Config{Packets: 0, Interval: 10}, 1); err == nil {
		t.Fatal("zero packets accepted")
	}
	if _, err := NewSession(topo, &nullEngine{}, Config{Packets: 5, Interval: 0}, 1); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestHasAndMissing(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	topo.Loss[tree.ParentLink[c]] = 1
	var snap struct {
		hasBefore, missingAtDetect bool
	}
	e := &hookEngine{onDetect: func(s *Session, cl graph.NodeID, seq int) {
		snap.hasBefore = s.Has(cl, seq)
		snap.missingAtDetect = s.Missing(cl, seq)
	}}
	s, err := NewSession(topo, e, Config{Packets: 1, Interval: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(topo.Source, 0) {
		t.Fatal("source must have every packet")
	}
	s.Run()
	if snap.hasBefore {
		t.Fatal("Has true for lost packet")
	}
	if !snap.missingAtDetect {
		t.Fatal("Missing false at detection time")
	}
	if s.Missing(topo.Source, 0) || s.Has(graph.NodeID(1), 0) {
		t.Fatal("non-client membership queries wrong")
	}
}

// hookEngine runs a closure on detection.
type hookEngine struct {
	s        *Session
	onDetect func(*Session, graph.NodeID, int)
}

func (h *hookEngine) Name() string      { return "HOOK" }
func (h *hookEngine) Attach(s *Session) { h.s = s }
func (h *hookEngine) OnDetect(c graph.NodeID, seq int) {
	if h.onDetect != nil {
		h.onDetect(h.s, c, seq)
	}
}
func (h *hookEngine) OnPacket(graph.NodeID, sim.Packet) {}

func TestMaxEventsAborts(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	// An engine that schedules forever.
	e := &hookEngine{}
	e.onDetect = func(s *Session, c graph.NodeID, seq int) {
		var loop func()
		loop = func() { s.Eng.After(1, loop) }
		loop()
	}
	tree := mustTree(t, topo)
	topo.Loss[tree.ParentLink[topo.Clients[0]]] = 1
	s, err := NewSession(topo, e, Config{Packets: 1, Interval: 10, MaxEvents: 1000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Complete {
		t.Fatal("runaway run reported complete")
	}
	if res.Events > 1000 {
		t.Fatalf("event cap not honoured: %d", res.Events)
	}
}

func TestDetectLagShiftsLatencyBase(t *testing.T) {
	topo, _ := topology.Chain(2, 1, nil)
	tree := mustTree(t, topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1

	var detected []float64
	e := &hookEngine{}
	e.onDetect = func(s *Session, cl graph.NodeID, seq int) {
		detected = append(detected, s.Eng.Now())
		// Restore the link so nothing else is lost.
	}
	s, err := NewSession(topo, e, Config{Packets: 1, Interval: 10, DetectLag: 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(detected) != 1 {
		t.Fatalf("detections %d", len(detected))
	}
	want := s.Net.WouldArrive(c) + 7
	if math.Abs(detected[0]-want) > 0.01 {
		t.Fatalf("detection at %v, want ≈%v", detected[0], want)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{}
	if r.BandwidthPerRecovery() != 0 || r.AvgLatency() != 0 {
		t.Fatal("empty result derived metrics should be 0")
	}
	r.Stats.Recoveries = 4
	r.Hops.Request = 6
	r.Hops.Repair = 6
	if r.BandwidthPerRecovery() != 1.5 {
		t.Fatalf("bw per recovery %v, want 1.5 (repairs only)", r.BandwidthPerRecovery())
	}
	if r.RequestHopsPerRecovery() != 1.5 {
		t.Fatalf("request hops per recovery %v, want 1.5", r.RequestHopsPerRecovery())
	}
	if r.TotalRecoveryHopsPerRecovery() != 3 {
		t.Fatalf("total recovery hops %v, want 3", r.TotalRecoveryHopsPerRecovery())
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}
