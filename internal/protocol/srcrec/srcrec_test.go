package srcrec

import (
	"math"
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

func TestSingleLossRecoveredFromSource(t *testing.T) {
	topo, err := topology.Chain(3, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	tail := topo.Clients[0]
	link := tree.ParentLink[tail]
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(0.5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Latency is exactly the source RTT (4 links · 2 ms each way).
	if math.Abs(res.Stats.Latency.Mean()-16) > 1e-6 {
		t.Fatalf("latency %v, want 16", res.Stats.Latency.Mean())
	}
	// Bandwidth: request up (4) + repair down (4).
	if res.Hops.Recovery() != 8 {
		t.Fatalf("recovery hops %d, want 8", res.Hops.Recovery())
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling state")
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	topo, err := topology.Standard(40, 0.2, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 60, Interval: 30}, 37)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Unrecovered != 0 || res.Stats.Losses == 0 {
		t.Fatalf("run failed: %+v complete=%v", res.Stats, res.Complete)
	}
}

func TestRetryAfterLostRepair(t *testing.T) {
	topo, err := topology.Chain(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10, LossyRecovery: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(60, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Stats.Latency.Mean() < 50 {
		t.Fatalf("latency %v below healing time", res.Stats.Latency.Mean())
	}
}
