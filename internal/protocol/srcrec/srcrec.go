// Package srcrec implements the pure source-based recovery baseline: every
// detected loss is recovered with a unicast request to the source and a
// unicast repair back, retried on timeout. It is what RP degenerates to for
// a client with no useful peers, and serves as the ablation floor in the
// benchmark suite (the paper surveys source-based schemes in §1 and builds
// on its own earlier subgrouping work [4], which the RP engine's
// SubgroupRepair option models).
package srcrec

import (
	"cmp"
	"slices"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the engine.
type Options struct {
	// RetryFactor scales the retransmission timeout as a multiple of the
	// client's RTT to the source.
	RetryFactor float64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{RetryFactor: 3} }

// Engine is the source-recovery engine.
type Engine struct {
	opt     Options
	s       *protocol.Session
	pending map[key]sim.Timer
	// parked holds recoveries whose owner is crashed (the pending entry
	// stays, with a zero Timer, so OnDetect still dedupes); OnRecover
	// re-issues them.
	parked map[key]bool
	// served suppresses duplicated requests at the source: a repeat of
	// (requester, seq) within half the requester's retry timeout is a
	// message-plane duplicate, not a retry, and is dropped unanswered.
	served *protocol.DedupCache
}

// dedupCacheSize bounds the served-request dedup cache (see
// protocol.DedupCache); eviction only ever re-serves a duplicate.
const dedupCacheSize = 4096

type key struct {
	c   graph.NodeID
	seq int
}

// request is the payload of a source-recovery request.
type request struct {
	Requester graph.NodeID
}

// New returns a source-recovery engine.
func New(opt Options) *Engine {
	if opt.RetryFactor <= 0 {
		opt.RetryFactor = 3
	}
	return &Engine{
		opt:     opt,
		pending: make(map[key]sim.Timer),
		parked:  make(map[key]bool),
		served:  protocol.NewDedupCache(dedupCacheSize),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "SRC" }

// Attach implements protocol.Engine.
func (e *Engine) Attach(s *protocol.Session) { e.s = s }

// CloneForShard implements protocol.ShardCloner: the engine has no
// precomputed plans, so a shard clone is simply a fresh engine.
func (e *Engine) CloneForShard() protocol.Engine { return New(e.opt) }

// OnDetect implements protocol.Engine. Monotonic guard: a packet the client
// already holds never (re-)enters pending, whatever duplicated or reordered
// signal suggested it.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	k := key{c, seq}
	if _, dup := e.pending[k]; dup {
		return
	}
	if !e.s.Missing(c, seq) {
		return
	}
	e.ask(c, seq)
}

func (e *Engine) ask(c graph.NodeID, seq int) {
	if !e.s.Alive(c) {
		e.pending[key{c, seq}] = sim.Timer{}
		e.parked[key{c, seq}] = true
		return
	}
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: request{Requester: c},
	})
	k := key{c, seq}
	e.pending[k] = e.s.Eng.NewTimer(
		e.opt.RetryFactor*e.s.Routes.RTT(c, e.s.Topo.Source),
		func() {
			if !e.pending[k].Valid() {
				return
			}
			delete(e.pending, k)
			if e.s.Missing(c, seq) {
				e.ask(c, seq)
			}
		})
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		pay, ok := pkt.Payload.(request)
		if !ok {
			e.s.NoteMalformed()
			return
		}
		if !e.s.IsClient(pay.Requester) {
			e.s.NoteMalformed()
			return
		}
		// Retries are spaced RetryFactor·RTT apart, so a repeat inside half
		// that window is a duplicated packet and is dropped unanswered.
		window := 0.5 * e.opt.RetryFactor * e.s.Routes.RTT(host, pay.Requester)
		if e.served.Seen(host, pay.Requester, pkt.Seq, e.s.Eng.Now(), window) {
			return
		}
		if !e.s.Has(host, pkt.Seq) {
			return
		}
		e.s.Net.Unicast(pay.Requester, sim.Packet{Kind: sim.Repair, Seq: pkt.Seq, From: host})
	case sim.Repair:
		k := key{host, pkt.Seq}
		if t, ok := e.pending[k]; ok && t.Valid() {
			t.Stop()
			delete(e.pending, k)
		}
	}
}

// PendingRecoveries reports in-flight recoveries (testing).
func (e *Engine) PendingRecoveries() int { return len(e.pending) }

// OnCrash implements protocol.FaultAware: park the crashed client's retries
// so a permanent crash cannot re-arm timers forever.
func (e *Engine) OnCrash(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		if t := e.pending[k]; t.Valid() {
			t.Stop()
			e.pending[k] = sim.Timer{}
		}
		e.parked[k] = true
	}
}

// OnRecover implements protocol.FaultAware: re-issue the client's parked
// requests.
func (e *Engine) OnRecover(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		if !e.parked[k] {
			continue
		}
		delete(e.parked, k)
		if e.s.Missing(k.c, k.seq) {
			e.ask(k.c, k.seq)
		} else {
			delete(e.pending, k)
		}
	}
}

// keysFor returns h's pending keys in sequence order (deterministic
// resumption — sends draw from the shared rng streams).
func (e *Engine) keysFor(h graph.NodeID) []key {
	var ks []key
	for k := range e.pending {
		if k.c == h {
			ks = append(ks, k)
		}
	}
	slices.SortFunc(ks, func(a, b key) int { return cmp.Compare(a.seq, b.seq) })
	return ks
}

// DedupCaches implements protocol.DedupAudited.
func (e *Engine) DedupCaches() []*protocol.DedupCache {
	return []*protocol.DedupCache{e.served}
}

var (
	_ protocol.Engine       = (*Engine)(nil)
	_ protocol.FaultAware   = (*Engine)(nil)
	_ protocol.DedupAudited = (*Engine)(nil)
)
