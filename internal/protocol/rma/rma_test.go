package rma

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

func oneLossSession(t *testing.T, topo *topology.Network, lossLink graph.EdgeID, e protocol.Engine) *protocol.Session {
	t.Helper()
	topo.Loss[lossLink] = 1
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 42)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(0.5, func() { topo.Loss[lossLink] = 0 })
	return s
}

func TestNearestUpstreamRepairs(t *testing.T) {
	// Chain with side clients: tail loses on its access link; the nearest
	// upstream receiver (deepest meet) is asked first and repairs via
	// subtree multicast.
	topo, err := topology.Chain(3, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	tail := topo.Clients[0]
	c2 := topo.Clients[2] // at r2: nearest upstream receiver of tail
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, tree.ParentLink[tail], e)
	res := s.Run()
	if res.Stats.Losses != 1 || res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Expected latency: unicast tail→c2 (3 hops, 3 ms), then repair
	// travels c2→meet(r2) 1 ms, multicast down r2's subtree to tail 2 ms:
	// total 6 ms.
	if math.Abs(res.Stats.Latency.Mean()-6) > 1e-6 {
		t.Fatalf("latency %v, want 6 (walk via %d)", res.Stats.Latency.Mean(), c2)
	}
	// The chain must have asked c2 first (descending DS).
	chain := e.chain[tail]
	if len(chain) != 2 || chain[0].Peer != c2 {
		t.Fatalf("upstream chain %v, want nearest-first starting at %d", chain, c2)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling walk state")
	}
}

func TestWalkForwardsWhenFirstPeerMisses(t *testing.T) {
	// Loss above both tail and the near peer: the walk visits the near
	// peer (miss), forwards to the far peer (hit), which repairs a
	// subtree covering both losers.
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	b.TreeLink(src, r1, 2)
	shared := b.TreeLink(r1, r2, 1)
	b.TreeLink(r2, r3, 1)
	tail := b.Client()
	b.TreeLink(r3, tail, 1)
	near := b.Client()
	b.TreeLink(r3, near, 1) // same subtree as tail: also loses
	far := b.Client()
	b.TreeLink(r1, far, 1) // above the loss: has the packet
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, shared, e)
	res := s.Run()
	healed := res.Stats.Recoveries + res.Stats.PreDetection
	if healed != 2 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// The repair from far multicasts the subtree under meet(tail, far) =
	// r1 — covering both tail and near with one transmission.
	if res.Stats.Duplicates != 0 {
		// far itself is above; the subtree flood reaches only losers here.
		t.Logf("note: %d duplicate deliveries", res.Stats.Duplicates)
	}
}

func TestSourceFallbackRepairsSubtree(t *testing.T) {
	// Every client loses: all walks end at the source, whose multicast
	// covers the shallowest visited meet's subtree.
	b := topology.NewBuilder()
	src := b.Source()
	r1 := b.Router()
	shared := b.TreeLink(src, r1, 2)
	c1 := b.Client()
	b.TreeLink(r1, c1, 1)
	c2 := b.Client()
	b.TreeLink(r1, c2, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, shared, e)
	res := s.Run()
	healed := res.Stats.Recoveries + res.Stats.PreDetection
	if healed != 2 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(40, p, 23)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 40, Interval: 60}, 29)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete {
			t.Fatalf("p=%v: incomplete", p)
		}
		if res.Stats.Losses == 0 {
			t.Fatalf("p=%v: no losses", p)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %d unrecovered", p, res.Stats.Unrecovered)
		}
		if e.PendingRecoveries() != 0 {
			t.Fatalf("p=%v: dangling walks", p)
		}
	}
}

func TestControlLossFullRecovery(t *testing.T) {
	// Stochastic multi-packet run with recovery traffic itself subject to
	// link loss: walk retries and source fallback must still recover every
	// loss.
	topo, err := topology.Standard(50, 0.15, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	cfg := protocol.Config{Packets: 50, Interval: 50, LossyRecovery: true}
	s, err := protocol.NewSession(topo, e, cfg, 37)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("incomplete run")
	}
	if res.Stats.Losses == 0 {
		t.Fatal("no losses at p=0.15")
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered with lossy control traffic", res.Stats.Unrecovered)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling walks")
	}
}

func TestLostRequestRetries(t *testing.T) {
	// Fully lossy access link kills both the data packet and the first
	// walk; the retry timer must relaunch after healing.
	b := topology.NewBuilder()
	src := b.Source()
	r := b.Router()
	b.TreeLink(src, r, 2)
	c := b.Client()
	link := b.TreeLink(r, c, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10, LossyRecovery: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(100, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Stats.Latency.Mean() < 90 {
		t.Fatalf("latency %v below healing time", res.Stats.Latency.Mean())
	}
}

func TestRepairSuppressionReducesBandwidth(t *testing.T) {
	run := func(suppress bool) *protocol.Result {
		topo, err := topology.Standard(60, 0.1, 61)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.RepairSuppression = suppress
		s, err := protocol.NewSession(topo, New(opt), protocol.Config{Packets: 50, Interval: 50}, 63)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	with := run(true)
	without := run(false)
	if with.Stats.Unrecovered != 0 || without.Stats.Unrecovered != 0 {
		t.Fatal("incomplete recovery")
	}
	if with.Hops.Repair >= without.Hops.Repair {
		t.Fatalf("suppression did not cut repair hops: %d vs %d",
			with.Hops.Repair, without.Hops.Repair)
	}
}
