package rma

import (
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// TestDuplicateRepairIdempotent drives the engine through a lossy run whose
// message plane duplicates every control packet (requests and repairs, up to
// the cap) with jitter. Safety: every loss recovers exactly once — the extra
// copies are booked as duplicates, never as second recoveries (the strict
// invariant oracle enforces the accounting event by event). Liveness: full
// delivery despite the noise.
func TestDuplicateRepairIdempotent(t *testing.T) {
	topo, err := topology.Standard(40, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 20}
	cfg.Fault = (&fault.Schedule{}).SetMutation(&fault.MutationConfig{
		Request: fault.MutationParams{DupProb: 1, MaxDup: 8, MaxDelay: 5},
		Repair:  fault.MutationParams{DupProb: 1, MaxDup: 8, MaxDelay: 5},
	})
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("run hit the event cap")
	}
	if res.Stats.Losses == 0 {
		t.Fatal("no losses — the run exercised nothing")
	}
	if res.Stats.Duplicates == 0 {
		t.Fatal("no duplicates observed — the mutator did not bite")
	}
	if res.DeliveryRatio() != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("delivery %v with %d unrecovered under duplication",
			res.DeliveryRatio(), res.Stats.Unrecovered)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("pending recoveries left behind")
	}
}
