// Package rma implements the RMA baseline (Levine & Garcia-Luna-Aceves,
// reference [19] of the paper): a receiver that lost a packet "attempts to
// achieve the shortest delay from the nearest upstream receiver that has
// received the packet", asking upstream receivers one by one — nearest
// (deepest meet router) first — and the first receiver that holds the
// packet multicasts the repair to the subtree rooted at its meet router
// with the requester, "the subtree that contains all the receivers that
// have been requested".
//
// RMA fits the paper's generic recovery description (§1, §2.2): a
// prioritized list walked one-by-one with per-attempt timeout detection.
// Its list is simply the complete upstream-receiver order; RP's entire
// advantage is replacing that naive order with the optimized sublist from
// the strategy graph. As the paper puts it, RMA's "one-by-one searching is
// just best-effort, not strategic": when the loss sits high in the tree,
// every nearby receiver has lost the packet too, and RMA burns one timeout
// per hopeless neighbour before reaching a holder.
package rma

import (
	"cmp"
	"slices"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the RMA engine.
type Options struct {
	// Timeout is the per-attempt timeout policy (shared shape with RP so
	// the comparison isolates list construction); nil means
	// core.ProportionalTimeout(3).
	Timeout core.TimeoutPolicy
	// RepairSuppression makes a repairer ignore further requests for a
	// packet whose meet router is already covered by a recent repair
	// multicast it sent — the paper's semantics that one repair serves
	// "all the receivers that have been requested". Disabling it makes
	// every concurrent requester cost a full subtree multicast.
	RepairSuppression bool
	// NoHoldFreshRequests disables request holding for packets still in
	// transit to the receiver (see rpproto.Options.NoHoldFreshRequests).
	NoHoldFreshRequests bool
}

// DefaultOptions returns the configuration used in the reproduction.
func DefaultOptions() Options { return Options{RepairSuppression: true} }

// Engine is the RMA protocol engine.
type Engine struct {
	opt Options
	s   *protocol.Session
	// chain is the per-client full upstream receiver order (descending
	// meet depth — nearest upstream first).
	chain   map[graph.NodeID][]core.Candidate
	pending map[key]*attempt
	// repaired records, per (repairer, seq), the root and time of the
	// last repair multicast, for repairer-side suppression.
	repaired map[key]repairMark
	// diameter bounds how long an in-flight repair can take to arrive.
	diameter float64
	// sharedChain/sharedDiameter, when set, are a parent engine's plans
	// adopted verbatim by Attach (shard clones of a partitioned run); the
	// chains are read-only at run time.
	sharedChain    map[graph.NodeID][]core.Candidate
	sharedDiameter float64
	// served suppresses duplicated requests: a repeat of (requester, seq)
	// within half the requester's retry timeout is a message-plane
	// duplicate, not a walk advance, and is dropped unanswered.
	served *protocol.DedupCache
}

// dedupCacheSize bounds the served-request dedup cache (see
// protocol.DedupCache); eviction only ever re-serves a duplicate.
const dedupCacheSize = 4096

type repairMark struct {
	root graph.NodeID
	at   float64
}

type key struct {
	c   graph.NodeID
	seq int
}

type attempt struct {
	idx int // position in the chain; len(chain) means "at source"
	// parked marks a walk whose owner is crashed: no timer runs until
	// OnRecover resumes it.
	parked bool
	timer  sim.Timer
}

// request is the payload of an RMA recovery request.
type request struct {
	Requester graph.NodeID
	// MinDS is the shallowest meet depth among the receivers already
	// asked (including the addressee), telling the source how large a
	// subtree its repair must cover.
	MinDS int32
}

// New returns an RMA engine.
func New(opt Options) *Engine {
	return &Engine{
		opt:      opt,
		pending:  make(map[key]*attempt),
		repaired: make(map[key]repairMark),
		served:   protocol.NewDedupCache(dedupCacheSize),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "RMA" }

func (e *Engine) timeout() core.TimeoutPolicy {
	if e.opt.Timeout == nil {
		return core.ProportionalTimeout(3)
	}
	return e.opt.Timeout
}

// CloneForShard implements protocol.ShardCloner: a fresh engine with the
// same options that adopts this (attached) engine's receiver chains and
// diameter — both read-only at run time — instead of recomputing them.
func (e *Engine) CloneForShard() protocol.Engine {
	cl := New(e.opt)
	cl.sharedChain = e.chain
	cl.sharedDiameter = e.diameter
	return cl
}

// Attach precomputes every client's upstream receiver chain.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	if e.sharedChain != nil {
		e.chain = e.sharedChain
		e.diameter = e.sharedDiameter
		return
	}
	p := core.NewPlanner(s.Tree, s.Routes)
	p.Timeout = e.opt.Timeout
	e.chain = make(map[graph.NodeID][]core.Candidate, len(s.Clients()))
	var deep float64
	for _, c := range s.Clients() {
		// Candidates are already one-per-class in descending DS order —
		// exactly RMA's nearest-upstream-first walk, un-pruned.
		e.chain[c] = p.Candidates(c)
		if d := s.Tree.DelayFromRoot[c]; d > deep {
			deep = d
		}
	}
	e.diameter = 2 * deep
}

// OnDetect implements protocol.Engine: start at the nearest upstream
// receiver. Monotonic guard: a packet the client already holds never
// (re-)enters pending, whatever duplicated or reordered signal suggested it.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	k := key{c, seq}
	if _, dup := e.pending[k]; dup {
		return
	}
	if !e.s.Missing(c, seq) {
		return
	}
	a := &attempt{}
	e.pending[k] = a
	e.send(c, seq, a)
}

// send fires the request for the attempt's current chain position and arms
// the fall-through timer.
func (e *Engine) send(c graph.NodeID, seq int, a *attempt) {
	if !e.s.Alive(c) {
		a.parked = true
		return
	}
	chain := e.chain[c]
	var target graph.NodeID
	var t0 float64
	minDS := e.s.Tree.Depth[c] - 1
	if a.idx < len(chain) {
		target = chain[a.idx].Peer
		t0 = chain[a.idx].Timeout
		minDS = chain[a.idx].DS
	} else {
		target = e.s.Topo.Source
		srcRTT := e.s.Routes.RTT(c, target)
		t0 = e.timeout().Timeout(srcRTT)
		if len(chain) > 0 {
			minDS = chain[len(chain)-1].DS
		}
	}
	e.s.Net.Unicast(target, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c,
		Payload: request{Requester: c, MinDS: minDS},
	})
	a.timer = e.s.Eng.NewTimer(t0, func() { e.expire(c, seq, a) })
}

// expire advances to the next upstream receiver (the source attempt repeats
// until recovery).
func (e *Engine) expire(c graph.NodeID, seq int, a *attempt) {
	k := key{c, seq}
	if e.pending[k] != a || a.parked {
		return
	}
	if !e.s.Missing(c, seq) {
		delete(e.pending, k)
		return
	}
	if a.idx < len(e.chain[c]) {
		a.idx++
	}
	e.send(c, seq, a)
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		pay, ok := pkt.Payload.(request)
		if !ok {
			e.s.NoteMalformed()
			return
		}
		// A forged requester or a MinDS deeper than the requester's own
		// depth would drive Ancestor out of range at the source.
		if !e.s.IsClient(pay.Requester) || pay.MinDS > e.s.Tree.Depth[pay.Requester] {
			e.s.NoteMalformed()
			return
		}
		// Duplicate suppression: retries from one requester are spaced at
		// least a full attempt timeout apart, so a repeat inside half that
		// window is a duplicated packet, not a walk advance.
		window := 0.5 * e.timeout().Timeout(e.s.Routes.RTT(host, pay.Requester))
		if e.served.Seen(host, pay.Requester, pkt.Seq, e.s.Eng.Now(), window) {
			return
		}
		if e.s.Has(host, pkt.Seq) {
			e.repair(host, pkt.Seq, pay)
			return
		}
		if !e.opt.NoHoldFreshRequests && e.s.IsClient(host) {
			if eta := e.s.ExpectedArrival(host, pkt.Seq); eta > e.s.Eng.Now() {
				seq, p2 := pkt.Seq, pay
				e.s.Eng.Schedule(eta+2e-3, func() {
					if e.s.Has(host, seq) {
						e.repair(host, seq, p2)
					}
				})
				return
			}
		}
		// A receiver without the packet stays silent; the requester's
		// timeout advances the walk.
	case sim.Repair:
		k := key{host, pkt.Seq}
		if a := e.pending[k]; a != nil {
			a.timer.Stop()
			delete(e.pending, k)
		}
	}
}

// repair multicasts the lost packet over the subtree containing the
// requester and every receiver already asked, unless a recent repair from
// this host already covers that subtree.
func (e *Engine) repair(host graph.NodeID, seq int, pay request) {
	if !e.s.Alive(host) {
		// Possible via a held request whose hold expires inside the crash
		// window: the multicast would be silently suppressed, so return
		// before the suppression mark claims a repair that never flew.
		return
	}
	t := e.s.Tree
	var root graph.NodeID
	if host == e.s.Topo.Source {
		minDS := pay.MinDS
		if minDS < 1 {
			root = t.Root
		} else {
			root = t.Ancestor(pay.Requester, t.Depth[pay.Requester]-minDS)
		}
	} else {
		root = t.LCA(host, pay.Requester)
	}
	k := key{host, seq}
	if e.opt.RepairSuppression {
		if m, ok := e.repaired[k]; ok && e.s.Eng.Now()-m.at < e.diameter &&
			(m.root == root || t.IsAncestor(m.root, root)) {
			return // the in-flight repair already covers this requester
		}
	}
	e.repaired[k] = repairMark{root: root, at: e.s.Eng.Now()}
	pkt := sim.Packet{Kind: sim.Repair, Seq: seq, From: host}
	switch {
	case root == t.Root && host == e.s.Topo.Source:
		e.s.Net.MulticastFromSource(pkt)
	case host == e.s.Topo.Source:
		e.s.Net.MulticastDescend(root, pkt)
	default:
		e.s.Net.MulticastSubtree(root, pkt)
	}
}

// PendingRecoveries reports in-flight walks (testing).
func (e *Engine) PendingRecoveries() int { return len(e.pending) }

// OnCrash implements protocol.FaultAware: park the crashed client's walks so
// a permanent crash cannot re-arm timers forever.
func (e *Engine) OnCrash(h graph.NodeID) {
	for _, k := range e.pendingKeysFor(h) {
		a := e.pending[k]
		a.timer.Stop()
		a.parked = true
	}
}

// OnRecover implements protocol.FaultAware: resume the client's parked walks
// where they left off.
func (e *Engine) OnRecover(h graph.NodeID) {
	for _, k := range e.pendingKeysFor(h) {
		a := e.pending[k]
		if a.parked {
			a.parked = false
			e.send(k.c, k.seq, a)
		}
	}
}

// pendingKeysFor returns h's walk keys in sequence order (resumption sends
// draw from the shared rng streams, so order must be deterministic).
func (e *Engine) pendingKeysFor(h graph.NodeID) []key {
	var ks []key
	for k := range e.pending {
		if k.c == h {
			ks = append(ks, k)
		}
	}
	slices.SortFunc(ks, func(a, b key) int { return cmp.Compare(a.seq, b.seq) })
	return ks
}

// DedupCaches implements protocol.DedupAudited.
func (e *Engine) DedupCaches() []*protocol.DedupCache {
	return []*protocol.DedupCache{e.served}
}

var (
	_ protocol.Engine       = (*Engine)(nil)
	_ protocol.FaultAware   = (*Engine)(nil)
	_ protocol.DedupAudited = (*Engine)(nil)
)
