package protocol

import "rmcast/internal/graph"

// DedupCache is the engines' bounded duplicate-suppression memory: a
// fixed-capacity record of (host, peer, seq) observations with a last-seen
// time, so an engine can drop a duplicated control packet that arrives
// within a protocol-derived window of its first copy while still honouring
// legitimate retries, which are always spaced wider than the window.
//
// The memory bound is structural, not amortised: a fixed slot ring plus an
// index map that never exceeds the ring. When the ring wraps, the oldest
// insertion is overwritten (FIFO), which can only cause a duplicate to be
// re-processed — wasted bandwidth, never a safety or liveness loss. The
// invariant oracle bound-checks Len against Cap at the end of every run.
//
// Like the rest of the simulator, a cache belongs to a single run.
type DedupCache struct {
	slots []dedupSlot
	idx   map[dedupKey]int
	head  int
}

type dedupKey struct {
	host, peer graph.NodeID
	seq        int
}

type dedupSlot struct {
	key  dedupKey
	at   float64
	used bool
}

// NewDedupCache returns a cache bounded to capacity entries (minimum 1).
func NewDedupCache(capacity int) *DedupCache {
	if capacity < 1 {
		capacity = 1
	}
	return &DedupCache{
		slots: make([]dedupSlot, capacity),
		idx:   make(map[dedupKey]int, capacity),
	}
}

// Seen records the observation (host, peer, seq) at time now and reports
// whether the same key was already observed within window ms — i.e. whether
// this packet is a duplicate the caller should drop. An observation outside
// the window refreshes the entry's time (it is a legitimate retry and opens
// a new suppression window); a hit inside the window does NOT refresh it,
// so a steady duplicate stream cannot starve legitimate retries forever.
func (d *DedupCache) Seen(host, peer graph.NodeID, seq int, now, window float64) bool {
	k := dedupKey{host: host, peer: peer, seq: seq}
	if i, ok := d.idx[k]; ok {
		if now-d.slots[i].at < window {
			return true
		}
		d.slots[i].at = now
		return false
	}
	s := &d.slots[d.head]
	if s.used {
		delete(d.idx, s.key)
	}
	*s = dedupSlot{key: k, at: now, used: true}
	d.idx[k] = d.head
	d.head++
	if d.head == len(d.slots) {
		d.head = 0
	}
	return false
}

// Len returns the live entry count.
func (d *DedupCache) Len() int { return len(d.idx) }

// Cap returns the structural bound.
func (d *DedupCache) Cap() int { return len(d.slots) }

// DedupAudited is optionally implemented by engines whose duplicate-
// suppression caches the invariant oracle should bound-check at the end of
// a run.
type DedupAudited interface {
	DedupCaches() []*DedupCache
}
