package coop

import (
	"reflect"
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// TestBurstWithinREnvelopeNoSourceFallback is the PR's burst-immunity
// acceptance invariant: a per-block loss burst of exactly R consecutive
// packets at one client, with every peer holding the full block, must be
// recovered entirely from peer-relayed coded symbols — one decode, zero
// source fallbacks, zero unrecovered.
func TestBurstWithinREnvelopeNoSourceFallback(t *testing.T) {
	topo, err := topology.Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	e := New(Options{K: 8, R: 4, Fanout: 2, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 16, Interval: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Packets sent at t = 10·i cross the access link at ~10·i+2; the
	// window [15, 55] kills exactly the burst 2, 3, 4, 5 — R = 4 losses
	// in block 0 — at client 0 only.
	s.Eng.Schedule(15, func() { topo.Loss[link] = 1 })
	s.Eng.Schedule(55, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Losses != 4 || res.Stats.Recoveries != 4 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if e.SourceFallbacks() != 0 {
		t.Fatalf("burst ≤ R fell back to the source %d times", e.SourceFallbacks())
	}
	if res.Stats.CodedSymbols == 0 {
		t.Fatal("recovery without any coded symbols — decode path not exercised")
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling block recoveries")
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
}

// TestBurstBeyondRUsesSourceAsLastResort: a burst larger than R exhausts
// what peers can add (every peer re-encodes the same R-symbol space), so
// the engine must escalate to the source — and still recover everything.
func TestBurstBeyondRUsesSourceAsLastResort(t *testing.T) {
	topo, err := topology.Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	e := New(Options{K: 8, R: 4, Fanout: 2, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 16, Interval: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Kill packets 1…5 — five losses against a coded budget of four.
	s.Eng.Schedule(5, func() { topo.Loss[link] = 1 })
	s.Eng.Schedule(55, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Losses != 5 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if e.SourceFallbacks() == 0 {
		t.Fatal("burst > R recovered without the source — impossible")
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling block recoveries")
	}
	_ = c
}

// TestRandomLossFullRecovery drives COOP through the standard random-loss
// regimes every other engine faces.
func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(50, p, 41)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 64, Interval: 20}, 43)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete || res.Stats.Losses == 0 {
			t.Fatalf("p=%v: degenerate run %+v", p, res.Stats)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %d unrecovered", p, res.Stats.Unrecovered)
		}
		if e.PendingRecoveries() != 0 {
			t.Fatalf("p=%v: dangling block recoveries", p)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("p=%v: oracle violations: %v", p, res.Violations)
		}
	}
}

// coopRun executes one 50-router run with the given fault schedule.
func coopRun(t *testing.T, sched *fault.Schedule) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 48, Interval: 20, Fault: sched}
	s, err := protocol.NewSession(topo, New(DefaultOptions()), cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

// TestDuplicationConvergesToCleanResult: symbol- and solicitation-plane
// duplication with zero added delay must leave every observable except the
// duplicate counters and the event count bit-identical to the clean run —
// the bitmask set semantics and the relay dedup window absorb every copy.
func TestDuplicationConvergesToCleanResult(t *testing.T) {
	clean := coopRun(t, nil)
	dup := coopRun(t, &fault.Schedule{Mutation: &fault.MutationConfig{
		Symbol:  fault.MutationParams{DupProb: 0.7, MaxDup: 4},
		Request: fault.MutationParams{DupProb: 0.7, MaxDup: 4},
	}})
	if dup.Stats.Duplicates == 0 && dup.Stats.CodedDuplicates == 0 {
		t.Fatal("mutation injected no duplicates — test is vacuous")
	}
	scrub := func(r *protocol.Result) protocol.Result {
		c := *r
		c.Events = 0
		c.Stats.Duplicates = 0
		c.Stats.CodedDuplicates = 0
		c.Events = 0
		return c
	}
	a, b := scrub(clean), scrub(dup)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("duplication changed observables:\nclean: %+v\ndup:   %+v", a.Stats, b.Stats)
	}
}

// TestReorderingStillDeliversEverything: reorder jitter shifts timing (so
// latency may move) but delivery, recovery completeness and the oracle's
// books must hold.
func TestReorderingStillDeliversEverything(t *testing.T) {
	clean := coopRun(t, nil)
	re := coopRun(t, &fault.Schedule{Mutation: &fault.MutationConfig{
		Symbol:  fault.MutationParams{ReorderProb: 0.5, MaxDelay: 40},
		Request: fault.MutationParams{ReorderProb: 0.5, MaxDelay: 40},
	}})
	if re.Stats.Delivered != clean.Stats.Delivered {
		t.Fatalf("delivered %d under reorder, %d clean", re.Stats.Delivered, clean.Stats.Delivered)
	}
	if re.Stats.Unrecovered != 0 || len(re.Violations) > 0 {
		t.Fatalf("reorder broke recovery: %+v %v", re.Stats, re.Violations)
	}
}

// TestCorruptedSymbolsRejected: symbol corruption (flipped index, truncated
// payload) must land in Malformed, never in the recovery books, and never
// block full delivery.
func TestCorruptedSymbolsRejected(t *testing.T) {
	res := coopRun(t, &fault.Schedule{Mutation: &fault.MutationConfig{
		Symbol: fault.MutationParams{CorruptProb: 0.3},
	}})
	if res.Stats.Malformed == 0 {
		t.Fatal("no malformed count — corruption not exercised")
	}
	if res.Stats.Unrecovered != 0 || len(res.Violations) > 0 {
		t.Fatalf("corruption broke recovery: %+v %v", res.Stats, res.Violations)
	}
}

// TestCrashParkAndResume: a client that crashes mid-recovery must park its
// block solicitations and resume them deterministically on recovery,
// finishing the stream.
func TestCrashParkAndResume(t *testing.T) {
	topo, err := topology.Standard(50, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{}
	sched.CrashWindow(topo.Clients[0], 100, 500)
	sched.CrashWindow(topo.Clients[1], 200, 700)
	cfg := protocol.Config{Packets: 48, Interval: 20, Fault: sched}
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("run hit the event cap: %d events", res.Events)
	}
	if res.Stats.Unrecovered != 0 || res.Stats.UnrecoveredCrashed != 0 {
		t.Fatalf("transient crashes left gaps: %+v", res.Stats)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling block recoveries after resume")
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
}

// TestPermanentCrashDoesNotWedge: a client that crashes forever must not
// keep the event loop alive with re-arming timers; its gaps must be
// classified UnrecoveredCrashed, never Unrecovered.
func TestPermanentCrashDoesNotWedge(t *testing.T) {
	topo, err := topology.Standard(50, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{}
	sched.CrashHost(300, topo.Clients[0])
	cfg := protocol.Config{Packets: 48, Interval: 20, Fault: sched}
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("permanent crash wedged the run: %d events", res.Events)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("dead client's gaps misclassified: %+v", res.Stats)
	}
	if res.Stats.UnrecoveredCrashed == 0 {
		t.Fatalf("crash at t=300 mid-stream lost nothing? %+v", res.Stats)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
}

// TestDeterminism: same seeds, identical results — including under faults
// and mutation.
func TestDeterminism(t *testing.T) {
	mk := func() *protocol.Result {
		sched := &fault.Schedule{Mutation: &fault.MutationConfig{
			Symbol: fault.MutationParams{DupProb: 0.3, ReorderProb: 0.2, MaxDelay: 20, CorruptProb: 0.1},
		}}
		return coopRun(t, sched)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic run:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestName(t *testing.T) {
	if New(DefaultOptions()).Name() != "COOP" {
		t.Fatal("name")
	}
}
