package coop

import (
	"math/bits"
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// FuzzCoopDecode throws arbitrary block geometries, exact per-packet loss
// patterns, and adversarial mutation intensities at full COOP runs with the
// strict invariant oracle on. The loss mask drives a deterministic outage
// window around each marked packet's access-link traversal at the farthest
// client, so the fuzzer explores the whole burst spectrum — isolated
// losses, bursts within and beyond R, whole blocks, block-boundary
// straddles, tail blocks shorter than K. Whatever the pattern, the run
// must terminate, recover every loss, and keep the coded books clean (the
// oracle panics mid-run on any safety divergence; rank and count
// conservation are verified per decode).
func FuzzCoopDecode(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(4), uint64(0b111100), 0.0)
	f.Add(uint64(2), uint8(3), uint8(1), uint64(0xdeadbeef), 0.6)
	f.Add(uint64(3), uint8(0), uint8(63), ^uint64(0), 1.0)
	f.Add(uint64(4), uint8(15), uint8(0), uint64(1)<<40, 0.3)
	f.Fuzz(func(t *testing.T, seed uint64, k, r uint8, lossMask uint64, intensity float64) {
		kk := int(k%16) + 1
		rr := int(r%8) + 1
		packets := 2*kk + kk/2 + 1 // two full blocks plus a short tail
		topo, err := topology.Chain(3, 1, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		tree := mtree.MustBuild(topo)
		c := topo.Clients[0] // the tail client, 4 hops from the source
		link := tree.ParentLink[c]
		e := New(Options{K: kk, R: rr, Fanout: 2, RetryFactor: 3, Slack: 5})
		cfg := protocol.Config{
			Packets: packets, Interval: 10,
			Fault: &fault.Schedule{
				Mutation: fault.MutationFromIntensity(intensity, float64(packets)*10),
			},
		}
		s, err := protocol.NewSession(topo, e, cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Per-link fates are sampled at each packet's send instant
		// (10·i), so the window [10·i−0.5, 10·i+0.5] kills exactly that
		// packet at exactly that client. Recovery traffic stays lossless
		// (the default), so the loss pattern is precisely lossMask.
		want := 0
		for i := 0; i < packets; i++ {
			if lossMask&(1<<uint(i)) == 0 {
				continue
			}
			want++
			at := 10 * float64(i)
			if i == 0 {
				topo.Loss[link] = 1 // packet 0 is sent at t=0
			} else {
				s.Eng.Schedule(at-0.5, func() { topo.Loss[link] = 1 })
			}
			s.Eng.Schedule(at+0.5, func() { topo.Loss[link] = 0 })
		}
		res := s.Run()
		if !res.Complete {
			t.Fatalf("k=%d r=%d mask=%x: run hit the event cap", kk, rr, lossMask)
		}
		if int(res.Stats.Losses) != want {
			t.Fatalf("k=%d r=%d mask=%x: %d losses, mask wants %d (mask=%d bits in range)",
				kk, rr, lossMask, res.Stats.Losses, want, bits.OnesCount64(lossMask))
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("k=%d r=%d mask=%x: %d unrecovered", kk, rr, lossMask, res.Stats.Unrecovered)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("k=%d r=%d mask=%x: oracle violations %v", kk, rr, lossMask, res.Violations)
		}
		if e.PendingRecoveries() != 0 {
			t.Fatalf("k=%d r=%d mask=%x: dangling block recoveries", kk, rr, lossMask)
		}
	})
}
