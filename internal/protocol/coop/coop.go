// Package coop implements COOP, the cooperative coded repair engine — the
// fifth protocol, grounded in coopcast-style symbol relay (libunison /
// RaptorQ) and "Cooperative Data Exchange with Unreliable Clients": loss
// detection triggers block-level symbol solicitation instead of per-seq
// requests.
//
// The data stream is viewed as blocks of K packets protected by R coded
// symbols (a counting-property erasure code, like the FEC baseline: any K
// distinct symbols of the K+R symbol space reconstruct the block). When a
// client detects any loss inside a block it solicits its strategy-ranked
// peers — the same core.Planner/PlanAllInto candidate lists RP plans with —
// each peer being assigned a disjoint, deterministically derived coded
// symbol range, so two peers never relay the same symbol and a duplicated
// solicitation reproduces byte-identical symbol traffic (structural
// idempotency; the session's per-(client, block) symbol bitmask absorbs
// redundant copies the way the request engines' DedupCache absorbs
// duplicated requests). A peer holding the whole block re-encodes and
// relays coded symbols from its assigned range; a peer holding only part
// of it relays the systematic symbols (data verbatim) the requester lacks;
// a peer still expecting the block's data holds the solicitation until the
// block has streamed past, then decides. The client decodes as soon as its
// block rank — data held plus distinct coded symbols — reaches the block
// length. Only when every ranked peer has been exhausted does the client
// fall back to unicast solicitation of the source (counted, bounded, and
// asserted zero for recoverable bursts in the tests): per-block loss
// bursts of up to R packets are recovered entirely from peers.
//
// There is no request/repair pairing for the adversarial message plane to
// mutate: duplicated and reordered symbols are absorbed by set semantics,
// and corrupted symbols (flipped index, truncated payload) fail domain
// validation and count as malformed. Crash/park/resume follows the other
// engines' FaultAware discipline with sorted-key determinism.
package coop

import (
	"cmp"
	"math/bits"
	"slices"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the engine.
type Options struct {
	// K is the data packets per block; R the coded symbols protecting it.
	// Both are clamped to [1, 64] so a block's symbol set fits one word.
	K, R int
	// Fanout is the number of peers solicited per round; the round's
	// coded range [0, R) is partitioned across them.
	Fanout int
	// RetryFactor scales each round's timeout as a multiple of the
	// largest solicited-peer RTT.
	RetryFactor float64
	// Slack is the extra margin (ms) added to every round timeout.
	Slack float64
}

// DefaultOptions returns the standard configuration: 8-packet blocks with
// 4 coded symbols (any per-block burst of ≤ 4 losses peer-recoverable),
// two peers per round.
func DefaultOptions() Options {
	return Options{K: 8, R: 4, Fanout: 2, RetryFactor: 3, Slack: 5}
}

// dedupCacheSize bounds the served-solicitation dedup cache.
const dedupCacheSize = 4096

// holdEps orders a held solicitation's re-decision after the block's final
// same-instant data delivery.
const holdEps = 2e-3

// Engine is the cooperative coded repair engine.
type Engine struct {
	opt Options
	s   *protocol.Session
	// peers are the per-client ranked relay lists, immutable after
	// Attach: the client's optimal strategy peers (core.Planner,
	// Algorithm 1) first, then the remaining candidate classes in the
	// planner's DS order. The extension matters: on shallow topologies
	// Algorithm 1 legitimately returns an empty peer list (asking the
	// source is latency-optimal), but COOP's objective is source
	// offload, so every competitive class is tried before the source.
	// sharedPeers, when non-nil, is a parent engine's map adopted
	// verbatim by shard clones (never mutated).
	peers       map[graph.NodeID][]core.Candidate
	sharedPeers map[graph.NodeID][]core.Candidate
	// recs tracks one in-flight block recovery per (client, block).
	recs map[bkey]*blockRec
	// served suppresses duplicated solicitations at the relay: a repeat
	// of (requester, block) within half the retry window is a message-
	// plane duplicate, not a retry, and is dropped unanswered.
	served *protocol.DedupCache
	// sourceFallbacks counts solicitation rounds directed at the source —
	// the bounded last resort, zero whenever ranked peers can cover the
	// block (asserted by the burst-envelope test).
	sourceFallbacks int64
}

type bkey struct {
	c graph.NodeID
	b int
}

// blockRec is one client's in-flight recovery of one block.
type blockRec struct {
	round  int
	timer  sim.Timer
	parked bool
}

// solicit is the payload of a block solicitation: the requester's current
// holdings (so relays skip known symbols) and the disjoint coded range
// [Lo, Hi) assigned to the addressed peer.
type solicit struct {
	Requester graph.NodeID
	Block     int32
	// Have is the systematic mask: bit i set means the requester holds
	// data sequence Block·K+i. Coded is the coded-index mask.
	Have   uint64
	Coded  uint64
	Lo, Hi int32
}

// New returns a COOP engine.
func New(opt Options) *Engine {
	if opt.K < 1 {
		opt.K = DefaultOptions().K
	}
	if opt.K > 64 {
		opt.K = 64
	}
	if opt.R < 1 {
		opt.R = DefaultOptions().R
	}
	if opt.R > 64 {
		opt.R = 64
	}
	if opt.Fanout < 1 {
		opt.Fanout = DefaultOptions().Fanout
	}
	if opt.RetryFactor <= 0 {
		opt.RetryFactor = DefaultOptions().RetryFactor
	}
	if opt.Slack < 0 {
		opt.Slack = 0
	}
	return &Engine{
		opt:    opt,
		recs:   make(map[bkey]*blockRec),
		served: protocol.NewDedupCache(dedupCacheSize),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "COOP" }

// Attach implements protocol.Engine: enable the session's coded-recovery
// mode (which arms the oracle's coded classification) and plan the ranked
// peer lists.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	if err := s.EnableCodedRecovery(e.opt.K, e.opt.R); err != nil {
		panic("coop: " + err.Error())
	}
	if e.sharedPeers != nil {
		e.peers = e.sharedPeers
		return
	}
	p := core.NewPlanner(s.Tree, s.Routes)
	plans := p.PlanAllInto(nil)
	e.peers = make(map[graph.NodeID][]core.Candidate, len(s.Topo.Clients))
	for _, c := range s.Topo.Clients {
		var list []core.Candidate
		in := make(map[graph.NodeID]bool)
		if st := plans[c]; st != nil {
			list = append(list, st.Peers...)
			for _, cand := range st.Peers {
				in[cand.Peer] = true
			}
		}
		for _, cand := range p.Candidates(c) {
			if !in[cand.Peer] {
				list = append(list, cand)
			}
		}
		e.peers[c] = list
	}
}

// CloneForShard implements protocol.ShardCloner. COOP is eligible for the
// conservative parallel engine by the same argument as RP: it draws no
// protocol-side randomness (solicitation targets, symbol ranges, and
// timeouts are pure functions of the immutable plans), so shard clones
// sharing the parent's strategy map reproduce the serial run bit-for-bit —
// pinned by the parallel golden-digest tests. Configurations outside the
// parallel envelope (queueing, mutation, …) still fall back to serial
// automatically; -simworkers is always safe.
func (e *Engine) CloneForShard() protocol.Engine {
	cl := New(e.opt)
	cl.sharedPeers = e.peers
	return cl
}

// OnDetect implements protocol.Engine: the first detected loss inside a
// block opens its recovery; further detections in the same block ride the
// solicitation already in flight. Monotonic guard: a packet the client
// already holds never opens a recovery, whatever duplicated or reordered
// signal suggested it.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	b := seq / e.opt.K
	k := bkey{c, b}
	if _, dup := e.recs[k]; dup {
		return
	}
	if !e.s.Missing(c, seq) {
		return
	}
	rec := &blockRec{}
	e.recs[k] = rec
	e.solicitRound(c, b, rec)
}

// solicitRound sends one round of block solicitations: the next Fanout
// ranked peers, each assigned a disjoint slice of the coded range [0, R);
// with the peer list exhausted, the source (which can supply everything).
func (e *Engine) solicitRound(c graph.NodeID, b int, rec *blockRec) {
	if !e.s.Alive(c) {
		rec.parked = true
		return
	}
	if e.tryFinish(c, b, rec) {
		return
	}
	lo, hi := e.s.BlockBounds(b)
	k := bkey{c, b}
	if eta := e.s.ExpectedArrival(c, hi-1); eta > e.s.Eng.Now() {
		// The block is still streaming: a solicitation now would ask
		// relays — and the oracle — to repair data the source has not
		// even sent yet, and would carry a stale Have mask. Hold until
		// the block has streamed past, then re-decide (the surviving
		// tail may have closed the gap or raised the rank already).
		rec.timer = e.s.Eng.NewTimer(eta-e.s.Eng.Now()+holdEps, func() {
			if e.recs[k] != rec || rec.parked {
				return
			}
			e.solicitRound(c, b, rec)
		})
		return
	}
	var have uint64
	repSeq := lo // representative in-range header seq: first missing
	for seq, first := lo, true; seq < hi; seq++ {
		if e.s.Has(c, seq) {
			have |= 1 << uint(seq-lo)
		} else if first {
			repSeq, first = seq, false
		}
	}
	sol := solicit{
		Requester: c, Block: int32(b),
		Have: have, Coded: e.s.CodedHeld(c, b),
	}
	peers := e.peers[c]
	start := rec.round * e.opt.Fanout
	var maxTO float64
	if start < len(peers) {
		end := start + e.opt.Fanout
		if end > len(peers) {
			end = len(peers)
		}
		targets := peers[start:end]
		nt := len(targets)
		for i, cand := range targets {
			// Disjoint deterministic ranges partitioning [0, R): the
			// assignment is a pure function of the peer's rank, so a
			// duplicated solicitation is structurally idempotent.
			sol.Lo = int32(i * e.opt.R / nt)
			sol.Hi = int32((i + 1) * e.opt.R / nt)
			e.s.Net.Unicast(cand.Peer, sim.Packet{
				Kind: sim.Request, Seq: repSeq, From: c, Payload: sol,
			})
			if to := e.opt.RetryFactor * e.s.Routes.RTT(c, cand.Peer); to > maxTO {
				maxTO = to
			}
		}
	} else {
		src := e.s.Topo.Source
		e.sourceFallbacks++
		sol.Lo, sol.Hi = 0, int32(e.opt.R)
		e.s.Net.Unicast(src, sim.Packet{
			Kind: sim.Request, Seq: repSeq, From: c, Payload: sol,
		})
		maxTO = e.opt.RetryFactor * e.s.Routes.RTT(c, src)
	}
	// The block has already streamed past the requester, but a relay
	// deeper in the tree may still be expecting it (and holds the
	// solicitation until then) — the RetryFactor'd round trip plus slack
	// covers that skew.
	rec.timer = e.s.Eng.NewTimer(maxTO+e.opt.Slack, func() {
		if e.recs[k] != rec || rec.parked {
			return
		}
		if e.tryFinish(c, b, rec) {
			return
		}
		rec.round++
		e.solicitRound(c, b, rec)
	})
}

// tryFinish closes the block's recovery if it is complete — decoding first
// when the symbol rank suffices. Returns whether the record was retired.
func (e *Engine) tryFinish(c graph.NodeID, b int, rec *blockRec) bool {
	lo, hi := e.s.BlockBounds(b)
	complete := true
	for seq := lo; seq < hi; seq++ {
		if !e.s.Has(c, seq) {
			complete = false
			break
		}
	}
	if !complete && e.s.BlockRank(c, b) >= hi-lo {
		e.s.DecodeBlock(c, b)
		complete = true
	}
	if !complete {
		return false
	}
	if rec.timer.Valid() {
		rec.timer.Stop()
	}
	delete(e.recs, bkey{c, b})
	return true
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		sol, ok := pkt.Payload.(solicit)
		if !ok {
			e.s.NoteMalformed()
			return
		}
		if !e.s.IsClient(sol.Requester) || int(sol.Block) < 0 ||
			int(sol.Block) >= e.s.CodedBlocks() ||
			sol.Lo < 0 || sol.Hi < sol.Lo || int(sol.Hi) > e.opt.R {
			e.s.NoteMalformed()
			return
		}
		// Block-level duplicate suppression, keyed by block number.
		window := 0.5 * e.opt.RetryFactor * e.s.Routes.RTT(host, sol.Requester)
		if e.served.Seen(host, sol.Requester, int(sol.Block), e.s.Eng.Now(), window) {
			return
		}
		e.respond(host, sol)
	case sim.Repair:
		// The session has already validated the symbol and updated the
		// ground truth (data for systematic, rank for coded); the engine
		// only checks whether the block is now recoverable.
		sym, ok := pkt.Payload.(sim.Symbol)
		if !ok {
			return
		}
		b := int(sym.Block)
		if rec, open := e.recs[bkey{host, b}]; open {
			e.tryFinish(host, b, rec)
		}
	}
}

// respond answers one solicitation at relay host. The source re-encodes
// anything; a peer with the whole block re-encodes its assigned coded
// range; a peer with part of it relays the systematic symbols the
// requester lacks; a peer still expecting the block's data holds the
// decision until the block has streamed past.
func (e *Engine) respond(host graph.NodeID, sol solicit) {
	b := int(sol.Block)
	lo, hi := e.s.BlockBounds(b)
	bl := hi - lo
	if host != e.s.Topo.Source {
		full := true
		for seq := lo; seq < hi; seq++ {
			if !e.s.Has(host, seq) {
				full = false
				break
			}
		}
		if !full {
			if eta := e.s.ExpectedArrival(host, hi-1); eta > e.s.Eng.Now() {
				e.s.Eng.Schedule(eta+holdEps, func() { e.respond(host, sol) })
				return
			}
			// Partial holder: systematic relay of what the requester
			// lacks, capped at the assigned range's budget.
			budget := int(sol.Hi - sol.Lo)
			for i := 0; i < bl && budget > 0; i++ {
				if sol.Have&(1<<uint(i)) != 0 || !e.s.Has(host, lo+i) {
					continue
				}
				e.sendSymbol(host, sol.Requester, b, i, lo)
				budget--
			}
			return
		}
		// Full holder: coded symbols from the assigned disjoint range,
		// minus what the requester already reports.
		for j := int(sol.Lo); j < int(sol.Hi); j++ {
			if sol.Coded&(1<<uint(j)) == 0 {
				e.sendSymbol(host, sol.Requester, b, e.opt.K+j, lo)
			}
		}
		return
	}
	// Source: assigned coded range first, then enough systematic symbols
	// to guarantee the decode even when the burst exceeded R.
	rank := bits.OnesCount64(sol.Coded | rangeMask(sol.Lo, sol.Hi))
	for i := 0; i < bl; i++ {
		if sol.Have&(1<<uint(i)) != 0 {
			rank++
		}
	}
	for j := int(sol.Lo); j < int(sol.Hi); j++ {
		if sol.Coded&(1<<uint(j)) == 0 {
			e.sendSymbol(host, sol.Requester, b, e.opt.K+j, lo)
		}
	}
	need := bl - rank
	for i := 0; i < bl && need > 0; i++ {
		if sol.Have&(1<<uint(i)) != 0 {
			continue
		}
		e.sendSymbol(host, sol.Requester, b, i, lo)
		need--
	}
}

// rangeMask returns the bitmask with bits [lo, hi) set.
func rangeMask(lo, hi int32) uint64 {
	var m uint64
	for j := lo; j < hi; j++ {
		m |= 1 << uint(j)
	}
	return m
}

// sendSymbol unicasts one symbol of block b to the requester. Systematic
// symbols carry their data sequence in the header; coded symbols carry the
// block's first sequence as the in-range representative.
func (e *Engine) sendSymbol(from, to graph.NodeID, b, index, lo int) {
	seq := lo
	if index < e.opt.K {
		seq = lo + index
	}
	e.s.Net.Unicast(to, sim.Packet{
		Kind: sim.Repair, Seq: seq, From: from,
		Payload: sim.Symbol{Block: int32(b), Index: int32(index)},
	})
}

// OnCrash implements protocol.FaultAware: park the crashed client's block
// recoveries so a permanent crash cannot re-arm timers forever.
func (e *Engine) OnCrash(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		rec := e.recs[k]
		if rec.timer.Valid() {
			rec.timer.Stop()
			rec.timer = sim.Timer{}
		}
		rec.parked = true
	}
}

// OnRecover implements protocol.FaultAware: resume the client's parked
// block recoveries in block order (deterministic — sends draw from the
// shared rng streams).
func (e *Engine) OnRecover(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		rec := e.recs[k]
		if !rec.parked {
			continue
		}
		rec.parked = false
		if !e.tryFinish(k.c, k.b, rec) {
			e.solicitRound(k.c, k.b, rec)
		}
	}
}

// keysFor returns h's open block keys in block order.
func (e *Engine) keysFor(h graph.NodeID) []bkey {
	var ks []bkey
	for k := range e.recs {
		if k.c == h {
			ks = append(ks, k)
		}
	}
	slices.SortFunc(ks, func(a, b bkey) int { return cmp.Compare(a.b, b.b) })
	return ks
}

// PendingRecoveries reports in-flight block recoveries (testing).
func (e *Engine) PendingRecoveries() int { return len(e.recs) }

// SourceFallbacks reports how many solicitation rounds had to fall back to
// the source — zero whenever ranked peers covered every loss burst.
func (e *Engine) SourceFallbacks() int64 { return e.sourceFallbacks }

// DedupCaches implements protocol.DedupAudited.
func (e *Engine) DedupCaches() []*protocol.DedupCache {
	return []*protocol.DedupCache{e.served}
}

var (
	_ protocol.Engine       = (*Engine)(nil)
	_ protocol.FaultAware   = (*Engine)(nil)
	_ protocol.DedupAudited = (*Engine)(nil)
	_ protocol.ShardCloner  = (*Engine)(nil)
)
