// Package fec implements a proactive parity-based recovery baseline in the
// style of the paper's reference [5] (Nonnenmacher, Biersack, Towsley,
// "Parity-Based Loss Recovery for Reliable Multicast Transmission"): the
// source groups data packets into blocks of K and multicasts R parity
// packets after each block; a client that misses up to R packets of a block
// decodes them locally as soon as it holds any K of the block's K+R
// symbols, with no recovery traffic at all. Losses beyond the parity budget
// fall back to unicast source requests.
//
// The trade-off against RP is the paper's taxonomy in action: FEC pays a
// fixed proactive data-plane overhead of R/K on every block (visible as
// extra Data hops, not recovery hops) to make the common-case recovery
// latency the wait for the block boundary rather than a peer round trip.
// Short blocks recover fast but cost more overhead.
//
// Parity symbols are modelled as opaque packets (an erasure code such as
// Reed–Solomon makes any K of K+R suffice; the simulation needs only the
// counting property, not the algebra).
package fec

import (
	"cmp"
	"fmt"
	"slices"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the FEC engine.
type Options struct {
	// K is the data block size; R the parity count per block.
	K, R int
	// RetryFactor scales the fallback retransmission timeout as a
	// multiple of the client's RTT to the source.
	RetryFactor float64
	// Slack is extra waiting (ms) after a block's parity should have
	// arrived before declaring decode impossible and falling back.
	Slack float64
}

// DefaultOptions returns K=8, R=2 (25% proactive overhead) with a 3×RTT
// fallback.
func DefaultOptions() Options {
	return Options{K: 8, R: 2, RetryFactor: 3, Slack: 5}
}

// Engine is the FEC protocol engine.
type Engine struct {
	opt Options
	s   *protocol.Session
	// paritySeen counts parity symbols held per (client, block).
	paritySeen map[key]int
	// pending tracks fallback timers per (client, seq).
	pending map[key]sim.Timer
	// parked marks fallbacks suspended while their client is crashed; a
	// permanent crash must not keep re-arming retry timers forever.
	parked map[key]bool
}

type key struct {
	c graph.NodeID
	n int // block or seq, per map
}

// parity is the payload of a parity packet; Block identifies the group.
type parity struct {
	Block int
	Index int
}

// request is the payload of a fallback source request.
type request struct {
	Requester graph.NodeID
}

// New returns an FEC engine.
func New(opt Options) *Engine {
	if opt.K <= 0 {
		opt.K = 8
	}
	if opt.R < 0 {
		opt.R = 0
	}
	if opt.RetryFactor <= 0 {
		opt.RetryFactor = 3
	}
	return &Engine{
		opt:        opt,
		paritySeen: make(map[key]int),
		pending:    make(map[key]sim.Timer),
		parked:     make(map[key]bool),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return fmt.Sprintf("FEC(%d,%d)", e.opt.K, e.opt.R) }

// Attach schedules the proactive parity multicasts: R parity packets right
// after each block's last data packet. Parity travels the data plane (it is
// subject to loss like data) with negative sequence numbers so the session
// routes it back to this engine.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	cfg := s.Config()
	src := s.Topo.Source
	blocks := (cfg.Packets + e.opt.K - 1) / e.opt.K
	for b := 0; b < blocks; b++ {
		lastSeq := (b+1)*e.opt.K - 1
		if lastSeq >= cfg.Packets {
			lastSeq = cfg.Packets - 1
		}
		at := float64(lastSeq)*cfg.Interval + 1e-3
		b := b
		for i := 0; i < e.opt.R; i++ {
			i := i
			s.Eng.Schedule(at, func() {
				s.Net.MulticastFromSource(sim.Packet{
					Kind: sim.Data, Seq: -(b + 1), From: src,
					Payload: parity{Block: b, Index: i},
				})
			})
		}
	}
}

// block returns the block number of a data sequence.
func (e *Engine) block(seq int) int { return seq / e.opt.K }

// blockSeqs returns the data sequence range [lo, hi) of a block, clamped to
// the stream length.
func (e *Engine) blockSeqs(b int) (int, int) {
	lo := b * e.opt.K
	hi := lo + e.opt.K
	if n := e.s.Config().Packets; hi > n {
		hi = n
	}
	return lo, hi
}

// decodable reports whether client c holds at least K of block b's symbols
// (data it received or recovered, plus parity), i.e. whether an erasure
// code would reconstruct the rest. For a tail block shorter than K, the
// block length replaces K.
func (e *Engine) decodable(c graph.NodeID, b int) bool {
	lo, hi := e.blockSeqs(b)
	need := hi - lo
	have := e.paritySeen[key{c, b}]
	for seq := lo; seq < hi; seq++ {
		if e.s.Has(c, seq) {
			have++
		}
	}
	return have >= need
}

// tryDecode recovers every outstanding loss of block b at client c if the
// block is decodable now.
func (e *Engine) tryDecode(c graph.NodeID, b int) {
	if !e.decodable(c, b) {
		return
	}
	lo, hi := e.blockSeqs(b)
	for seq := lo; seq < hi; seq++ {
		if e.s.Missing(c, seq) {
			e.s.RecoverLocal(c, seq)
			e.cancel(c, seq)
		}
	}
}

func (e *Engine) cancel(c graph.NodeID, seq int) {
	k := key{c, seq}
	if t, ok := e.pending[k]; ok {
		t.Stop()
		delete(e.pending, k)
	}
	delete(e.parked, k)
}

// OnDetect implements protocol.Engine: wait for the block's parity; if the
// block cannot be decoded by then, fall back to the source.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	b := e.block(seq)
	e.tryDecode(c, b)
	if !e.s.Missing(c, seq) {
		return
	}
	cfg := e.s.Config()
	_, hi := e.blockSeqs(b)
	parityArrive := float64(hi-1)*cfg.Interval + e.s.Net.WouldArrive(c) + e.opt.Slack
	wait := parityArrive - e.s.Eng.Now()
	if wait < 0 {
		wait = 0
	}
	k := key{c, seq}
	e.pending[k] = e.s.Eng.NewTimer(wait+1e-3, func() { e.fallback(c, seq) })
}

// fallback asks the source directly (and keeps retrying).
func (e *Engine) fallback(c graph.NodeID, seq int) {
	k := key{c, seq}
	delete(e.pending, k)
	if !e.s.Missing(c, seq) {
		return
	}
	// One more decode attempt — parity may have landed since.
	e.tryDecode(c, e.block(seq))
	if !e.s.Missing(c, seq) {
		return
	}
	if !e.s.Alive(c) {
		// Crashed mid-cycle: park rather than re-arm, OnRecover resumes.
		e.pending[k] = sim.Timer{}
		e.parked[k] = true
		return
	}
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: request{Requester: c},
	})
	retry := e.opt.RetryFactor * e.s.Routes.RTT(c, e.s.Topo.Source)
	e.pending[k] = e.s.Eng.NewTimer(retry, func() { e.fallback(c, seq) })
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Data:
		// Parity arrival.
		pay, ok := pkt.Payload.(parity)
		if !ok || !e.s.IsClient(host) {
			return
		}
		e.paritySeen[key{host, pay.Block}]++
		e.tryDecode(host, pay.Block)
	case sim.Request:
		pay, ok := pkt.Payload.(request)
		if !ok || !e.s.Has(host, pkt.Seq) {
			return
		}
		e.s.Net.Unicast(pay.Requester, sim.Packet{Kind: sim.Repair, Seq: pkt.Seq, From: host})
	case sim.Repair:
		e.cancel(host, pkt.Seq)
	}
}

// OnCrash implements protocol.FaultAware: stop the crashed client's
// fallback timers and park the keys, so a permanent crash cannot keep the
// event loop alive with retries that can never be answered.
func (e *Engine) OnCrash(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		if t := e.pending[k]; t.Valid() {
			t.Stop()
			e.pending[k] = sim.Timer{}
		}
		e.parked[k] = true
	}
}

// OnRecover implements protocol.FaultAware: resume parked fallbacks in
// sequence order (deterministic), decoding first where parity already
// suffices.
func (e *Engine) OnRecover(h graph.NodeID) {
	for _, k := range e.keysFor(h) {
		if !e.parked[k] {
			continue
		}
		delete(e.parked, k)
		delete(e.pending, k)
		if e.s.Missing(k.c, k.n) {
			e.fallback(k.c, k.n)
		}
	}
}

// keysFor returns h's pending fallback keys in sequence order.
func (e *Engine) keysFor(h graph.NodeID) []key {
	var ks []key
	for k := range e.pending {
		if k.c == h {
			ks = append(ks, k)
		}
	}
	slices.SortFunc(ks, func(a, b key) int { return cmp.Compare(a.n, b.n) })
	return ks
}

// PendingRecoveries reports outstanding fallback timers (testing).
func (e *Engine) PendingRecoveries() int { return len(e.pending) }

var (
	_ protocol.Engine     = (*Engine)(nil)
	_ protocol.FaultAware = (*Engine)(nil)
)
