package fec

import (
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

func TestSingleLossDecodedFromParity(t *testing.T) {
	// One client loses exactly one packet of a block; a single parity
	// symbol must decode it with zero recovery traffic.
	topo, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := New(Options{K: 4, R: 1, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 4, Interval: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Lose only packet 0: heal before packet 1 (t=10).
	s.Eng.Schedule(5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Losses != 1 || res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Local decode: no request or repair traffic at all.
	if res.Hops.Recovery() != 0 {
		t.Fatalf("FEC decode generated recovery traffic: %+v", res.Hops)
	}
	// Parity multicast happened: data hops exceed 4 packets × 3 links.
	if res.Hops.Data <= 4*3 {
		t.Fatalf("no parity traffic visible in data hops: %d", res.Hops.Data)
	}
	// Latency: loss detected at ~3 ms (would-arrive), parity sent at
	// t=30+ε arrives ~33; recovery ≈ 30 ms after detection.
	if res.AvgLatency() < 25 || res.AvgLatency() > 35 {
		t.Fatalf("decode latency %v outside expected ~30 ms", res.AvgLatency())
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling fallback timers")
	}
}

func TestLossBeyondParityFallsBackToSource(t *testing.T) {
	// Lose 2 packets of a K=4,R=1 block: one decode is impossible, the
	// fallback must fetch from the source.
	topo, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := New(Options{K: 4, R: 1, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 4, Interval: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Packets 0 (t=0) and 1 (t=10) lost; heal at t=15.
	s.Eng.Schedule(15, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Losses != 2 || res.Stats.Recoveries != 2 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// With 2 losses and 1 parity: decode covers one missing packet only
	// after the other is fetched; at least one unicast round trip happened.
	if res.Hops.Recovery() == 0 {
		t.Fatal("no fallback traffic despite undecodable block")
	}
}

func TestParityLossHandled(t *testing.T) {
	// The parity itself can be lost; the fallback must still recover.
	topo, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := New(Options{K: 2, R: 1, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 2, Interval: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Packet 0 (t=0) lost. Heal so packet 1 (t=10) survives, break again
	// in the 1 ms gap before the parity send (t=10.001) so the parity is
	// lost, then heal for the fallback.
	s.Eng.Schedule(5, func() { topo.Loss[link] = 0 })
	s.Eng.Schedule(10.0005, func() { topo.Loss[link] = 1 })
	s.Eng.Schedule(10.5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Hops.Recovery() == 0 {
		t.Fatal("expected source fallback after parity loss")
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(50, p, 41)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 64, Interval: 20}, 43)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete || res.Stats.Losses == 0 {
			t.Fatalf("p=%v: degenerate run %+v", p, res.Stats)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %d unrecovered", p, res.Stats.Unrecovered)
		}
		if e.PendingRecoveries() != 0 {
			t.Fatalf("p=%v: dangling timers", p)
		}
		// At 5% loss with R/K=2/8, most blocks decode locally: recovery
		// traffic per recovery must be far below a source round trip for
		// every loss.
		if p == 0.05 {
			perRec := float64(res.Hops.Recovery()) / float64(res.Stats.Recoveries)
			if perRec > 10 {
				t.Fatalf("p=5%%: recovery traffic %v hops/recovery — decode not working?", perRec)
			}
		}
	}
}

func TestTailBlockShorterThanK(t *testing.T) {
	// 10 packets with K=4: tail block has 2 data packets; its parity must
	// still decode single losses.
	topo, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	e := New(Options{K: 4, R: 1, RetryFactor: 3, Slack: 5})
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 10, Interval: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Lose only packet 9 (the last, in the tail block, sent at t=90):
	// lossy from t=89, healed in the 1 ms gap before the parity send.
	s.Eng.Schedule(89, func() { topo.Loss[link] = 1 })
	s.Eng.Schedule(90.0005, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Losses != 1 || res.Stats.Recoveries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Hops.Recovery() != 0 {
		t.Fatalf("tail-block decode used the network: %+v", res.Hops)
	}
}

// TestPermanentCrashMidBlockDoesNotWedge is the FaultAware regression: a
// client that crashes mid-block with fallbacks in flight used to re-arm
// its retry timer forever (the unicast suppressed, the timer not), keeping
// the event loop alive to the cap. The crash must park the fallbacks and
// classify the dead client's gaps as UnrecoveredCrashed.
func TestPermanentCrashMidBlockDoesNotWedge(t *testing.T) {
	topo, err := topology.Standard(50, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{}
	// Crash mid-stream, inside a block, after losses have been detected.
	sched.CrashHost(300, topo.Clients[0])
	e := New(DefaultOptions())
	cfg := protocol.Config{Packets: 48, Interval: 20, Fault: sched}
	s, err := protocol.NewSession(topo, e, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("permanent crash wedged the run: %d events", res.Events)
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("dead client's gaps misclassified: %+v", res.Stats)
	}
	if res.Stats.UnrecoveredCrashed == 0 {
		t.Fatalf("crash at t=300 mid-stream lost nothing? %+v", res.Stats)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
}

// TestCrashAndResumeFinishesStream: a transient crash parks the client's
// fallbacks and resumes them on recovery; the stream must still complete
// for every client.
func TestCrashAndResumeFinishesStream(t *testing.T) {
	topo, err := topology.Standard(50, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{}
	sched.CrashWindow(topo.Clients[0], 100, 500)
	sched.CrashWindow(topo.Clients[1], 200, 700)
	e := New(DefaultOptions())
	cfg := protocol.Config{Packets: 48, Interval: 20, Fault: sched}
	s, err := protocol.NewSession(topo, e, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("run hit the event cap: %d events", res.Events)
	}
	if res.Stats.Unrecovered != 0 || res.Stats.UnrecoveredCrashed != 0 {
		t.Fatalf("transient crashes left gaps: %+v", res.Stats)
	}
	if e.PendingRecoveries() != 0 {
		t.Fatal("dangling fallback timers after resume")
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
}

func TestName(t *testing.T) {
	if New(Options{K: 8, R: 2}).Name() != "FEC(8,2)" {
		t.Fatal("name format")
	}
	var _ graph.NodeID // keep import balanced if assertions change
}
