package protocol_test

// Race hammer for the conservative parallel runner: a moderately sized
// tree-topology RP run sharded across 4 workers, with crash and link-outage
// windows so host-transition events, deferred detections, and cross-shard
// repair traffic all exercise the outbox/ingest machinery. The test lives in
// an external package so it can attach a real engine (rpproto imports
// protocol, so an internal test file cannot).
//
// Under `go test -race` this is the gate that the shard pool, the window
// barriers, and the shared read-only state (routes, fault state, oracle sent
// rows) are free of data races. Without -race it doubles as a field-level
// serial/parallel parity check on a topology much larger than the golden
// cell.

import (
	"reflect"
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/protocol"
	"rmcast/internal/protocol/rpproto"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func raceTopo(t *testing.T) *topology.Network {
	t.Helper()
	cfg := topology.DefaultTreeConfig(320)
	net, err := topology.GenerateTree(cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func raceRun(t *testing.T, topo *topology.Network, workers int) *protocol.Result {
	t.Helper()
	sched := &fault.Schedule{}
	sched.CrashWindow(topo.Clients[7], 100, 500)
	sched.CrashWindow(topo.Clients[150], 250, 800)
	sched.CrashWindow(topo.Clients[311], 600, 1200)
	sched.LinkDownWindow(topo.TreeEdges[3], 150, 400)
	sched.LinkDownWindow(topo.TreeEdges[40], 450, 700)
	cfg := protocol.Config{Packets: 25, Interval: 40, Fault: sched, SimWorkers: workers}
	s, err := protocol.NewSession(topo, rpproto.New(rpproto.DefaultOptions()), cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if workers >= 2 && !s.ParallelEligible() {
		t.Fatal("run unexpectedly ineligible for sharding — the hammer would not cross shards")
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("incomplete run")
	}
	if len(res.Violations) > 0 {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	return res
}

// TestParallelRaceHammer runs the sharded path with 4 workers on a 320-client
// tree (K = 8 shards) and asserts the result is field-identical to the
// serial run. Run under -race, it hammers every cross-shard synchronization
// point; the CI test-race job picks it up automatically.
func TestParallelRaceHammer(t *testing.T) {
	topo := raceTopo(t)
	serial := raceRun(t, topo, 0)
	parallel := raceRun(t, topo, 4)
	// The execution-mode fields legitimately differ (the parallel run
	// reports Sharded); parity is about the simulation outcome.
	if !parallel.Sharded {
		t.Fatal("parallel run did not shard")
	}
	parallel.Sharded, parallel.SerialReason = serial.Sharded, serial.SerialReason
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
