package protocol_test

// Tests for the serial-fallback bookkeeping: when a run requests sharding
// (SimWorkers >= 2) the result must say whether it actually sharded, and if
// not, why — the reason rmsim surfaces to the user.

import (
	"strings"
	"testing"

	"rmcast/internal/protocol"
	"rmcast/internal/protocol/rpproto"
	"rmcast/internal/protocol/srm"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func reasonTopo(t *testing.T) *topology.Network {
	t.Helper()
	cfg := topology.DefaultTreeConfig(64)
	net, err := topology.GenerateTree(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func reasonRun(t *testing.T, e protocol.Engine, cfg protocol.Config) *protocol.Result {
	t.Helper()
	s, err := protocol.NewSession(reasonTopo(t), e, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("incomplete run")
	}
	return res
}

func TestSerialReasonReported(t *testing.T) {
	base := protocol.Config{Packets: 10, Interval: 20, SimWorkers: 4}

	// An engine with no ShardCloner must fall back and name itself.
	res := reasonRun(t, srm.New(srm.DefaultOptions()), base)
	if res.Sharded {
		t.Fatal("SRM claimed to have sharded")
	}
	if !strings.Contains(res.SerialReason, "SRM") {
		t.Fatalf("fallback reason does not name the engine: %q", res.SerialReason)
	}

	// An eligible run shards and carries no reason.
	res = reasonRun(t, rpproto.New(rpproto.DefaultOptions()), base)
	if !res.Sharded {
		t.Fatalf("eligible RP run did not shard: %q", res.SerialReason)
	}
	if res.SerialReason != "" {
		t.Fatalf("sharded run carries a fallback reason: %q", res.SerialReason)
	}

	// A run that never requested sharding reports neither.
	serial := base
	serial.SimWorkers = 0
	res = reasonRun(t, srm.New(srm.DefaultOptions()), serial)
	if res.Sharded || res.SerialReason != "" {
		t.Fatalf("serial-by-default run got parallel bookkeeping: sharded=%v reason=%q",
			res.Sharded, res.SerialReason)
	}
}
