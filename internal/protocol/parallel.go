// Conservative parallel execution of one session (Config.SimWorkers ≥ 2):
// a Chandy–Misra–Bryant-style windowed runner over tree shards.
//
// The multicast tree is partitioned into K contiguous preorder bands of
// routers, hosts riding with their access router (mtree.PartitionTree). Each
// shard gets its own event engine, network instance, and protocol-engine
// clone; a host's events execute only on its owner shard. Cross-shard
// packets are the only coupling: a path from one shard to another crosses at
// least one cut link, so a remote delivery arrives no earlier than its send
// time plus the partition lookahead Δ. The runner therefore alternates
//
//	ingest:  hand every outbox delivery to its owner shard
//	window:  each shard executes all events in [T0, T0+Δ)
//
// where T0 is the earliest pending instant anywhere. Every event executed in
// a window was already present — with its final timestamp — when the window
// opened, because anything a remote shard might still produce lands at or
// past the horizon. Barriers between phases make the shared reads
// (fault-state lookups, the oracle's sent vector, sentAt) race-free.
//
// Bit-identity with the serial engine holds because, in the configurations
// the runner accepts, the only rng consumer during a run is the data-plane
// loss stream — and data floods execute entirely on the source's shard,
// which owns the exact netRand stream the serial run would use (the
// remaining streams are re-derived in the serial split order, plus one
// rng.SplitN stream per shard for future shard-local draws). Everything
// else is a pure function of event times, which the window protocol
// preserves; order-dependent accumulators (Welford latency) are replayed in
// global time order at merge. Configurations outside that envelope —
// queueing, jitter, lossy recovery, gap/session detection, burst or
// mutation faults, tracing hooks, engines without CloneForShard — fall back
// to the serial path, which stays byte-for-byte untouched.
package protocol

import (
	"fmt"
	"math"
	"runtime/debug"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"rmcast/internal/check"
	"rmcast/internal/core"
	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/metrics"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/sim"
)

// ShardCloner is implemented by protocol engines that can run partitioned:
// CloneForShard returns a fresh engine sharing this (already attached)
// engine's immutable plans, to be attached to one shard's sub-session. A nil
// return means the engine's current options cannot be sharded (e.g. a
// run-time replanning layer), forcing the serial fallback.
type ShardCloner interface {
	Engine
	CloneForShard() Engine
}

// shardCount fixes K as a pure function of the group size — never of the
// worker count — so results are invariant under SimWorkers by construction:
// any worker count simulates the same K logical shards.
func shardCount(clients int) int {
	k := clients / 8
	if k > 8 {
		k = 8
	}
	if k < 2 {
		k = 2
	}
	return k
}

// minParallelClients is the smallest group worth partitioning (below it the
// window overhead dwarfs the work).
const minParallelClients = 16

// parallelEligible returns the engine's shard-cloning interface when the
// whole configuration lies inside the parallel runner's exactness envelope,
// or nil plus a human-readable reason otherwise (see the package comment for
// the envelope's rationale). The reason is surfaced through
// Result.SerialReason so callers stop guessing why a -simworkers run stayed
// serial.
func (s *Session) parallelEligible() (ShardCloner, string) {
	if s.cfg.SimWorkers < 2 {
		return nil, ""
	}
	cl, ok := s.engine.(ShardCloner)
	if !ok {
		return nil, fmt.Sprintf("engine %s cannot be sharded (no CloneForShard)", s.engine.Name())
	}
	if s.cfg.Detection != DetectIdeal {
		return nil, "non-ideal loss detection (gap/session detection is order-sensitive)"
	}
	if s.Trace != nil {
		return nil, "trace hooks installed (global event order would be lost)"
	}
	// Net-level modes (set from cfg, but tests may also set them directly).
	if s.Net.Queue != nil {
		return nil, "queued routers (queueing state is order-sensitive)"
	}
	if s.Net.Jitter != 0 {
		return nil, "link jitter draws from an order-sensitive rng stream"
	}
	if s.Net.ControlLoss {
		return nil, "lossy control plane draws from an order-sensitive rng stream"
	}
	if s.Net.OnSend != nil || s.Net.OnDrop != nil {
		return nil, "net-level observation hooks installed"
	}
	if len(s.Topo.Clients) < minParallelClients {
		return nil, fmt.Sprintf("group too small to shard (%d clients < %d)",
			len(s.Topo.Clients), minParallelClients)
	}
	if f := s.cfg.Fault; !f.Empty() {
		// Crash/outage windows are pure time lookups and shard cleanly;
		// burst chains and the message mutator draw from streams whose
		// order a partitioned run cannot reproduce.
		if len(f.Burst) > 0 {
			return nil, "burst-loss faults draw from order-sensitive rng chains"
		}
		if !f.Mutation.Empty() {
			return nil, "message-plane mutation draws from an order-sensitive rng stream"
		}
	}
	return cl, ""
}

// shardRun is one shard's execution state.
type shardRun struct {
	eng       *sim.Engine
	net       *sim.Net
	sub       *Session
	engine    Engine
	owned     []int // client indices this shard owns, ascending
	processed uint64
	ingest    []sim.RemoteDelivery // scratch for the ingest phase
}

// planParallel resolves the eligibility check into a concrete partition,
// returning nils plus a reason when the run must stay serial (ineligible
// configuration, degenerate partition, or no usable lookahead).
func (s *Session) planParallel() (ShardCloner, *mtree.Partition, string) {
	cloner, reason := s.parallelEligible()
	if cloner == nil {
		return nil, nil, reason
	}
	if s.cfg.DomainClients > 0 {
		// Hierarchical-domain mode: the domain count is ⌈clients/DomainClients⌉
		// — a pure function of the tree and the domain size, never of the
		// worker count, so domain runs keep the worker-invariance property of
		// the classic partition.
		part := mtree.PartitionDomains(s.Tree, s.cfg.DomainClients)
		if part.K < 2 {
			return nil, nil, fmt.Sprintf(
				"domain mode: group fits a single domain (%d clients ≤ %d per domain)",
				len(s.Topo.Clients), s.cfg.DomainClients)
		}
		if part.Lookahead <= 0 || math.IsInf(part.Lookahead, 1) {
			return nil, nil, "domain mode: degenerate domain partition (no usable lookahead)"
		}
		return cloner, part, ""
	}
	part := mtree.PartitionTree(s.Tree, shardCount(len(s.Topo.Clients)))
	if part.K < 2 || part.Lookahead <= 0 || math.IsInf(part.Lookahead, 1) {
		return nil, nil, "degenerate tree partition (no usable lookahead)"
	}
	return cloner, part, ""
}

// ParallelEligible reports whether Run will genuinely execute sharded under
// the current configuration — false means Config.SimWorkers (if ≥ 2) would
// silently fall back to the serial path. The scaling sweep uses it to label
// its speedup cells honestly.
func (s *Session) ParallelEligible() bool {
	cloner, part, _ := s.planParallel()
	return cloner != nil && part != nil && cloner.CloneForShard() != nil
}

// runSharded executes the session on the conservative parallel engine,
// returning nil when the configuration requires the serial path (recording
// why in s.serialReason for the serial Result to surface).
func (s *Session) runSharded() *Result {
	cloner, part, reason := s.planParallel()
	if cloner == nil {
		if s.cfg.SimWorkers >= 2 {
			s.serialReason = reason
		}
		return nil
	}
	k := part.K
	if part.ShardOf[s.Topo.Source] != 0 {
		// The runner assumes the source's shard owns the serial netRand
		// stream; the partitioner guarantees shard 0.
		panic("protocol: source not on shard 0")
	}
	engines := make([]Engine, k)
	for i := range engines {
		if engines[i] = cloner.CloneForShard(); engines[i] == nil {
			s.serialReason = fmt.Sprintf(
				"engine %s cannot shard under its current options (run-time replanning or failover)",
				s.engine.Name())
			return nil
		}
	}

	// Re-derive the serial run's rng stream layout: netRand (the only
	// stream that draws in eligible runs — data-plane loss, on the source's
	// shard), protoRand, the fault state's stream, then one SplitN stream
	// per shard for the other shards' nets.
	root := rng.New(s.seed)
	netRand := root.Split()
	protoRand := root.Split()
	_ = protoRand
	var faultState *fault.State
	if !s.cfg.Fault.Empty() {
		faultState = fault.NewState(s.cfg.Fault, root.Split())
	}
	shardRands := root.SplitN(k)

	// Shared read-only state: the host set, the precomputed send schedule,
	// and (under checking) the oracle's sent vector.
	hosts := make([]bool, s.numNodes)
	for _, c := range s.Topo.Clients {
		hosts[c] = true
	}
	hosts[s.Topo.Source] = true
	for seq := 0; seq < s.cfg.Packets; seq++ {
		s.sentAt[seq] = float64(seq) * s.cfg.Interval
	}
	var sent []bool
	var master *check.Oracle
	if s.cfg.Check != CheckOff {
		sent = make([]bool, s.cfg.Packets)
		master = check.NewShard(len(s.Topo.Clients), s.cfg.Packets,
			s.cfg.Check == CheckStrict, sent)
	}

	// One tree adjacency (CSR) shared read-only by every shard's net: at a
	// million clients the per-net copy would multiply the largest flooding
	// structure by the domain count.
	adj := sim.NewTreeAdjacency(s.Topo)
	shards := make([]*shardRun, k)
	for i := 0; i < k; i++ {
		shards[i] = s.buildShard(int32(i), part, engines[i], hosts, sent,
			netRand, shardRands[i], faultState, adj)
	}

	maxEvents := s.cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	workers := s.cfg.SimWorkers
	if workers > k {
		workers = k
	}
	pool := newShardPool(workers, k)
	defer pool.close()

	delta := part.Lookahead
	var total uint64
	for total < maxEvents {
		// T0: the earliest pending instant anywhere — heap tops plus
		// still-unhanded outbox deliveries from the previous window.
		t0 := math.Inf(1)
		for _, sh := range shards {
			if at, ok := sh.eng.NextEventAt(); ok && at < t0 {
				t0 = at
			}
			for _, rd := range sh.net.Outbox() {
				if rd.At < t0 {
					t0 = rd.At
				}
			}
		}
		if math.IsInf(t0, 1) {
			break // quiesced
		}
		horizon := t0 + delta
		// Ingest: each shard collects its own arrivals from every outbox in
		// shard order, time-sorted (stably, so equal instants keep a
		// deterministic order), and schedules them locally.
		pool.each(func(i int) {
			sh := shards[i]
			buf := sh.ingest[:0]
			for _, src := range shards {
				for _, rd := range src.net.Outbox() {
					if rd.Dst == int32(i) {
						buf = append(buf, rd)
					}
				}
			}
			sort.SliceStable(buf, func(a, b int) bool { return buf[a].At < buf[b].At })
			for _, rd := range buf {
				sh.net.InjectRemote(rd.At, rd.Node, rd.Pkt)
			}
			sh.ingest = buf
		})
		// Window: each shard clears its (fully ingested) outbox and drains
		// its calendar up to the horizon, emitting next window's traffic.
		pool.each(func(i int) {
			sh := shards[i]
			sh.net.ResetOutbox()
			sh.processed += sh.eng.RunBefore(horizon)
		})
		total = 0
		for _, sh := range shards {
			total += sh.processed
		}
	}

	complete := true
	endTime := 0.0
	for _, sh := range shards {
		if sh.eng.Pending() > 0 || len(sh.net.Outbox()) > 0 {
			complete = false
		}
		if t := sh.eng.Now(); t > endTime {
			endTime = t
		}
	}
	res := s.mergeShards(shards, master, faultState, total, endTime, complete)
	if s.cfg.DomainClients > 0 {
		// Execution metadata only — both fields are outside the result digest,
		// so a domain run hashes identically to its serial twin.
		res.Domains = k
		res.Aggregators = core.DomainAggregators(s.Tree, part)
	}
	return res
}

// buildShard assembles one shard's engine, network, and sub-session, and
// schedules the shard's slice of the send/detect program.
func (s *Session) buildShard(id int32, part *mtree.Partition, engine Engine,
	hosts, sent []bool, netRand, shardRand *rng.Rand, faultState *fault.State,
	adj *sim.TreeAdjacency) *shardRun {
	eng := sim.NewEngine()
	r := shardRand
	if id == 0 {
		r = netRand
	}
	net := sim.NewNetShared(eng, s.Topo, s.Tree, s.Routes, r, adj)
	net.EnableShard(id, part.ShardOf, hosts)
	clients := len(s.Topo.Clients)
	sub := &Session{
		Eng:       eng,
		Net:       net,
		Topo:      s.Topo,
		Tree:      s.Tree,
		Routes:    s.Routes,
		Rand:      shardRand,
		cfg:       s.cfg,
		engine:    engine,
		seed:      s.seed,
		clientIdx: s.clientIdx,
		received:  make([][]bool, clients),
		detectAt:  make([][]float64, clients),
		sentAt:    s.sentAt,
		nextExp:   make([]int, clients),
		latHist:   metrics.NewHistogram(0, 5000, 500),
		perClient: make([]metrics.Summary, clients),
		numNodes:  s.numNodes,
		latLogOn:  true,
	}
	if sent != nil {
		sub.oracle = check.NewShard(clients, s.cfg.Packets,
			s.cfg.Check == CheckStrict, sent)
	}
	sh := &shardRun{eng: eng, net: net, sub: sub, engine: engine}
	for i, c := range s.Topo.Clients {
		if part.ShardOf[c] != id {
			continue // rows stay nil: an ownership violation faults loudly
		}
		sh.owned = append(sh.owned, i)
		sub.received[i] = make([]bool, s.cfg.Packets)
		sub.detectAt[i] = make([]float64, s.cfg.Packets)
		for j := range sub.detectAt[i] {
			sub.detectAt[i][j] = math.NaN()
		}
		c := c
		net.SetHandler(c, func(pkt sim.Packet) { sub.onDeliver(c, pkt) })
	}
	if id == 0 {
		src := s.Topo.Source
		net.SetHandler(src, func(pkt sim.Packet) { sub.onDeliver(src, pkt) })
	}
	engine.Attach(sub)
	if faultState != nil {
		net.InstallFaultShared(faultState)
		fa, _ := engine.(FaultAware)
		net.OnCrash = func(h graph.NodeID) {
			if fa != nil {
				fa.OnCrash(h)
			}
		}
		net.OnRecover = func(h graph.NodeID) {
			if fa != nil {
				fa.OnRecover(h)
			}
		}
	}
	// The shard's slice of the serial send/detect program, in the serial
	// scheduling order (seq-major, then client) so same-instant events keep
	// their serial relative order within the shard. The detect program alone
	// is Packets × owned events resident at once; reserving up front avoids
	// the growth overshoot (up to 2× the steady calendar) per domain.
	eng.Reserve(s.cfg.Packets * (len(sh.owned) + 2))
	for seq := 0; seq < s.cfg.Packets; seq++ {
		at := s.sentAt[seq]
		if id == 0 {
			eng.ScheduleCall(at, sub, opSendData, seq, 0)
		}
		for _, i := range sh.owned {
			c := s.Topo.Clients[i]
			when := at + net.WouldArrive(c) + s.cfg.DetectLag + detectEps
			eng.ScheduleCall(when, sub, opDetect, i, seq)
		}
	}
	return sh
}

// mergeShards folds the per-shard outcomes into one Result, exactly equal to
// what the serial engine would report: integer counters and histogram
// buckets sum; the order-dependent Welford latency summary is replayed from
// the stamped logs in global time order; classification and the oracle's
// finish run once, centrally, over the assembled global state.
func (s *Session) mergeShards(shards []*shardRun, master *check.Oracle,
	faultState *fault.State, total uint64, endTime float64, complete bool) *Result {
	var st Stats
	var hops, drops sim.HopCount
	type stamped struct {
		latSample
		shard int
	}
	var lats []stamped
	received := make([][]bool, len(s.Topo.Clients))
	detectAt := make([][]float64, len(s.Topo.Clients))
	perClient := make([]metrics.Summary, len(s.Topo.Clients))
	latHist := metrics.NewHistogram(0, 5000, 500)
	for si, sh := range shards {
		st.Losses += sh.sub.stats.Losses
		st.Recoveries += sh.sub.stats.Recoveries
		st.Duplicates += sh.sub.stats.Duplicates
		st.PreDetection += sh.sub.stats.PreDetection
		st.DataDeliveries += sh.sub.stats.DataDeliveries
		st.LateData += sh.sub.stats.LateData
		st.Malformed += sh.sub.stats.Malformed
		st.CodedSymbols += sh.sub.stats.CodedSymbols
		st.CodedDuplicates += sh.sub.stats.CodedDuplicates
		st.Failovers += sh.sub.stats.Failovers
		st.FencedStale += sh.sub.stats.FencedStale
		hops.Data += sh.net.Hops.Data
		hops.Request += sh.net.Hops.Request
		hops.Repair += sh.net.Hops.Repair
		drops.Data += sh.net.Drops.Data
		drops.Request += sh.net.Drops.Request
		drops.Repair += sh.net.Drops.Repair
		latHist.Merge(sh.sub.latHist)
		for _, e := range sh.sub.latLog {
			lats = append(lats, stamped{e, si})
		}
		for _, i := range sh.owned {
			received[i] = sh.sub.received[i]
			detectAt[i] = sh.sub.detectAt[i]
			perClient[i] = sh.sub.perClient[i]
		}
	}
	// Replay in global event-time order; the stable sort keeps equal
	// instants in (shard, local) order, deterministically.
	slices.SortStableFunc(lats, func(a, b stamped) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
	for _, e := range lats {
		st.Latency.Add(e.lat)
	}

	down := make([]bool, len(s.Topo.Clients))
	for i, c := range s.Topo.Clients {
		down[i] = faultState != nil && !faultState.HostUpAt(c, endTime)
		for seq, got := range received[i] {
			switch {
			case got:
				st.Delivered++
			case down[i]:
				st.UnrecoveredCrashed++
			case !math.IsNaN(detectAt[i][seq]):
				st.Unrecovered++
			}
		}
	}

	var violations []string
	if master != nil {
		for _, sh := range shards {
			if da, ok := sh.engine.(DedupAudited); ok {
				for _, cache := range da.DedupCaches() {
					master.CheckBound(sh.engine.Name()+" dedup cache", cache.Len(), cache.Cap())
				}
			}
			master.Absorb(sh.sub.oracle, sh.owned)
		}
		violations = master.Finish(complete, down, check.Totals{
			Losses:             st.Losses,
			Recoveries:         st.Recoveries,
			Duplicates:         st.Duplicates,
			PreDetection:       st.PreDetection,
			DataDeliveries:     st.DataDeliveries,
			LateData:           st.LateData,
			Malformed:          st.Malformed,
			CodedSymbols:       st.CodedSymbols,
			CodedDuplicates:    st.CodedDuplicates,
			Failovers:          st.Failovers,
			FencedStale:        st.FencedStale,
			Delivered:          st.Delivered,
			Unrecovered:        st.Unrecovered,
			UnrecoveredCrashed: st.UnrecoveredCrashed,
			DataHops:           hops.Data,
			RequestHops:        hops.Request,
			RepairHops:         hops.Repair,
			DataDrops:          drops.Data,
			RequestDrops:       drops.Request,
			RepairDrops:        drops.Repair,
		})
	}
	perClientMap := make(map[graph.NodeID]metrics.Summary, len(s.Topo.Clients))
	for i, c := range s.Topo.Clients {
		perClientMap[c] = perClient[i]
	}
	return &Result{
		Violations:       violations,
		PerClientLatency: perClientMap,
		Protocol:         s.engine.Name(),
		Clients:          len(s.Topo.Clients),
		Packets:          s.cfg.Packets,
		Stats:            st,
		Hops:             hops,
		Drops:            drops,
		Events:           total,
		SimTime:          endTime,
		LatencyHist:      latHist,
		Complete:         complete,
		Sharded:          true,
	}
}

// shardPool runs one function over every shard index on a fixed set of
// worker goroutines, with a barrier per call. Shards are claimed through an
// atomic counter, so an uneven shard finishes early and its worker steals
// the next one.
type shardPool struct {
	workers int
	shards  int
	work    chan func(int)
	wg      sync.WaitGroup
	next    atomic.Int64
	failure atomic.Pointer[shardPanic]
}

// shardPanic carries the first panic out of a worker goroutine.
type shardPanic struct {
	val   interface{}
	stack []byte
}

func newShardPool(workers, shards int) *shardPool {
	p := &shardPool{workers: workers, shards: shards, work: make(chan func(int))}
	for w := 0; w < workers; w++ {
		go func() {
			for f := range p.work {
				for {
					i := int(p.next.Add(1)) - 1
					if i >= p.shards {
						break
					}
					p.runOne(f, i)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// runOne executes f on one shard, capturing the first panic for the
// coordinator (a panicking worker must still reach wg.Done, or the barrier
// deadlocks).
func (p *shardPool) runOne(f func(int), i int) {
	defer func() {
		if r := recover(); r != nil {
			p.failure.CompareAndSwap(nil, &shardPanic{val: r, stack: debug.Stack()})
		}
	}()
	f(i)
}

// each runs f(i) for every shard index and blocks until all are done,
// re-raising the first shard panic on the caller.
func (p *shardPool) each(f func(int)) {
	p.next.Store(0)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.work <- f
	}
	p.wg.Wait()
	if fp := p.failure.Load(); fp != nil {
		panic(fmt.Sprintf("protocol: shard worker panic: %v\n%s", fp.val, fp.stack))
	}
}

func (p *shardPool) close() { close(p.work) }
