package srm

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

func oneLossSession(t *testing.T, topo *topology.Network, lossLink graph.EdgeID, e protocol.Engine) *protocol.Session {
	t.Helper()
	topo.Loss[lossLink] = 1
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 42)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(0.5, func() { topo.Loss[lossLink] = 0 })
	return s
}

func TestSingleLossRecoveredByFlood(t *testing.T) {
	topo, err := topology.Chain(3, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	tail := topo.Clients[0]
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, tree.ParentLink[tail], e)
	res := s.Run()
	if res.Stats.Losses != 1 || res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// One NACK flood + one repair flood: both traverse every tree edge.
	edges := int64(tree.NumTreeEdges())
	if res.Hops.Request < edges || res.Hops.Repair < edges {
		t.Fatalf("floods did not cover the tree: %+v (edges %d)", res.Hops, edges)
	}
	// SRM latency includes the request suppression timer: strictly more
	// than the raw source RTT.
	srcRTT := 2 * s.Routes.OneWayDelay(tail, topo.Source)
	if res.Stats.Latency.Mean() <= srcRTT {
		t.Fatalf("latency %v suspiciously below timer floor %v",
			res.Stats.Latency.Mean(), srcRTT)
	}
	if e.PendingRequests() != 0 {
		t.Fatal("dangling request state")
	}
}

func TestRepairFloodHealsAllLosers(t *testing.T) {
	// Loss above a 6-client star subtree: one repair flood must heal all;
	// suppression must keep the NACK count well below the loser count.
	b := topology.NewBuilder()
	src := b.Source()
	r1, hub := b.Router(), b.Router()
	b.TreeLink(src, r1, 5)
	shared := b.TreeLink(r1, hub, 2)
	for i := 0; i < 6; i++ {
		b.TreeLink(hub, b.Client(), 1)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, shared, e)
	res := s.Run()
	healed := res.Stats.Recoveries + res.Stats.PreDetection
	if healed != 6 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Count NACK floods via hop totals: lossless recovery phase means
	// every flood costs exactly NumTreeEdges hops.
	edges := int64(tree.NumTreeEdges())
	nacks := res.Hops.Request / edges
	if nacks >= 6 {
		t.Fatalf("no request suppression: ~%d NACK floods for 6 losers", nacks)
	}
	if nacks < 1 {
		t.Fatal("no NACK at all?")
	}
}

func TestRepairSuppressionLimitsDuplicates(t *testing.T) {
	// Many holders hear the NACK; suppression should keep repair floods
	// below the holder count. In a symmetric star every holder is
	// equidistant, so the timer window must exceed the inter-holder
	// propagation delay for suppression to have room to act — hence the
	// widened D2 (with the canonical D2=1 the window equals the
	// propagation delay and SRM genuinely duplicates almost every
	// repair, which is one of the paper's criticisms of it).
	topo, err := topology.Star(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	victim := topo.Clients[0]
	opt := DefaultOptions()
	opt.D2 = 4
	e := New(opt)
	s := oneLossSession(t, topo, tree.ParentLink[victim], e)
	res := s.Run()
	if res.Stats.Recoveries != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
	edges := int64(tree.NumTreeEdges())
	repairs := res.Hops.Repair / edges
	if repairs >= 7 {
		t.Fatalf("no repair suppression: ~%d repair floods", repairs)
	}
	if repairs < 1 {
		t.Fatal("no repair at all?")
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(40, p, 17)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 40, Interval: 60}, 19)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete {
			t.Fatalf("p=%v: incomplete", p)
		}
		if res.Stats.Losses == 0 {
			t.Fatalf("p=%v: no losses", p)
		}
		if res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %d unrecovered", p, res.Stats.Unrecovered)
		}
	}
}

func TestControlLossFullRecovery(t *testing.T) {
	// Stochastic multi-packet run with recovery traffic itself subject to
	// link loss: the exponential re-request backoff must still recover
	// every loss.
	topo, err := topology.Standard(50, 0.15, 23)
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	cfg := protocol.Config{Packets: 50, Interval: 50, LossyRecovery: true}
	s, err := protocol.NewSession(topo, e, cfg, 29)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatal("incomplete run")
	}
	if res.Stats.Losses == 0 {
		t.Fatal("no losses at p=0.15")
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("%d unrecovered with lossy control traffic", res.Stats.Unrecovered)
	}
}

func TestLostRepairEventuallyRerequests(t *testing.T) {
	// Keep the victim's access link fully lossy well past the first
	// NACK/repair exchange; the exponential re-request must recover once
	// the link heals.
	b := topology.NewBuilder()
	src := b.Source()
	r := b.Router()
	b.TreeLink(src, r, 2)
	c := b.Client()
	link := b.TreeLink(r, c, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10, LossyRecovery: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(200, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Stats.Latency.Mean() < 200-10 {
		t.Fatalf("latency %v below healing time — impossible", res.Stats.Latency.Mean())
	}
}

func TestDuplicateRepairsCounted(t *testing.T) {
	// Whole-tree repair floods necessarily hit clients that already have
	// the packet; the session must count them as duplicates.
	topo, err := topology.Star(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	victim := topo.Clients[0]
	e := New(DefaultOptions())
	s := oneLossSession(t, topo, tree.ParentLink[victim], e)
	res := s.Run()
	if res.Stats.Duplicates == 0 {
		t.Fatal("flooded repair produced no duplicate deliveries")
	}
}

func TestAdaptiveTimersReduceDuplicateFloods(t *testing.T) {
	// Honest SRM (no idealised suppression) on a duplicate-prone star
	// topology, many packets: the adaptive variant must emit fewer repair
	// floods than the fixed-timer variant.
	run := func(adaptive bool) *protocol.Result {
		topo, err := topology.Standard(60, 0.1, 51)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.GlobalSuppression = false
		opt.Adaptive = adaptive
		s, err := protocol.NewSession(topo, New(opt), protocol.Config{Packets: 60, Interval: 50}, 53)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	fixed := run(false)
	adaptive := run(true)
	if fixed.Stats.Unrecovered != 0 || adaptive.Stats.Unrecovered != 0 {
		t.Fatal("incomplete recovery")
	}
	if adaptive.Hops.Repair >= fixed.Hops.Repair {
		t.Fatalf("adaptive repair hops %d not below fixed %d",
			adaptive.Hops.Repair, fixed.Hops.Repair)
	}
}

func TestAdaptiveScaleBounded(t *testing.T) {
	opt := DefaultOptions()
	opt.Adaptive = true
	opt.MaxAdapt = 4
	e := New(opt)
	var host graph.NodeID = 3
	for i := 0; i < 50; i++ {
		e.adapt(e.repScale, host, 5) // duplicates every round
	}
	if s := e.scaleOf(e.repScale, host); s > 4 {
		t.Fatalf("scale %v exceeds bound", s)
	}
	for i := 0; i < 500; i++ {
		e.adapt(e.repScale, host, 0) // clean rounds shrink it back
	}
	if s := e.scaleOf(e.repScale, host); s != 1 {
		t.Fatalf("scale %v did not return to 1", s)
	}
	// Non-adaptive engines always report 1.
	plain := New(DefaultOptions())
	plain.adapt(plain.repScale, host, 9)
	if plain.scaleOf(plain.repScale, host) != 1 {
		t.Fatal("non-adaptive engine scaled")
	}
}
