// Package srm implements the SRM baseline (Floyd et al., reference [17] of
// the paper) at the fidelity the paper's comparison requires: when a
// receiver detects a loss it arms a request-suppression timer drawn from
// U[C1·d, (C1+C2)·d] (d = its one-way delay estimate to the source); if the
// timer expires without having seen another member's request for the same
// packet it multicasts a NACK to the whole group. Any member holding the
// packet that sees a NACK arms a repair-suppression timer drawn from
// U[D1·d', (D1+D2)·d'] (d' = distance to the requester) and multicasts the
// repair if no other repair appears first. Receivers that see a foreign
// NACK for a packet they also miss suppress their own request and back off
// exponentially, re-requesting if the repair never arrives.
//
// As the paper notes (§1), the suppression timers bound duplicate NACKs and
// repairs but add multiples of the one-way delay to every recovery, and the
// global multicasts charge the entire tree — both effects are what Figures
// 5–8 measure against RP.
package srm

import (
	"math"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options holds the SRM timer constants. The defaults (C1=C2=2, D1=D2=1)
// are the canonical values from the SRM literature; the paper does not
// override them.
type Options struct {
	C1, C2 float64 // request timer window, in units of d(member, source)
	D1, D2 float64 // repair timer window, in units of d(member, requester)
	// MaxBackoff caps the exponential request backoff exponent.
	MaxBackoff int
	// IgnoreFactor is SRM's repair ignore-window: a member that saw a
	// repair for seq within IgnoreFactor·d(member, requester) ignores
	// NACKs for seq — they were sent before that repair could have
	// reached their senders. Without it, every stale NACK from a slow
	// loser re-triggers repair floods across all holders. ≤ 0 disables.
	IgnoreFactor float64
	// GlobalSuppression enables the paper's idealised SRM cost model:
	// at most one repair flood per lost packet per network-diameter
	// window ("the total bandwidth usage for SRM for recovering each
	// packet is fixed", §5.2). Distributed SRM only approximates this —
	// equidistant holders race their repair timers and duplicate — so
	// disabling it yields the honest (chattier) protocol measured by the
	// SRM-HONEST ablation.
	GlobalSuppression bool
	// Adaptive enables the adaptive timer adjustment of Floyd et al.:
	// each member widens its request/repair windows when it observes
	// duplicate NACKs/repairs for losses it participated in, and narrows
	// them when rounds complete without duplication. The adaptation is
	// per member and multiplicative, bounded to [1, MaxAdapt]× the base
	// constants.
	Adaptive bool
	// MaxAdapt bounds the adaptive multiplier (default 8).
	MaxAdapt float64
}

// DefaultOptions returns the canonical SRM constants.
func DefaultOptions() Options {
	return Options{C1: 2, C2: 2, D1: 1, D2: 1, MaxBackoff: 8, IgnoreFactor: 3,
		GlobalSuppression: true, MaxAdapt: 8}
}

// Engine is the SRM protocol engine.
//
// Per-(host,seq) state is dense: the session validates every control
// packet's host and sequence range before dispatch, so slices indexed by
// host·packets+seq replace the hash maps the hot path used to thrash.
type Engine struct {
	opt Options
	s   *protocol.Session

	// packets sizes the dense (host,seq) index, fixed at Attach.
	packets int
	req     []*reqState // per missing (client,seq); nil = none
	nreq    int         // live req entries, for PendingRequests
	rep     []sim.Timer // per (holder,seq) armed repair timer; zero = none
	// lastRepair records when a host last saw (or sent) a repair for a
	// seq, for the ignore window. NaN = never.
	lastRepair []float64
	// lastFlood records the last repair-flood time per seq (global
	// suppression; NaN = never); diameter is the suppression window.
	lastFlood []float64
	diameter  float64
	// Adaptive-timer state, per member: multiplicative widening factors
	// for the request and repair windows, and duplicate observations.
	reqScale map[graph.NodeID]float64
	repScale map[graph.NodeID]float64
	// reqSeen/repSeen count the NACK/repair floods a member observed per
	// seq it cared about, to detect duplication.
	reqSeen []int32
	repSeen []int32
	// seen suppresses duplicated NACKs: a repeat of (requester, seq) at a
	// host within half the minimum request-timer spacing is a message-plane
	// duplicate, not a backoff retransmission, and must not inflate the
	// adaptive duplicate counters or re-arm repair timers.
	seen *protocol.DedupCache
}

// dedupCacheSize bounds the NACK dedup cache; eviction only ever lets a
// duplicate through again (see protocol.DedupCache).
const dedupCacheSize = 8192

type reqState struct {
	timer   sim.Timer
	backoff int
	// parked marks a request whose owner is crashed: no timer runs until
	// OnRecover resumes it (a permanently crashed owner would otherwise
	// re-arm its NACK timer forever and the run could never quiesce).
	parked bool
}

// nack is the payload of an SRM request multicast.
type nack struct {
	Requester graph.NodeID
}

// New returns an SRM engine.
func New(opt Options) *Engine {
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 8
	}
	return &Engine{
		opt:      opt,
		reqScale: make(map[graph.NodeID]float64),
		repScale: make(map[graph.NodeID]float64),
		seen:     protocol.NewDedupCache(dedupCacheSize),
	}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "SRM" }

// Attach implements protocol.Engine.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	// Network diameter bound: twice the deepest root-to-leaf delay. Used
	// as the global-suppression window.
	var deep float64
	for _, c := range s.Clients() {
		if d := s.Tree.DelayFromRoot[c]; d > deep {
			deep = d
		}
	}
	e.diameter = 2 * deep
	// Size the dense per-(host,seq) state now that both bounds are known.
	e.packets = s.Config().Packets
	cells := s.Topo.NumNodes() * e.packets
	e.req = make([]*reqState, cells)
	e.rep = make([]sim.Timer, cells)
	e.reqSeen = make([]int32, cells)
	e.repSeen = make([]int32, cells)
	e.lastRepair = make([]float64, cells)
	for i := range e.lastRepair {
		e.lastRepair[i] = math.NaN()
	}
	e.lastFlood = make([]float64, e.packets)
	for i := range e.lastFlood {
		e.lastFlood[i] = math.NaN()
	}
}

// idx maps a validated (host, seq) pair onto the dense state index.
func (e *Engine) idx(h graph.NodeID, seq int) int { return int(h)*e.packets + seq }

// OnDetect implements protocol.Engine: arm the initial request timer.
// Monotonic guard: a packet the client already holds never (re-)enters the
// request machine, whatever duplicated or reordered signal suggested it.
func (e *Engine) OnDetect(c graph.NodeID, seq int) {
	if e.req[e.idx(c, seq)] != nil {
		return
	}
	if !e.s.Missing(c, seq) {
		return
	}
	rs := &reqState{}
	e.req[e.idx(c, seq)] = rs
	e.nreq++
	e.armRequest(c, seq, rs)
}

// scaleOf returns a member's adaptive widening factor from the given map.
func (e *Engine) scaleOf(m map[graph.NodeID]float64, host graph.NodeID) float64 {
	if !e.opt.Adaptive {
		return 1
	}
	if s, ok := m[host]; ok {
		return s
	}
	return 1
}

// adapt nudges a member's widening factor: duplicates observed → widen
// (×1.5); a clean round → narrow (×0.95), bounded to [1, MaxAdapt].
func (e *Engine) adapt(m map[graph.NodeID]float64, host graph.NodeID, dups int) {
	if !e.opt.Adaptive {
		return
	}
	s := e.scaleOf(m, host)
	if dups > 0 {
		s *= 1.5
	} else {
		s *= 0.95
	}
	maxA := e.opt.MaxAdapt
	if maxA <= 1 {
		maxA = 8
	}
	if s < 1 {
		s = 1
	}
	if s > maxA {
		s = maxA
	}
	m[host] = s
}

// armRequest draws the suppression timer U[C1·d, (C1+C2)·d]·2^backoff
// (widened by the member's adaptive factor) and schedules the NACK.
func (e *Engine) armRequest(c graph.NodeID, seq int, rs *reqState) {
	if !e.s.Alive(c) {
		rs.parked = true
		return
	}
	d := e.s.Routes.OneWayDelay(c, e.s.Topo.Source)
	if d <= 0 {
		d = 1
	}
	scale := float64(int64(1)<<uint(rs.backoff)) * e.scaleOf(e.reqScale, c)
	delay := (e.opt.C1 + e.opt.C2*e.s.Rand.Float64()) * d * scale
	rs.timer = e.s.Eng.NewTimer(delay, func() { e.fireRequest(c, seq, rs) })
}

// fireRequest multicasts the NACK and re-arms with backoff, so a lost
// repair (or lost NACK) eventually triggers another round.
func (e *Engine) fireRequest(c graph.NodeID, seq int, rs *reqState) {
	i := e.idx(c, seq)
	if e.req[i] != rs || rs.parked {
		return
	}
	if !e.s.Missing(c, seq) {
		e.req[i] = nil
		e.nreq--
		return
	}
	e.s.Net.FloodTree(sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: nack{Requester: c},
	})
	if rs.backoff < e.opt.MaxBackoff {
		rs.backoff++
	}
	e.armRequest(c, seq, rs)
}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		pay, ok := pkt.Payload.(nack)
		if !ok {
			e.s.NoteMalformed()
			return
		}
		e.onNACK(host, pkt.Seq, pay.Requester)
	case sim.Repair:
		// Repair suppression: cancel our own pending repair for this seq
		// and open the ignore window for stale NACKs.
		i := e.idx(host, pkt.Seq)
		e.lastRepair[i] = e.s.Eng.Now()
		e.repSeen[i]++
		if t := e.rep[i]; t.Valid() {
			t.Stop()
			e.rep[i] = sim.Timer{}
			// We were about to repair and someone beat us: if this is
			// the 2nd+ repair we see, the repair window is too tight.
			e.adapt(e.repScale, host, int(e.repSeen[i])-1)
		}
		// If we were a requester, the session has marked us recovered;
		// drop the request state and adapt on observed NACK duplication.
		if rs := e.req[i]; rs != nil && !e.s.Missing(host, pkt.Seq) {
			rs.timer.Stop()
			e.req[i] = nil
			e.nreq--
			e.adapt(e.reqScale, host, int(e.reqSeen[i])-1)
		}
	}
}

// onNACK handles a foreign request seen at host. Legitimate NACK rounds for
// one requester are spaced at least C1·d apart (the request timer's lower
// edge, before backoff widens it), so a repeat inside half that window is a
// duplicated packet and is dropped before it can touch suppression or
// adaptive state.
func (e *Engine) onNACK(host graph.NodeID, seq int, requester graph.NodeID) {
	if !e.s.IsClient(requester) {
		e.s.NoteMalformed()
		return
	}
	d0 := e.s.Routes.OneWayDelay(requester, e.s.Topo.Source)
	if d0 <= 0 {
		d0 = 1
	}
	if e.seen.Seen(host, requester, seq, e.s.Eng.Now(), 0.5*e.opt.C1*d0) {
		return
	}
	i := e.idx(host, seq)
	e.reqSeen[i]++
	if e.s.Has(host, seq) {
		// Candidate repairer: arm a repair-suppression timer unless one
		// is already pending for this seq.
		if e.rep[i].Valid() {
			return
		}
		d := e.s.Routes.OneWayDelay(host, requester)
		if d <= 0 {
			d = 1
		}
		// Ignore window: a recent repair makes this NACK stale.
		if e.opt.IgnoreFactor > 0 {
			if at := e.lastRepair[i]; !math.IsNaN(at) && e.s.Eng.Now()-at < e.opt.IgnoreFactor*d {
				return
			}
		}
		delay := (e.opt.D1 + e.opt.D2*e.s.Rand.Float64()) * d * e.scaleOf(e.repScale, host)
		e.rep[i] = e.s.Eng.NewTimer(delay, func() { e.fireRepair(host, seq) })
		return
	}
	// Request suppression: we miss it too and someone already asked —
	// back off our own request and wait for the shared repair.
	if rs := e.req[i]; rs != nil && rs.timer.Stop() {
		if rs.backoff < e.opt.MaxBackoff {
			rs.backoff++
		}
		e.armRequest(host, seq, rs)
	}
}

// fireRepair multicasts the repair to the whole group.
func (e *Engine) fireRepair(host graph.NodeID, seq int) {
	i := e.idx(host, seq)
	if !e.rep[i].Valid() {
		return
	}
	e.rep[i] = sim.Timer{}
	if !e.s.Has(host, seq) {
		return // defensive: cannot repair what we do not hold
	}
	if !e.s.Alive(host) {
		// The flood would be silently suppressed at the network layer;
		// returning before the bookkeeping keeps a dead holder from
		// claiming the global-suppression window with a phantom repair.
		return
	}
	if e.opt.GlobalSuppression {
		if at := e.lastFlood[seq]; !math.IsNaN(at) && e.s.Eng.Now()-at < e.diameter {
			return // idealised model: one flood per packet per window
		}
		e.lastFlood[seq] = e.s.Eng.Now()
	}
	e.lastRepair[i] = e.s.Eng.Now()
	e.s.Net.FloodTree(sim.Packet{Kind: sim.Repair, Seq: seq, From: host})
}

// PendingRequests reports in-flight request states (testing).
func (e *Engine) PendingRequests() int { return e.nreq }

// OnCrash implements protocol.FaultAware: park the crashed member's request
// timers and drop its armed repair timers (it can no longer serve anyone).
func (e *Engine) OnCrash(h graph.NodeID) {
	for seq := 0; seq < e.packets; seq++ {
		i := e.idx(h, seq)
		if rs := e.req[i]; rs != nil {
			rs.timer.Stop()
			rs.parked = true
		}
		if t := e.rep[i]; t.Valid() {
			t.Stop()
			e.rep[i] = sim.Timer{}
		}
	}
}

// OnRecover implements protocol.FaultAware: resume the member's parked
// requests from a fresh backoff. The dense scan runs in ascending sequence
// order — resumption draws suppression timers from the shared rng stream,
// so the order must be deterministic.
func (e *Engine) OnRecover(h graph.NodeID) {
	for seq := 0; seq < e.packets; seq++ {
		i := e.idx(h, seq)
		rs := e.req[i]
		if rs == nil || !rs.parked {
			continue
		}
		rs.parked = false
		if !e.s.Missing(h, seq) {
			e.req[i] = nil
			e.nreq--
			continue
		}
		rs.backoff = 0
		e.armRequest(h, seq, rs)
	}
}

// DedupCaches implements protocol.DedupAudited.
func (e *Engine) DedupCaches() []*protocol.DedupCache {
	return []*protocol.DedupCache{e.seen}
}

var (
	_ protocol.Engine       = (*Engine)(nil)
	_ protocol.FaultAware   = (*Engine)(nil)
	_ protocol.DedupAudited = (*Engine)(nil)
)
