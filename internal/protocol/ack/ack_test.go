package ack

import (
	"math"
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

func TestSingleLossRetransmittedBySource(t *testing.T) {
	topo, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(topo)
	c := topo.Clients[0]
	link := tree.ParentLink[c]
	topo.Loss[link] = 1
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 1, Interval: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.Schedule(0.5, func() { topo.Loss[link] = 0 })
	res := s.Run()
	if res.Stats.Recoveries != 1 || res.Stats.Unrecovered != 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	// Latency: the round timer fires at 1.5·RTT(=9) after send; detection
	// at ~3; retransmission reaches c at 9+3=12 → latency ≈ 9.
	if math.Abs(res.Stats.Latency.Mean()-9) > 0.2 {
		t.Fatalf("latency %v, want ≈9", res.Stats.Latency.Mean())
	}
}

func TestAckImplosionVisibleInRequestHops(t *testing.T) {
	// Even with ZERO loss, every client ACKs every packet: request hops =
	// packets × Σ path(c→S).
	topo, err := topology.Star(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 10, Interval: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Losses != 0 {
		t.Fatalf("unexpected losses %d", res.Stats.Losses)
	}
	// 6 clients × 2 hops × 10 packets = 120 ACK hops.
	if res.Hops.Request != 120 {
		t.Fatalf("ACK hops %d, want 120", res.Hops.Request)
	}
	if res.Hops.Repair != 0 {
		t.Fatalf("lossless run retransmitted: %d", res.Hops.Repair)
	}
}

func TestRandomLossFullRecovery(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		topo, err := topology.Standard(40, p, 71)
		if err != nil {
			t.Fatal(err)
		}
		e := New(DefaultOptions())
		s, err := protocol.NewSession(topo, e, protocol.Config{Packets: 40, Interval: 40}, 73)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if !res.Complete || res.Stats.Losses == 0 || res.Stats.Unrecovered != 0 {
			t.Fatalf("p=%v: %+v complete=%v", p, res.Stats, res.Complete)
		}
	}
}

func TestLostAckTriggersRedundantRetransmission(t *testing.T) {
	// With lossy control, a lost ACK makes the source retransmit to a
	// client that already has the packet — a duplicate delivery.
	topo, err := topology.Chain(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo.SetUniformLoss(0.4)
	e := New(DefaultOptions())
	s, err := protocol.NewSession(topo, e, protocol.Config{
		Packets: 60, Interval: 20, LossyRecovery: true,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("unrecovered %d", res.Stats.Unrecovered)
	}
	if res.Stats.Duplicates == 0 {
		t.Fatal("no duplicate retransmissions despite lossy ACKs")
	}
}
