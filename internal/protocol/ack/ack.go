// Package ack implements the classic sender-initiated reliability baseline
// (Towsley, Kurose & Pingali, reference [21] of the paper: "A comparison of
// sender-initiated and receiver-initiated reliable multicast protocols"):
// every client positively acknowledges every data packet; the source tracks
// the ACK matrix and unicasts retransmissions to the clients whose ACKs are
// missing when the per-packet timer expires, doubling the timer each round.
//
// The paper's §1 explains why this loses at scale: the source carries the
// whole recovery load, and the per-packet, per-client ACK stream — counted
// here as request-plane hops — is the ACK implosion that server- and
// peer-based schemes (and RP) exist to avoid. The engine is included to
// complete the taxonomy and as the "maximum source load" endpoint in the
// benchmark suite.
package ack

import (
	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/sim"
)

// Options configures the engine.
type Options struct {
	// AckDelay is the client-side delay between receiving a packet and
	// sending the ACK (ms), modelling processing/aggregation.
	AckDelay float64
	// TimeoutFactor scales the source's first retransmission timer as a
	// multiple of the farthest client's RTT; the timer doubles per round.
	TimeoutFactor float64
	// MaxRounds caps retransmission rounds per (packet, client) before
	// the source gives up until the next external trigger (the cap only
	// matters on partitioned topologies; lossy runs converge earlier).
	MaxRounds int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{AckDelay: 0.1, TimeoutFactor: 1.5, MaxRounds: 30}
}

// Engine is the sender-initiated ACK engine.
type Engine struct {
	opt Options
	s   *protocol.Session
	// acked[seq] marks clients whose ACK reached the source.
	acked map[int]map[graph.NodeID]bool
	// maxRTT is the slowest client round trip, the base timeout.
	maxRTT float64
}

// ackPayload is a client's positive acknowledgement.
type ackPayload struct {
	Client graph.NodeID
}

// New returns an ACK engine.
func New(opt Options) *Engine {
	if opt.TimeoutFactor <= 0 {
		opt.TimeoutFactor = 1.5
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 30
	}
	return &Engine{opt: opt, acked: make(map[int]map[graph.NodeID]bool)}
}

// Name implements protocol.Engine.
func (e *Engine) Name() string { return "ACK" }

// Attach schedules the client ACKs and the source's per-packet
// retransmission rounds.
func (e *Engine) Attach(s *protocol.Session) {
	e.s = s
	cfg := s.Config()
	for _, c := range s.Clients() {
		if rtt := s.Routes.RTT(c, s.Topo.Source); rtt > e.maxRTT {
			e.maxRTT = rtt
		}
	}
	for seq := 0; seq < cfg.Packets; seq++ {
		e.acked[seq] = make(map[graph.NodeID]bool, len(s.Clients()))
		sendAt := float64(seq) * cfg.Interval
		// Client ACKs: each client checks at its own expected arrival
		// (plus AckDelay) and acknowledges if it holds the packet; later
		// retransmissions are acknowledged from OnPacket.
		for _, c := range s.Clients() {
			c, seq := c, seq
			at := sendAt + s.Net.WouldArrive(c) + e.opt.AckDelay + 2e-3
			s.Eng.Schedule(at, func() {
				if e.s.Has(c, seq) {
					e.sendAck(c, seq)
				}
			})
		}
		// Source retransmission rounds.
		seq := seq
		s.Eng.Schedule(sendAt+e.opt.TimeoutFactor*e.maxRTT, func() {
			e.round(seq, 1)
		})
	}
}

// sendAck unicasts a positive acknowledgement to the source. ACKs ride the
// request plane (they are control traffic) and are therefore visible in the
// request-hop accounting — the implosion cost.
func (e *Engine) sendAck(c graph.NodeID, seq int) {
	e.s.Net.Unicast(e.s.Topo.Source, sim.Packet{
		Kind: sim.Request, Seq: seq, From: c, Payload: ackPayload{Client: c},
	})
}

// round retransmits seq to every unacknowledged client and reschedules with
// exponential backoff while any remain.
func (e *Engine) round(seq, n int) {
	src := e.s.Topo.Source
	missing := 0
	for _, c := range e.s.Clients() {
		if e.acked[seq][c] {
			continue
		}
		missing++
		e.s.Net.Unicast(c, sim.Packet{Kind: sim.Repair, Seq: seq, From: src})
	}
	if missing == 0 || n >= e.opt.MaxRounds {
		return
	}
	backoff := e.opt.TimeoutFactor * e.maxRTT * float64(int64(1)<<uint(min(n, 20)))
	e.s.Eng.After(backoff, func() { e.round(seq, n+1) })
}

// OnDetect implements protocol.Engine. Sender-initiated recovery has no
// receiver-side action: the source's ACK bookkeeping drives everything.
func (e *Engine) OnDetect(graph.NodeID, int) {}

// OnPacket implements protocol.Engine.
func (e *Engine) OnPacket(host graph.NodeID, pkt sim.Packet) {
	switch pkt.Kind {
	case sim.Request:
		if pay, ok := pkt.Payload.(ackPayload); ok && host == e.s.Topo.Source {
			e.acked[pkt.Seq][pay.Client] = true
		}
	case sim.Repair:
		// A retransmission landed: acknowledge it (the session has
		// already recorded the recovery).
		if e.s.IsClient(host) && e.s.Has(host, pkt.Seq) && !e.acked[pkt.Seq][host] {
			e.s.Eng.After(e.opt.AckDelay, func() { e.sendAck(host, pkt.Seq) })
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ protocol.Engine = (*Engine)(nil)
