package protocol_test

import (
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/protocol/coop"
	"rmcast/internal/protocol/rma"
	"rmcast/internal/protocol/rpproto"
	"rmcast/internal/protocol/srcrec"
	"rmcast/internal/protocol/srm"
	"rmcast/internal/topology"
)

// chaosSchedule builds one combined fault plan over a standard topology:
// a transient client crash, a permanent client crash, link outage windows
// on two access links, and Gilbert–Elliott bursts on two more. Every
// engine below faces this exact schedule.
func chaosSchedule(t *testing.T, topo *topology.Network) *fault.Schedule {
	t.Helper()
	if len(topo.Clients) < 4 {
		t.Fatalf("topology too small: %d clients", len(topo.Clients))
	}
	tree := mtree.MustBuild(topo)
	s := &fault.Schedule{}
	// Client 0 crashes mid-run and recovers; client 1 crashes for good.
	s.CrashWindow(topo.Clients[0], 300, 900)
	s.CrashHost(700, topo.Clients[1])
	// Two access links go dark for a stretch of the run.
	s.LinkDownWindow(tree.ParentLink[topo.Clients[2]], 250, 600)
	s.LinkDownWindow(tree.ParentLink[topo.Clients[3]], 500, 800)
	// Burst loss on the recovered clients' access links, harsh regime.
	ge, ok := fault.BurstFromSeverity(0.8, 0.05)
	if !ok {
		t.Fatal("BurstFromSeverity(0.8) disabled")
	}
	s.SetBurst(tree.ParentLink[topo.Clients[0]], ge)
	s.SetBurst(tree.ParentLink[topo.Clients[2]], ge)
	return s
}

// TestLivenessUnderCombinedFaults is the PR's acceptance invariant: under
// combined crashes, link outage windows and burst loss — with recovery
// traffic itself lossy — every engine must still deliver every packet to
// every client that is up at the end of the run. Only the permanently
// crashed client may hold gaps, and those must be classified as
// UnrecoveredCrashed, never Unrecovered.
func TestLivenessUnderCombinedFaults(t *testing.T) {
	resilient := rpproto.DefaultOptions()
	resilient.Resilience = rpproto.DefaultResilience()
	engines := []struct {
		name string
		mk   func() protocol.Engine
	}{
		{"RP", func() protocol.Engine { return rpproto.New(rpproto.DefaultOptions()) }},
		{"RP-RESILIENT", func() protocol.Engine { return rpproto.New(resilient) }},
		{"SRM", func() protocol.Engine { return srm.New(srm.DefaultOptions()) }},
		{"RMA", func() protocol.Engine { return rma.New(rma.DefaultOptions()) }},
		{"SRC", func() protocol.Engine { return srcrec.New(srcrec.DefaultOptions()) }},
		{"COOP", func() protocol.Engine { return coop.New(coop.DefaultOptions()) }},
	}
	for _, tc := range engines {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.Standard(60, 0.05, 11)
			if err != nil {
				t.Fatal(err)
			}
			cfg := protocol.Config{
				Packets: 60, Interval: 25,
				LossyRecovery: true,
				Fault:         chaosSchedule(t, topo),
			}
			s, err := protocol.NewSession(topo, tc.mk(), cfg, 13)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run()
			if !res.Complete {
				t.Fatalf("run hit the event cap: %d events", res.Events)
			}
			if res.Stats.Unrecovered != 0 {
				t.Fatalf("liveness violated: %d unrecovered losses at live clients\n%+v",
					res.Stats.Unrecovered, res.Stats)
			}
			// The permanent crash at t=700 happens mid-transmission, so the
			// dead client must be missing packets — and they must land in
			// the crashed bucket.
			if res.Stats.UnrecoveredCrashed == 0 {
				t.Fatalf("permanently crashed client missing nothing? %+v", res.Stats)
			}
			if dr := res.DeliveryRatio(); dr <= 0 || dr >= 1 {
				t.Fatalf("delivery ratio %v, want in (0, 1)", dr)
			}
		})
	}
}

// TestFaultRunDeterminism asserts a faulty run is reproducible: same seeds
// and schedule, identical stats, hops and event counts.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() *protocol.Result {
		topo, err := topology.Standard(60, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		opt := rpproto.DefaultOptions()
		opt.Resilience = rpproto.DefaultResilience()
		cfg := protocol.Config{
			Packets: 60, Interval: 25,
			LossyRecovery: true,
			Fault:         chaosSchedule(t, topo),
		}
		s, err := protocol.NewSession(topo, rpproto.New(opt), cfg, 13)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if a.Stats != b.Stats || a.Hops != b.Hops || a.Events != b.Events {
		t.Fatalf("same seed diverged under faults:\n%+v\n%+v", a, b)
	}
}

// TestZeroFaultSessionUnchanged asserts that passing an empty (or nil)
// schedule leaves the run byte-for-byte on the legacy code path: identical
// stats to a session constructed with no Fault field at all.
func TestZeroFaultSessionUnchanged(t *testing.T) {
	run := func(sched *fault.Schedule) *protocol.Result {
		topo, err := topology.Standard(50, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := protocol.Config{Packets: 40, Interval: 30, Fault: sched}
		s, err := protocol.NewSession(topo, srm.New(srm.DefaultOptions()), cfg, 9)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	legacy := run(nil)
	empty := run(&fault.Schedule{})
	if legacy.Stats != empty.Stats || legacy.Hops != empty.Hops || legacy.Events != empty.Events {
		t.Fatalf("empty schedule perturbed the run:\n%+v\n%+v", legacy, empty)
	}
}

// TestSourceCrashRejected: the liveness invariant is conditioned on the
// source staying up, so a schedule that crashes it must be refused.
func TestSourceCrashRejected(t *testing.T) {
	topo, err := topology.Standard(40, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := (&fault.Schedule{}).CrashHost(100, topo.Source)
	cfg := protocol.Config{Packets: 10, Interval: 20, Fault: sched}
	if _, err := protocol.NewSession(topo, srm.New(srm.DefaultOptions()), cfg, 1); err == nil {
		t.Fatal("source-crashing schedule accepted")
	}
}
