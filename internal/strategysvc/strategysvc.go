// Package strategysvc serves recovery strategies as a concurrent
// read-mostly service — the shape a real RP control plane would embed.
//
// The paper's Algorithm-1 planner and the churn-tracking core.Roster are
// single-threaded by design: Join/Leave mutate shared maps and every caller
// replans inline. This package puts them behind the same memory model that
// route.Tables uses for routing state: versioned immutable snapshots behind
// one atomic pointer.
//
//   - Readers (Get, Snapshot) are lock-free, wait-free and allocation-free:
//     one atomic pointer load, then plain reads of frozen data. Any number
//     of goroutines can query concurrently with churn being applied; no
//     reader ever blocks, retries, or observes a torn strategy, because a
//     snapshot is never mutated after its pointer is published.
//   - A single applier goroutine owns the shadow state (a core.Roster). It
//     coalesces queued Join/Leave churn into batches, applies each op via
//     the tree aggregate's O(depth) incremental repair, then publishes a
//     fresh snapshot — one O(k) dense copy per batch, not per op. Snapshot
//     versions are strictly monotonic (+1 per publish); the roster epoch
//     (applied-op count) is stamped alongside so service output is
//     correlatable with plan state.
//   - A full-replan fallback (Config.FullReplan) rebuilds every active
//     strategy from scratch per batch through core.NewRosterActive instead
//     of trusting the incremental repair. Both modes are pinned equivalent
//     by tests over randomized churn sequences; the fallback is the
//     equivalence oracle and the escape hatch, not a performance mode.
//
// Publishing shares what is provably frozen: *core.Strategy values are
// immutable once built (Roster.replan always constructs new ones), so
// consecutive snapshots share the strategy structs of unaffected clients
// and copy only the dense pointer slice and occupancy flags.
package strategysvc

import (
	"sync"
	"sync/atomic"

	"rmcast/internal/core"
	"rmcast/internal/graph"
)

// Snapshot is one immutable, versioned view of the group's recovery plans.
// All accessors are safe for unsynchronised concurrent use; nothing in a
// published snapshot is ever written again.
type Snapshot struct {
	// Version is the publish sequence number, strictly monotonic across
	// snapshots of one service (the initial snapshot is Version 1).
	Version uint64
	// Epoch is the shadow roster's applied-churn count at publish time
	// (0 for the initial snapshot). Several queued ops may collapse into
	// one publish, so Epoch can advance by more than one per Version.
	Epoch uint64
	// strategies is the dense plan slice in canonical client order (client
	// position in Tree.Clients, the PlanAllDense layout); nil at inactive
	// positions.
	strategies []*core.Strategy
	// active is the roster occupancy in the same layout.
	active      []bool
	activeCount int
	// pos maps NodeID → dense position (-1 for non-clients). Shared by all
	// snapshots of a service; built once, never written after.
	pos []int32
	// clients is Tree.Clients, shared and frozen like pos.
	clients []graph.NodeID
}

// Get returns the client's current strategy, or nil if the node is not a
// client of the tree or not an active member. Lock-free and
// allocation-free.
func (s *Snapshot) Get(c graph.NodeID) *core.Strategy {
	if c < 0 || int(c) >= len(s.pos) {
		return nil
	}
	i := s.pos[c]
	if i < 0 {
		return nil
	}
	return s.strategies[i]
}

// Active reports whether the node was a group member at publish time.
func (s *Snapshot) Active(c graph.NodeID) bool {
	if c < 0 || int(c) >= len(s.pos) {
		return false
	}
	i := s.pos[c]
	return i >= 0 && s.active[i]
}

// ActiveCount returns the member count at publish time.
func (s *Snapshot) ActiveCount() int { return s.activeCount }

// Strategies returns the dense strategy slice in canonical client order
// (nil at inactive positions). The slice is part of the immutable snapshot:
// callers must not modify it.
func (s *Snapshot) Strategies() []*core.Strategy { return s.strategies }

// Clients returns the canonical client order the dense slices are indexed
// by (Tree.Clients; shared and frozen).
func (s *Snapshot) Clients() []graph.NodeID { return s.clients }

// Config tunes a Service. The zero value is ready to use.
type Config struct {
	// Members is the initial membership (nil: every tree client).
	Members []graph.NodeID
	// MaxBatch caps how many queued churn ops one publish coalesces
	// (default 4096). Larger batches amortise the O(k) publish copy;
	// smaller ones bound snapshot staleness.
	MaxBatch int
	// QueueLen is the churn queue capacity (default 4096). Join/Leave
	// block when the queue is full — backpressure, never drops.
	QueueLen int
	// FullReplan switches the applier to the from-scratch fallback: each
	// batch rebuilds every active strategy via core.NewRosterActive
	// instead of the roster's incremental O(depth) repair. Tests pin both
	// modes equivalent; production uses the default incremental path.
	FullReplan bool
}

// Stats is a point-in-time counter snapshot of the applier side.
type Stats struct {
	// Published counts snapshot publishes (== current Version − 1).
	Published uint64
	// Batches counts applied churn batches (== Published: a batch with no
	// effective op publishes nothing and is not counted).
	Batches uint64
	// Applied and Rejected count individual churn ops: Applied advanced
	// the roster; Rejected were invalid at apply time (join of an active
	// member, leave of an inactive one).
	Applied  uint64
	Rejected uint64
	// MaxBatch is the largest effective batch applied so far.
	MaxBatch uint64
}

// MeanBatch returns the mean effective batch size (0 before any publish).
func (st Stats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.Applied) / float64(st.Batches)
}

type opKind uint8

const (
	opJoin opKind = iota
	opLeave
	opFlush
)

type op struct {
	kind opKind
	node graph.NodeID
	// ack is closed by the applier once every op queued before this flush
	// op has been applied and published (opFlush only).
	ack chan struct{}
}

// Service is the planning server. Create with New, stop with Close.
type Service struct {
	p   *core.Planner
	cfg Config

	// cur is the only reader-writer rendezvous: the applier stores fresh
	// snapshots, readers load. Everything reachable from a stored snapshot
	// is frozen, so a load needs no further synchronisation.
	cur atomic.Pointer[Snapshot]

	// roster is the applier-owned shadow state; no reader ever touches it.
	roster *core.Roster

	ops  chan op
	quit chan struct{}
	done chan struct{}
	stop sync.Once

	published atomic.Uint64
	batches   atomic.Uint64
	applied   atomic.Uint64
	rejected  atomic.Uint64
	maxBatch  atomic.Uint64
}

// New builds the initial snapshot synchronously (so Get works immediately)
// and starts the applier goroutine. The planner must not be used elsewhere
// while the service is running: the applier owns it.
func New(p *core.Planner, cfg Config) *Service {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	members := cfg.Members
	if members == nil {
		members = p.Tree.Clients
	}
	s := &Service{
		p:      p,
		cfg:    cfg,
		roster: core.NewRosterActive(p, members),
		ops:    make(chan op, cfg.QueueLen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	pos := make([]int32, len(p.Tree.Parent))
	for i := range pos {
		pos[i] = -1
	}
	for i, c := range p.Tree.Clients {
		pos[c] = int32(i)
	}
	first := &Snapshot{
		Version:     1,
		Epoch:       0,
		strategies:  s.denseStrategies(),
		active:      s.roster.OccupancyDense(nil),
		activeCount: s.roster.ActiveCount(),
		pos:         pos,
		clients:     p.Tree.Clients,
	}
	s.cur.Store(first)
	go s.run()
	return s
}

// Get returns the client's current strategy (nil for non-clients and
// inactive members). Lock-free, wait-free, zero allocations: one atomic
// pointer load plus two slice reads.
func (s *Service) Get(c graph.NodeID) *core.Strategy {
	return s.cur.Load().Get(c)
}

// Snapshot returns the current immutable snapshot. Lock-free, wait-free,
// zero allocations; the caller may hold it for as long as it likes.
func (s *Service) Snapshot() *Snapshot { return s.cur.Load() }

// Join queues a membership addition. It returns once the op is enqueued
// (blocking only when the queue is full), not once it is applied; use
// Flush for a barrier. Invalid ops (already a member, not a tree client)
// are counted in Stats.Rejected at apply time.
func (s *Service) Join(c graph.NodeID) { s.enqueue(op{kind: opJoin, node: c}) }

// Leave queues a membership removal (see Join for the contract).
func (s *Service) Leave(c graph.NodeID) { s.enqueue(op{kind: opLeave, node: c}) }

// Flush blocks until every op queued before it has been applied and the
// resulting snapshot published. Returns immediately on a closed service.
func (s *Service) Flush() {
	ack := make(chan struct{})
	select {
	case s.ops <- op{kind: opFlush, ack: ack}:
	case <-s.quit:
		return
	}
	select {
	case <-ack:
	case <-s.done:
	}
}

// Stats returns the applier counters.
func (s *Service) Stats() Stats {
	return Stats{
		Published: s.published.Load(),
		Batches:   s.batches.Load(),
		Applied:   s.applied.Load(),
		Rejected:  s.rejected.Load(),
		MaxBatch:  s.maxBatch.Load(),
	}
}

// Close stops the applier. Queued but unapplied ops are dropped; the last
// published snapshot stays readable forever. Safe to call more than once.
func (s *Service) Close() {
	s.stop.Do(func() { close(s.quit) })
	<-s.done
}

func (s *Service) enqueue(o op) {
	select {
	case s.ops <- o:
	case <-s.quit:
	}
}

// run is the applier loop: block for one op, drain whatever else is queued
// up to MaxBatch, apply, publish, signal flushes.
func (s *Service) run() {
	defer close(s.done)
	batch := make([]op, 0, s.cfg.MaxBatch)
	for {
		var first op
		select {
		case first = <-s.ops:
		case <-s.quit:
			return
		}
		batch = append(batch[:0], first)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case o := <-s.ops:
				batch = append(batch, o)
			default:
				break drain
			}
		}
		s.apply(batch)
	}
}

// apply runs one coalesced batch against the shadow roster and publishes a
// snapshot if anything changed. Flush acks fire after the publish, so a
// flusher always observes its own ops.
func (s *Service) apply(batch []op) {
	var applied uint64
	for _, o := range batch {
		var err error
		switch o.kind {
		case opJoin:
			_, err = s.roster.Join(o.node)
		case opLeave:
			_, err = s.roster.Leave(o.node)
		case opFlush:
			continue
		}
		if err != nil {
			s.rejected.Add(1)
		} else {
			applied++
		}
	}
	if applied > 0 {
		s.publish()
		s.applied.Add(applied)
		s.batches.Add(1)
		if applied > s.maxBatch.Load() {
			s.maxBatch.Store(applied)
		}
	}
	for _, o := range batch {
		if o.kind == opFlush {
			close(o.ack)
		}
	}
}

// publish swaps in a fresh snapshot built from the shadow roster. The dense
// slices are newly allocated per publish — that is the immutability
// contract, one O(k) copy per batch.
func (s *Service) publish() {
	prev := s.cur.Load()
	next := &Snapshot{
		Version:     prev.Version + 1,
		Epoch:       s.roster.Epoch(),
		strategies:  s.denseStrategies(),
		active:      s.roster.OccupancyDense(nil),
		activeCount: s.roster.ActiveCount(),
		pos:         prev.pos,
		clients:     prev.clients,
	}
	s.cur.Store(next)
	s.published.Add(1)
}

// denseStrategies materialises the dense plan slice for a publish: from the
// incremental shadow roster by default, or from a from-scratch rebuild over
// the current membership in FullReplan mode. The rebuild goes through
// core.NewRosterActive's construction path, which shares no repair logic
// with the incremental Join/Leave path — that independence is what makes
// the fallback a meaningful oracle.
func (s *Service) denseStrategies() []*core.Strategy {
	if !s.cfg.FullReplan {
		return s.roster.StrategiesDense(nil)
	}
	members := make([]graph.NodeID, 0, s.roster.ActiveCount())
	occ := s.roster.OccupancyDense(nil)
	for i, c := range s.p.Tree.Clients {
		if occ[i] {
			members = append(members, c)
		}
	}
	return core.NewRosterActive(s.p, members).StrategiesDense(nil)
}
