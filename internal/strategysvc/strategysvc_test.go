package strategysvc

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// svcPlanner builds a planner over a tree-only topology (fast-path
// aggregate) or a chorded one (scan fallback), so service tests cover both
// roster modes.
func svcPlanner(t testing.TB, clients int, seed uint64, chorded bool) *core.Planner {
	t.Helper()
	var net *topology.Network
	if chorded {
		net = topology.MustGenerate(topology.DefaultConfig(clients), rng.New(seed))
	} else {
		net = topology.MustGenerateTree(topology.DefaultTreeConfig(clients), rng.New(seed))
	}
	tree := mtree.MustBuild(net)
	if chorded {
		return core.NewPlanner(tree, route.Build(net))
	}
	return core.NewPlanner(tree, route.NewTreeTables(tree))
}

// snapContent freezes everything reader-visible in a snapshot for
// byte-stability comparisons.
type snapContent struct {
	version, epoch uint64
	activeCount    int
	active         []bool
	strategies     []core.Strategy // deep copies, Peers included
}

func freeze(s *Snapshot) snapContent {
	c := snapContent{
		version:     s.Version,
		epoch:       s.Epoch,
		activeCount: s.ActiveCount(),
		active:      make([]bool, len(s.Strategies())),
		strategies:  make([]core.Strategy, len(s.Strategies())),
	}
	for i, st := range s.Strategies() {
		c.active[i] = s.Active(s.Clients()[i])
		if st != nil {
			cp := *st
			cp.Peers = append([]core.Candidate(nil), st.Peers...)
			c.strategies[i] = cp
		}
	}
	return c
}

func TestInitialSnapshotMatchesPlanAllDense(t *testing.T) {
	p := svcPlanner(t, 120, 1, false)
	want := core.NewPlanner(p.Tree, p.Routes).PlanAllDense()
	svc := New(p, Config{})
	defer svc.Close()
	snap := svc.Snapshot()
	if snap.Version != 1 || snap.Epoch != 0 {
		t.Fatalf("initial snapshot version/epoch = %d/%d, want 1/0", snap.Version, snap.Epoch)
	}
	if snap.ActiveCount() != len(p.Tree.Clients) {
		t.Fatalf("initial active count %d != %d", snap.ActiveCount(), len(p.Tree.Clients))
	}
	if !reflect.DeepEqual(snap.Strategies(), want) {
		t.Fatal("initial snapshot diverges from PlanAllDense")
	}
	for i, u := range p.Tree.Clients {
		if svc.Get(u) != snap.Strategies()[i] {
			t.Fatalf("Get(%d) is not the dense entry %d", u, i)
		}
	}
	// Non-clients and out-of-range nodes resolve to nil, not panics.
	if svc.Get(p.Tree.Root) != nil || svc.Get(-1) != nil || svc.Get(graph.NodeID(1<<30)) != nil {
		t.Fatal("non-client Get should be nil")
	}
}

func TestChurnBatchSemantics(t *testing.T) {
	p := svcPlanner(t, 90, 2, false)
	svc := New(p, Config{})
	defer svc.Close()
	clients := p.Tree.Clients

	svc.Leave(clients[0])
	svc.Leave(clients[1])
	svc.Join(clients[0])
	svc.Leave(clients[0]) // join then leave in (potentially) one batch
	svc.Flush()

	snap := svc.Snapshot()
	if snap.Epoch != 4 {
		t.Fatalf("epoch %d != 4 applied ops", snap.Epoch)
	}
	if svc.Get(clients[0]) != nil || svc.Get(clients[1]) != nil {
		t.Fatal("departed members still resolvable")
	}
	if snap.Active(clients[0]) || snap.Active(clients[1]) {
		t.Fatal("departed members still active")
	}
	if snap.ActiveCount() != len(clients)-2 {
		t.Fatalf("active count %d != %d", snap.ActiveCount(), len(clients)-2)
	}

	// Invalid ops are rejected, publish nothing, and leave the version
	// untouched.
	v := svc.Snapshot().Version
	svc.Leave(clients[0]) // already out
	svc.Join(clients[2])  // already in
	svc.Join(p.Tree.Root) // not a client
	svc.Flush()
	st := svc.Stats()
	if st.Rejected != 3 {
		t.Fatalf("rejected %d != 3", st.Rejected)
	}
	if svc.Snapshot().Version != v {
		t.Fatal("rejected-only batch advanced the version")
	}
	if st.Applied != 4 || st.Published != st.Batches {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

// TestSnapshotImmutableAfterPublish pins the headline memory-model claim: a
// held snapshot is byte-stable while the service churns past it.
func TestSnapshotImmutableAfterPublish(t *testing.T) {
	for _, chorded := range []bool{false, true} {
		p := svcPlanner(t, 80, 3, chorded)
		svc := New(p, Config{})
		old := svc.Snapshot()
		want := freeze(old)

		rnd := rand.New(rand.NewSource(7))
		clients := p.Tree.Clients
		out := map[graph.NodeID]bool{}
		for i := 0; i < 50; i++ {
			v := clients[rnd.Intn(len(clients))]
			if out[v] {
				svc.Join(v)
				delete(out, v)
			} else if len(clients)-len(out) > 2 {
				svc.Leave(v)
				out[v] = true
			}
			if i%10 == 0 {
				svc.Flush()
			}
		}
		svc.Flush()
		if svc.Snapshot().Version <= old.Version {
			t.Fatal("churn published nothing")
		}
		if got := freeze(old); !reflect.DeepEqual(got, want) {
			t.Fatalf("chorded=%v: held snapshot mutated under churn", chorded)
		}
		svc.Close()
	}
}

// TestIncrementalMatchesFullReplan drives identical randomized churn
// through the incremental service and the full-replan fallback and pins the
// published content equal after every barrier, whatever the batch
// boundaries were.
func TestIncrementalMatchesFullReplan(t *testing.T) {
	for _, chorded := range []bool{false, true} {
		inc := New(svcPlanner(t, 70, 4, chorded), Config{})
		full := New(svcPlanner(t, 70, 4, chorded), Config{FullReplan: true})
		clients := inc.Snapshot().Clients()

		rnd := rand.New(rand.NewSource(9))
		out := map[graph.NodeID]bool{}
		for step := 0; step < 80; step++ {
			v := clients[rnd.Intn(len(clients))]
			if out[v] {
				inc.Join(v)
				full.Join(v)
				delete(out, v)
			} else if len(clients)-len(out) > 2 {
				inc.Leave(v)
				full.Leave(v)
				out[v] = true
			}
			if step%7 != 0 {
				continue
			}
			inc.Flush()
			full.Flush()
			a, b := inc.Snapshot(), full.Snapshot()
			if a.Epoch != b.Epoch {
				t.Fatalf("chorded=%v step %d: epochs diverged (%d vs %d)", chorded, step, a.Epoch, b.Epoch)
			}
			if !reflect.DeepEqual(a.Strategies(), b.Strategies()) {
				t.Fatalf("chorded=%v step %d: incremental snapshot != full replan", chorded, step)
			}
			if a.ActiveCount() != b.ActiveCount() {
				t.Fatalf("chorded=%v step %d: active counts diverged", chorded, step)
			}
		}
		inc.Close()
		full.Close()
	}
}

// TestServiceRaceHammer is the CI -race workload: concurrent readers
// hammering Get/Snapshot while the applier batches churn. Checks version
// monotonicity per reader, internal snapshot consistency, and final
// equality against a from-scratch ground truth.
func TestServiceRaceHammer(t *testing.T) {
	p := svcPlanner(t, 100, 5, false)
	svc := New(p, Config{})
	defer svc.Close()
	clients := p.Tree.Clients

	const readers = 4
	var stopReaders atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			first := svc.Snapshot()
			lastVersion, lastEpoch := first.Version, first.Epoch
			for !stopReaders.Load() {
				snap := svc.Snapshot()
				if snap.Version < lastVersion {
					errs <- "snapshot version went backwards"
					return
				}
				if snap.Version == lastVersion && snap.Epoch != lastEpoch {
					errs <- "same version, different epoch"
					return
				}
				if snap.Version > lastVersion && snap.Epoch <= lastEpoch {
					errs <- "version advanced without the epoch"
					return
				}
				lastVersion, lastEpoch = snap.Version, snap.Epoch
				c := clients[r.Intn(len(clients))]
				st := snap.Get(c)
				if snap.Active(c) != (st != nil) {
					errs <- "occupancy and strategy disagree inside one snapshot"
					return
				}
				if st != nil && st.Client != c {
					errs <- "torn strategy: wrong client"
					return
				}
				if svc.Get(c) == nil && svc.Snapshot().Active(c) {
					// Fine: two separate loads may straddle a publish.
					_ = c
				}
			}
		}(uint64(g) + 100)
	}

	// Churn driver: bursts of ops with occasional barriers.
	rnd := rand.New(rand.NewSource(13))
	out := map[graph.NodeID]bool{}
	for burst := 0; burst < 40; burst++ {
		for i := 0; i < 8; i++ {
			v := clients[rnd.Intn(len(clients))]
			if out[v] {
				svc.Join(v)
				delete(out, v)
			} else if len(clients)-len(out) > 2 {
				svc.Leave(v)
				out[v] = true
			}
		}
		if burst%5 == 0 {
			svc.Flush()
		}
	}
	svc.Flush()
	stopReaders.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Final snapshot equals a from-scratch plan over the surviving set.
	var members []graph.NodeID
	for _, c := range clients {
		if !out[c] {
			members = append(members, c)
		}
	}
	truth := core.NewRosterActive(svcPlanner(t, 100, 5, false), members)
	if !reflect.DeepEqual(svc.Snapshot().Strategies(), truth.StrategiesDense(nil)) {
		t.Fatal("final snapshot diverges from from-scratch ground truth")
	}
	st := svc.Stats()
	if st.Applied == 0 || st.Published == 0 || st.Published != st.Batches {
		t.Fatalf("stats inconsistent after hammer: %+v", st)
	}
	if svc.Snapshot().Version != st.Published+1 {
		t.Fatalf("version %d != published %d + 1", svc.Snapshot().Version, st.Published)
	}
}

// TestReadPathAllocationFree pins the zero-allocation contract of the
// lock-free read path.
func TestReadPathAllocationFree(t *testing.T) {
	p := svcPlanner(t, 80, 6, false)
	svc := New(p, Config{})
	defer svc.Close()
	c := p.Tree.Clients[len(p.Tree.Clients)/2]
	if n := testing.AllocsPerRun(200, func() {
		if svc.Get(c) == nil {
			t.Fatal("active client resolved to nil")
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if svc.Snapshot() == nil {
			t.Fatal("nil snapshot")
		}
	}); n != 0 {
		t.Fatalf("Snapshot allocates %v/op, want 0", n)
	}
}

func TestCloseSemantics(t *testing.T) {
	p := svcPlanner(t, 40, 7, false)
	svc := New(p, Config{})
	c := p.Tree.Clients[0]
	svc.Leave(c)
	svc.Flush()
	snap := svc.Snapshot()
	svc.Close()
	svc.Close() // idempotent
	// Post-close: reads still work against the last snapshot, churn is
	// dropped without blocking, Flush returns.
	svc.Join(c)
	svc.Flush()
	if svc.Snapshot() != snap {
		t.Fatal("snapshot changed after Close")
	}
	if svc.Get(c) != nil {
		t.Fatal("post-close churn applied")
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for i := int64(0); i < 1000; i++ {
		h.Record(i) // 0..999 ns: buckets 0..62
	}
	h.Record(1 << 20) // overflow
	if h.Total() != 1001 {
		t.Fatalf("total %d != 1001", h.Total())
	}
	if p50 := h.Quantile(0.5); p50 < 400 || p50 > 600 {
		t.Fatalf("p50 %v outside [400,600]", p50)
	}
	if h.Quantile(1.0) != float64(1<<20) {
		t.Fatalf("max quantile %v != overflow max", h.Quantile(1.0))
	}
	var a, b Hist
	a.Record(100)
	b.Record(5000)
	a.Merge(&b)
	if a.Total() != 2 {
		t.Fatalf("merged total %d != 2", a.Total())
	}
	if (&Hist{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}
