package strategysvc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// BenchmarkStrategyService drives the readers × churn-rate grid the
// benchdiff gate tracks. Reported metrics per cell:
//
//   - ns/op (overridden): mean wall time per query across all readers —
//     the service's aggregate query throughput (qps = 1e9/ns-op · note the
//     host is time-slicing readers on however many cores it has);
//   - p50-ns/op, p99-ns/op: per-query latency quantiles from 16 ns-bucket
//     histograms, where the timed window is one Get plus one monotonic
//     clock read (~tens of ns of clock overhead, identical across
//     captures, so regressions in Get still move the quantiles);
//   - allocs/op: per reader-block iteration. The read path is
//     allocation-free, so churn=0 cells must report 0 — that is the
//     steady-state decay gate. Cells with background churn inherit the
//     applier's replanning allocations at a nondeterministic phase, so
//     benchdiff skips the alloc gate for them (-allocskip) and gates their
//     latency only.
//
// Reader goroutines are long-lived and fed per-iteration through unbuffered
// channels: one b.N iteration = every reader answering queriesPerIter
// queries. That keeps goroutine spawning out of the timed loop and makes
// the per-iteration block big enough (readers × 32768 queries) for stable
// quantiles even at `-benchtime 3x` (the bench-json capture mode).
func BenchmarkStrategyService(b *testing.B) {
	for _, readers := range []int{1, 4} {
		for _, churn := range []int{0, 2000, 20000} {
			b.Run(fmt.Sprintf("readers=%d/churn=%d", readers, churn), func(b *testing.B) {
				benchService(b, readers, churn)
			})
		}
	}
}

const queriesPerIter = 1 << 15

func benchService(b *testing.B, readers, churnRate int) {
	net := topology.MustGenerateTree(topology.DefaultTreeConfig(512), rng.New(17))
	tree := mtree.MustBuild(net)
	p := core.NewPlanner(tree, route.NewTreeTables(tree))
	svc := New(p, Config{})
	defer svc.Close()
	clients := tree.Clients

	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	if churnRate > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			DriveChurn(svc, clients, churnRate, stopChurn)
		}()
	}

	hists := make([]Hist, readers)
	start := make([]chan struct{}, readers)
	done := make(chan struct{}, readers)
	var quit sync.Once
	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	for g := 0; g < readers; g++ {
		start[g] = make(chan struct{})
		readerWG.Add(1)
		go func(h *Hist, kick chan struct{}, seed uint64) {
			defer readerWG.Done()
			r := rng.New(seed)
			for {
				select {
				case <-kick:
				case <-stopReaders:
					return
				}
				var nils int64
				for q := 0; q < queriesPerIter; q++ {
					c := clients[r.Intn(len(clients))]
					t0 := time.Now()
					st := svc.Get(c)
					h.Record(time.Since(t0).Nanoseconds())
					if st == nil {
						nils++ // sink: keeps Get from being elided
					}
				}
				benchSink.Add(nils)
				done <- struct{}{}
			}
		}(&hists[g], start[g], uint64(g)+41)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < readers; g++ {
			start[g] <- struct{}{}
		}
		for g := 0; g < readers; g++ {
			<-done
		}
	}
	b.StopTimer()
	quit.Do(func() { close(stopReaders) })
	readerWG.Wait()
	close(stopChurn)
	churnWG.Wait()

	var merged Hist
	for i := range hists {
		merged.Merge(&hists[i])
	}
	total := float64(b.N) * float64(readers) * queriesPerIter
	nsPerQuery := float64(b.Elapsed().Nanoseconds()) / total
	b.ReportMetric(nsPerQuery, "ns/op")
	b.ReportMetric(1e9/nsPerQuery, "qps")
	b.ReportMetric(merged.Quantile(0.50), "p50-ns/op")
	b.ReportMetric(merged.Quantile(0.99), "p99-ns/op")
	st := svc.Stats()
	b.ReportMetric(float64(st.Published), "versions")
	b.ReportMetric(st.MeanBatch(), "batch-mean")
}

var benchSink atomic.Int64
