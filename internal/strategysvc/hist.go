package strategysvc

// Hist is a fixed-size latency histogram for the query-latency harnesses
// (BenchmarkStrategyService and the cmd/strategy stress mode): linear
// 16 ns buckets up to ~16 µs with a single overflow bucket that tracks its
// own maximum. Recording is allocation-free and unsynchronised — give each
// reader goroutine its own Hist and Merge them afterwards. The value form
// embeds the bucket array, so a []Hist is one flat allocation; the leading
// and trailing pads keep adjacent readers' hot counters off each other's
// cache lines.
type Hist struct {
	_       [8]uint64
	buckets [histBuckets]uint64
	// over counts samples past the linear range; overMax is the largest
	// such sample in nanoseconds.
	over    uint64
	overMax uint64
	total   uint64
	_       [8]uint64
}

const (
	histShift   = 4 // 16 ns per bucket
	histBuckets = 1024
)

// Record adds one sample, in nanoseconds.
func (h *Hist) Record(ns int64) {
	h.total++
	i := uint64(ns) >> histShift
	if i < histBuckets {
		h.buckets[i]++
		return
	}
	h.over++
	if uint64(ns) > h.overMax {
		h.overMax = uint64(ns)
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.over += other.over
	if other.overMax > h.overMax {
		h.overMax = other.overMax
	}
	h.total += other.total
}

// Total returns the number of recorded samples.
func (h *Hist) Total() uint64 { return h.total }

// Quantile returns the q-quantile (q in [0,1]) in nanoseconds, resolved to
// the bucket midpoint; quantiles falling in the overflow range return the
// overflow maximum. Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	if target < 1 {
		target = 1
	}
	var seen float64
	for i, c := range h.buckets {
		seen += float64(c)
		if seen >= target {
			return float64(i<<histShift) + float64(1<<histShift)/2
		}
	}
	return float64(h.overMax)
}
