package strategysvc

import (
	"sync"
	"sync/atomic"
	"time"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// This file is the stress harness behind `strategy -stress` and the
// readers × churn benchmark grid: synthetic churn at a target rate plus
// query-loop readers with per-query latency histograms.

// DriveChurn issues Join/Leave churn against the service at the given rate
// (ops/sec) until stop closes. A 1 ms-tick accumulator catches starved
// ticks up in bursts — exactly the coalescing workload the applier batches.
// A 16-slot ring of departed members keeps every op valid: a step either
// re-joins the member its slot holds or departs the next client into it,
// so membership oscillates within 16 of full. The sequence is a pure
// function of (clients, rate, elapsed time).
func DriveChurn(svc *Service, clients []graph.NodeID, rate int, stop <-chan struct{}) {
	const window = 16
	var out [window]graph.NodeID
	for i := range out {
		out[i] = graph.None
	}
	next, slot := 0, 0
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	begin := time.Now()
	var issued int64
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		due := int64(time.Since(begin).Seconds() * float64(rate))
		for ; issued < due; issued++ {
			// Re-check stop inside the catch-up loop: when the applier is
			// slower than the target rate the queue exerts backpressure and
			// this loop can outlive many ticks.
			select {
			case <-stop:
				return
			default:
			}
			if prev := out[slot]; prev != graph.None {
				svc.Join(prev)
				out[slot] = graph.None
			} else {
				v := clients[next]
				next = (next + 1) % len(clients)
				svc.Leave(v)
				out[slot] = v
			}
			slot = (slot + 1) % window
		}
	}
}

var stressSink atomic.Uint64

// StressResult is what one Stress run measured.
type StressResult struct {
	// Queries is the total query count across all readers; Elapsed the
	// measured wall time, so Queries/Elapsed.Seconds() is the aggregate
	// query throughput.
	Queries uint64
	Elapsed time.Duration
	// P50 and P99 are per-query latency quantiles in nanoseconds (the
	// timed window is one Get plus one monotonic clock read).
	P50, P99 float64
	// Stats is the applier counter snapshot at the end of the run.
	Stats Stats
	// Version and Epoch stamp the final snapshot.
	Version, Epoch uint64
}

// Stress runs the readers × churn workload for the given duration: readers
// goroutines query uniformly random clients in a closed loop while
// DriveChurn applies churn at churnRate ops/sec in the background (0: no
// churn). It reports aggregate throughput, latency quantiles, and the
// applier's batching counters. Queries-per-second on a host with fewer
// cores than readers measures time-slicing, not parallel speedup — readers
// never block each other, but they still share the silicon.
func Stress(svc *Service, clients []graph.NodeID, readers, churnRate int, d time.Duration) StressResult {
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	if churnRate > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			DriveChurn(svc, clients, churnRate, stop)
		}()
	}

	hists := make([]Hist, readers)
	var queries atomic.Uint64
	var readerWG sync.WaitGroup
	begin := time.Now()
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(h *Hist, seed uint64) {
			defer readerWG.Done()
			r := rng.New(seed)
			var n, nils uint64
			// Check the stop flag every 1024 queries, not every query.
			for {
				select {
				case <-stop:
					queries.Add(n)
					// Departed members legitimately answer nil; the sink
					// keeps the Get from being elided.
					stressSink.Add(nils)
					return
				default:
				}
				for q := 0; q < 1024; q++ {
					c := clients[r.Intn(len(clients))]
					t0 := time.Now()
					st := svc.Get(c)
					h.Record(time.Since(t0).Nanoseconds())
					if st == nil {
						nils++
					}
					n++
				}
			}
		}(&hists[g], uint64(g)+7)
	}

	timer := time.NewTimer(d)
	<-timer.C
	close(stop)
	readerWG.Wait()
	elapsed := time.Since(begin)
	churnWG.Wait()

	var merged Hist
	for i := range hists {
		merged.Merge(&hists[i])
	}
	snap := svc.Snapshot()
	return StressResult{
		Queries: queries.Load(),
		Elapsed: elapsed,
		P50:     merged.Quantile(0.50),
		P99:     merged.Quantile(0.99),
		Stats:   svc.Stats(),
		Version: snap.Version,
		Epoch:   snap.Epoch,
	}
}
