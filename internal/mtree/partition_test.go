package mtree

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func partitionFixture(t *testing.T, clients int, seed uint64) *Tree {
	t.Helper()
	net, err := topology.GenerateTree(topology.DefaultTreeConfig(clients), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(net)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPartitionInvariants checks the structural contract of PartitionTree on
// generated trees at several shard counts: the root anchors shard 0, hosts
// ride with their access router, shard indices form contiguous nondecreasing
// bands along the preorder, client weights sum and balance, and the
// lookahead is a positive finite cut-link delay.
func TestPartitionInvariants(t *testing.T) {
	for _, n := range []int{20, 64, 257} {
		tr := partitionFixture(t, n, uint64(1000+n))
		for _, k := range []int{2, 3, 4, 8} {
			p := PartitionTree(tr, k)
			if p.K != k {
				t.Fatalf("n=%d k=%d: got K=%d", n, k, p.K)
			}
			if p.ShardOf[tr.Root] != 0 {
				t.Errorf("n=%d k=%d: root on shard %d, want 0", n, k, p.ShardOf[tr.Root])
			}
			// Hosts inherit their tree parent's shard: access links are
			// never cut.
			for _, u := range tr.Order {
				if !tr.Net.IsClient(u) && u != tr.Net.Source {
					continue
				}
				if par := tr.Parent[u]; par != graph.None && p.ShardOf[u] != p.ShardOf[par] {
					t.Errorf("n=%d k=%d: host %d on shard %d, parent %d on shard %d",
						n, k, u, p.ShardOf[u], par, p.ShardOf[par])
				}
			}
			// Router shard indices are nondecreasing along the preorder
			// (contiguous bands).
			last := int32(0)
			for _, u := range tr.Order {
				if tr.Net.IsClient(u) || u == tr.Net.Source {
					continue
				}
				sh := p.ShardOf[u]
				if sh < last {
					t.Fatalf("n=%d k=%d: router %d on shard %d after shard %d in preorder",
						n, k, u, sh, last)
				}
				if sh >= int32(k) {
					t.Fatalf("n=%d k=%d: router %d on shard %d out of range", n, k, u, sh)
				}
				last = sh
			}
			// Weights count every client exactly once and match ShardOf.
			sum := 0
			for _, w := range p.Weights {
				sum += w
			}
			if sum != len(tr.Clients) {
				t.Errorf("n=%d k=%d: weights sum %d, want %d clients", n, k, sum, len(tr.Clients))
			}
			counts := make([]int, k)
			for _, c := range tr.Clients {
				counts[p.ShardOf[c]]++
			}
			for i := range counts {
				if counts[i] != p.Weights[i] {
					t.Errorf("n=%d k=%d shard %d: weight %d, counted %d",
						n, k, i, p.Weights[i], counts[i])
				}
			}
			// Lookahead: positive, finite, and equal to the cheapest
			// cross-shard link delay.
			if !(p.Lookahead > 0) || math.IsInf(p.Lookahead, 1) {
				t.Fatalf("n=%d k=%d: lookahead %v, want positive finite", n, k, p.Lookahead)
			}
			min := math.Inf(1)
			for id := 0; id < tr.Net.G.NumEdges(); id++ {
				e := tr.Net.G.Edge(graph.EdgeID(id))
				if p.ShardOf[e.A] != p.ShardOf[e.B] && tr.Net.Delay[id] < min {
					min = tr.Net.Delay[id]
				}
			}
			if p.Lookahead != min {
				t.Errorf("n=%d k=%d: lookahead %v, want min cut delay %v", n, k, p.Lookahead, min)
			}
		}
	}
}

// TestPartitionSingleShard pins the degenerate cases: k<=1 and k clamped to
// the client count produce a shard-0-only partition with infinite lookahead
// (k==1) and never more shards than clients.
func TestPartitionSingleShard(t *testing.T) {
	tr := partitionFixture(t, 12, 42)
	for _, k := range []int{0, 1} {
		p := PartitionTree(tr, k)
		if p.K != 1 {
			t.Fatalf("k=%d: got K=%d, want 1", k, p.K)
		}
		if !math.IsInf(p.Lookahead, 1) {
			t.Errorf("k=%d: lookahead %v, want +Inf", k, p.Lookahead)
		}
		for u, sh := range p.ShardOf {
			if sh != 0 {
				t.Fatalf("k=%d: node %d on shard %d", k, u, sh)
			}
		}
		if p.Weights[0] != len(tr.Clients) {
			t.Errorf("k=%d: weight %d, want %d", k, p.Weights[0], len(tr.Clients))
		}
	}
	if p := PartitionTree(tr, 100); p.K > len(tr.Clients) {
		t.Errorf("k=100 not clamped: K=%d > %d clients", p.K, len(tr.Clients))
	}
}

// TestPartitionBalance checks that client weights stay within a small factor
// of ideal on a large generated tree — the band construction bounds the
// imbalance by one router's attachment count.
func TestPartitionBalance(t *testing.T) {
	tr := partitionFixture(t, 1024, 7)
	for _, k := range []int{2, 4, 8} {
		p := PartitionTree(tr, k)
		ideal := float64(len(tr.Clients)) / float64(k)
		for i, w := range p.Weights {
			if float64(w) > 2*ideal+8 || float64(w) < ideal/4 {
				t.Errorf("k=%d shard %d: weight %d far from ideal %.1f (weights %v)",
					k, i, w, ideal, p.Weights)
			}
		}
	}
}
