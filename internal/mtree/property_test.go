package mtree

import (
	"math"
	"testing"
	"testing/quick"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func genTree(seed uint64, sizeByte uint8) *Tree {
	m := 10 + int(sizeByte)%120
	net := topology.MustGenerate(topology.DefaultConfig(m), rng.New(seed))
	return MustBuild(net)
}

// Property: LCA is symmetric, idempotent on ancestors, and its depth
// lower-bounds both arguments' depths.
func TestPropLCAAlgebra(t *testing.T) {
	f := func(seed uint64, size uint8, pick uint16) bool {
		tr := genTree(seed, size)
		cs := tr.Clients
		a := cs[int(pick)%len(cs)]
		b := cs[int(pick/7)%len(cs)]
		l := tr.LCA(a, b)
		if tr.LCA(b, a) != l {
			return false
		}
		if !tr.IsAncestor(l, a) || !tr.IsAncestor(l, b) {
			return false
		}
		if tr.Depth[l] > tr.Depth[a] || tr.Depth[l] > tr.Depth[b] {
			return false
		}
		// The LCA is the DEEPEST common ancestor: its child toward a (if
		// any) must not be an ancestor of b.
		if l != a && l != b {
			ca := tr.ChildToward(l, a)
			if tr.IsAncestor(ca, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: tree-path hop count and delay decompose through the LCA and
// satisfy the triangle equality d(a,b) = d(a,l) + d(l,b).
func TestPropTreeDistanceDecomposition(t *testing.T) {
	f := func(seed uint64, size uint8, pick uint16) bool {
		tr := genTree(seed, size)
		cs := tr.Clients
		a := cs[int(pick)%len(cs)]
		b := cs[int(pick/11)%len(cs)]
		l := tr.LCA(a, b)
		hops := tr.TreeHops(a, b)
		if hops != (tr.Depth[a]-tr.Depth[l])+(tr.Depth[b]-tr.Depth[l]) {
			return false
		}
		dl := tr.TreeDelay(a, b)
		want := (tr.DelayFromRoot[a] - tr.DelayFromRoot[l]) +
			(tr.DelayFromRoot[b] - tr.DelayFromRoot[l])
		if math.Abs(dl-want) > 1e-9 {
			return false
		}
		// Path length consistency.
		return len(tr.TreePath(a, b)) == int(hops)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: subtree node sets partition correctly — a node is in the
// subtree of r iff r is its ancestor.
func TestPropSubtreeMembership(t *testing.T) {
	f := func(seed uint64, size uint8, pick uint16) bool {
		tr := genTree(seed, size)
		r := tr.Order[int(pick)%len(tr.Order)]
		in := map[graph.NodeID]bool{}
		for _, v := range tr.SubtreeNodes(r) {
			in[v] = true
		}
		for _, v := range tr.Order {
			if in[v] != tr.IsAncestor(r, v) {
				return false
			}
		}
		return len(in) == tr.SubtreeEdgeCount(r)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: preorder Order lists each tree node exactly once, parents
// before children.
func TestPropPreorderConsistency(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		tr := genTree(seed, size)
		pos := map[graph.NodeID]int{}
		for i, v := range tr.Order {
			if _, dup := pos[v]; dup {
				return false
			}
			pos[v] = i
		}
		for _, v := range tr.Order {
			if p := tr.Parent[v]; p != graph.None && pos[p] >= pos[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
