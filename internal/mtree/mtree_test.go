package mtree

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func buildChain(t *testing.T, hops int, clientAt []int) *Tree {
	t.Helper()
	net, err := topology.Chain(hops, 1.0, clientAt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(net)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildChainDepths(t *testing.T) {
	tr := buildChain(t, 4, nil)
	if tr.Depth[tr.Root] != 0 {
		t.Fatal("root depth must be 0")
	}
	// Source → r1..r4 → client: client depth = 5.
	c := tr.Clients[0]
	if tr.Depth[c] != 5 {
		t.Fatalf("tail client depth %d, want 5", tr.Depth[c])
	}
	if tr.DelayFromRoot[c] != 5.0 {
		t.Fatalf("tail client delay %v, want 5", tr.DelayFromRoot[c])
	}
	if tr.NumTreeNodes() != 6 || tr.NumTreeEdges() != 5 {
		t.Fatal("tree size wrong")
	}
}

func TestParentChildConsistency(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(120), rng.New(5))
	tr := MustBuild(net)
	for _, v := range tr.Order {
		if v == tr.Root {
			if tr.Parent[v] != graph.None {
				t.Fatal("root has a parent")
			}
			continue
		}
		p := tr.Parent[v]
		found := false
		for i, c := range tr.Children[p] {
			if c == v {
				found = true
				if tr.ChildLink[p][i] != tr.ParentLink[v] {
					t.Fatalf("child link mismatch at %d", v)
				}
			}
		}
		if !found {
			t.Fatalf("node %d missing from parent's child list", v)
		}
		if tr.Depth[v] != tr.Depth[p]+1 {
			t.Fatalf("depth not parent+1 at %d", v)
		}
		wantDelay := tr.DelayFromRoot[p] + net.Delay[tr.ParentLink[v]]
		if math.Abs(tr.DelayFromRoot[v]-wantDelay) > 1e-9 {
			t.Fatalf("delay accumulation wrong at %d", v)
		}
	}
}

// naiveLCA walks parents upward — the O(depth) reference implementation.
func naiveLCA(tr *Tree, a, b graph.NodeID) graph.NodeID {
	seen := map[graph.NodeID]bool{}
	for u := a; u != graph.None; u = tr.Parent[u] {
		seen[u] = true
	}
	for u := b; u != graph.None; u = tr.Parent[u] {
		if seen[u] {
			return u
		}
	}
	return graph.None
}

func TestLCAMatchesNaive(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(150), rng.New(42))
	tr := MustBuild(net)
	r := rng.New(1)
	nodes := tr.Order
	for i := 0; i < 2000; i++ {
		a := nodes[r.Intn(len(nodes))]
		b := nodes[r.Intn(len(nodes))]
		if got, want := tr.LCA(a, b), naiveLCA(tr, a, b); got != want {
			t.Fatalf("LCA(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestLCAIdentityAndAncestor(t *testing.T) {
	tr := buildChain(t, 3, []int{1, 2})
	c := tr.Clients[0]
	if tr.LCA(c, c) != c {
		t.Fatal("LCA(v,v) != v")
	}
	if tr.LCA(tr.Root, c) != tr.Root {
		t.Fatal("LCA(root, v) != root")
	}
}

func TestMeetDepthChain(t *testing.T) {
	// Chain with 3 routers: clients at r1, r2 and the tail at r3.
	tr := buildChain(t, 3, []int{1, 2})
	tail := tr.Clients[0] // tail client (added first by Chain)
	c1 := tr.Clients[1]   // at r1 (depth of r1 = 1)
	c2 := tr.Clients[2]   // at r2 (depth 2)
	if ds := tr.MeetDepth(tail, c1); ds != 1 {
		t.Fatalf("MeetDepth(tail, c1) = %d, want 1", ds)
	}
	if ds := tr.MeetDepth(tail, c2); ds != 2 {
		t.Fatalf("MeetDepth(tail, c2) = %d, want 2", ds)
	}
	if ds := tr.MeetDepth(c1, c2); ds != 1 {
		t.Fatalf("MeetDepth(c1, c2) = %d, want 1", ds)
	}
}

func TestIsAncestor(t *testing.T) {
	tr := buildChain(t, 3, []int{1})
	tail := tr.Clients[0]
	side := tr.Clients[1]
	if !tr.IsAncestor(tr.Root, tail) || !tr.IsAncestor(tail, tail) {
		t.Fatal("ancestor relation broken")
	}
	if tr.IsAncestor(tail, tr.Root) {
		t.Fatal("descendant reported as ancestor")
	}
	if tr.IsAncestor(side, tail) || tr.IsAncestor(tail, side) {
		t.Fatal("siblings reported as ancestors")
	}
}

func TestAncestorWalk(t *testing.T) {
	tr := buildChain(t, 4, nil)
	c := tr.Clients[0] // depth 5
	if tr.Ancestor(c, 0) != c {
		t.Fatal("0th ancestor should be self")
	}
	if tr.Ancestor(c, 5) != tr.Root {
		t.Fatal("depth-th ancestor should be root")
	}
	if tr.Ancestor(c, 6) != graph.None {
		t.Fatal("walking past root should give None")
	}
	if tr.Ancestor(c, 2) != tr.Parent[tr.Parent[c]] {
		t.Fatal("2nd ancestor wrong")
	}
}

func TestTreeHopsAndDelay(t *testing.T) {
	tr := buildChain(t, 3, []int{1})
	tail := tr.Clients[0] // depth 4, via r3
	side := tr.Clients[1] // depth 2, at r1
	// Path: side→r1→r2→r3→tail = 4 hops, delay 4.
	if h := tr.TreeHops(side, tail); h != 4 {
		t.Fatalf("TreeHops = %d, want 4", h)
	}
	if d := tr.TreeDelay(side, tail); math.Abs(d-4) > 1e-9 {
		t.Fatalf("TreeDelay = %v, want 4", d)
	}
	if h := tr.TreeHops(tail, tail); h != 0 {
		t.Fatal("TreeHops(v,v) != 0")
	}
}

func TestTreePath(t *testing.T) {
	tr := buildChain(t, 3, []int{1})
	tail := tr.Clients[0]
	side := tr.Clients[1]
	p := tr.TreePath(side, tail)
	if p[0] != side || p[len(p)-1] != tail {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if len(p) != int(tr.TreeHops(side, tail))+1 {
		t.Fatalf("path length %d inconsistent with hops", len(p))
	}
	// Consecutive nodes must be parent/child pairs.
	for i := 0; i+1 < len(p); i++ {
		a, b := p[i], p[i+1]
		if tr.Parent[a] != b && tr.Parent[b] != a {
			t.Fatalf("path step %d-%d not a tree edge", a, b)
		}
	}
}

func TestSubtree(t *testing.T) {
	net, err := topology.Binary(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := MustBuild(net)
	// Root router subtree: all nodes except the source = 15.
	rootRouter := tr.Children[tr.Root][0]
	sub := tr.SubtreeNodes(rootRouter)
	if len(sub) != 15 {
		t.Fatalf("subtree size %d, want 15", len(sub))
	}
	if tr.SubtreeEdgeCount(rootRouter) != 14 {
		t.Fatal("subtree edge count wrong")
	}
	clients := tr.SubtreeClients(rootRouter)
	if len(clients) != 8 {
		t.Fatalf("subtree clients %d, want 8", len(clients))
	}
	// A leaf's subtree is itself.
	leaf := tr.Clients[0]
	if n := tr.SubtreeNodes(leaf); len(n) != 1 || n[0] != leaf {
		t.Fatal("leaf subtree wrong")
	}
}

func TestChildToward(t *testing.T) {
	tr := buildChain(t, 3, nil)
	c := tr.Clients[0]
	r1 := tr.Children[tr.Root][0]
	if got := tr.ChildToward(tr.Root, c); got != r1 {
		t.Fatalf("ChildToward(root, c) = %d, want %d", got, r1)
	}
	if got := tr.ChildToward(tr.Parent[c], c); got != c {
		t.Fatal("ChildToward(parent, c) should be c")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ChildToward(v, v) did not panic")
		}
	}()
	tr.ChildToward(c, c)
}

func TestPathToRoot(t *testing.T) {
	tr := buildChain(t, 2, nil)
	c := tr.Clients[0]
	p := tr.PathToRoot(c)
	if len(p) != 4 || p[0] != c || p[len(p)-1] != tr.Root {
		t.Fatalf("bad PathToRoot %v", p)
	}
}

func TestOffTreeNodes(t *testing.T) {
	// Hand-built network with an off-tree router.
	b := topology.NewBuilder()
	s := b.Source()
	r1 := b.Router()
	r2 := b.Router() // off-tree: linked but not a tree edge
	c := b.Client()
	b.TreeLink(s, r1, 1)
	b.TreeLink(r1, c, 1)
	b.Link(r1, r2, 1)
	b.Link(r2, c, 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := MustBuild(net)
	if tr.InTree[r2] {
		t.Fatal("off-tree router marked in-tree")
	}
	if tr.Depth[r2] != -1 || tr.PathToRoot(r2) != nil {
		t.Fatal("off-tree router has tree attributes")
	}
	if tr.IsAncestor(r2, c) || tr.IsAncestor(s, r2) {
		t.Fatal("ancestor relation includes off-tree node")
	}
}

func TestBuildRejectsDisconnectedClient(t *testing.T) {
	// Manually corrupt a network: client present but no tree edge to it.
	b := topology.NewBuilder()
	s := b.Source()
	r := b.Router()
	c1 := b.Client()
	c2 := b.Client()
	b.TreeLink(s, r, 1)
	b.TreeLink(r, c1, 1)
	b.Link(r, c2, 1) // c2 connected, but NOT via tree
	net, err := b.Build()
	if err == nil {
		// Build validates tree connectivity too; if it passed, mtree must
		// catch it.
		if _, err := Build(net); err == nil {
			t.Fatal("disconnected client not rejected")
		}
		return
	}
	// topology.Validate caught it first — also acceptable.
	_ = c2
}

func TestRandomTopologyTreeMatchesNetworkTree(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		net := topology.MustGenerate(topology.DefaultConfig(90), rng.New(seed))
		tr := MustBuild(net)
		if tr.NumTreeEdges() != len(net.TreeEdges) {
			t.Fatalf("seed %d: tree edge count mismatch", seed)
		}
		for _, c := range net.Clients {
			if !tr.InTree[c] {
				t.Fatalf("seed %d: client %d off tree", seed, c)
			}
			if tr.Depth[c] <= 0 {
				t.Fatalf("seed %d: client %d depth %d", seed, c, tr.Depth[c])
			}
		}
	}
}

func BenchmarkLCA(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(600), rng.New(1))
	tr := MustBuild(net)
	r := rng.New(2)
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{
			tr.Clients[r.Intn(len(tr.Clients))],
			tr.Clients[r.Intn(len(tr.Clients))],
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		_ = tr.LCA(p[0], p[1])
	}
}

func BenchmarkBuild600(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(600), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Build(net)
	}
}
