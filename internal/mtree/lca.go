package mtree

import (
	"math/bits"

	"rmcast/internal/graph"
)

// This file implements constant-time LCA queries via the classic Euler-tour
// reduction to range-minimum: the DFS in Build records the full Euler tour
// (2n−1 entries — every node once per visit), and the LCA of a and b is the
// minimum-depth node on the tour segment between their first occurrences.
// A sparse table over the tour answers that range-minimum in O(1).
//
// The planner issues O(k²) LCA queries per topology (every client against
// every other, k ≈ n/3 at the paper's client density), so replacing the
// O(log n) binary-lifting query with O(1) removes the dominant log factor
// from strategy planning. The lifting table is kept for Ancestor and
// ChildToward, which genuinely need ancestor jumps.

// buildLCA constructs eulerFirst and the sparse table from the Euler tour
// recorded by Build's DFS. Preprocessing is O(n log n) time and space,
// matching the lifting table it complements.
func (t *Tree) buildLCA() {
	n := len(t.Parent)
	t.eulerFirst = make([]int32, n)
	for i := range t.eulerFirst {
		t.eulerFirst[i] = -1
	}
	for i, v := range t.euler {
		if t.eulerFirst[v] < 0 {
			t.eulerFirst[v] = int32(i)
		}
	}
	m := len(t.euler)
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // enough rows for spans up to m
	}
	t.sparse = make([][]int32, levels)
	row := make([]int32, m)
	for i := range row {
		row[i] = int32(i)
	}
	t.sparse[0] = row
	for k := 1; k < levels; k++ {
		span := 1 << k
		if span > m {
			break
		}
		prev := t.sparse[k-1]
		cur := make([]int32, m-span+1)
		half := span >> 1
		for i := range cur {
			l, r := prev[i], prev[i+half]
			if t.Depth[t.euler[l]] <= t.Depth[t.euler[r]] {
				cur[i] = l
			} else {
				cur[i] = r
			}
		}
		t.sparse[k] = cur
	}
}

// lcaLift answers the LCA query in O(log n) from the lifting table alone —
// the BuildLite path, where the Euler/sparse index is deliberately absent.
// Ancestor tests use the O(1) tin/tout intervals, so no depth equalisation
// is needed: lift a as high as possible while staying off b's ancestor
// path; its parent is then the LCA.
func (t *Tree) lcaLift(a, b graph.NodeID) graph.NodeID {
	if t.IsAncestor(a, b) {
		return a
	}
	if t.IsAncestor(b, a) {
		return b
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if u := t.up[k][a]; u != graph.None && !t.IsAncestor(u, b) {
			a = u
		}
	}
	return t.Parent[a]
}

// lcaRMQ answers the LCA query in O(1) from the sparse table. Both nodes
// must be in the tree (LCA checks).
func (t *Tree) lcaRMQ(a, b graph.NodeID) graph.NodeID {
	l, r := t.eulerFirst[a], t.eulerFirst[b]
	if l > r {
		l, r = r, l
	}
	k := bits.Len(uint(r-l+1)) - 1
	i, j := t.sparse[k][l], t.sparse[k][r-(1<<k)+1]
	if t.Depth[t.euler[i]] <= t.Depth[t.euler[j]] {
		return t.euler[i]
	}
	return t.euler[j]
}
