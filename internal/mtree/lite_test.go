package mtree

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

// TestLiteMatchesFull pins BuildLite's contract: every exported field and
// every query except the LCA implementation detail is identical to Build —
// including LCA answers themselves, which fall back to binary lifting.
func TestLiteMatchesFull(t *testing.T) {
	for _, n := range []int{2, 7, 64, 513} {
		net, err := topology.GenerateTree(topology.DefaultTreeConfig(n), rng.New(uint64(900+n)))
		if err != nil {
			t.Fatal(err)
		}
		full, err := Build(net)
		if err != nil {
			t.Fatal(err)
		}
		lite, err := BuildLite(net)
		if err != nil {
			t.Fatal(err)
		}
		if lite.sparse != nil || lite.euler != nil {
			t.Fatalf("n=%d: lite tree carries the Euler/sparse index", n)
		}
		for i := range full.Parent {
			if full.Parent[i] != lite.Parent[i] || full.Depth[i] != lite.Depth[i] ||
				full.DelayFromRoot[i] != lite.DelayFromRoot[i] ||
				full.tin[i] != lite.tin[i] || full.tout[i] != lite.tout[i] {
				t.Fatalf("n=%d: node %d structure diverges", n, i)
			}
			if len(full.Children[i]) != len(lite.Children[i]) {
				t.Fatalf("n=%d: node %d child count diverges", n, i)
			}
			for j := range full.Children[i] {
				if full.Children[i][j] != lite.Children[i][j] ||
					full.ChildLink[i][j] != lite.ChildLink[i][j] {
					t.Fatalf("n=%d: node %d child %d diverges", n, i, j)
				}
			}
		}
		for i := range full.Order {
			if full.Order[i] != lite.Order[i] {
				t.Fatalf("n=%d: preorder diverges at %d", n, i)
			}
		}
		// LCA agreement over every client pair: O(1) Euler RMQ vs O(log n)
		// binary lifting must answer identically.
		cs := full.Clients
		for i := 0; i < len(cs); i++ {
			for j := i; j < len(cs); j++ {
				if got, want := lite.LCA(cs[i], cs[j]), full.LCA(cs[i], cs[j]); got != want {
					t.Fatalf("n=%d: LCA(%d,%d) lite=%d full=%d", n, cs[i], cs[j], got, want)
				}
			}
		}
		// ChildToward agreement on proper ancestor pairs.
		for _, c := range cs {
			for a := full.Parent[c]; a != graph.None; a = full.Parent[a] {
				if got, want := lite.ChildToward(a, c), full.ChildToward(a, c); got != want {
					t.Fatalf("n=%d: ChildToward(%d,%d) lite=%d full=%d", n, a, c, got, want)
				}
			}
		}
	}
}

// TestPartitionDomains checks the domain-sizing wrapper: the domain count is
// ⌈clients/target⌉ (clamped by PartitionTree), every client lands in exactly
// one domain, and — the worker-invariance anchor — the layout is a pure
// function of (tree, target), so repeated calls agree element for element.
func TestPartitionDomains(t *testing.T) {
	tr := partitionFixture(t, 300, 77)
	total := len(tr.Clients)
	for _, target := range []int{1, 7, 32, 64, 150, 299, 300, 1000} {
		p := PartitionDomains(tr, target)
		wantK := (total + target - 1) / target
		if wantK > total {
			wantK = total
		}
		if p.K != wantK {
			t.Fatalf("target=%d: K=%d, want %d", target, p.K, wantK)
		}
		counts := make([]int, p.K)
		for _, c := range tr.Clients {
			d := p.ShardOf[c]
			if d < 0 || int(d) >= p.K {
				t.Fatalf("target=%d: client %d in out-of-range domain %d", target, c, d)
			}
			counts[d]++
		}
		sum := 0
		for i, got := range counts {
			if got != p.Weights[i] {
				t.Fatalf("target=%d domain %d: weight %d, counted %d", target, i, p.Weights[i], got)
			}
			sum += got
		}
		if sum != total {
			t.Fatalf("target=%d: clients counted %d, want %d", target, sum, total)
		}
		q := PartitionDomains(tr, target)
		if q.K != p.K || q.Lookahead != p.Lookahead {
			t.Fatalf("target=%d: repeated partition disagrees", target)
		}
		for i := range p.ShardOf {
			if p.ShardOf[i] != q.ShardOf[i] {
				t.Fatalf("target=%d: repeated partition maps node %d to %d then %d",
					target, i, p.ShardOf[i], q.ShardOf[i])
			}
		}
	}
	if p := PartitionDomains(tr, 0); p.K != total {
		t.Fatalf("target=0 should clamp to one-client domains: K=%d", p.K)
	}
}
