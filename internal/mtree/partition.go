package mtree

import (
	"math"

	"rmcast/internal/graph"
)

// Partition splits a multicast tree into K shards for conservative parallel
// simulation (Chandy–Misra–Bryant style): each shard is a contiguous run of
// the preorder over the tree's routers, so a shard owns a band of recovery
// subtrees and cross-shard traffic only flows where the bands meet. Hosts
// are never separated from their access router — every host lives on its
// tree parent's shard — so access links are never cut and the lookahead is
// set by backbone delays.
type Partition struct {
	// K is the shard count.
	K int
	// ShardOf maps every node (host or router) to its shard. The tree root
	// — the source host — is always on shard 0. Off-tree nodes are parked
	// on shard 0; they carry no traffic in tree runs.
	ShardOf []int32
	// Lookahead is the minimum realised delay over every network link
	// (tree links and chords alike) whose endpoints lie on different
	// shards. Any packet observed by a remote shard crossed at least one
	// such link, so its arrival lies at least Lookahead past its send time
	// — the safe-time window width of the parallel runner. +Inf when no
	// link is cut (K == 1, or a degenerate partition).
	Lookahead float64
	// Weights counts the clients per shard, for balance diagnostics.
	Weights []int
}

// PartitionTree builds a K-shard partition of t. Routers are assigned by
// cumulative client weight along the preorder — router r goes to shard
// ⌊(clients preceding r)·K/total⌋ — which keeps shard indices nondecreasing
// along the preorder (contiguous bands) and client weights balanced to
// within one router's attachment count. Hosts inherit their tree parent's
// shard; the root (the source host itself) takes shard 0, and so does its
// only child, the backbone root router.
func PartitionTree(t *Tree, k int) *Partition {
	n := len(t.Parent)
	total := len(t.Clients)
	if k < 1 {
		k = 1
	}
	if k > total && total > 0 {
		k = total
	}
	p := &Partition{
		K:         k,
		ShardOf:   make([]int32, n),
		Lookahead: math.Inf(1),
		Weights:   make([]int, k),
	}
	if k == 1 {
		p.Weights[0] = total
		return p
	}

	cum := 0
	for _, u := range t.Order {
		if t.Net.IsClient(u) || u == t.Net.Source {
			// A host rides with its access router (the source, at the tree
			// root, has no parent and anchors shard 0). Its weight counts
			// only after assignment, so the band boundaries stay router
			// boundaries.
			if par := t.Parent[u]; par != graph.None {
				p.ShardOf[u] = p.ShardOf[par]
			}
			if t.Net.IsClient(u) {
				p.Weights[p.ShardOf[u]]++
				cum++
			}
			continue
		}
		sh := int32(cum * k / total)
		if sh > int32(k-1) {
			sh = int32(k - 1)
		}
		p.ShardOf[u] = sh
	}

	// Lookahead: scan every link — chords included, since unicast repairs
	// route over the full graph — for the cheapest cut crossing.
	for id := 0; id < t.Net.G.NumEdges(); id++ {
		e := t.Net.G.Edge(graph.EdgeID(id))
		if p.ShardOf[e.A] != p.ShardOf[e.B] && t.Net.Delay[id] < p.Lookahead {
			p.Lookahead = t.Net.Delay[id]
		}
	}
	return p
}

// PartitionDomains partitions t into local recovery domains of roughly
// targetClients group members each: the hierarchical-recovery unit of the
// million-client tier. A domain is just a shard of PartitionTree — a
// contiguous preorder band of recovery subtrees with hosts riding their
// access routers — sized by membership rather than by worker count, so the
// domain layout is a pure function of (tree, targetClients) and never of
// how many goroutines execute it. That invariance is what keeps
// domain-sharded digests bit-identical at any worker count.
func PartitionDomains(t *Tree, targetClients int) *Partition {
	total := len(t.Clients)
	if targetClients < 1 {
		targetClients = 1
	}
	k := (total + targetClients - 1) / targetClients
	return PartitionTree(t, k)
}
