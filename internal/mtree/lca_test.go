package mtree

import (
	"testing"

	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

// naiveLCA (the parent-walk reference) lives in mtree_test.go.

func TestLCAMatchesNaiveWalk(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		net := topology.MustGenerate(topology.DefaultConfig(150), rng.New(seed))
		tree := MustBuild(net)
		// Every client pair (the planner's workload) plus self-pairs.
		for _, a := range tree.Clients {
			for _, b := range tree.Clients {
				got := tree.LCA(a, b)
				want := naiveLCA(tree, a, b)
				if got != want {
					t.Fatalf("seed %d: LCA(%d,%d) = %d, naive walk says %d",
						seed, a, b, got, want)
				}
			}
		}
		// A sample of arbitrary in-tree pairs, including router/router.
		r := rng.New(seed + 99)
		for i := 0; i < 2000; i++ {
			a := tree.Order[r.Intn(len(tree.Order))]
			b := tree.Order[r.Intn(len(tree.Order))]
			if got, want := tree.LCA(a, b), naiveLCA(tree, a, b); got != want {
				t.Fatalf("seed %d: LCA(%d,%d) = %d, naive walk says %d",
					seed, a, b, got, want)
			}
		}
	}
}

func TestLCAEulerTourShape(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(3))
	tree := MustBuild(net)
	if want := 2*tree.NumTreeNodes() - 1; len(tree.euler) != want {
		t.Fatalf("euler tour length %d, want 2n-1 = %d", len(tree.euler), want)
	}
	for i := 1; i < len(tree.euler); i++ {
		a, b := tree.euler[i-1], tree.euler[i]
		if d := tree.Depth[a] - tree.Depth[b]; d != 1 && d != -1 {
			t.Fatalf("euler[%d..%d] = %d,%d: depths differ by %d, want ±1", i-1, i, a, b, d)
		}
	}
}

func BenchmarkTreeLCA(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(600), rng.New(5))
	tree := MustBuild(net)
	clients := tree.Clients
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := clients[i%len(clients)]
		c := clients[(i*31+7)%len(clients)]
		_ = tree.LCA(a, c)
	}
}
