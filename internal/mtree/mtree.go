// Package mtree provides the rooted multicast tree abstraction of the paper
// (§2): the spanning subtree T of the network over which data packets are
// multicast, rooted at the source, with clients at the leaves.
//
// Everything the RP algorithm consumes lives here: depths (the paper's DS
// values are depths of "first common routers"), lowest-common-ancestor
// queries (the "first common router" R_j of a client u and a peer v_j is
// exactly LCA_T(u, v_j)), tree path delays (the recovery latency along the
// tree), and subtree enumeration (RMA's partial-multicast repairs flood the
// subtree under the meet router).
//
// LCA uses binary lifting: O(n log n) preprocessing, O(log n) per query.
// The experiment harness issues O(k²) LCA queries per topology (every
// client against every other), so per-query cost matters at the paper's
// largest group sizes.
package mtree

import (
	"fmt"
	"math/bits"

	"rmcast/internal/graph"
	"rmcast/internal/topology"
)

// Tree is the multicast tree of a Network, rooted at the source.
type Tree struct {
	// Net is the underlying network.
	Net *topology.Network
	// Root is the multicast source.
	Root graph.NodeID
	// InTree reports membership; nodes outside the tree (off-tree routers
	// in hand-built networks) have Parent None and Depth -1.
	InTree []bool
	// Parent is the tree parent (toward the root); None for the root.
	Parent []graph.NodeID
	// ParentLink is the link to the parent; NoEdge for the root.
	ParentLink []graph.EdgeID
	// Children lists each node's children; ChildLink is parallel to it.
	Children  [][]graph.NodeID
	ChildLink [][]graph.EdgeID
	// Depth is the hop count from the root along the tree (the paper's DS
	// of a node); -1 off tree. Depth[Root] == 0.
	Depth []int32
	// DelayFromRoot is the summed link delay from the root along the tree.
	DelayFromRoot []float64
	// Order is a preorder listing of tree nodes (root first).
	Order []graph.NodeID
	// Clients are the group members (from the network), all of which are
	// guaranteed to be in the tree.
	Clients []graph.NodeID

	// tin/tout are preorder entry/exit stamps for O(1) ancestor tests.
	tin, tout []int32
	// up is the binary-lifting ancestor table: up[k][v] is the 2^k-th
	// ancestor of v (None past the root).
	up [][]graph.NodeID
	// euler/eulerFirst/sparse implement O(1) LCA via Euler tour +
	// range-minimum sparse table (see lca.go).
	euler      []graph.NodeID
	eulerFirst []int32
	sparse     [][]int32
}

// Build constructs the rooted tree from net.TreeEdges. It fails if the tree
// edges do not form a forest containing the source and every client in one
// component (Network.Validate enforces the same invariant).
func Build(net *topology.Network) (*Tree, error) { return build(net, false) }

// BuildLite is Build without the O(n log n) Euler-tour/sparse-table LCA
// index (~90 B/node at depth 20+). LCA queries fall back to O(log n) binary
// lifting; everything else — preorder, tin/tout ancestor tests, children,
// delays, partitioning — is identical to Build. The million-client tier uses
// it: at n=1,000,000 the index alone would cost ≈220 MB per tree, and the
// dense planner's fast path never calls LCA (meet routers come off the root
// path and RTTs are computed from root delays, see route.TreeTables.RTTVia).
func BuildLite(net *topology.Network) (*Tree, error) { return build(net, true) }

func build(net *topology.Network, lite bool) (*Tree, error) {
	n := net.NumNodes()
	t := &Tree{
		Net:           net,
		Root:          net.Source,
		InTree:        make([]bool, n),
		Parent:        make([]graph.NodeID, n),
		ParentLink:    make([]graph.EdgeID, n),
		Children:      make([][]graph.NodeID, n),
		ChildLink:     make([][]graph.EdgeID, n),
		Depth:         make([]int32, n),
		DelayFromRoot: make([]float64, n),
		Clients:       net.Clients,
		tin:           make([]int32, n),
		tout:          make([]int32, n),
	}
	for i := range t.Parent {
		t.Parent[i] = graph.None
		t.ParentLink[i] = graph.NoEdge
		t.Depth[i] = -1
	}

	// Adjacency restricted to tree edges, in CSR form: one shared buffer
	// instead of n slice headers and Θ(n) grow-reallocations. Per-node
	// half-edge order is the order edges appear in TreeEdges — identical to
	// the append-based build this replaced, so the DFS (and with it Order,
	// tin/tout, the Euler tour, and every digest downstream) is unchanged.
	off := make([]int32, n+1)
	for _, id := range net.TreeEdges {
		e := net.G.Edge(id)
		off[e.A+1]++
		off[e.B+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adjBuf := make([]graph.Half, 2*len(net.TreeEdges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, id := range net.TreeEdges {
		e := net.G.Edge(id)
		adjBuf[cur[e.A]] = graph.Half{Edge: id, Peer: e.B}
		cur[e.A]++
		adjBuf[cur[e.B]] = graph.Half{Edge: id, Peer: e.A}
		cur[e.B]++
	}

	// Iterative preorder DFS from the root. DFS (not BFS) so tin/tout
	// stamps give contiguous subtree intervals.
	t.Depth[t.Root] = 0
	t.InTree[t.Root] = true
	type frame struct {
		node graph.NodeID
		next int32
	}
	t.Order = make([]graph.NodeID, 0, n)
	if !lite {
		t.euler = make([]graph.NodeID, 0, 2*n-1)
		t.euler = append(t.euler, t.Root)
	}
	stack := make([]frame, 1, 64)
	stack[0] = frame{t.Root, 0}
	var clock int32
	t.tin[t.Root] = clock
	clock++
	t.Order = append(t.Order, t.Root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		u := f.node
		if off[u]+f.next < off[u+1] {
			h := adjBuf[off[u]+f.next]
			f.next++
			v := h.Peer
			if t.InTree[v] {
				continue
			}
			t.InTree[v] = true
			t.Parent[v] = u
			t.ParentLink[v] = h.Edge
			t.Depth[v] = t.Depth[u] + 1
			t.DelayFromRoot[v] = t.DelayFromRoot[u] + net.Delay[h.Edge]
			t.Order = append(t.Order, v)
			t.tin[v] = clock
			clock++
			stack = append(stack, frame{v, 0})
			if !lite {
				t.euler = append(t.euler, v)
			}
			continue
		}
		t.tout[u] = clock
		clock++
		stack = stack[:len(stack)-1]
		if !lite && len(stack) > 0 {
			t.euler = append(t.euler, stack[len(stack)-1].node)
		}
	}

	for _, c := range net.Clients {
		if !t.InTree[c] {
			return nil, fmt.Errorf("mtree: client %d unreachable via tree edges", c)
		}
	}

	t.buildChildren(off[:n+1])
	t.buildLifting()
	if !lite {
		t.buildLCA()
	}
	return t, nil
}

// buildChildren fills Children/ChildLink as sub-slices of two shared CSR
// buffers (reusing off as scratch). Children of u are appended in preorder
// over t.Order, which is exactly their DFS visit order — the same per-node
// order the old inline appends produced. Childless nodes keep nil slices.
func (t *Tree) buildChildren(off []int32) {
	n := len(t.Parent)
	for i := range off {
		off[i] = 0
	}
	for _, v := range t.Order {
		if p := t.Parent[v]; p != graph.None {
			off[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	childBuf := make([]graph.NodeID, len(t.Order)-1)
	linkBuf := make([]graph.EdgeID, len(t.Order)-1)
	for u := 0; u < n; u++ {
		if off[u] == off[u+1] {
			continue
		}
		t.Children[u] = childBuf[off[u]:off[u]:off[u+1]]
		t.ChildLink[u] = linkBuf[off[u]:off[u]:off[u+1]]
	}
	for _, v := range t.Order {
		if p := t.Parent[v]; p != graph.None {
			t.Children[p] = append(t.Children[p], v)
			t.ChildLink[p] = append(t.ChildLink[p], t.ParentLink[v])
		}
	}
}

// MustBuild is Build that panics on error.
func MustBuild(net *topology.Network) *Tree {
	t, err := Build(net)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) buildLifting() {
	maxDepth := int32(0)
	for _, d := range t.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := 1
	if maxDepth > 0 {
		levels = bits.Len32(uint32(maxDepth)) // ceil(log2(maxDepth+1))
	}
	n := len(t.Parent)
	t.up = make([][]graph.NodeID, levels)
	t.up[0] = t.Parent
	for k := 1; k < levels; k++ {
		t.up[k] = make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			mid := t.up[k-1][v]
			if mid == graph.None {
				t.up[k][v] = graph.None
			} else {
				t.up[k][v] = t.up[k-1][mid]
			}
		}
	}
}

// IsAncestor reports whether a is an ancestor of b in the tree (every node
// is an ancestor of itself). False if either node is off-tree.
func (t *Tree) IsAncestor(a, b graph.NodeID) bool {
	if !t.InTree[a] || !t.InTree[b] {
		return false
	}
	return t.tin[a] <= t.tin[b] && t.tout[b] <= t.tout[a]
}

// Ancestor returns the k-th ancestor of v (0 = v itself), or None if the
// walk passes the root.
func (t *Tree) Ancestor(v graph.NodeID, k int32) graph.NodeID {
	for lvl := 0; k > 0 && v != graph.None; lvl++ {
		if k&1 == 1 {
			if lvl >= len(t.up) {
				return graph.None
			}
			v = t.up[lvl][v]
		}
		k >>= 1
	}
	return v
}

// LCA returns the lowest common ancestor of a and b — the paper's "first
// common router" of two clients (§3.2) when both are group members. It
// panics if either node is off-tree. Queries are O(1) via the Euler-tour
// sparse table (see lca.go) on a Build tree, O(log n) via binary lifting on
// a BuildLite tree.
func (t *Tree) LCA(a, b graph.NodeID) graph.NodeID {
	if !t.InTree[a] || !t.InTree[b] {
		panic(fmt.Sprintf("mtree: LCA of off-tree node (%d,%d)", a, b))
	}
	if t.sparse == nil {
		return t.lcaLift(a, b)
	}
	return t.lcaRMQ(a, b)
}

// MeetDepth returns DS_{u,v}: the depth (hop count from the source along
// the tree) of the first common router of u and v. This is the quantity
// driving all of the paper's conditional loss probabilities.
func (t *Tree) MeetDepth(u, v graph.NodeID) int32 {
	return t.Depth[t.LCA(u, v)]
}

// TreeHops returns the hop count of the tree path between a and b.
func (t *Tree) TreeHops(a, b graph.NodeID) int32 {
	l := t.LCA(a, b)
	return t.Depth[a] + t.Depth[b] - 2*t.Depth[l]
}

// TreeDelay returns the summed link delay of the tree path between a and b.
func (t *Tree) TreeDelay(a, b graph.NodeID) float64 {
	l := t.LCA(a, b)
	return t.DelayFromRoot[a] + t.DelayFromRoot[b] - 2*t.DelayFromRoot[l]
}

// PathToRoot returns the node path from v up to the root, inclusive.
func (t *Tree) PathToRoot(v graph.NodeID) []graph.NodeID {
	if !t.InTree[v] {
		return nil
	}
	path := make([]graph.NodeID, 0, t.Depth[v]+1)
	for u := v; u != graph.None; u = t.Parent[u] {
		path = append(path, u)
	}
	return path
}

// TreePath returns the node path from a to b along the tree (through their
// LCA), inclusive of both endpoints.
func (t *Tree) TreePath(a, b graph.NodeID) []graph.NodeID {
	l := t.LCA(a, b)
	var up []graph.NodeID
	for u := a; u != l; u = t.Parent[u] {
		up = append(up, u)
	}
	up = append(up, l)
	var down []graph.NodeID
	for u := b; u != l; u = t.Parent[u] {
		down = append(down, u)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// SubtreeNodes returns every tree node in the subtree rooted at r
// (including r), in preorder.
func (t *Tree) SubtreeNodes(r graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	stack := []graph.NodeID{r}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		for i := len(t.Children[u]) - 1; i >= 0; i-- {
			stack = append(stack, t.Children[u][i])
		}
	}
	return out
}

// SubtreeClients returns the group members within the subtree rooted at r.
func (t *Tree) SubtreeClients(r graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range t.SubtreeNodes(r) {
		if t.Net.IsClient(v) {
			out = append(out, v)
		}
	}
	return out
}

// SubtreeEdgeCount returns the number of tree links strictly below r —
// the bandwidth cost, in hops, of multicasting one packet to the whole
// subtree of r.
func (t *Tree) SubtreeEdgeCount(r graph.NodeID) int {
	return len(t.SubtreeNodes(r)) - 1
}

// NumTreeNodes returns the number of nodes in the tree.
func (t *Tree) NumTreeNodes() int { return len(t.Order) }

// NumTreeEdges returns the number of tree links.
func (t *Tree) NumTreeEdges() int { return len(t.Order) - 1 }

// ChildToward returns the child of ancestor anc on the tree path toward
// descendant v. It panics if anc is not a proper ancestor of v. Children
// are stored in preorder, so the child whose subtree contains v is the last
// one with tin ≤ tin[v] — a binary search over the child list, O(log deg)
// instead of the O(log n) ancestor jump it replaced.
func (t *Tree) ChildToward(anc, v graph.NodeID) graph.NodeID {
	if anc == v || !t.IsAncestor(anc, v) {
		panic(fmt.Sprintf("mtree: %d is not a proper ancestor of %d", anc, v))
	}
	kids := t.Children[anc]
	lo, hi := 0, len(kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.tin[kids[mid]] <= t.tin[v] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return kids[lo-1]
}
