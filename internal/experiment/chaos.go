package experiment

import (
	"fmt"

	"rmcast/internal/fault"
)

// ChaosSweep is the robustness evaluation: one fixed topology driven through
// rising fault severity — client crashes (some permanent), link outage
// windows, and Gilbert–Elliott burst loss scaling together — comparing the
// paper's protocols against the hardened RP-RESILIENT engine on delivery
// ratio, mean and p99 recovery latency, and recovery bandwidth.
//
// Severity 0 generates an empty fault schedule, which Run does not install
// at all, so the zero row reproduces the equivalent fault-free cells
// byte-for-byte — the sweep degrades from, rather than replaces, the
// paper's model. Every cell is independently seeded (topology, traffic,
// faults), so any Parallel value yields bit-identical figures; the fault
// seed is shared across protocols within a (severity, replicate) cell so
// all engines face the same crashes and outages.
type ChaosSweep struct {
	// Routers is the fixed backbone size.
	Routers int
	// Severities are the chaos levels in [0, 1]; see chaosParams for how a
	// level maps to crash/outage/burst rates.
	Severities []float64
	// BaseLoss is the flat per-link loss floor every cell keeps (the burst
	// model's good state inherits it).
	BaseLoss float64
	// Protocols to compare; nil means ChaosProtocols.
	Protocols []string
	Packets   int
	Interval  float64
	// Replicates averages this many (traffic, fault) seeds per cell.
	Replicates int
	BaseSeed   uint64
	// Parallel is the worker count for the sweep grid; <= 1 runs the legacy
	// serial loop (see parallel.go).
	Parallel int
}

// DefaultChaos returns the chaos sweep used by EXPERIMENTS.md: n=100,
// severity 0…1, 5% base loss.
func DefaultChaos() ChaosSweep {
	return ChaosSweep{
		Routers:    100,
		Severities: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		BaseLoss:   0.05,
		Packets:    100,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
}

// chaosParams maps one severity level to the fault generator's knobs: at
// severity 1, 30% of clients crash during the run (30% of those for good),
// 20% of links suffer an outage window, and every link runs the harshest
// burst regime.
func chaosParams(severity, baseLoss float64, packets int, interval float64) fault.ChaosParams {
	return fault.ChaosParams{
		CrashRate:     0.3 * severity,
		PermanentFrac: 0.3,
		LinkDownRate:  0.2 * severity,
		BurstSeverity: severity,
		BaseLoss:      baseLoss,
		Span:          float64(packets) * interval,
	}
}

// Run executes the sweep and returns the four robustness figures.
func (c ChaosSweep) Run() (delivery, latency, p99, bandwidth *Figure, err error) {
	protocols := c.Protocols
	if protocols == nil {
		protocols = ChaosProtocols
	}
	reps := c.Replicates
	if reps < 1 {
		reps = 1
	}
	specs := make([]RunSpec, 0, len(c.Severities)*len(protocols)*reps)
	for si, sev := range c.Severities {
		cp := chaosParams(sev, c.BaseLoss, c.Packets, c.Interval)
		for _, proto := range protocols {
			for rep := 0; rep < reps; rep++ {
				specs = append(specs, RunSpec{
					Routers:  c.Routers,
					Loss:     c.BaseLoss,
					Protocol: proto,
					Packets:  c.Packets,
					Interval: c.Interval,
					// One fixed topology for the whole sweep; traffic and
					// fault seeds vary per (severity, replicate) and the
					// fault seed is protocol-independent, so every engine
					// faces the same schedule.
					TopoSeed:  c.BaseSeed,
					SimSeed:   c.BaseSeed + uint64(si)*100 + uint64(rep) + 1,
					Chaos:     &cp,
					FaultSeed: c.BaseSeed + 0xc4a05 + uint64(si)*100 + uint64(rep),
				})
			}
		}
	}
	results, failed, rerr := runCells(specs, c.Parallel)
	if rerr != nil {
		si := failed / (len(protocols) * reps)
		pi := failed / reps % len(protocols)
		return nil, nil, nil, nil, fmt.Errorf("severity %g %s rep %d: %w",
			c.Severities[si], protocols[pi], failed%reps, rerr)
	}
	var rows []Row
	idx := 0
	for _, sev := range c.Severities {
		row := Row{X: sev, Label: fmt.Sprintf("sev=%g", sev), Points: map[string]Point{}}
		for _, proto := range protocols {
			var agg Point
			for rep := 0; rep < reps; rep++ {
				p := cellPoint(results[idx])
				idx++
				if rep == 0 {
					agg = p
				} else {
					agg.merge(p)
				}
			}
			row.Points[proto] = agg
		}
		rows = append(rows, row)
	}
	mk := func(name, ylabel, metric string) *Figure {
		return &Figure{
			Name:      name,
			XLabel:    "chaos severity",
			YLabel:    ylabel,
			Metric:    metric,
			Protocols: protocols,
			Rows:      rows,
		}
	}
	delivery = mk("Chaos: delivery ratio vs fault severity", "delivered fraction", "delivery")
	latency = mk("Chaos: mean recovery latency vs fault severity", "latency (ms)", "latency")
	p99 = mk("Chaos: p99 recovery latency vs fault severity", "latency (ms)", "p99")
	bandwidth = mk("Chaos: recovery bandwidth vs fault severity", "bandwidth (hops)", "bandwidth")
	return delivery, latency, p99, bandwidth, nil
}
