// Deterministic parallel execution for the sweep harness.
//
// A sweep is a grid of independent simulation cells: every cell carries its
// own (TopoSeed, SimSeed) pair, and inside a cell the session derives its
// traffic and protocol streams from that seed via rng.Split. No state flows
// between cells, so the grid can be executed by any number of workers in
// any order and still produce bit-identical figures — determinism lives in
// the seeds, not in the schedule. runCells exploits that: it fans cells out
// to a bounded worker pool and gathers results into a slice indexed by cell
// position, so aggregation always proceeds in the same deterministic order
// the serial loop used.
//
// parallel <= 1 bypasses the pool entirely and runs the exact legacy serial
// loop (including its stop-at-first-error behaviour), which keeps
// `-parallel 1` a faithful reference for the byte-identical-output tests.
package experiment

import (
	"runtime"
	"sync"

	"rmcast/internal/protocol"
)

// DefaultParallelism returns the worker count the cmd tools default to:
// one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// runCells executes every spec and returns results in spec order. On
// failure it returns the failing cell's index and error — the lowest index
// if several cells fail, so the reported error does not depend on
// scheduling. With parallel <= 1 the cells run serially in order and
// execution stops at the first error, exactly as the pre-pool harness did.
func runCells(specs []RunSpec, parallel int) ([]*protocol.Result, int, error) {
	results := make([]*protocol.Result, len(specs))
	if parallel <= 1 {
		for i, spec := range specs {
			res, err := Run(spec)
			if err != nil {
				return nil, i, err
			}
			results[i] = res
		}
		return results, -1, nil
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(specs[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, i, err
		}
	}
	return results, -1, nil
}

// cellPoint converts one run result into a figure point.
func cellPoint(res *protocol.Result) Point {
	return Point{
		Latency:    res.AvgLatency(),
		Bandwidth:  res.BandwidthPerRecovery(),
		Delivery:   res.DeliveryRatio(),
		P99:        res.LatencyQuantile(0.99),
		Failovers:  float64(res.Stats.Failovers),
		Losses:     res.Stats.Losses,
		Clients:    res.Clients,
		LatSamples: []float64{res.AvgLatency()},
		BwSamples:  []float64{res.BandwidthPerRecovery()},
		DelSamples: []float64{res.DeliveryRatio()},
		P99Samples: []float64{res.LatencyQuantile(0.99)},
		FoSamples:  []float64{float64(res.Stats.Failovers)},
	}
}
