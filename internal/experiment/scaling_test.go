package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingSweepSmall(t *testing.T) {
	s := ScalingSweep{Sizes: []int{200, 400}, ScanCutoff: 400, BaseSeed: 1}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 2 {
		t.Fatalf("got %d cells, want 2", len(report))
	}
	for _, c := range report {
		if !c.FastPath {
			t.Fatalf("n=%d: fast path not engaged", c.Clients)
		}
		if !c.Verified || c.ScanMs <= 0 || c.Speedup <= 0 {
			t.Fatalf("n=%d: scan baseline missing or unverified: %+v", c.Clients, c)
		}
		if c.PlanMs <= 0 || c.ReplanMs <= 0 || c.TreeDepth <= 0 || c.MeanPeers <= 0 {
			t.Fatalf("n=%d: implausible cell %+v", c.Clients, c)
		}
		// The steady-state replan pass must not allocate (the planner's
		// zero-alloc contract, also pinned by a core test).
		if c.ReplanAllocs > 64 {
			t.Fatalf("n=%d: replan allocated %d times", c.Clients, c.ReplanAllocs)
		}
	}
	if report[0].Clients != 200 || report[1].Clients != 400 {
		t.Fatal("cells out of order")
	}

	var tbl, md, csv bytes.Buffer
	if err := report.Format(&tbl); err != nil {
		t.Fatal(err)
	}
	if err := report.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := report.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"table": tbl.String(), "markdown": md.String(), "csv": csv.String()} {
		if !strings.Contains(out, "400") {
			t.Fatalf("%s rendering missing cell: %q", name, out)
		}
	}
}

func TestScalingSkipsScanPastCutoff(t *testing.T) {
	s := ScalingSweep{Sizes: []int{300}, ScanCutoff: 100, BaseSeed: 2}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c := report[0]; c.ScanMs != 0 || c.Verified {
		t.Fatalf("scan should be skipped past the cutoff: %+v", c)
	}
}
