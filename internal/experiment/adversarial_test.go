package experiment

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"rmcast/internal/fault"
)

// TestMutationZeroMatchesLegacy asserts the mutation layer's no-op
// guarantee: a spec carrying an empty mutation config (and one carrying
// none) produce byte-identical results — same stats, same hop counts, same
// event total — so the zero row of every adversarial figure reproduces the
// mutation-free figures exactly, and the mutator provably draws nothing
// from the rng streams when disabled.
func TestMutationZeroMatchesLegacy(t *testing.T) {
	for _, proto := range AdversarialProtocols {
		spec := RunSpec{
			Routers: 40, Loss: 0.05, Protocol: proto,
			Packets: 20, Interval: 50,
			TopoSeed: 2003, SimSeed: 2004,
		}
		legacy, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		spec.Mutation = &fault.MutationConfig{}
		zero, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if legacy.Stats != zero.Stats || legacy.Hops != zero.Hops || legacy.Events != zero.Events {
			t.Fatalf("%s: empty mutation config diverged from legacy run:\n%+v\n%+v",
				proto, legacy, zero)
		}
		if fault.MutationFromIntensity(0, 1000) != nil {
			t.Fatal("intensity 0 must map to nil")
		}
	}
}

// TestMutationSweepParallelDeterminism asserts the adversarial sweep is
// byte-identical at any worker count, like every other sweep in the harness:
// each cell's mutator stream is derived from the cell's own seeds, and the
// shared MutationConfig values are never written after construction.
func TestMutationSweepParallelDeterminism(t *testing.T) {
	base := MutationSweep{
		Routers:     40,
		Intensities: []float64{0, 0.5, 1},
		BaseLoss:    0.05,
		Packets:     15,
		Interval:    50,
		Replicates:  2,
		BaseSeed:    2003,
	}
	serial := base
	serial.Parallel = 1
	var want [4]*Figure
	var err error
	want[0], want[1], want[2], want[3], err = serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par := base
		par.Parallel = workers
		var got [4]*Figure
		got[0], got[1], got[2], got[3], err = par.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("parallel=%d: figure %q differs from serial", workers, want[i].Name)
			}
			if !bytes.Equal(figureBytes(t, got[i]), figureBytes(t, want[i])) {
				t.Fatalf("parallel=%d: figure %q bytes differ from serial", workers, want[i].Name)
			}
		}
	}
}

// TestMutationIntensityBites runs one cell at full intensity and checks the
// adversary is actually observable — duplicates suppressed, malformed
// packets rejected — while the hardened engine still achieves full delivery
// with a clean invariant record (Run fails on any oracle violation).
func TestMutationIntensityBites(t *testing.T) {
	for _, proto := range AdversarialProtocols {
		spec := RunSpec{
			Routers: 40, Loss: 0.05, Protocol: proto,
			Packets: 30, Interval: 50,
			TopoSeed: 2003, SimSeed: 2004,
			Mutation: fault.MutationFromIntensity(1, 30*50),
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Stats.Malformed == 0 {
			t.Fatalf("%s: no malformed packets rejected at full intensity", proto)
		}
		if res.DeliveryRatio() != 1 || res.Stats.Unrecovered != 0 {
			t.Fatalf("%s: delivery %v with %d unrecovered under full mutation",
				proto, res.DeliveryRatio(), res.Stats.Unrecovered)
		}
	}
}

// TestMutationSweepDeliveryHolds is the sweep-level acceptance criterion:
// across the whole intensity grid every hardened engine keeps delivering
// everything — the adversary costs latency and bandwidth, never packets.
func TestMutationSweepDeliveryHolds(t *testing.T) {
	m := MutationSweep{
		Routers:     40,
		Intensities: []float64{0, 1},
		BaseLoss:    0.05,
		Packets:     20,
		Interval:    50,
		Replicates:  1,
		BaseSeed:    2003,
		Parallel:    4,
	}
	delivery, latency, p99, bandwidth, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Figure{delivery, latency, p99, bandwidth} {
		if len(f.Rows) != 2 {
			t.Fatalf("%q: %d rows, want 2", f.Name, len(f.Rows))
		}
	}
	for _, proto := range AdversarialProtocols {
		for _, row := range delivery.Rows {
			if d := delivery.Value(row.Points[proto]); d != 1 {
				t.Fatalf("%s at %s: delivery %v, want 1", proto, row.Label, d)
			}
		}
	}
}

// TestAdversarialSoak is the long-haul chaos+mutation cross: the full
// default adversarial grid at production scale, plus max-intensity mutation
// layered on top of a mid-severity chaos schedule for every protocol. Gated
// behind RMCAST_SOAK=1 (make soak) — it runs minutes, not CI seconds.
func TestAdversarialSoak(t *testing.T) {
	if os.Getenv("RMCAST_SOAK") == "" {
		t.Skip("set RMCAST_SOAK=1 (or run `make soak`) to enable")
	}
	sweep := DefaultAdversarial()
	sweep.Replicates = 3
	sweep.Parallel = DefaultParallelism()
	if _, _, _, _, err := sweep.Run(); err != nil {
		t.Fatal(err)
	}
	// Mutation layered over chaos: crashes and outages plus a hostile
	// message plane, with the strict oracle on throughout. ChaosProtocols
	// here, not AdversarialProtocols: this leg exists to prove the
	// resilience layer and the mutation layer compose.
	cp := chaosParams(0.5, 0.05, 100, 50)
	for _, proto := range ChaosProtocols {
		spec := RunSpec{
			Routers: 100, Loss: 0.05, Protocol: proto,
			Packets: 100, Interval: 50,
			TopoSeed: 2003, SimSeed: 2005,
			Chaos: &cp, FaultSeed: 0xc4a05,
			Mutation: fault.MutationFromIntensity(1, 100*50),
		}
		if _, err := Run(spec); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}
