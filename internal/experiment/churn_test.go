package experiment

import (
	"bytes"
	"reflect"
	"testing"
)

// TestChurnSweepParallelDeterminism asserts the churn sweep is byte-identical
// at any worker count. Churn cells are the hardest case for this guarantee:
// the fault schedule targets the coordinator succession line and RP-FAILOVER
// cells run elections — all of which must still be a pure function of the
// cell seeds.
func TestChurnSweepParallelDeterminism(t *testing.T) {
	base := ChurnSweep{
		Routers:    40,
		Rates:      []float64{0, 0.5, 1},
		BaseLoss:   0.05,
		Packets:    15,
		Interval:   50,
		Replicates: 2,
		BaseSeed:   2003,
	}
	serial := base
	serial.Parallel = 1
	var want [4]*Figure
	var err error
	want[0], want[1], want[2], want[3], err = serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par := base
		par.Parallel = workers
		var got [4]*Figure
		got[0], got[1], got[2], got[3], err = par.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("parallel=%d: figure %q differs from serial", workers, want[i].Name)
			}
			if !bytes.Equal(figureBytes(t, got[i]), figureBytes(t, want[i])) {
				t.Fatalf("parallel=%d: figure %q bytes differ from serial", workers, want[i].Name)
			}
		}
	}
}

// TestChurnZeroRateMatchesLegacy asserts the rate-0 cells run the exact
// legacy code path: a spec carrying churn params at rate 0 yields a result
// identical to the same spec with no churn at all.
func TestChurnZeroRateMatchesLegacy(t *testing.T) {
	cp := churnParams(0, 20, 50)
	for _, proto := range ChurnProtocols {
		spec := RunSpec{
			Routers: 40, Loss: 0.05, Protocol: proto,
			Packets: 20, Interval: 50,
			TopoSeed: 2003, SimSeed: 2004,
		}
		legacy, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		spec.Churn = &cp
		spec.FaultSeed = 0xcf41
		zero, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if legacy.Stats != zero.Stats || legacy.Hops != zero.Hops || legacy.Events != zero.Events {
			t.Fatalf("%s: rate-0 churn diverged from legacy run:\n%+v\n%+v",
				proto, legacy, zero)
		}
	}
}

// TestChurnSweepFailoverBites sanity-checks the sweep semantics: at full
// churn the RP-FAILOVER cells must actually fail over (the waves target the
// succession line), while the protocols with no coordinator election report
// a structurally zero failover count.
func TestChurnSweepFailoverBites(t *testing.T) {
	c := ChurnSweep{
		Routers:    40,
		Rates:      []float64{0, 1},
		BaseLoss:   0.05,
		Packets:    20,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
		Parallel:   4,
	}
	delivery, _, _, failovers, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(failovers.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(failovers.Rows))
	}
	for _, proto := range ChurnProtocols {
		f0 := failovers.Value(failovers.Rows[0].Points[proto])
		f1 := failovers.Value(failovers.Rows[1].Points[proto])
		if f0 != 0 {
			t.Fatalf("%s: failovers at rate 0 = %v, want 0", proto, f0)
		}
		switch proto {
		case "RP-FAILOVER":
			if f1 < 1 {
				t.Fatalf("full churn produced %v failovers — waves missed the RP?", f1)
			}
		default:
			if f1 != 0 {
				t.Fatalf("%s has no coordinator election but reports %v failovers", proto, f1)
			}
		}
		if d := delivery.Value(delivery.Rows[0].Points[proto]); d != 1 {
			t.Fatalf("%s: rate-0 delivery %v, want 1", proto, d)
		}
	}
}
