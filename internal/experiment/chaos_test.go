package experiment

import (
	"bytes"
	"reflect"
	"testing"
)

// TestChaosSweepParallelDeterminism asserts the chaos sweep is byte-identical
// at any worker count — same assertion the legacy sweeps carry, extended to
// the fault-injection grid where every cell additionally derives a fault
// schedule from its seeds.
func TestChaosSweepParallelDeterminism(t *testing.T) {
	base := ChaosSweep{
		Routers:    40,
		Severities: []float64{0, 0.5, 1},
		BaseLoss:   0.05,
		Packets:    15,
		Interval:   50,
		Replicates: 2,
		BaseSeed:   2003,
	}
	serial := base
	serial.Parallel = 1
	var want [4]*Figure
	var err error
	want[0], want[1], want[2], want[3], err = serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par := base
		par.Parallel = workers
		var got [4]*Figure
		got[0], got[1], got[2], got[3], err = par.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("parallel=%d: figure %q differs from serial", workers, want[i].Name)
			}
			if !bytes.Equal(figureBytes(t, got[i]), figureBytes(t, want[i])) {
				t.Fatalf("parallel=%d: figure %q bytes differ from serial", workers, want[i].Name)
			}
		}
	}
}

// TestChaosZeroSeverityMatchesLegacy asserts the sweep's severity-0 cells run
// the exact legacy code path: a spec carrying chaos params at severity 0
// yields a result identical to the same spec with no chaos at all, so the
// zero row of every chaos figure reproduces fault-free figures byte-for-byte.
func TestChaosZeroSeverityMatchesLegacy(t *testing.T) {
	cp := chaosParams(0, 0.05, 20, 50)
	for _, proto := range ChaosProtocols {
		spec := RunSpec{
			Routers: 40, Loss: 0.05, Protocol: proto,
			Packets: 20, Interval: 50,
			TopoSeed: 2003, SimSeed: 2004,
		}
		legacy, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		spec.Chaos = &cp
		spec.FaultSeed = 0xc4a05
		zero, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if legacy.Stats != zero.Stats || legacy.Hops != zero.Hops || legacy.Events != zero.Events {
			t.Fatalf("%s: severity-0 chaos diverged from legacy run:\n%+v\n%+v",
				proto, legacy, zero)
		}
	}
}

// TestChaosSweepSeverityDegradesDelivery sanity-checks the sweep output
// shape: four figures over the same rows, severity 0 delivering everything,
// and the harshest severity delivering strictly less for at least one
// protocol (faults must actually bite).
func TestChaosSweepSeverityDegradesDelivery(t *testing.T) {
	c := ChaosSweep{
		Routers:    40,
		Severities: []float64{0, 1},
		BaseLoss:   0.05,
		Packets:    20,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
		Parallel:   4,
	}
	delivery, latency, p99, bandwidth, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Figure{delivery, latency, p99, bandwidth} {
		if len(f.Rows) != 2 {
			t.Fatalf("%q: %d rows, want 2", f.Name, len(f.Rows))
		}
	}
	bitten := false
	for _, proto := range ChaosProtocols {
		d0 := delivery.Value(delivery.Rows[0].Points[proto])
		d1 := delivery.Value(delivery.Rows[1].Points[proto])
		if d0 != 1 {
			t.Fatalf("%s: severity-0 delivery %v, want 1", proto, d0)
		}
		if d1 < 1 {
			bitten = true
		}
	}
	if !bitten {
		t.Fatal("severity 1 degraded no protocol's delivery — faults not injected?")
	}
}
