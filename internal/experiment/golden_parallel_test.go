package experiment

// Golden-digest gate for the conservative parallel engine: a run with
// Config.SimWorkers ∈ {1, 2, 4, 8} must be byte-identical to the serial
// run — same goldenDigests constants, same chaos/adversarial outcomes. The
// plain variants genuinely execute sharded (the Figure-5 cell has 50
// clients, above the eligibility floor); the queued variants and the
// mutation schedule exercise the automatic serial fallback, which must also
// be exact. Worker-count invariance is by construction (the shard count is
// a function of the group size only), and these tests pin it empirically.

import (
	"fmt"
	"testing"

	"rmcast/internal/fault"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// parallelWorkerCounts are the worker counts the digest gates run at.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// TestGoldenDigestsParallel reruns the serial golden cells at every worker
// count and asserts the digests are unchanged.
func TestGoldenDigestsParallel(t *testing.T) {
	for _, proto := range []string{"SRM", "RMA", "RP", "SRC", "COOP"} {
		for _, variant := range []string{"plain", "queued"} {
			for _, w := range parallelWorkerCounts {
				key := proto + "/" + variant
				t.Run(fmt.Sprintf("%s/w%d", key, w), func(t *testing.T) {
					res := goldenRunWorkers(t, proto, variant == "queued", w)
					if got, want := ResultDigest(res), goldenDigests[key]; got != want {
						t.Errorf("digest %s at %d workers = %s, want %s (parallel output diverged from serial)",
							key, w, got, want)
					}
				})
			}
		}
	}
}

// goldenRunWorkers is goldenRun with a worker count.
func goldenRunWorkers(t *testing.T, proto string, queued bool, workers int) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 50, SimWorkers: workers}
	if queued {
		cfg.PacketTime = 0.2
		cfg.DetectLag = 4
	}
	s, err := protocol.NewSession(topo, eng, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Unrecovered > 0 {
		t.Fatalf("%s queued=%v workers=%d: incomplete run (unrecovered=%d complete=%v)",
			proto, queued, workers, res.Stats.Unrecovered, res.Complete)
	}
	return res
}

// chaosParitySchedule is an eligible fault schedule — crash windows and a
// link outage, no bursts or mutation — so the parallel runner actually
// shards it: crash checks, host transition events, and deferred detections
// all cross the shard machinery.
func chaosParitySchedule(topo *topology.Network) *fault.Schedule {
	s := &fault.Schedule{}
	s.CrashWindow(topo.Clients[3], 120, 400)
	s.CrashWindow(topo.Clients[11], 300, 900)
	s.CrashWindow(topo.Clients[20], 650, 1300)
	s.LinkDownWindow(topo.TreeEdges[5], 200, 450)
	s.LinkDownWindow(topo.TreeEdges[20], 500, 640)
	return s
}

// adversarialParitySchedule adds the message-plane mutator, which the
// parallel mode cannot reproduce — the run must silently fall back to the
// byte-untouched serial path.
func adversarialParitySchedule(topo *topology.Network) *fault.Schedule {
	s := chaosParitySchedule(topo)
	s.SetMutation(&fault.MutationConfig{})
	return s
}

// TestParallelParityChaos asserts serial/parallel byte-equivalence for all
// four engines under the eligible chaos schedule (genuinely sharded) and the
// adversarial schedule (serial fallback), at every worker count.
func TestParallelParityChaos(t *testing.T) {
	for _, kind := range []string{"chaos", "adversarial"} {
		for _, proto := range []string{"SRM", "RMA", "RP", "SRC", "COOP"} {
			t.Run(kind+"/"+proto, func(t *testing.T) {
				serial := parityRun(t, proto, kind, 0)
				want := ResultDigest(serial)
				for _, w := range []int{2, 4, 8} {
					res := parityRun(t, proto, kind, w)
					if got := ResultDigest(res); got != want {
						t.Errorf("%s %s at %d workers: digest %s, want serial %s",
							kind, proto, w, got, want)
					}
				}
			})
		}
	}
}

// parityRun executes one fixed-seed faulted run at the given worker count
// (0 = serial).
func parityRun(t *testing.T, proto, kind string, workers int) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	sched := chaosParitySchedule(topo)
	if kind == "adversarial" {
		sched = adversarialParitySchedule(topo)
	}
	eng, err := NewEngine(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 50, Fault: sched, SimWorkers: workers}
	s, err := protocol.NewSession(topo, eng, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("%s %s workers=%d: incomplete run", kind, proto, workers)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("%s %s workers=%d: oracle violations %v", kind, proto, workers, res.Violations)
	}
	return res
}
