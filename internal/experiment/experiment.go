// Package experiment is the harness that regenerates the paper's evaluation
// (§5, Figures 5–8) plus the ablation studies listed in DESIGN.md. It owns
// protocol construction by name, single-run execution, multi-seed sweeps,
// and figure formatting, so cmd/figures and the root benchmark suite share
// one code path.
package experiment

import (
	"fmt"

	"rmcast/internal/core"
	"rmcast/internal/fault"
	"rmcast/internal/lsr"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/protocol/ack"
	"rmcast/internal/protocol/coop"
	"rmcast/internal/protocol/fec"
	"rmcast/internal/protocol/rma"
	"rmcast/internal/protocol/rpproto"
	"rmcast/internal/protocol/srcrec"
	"rmcast/internal/protocol/srm"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// Protocols compared in the paper's figures, in presentation order.
var PaperProtocols = []string{"SRM", "RMA", "RP"}

// AblationProtocols are the RP variants and the source-recovery floor used
// by the ablation benchmarks (experiment E7 in DESIGN.md).
var AblationProtocols = []string{"RP", "RP-AWARE", "RP-NOSRC", "RP-NAK", "RP-SUBGROUP", "SRC", "SRM-HONEST", "SRM-ADAPT", "FEC", "ACK"}

// ChaosProtocols are the engines compared by the chaos sweep (chaos.go):
// the paper's three, the hardened RP, and the cooperative coded engine.
var ChaosProtocols = []string{"SRM", "RMA", "RP", "RP-RESILIENT", "COOP"}

// ChurnProtocols are the engines compared by the churn sweep (churn.go):
// the flooding baseline, plain RP, the hardened RP, and the coordinated
// failover mode whose RP the churn driver deliberately kills.
var ChurnProtocols = []string{"SRM", "RP", "RP-RESILIENT", "RP-FAILOVER"}

// NewEngine constructs a protocol engine by name. Recognised names:
//
//	SRM          — Scalable Reliable Multicast baseline
//	RMA          — Reliable Multicast Architecture baseline
//	RP           — the paper's recovery strategy (default options)
//	RP-AWARE     — RP planned with the loss-aware model (core/aware.go)
//	RP-NOSRC     — RP with the restricted strategy graph (no direct u→S edge)
//	RP-NAK       — RP with explicit NAK replies instead of pure timeouts
//	RP-SUBGROUP  — RP with source subgroup-multicast repairs ([4])
//	RP-RESILIENT — RP with the crash/churn hardening layer (retry budgets,
//	               dead-peer suspicion, roster-driven replanning)
//	RP-FAILOVER  — coordinated-RP mode with epoch-fenced deterministic
//	               re-election and state handover when the RP crashes
//	SRC          — pure unicast source recovery (ablation floor)
//	SRM-HONEST   — SRM without the paper's idealised one-flood-per-packet
//	               repair cost model (distributed suppression only)
//	SRM-ADAPT    — SRM-HONEST plus Floyd-style adaptive timer widening
//	FEC          — proactive parity baseline (reference [5]): K=8 data +
//	               2 parity per block, local decode, source fallback
//	ACK          — sender-initiated positive-ACK baseline (reference [21]);
//	               shows the ACK-implosion cost in request hops
//	COOP         — cooperative coded repair: block-level symbol
//	               solicitation from strategy-ranked peers over disjoint
//	               coded ranges, decode at rank K, source as bounded last
//	               resort
func NewEngine(name string) (protocol.Engine, error) {
	switch name {
	case "SRM":
		return srm.New(srm.DefaultOptions()), nil
	case "SRM-HONEST":
		opt := srm.DefaultOptions()
		opt.GlobalSuppression = false
		return srm.New(opt), nil
	case "SRM-ADAPT":
		opt := srm.DefaultOptions()
		opt.GlobalSuppression = false
		opt.Adaptive = true
		return srm.New(opt), nil
	case "RMA":
		return rma.New(rma.DefaultOptions()), nil
	case "RP":
		return rpproto.New(rpproto.DefaultOptions()), nil
	case "RP-AWARE":
		opt := rpproto.DefaultOptions()
		opt.LossAware = true
		return rpproto.New(opt), nil
	case "RP-NOSRC":
		opt := rpproto.DefaultOptions()
		opt.AllowDirectSource = false
		return rpproto.New(opt), nil
	case "RP-NAK":
		opt := rpproto.DefaultOptions()
		opt.NakReplies = true
		return rpproto.New(opt), nil
	case "RP-SUBGROUP":
		opt := rpproto.DefaultOptions()
		opt.SubgroupRepair = true
		return rpproto.New(opt), nil
	case "RP-RESILIENT":
		opt := rpproto.DefaultOptions()
		opt.Resilience = rpproto.DefaultResilience()
		return rpproto.New(opt), nil
	case "RP-FAILOVER":
		opt := rpproto.DefaultOptions()
		opt.Failover = rpproto.DefaultFailover()
		return rpproto.New(opt), nil
	case "SRC":
		return srcrec.New(srcrec.DefaultOptions()), nil
	case "FEC":
		return fec.New(fec.DefaultOptions()), nil
	case "ACK":
		return ack.New(ack.DefaultOptions()), nil
	case "COOP":
		return coop.New(coop.DefaultOptions()), nil
	}
	return nil, fmt.Errorf("experiment: unknown protocol %q", name)
}

// RunSpec describes one simulation run.
type RunSpec struct {
	// Routers is the backbone size m (the paper's "number of nodes in the
	// network model").
	Routers int
	// Loss is the uniform per-link loss probability.
	Loss float64
	// Protocol names the engine (see NewEngine).
	Protocol string
	// Packets and Interval configure the data stream.
	Packets  int
	Interval float64
	// TopoSeed fixes the topology; SimSeed fixes the packet/timer fates.
	// Keeping them separate lets a sweep hold the topology constant
	// across protocols (as the paper does) while varying traffic seeds
	// across replicates.
	TopoSeed, SimSeed uint64
	// Tree selects the multicast-tree construction (default: the paper's
	// uniform random spanning tree).
	Tree topology.TreeKind
	// LinkState, when true, replaces the omniscient routing oracle with
	// the converged link-state protocol of internal/lsr, whose delay
	// estimates carry RouteNoise relative measurement error.
	LinkState  bool
	RouteNoise float64
	// Chaos, when non-nil, generates a fault schedule (host crashes, link
	// outages, burst loss — internal/fault) from FaultSeed and installs it.
	// Zero-rate parameters generate an empty schedule, which is not
	// installed at all, so a zero-chaos cell is byte-identical to the same
	// cell without Chaos.
	Chaos     *fault.ChaosParams
	FaultSeed uint64
	// Churn, when non-nil, generates a mobility-style churn schedule
	// instead: crash waves aimed at the election succession line
	// (core.ElectionOrder) plus background client blackouts, from
	// FaultSeed. Mutually exclusive with Chaos (Chaos wins if both set).
	Churn *fault.ChurnParams
	// Mutation, when non-nil and non-empty, installs the adversarial
	// message-plane mutator (duplication, reordering, corruption, repair
	// storms — fault.Mutator) on top of whatever schedule Chaos generated.
	// A nil or empty config leaves the run byte-identical to one without.
	Mutation *fault.MutationConfig
}

// Run executes one simulation run.
func Run(spec RunSpec) (*protocol.Result, error) {
	tcfg := topology.DefaultConfig(spec.Routers)
	tcfg.LossProb = spec.Loss
	tcfg.Tree = spec.Tree
	topo, err := topology.Generate(tcfg, rng.New(spec.TopoSeed))
	if err != nil {
		return nil, err
	}
	eng, err := NewEngine(spec.Protocol)
	if err != nil {
		return nil, err
	}
	cfg := protocol.DefaultConfig()
	if spec.Packets > 0 {
		cfg.Packets = spec.Packets
	}
	if spec.Interval > 0 {
		cfg.Interval = spec.Interval
	}
	if spec.Chaos != nil {
		sched := fault.Generate(*spec.Chaos, topo.Clients, len(topo.Loss), rng.New(spec.FaultSeed))
		sched.Mutation = spec.Mutation
		if !sched.Empty() {
			cfg.Fault = sched
		}
	} else if spec.Churn != nil {
		// The churn driver aims its crash waves at the deterministic
		// election succession line, which is a pure function of the tree —
		// so the same schedule confronts every protocol on this topology.
		tree, terr := mtree.Build(topo)
		if terr != nil {
			return nil, terr
		}
		sched := fault.GenerateChurn(*spec.Churn, core.ElectionOrder(tree), rng.New(spec.FaultSeed))
		if !sched.Empty() {
			cfg.Fault = sched
		}
	} else if spec.Mutation != nil {
		sched := &fault.Schedule{Mutation: spec.Mutation}
		if !sched.Empty() {
			cfg.Fault = sched
		}
	}
	var router route.Router
	if spec.LinkState {
		router, _ = lsr.Converge(topo, lsr.Config{Noise: spec.RouteNoise},
			rng.New(spec.TopoSeed+0x9e3779b9))
	}
	s, err := protocol.NewSessionWithRouter(topo, eng, cfg, spec.SimSeed, router)
	if err != nil {
		return nil, err
	}
	res := s.Run()
	if !res.Complete {
		return res, fmt.Errorf("experiment: run %+v hit the event cap", spec)
	}
	if res.Stats.Unrecovered > 0 {
		return res, fmt.Errorf("experiment: run %+v left %d losses unrecovered",
			spec, res.Stats.Unrecovered)
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("experiment: run %+v violated %d invariants: %s",
			spec, len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// Point is one measured (protocol, x) cell of a figure.
type Point struct {
	Latency   float64 // mean recovery latency, ms
	Bandwidth float64 // recovery hops per packet recovered
	Delivery  float64 // fraction of (client, packet) pairs delivered
	P99       float64 // p99 recovery latency, ms
	Failovers float64 // mean coordinator claims past bootstrap per run
	Losses    int64
	Clients   int
	// LatSamples and BwSamples hold the per-replicate values (confidence
	// intervals across traffic seeds); DelSamples and P99Samples likewise
	// for the chaos metrics, FoSamples for the churn failover counts.
	LatSamples []float64
	BwSamples  []float64
	DelSamples []float64
	P99Samples []float64
	FoSamples  []float64
}

// merge folds another replicate into the point with equal weight by loss
// count (per-recovery means combine weighted by recovery counts; loss
// counts are near-identical across protocols on the same topology/seed).
// Delivery and P99 merge by replicate count: every replicate covers the
// same (client, packet) population, and p99s of equal-size samples average.
func (p *Point) merge(o Point) {
	np, no := len(p.DelSamples), len(o.DelSamples)
	if np+no > 0 {
		p.Delivery = (p.Delivery*float64(np) + o.Delivery*float64(no)) / float64(np+no)
		p.P99 = (p.P99*float64(np) + o.P99*float64(no)) / float64(np+no)
		p.Failovers = (p.Failovers*float64(np) + o.Failovers*float64(no)) / float64(np+no)
	}
	tot := p.Losses + o.Losses
	if tot == 0 {
		return
	}
	wp := float64(p.Losses) / float64(tot)
	wo := float64(o.Losses) / float64(tot)
	p.Latency = p.Latency*wp + o.Latency*wo
	p.Bandwidth = p.Bandwidth*wp + o.Bandwidth*wo
	p.Losses = tot
	if o.Clients > p.Clients {
		p.Clients = o.Clients
	}
	p.LatSamples = append(p.LatSamples, o.LatSamples...)
	p.BwSamples = append(p.BwSamples, o.BwSamples...)
	p.DelSamples = append(p.DelSamples, o.DelSamples...)
	p.P99Samples = append(p.P99Samples, o.P99Samples...)
	p.FoSamples = append(p.FoSamples, o.FoSamples...)
}

// Row is one x-position of a figure with a point per protocol.
type Row struct {
	// X is the independent variable: client count (Figures 5/6) or loss
	// percentage (Figures 7/8).
	X float64
	// Label annotates the row (e.g. "n=500").
	Label string
	// Points maps protocol name → measurement.
	Points map[string]Point
}

// Figure is a reproduced paper figure: rows of per-protocol measurements.
type Figure struct {
	Name      string
	XLabel    string
	YLabel    string
	Metric    string // "latency", "bandwidth", "delivery", "p99", or "failovers"
	Protocols []string
	Rows      []Row
}

// Value extracts this figure's metric from a point.
func (f *Figure) Value(p Point) float64 {
	switch f.Metric {
	case "bandwidth":
		return p.Bandwidth
	case "delivery":
		return p.Delivery
	case "p99":
		return p.P99
	case "failovers":
		return p.Failovers
	}
	return p.Latency
}
