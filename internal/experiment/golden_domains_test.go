package experiment

// Golden-digest gate for hierarchical-domain mode (Config.DomainClients):
// a domain-sharded run must be byte-identical to the serial run at every
// worker count, because the domain layout is a pure function of the tree and
// the domain size. The Figure-5 cell at DomainClients=8 partitions its group
// into ⌈clients/8⌉ domains, exercising the window machinery at domain
// granularity rather than the classic fixed shard count.

import (
	"fmt"
	"strings"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// TestGoldenDigestsDomains reruns the serial golden cells in domain mode at
// every worker count and asserts the digests are unchanged from serial.
func TestGoldenDigestsDomains(t *testing.T) {
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	wantK := (len(topo.Clients) + 7) / 8
	if wantK < 2 {
		t.Fatalf("fixture too small for domain mode: %d clients", len(topo.Clients))
	}
	for _, proto := range []string{"SRM", "RMA", "RP", "SRC", "COOP"} {
		for _, w := range parallelWorkerCounts {
			t.Run(fmt.Sprintf("%s/w%d", proto, w), func(t *testing.T) {
				res := goldenRunDomains(t, proto, w, 8)
				if got, want := ResultDigest(res), goldenDigests[proto+"/plain"]; got != want {
					t.Errorf("domain digest %s at %d workers = %s, want %s (domain output diverged from serial)",
						proto, w, got, want)
				}
				// SRM has no CloneForShard and must fall back to serial
				// (bit-identically); the other engines must genuinely shard.
				if w >= 2 && proto != "SRM" {
					if !res.Sharded {
						t.Fatalf("%s w%d: domain run fell back to serial: %s", proto, w, res.SerialReason)
					}
					if res.Domains != wantK {
						t.Errorf("%s w%d: %d domains, want %d (=⌈%d/8⌉)",
							proto, w, res.Domains, wantK, len(topo.Clients))
					}
					if len(res.Aggregators) != res.Domains {
						t.Errorf("%s w%d: %d aggregators for %d domains",
							proto, w, len(res.Aggregators), res.Domains)
					}
					for d, a := range res.Aggregators {
						if a == graph.None {
							t.Errorf("%s w%d: domain %d has no aggregator", proto, w, d)
						}
					}
				}
			})
		}
	}
}

// goldenRunDomains is goldenRunWorkers with a domain size.
func goldenRunDomains(t *testing.T, proto string, workers, domainClients int) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 50, SimWorkers: workers, DomainClients: domainClients}
	s, err := protocol.NewSession(topo, eng, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Unrecovered > 0 {
		t.Fatalf("%s workers=%d domains=%d: incomplete run (unrecovered=%d complete=%v)",
			proto, workers, domainClients, res.Stats.Unrecovered, res.Complete)
	}
	return res
}

// TestDomainModeFallbackReason pins the explanation surfaced when a domain
// request cannot shard: a domain size swallowing the whole group must fall
// back to serial with a "domain mode:" reason, and the digest must still
// equal the serial golden.
func TestDomainModeFallbackReason(t *testing.T) {
	res := goldenRunDomains(t, "RP", 4, 1000)
	if res.Sharded {
		t.Fatal("single-domain run should have fallen back to serial")
	}
	if !strings.HasPrefix(res.SerialReason, "domain mode:") {
		t.Fatalf("SerialReason = %q, want a 'domain mode:' explanation", res.SerialReason)
	}
	if got, want := ResultDigest(res), goldenDigests["RP/plain"]; got != want {
		t.Errorf("fallback digest %s, want serial %s", got, want)
	}
}

// TestDomainParityChaos reruns the chaos parity schedule in domain mode —
// crash windows and link outages crossing domain boundaries must still merge
// to the serial result exactly.
func TestDomainParityChaos(t *testing.T) {
	for _, proto := range []string{"SRM", "RMA", "RP", "SRC", "COOP"} {
		t.Run(proto, func(t *testing.T) {
			serial := parityRun(t, proto, "chaos", 0)
			want := ResultDigest(serial)
			for _, w := range []int{2, 4, 8} {
				res := domainParityRun(t, proto, w, 8)
				if got := ResultDigest(res); got != want {
					t.Errorf("chaos %s at %d workers (domain mode): digest %s, want serial %s",
						proto, w, got, want)
				}
			}
		})
	}
}

// domainParityRun is parityRun under the chaos schedule with a domain size.
func domainParityRun(t *testing.T, proto string, workers, domainClients int) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	sched := chaosParitySchedule(topo)
	eng, err := NewEngine(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 50, Fault: sched,
		SimWorkers: workers, DomainClients: domainClients}
	s, err := protocol.NewSession(topo, eng, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete {
		t.Fatalf("%s workers=%d: incomplete run", proto, workers)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("%s workers=%d: oracle violations %v", proto, workers, res.Violations)
	}
	return res
}
