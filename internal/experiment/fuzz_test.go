package experiment

import (
	"math"
	"testing"

	"rmcast/internal/fault"
)

// FuzzMutator throws arbitrary mutation configs — including NaN, infinite,
// negative and absurd values, which the mutator must clamp — at small but
// complete simulation runs of every hardened engine, with the strict
// invariant oracle on. Whatever the adversary's parameters, the run must
// terminate, deliver everything, and keep clean books: Run errors on an
// event-cap hit, an unrecovered loss, or any oracle violation, and the
// oracle panics mid-run on safety divergence.
func FuzzMutator(f *testing.F) {
	f.Add(uint64(1), 0.3, 0.4, 0.12, 25.0, int16(3), 100.0, 300.0, int16(2), uint8(0))
	f.Add(uint64(2), 1.0, 1.0, 1.0, 1e12, int16(999), math.Inf(-1), math.NaN(), int16(-5), uint8(1))
	f.Add(uint64(3), math.NaN(), -1.0, 0.5, -3.0, int16(0), 0.0, 500.0, int16(16), uint8(2))
	f.Add(uint64(4), 0.9, 0.0, 0.0, 0.0, int16(8), 200.0, 100.0, int16(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64,
		dup, reorder, corrupt, maxDelay float64, maxDup int16,
		stormFrom, stormTo float64, stormExtra int16, protoIdx uint8) {
		p := fault.MutationParams{
			DupProb:     dup,
			MaxDup:      int(maxDup),
			ReorderProb: reorder,
			MaxDelay:    maxDelay,
			CorruptProb: corrupt,
		}
		cfg := &fault.MutationConfig{
			Request: p,
			Repair:  p,
			Storms:  []fault.StormWindow{{From: stormFrom, To: stormTo, Extra: int(stormExtra)}},
		}
		proto := AdversarialProtocols[int(protoIdx)%len(AdversarialProtocols)]
		spec := RunSpec{
			Routers: 25, Loss: 0.05, Protocol: proto,
			Packets: 8, Interval: 50,
			TopoSeed: 2003, SimSeed: seed,
			Mutation: cfg,
		}
		if _, err := Run(spec); err != nil {
			t.Fatalf("%s under %+v: %v", proto, cfg, err)
		}
	})
}
