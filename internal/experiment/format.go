package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Format writes the figure as an aligned text table (the form EXPERIMENTS.md
// and cmd/figures print).
func (f *Figure) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Name); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{f.XLabel}
	for _, p := range f.Protocols {
		header = append(header, p)
	}
	header = append(header, "note")
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, row := range f.Rows {
		cells := []string{fmt.Sprintf("%g", row.X)}
		for _, p := range f.Protocols {
			cells = append(cells, fmt.Sprintf("%.2f", f.Value(row.Points[p])))
		}
		cells = append(cells, row.Label)
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Summary ratios in the style of the paper's §5.2 claims (RP versus
	// each baseline, averaged across rows).
	if contains(f.Protocols, "RP") {
		for _, base := range f.Protocols {
			if base == "RP" {
				continue
			}
			var rp, b float64
			n := 0
			for _, row := range f.Rows {
				bv := f.Value(row.Points[base])
				if bv <= 0 {
					continue
				}
				rp += f.Value(row.Points["RP"])
				b += bv
				n++
			}
			if n > 0 && b > 0 {
				fmt.Fprintf(w, "RP vs %s: %.2f%% lower %s on average\n",
					base, 100*(1-rp/b), f.Metric)
			}
		}
	}
	return nil
}

// Markdown writes the figure as a GitHub-flavoured markdown table — the
// form EXPERIMENTS.md embeds, so the document can be regenerated with
// `cmd/figures -md`.
func (f *Figure) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n\n", f.Name); err != nil {
		return err
	}
	header := "| " + f.XLabel + " |"
	sep := "|---|"
	for _, p := range f.Protocols {
		header += " " + p + " |"
		sep += "---|"
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", header, sep); err != nil {
		return err
	}
	for _, row := range f.Rows {
		line := fmt.Sprintf("| %g |", row.X)
		for _, p := range f.Protocols {
			pt := row.Points[p]
			if ci := f.ci(pt); ci > 0 {
				line += fmt.Sprintf(" %.2f ± %.2f |", f.Value(pt), ci)
			} else {
				line += fmt.Sprintf(" %.2f |", f.Value(pt))
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ci returns the 95% confidence half-width across replicates for this
// figure's metric (0 with fewer than 2 replicates).
func (f *Figure) ci(p Point) float64 {
	samples := p.LatSamples
	switch f.Metric {
	case "bandwidth":
		samples = p.BwSamples
	case "delivery":
		samples = p.DelSamples
	case "p99":
		samples = p.P99Samples
	case "failovers":
		samples = p.FoSamples
	}
	n := len(samples)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	var m2 float64
	for _, v := range samples {
		m2 += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(m2 / float64(n-1))
	return 1.96 * sd / math.Sqrt(float64(n))
}

// CSV writes the figure as comma-separated values with a header row.
func (f *Figure) CSV(w io.Writer) error {
	cols := append([]string{f.XLabel}, f.Protocols...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range f.Rows {
		cells := []string{fmt.Sprintf("%g", row.X)}
		for _, p := range f.Protocols {
			cells = append(cells, fmt.Sprintf("%.4f", f.Value(row.Points[p])))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RPImprovement returns RP's average relative improvement (0..1) over the
// named baseline for this figure's metric, for EXPERIMENTS.md comparisons.
func (f *Figure) RPImprovement(baseline string) float64 {
	var rp, b float64
	for _, row := range f.Rows {
		rp += f.Value(row.Points["RP"])
		b += f.Value(row.Points[baseline])
	}
	if b == 0 {
		return 0
	}
	return 1 - rp/b
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
