package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"rmcast/internal/rng"
)

// figureBytes renders a figure through every text emitter, so "byte
// identical" below means identical down to the formatted output the cmd
// tools print, not just DeepEqual on the structs.
func figureBytes(t *testing.T, f *Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if err := f.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGroupSizeSweepParallelDeterminism asserts that the worker-pool run of
// a group-size sweep is byte-identical to the legacy serial run for the
// same seed, across several worker counts and seeds.
func TestGroupSizeSweepParallelDeterminism(t *testing.T) {
	// Distinct sweep seeds derived the way parallel workers would: one
	// SplitN fan-out from a fixed root stream.
	seeds := rng.New(2026).SplitN(2)
	for _, sr := range seeds {
		seed := sr.Uint64()
		base := GroupSizeSweep{
			Sizes:    []int{40, 60},
			Loss:     0.05,
			Packets:  20,
			Interval: 50,
			// Two replicates so the merge path is covered too.
			Replicates: 2,
			BaseSeed:   seed,
		}
		serial := base
		serial.Parallel = 1
		wantLat, wantBw, err := serial.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := base
			par.Parallel = workers
			gotLat, gotBw, err := par.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotLat, wantLat) || !reflect.DeepEqual(gotBw, wantBw) {
				t.Fatalf("seed %d: parallel=%d figures differ from serial", seed, workers)
			}
			if !bytes.Equal(figureBytes(t, gotLat), figureBytes(t, wantLat)) ||
				!bytes.Equal(figureBytes(t, gotBw), figureBytes(t, wantBw)) {
				t.Fatalf("seed %d: parallel=%d output bytes differ from serial", seed, workers)
			}
		}
	}
}

// TestLossSweepParallelDeterminism is the same assertion for the loss
// sweep (Figures 7/8 shape).
func TestLossSweepParallelDeterminism(t *testing.T) {
	base := LossSweep{
		Routers:    60,
		LossPcts:   []float64{5, 10},
		Packets:    20,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
	serial := base
	serial.Parallel = 1
	wantLat, wantBw, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	gotLat, gotBw, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLat, wantLat) || !reflect.DeepEqual(gotBw, wantBw) {
		t.Fatal("parallel loss sweep differs from serial")
	}
	if !bytes.Equal(figureBytes(t, gotLat), figureBytes(t, wantLat)) ||
		!bytes.Equal(figureBytes(t, gotBw), figureBytes(t, wantBw)) {
		t.Fatal("parallel loss sweep output bytes differ from serial")
	}
}

// TestAblationSweepParallel smoke-tests the pool through the ablation
// wrapper (many protocols, small topology).
func TestAblationSweepParallel(t *testing.T) {
	a := AblationSweep{
		Routers:  50,
		LossPcts: []float64{5},
		Packets:  15,
		Interval: 50,
		BaseSeed: 2003,
		Parallel: 4,
	}
	lat, bw, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 1 || len(bw.Rows) != 1 {
		t.Fatalf("ablation rows = %d/%d, want 1/1", len(lat.Rows), len(bw.Rows))
	}
	for _, proto := range AblationProtocols {
		if _, ok := lat.Rows[0].Points[proto]; !ok {
			t.Fatalf("missing ablation point for %s", proto)
		}
	}
}

// TestRunCellsErrorIndexDeterministic asserts a failing grid reports the
// lowest failing index regardless of worker count.
func TestRunCellsErrorIndexDeterministic(t *testing.T) {
	specs := []RunSpec{
		{Routers: 40, Loss: 0.05, Protocol: "RP", Packets: 5, Interval: 50, TopoSeed: 1, SimSeed: 1},
		{Routers: 40, Loss: 0.05, Protocol: "NO-SUCH", Packets: 5, Interval: 50, TopoSeed: 1, SimSeed: 1},
		{Routers: 40, Loss: 0.05, Protocol: "ALSO-BAD", Packets: 5, Interval: 50, TopoSeed: 1, SimSeed: 1},
	}
	for _, workers := range []int{1, 4} {
		_, idx, err := runCells(specs, workers)
		if err == nil {
			t.Fatalf("parallel=%d: expected error", workers)
		}
		if idx != 1 {
			t.Fatalf("parallel=%d: failing index %d, want 1", workers, idx)
		}
	}
}
