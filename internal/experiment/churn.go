package experiment

import (
	"fmt"

	"rmcast/internal/fault"
)

// ChurnSweep is the mobility-style robustness evaluation: one fixed
// topology driven through rising churn rates, with the crash waves aimed at
// the coordinator succession line (fault.GenerateChurn) — so the
// RP-FAILOVER engine is forced through repeated epoch-fenced re-elections
// while the non-coordinated protocols face the same schedule as ordinary
// client churn. Compared metrics: delivery ratio, mean and p99 recovery
// latency, and the failover count (coordinator claims past bootstrap;
// structurally zero for engines with no coordinator).
//
// Rate 0 generates an empty schedule, which Run does not install at all, so
// the zero row reproduces the equivalent fault-free cells byte-for-byte.
// Every cell is independently seeded, and the fault seed is shared across
// protocols within a (rate, replicate) cell, so all engines face the same
// crash waves and any Parallel value yields bit-identical figures.
type ChurnSweep struct {
	// Routers is the fixed backbone size.
	Routers int
	// Rates are the churn levels in [0, 1]; see fault.ChurnParams.Rate.
	Rates []float64
	// BaseLoss is the flat per-link loss probability of every cell.
	BaseLoss float64
	// Protocols to compare; nil means ChurnProtocols.
	Protocols []string
	Packets   int
	Interval  float64
	// Replicates averages this many (traffic, fault) seeds per cell.
	Replicates int
	BaseSeed   uint64
	// Parallel is the worker count for the sweep grid; <= 1 runs the legacy
	// serial loop (see parallel.go).
	Parallel int
}

// DefaultChurn returns the churn sweep used by EXPERIMENTS.md: n=100,
// rate 0…1, 5% base loss.
func DefaultChurn() ChurnSweep {
	return ChurnSweep{
		Routers:    100,
		Rates:      []float64{0, 0.25, 0.5, 0.75, 1.0},
		BaseLoss:   0.05,
		Packets:    100,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
}

// churnParams maps one churn rate to the generator's knobs.
func churnParams(rate float64, packets int, interval float64) fault.ChurnParams {
	return fault.ChurnParams{
		Rate: rate,
		Span: float64(packets) * interval,
	}
}

// Run executes the sweep and returns the four churn figures.
func (c ChurnSweep) Run() (delivery, latency, p99, failovers *Figure, err error) {
	protocols := c.Protocols
	if protocols == nil {
		protocols = ChurnProtocols
	}
	reps := c.Replicates
	if reps < 1 {
		reps = 1
	}
	specs := make([]RunSpec, 0, len(c.Rates)*len(protocols)*reps)
	for ri, rate := range c.Rates {
		cp := churnParams(rate, c.Packets, c.Interval)
		for _, proto := range protocols {
			for rep := 0; rep < reps; rep++ {
				specs = append(specs, RunSpec{
					Routers:  c.Routers,
					Loss:     c.BaseLoss,
					Protocol: proto,
					Packets:  c.Packets,
					Interval: c.Interval,
					// One fixed topology for the whole sweep; traffic and
					// fault seeds vary per (rate, replicate) and the fault
					// seed is protocol-independent, so every engine faces
					// the same crash waves.
					TopoSeed:  c.BaseSeed,
					SimSeed:   c.BaseSeed + uint64(ri)*100 + uint64(rep) + 1,
					Churn:     &cp,
					FaultSeed: c.BaseSeed + 0xcf41 + uint64(ri)*100 + uint64(rep),
				})
			}
		}
	}
	results, failed, rerr := runCells(specs, c.Parallel)
	if rerr != nil {
		ri := failed / (len(protocols) * reps)
		pi := failed / reps % len(protocols)
		return nil, nil, nil, nil, fmt.Errorf("churn %g %s rep %d: %w",
			c.Rates[ri], protocols[pi], failed%reps, rerr)
	}
	var rows []Row
	idx := 0
	for _, rate := range c.Rates {
		row := Row{X: rate, Label: fmt.Sprintf("churn=%g", rate), Points: map[string]Point{}}
		for _, proto := range protocols {
			var agg Point
			for rep := 0; rep < reps; rep++ {
				p := cellPoint(results[idx])
				idx++
				if rep == 0 {
					agg = p
				} else {
					agg.merge(p)
				}
			}
			row.Points[proto] = agg
		}
		rows = append(rows, row)
	}
	mk := func(name, ylabel, metric string) *Figure {
		return &Figure{
			Name:      name,
			XLabel:    "churn rate",
			YLabel:    ylabel,
			Metric:    metric,
			Protocols: protocols,
			Rows:      rows,
		}
	}
	delivery = mk("Churn: delivery ratio vs churn rate", "delivered fraction", "delivery")
	latency = mk("Churn: mean recovery latency vs churn rate", "latency (ms)", "latency")
	p99 = mk("Churn: p99 recovery latency vs churn rate", "latency (ms)", "p99")
	failovers = mk("Churn: RP failovers vs churn rate", "failovers per run", "failovers")
	return delivery, latency, p99, failovers, nil
}
