package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strconv"
	"text/tabwriter"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// ScalingSweep is the large-n planning tier: RP strategy planning only (no
// packet simulation) on tree-only topologies at client counts far beyond
// the paper's figures, reporting wall-clock and allocation counts for the
// tree-aggregated batch planner, plus the O(N²) scan baseline and a
// correctness cross-check where the baseline is affordable. This probes the
// ROADMAP's "millions of users" direction: planning is the only whole-group
// computation RP needs, so its scaling is the deployment bottleneck.
type ScalingSweep struct {
	// Sizes are the client counts n.
	Sizes []int
	// ClientsPerRouter shapes the topology (see topology.TreeConfig).
	ClientsPerRouter int
	// ScanCutoff bounds the sizes at which the quadratic scan baseline is
	// also run (and the two result sets compared); 0 means 5000.
	ScanCutoff int
	// BaseSeed derives each cell's topology seed.
	BaseSeed uint64
}

// DefaultScaling returns the standard tier: n ∈ {1k, 5k, 20k, 50k}.
func DefaultScaling() ScalingSweep {
	return ScalingSweep{
		Sizes:            []int{1000, 5000, 20000, 50000},
		ClientsPerRouter: 4,
		ScanCutoff:       5000,
		BaseSeed:         1,
	}
}

// ScalingCell is one measured size.
type ScalingCell struct {
	// Clients is n; Nodes the total node count; TreeDepth the tree height.
	Clients   int
	Nodes     int
	TreeDepth int32
	// BuildMs is topology generation + tree construction + router setup.
	BuildMs float64
	// PlanMs is the first full PlanAll on the aggregated path (includes
	// building the aggregate); ReplanMs is a steady-state PlanAllInto over
	// the same result set, the cost a live session pays per replan.
	PlanMs   float64
	ReplanMs float64
	// PlanAllocs/ReplanAllocs are heap allocation counts for those passes.
	PlanAllocs   uint64
	ReplanAllocs uint64
	// ScanMs is the O(N²) scan baseline (0 when skipped as too large);
	// Speedup is ScanMs/PlanMs.
	ScanMs  float64
	Speedup float64
	// Verified reports that the scan baseline ran and produced strategies
	// identical to the fast path's.
	Verified bool
	// FastPath confirms the aggregated path was engaged.
	FastPath bool
	// MeanPeers is the mean prioritized-list length across clients.
	MeanPeers float64
}

// ScalingReport is the sweep result with the harness's usual renderings.
type ScalingReport []ScalingCell

// Run executes the sweep. Cells run serially on purpose: wall-clock is the
// measurement, so cells must not contend for cores.
func (s ScalingSweep) Run() (ScalingReport, error) {
	cutoff := s.ScanCutoff
	if cutoff == 0 {
		cutoff = 5000
	}
	report := make(ScalingReport, 0, len(s.Sizes))
	for i, n := range s.Sizes {
		cell, err := s.runCell(n, s.BaseSeed+uint64(i)*1000, n <= cutoff)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d: %w", n, err)
		}
		report = append(report, cell)
	}
	return report, nil
}

// allocsDuring runs f and returns its duration and heap allocation count.
func allocsDuring(f func()) (time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

func (s ScalingSweep) runCell(n int, seed uint64, withScan bool) (ScalingCell, error) {
	cfg := topology.DefaultTreeConfig(n)
	if s.ClientsPerRouter > 0 {
		cfg.ClientsPerRouter = s.ClientsPerRouter
	}
	buildStart := time.Now()
	net, err := topology.GenerateTree(cfg, rng.New(seed))
	if err != nil {
		return ScalingCell{}, err
	}
	tree, err := mtree.Build(net)
	if err != nil {
		return ScalingCell{}, err
	}
	rt := route.NewTreeTables(tree)
	cell := ScalingCell{
		Clients: n,
		Nodes:   net.NumNodes(),
		BuildMs: float64(time.Since(buildStart)) / float64(time.Millisecond),
	}
	for _, d := range tree.Depth {
		if d > cell.TreeDepth {
			cell.TreeDepth = d
		}
	}

	p := core.NewPlanner(tree, rt)
	var strategies map[graph.NodeID]*core.Strategy
	planTime, planAllocs := allocsDuring(func() {
		strategies = p.PlanAll()
	})
	cell.PlanMs = float64(planTime) / float64(time.Millisecond)
	cell.PlanAllocs = planAllocs
	cell.FastPath = p.UsesFastPath()

	replanTime, replanAllocs := allocsDuring(func() {
		p.PlanAllInto(strategies)
	})
	cell.ReplanMs = float64(replanTime) / float64(time.Millisecond)
	cell.ReplanAllocs = replanAllocs

	var peers int
	for _, st := range strategies {
		peers += len(st.Peers)
	}
	cell.MeanPeers = float64(peers) / float64(len(strategies))

	if withScan {
		scan := core.NewPlanner(tree, rt)
		scan.DisableFastPath = true
		var scanned map[graph.NodeID]*core.Strategy
		scanTime, _ := allocsDuring(func() {
			scanned = scan.PlanAll()
		})
		cell.ScanMs = float64(scanTime) / float64(time.Millisecond)
		if cell.PlanMs > 0 {
			cell.Speedup = cell.ScanMs / cell.PlanMs
		}
		if !reflect.DeepEqual(strategies, scanned) {
			return cell, fmt.Errorf("fast path diverged from scan baseline")
		}
		cell.Verified = true
	}
	return cell, nil
}

// Format renders the report as an aligned table.
func (r ScalingReport) Format(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tnodes\tdepth\tbuild(ms)\tplan(ms)\treplan(ms)\tscan(ms)\tspeedup\tplan allocs\treplan allocs\tpeers/client\tfast\tverified")
	for _, c := range r {
		scan, speedup := "-", "-"
		if c.ScanMs > 0 {
			scan = fmt.Sprintf("%.1f", c.ScanMs)
			speedup = fmt.Sprintf("%.0f×", c.Speedup)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.2f\t%.2f\t%s\t%s\t%d\t%d\t%.2f\t%v\t%v\n",
			c.Clients, c.Nodes, c.TreeDepth, c.BuildMs, c.PlanMs, c.ReplanMs,
			scan, speedup, c.PlanAllocs, c.ReplanAllocs, c.MeanPeers, c.FastPath, c.Verified)
	}
	return tw.Flush()
}

// Markdown renders the report as a GitHub table for EXPERIMENTS.md.
func (r ScalingReport) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "| clients | nodes | depth | build (ms) | plan (ms) | replan (ms) | scan (ms) | speedup | replan allocs |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, c := range r {
		scan, speedup := "—", "—"
		if c.ScanMs > 0 {
			scan = fmt.Sprintf("%.1f", c.ScanMs)
			speedup = fmt.Sprintf("%.0f×", c.Speedup)
		}
		if _, err := fmt.Fprintf(w, "| %d | %d | %d | %.1f | %.2f | %.2f | %s | %s | %d |\n",
			c.Clients, c.Nodes, c.TreeDepth, c.BuildMs, c.PlanMs, c.ReplanMs,
			scan, speedup, c.ReplanAllocs); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the report for plotting.
func (r ScalingReport) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"clients", "nodes", "depth", "build_ms", "plan_ms",
		"replan_ms", "scan_ms", "speedup", "plan_allocs", "replan_allocs",
		"mean_peers", "fast_path", "verified"}); err != nil {
		return err
	}
	for _, c := range r {
		rec := []string{
			strconv.Itoa(c.Clients), strconv.Itoa(c.Nodes),
			strconv.Itoa(int(c.TreeDepth)),
			strconv.FormatFloat(c.BuildMs, 'f', 3, 64),
			strconv.FormatFloat(c.PlanMs, 'f', 3, 64),
			strconv.FormatFloat(c.ReplanMs, 'f', 3, 64),
			strconv.FormatFloat(c.ScanMs, 'f', 3, 64),
			strconv.FormatFloat(c.Speedup, 'f', 2, 64),
			strconv.FormatUint(c.PlanAllocs, 10),
			strconv.FormatUint(c.ReplanAllocs, 10),
			strconv.FormatFloat(c.MeanPeers, 'f', 3, 64),
			strconv.FormatBool(c.FastPath),
			strconv.FormatBool(c.Verified),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
