package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strconv"
	"text/tabwriter"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/protocol"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// ScalingSweep is the large-n planning tier: RP strategy planning only (no
// packet simulation) on tree-only topologies at client counts far beyond
// the paper's figures, reporting wall-clock and allocation counts for the
// tree-aggregated batch planner, plus the O(N²) scan baseline and a
// correctness cross-check where the baseline is affordable. This probes the
// ROADMAP's "millions of users" direction: planning is the only whole-group
// computation RP needs, so its scaling is the deployment bottleneck.
type ScalingSweep struct {
	// Sizes are the client counts n.
	Sizes []int
	// ClientsPerRouter shapes the topology (see topology.TreeConfig).
	ClientsPerRouter int
	// ScanCutoff bounds the sizes at which the quadratic scan baseline is
	// also run (and the two result sets compared); 0 means 5000.
	ScanCutoff int
	// BaseSeed derives each cell's topology seed.
	BaseSeed uint64
	// SimWorkers, when >= 2, adds a simulation phase to every cell: one
	// serial RP packet run and one sharded run at this worker count on the
	// same topology, wall-clocked separately, with the two result digests
	// required to match exactly (the sweep errors on divergence — this is
	// the determinism gate the CI smoke tier rides). 0 skips the phase.
	SimWorkers int
	// SimPackets sizes the simulation phase; 0 means 20.
	SimPackets int
	// DomainClients, when positive, runs the sharded half of the simulation
	// phase in hierarchical-domain mode (protocol.Config.DomainClients): one
	// engine per ~DomainClients-member recovery domain instead of the classic
	// fixed shard count. This is the million-client execution mode; the
	// digest-equality gate applies unchanged.
	DomainClients int
}

// hugeClients is the size past which a cell switches to the memory-compact
// representations: BuildLite trees (no Euler/sparse LCA index), dense
// strategy slices instead of maps, oracle checking off, and a raised event
// cap. Below it cells keep the exact historical path (map planning, strict
// oracle), so existing tiers measure what they always measured.
const hugeClients = 100_000

// DefaultScaling returns the standard tier: n ∈ {1k, 5k, 20k, 50k}.
func DefaultScaling() ScalingSweep {
	return ScalingSweep{
		Sizes:            []int{1000, 5000, 20000, 50000},
		ClientsPerRouter: 4,
		ScanCutoff:       5000,
		BaseSeed:         1,
	}
}

// ScalingCell is one measured size.
type ScalingCell struct {
	// Clients is n; Nodes the total node count; TreeDepth the tree height.
	Clients   int
	Nodes     int
	TreeDepth int32
	// BuildMs is topology generation + tree construction + router setup.
	BuildMs float64
	// PlanMs is the first full PlanAll on the aggregated path (includes
	// building the aggregate); ReplanMs is a steady-state PlanAllInto over
	// the same result set, the cost a live session pays per replan.
	PlanMs   float64
	ReplanMs float64
	// PlanAllocs/ReplanAllocs are heap allocation counts for those passes.
	PlanAllocs   uint64
	ReplanAllocs uint64
	// ScanMs is the O(N²) scan baseline (0 when skipped as too large);
	// Speedup is ScanMs/PlanMs.
	ScanMs  float64
	Speedup float64
	// Verified reports that the scan baseline ran and produced strategies
	// identical to the fast path's.
	Verified bool
	// FastPath confirms the aggregated path was engaged.
	FastPath bool
	// MeanPeers is the mean prioritized-list length across clients.
	MeanPeers float64
	// SimSerialMs/SimParallelMs wall-clock the simulation phase (0 when the
	// phase is off): one RP packet run serial, one sharded at
	// ScalingSweep.SimWorkers. SimSpeedup is their ratio. On a single-core
	// host the sharded run measures coordination overhead, not speedup —
	// the digest equality is the load-bearing result either way.
	SimSerialMs   float64
	SimParallelMs float64
	SimSpeedup    float64
	// SimSharded reports that the parallel run was genuinely eligible for
	// sharding (false means it fell back to serial, making the comparison
	// vacuous). SimSerialReason carries the engine's explanation when it
	// fell back.
	SimSharded      bool
	SimSerialReason string
	// SimDomains is the recovery-domain count of the sharded run (0 outside
	// domain mode).
	SimDomains int
	// SimDigest is the shared digest of the two runs (they are required to
	// be identical).
	SimDigest string
	// LiteTree reports the memory-compact cell path (BuildLite + dense
	// strategies + oracle off) was used.
	LiteTree bool
	// PeakHeapMB is the largest live heap observed at the cell's phase
	// boundaries (runtime.ReadMemStats HeapAlloc) — the number that decides
	// whether a tier fits a deployment host. Sampled, not continuous: true
	// transient peaks between samples can exceed it.
	PeakHeapMB float64
}

// ScalingReport is the sweep result with the harness's usual renderings.
type ScalingReport []ScalingCell

// Run executes the sweep. Cells run serially on purpose: wall-clock is the
// measurement, so cells must not contend for cores.
func (s ScalingSweep) Run() (ScalingReport, error) {
	cutoff := s.ScanCutoff
	if cutoff == 0 {
		cutoff = 5000
	}
	report := make(ScalingReport, 0, len(s.Sizes))
	for i, n := range s.Sizes {
		cell, err := s.runCell(n, s.BaseSeed+uint64(i)*1000, n <= cutoff)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d: %w", n, err)
		}
		report = append(report, cell)
	}
	return report, nil
}

// allocsDuring runs f and returns its duration and heap allocation count.
func allocsDuring(f func()) (time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

// heapPeak tracks the largest live heap seen across its Sample calls.
type heapPeak struct{ maxBytes uint64 }

func (h *heapPeak) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.maxBytes {
		h.maxBytes = ms.HeapAlloc
	}
}

func (h *heapPeak) MB() float64 { return float64(h.maxBytes) / (1024 * 1024) }

func (s ScalingSweep) runCell(n int, seed uint64, withScan bool) (ScalingCell, error) {
	cfg := topology.DefaultTreeConfig(n)
	if s.ClientsPerRouter > 0 {
		cfg.ClientsPerRouter = s.ClientsPerRouter
	}
	huge := n > hugeClients
	var peak heapPeak
	buildStart := time.Now()
	net, err := topology.GenerateTree(cfg, rng.New(seed))
	if err != nil {
		return ScalingCell{}, err
	}
	build := mtree.Build
	if huge {
		build = mtree.BuildLite
	}
	tree, err := build(net)
	if err != nil {
		return ScalingCell{}, err
	}
	rt := route.NewTreeTables(tree)
	cell := ScalingCell{
		Clients:  n,
		Nodes:    net.NumNodes(),
		BuildMs:  float64(time.Since(buildStart)) / float64(time.Millisecond),
		LiteTree: huge,
	}
	peak.Sample()
	for _, d := range tree.Depth {
		if d > cell.TreeDepth {
			cell.TreeDepth = d
		}
	}

	p := core.NewPlanner(tree, rt)
	var strategies map[graph.NodeID]*core.Strategy
	var dense []*core.Strategy
	planTime, planAllocs := allocsDuring(func() {
		if huge {
			dense = p.PlanAllDense()
		} else {
			strategies = p.PlanAll()
		}
	})
	cell.PlanMs = float64(planTime) / float64(time.Millisecond)
	cell.PlanAllocs = planAllocs
	cell.FastPath = p.UsesFastPath()
	peak.Sample()

	replanTime, replanAllocs := allocsDuring(func() {
		if huge {
			p.PlanAllDenseInto(dense)
		} else {
			p.PlanAllInto(strategies)
		}
	})
	cell.ReplanMs = float64(replanTime) / float64(time.Millisecond)
	cell.ReplanAllocs = replanAllocs
	peak.Sample()

	var peers, count int
	if huge {
		for _, st := range dense {
			peers += len(st.Peers)
		}
		count = len(dense)
	} else {
		for _, st := range strategies {
			peers += len(st.Peers)
		}
		count = len(strategies)
	}
	cell.MeanPeers = float64(peers) / float64(count)

	if withScan && !huge {
		scan := core.NewPlanner(tree, rt)
		scan.DisableFastPath = true
		var scanned map[graph.NodeID]*core.Strategy
		scanTime, _ := allocsDuring(func() {
			scanned = scan.PlanAll()
		})
		cell.ScanMs = float64(scanTime) / float64(time.Millisecond)
		if cell.PlanMs > 0 {
			cell.Speedup = cell.ScanMs / cell.PlanMs
		}
		if !reflect.DeepEqual(strategies, scanned) {
			return cell, fmt.Errorf("fast path diverged from scan baseline")
		}
		cell.Verified = true
		peak.Sample()
	}

	if s.SimWorkers >= 2 {
		if err := s.simPhase(&cell, net, tree, rt, seed, huge, &peak); err != nil {
			return cell, err
		}
	}
	peak.Sample()
	cell.PeakHeapMB = peak.MB()
	return cell, nil
}

// simPhase runs the cell's topology through one serial and one sharded RP
// packet simulation and records wall clocks plus the digest-equality check.
// Any digest mismatch is an error, not a column: a sharded run that is not
// byte-identical to its serial twin is wrong, whatever its speed.
func (s ScalingSweep) simPhase(cell *ScalingCell, net *topology.Network,
	tree *mtree.Tree, rt route.Router, seed uint64, huge bool, peak *heapPeak) error {
	packets := s.SimPackets
	if packets == 0 {
		packets = 20
	}
	run := func(workers int) (*protocol.Result, float64, error) {
		eng, err := NewEngine("RP")
		if err != nil {
			return nil, 0, err
		}
		cfg := protocol.Config{Packets: packets, Interval: 50, SimWorkers: workers,
			DomainClients: s.DomainClients}
		if huge {
			// The strict oracle is O(clients × packets) bookkeeping per shard
			// and the default event cap was sized for the classic tiers; the
			// million tier turns the first off and raises the second.
			cfg.Check = protocol.CheckOff
			cfg.MaxEvents = 1_000_000_000
		}
		sess, err := protocol.NewSessionPrebuilt(net, tree, eng, cfg, seed, rt)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res := sess.Run()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		peak.Sample()
		if !res.Complete {
			return nil, 0, fmt.Errorf("sim phase (workers=%d): incomplete run", workers)
		}
		return res, ms, nil
	}
	serial, serialMs, err := run(0)
	if err != nil {
		return err
	}
	parallel, parallelMs, err := run(s.SimWorkers)
	if err != nil {
		return err
	}
	sd, pd := ResultDigest(serial), ResultDigest(parallel)
	if sd != pd {
		return fmt.Errorf("sim phase: parallel digest %s diverged from serial %s (workers=%d)",
			pd, sd, s.SimWorkers)
	}
	cell.SimSerialMs = serialMs
	cell.SimParallelMs = parallelMs
	if parallelMs > 0 {
		cell.SimSpeedup = serialMs / parallelMs
	}
	cell.SimSharded = parallel.Sharded
	cell.SimSerialReason = parallel.SerialReason
	cell.SimDomains = parallel.Domains
	cell.SimDigest = sd
	return nil
}

// Format renders the report as an aligned table.
func (r ScalingReport) Format(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tnodes\tdepth\tbuild(ms)\tplan(ms)\treplan(ms)\tscan(ms)\tspeedup\tplan allocs\treplan allocs\tpeers/client\tfast\tverified\tsim serial(ms)\tsim parallel(ms)\tsim speedup\tsharded\tdomains\tpeak heap(MB)")
	for _, c := range r {
		scan, speedup := "-", "-"
		if c.ScanMs > 0 {
			scan = fmt.Sprintf("%.1f", c.ScanMs)
			speedup = fmt.Sprintf("%.0f×", c.Speedup)
		}
		simSerial, simParallel, simSpeedup, sharded, domains := "-", "-", "-", "-", "-"
		if c.SimSerialMs > 0 {
			simSerial = fmt.Sprintf("%.1f", c.SimSerialMs)
			simParallel = fmt.Sprintf("%.1f", c.SimParallelMs)
			simSpeedup = fmt.Sprintf("%.2f×", c.SimSpeedup)
			sharded = fmt.Sprintf("%v", c.SimSharded)
			if c.SimDomains > 0 {
				domains = strconv.Itoa(c.SimDomains)
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.2f\t%.2f\t%s\t%s\t%d\t%d\t%.2f\t%v\t%v\t%s\t%s\t%s\t%s\t%s\t%.0f\n",
			c.Clients, c.Nodes, c.TreeDepth, c.BuildMs, c.PlanMs, c.ReplanMs,
			scan, speedup, c.PlanAllocs, c.ReplanAllocs, c.MeanPeers, c.FastPath, c.Verified,
			simSerial, simParallel, simSpeedup, sharded, domains, c.PeakHeapMB)
	}
	return tw.Flush()
}

// Markdown renders the report as a GitHub table for EXPERIMENTS.md.
func (r ScalingReport) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "| clients | nodes | depth | build (ms) | plan (ms) | replan (ms) | scan (ms) | speedup | replan allocs | sim serial (ms) | sim parallel (ms) | sim speedup | domains | peak heap (MB) |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, c := range r {
		scan, speedup := "—", "—"
		if c.ScanMs > 0 {
			scan = fmt.Sprintf("%.1f", c.ScanMs)
			speedup = fmt.Sprintf("%.0f×", c.Speedup)
		}
		simSerial, simParallel, simSpeedup, domains := "—", "—", "—", "—"
		if c.SimSerialMs > 0 {
			simSerial = fmt.Sprintf("%.1f", c.SimSerialMs)
			simParallel = fmt.Sprintf("%.1f", c.SimParallelMs)
			simSpeedup = fmt.Sprintf("%.2f×", c.SimSpeedup)
			if c.SimDomains > 0 {
				domains = strconv.Itoa(c.SimDomains)
			}
		}
		if _, err := fmt.Fprintf(w, "| %d | %d | %d | %.1f | %.2f | %.2f | %s | %s | %d | %s | %s | %s | %s | %.0f |\n",
			c.Clients, c.Nodes, c.TreeDepth, c.BuildMs, c.PlanMs, c.ReplanMs,
			scan, speedup, c.ReplanAllocs, simSerial, simParallel, simSpeedup,
			domains, c.PeakHeapMB); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the report for plotting.
func (r ScalingReport) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"clients", "nodes", "depth", "build_ms", "plan_ms",
		"replan_ms", "scan_ms", "speedup", "plan_allocs", "replan_allocs",
		"mean_peers", "fast_path", "verified",
		"sim_serial_ms", "sim_parallel_ms", "sim_speedup", "sim_sharded", "sim_digest",
		"sim_domains", "lite_tree", "peak_heap_mb"}); err != nil {
		return err
	}
	for _, c := range r {
		rec := []string{
			strconv.Itoa(c.Clients), strconv.Itoa(c.Nodes),
			strconv.Itoa(int(c.TreeDepth)),
			strconv.FormatFloat(c.BuildMs, 'f', 3, 64),
			strconv.FormatFloat(c.PlanMs, 'f', 3, 64),
			strconv.FormatFloat(c.ReplanMs, 'f', 3, 64),
			strconv.FormatFloat(c.ScanMs, 'f', 3, 64),
			strconv.FormatFloat(c.Speedup, 'f', 2, 64),
			strconv.FormatUint(c.PlanAllocs, 10),
			strconv.FormatUint(c.ReplanAllocs, 10),
			strconv.FormatFloat(c.MeanPeers, 'f', 3, 64),
			strconv.FormatBool(c.FastPath),
			strconv.FormatBool(c.Verified),
			strconv.FormatFloat(c.SimSerialMs, 'f', 3, 64),
			strconv.FormatFloat(c.SimParallelMs, 'f', 3, 64),
			strconv.FormatFloat(c.SimSpeedup, 'f', 2, 64),
			strconv.FormatBool(c.SimSharded),
			c.SimDigest,
			strconv.Itoa(c.SimDomains),
			strconv.FormatBool(c.LiteTree),
			strconv.FormatFloat(c.PeakHeapMB, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
