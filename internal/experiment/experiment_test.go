package experiment

import (
	"bytes"
	"strings"
	"testing"

	"rmcast/internal/topology"
)

func TestNewEngineNames(t *testing.T) {
	for _, name := range append(append([]string{}, PaperProtocols...), AblationProtocols...) {
		e, err := NewEngine(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e == nil {
			t.Fatalf("%s: nil engine", name)
		}
	}
	if _, err := NewEngine("BOGUS"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	for _, proto := range PaperProtocols {
		res, err := Run(RunSpec{
			Routers: 40, Loss: 0.05, Protocol: proto,
			Packets: 30, Interval: 40, TopoSeed: 1, SimSeed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Stats.Losses == 0 || res.Stats.Unrecovered != 0 {
			t.Fatalf("%s: stats %+v", proto, res.Stats)
		}
		if res.AvgLatency() <= 0 || res.BandwidthPerRecovery() <= 0 {
			t.Fatalf("%s: degenerate metrics %v %v", proto,
				res.AvgLatency(), res.BandwidthPerRecovery())
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := RunSpec{Routers: 40, Loss: 0.1, Protocol: "RP",
		Packets: 30, Interval: 40, TopoSeed: 3, SimSeed: 4}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.Hops != b.Hops {
		t.Fatal("identical specs diverged")
	}
}

func TestGroupSizeSweepSmall(t *testing.T) {
	g := GroupSizeSweep{
		Sizes:    []int{30, 60},
		Loss:     0.05,
		Packets:  25,
		Interval: 40,
		BaseSeed: 7,
	}
	lat, bw, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 2 || len(bw.Rows) != 2 {
		t.Fatalf("row counts %d/%d", len(lat.Rows), len(bw.Rows))
	}
	for _, fig := range []*Figure{lat, bw} {
		for _, row := range fig.Rows {
			if row.X <= 0 {
				t.Fatalf("row without client count: %+v", row)
			}
			for _, p := range fig.Protocols {
				if fig.Value(row.Points[p]) <= 0 {
					t.Fatalf("%s %s: zero metric", fig.Name, p)
				}
			}
		}
	}
	// Larger topologies must report more clients.
	if lat.Rows[1].X <= lat.Rows[0].X {
		t.Fatalf("client counts not increasing: %v vs %v", lat.Rows[0].X, lat.Rows[1].X)
	}
}

func TestLossSweepSmall(t *testing.T) {
	l := LossSweep{
		Routers:  40,
		LossPcts: []float64{5, 15},
		Packets:  25,
		Interval: 40,
		BaseSeed: 9,
	}
	lat, bw, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 2 || len(bw.Rows) != 2 {
		t.Fatal("row counts wrong")
	}
	if lat.Rows[0].X != 5 || lat.Rows[1].X != 15 {
		t.Fatal("x values wrong")
	}
}

func TestReplicatesMergeCleanly(t *testing.T) {
	l := LossSweep{
		Routers:    30,
		LossPcts:   []float64{10},
		Packets:    20,
		Interval:   40,
		Replicates: 3,
		BaseSeed:   11,
	}
	lat, _, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := lat.Rows[0].Points["RP"]
	if p.Losses == 0 || p.Latency <= 0 {
		t.Fatalf("merged point degenerate: %+v", p)
	}
}

func TestAblationSweep(t *testing.T) {
	a := AblationSweep{
		Routers:  30,
		LossPcts: []float64{10},
		Packets:  20,
		Interval: 40,
		BaseSeed: 13,
	}
	lat, bw, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range AblationProtocols {
		if lat.Value(lat.Rows[0].Points[proto]) <= 0 {
			t.Fatalf("%s missing from ablation", proto)
		}
	}
	_ = bw
}

func TestFigureFormatAndCSV(t *testing.T) {
	l := LossSweep{
		Routers:  30,
		LossPcts: []float64{10},
		Packets:  15,
		Interval: 40,
		BaseSeed: 15,
	}
	lat, _, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lat.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7", "SRM", "RMA", "RP", "RP vs SRM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := lat.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "per-link loss (%),") {
		t.Fatalf("CSV shape wrong:\n%s", buf.String())
	}
}

func TestPaperDefaults(t *testing.T) {
	g := PaperFigure56()
	if len(g.Sizes) != 7 || g.Sizes[0] != 50 || g.Sizes[6] != 600 || g.Loss != 0.05 {
		t.Fatalf("Figure 5/6 defaults wrong: %+v", g)
	}
	l := PaperFigure78()
	if l.Routers != 500 || len(l.LossPcts) != 10 {
		t.Fatalf("Figure 7/8 defaults wrong: %+v", l)
	}
	a := PaperAblation()
	if a.Routers != 300 {
		t.Fatalf("ablation defaults wrong: %+v", a)
	}
}

// TestHeadlineComparisonSmall is the shape check at test scale: RP must
// beat SRM and RMA on latency, and must not exceed their bandwidth, on a
// mid-size topology at the paper's 5% loss.
func TestHeadlineComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run")
	}
	g := GroupSizeSweep{
		Sizes:    []int{100},
		Loss:     0.05,
		Packets:  60,
		Interval: 50,
		BaseSeed: 17,
	}
	lat, bw, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	row := lat.Rows[0]
	rp := row.Points["RP"].Latency
	srmLat := row.Points["SRM"].Latency
	rmaLat := row.Points["RMA"].Latency
	if rp >= srmLat {
		t.Fatalf("RP latency %.2f not below SRM %.2f", rp, srmLat)
	}
	if rp >= rmaLat {
		t.Fatalf("RP latency %.2f not below RMA %.2f", rp, rmaLat)
	}
	brow := bw.Rows[0]
	if brow.Points["RP"].Bandwidth >= brow.Points["SRM"].Bandwidth {
		t.Fatalf("RP bandwidth %.2f not below SRM %.2f",
			brow.Points["RP"].Bandwidth, brow.Points["SRM"].Bandwidth)
	}
}

func TestRPImprovementHelper(t *testing.T) {
	f := &Figure{
		Metric:    "latency",
		Protocols: []string{"SRM", "RP"},
		Rows: []Row{{
			X: 1,
			Points: map[string]Point{
				"SRM": {Latency: 100},
				"RP":  {Latency: 40},
			},
		}},
	}
	if got := f.RPImprovement("SRM"); got != 0.6 {
		t.Fatalf("improvement %v, want 0.6", got)
	}
	empty := &Figure{Metric: "latency", Protocols: []string{"SRM", "RP"}}
	if empty.RPImprovement("SRM") != 0 {
		t.Fatal("empty figure should give 0")
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := Run(RunSpec{Routers: 1, Loss: 0.05, Protocol: "RP", Packets: 5, Interval: 10}); err == nil {
		t.Fatal("tiny topology accepted")
	}
	if _, err := Run(RunSpec{Routers: 30, Loss: 0.05, Protocol: "NOPE", Packets: 5, Interval: 10}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunWithLinkStateAndTreeKind(t *testing.T) {
	res, err := Run(RunSpec{
		Routers: 40, Loss: 0.05, Protocol: "RP",
		Packets: 20, Interval: 40, TopoSeed: 3, SimSeed: 4,
		LinkState: true, RouteNoise: 0.2, Tree: topology.ShortestPathTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unrecovered != 0 || !res.Complete {
		t.Fatalf("LSR+SPT run failed: %+v", res.Stats)
	}
}

func TestChartRendering(t *testing.T) {
	f := &Figure{
		Name:      "test figure",
		XLabel:    "x",
		YLabel:    "ms",
		Metric:    "latency",
		Protocols: []string{"SRM", "RMA", "RP"},
	}
	for i := 1; i <= 5; i++ {
		f.Rows = append(f.Rows, Row{
			X: float64(i),
			Points: map[string]Point{
				"SRM": {Latency: 100 + float64(i)},
				"RMA": {Latency: 80},
				"RP":  {Latency: 30 - float64(i)},
			},
		})
	}
	var buf bytes.Buffer
	if err := f.Chart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test figure", "S=SRM", "R=RP", "ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Highest-latency protocol's glyph must appear above the lowest's.
	lines := strings.Split(out, "\n")
	firstS, firstR := -1, -1
	for i, l := range lines {
		if firstS < 0 && strings.Contains(l, "S") && strings.Contains(l, "|") {
			firstS = i
		}
		if firstR < 0 && strings.ContainsRune(l, 'R') && strings.Contains(l, "|") {
			firstR = i
		}
	}
	if firstS < 0 || firstR < 0 || firstS >= firstR {
		t.Fatalf("glyph ordering wrong (S at %d, R at %d):\n%s", firstS, firstR, out)
	}
	// Degenerate figures don't crash.
	empty := &Figure{Name: "empty", Protocols: []string{"RP"}}
	if err := empty.Chart(&buf, 5, 2); err != nil {
		t.Fatal(err)
	}
	one := &Figure{Name: "one", Metric: "latency", Protocols: []string{"RP"},
		Rows: []Row{{X: 3, Points: map[string]Point{"RP": {Latency: 5}}}}}
	if err := one.Chart(&buf, 20, 8); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdownAndCI(t *testing.T) {
	l := LossSweep{
		Routers:    30,
		LossPcts:   []float64{10},
		Packets:    15,
		Interval:   40,
		Replicates: 3,
		BaseSeed:   77,
	}
	lat, _, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lat.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| per-link loss (%) |") || !strings.Contains(out, "|---|") {
		t.Fatalf("markdown table malformed:\n%s", out)
	}
	// Three replicates ⇒ confidence intervals present.
	if !strings.Contains(out, "±") {
		t.Fatalf("no CI with 3 replicates:\n%s", out)
	}
	// Single replicate ⇒ no CI.
	l.Replicates = 1
	lat1, _, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := lat1.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "±") {
		t.Fatal("CI printed with one replicate")
	}
}
