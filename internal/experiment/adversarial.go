package experiment

import (
	"fmt"

	"rmcast/internal/fault"
)

// AdversarialProtocols are the engines compared by the adversarial sweep:
// the paper's three plus the source-recovery floor, all carrying the
// hardening layer (dedup caches, monotonic guards, malformed-packet
// rejection) this sweep exists to exercise, and the cooperative coded
// engine, whose symbol plane faces its own mutation class
// (fault.ClassSymbol: flipped indices, truncated payloads).
var AdversarialProtocols = []string{"SRM", "RMA", "RP", "SRC", "COOP"}

// MutationSweep is the adversarial robustness evaluation: one fixed topology
// driven through rising message-plane mutation intensity — control-packet
// duplication, reorder jitter, header corruption, and repair-storm
// amplification scaling together (see fault.MutationFromIntensity) — on top
// of a flat base loss, comparing the hardened engines on delivery ratio,
// mean and p99 recovery latency, and recovery bandwidth.
//
// Intensity 0 maps to a nil mutation config, which Run does not install at
// all, so the zero row reproduces the equivalent mutation-free cells
// byte-for-byte. Every cell is independently seeded, so any Parallel value
// yields bit-identical figures. The runtime invariant oracle (internal/check)
// runs strict in every cell: a mutation that tricked an engine into double
// counting, repairing a never-sent packet, or abandoning a gap fails the
// sweep instead of skewing its figures.
type MutationSweep struct {
	// Routers is the fixed backbone size.
	Routers int
	// Intensities are the mutation levels in [0, 1]; see
	// fault.MutationFromIntensity for how a level maps to duplication,
	// reorder, corruption, and storm parameters.
	Intensities []float64
	// BaseLoss is the flat per-link loss probability every cell keeps (the
	// mutator attacks the recovery traffic this loss provokes).
	BaseLoss float64
	// Protocols to compare; nil means AdversarialProtocols.
	Protocols []string
	Packets   int
	Interval  float64
	// Replicates averages this many traffic seeds per cell.
	Replicates int
	BaseSeed   uint64
	// Parallel is the worker count for the sweep grid; <= 1 runs the serial
	// loop (see parallel.go).
	Parallel int
}

// DefaultAdversarial returns the adversarial sweep used by EXPERIMENTS.md:
// n=100, intensity 0…1, 5% base loss.
func DefaultAdversarial() MutationSweep {
	return MutationSweep{
		Routers:     100,
		Intensities: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		BaseLoss:    0.05,
		Packets:     100,
		Interval:    50,
		Replicates:  1,
		BaseSeed:    2003,
	}
}

// Run executes the sweep and returns the four adversarial figures.
func (m MutationSweep) Run() (delivery, latency, p99, bandwidth *Figure, err error) {
	protocols := m.Protocols
	if protocols == nil {
		protocols = AdversarialProtocols
	}
	reps := m.Replicates
	if reps < 1 {
		reps = 1
	}
	span := float64(m.Packets) * m.Interval
	specs := make([]RunSpec, 0, len(m.Intensities)*len(protocols)*reps)
	for ii, intensity := range m.Intensities {
		// One shared config per intensity: MutationConfig is read-only
		// after construction (the mutator clamps into a private copy), so
		// parallel cells can alias it safely.
		mut := fault.MutationFromIntensity(intensity, span)
		for _, proto := range protocols {
			for rep := 0; rep < reps; rep++ {
				specs = append(specs, RunSpec{
					Routers:  m.Routers,
					Loss:     m.BaseLoss,
					Protocol: proto,
					Packets:  m.Packets,
					Interval: m.Interval,
					// One fixed topology for the whole sweep; traffic seeds
					// vary per (intensity, replicate) so every protocol
					// faces the same stream fates within a cell.
					TopoSeed: m.BaseSeed,
					SimSeed:  m.BaseSeed + uint64(ii)*100 + uint64(rep) + 1,
					Mutation: mut,
				})
			}
		}
	}
	results, failed, rerr := runCells(specs, m.Parallel)
	if rerr != nil {
		ii := failed / (len(protocols) * reps)
		pi := failed / reps % len(protocols)
		return nil, nil, nil, nil, fmt.Errorf("intensity %g %s rep %d: %w",
			m.Intensities[ii], protocols[pi], failed%reps, rerr)
	}
	var rows []Row
	idx := 0
	for _, intensity := range m.Intensities {
		row := Row{X: intensity, Label: fmt.Sprintf("mut=%g", intensity), Points: map[string]Point{}}
		for _, proto := range protocols {
			var agg Point
			for rep := 0; rep < reps; rep++ {
				p := cellPoint(results[idx])
				idx++
				if rep == 0 {
					agg = p
				} else {
					agg.merge(p)
				}
			}
			row.Points[proto] = agg
		}
		rows = append(rows, row)
	}
	mk := func(name, ylabel, metric string) *Figure {
		return &Figure{
			Name:      name,
			XLabel:    "mutation intensity",
			YLabel:    ylabel,
			Metric:    metric,
			Protocols: protocols,
			Rows:      rows,
		}
	}
	delivery = mk("Adversarial: delivery ratio vs mutation intensity", "delivered fraction", "delivery")
	latency = mk("Adversarial: mean recovery latency vs mutation intensity", "latency (ms)", "latency")
	p99 = mk("Adversarial: p99 recovery latency vs mutation intensity", "latency (ms)", "p99")
	bandwidth = mk("Adversarial: recovery bandwidth vs mutation intensity", "bandwidth (hops)", "bandwidth")
	return delivery, latency, p99, bandwidth, nil
}
