package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII line chart — enough to eyeball the
// paper's curve shapes (orderings, crossovers, trends) straight from a
// terminal, without a plotting stack. Each protocol gets a glyph; collisions
// show the later protocol's glyph.
func (f *Figure) Chart(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	if len(f.Rows) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", f.Name)
		return err
	}
	glyphs := []byte{'S', 'M', 'R', 'a', 'b', 'c', 'd', 'e', 'f'}

	// Value range across all protocols.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range f.Rows {
		for _, p := range f.Protocols {
			v := f.Value(row.Points[p])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo -= pad
	hi += pad

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xpos := func(i int) int {
		if len(f.Rows) == 1 {
			return width / 2
		}
		return i * (width - 1) / (len(f.Rows) - 1)
	}
	ypos := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		row := int(math.Round(float64(height-1) * (1 - frac)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for pi, p := range f.Protocols {
		g := glyphs[pi%len(glyphs)]
		for i, row := range f.Rows {
			grid[ypos(f.Value(row.Points[p]))][xpos(i)] = g
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", f.Name); err != nil {
		return err
	}
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", lo)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "         %-*g%*g  (%s)\n",
		width/2, f.Rows[0].X, width-width/2-1, f.Rows[len(f.Rows)-1].X, f.XLabel); err != nil {
		return err
	}
	var legend []string
	for pi, p := range f.Protocols {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[pi%len(glyphs)], p))
	}
	_, err := fmt.Fprintf(w, "        %s, y: %s\n", strings.Join(legend, " "), f.YLabel)
	return err
}
