package experiment

// Golden-digest determinism gate for the zero-allocation event core: every
// refactor of internal/sim must leave fixed-seed runs byte-identical. The
// digests below were captured from the pre-refactor engine (container/heap +
// closure events); the typed 4-ary heap, pooled hop walkers, and pooled
// timers must reproduce them exactly, because the (at, seq) total order —
// and therefore every rng draw and every counter — is unchanged.
//
// If a digest diverges, the event core changed observable behaviour. Do not
// re-capture these values without first explaining *why* the firing order
// moved.

import (
	"testing"

	"rmcast/internal/protocol"
	"rmcast/internal/topology"
)

// digestResult is ResultDigest (digest.go), kept under its historical test-
// local name.
func digestResult(res *protocol.Result) string { return ResultDigest(res) }

// goldenDigests: captured on the pre-refactor event core (see file comment).
// Key: protocol name + config variant.
var goldenDigests = map[string]string{
	"SRM/plain":  "9fef9d0fc6b705e9",
	"RMA/plain":  "d0bdb5371b28be14",
	"RP/plain":   "c2ae2b1a7163e4c8",
	"SRC/plain":  "c8bf39c33a2c204a",
	"SRM/queued": "b504924ee981daac",
	"RMA/queued": "43688f6583dc842b",
	"RP/queued":  "261c2b4e6e6df5ff",
	"SRC/queued": "4fb96363e2242379",
	// COOP captured at its introduction (coded cooperative repair PR);
	// its digest additionally folds in the coded-symbol counters.
	"COOP/plain":  "63e9bc316603b8a3",
	"COOP/queued": "7f8dadacb29b4731",
}

// TestGoldenDigests runs the four engines under the paper's plain model and
// under the store-and-forward queueing model (which exercises the queued
// hop-walker paths) and asserts the results are byte-identical to the
// pre-refactor captures.
func TestGoldenDigests(t *testing.T) {
	for _, proto := range []string{"SRM", "RMA", "RP", "SRC", "COOP"} {
		for _, variant := range []string{"plain", "queued"} {
			key := proto + "/" + variant
			t.Run(key, func(t *testing.T) {
				res := goldenRun(t, proto, variant == "queued")
				got := digestResult(res)
				want := goldenDigests[key]
				if got != want {
					t.Errorf("digest %s = %s, want %s (fixed-seed output diverged from the pre-refactor event core)",
						key, got, want)
				}
			})
		}
	}
}

// goldenRun executes one fixed-seed run: the Figure-5 n=50 cell, either
// plain (precomputed-path delivery) or with the congestion model on (queued
// hop-by-hop walkers). The queued variant needs detection headroom for
// queueing delay, exactly as BenchmarkCongestion does.
func goldenRun(t *testing.T, proto string, queued bool) *protocol.Result {
	t.Helper()
	topo, err := topology.Standard(50, 0.05, 2053)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(proto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocol.Config{Packets: 40, Interval: 50}
	if queued {
		cfg.PacketTime = 0.2
		cfg.DetectLag = 4
	}
	s, err := protocol.NewSession(topo, eng, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Complete || res.Stats.Unrecovered > 0 {
		t.Fatalf("%s queued=%v: incomplete run (unrecovered=%d complete=%v)",
			proto, queued, res.Stats.Unrecovered, res.Complete)
	}
	return res
}
