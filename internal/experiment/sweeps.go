package experiment

import (
	"fmt"
)

// GroupSizeSweep reproduces Figures 5 and 6: the three protocols across
// growing network sizes at fixed loss.
type GroupSizeSweep struct {
	// Sizes are the backbone router counts (the paper: 50…600).
	Sizes []int
	// Loss is the per-link loss probability (the paper: 5%).
	Loss float64
	// Protocols to compare; nil means PaperProtocols.
	Protocols []string
	// Packets, Interval configure each run's data stream.
	Packets  int
	Interval float64
	// Replicates averages this many traffic seeds per cell (topology held
	// fixed per size, as in the paper). Minimum 1.
	Replicates int
	// BaseSeed derives all topology and traffic seeds.
	BaseSeed uint64
	// Parallel is the worker count for the sweep grid; <= 1 runs the legacy
	// serial loop. Any value produces bit-identical figures (every cell is
	// independently seeded); see parallel.go.
	Parallel int
}

// PaperFigure56 returns the sweep matching the paper's §5.2 setup:
// n ∈ {50,100,200,300,400,500,600}, p = 5%.
func PaperFigure56() GroupSizeSweep {
	return GroupSizeSweep{
		Sizes:      []int{50, 100, 200, 300, 400, 500, 600},
		Loss:       0.05,
		Packets:    100,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
}

// Run executes the sweep and returns the latency figure (Figure 5) and the
// bandwidth figure (Figure 6).
func (g GroupSizeSweep) Run() (latency, bandwidth *Figure, err error) {
	protocols := g.Protocols
	if protocols == nil {
		protocols = PaperProtocols
	}
	reps := g.Replicates
	if reps < 1 {
		reps = 1
	}
	// Lay out the cell grid in the serial iteration order (size, protocol,
	// replicate); each cell's seeds depend only on its grid position, so
	// execution order cannot perturb them.
	specs := make([]RunSpec, 0, len(g.Sizes)*len(protocols)*reps)
	for si, size := range g.Sizes {
		topoSeed := g.BaseSeed + uint64(si)*1000
		for _, proto := range protocols {
			for rep := 0; rep < reps; rep++ {
				specs = append(specs, RunSpec{
					Routers:  size,
					Loss:     g.Loss,
					Protocol: proto,
					Packets:  g.Packets,
					Interval: g.Interval,
					TopoSeed: topoSeed,
					SimSeed:  g.BaseSeed + uint64(si)*1000 + uint64(rep) + 1,
				})
			}
		}
	}
	results, failed, rerr := runCells(specs, g.Parallel)
	if rerr != nil {
		si := failed / (len(protocols) * reps)
		pi := failed / reps % len(protocols)
		return nil, nil, fmt.Errorf("size %d %s rep %d: %w",
			g.Sizes[si], protocols[pi], failed%reps, rerr)
	}
	var rows []Row
	idx := 0
	for range g.Sizes {
		row := Row{X: 0, Label: fmt.Sprintf("n=%d", specs[idx].Routers), Points: map[string]Point{}}
		for _, proto := range protocols {
			var agg Point
			for rep := 0; rep < reps; rep++ {
				p := cellPoint(results[idx])
				idx++
				if rep == 0 {
					agg = p
				} else {
					agg.merge(p)
				}
			}
			row.Points[proto] = agg
			row.X = float64(agg.Clients)
		}
		rows = append(rows, row)
	}
	latency = &Figure{
		Name:      "Figure 5: average recovery latency per packet recovered",
		XLabel:    "clients",
		YLabel:    "latency (ms)",
		Metric:    "latency",
		Protocols: protocols,
		Rows:      rows,
	}
	bandwidth = &Figure{
		Name:      "Figure 6: average bandwidth usage per packet recovered",
		XLabel:    "clients",
		YLabel:    "bandwidth (hops)",
		Metric:    "bandwidth",
		Protocols: protocols,
		Rows:      rows,
	}
	return latency, bandwidth, nil
}

// LossSweep reproduces Figures 7 and 8: a fixed topology across loss rates.
type LossSweep struct {
	// Routers is the fixed backbone size (the paper: 500).
	Routers int
	// LossPcts are the per-link loss probabilities in percent
	// (the paper: 2,4,…,20).
	LossPcts []float64
	// Protocols to compare; nil means PaperProtocols.
	Protocols []string
	Packets   int
	Interval  float64
	// Replicates averages this many traffic seeds per cell.
	Replicates int
	BaseSeed   uint64
	// Parallel is the worker count for the sweep grid; <= 1 runs the legacy
	// serial loop (see parallel.go).
	Parallel int
}

// PaperFigure78 returns the sweep matching the paper's setup: n=500,
// p ∈ {2,4,…,20}%.
func PaperFigure78() LossSweep {
	return LossSweep{
		Routers:    500,
		LossPcts:   []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		Packets:    100,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
}

// Run executes the sweep and returns the latency figure (Figure 7) and the
// bandwidth figure (Figure 8).
func (l LossSweep) Run() (latency, bandwidth *Figure, err error) {
	protocols := l.Protocols
	if protocols == nil {
		protocols = PaperProtocols
	}
	reps := l.Replicates
	if reps < 1 {
		reps = 1
	}
	specs := make([]RunSpec, 0, len(l.LossPcts)*len(protocols)*reps)
	for li, pct := range l.LossPcts {
		for _, proto := range protocols {
			for rep := 0; rep < reps; rep++ {
				specs = append(specs, RunSpec{
					Routers:  l.Routers,
					Loss:     pct / 100,
					Protocol: proto,
					Packets:  l.Packets,
					Interval: l.Interval,
					// One fixed topology for the whole sweep (the paper
					// reports n=500 generating k=208 clients once).
					TopoSeed: l.BaseSeed,
					SimSeed:  l.BaseSeed + uint64(li)*100 + uint64(rep) + 1,
				})
			}
		}
	}
	results, failed, rerr := runCells(specs, l.Parallel)
	if rerr != nil {
		li := failed / (len(protocols) * reps)
		pi := failed / reps % len(protocols)
		return nil, nil, fmt.Errorf("p=%g%% %s rep %d: %w",
			l.LossPcts[li], protocols[pi], failed%reps, rerr)
	}
	var rows []Row
	idx := 0
	for _, pct := range l.LossPcts {
		row := Row{X: pct, Label: fmt.Sprintf("p=%g%%", pct), Points: map[string]Point{}}
		for _, proto := range protocols {
			var agg Point
			for rep := 0; rep < reps; rep++ {
				p := cellPoint(results[idx])
				idx++
				if rep == 0 {
					agg = p
				} else {
					agg.merge(p)
				}
			}
			row.Points[proto] = agg
		}
		rows = append(rows, row)
	}
	latency = &Figure{
		Name:      "Figure 7: average delay per packet recovered vs loss",
		XLabel:    "per-link loss (%)",
		YLabel:    "latency (ms)",
		Metric:    "latency",
		Protocols: protocols,
		Rows:      rows,
	}
	bandwidth = &Figure{
		Name:      "Figure 8: average bandwidth usage per packet recovered vs loss",
		XLabel:    "per-link loss (%)",
		YLabel:    "bandwidth (hops)",
		Metric:    "bandwidth",
		Protocols: protocols,
		Rows:      rows,
	}
	return latency, bandwidth, nil
}

// AblationSweep compares RP variants (and the source floor) on one
// topology/loss setting — DESIGN.md experiment E7.
type AblationSweep struct {
	Routers    int
	LossPcts   []float64
	Packets    int
	Interval   float64
	Replicates int
	BaseSeed   uint64
	// Parallel is the worker count for the sweep grid (see parallel.go).
	Parallel int
}

// PaperAblation returns the default ablation: n=300, p ∈ {5, 15}%.
func PaperAblation() AblationSweep {
	return AblationSweep{
		Routers:    300,
		LossPcts:   []float64{5, 15},
		Packets:    100,
		Interval:   50,
		Replicates: 1,
		BaseSeed:   2003,
	}
}

// Run executes the ablation and returns latency and bandwidth figures over
// the RP variants.
func (a AblationSweep) Run() (latency, bandwidth *Figure, err error) {
	ls := LossSweep{
		Routers:    a.Routers,
		LossPcts:   a.LossPcts,
		Protocols:  AblationProtocols,
		Packets:    a.Packets,
		Interval:   a.Interval,
		Replicates: a.Replicates,
		BaseSeed:   a.BaseSeed,
		Parallel:   a.Parallel,
	}
	latency, bandwidth, err = ls.Run()
	if err != nil {
		return nil, nil, err
	}
	latency.Name = "Ablation: RP variants, latency"
	bandwidth.Name = "Ablation: RP variants, bandwidth"
	return latency, bandwidth, nil
}
