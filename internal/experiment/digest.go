package experiment

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"rmcast/internal/graph"
	"rmcast/internal/protocol"
)

// ResultDigest folds every observable field of a run result into one FNV-1a
// hash. Floats are formatted with strconv's shortest round-trip form, so two
// digests match iff every float is bit-identical. The golden-digest tests
// gate the event core on it, and the scaling sweep uses it to assert that a
// parallel (sharded) run reproduces its serial twin exactly.
func ResultDigest(res *protocol.Result) string {
	h := fnv.New64a()
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	fmt.Fprintf(h, "proto=%s clients=%d packets=%d events=%d simtime=%s\n",
		res.Protocol, res.Clients, res.Packets, res.Events, f(res.SimTime))
	s := res.Stats
	fmt.Fprintf(h, "losses=%d rec=%d unrec=%d dup=%d predet=%d data=%d late=%d crashed=%d delivered=%d malformed=%d\n",
		s.Losses, s.Recoveries, s.Unrecovered, s.Duplicates, s.PreDetection,
		s.DataDeliveries, s.LateData, s.UnrecoveredCrashed, s.Delivered, s.Malformed)
	if s.CodedSymbols != 0 || s.CodedDuplicates != 0 {
		// Coded-recovery runs only: the line is conditional so the digests
		// of the four per-seq engines — pinned before coded recovery
		// existed — stay byte-identical.
		fmt.Fprintf(h, "coded=%d codeddup=%d\n", s.CodedSymbols, s.CodedDuplicates)
	}
	if s.Failovers != 0 || s.FencedStale != 0 {
		// Failover runs only — conditional for the same reason as the coded
		// line: legacy digests predate the failover counters.
		fmt.Fprintf(h, "failovers=%d fenced=%d\n", s.Failovers, s.FencedStale)
	}
	fmt.Fprintf(h, "lat n=%d mean=%s var=%s min=%s max=%s\n",
		s.Latency.Count(), f(s.Latency.Mean()), f(s.Latency.Variance()),
		f(s.Latency.Min()), f(s.Latency.Max()))
	fmt.Fprintf(h, "hops=%d,%d,%d drops=%d,%d,%d\n",
		res.Hops.Data, res.Hops.Request, res.Hops.Repair,
		res.Drops.Data, res.Drops.Request, res.Drops.Repair)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		fmt.Fprintf(h, "q%s=%s\n", f(q), f(res.LatencyQuantile(q)))
	}
	nodes := make([]int, 0, len(res.PerClientLatency))
	for n := range res.PerClientLatency {
		nodes = append(nodes, int(n))
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		sum := res.PerClientLatency[graph.NodeID(n)]
		fmt.Fprintf(h, "c%d n=%d mean=%s min=%s max=%s\n",
			n, sum.Count(), f(sum.Mean()), f(sum.Min()), f(sum.Max()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
