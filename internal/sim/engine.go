// Package sim provides the discrete-event packet-level simulator of §5.1:
// a deterministic event engine plus a simulated network layer that forwards
// unicast packets along minimum-delay paths and multicast packets along the
// multicast tree, applying independent per-link Bernoulli loss and fixed
// per-link delay.
//
// Per the paper, "unlike a real network, the link delay and loss properties
// are independent of the number of packets traversing the link" — there is
// deliberately no queueing or congestion model, which (as the paper notes)
// biases in favour of the chattier protocols SRM and RMA, making RP's
// measured advantage conservative.
//
// Determinism: all randomness flows through one rng.Rand owned by the
// caller, and simultaneous events fire in schedule order (a monotone
// sequence number breaks time ties), so a run is a pure function of its
// seed and configuration.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event scheduler. Times are float64 milliseconds.
type Engine struct {
	now float64
	seq uint64
	pq  eventHeap
	// processed counts executed events, for loop detection in tests and
	// run-away guards in the harness.
	processed uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewEngine returns an engine at time 0 with an empty calendar.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time (ms).
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.pq.Len() }

// Schedule runs fn at absolute time at. Scheduling in the past or at a
// non-finite time panics: it is always a protocol bug.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now || math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at %v with now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d milliseconds from now.
func (e *Engine) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

// Step executes the next event, returning false when the calendar is empty.
func (e *Engine) Step() bool {
	if e.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the calendar is empty or maxEvents have fired
// (0 means unlimited). It returns the number of events executed.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil executes events with timestamps ≤ t and then advances the clock
// to t (if the calendar ran dry earlier).
func (e *Engine) RunUntil(t float64) {
	for e.pq.Len() > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
	fired   bool
}

// NewTimer schedules fn after d ms and returns a handle that can Stop it.
func (e *Engine) NewTimer(d float64, fn func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Stop cancels the timer if it has not fired; it reports whether the call
// prevented the callback.
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }
