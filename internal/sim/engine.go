// Package sim provides the discrete-event packet-level simulator of §5.1:
// a deterministic event engine plus a simulated network layer that forwards
// unicast packets along minimum-delay paths and multicast packets along the
// multicast tree, applying independent per-link Bernoulli loss and fixed
// per-link delay.
//
// Per the paper, "unlike a real network, the link delay and loss properties
// are independent of the number of packets traversing the link" — there is
// deliberately no queueing or congestion model, which (as the paper notes)
// biases in favour of the chattier protocols SRM and RMA, making RP's
// measured advantage conservative.
//
// Determinism: all randomness flows through one rng.Rand owned by the
// caller, and simultaneous events fire in schedule order (a monotone
// sequence number breaks time ties), so a run is a pure function of its
// seed and configuration.
//
// The event core is allocation-free in steady state: the calendar is a
// hand-rolled 4-ary min-heap over typed event structs (no container/heap
// interface boxing), hop-by-hop forwarding uses pooled walker events
// instead of per-hop closures, and cancellable timers live in recycled
// engine-owned slots. The (at, seq) total order — and with it the firing
// order of every fixed-seed run — is identical to the original binary-heap
// implementation, because the comparator induces a strict total order that
// no heap arity can perturb.
//
// The calendar entries themselves are pointer-free: closure, callee, and
// walker payloads park in recycled side arenas and events carry int32 slot
// references. Sifting events through the heap is then a plain memmove — no
// write barriers — and the garbage collector never scans the calendar.
package sim

import (
	"fmt"
	"math"
)

// Engine is a discrete-event scheduler. Times are float64 milliseconds.
type Engine struct {
	now float64
	seq uint64
	pq  []event
	// processed counts executed events, for loop detection in tests and
	// run-away guards in the harness. Run derives its per-call count from
	// this same counter, so the two can never drift.
	processed uint64

	// freeW is the walker free list: hop-walker events recycle through it
	// instead of churning the garbage collector (see walker.go).
	freeW *walker

	// timers is the pooled timer arena; timerFree lists recyclable slots.
	// A slot is released when its calendar event pops (fired or stopped),
	// and generation counters keep stale Timer handles inert.
	timers    []timerSlot
	timerFree []int32

	// Payload arenas: the pointer-bearing halves of scheduled events, so
	// the calendar array itself stays pointer-free. A slot lives exactly
	// from push to pop.
	fns   arena[func()]
	calls arena[Callee]
	walks arena[*walker]
}

// arena is a recycled slot store: put parks a value and returns its slot,
// take retrieves it and frees the slot. Steady state allocates nothing.
type arena[T any] struct {
	slots []T
	free  []int32
}

func (a *arena[T]) put(v T) int32 {
	if n := len(a.free); n > 0 {
		i := a.free[n-1]
		a.free = a.free[:n-1]
		a.slots[i] = v
		return i
	}
	a.slots = append(a.slots, v)
	return int32(len(a.slots) - 1)
}

func (a *arena[T]) take(i int32) T {
	v := a.slots[i]
	var zero T
	a.slots[i] = zero
	a.free = append(a.free, i)
	return v
}

// evKind tags the event union dispatched by Step.
type evKind uint8

const (
	// evFunc runs an arbitrary closure — the general-purpose event.
	evFunc evKind = iota
	// evCall invokes a Callee with (op, a, b) — a closure-free callback
	// for hot paths that would otherwise allocate one closure per packet.
	evCall
	// evTimer fires the pooled timer in slot a if generation b still
	// matches (see Timer).
	evTimer
	// evWalker advances a pooled hop walker (see walker.go).
	evWalker
)

// event is one calendar entry: ordering key plus a small tagged union.
// The struct is deliberately pointer-free (32 bytes): payloads that carry
// pointers live in the engine's arenas, referenced by ref, so heap sifts
// are barrier-free memmoves and the calendar is invisible to the garbage
// collector. Only the fields selected by kind are meaningful.
type event struct {
	at   float64
	seq  uint64
	a, b int32 // evCall arguments; evTimer slot and generation
	ref  int32 // arena slot for evFunc / evCall / evWalker payloads
	kind evKind
	op   uint8 // evCall opcode
}

// Callee receives typed callback events scheduled with ScheduleCall: a
// single dispatch method with an opcode and two small integer arguments —
// enough for (client index, sequence) style callbacks without allocating a
// closure per event.
type Callee interface {
	OnSimEvent(op, a, b int)
}

// evLess is the strict total order (at, then schedule seq) shared by every
// heap operation. seq is unique, so ties cannot exist and firing order is
// independent of heap shape.
func evLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// NewEngine returns an engine at time 0 with an empty calendar.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time (ms).
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.pq) }

// Reserve grows the calendar's backing array to hold at least n pending
// events without regrowth. The hierarchical tier calls it once per domain
// engine — each domain's steady-state event population is predictable
// (its clients' detect timers plus in-flight deliveries), so one up-front
// allocation replaces the doubling cascade on every shard.
func (e *Engine) Reserve(n int) {
	if cap(e.pq) < n {
		pq := make([]event, len(e.pq), n)
		copy(pq, e.pq)
		e.pq = pq
	}
}

// push validates the timestamp, stamps the tie-break sequence, and sifts
// the event into the 4-ary heap. Steady state (backing array at capacity)
// allocates nothing.
func (e *Engine) push(at float64, ev event) {
	if at < e.now || math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at %v with now %v", at, e.now))
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	e.pq = append(e.pq, ev)
	// Sift up: move the hole toward the root until the parent fits.
	i := len(e.pq) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&ev, &e.pq[p]) {
			break
		}
		e.pq[i] = e.pq[p]
		i = p
	}
	e.pq[i] = ev
}

// popMin removes and returns the earliest event. Events are pointer-free,
// so the vacated tail slot needs no zeroing — it cannot retain anything.
func (e *Engine) popMin() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	last := e.pq[n]
	e.pq = e.pq[:n]
	if n == 0 {
		return top
	}
	// Sift down: move the hole toward the leaves, pulling up the smallest
	// of up to four children, until last fits.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if evLess(&e.pq[k], &e.pq[m]) {
				m = k
			}
		}
		if !evLess(&e.pq[m], &last) {
			break
		}
		e.pq[i] = e.pq[m]
		i = m
	}
	e.pq[i] = last
	return top
}

// Schedule runs fn at absolute time at. Scheduling in the past or at a
// non-finite time panics: it is always a protocol bug.
func (e *Engine) Schedule(at float64, fn func()) {
	e.push(at, event{kind: evFunc, ref: e.fns.put(fn)})
}

// After runs fn d milliseconds from now.
func (e *Engine) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

// ScheduleCall runs c.OnSimEvent(op, a, b) at absolute time at, without
// allocating: the opcode and arguments ride inside the typed event. op must
// fit in a uint8 and a, b in int32 — ample for the client-index and
// sequence-number callbacks the protocol layer schedules per packet.
func (e *Engine) ScheduleCall(at float64, c Callee, op, a, b int) {
	e.push(at, event{kind: evCall, ref: e.calls.put(c),
		op: uint8(op), a: int32(a), b: int32(b)})
}

// Step executes the next event, returning false when the calendar is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	e.processed++
	switch ev.kind {
	case evFunc:
		e.fns.take(ev.ref)()
	case evCall:
		e.calls.take(ev.ref).OnSimEvent(int(ev.op), int(ev.a), int(ev.b))
	case evTimer:
		e.fireTimer(ev.a, uint32(ev.b))
	case evWalker:
		e.walks.take(ev.ref).run()
	}
	return true
}

// Run executes events until the calendar is empty or maxEvents have fired
// (0 means unlimited). It returns the number of events executed, counted on
// the same processed counter Processed reports.
func (e *Engine) Run(maxEvents uint64) uint64 {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			break
		}
	}
	return e.processed - start
}

// RunUntil executes events with timestamps ≤ t and then advances the clock
// to t (if the calendar ran dry earlier).
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunBefore executes events with timestamps strictly below t and returns how
// many fired. Unlike RunUntil the clock is left at the last executed event,
// not advanced to t: the conservative parallel runner calls this per window,
// and a shard must still accept remote deliveries stamped between its last
// local event and the horizon.
func (e *Engine) RunBefore(t float64) uint64 {
	start := e.processed
	for len(e.pq) > 0 && e.pq[0].at < t {
		e.Step()
	}
	return e.processed - start
}

// NextEventAt returns the timestamp of the earliest pending event; ok is
// false when the calendar is empty.
func (e *Engine) NextEventAt() (at float64, ok bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// Timer slot states. A slot is freed (pushed on timerFree) when its
// calendar event pops; until the slot is re-armed, stale handles still read
// their fired/stopped outcome; after re-arming, the bumped generation makes
// them fully inert.
const (
	slotArmed uint8 = iota + 1
	slotStopped
	slotFired
)

// timerSlot is the engine-owned, recycled representation of one timer.
type timerSlot struct {
	gen   uint32
	state uint8
	fn    func()
}

// Timer is a cancellable scheduled callback: a generation-stamped handle
// into the engine's pooled timer arena. The zero Timer is valid and inert —
// Stop and Fired return false. Handles are values; copy them freely.
type Timer struct {
	e   *Engine
	idx int32
	gen uint32
}

// NewTimer schedules fn after d ms and returns a handle that can Stop it.
// The timer's state lives in a recycled engine slot, so arming a timer
// allocates nothing beyond the caller's own callback closure.
func (e *Engine) NewTimer(d float64, fn func()) Timer {
	var idx int32
	if n := len(e.timerFree); n > 0 {
		idx = e.timerFree[n-1]
		e.timerFree = e.timerFree[:n-1]
	} else {
		e.timers = append(e.timers, timerSlot{})
		idx = int32(len(e.timers) - 1)
	}
	sl := &e.timers[idx]
	sl.gen++
	sl.state = slotArmed
	sl.fn = fn
	e.push(e.now+d, event{kind: evTimer, a: idx, b: int32(sl.gen)})
	return Timer{e: e, idx: idx, gen: sl.gen}
}

// fireTimer pops one timer event: run the callback if the slot is still
// armed under the event's generation, then recycle the slot. A mismatched
// generation means the slot was stopped and already re-armed for a newer
// timer — the stale event is a no-op.
func (e *Engine) fireTimer(idx int32, gen uint32) {
	sl := &e.timers[idx]
	if sl.gen != gen {
		return
	}
	fn := sl.fn
	fired := sl.state == slotArmed
	if fired {
		sl.state = slotFired
	}
	sl.fn = nil
	e.timerFree = append(e.timerFree, idx)
	if fired {
		fn()
	}
}

// Valid reports whether the handle refers to a timer at all (false for the
// zero Timer) — callers that park entries with a placeholder handle use it
// to tell "armed once" from "never armed".
func (t Timer) Valid() bool { return t.e != nil }

// Stop cancels the timer if it has not fired; it reports whether the call
// prevented the callback. Stopping a stale handle (one whose slot has been
// recycled for a newer timer) is a safe no-op.
func (t Timer) Stop() bool {
	if t.e == nil || int(t.idx) >= len(t.e.timers) {
		return false
	}
	sl := &t.e.timers[t.idx]
	if sl.gen != t.gen || sl.state != slotArmed {
		return false
	}
	sl.state = slotStopped
	sl.fn = nil
	return true
}

// Fired reports whether the callback ran. Once the slot is recycled for a
// newer timer the handle reads false; engines only consult Fired between
// arming and the next re-arm, where the answer is exact.
func (t Timer) Fired() bool {
	if t.e == nil || int(t.idx) >= len(t.e.timers) {
		return false
	}
	sl := &t.e.timers[t.idx]
	return sl.gen == t.gen && sl.state == slotFired
}
