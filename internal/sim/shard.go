package sim

import (
	"rmcast/internal/fault"
	"rmcast/internal/graph"
)

// RemoteDelivery is one packet delivery bound for a host owned by another
// shard of a partitioned run. The sending shard computes the arrival time
// (the whole path walk executes on its own engine) and parks the delivery in
// its outbox; the coordinator hands it to the owning shard at the next
// window boundary. At is always at least the sending event's time plus the
// partition lookahead — every cross-shard path crosses at least one cut
// link — which is what makes the window protocol conservative.
type RemoteDelivery struct {
	At   float64
	Node graph.NodeID
	Dst  int32
	Pkt  Packet
}

// EnableShard puts the net into sharded mode: this net simulates shard id of
// the partition described by shardOf, and hosts marks every node (across all
// shards) that has a handler somewhere. shardOf and hosts are shared
// read-only across shards. Handler storage switches to a sparse map — a
// shard owns only its own band's hosts, so a dense per-node table per shard
// would cost K·n slots. Call before registering handlers.
func (n *Net) EnableShard(id int32, shardOf []int32, hosts []bool) {
	n.shardID = id
	n.shardOf = shardOf
	n.hostsShared = hosts
	if n.handlers != nil {
		panic("sim: EnableShard after SetHandler")
	}
	n.hmap = make(map[graph.NodeID]Handler)
}

// Outbox returns the cross-shard deliveries accumulated since the last
// ResetOutbox, in production order.
func (n *Net) Outbox() []RemoteDelivery { return n.outbox }

// ResetOutbox clears the outbox, keeping its capacity.
func (n *Net) ResetOutbox() { n.outbox = n.outbox[:0] }

// InjectRemote schedules a delivery computed by another shard. The crash
// check already ran on the sending shard (against the shared fault state, so
// the answer is identical), leaving only the handler upcall.
func (n *Net) InjectRemote(at float64, node graph.NodeID, pkt Packet) {
	w := n.Eng.getWalker()
	w.op, w.n, w.pkt, w.node = wDeliver, n, pkt, node
	n.Eng.scheduleWalker(at, w)
}

// hasHost reports whether node hosts a handler anywhere in the run — the
// delivery condition of the flood walks. Serial nets answer from their own
// handler table; sharded nets consult the shared host set, so a flood
// executing on one shard still produces deliveries for hosts owned by
// another (deliverAt then routes them through the outbox).
func (n *Net) hasHost(node graph.NodeID) bool {
	if n.shardOf != nil {
		return n.hostsShared[node]
	}
	return n.handlerOf(node) != nil
}

// InstallFaultShared attaches a fault state shared by every shard of a
// partitioned run. The state's window lookups are pure, so sharing is safe;
// each shard schedules the crash/recover transition events only for hosts it
// owns, so across shards every hook fires exactly once, at the same instants
// as a serial run.
func (n *Net) InstallFaultShared(st *fault.State) {
	n.Fault = st
	n.mut = st.Mutator()
	for _, e := range st.HostEvents() {
		if n.shardOf[e.Node] != n.shardID {
			continue
		}
		n.scheduleHostEvent(e)
	}
}
