package sim

import "rmcast/internal/graph"

// Hop walkers: pooled, typed replacements for the per-hop closures the
// network layer used to schedule. Every delivery and every queued-model hop
// is one walker event; walkers recycle through an engine-owned free list,
// so forwarding a packet allocates nothing in steady state.
//
// Determinism: each walker replaces exactly one closure of the original
// implementation — the schedule calls happen in the same order, at the same
// times, drawing from the rng stream at the same points — so the (at, seq)
// event order of a fixed-seed run is unchanged.

// walkOp selects what a popped walker event does.
type walkOp uint8

const (
	// wDeliver invokes the destination host's handler with the packet —
	// the terminal event of every precomputed-path delivery.
	wDeliver walkOp = iota
	// wUnicastStep advances a queued-model unicast one routed hop.
	wUnicastStep
	// wFloodVisit delivers at a tree node and fans the queued flood out
	// over its remaining tree links.
	wFloodVisit
	// wSubtreeVisit delivers at a tree node and fans out to its children.
	wSubtreeVisit
	// wAscendStep advances a queued tree ascent one parent hop.
	wAscendStep
	// wDescendStep advances a queued tree descent one child hop.
	wDescendStep
)

// walker is the reusable state of one in-flight hop sequence. Fields are a
// union over the ops: node is always the next node to act at; dest is the
// unicast destination or the ascent meet point; via is the tree link a
// flood arrived on; path/idx drive descents; done fires at the end of an
// ascent or descent.
type walker struct {
	op   walkOp
	n    *Net
	pkt  Packet
	node graph.NodeID
	dest graph.NodeID
	via  graph.EdgeID
	idx  int32
	path []graph.NodeID
	done func()
	next *walker // free-list link
}

// getWalker pops a recycled walker (or allocates the pool's next one).
func (e *Engine) getWalker() *walker {
	if w := e.freeW; w != nil {
		e.freeW = w.next
		w.next = nil
		return w
	}
	return &walker{}
}

// putWalker returns a walker to the free list, dropping every reference it
// held (payload, callback, net) while keeping its path capacity.
func (e *Engine) putWalker(w *walker) {
	*w = walker{path: w.path[:0], next: e.freeW}
	e.freeW = w
}

// scheduleWalker enqueues the walker's next event.
func (e *Engine) scheduleWalker(at float64, w *walker) {
	e.push(at, event{kind: evWalker, ref: e.walks.put(w)})
}

// run dispatches one popped walker event. Ops that terminate here release
// the walker before invoking handlers, so a handler that injects new
// traffic can reuse it immediately.
func (w *walker) run() {
	n := w.n
	switch w.op {
	case wDeliver:
		node, pkt := w.node, w.pkt
		n.Eng.putWalker(w)
		if h := n.handlerOf(node); h != nil {
			h(pkt)
		}
	case wUnicastStep:
		n.unicastStep(w)
	case wFloodVisit:
		node, via, pkt := w.node, w.via, w.pkt
		n.Eng.putWalker(w)
		n.upcall(node, pkt)
		n.floodFanOut(node, via, pkt)
	case wSubtreeVisit:
		node, pkt := w.node, w.pkt
		n.Eng.putWalker(w)
		n.upcall(node, pkt)
		n.subtreeFanOut(node, pkt)
	case wAscendStep:
		n.ascendStep(w)
	case wDescendStep:
		n.descendStep(w)
	}
}
