package sim

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// rig bundles a ready simulation over a network.
type rig struct {
	eng  *Engine
	net  *Net
	topo *topology.Network
	tree *mtree.Tree
}

func newRig(t *testing.T, topo *topology.Network, seed uint64) *rig {
	t.Helper()
	tree, err := mtree.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	n := NewNet(eng, topo, tree, route.Build(topo), rng.New(seed))
	return &rig{eng: eng, net: n, topo: topo, tree: tree}
}

type delivery struct {
	node graph.NodeID
	at   float64
	pkt  Packet
}

// collect registers recording handlers on every host.
func (r *rig) collect() *[]delivery {
	var got []delivery
	for v := 0; v < r.topo.NumNodes(); v++ {
		v := graph.NodeID(v)
		switch r.topo.Kind[v] {
		case topology.Client, topology.Source:
			r.net.SetHandler(v, func(pkt Packet) {
				got = append(got, delivery{v, r.eng.Now(), pkt})
			})
		}
	}
	return &got
}

func TestUnicastDelayAndHops(t *testing.T) {
	topo, err := topology.Chain(3, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, topo, 1)
	got := r.collect()
	c := topo.Clients[0] // 4 links from source, 2 ms each
	ok, d := r.net.Unicast(c, Packet{Kind: Request, From: topo.Source, Seq: 7})
	if !ok || math.Abs(d-8) > 1e-9 {
		t.Fatalf("unicast fate (%v, %v), want (true, 8)", ok, d)
	}
	r.eng.Run(0)
	if len(*got) != 1 {
		t.Fatalf("deliveries %d, want 1", len(*got))
	}
	dl := (*got)[0]
	if dl.node != c || math.Abs(dl.at-8) > 1e-9 || dl.pkt.Seq != 7 {
		t.Fatalf("bad delivery %+v", dl)
	}
	if r.net.Hops.Request != 4 || r.net.Hops.Data != 0 {
		t.Fatalf("hop accounting %+v, want 4 request hops", r.net.Hops)
	}
}

func TestUnicastToSelf(t *testing.T) {
	topo, _ := topology.Star(2, 1)
	r := newRig(t, topo, 1)
	got := r.collect()
	c := topo.Clients[0]
	ok, d := r.net.Unicast(c, Packet{Kind: Request, From: c})
	r.eng.Run(0)
	if !ok || d != 0 || len(*got) != 1 {
		t.Fatal("self-unicast should deliver immediately with zero hops")
	}
	if r.net.Hops.Request != 0 {
		t.Fatal("self-unicast should cost no hops")
	}
}

func TestUnicastLossStopsPacket(t *testing.T) {
	topo, _ := topology.Chain(3, 1.0, nil)
	topo.SetUniformLoss(1) // every link drops everything
	r := newRig(t, topo, 2)
	r.net.ControlLoss = true // recovery packets subject to loss too
	got := r.collect()
	c := topo.Clients[0]
	ok, _ := r.net.Unicast(c, Packet{Kind: Repair, From: topo.Source})
	r.eng.Run(0)
	if ok || len(*got) != 0 {
		t.Fatal("packet should have died on first link")
	}
	// Hop charged for the attempted first link only.
	if r.net.Hops.Repair != 1 || r.net.Drops.Repair != 1 {
		t.Fatalf("accounting %+v / %+v", r.net.Hops, r.net.Drops)
	}
}

func TestMulticastFromSourceReachesAllClients(t *testing.T) {
	topo, err := topology.Binary(3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, topo, 3)
	got := r.collect()
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: 1})
	r.eng.Run(0)
	if len(*got) != len(topo.Clients) {
		t.Fatalf("deliveries %d, want %d", len(*got), len(topo.Clients))
	}
	for _, d := range *got {
		want := r.tree.DelayFromRoot[d.node]
		if math.Abs(d.at-want) > 1e-9 {
			t.Fatalf("client %d delivery at %v, want tree delay %v", d.node, d.at, want)
		}
	}
	// Every tree link crossed exactly once.
	if r.net.Hops.Data != int64(r.tree.NumTreeEdges()) {
		t.Fatalf("data hops %d, want %d", r.net.Hops.Data, r.tree.NumTreeEdges())
	}
}

func TestMulticastLossPrunesSubtree(t *testing.T) {
	// Binary tree; kill the link from the root router to its left child:
	// half the clients must get nothing, and no hops accrue below the cut.
	topo, _ := topology.Binary(3, 1)
	tree := mtree.MustBuild(topo)
	rootRouter := tree.Children[tree.Root][0]
	leftLink := tree.ChildLink[rootRouter][0]
	topo.Loss[leftLink] = 1
	r := newRig(t, topo, 4)
	got := r.collect()
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source})
	r.eng.Run(0)
	if len(*got) != len(topo.Clients)/2 {
		t.Fatalf("deliveries %d, want %d", len(*got), len(topo.Clients)/2)
	}
	// Hops: source link + root link attempts (1+2) + right subtree only.
	// Right subtree of depth-3 binary: 2 + 4·... count: total tree edges 15;
	// left subtree below cut has 6 edges that must NOT be crossed.
	if r.net.Hops.Data != 15-6 {
		t.Fatalf("data hops %d, want 9", r.net.Hops.Data)
	}
}

func TestFloodTreeFromClientReachesEveryone(t *testing.T) {
	topo, _ := topology.Binary(3, 1)
	r := newRig(t, topo, 5)
	got := r.collect()
	u := topo.Clients[0]
	r.net.FloodTree(Packet{Kind: Request, From: u, Seq: 3})
	r.eng.Run(0)
	// Everyone except the sender: all other clients + the source.
	if len(*got) != len(topo.Clients) {
		t.Fatalf("deliveries %d, want %d (peers+source)", len(*got), len(topo.Clients))
	}
	for _, d := range *got {
		if d.node == u {
			t.Fatal("flood delivered to its own sender")
		}
		want := r.tree.TreeDelay(u, d.node)
		if math.Abs(d.at-want) > 1e-9 {
			t.Fatalf("node %d at %v, want %v", d.node, d.at, want)
		}
	}
	if r.net.Hops.Request != int64(r.tree.NumTreeEdges()) {
		t.Fatalf("flood hops %d, want every tree edge once (%d)",
			r.net.Hops.Request, r.tree.NumTreeEdges())
	}
}

func TestMulticastSubtree(t *testing.T) {
	// Chain with a side client: repair from the side client via its meet
	// router must reach only the meet's subtree.
	topo, err := topology.Chain(3, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, topo, 6)
	got := r.collect()
	tail := topo.Clients[0]
	side := topo.Clients[1] // attached at r2
	meet := r.tree.LCA(tail, side)
	r.net.MulticastSubtree(meet, Packet{Kind: Repair, From: side, Seq: 9})
	r.eng.Run(0)
	// Subtree of r2 contains side and tail (and r3).
	if len(*got) != 2 {
		t.Fatalf("deliveries %d, want 2", len(*got))
	}
	for _, d := range *got {
		switch d.node {
		case side:
			// up 1 (side→r2) + down 1 (r2→side) = 2 ms.
			if math.Abs(d.at-2) > 1e-9 {
				t.Fatalf("side at %v, want 2", d.at)
			}
		case tail:
			// up 1 + down r2→r3→tail (2) = 3 ms.
			if math.Abs(d.at-3) > 1e-9 {
				t.Fatalf("tail at %v, want 3", d.at)
			}
		default:
			t.Fatalf("unexpected delivery to %d", d.node)
		}
	}
	// Hops: 1 up + 3 down (r2→r3, r3→tail, r2→side).
	if r.net.Hops.Repair != 4 {
		t.Fatalf("repair hops %d, want 4", r.net.Hops.Repair)
	}
}

func TestMulticastSubtreePanicsOnNonAncestor(t *testing.T) {
	topo, _ := topology.Chain(2, 1, []int{1})
	r := newRig(t, topo, 7)
	tail := topo.Clients[0]
	side := topo.Clients[1]
	defer func() {
		if recover() == nil {
			t.Fatal("non-ancestor meet accepted")
		}
	}()
	r.net.MulticastSubtree(side, Packet{Kind: Repair, From: tail})
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed uint64) (HopCount, int, float64) {
		topo := topology.MustGenerate(topology.DefaultConfig(60), rng.New(9))
		topo.SetUniformLoss(0.2)
		tree := mtree.MustBuild(topo)
		eng := NewEngine()
		n := NewNet(eng, topo, tree, route.Build(topo), rng.New(seed))
		count := 0
		for _, c := range topo.Clients {
			n.SetHandler(c, func(Packet) { count++ })
		}
		for s := 0; s < 50; s++ {
			s := s
			eng.Schedule(float64(s)*10, func() {
				n.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: s})
			})
		}
		eng.Run(0)
		return n.Hops, count, eng.Now()
	}
	h1, c1, t1 := run(42)
	h2, c2, t2 := run(42)
	if h1 != h2 || c1 != c2 || t1 != t2 {
		t.Fatalf("same seed diverged: %+v/%d/%v vs %+v/%d/%v", h1, c1, t1, h2, c2, t2)
	}
	h3, c3, _ := run(43)
	if h1 == h3 && c1 == c3 {
		t.Fatal("different seeds produced identical stochastic outcomes")
	}
}

func TestLossRateStatistics(t *testing.T) {
	// Empirical per-link loss over many multicasts should match p.
	topo, _ := topology.Chain(1, 1, nil) // S—r1—C: 2 links
	topo.SetUniformLoss(0.3)
	r := newRig(t, topo, 11)
	received := 0
	c := topo.Clients[0]
	r.net.SetHandler(c, func(Packet) { received++ })
	const trials = 20000
	for i := 0; i < trials; i++ {
		r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: i})
	}
	r.eng.Run(0)
	// P(arrive) = 0.7².
	got := float64(received) / trials
	if math.Abs(got-0.49) > 0.01 {
		t.Fatalf("arrival rate %v, want ~0.49", got)
	}
}

func TestWouldArrive(t *testing.T) {
	topo, _ := topology.Chain(3, 2, nil)
	r := newRig(t, topo, 1)
	if w := r.net.WouldArrive(topo.Clients[0]); math.Abs(w-8) > 1e-9 {
		t.Fatalf("WouldArrive %v, want 8", w)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Request.String() != "request" ||
		Repair.String() != "repair" || Kind(7).String() != "kind(7)" {
		t.Fatal("kind strings wrong")
	}
}

func TestJitterBoundsDelay(t *testing.T) {
	topo, _ := topology.Chain(3, 2.0, nil) // 4 links of 2 ms
	r := newRig(t, topo, 21)
	r.net.Jitter = 0.5
	c := topo.Clients[0]
	var arrivals []float64
	r.net.SetHandler(c, func(Packet) { arrivals = append(arrivals, r.eng.Now()) })
	const trials = 500
	for i := 0; i < trials; i++ {
		r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: i})
	}
	r.eng.Run(0)
	if len(arrivals) != trials {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	// Base path delay is 8; with 50% jitter every arrival must land in
	// [8, 12) and must not all coincide.
	lo, hi := arrivals[0], arrivals[0]
	for _, a := range arrivals {
		if a < 8-1e-9 || a >= 12 {
			t.Fatalf("arrival %v outside [8,12)", a)
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo < 0.5 {
		t.Fatalf("jitter produced implausibly tight spread [%v,%v]", lo, hi)
	}
}

func TestJitterZeroIsExact(t *testing.T) {
	topo, _ := topology.Chain(3, 2.0, nil)
	r := newRig(t, topo, 22)
	c := topo.Clients[0]
	var at float64
	r.net.SetHandler(c, func(Packet) { at = r.eng.Now() })
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source})
	r.eng.Run(0)
	if math.Abs(at-8) > 1e-12 {
		t.Fatalf("no-jitter arrival %v, want exactly 8", at)
	}
}

func TestMulticastDescendUnqueued(t *testing.T) {
	topo, _ := topology.Chain(3, 1, []int{2})
	r := newRig(t, topo, 9)
	got := r.collect()
	tail := topo.Clients[0]
	side := topo.Clients[1]
	sub := r.tree.LCA(tail, side) // r2
	r.net.MulticastDescend(sub, Packet{Kind: Repair, From: topo.Source, Seq: 4})
	r.eng.Run(0)
	if len(*got) != 2 {
		t.Fatalf("deliveries %d, want 2", len(*got))
	}
	for _, d := range *got {
		switch d.node {
		case side:
			if math.Abs(d.at-3) > 1e-9 { // S→r1→r2 (2) + r2→side (1)
				t.Fatalf("side at %v, want 3", d.at)
			}
		case tail:
			if math.Abs(d.at-4) > 1e-9 { // + r2→r3→tail
				t.Fatalf("tail at %v, want 4", d.at)
			}
		}
	}
	// Hops: 2 down + 3 subtree links.
	if r.net.Hops.Repair != 5 {
		t.Fatalf("repair hops %d, want 5", r.net.Hops.Repair)
	}
}

func TestMulticastDescendPanicsOnNonAncestor(t *testing.T) {
	topo, _ := topology.Chain(2, 1, []int{1})
	r := newRig(t, topo, 10)
	tail := topo.Clients[0]
	side := topo.Clients[1]
	defer func() {
		if recover() == nil {
			t.Fatal("non-ancestor descend accepted")
		}
	}()
	r.net.MulticastDescend(side, Packet{Kind: Repair, From: tail})
}

func TestHopCountRecovery(t *testing.T) {
	h := HopCount{Data: 5, Request: 3, Repair: 4}
	if h.Recovery() != 7 {
		t.Fatalf("Recovery() = %d, want 7", h.Recovery())
	}
}

func TestOnSendHookFires(t *testing.T) {
	topo, _ := topology.Chain(1, 1, nil)
	r := newRig(t, topo, 11)
	sends := 0
	r.net.OnSend = func(Packet) { sends++ }
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source})
	r.net.Unicast(topo.Clients[0], Packet{Kind: Request, From: topo.Source})
	r.net.FloodTree(Packet{Kind: Repair, From: topo.Clients[0]})
	r.eng.Run(0)
	if sends != 3 {
		t.Fatalf("OnSend fired %d times, want 3", sends)
	}
}
