package sim

import (
	"fmt"

	"rmcast/internal/graph"
)

// QueueModel adds store-and-forward queueing to the network: every link
// direction is a FIFO server that takes PacketTime ms to transmit one
// packet, so bursts serialise and chatty protocols congest shared links.
//
// The paper's simulator deliberately omits this ("unlike a real network,
// the link delay and loss properties are independent of the number of
// packets traversing the link") and notes the omission favours SRM and RMA,
// which "generate more data". Enabling the model quantifies that bias:
// whole-tree floods now pay for themselves in queueing delay.
//
// With a QueueModel attached the network forwards hop by hop through real
// events (a packet's fate at a link depends on traffic that reaches the
// link earlier in simulated time), instead of precomputing whole paths at
// injection time.
type QueueModel struct {
	// PacketTime is the per-packet transmission (service) time per link
	// direction, ms.
	PacketTime float64

	// busyUntil is dense per-direction server state, indexed by
	// qindex(link, fromA) = 2·link + direction. A map was measurably
	// slower and allocated on growth in the middle of runs.
	busyUntil []float64
}

// qindex maps a (link, direction) pair onto the dense busyUntil index.
func qindex(link graph.EdgeID, fromA bool) int {
	i := int(link) << 1
	if !fromA {
		i |= 1
	}
	return i
}

// NewQueueModel returns a queue model with the given per-packet service
// time; the per-direction state grows on demand. Prefer NewQueueModelSized
// when the edge count is known up front.
func NewQueueModel(packetTime float64) *QueueModel {
	if packetTime <= 0 {
		panic(fmt.Sprintf("sim: non-positive packet time %v", packetTime))
	}
	return &QueueModel{PacketTime: packetTime}
}

// NewQueueModelSized returns a queue model pre-sized for a graph with
// edges undirected links, so no growth ever happens mid-run. The edge
// count must be non-negative.
func NewQueueModelSized(packetTime float64, edges int) *QueueModel {
	if edges < 0 {
		panic(fmt.Sprintf("sim: negative edge count %d", edges))
	}
	q := NewQueueModel(packetTime)
	q.busyUntil = make([]float64, 2*edges)
	return q
}

// slot returns the busy-until cell for a link direction, growing the dense
// array if the model was built without a size.
func (q *QueueModel) slot(link graph.EdgeID, fromA bool) *float64 {
	i := qindex(link, fromA)
	if i >= len(q.busyUntil) {
		grown := make([]float64, 2*int(link)+2)
		copy(grown, q.busyUntil)
		q.busyUntil = grown
	}
	return &q.busyUntil[i]
}

// departAfter reserves the link direction starting no earlier than `at` and
// returns the transmission-complete time. Must be called in nondecreasing
// event-time order per direction, which the event engine guarantees.
func (q *QueueModel) departAfter(link graph.EdgeID, fromA bool, at float64) float64 {
	s := q.slot(link, fromA)
	start := at
	if *s > start {
		start = *s
	}
	dep := start + q.PacketTime
	*s = dep
	return dep
}

// Backlog returns the current queueing backlog (ms of work beyond `now`)
// on a link direction — visibility for tests and congestion metrics.
func (q *QueueModel) Backlog(link graph.EdgeID, fromA bool, now float64) float64 {
	i := qindex(link, fromA)
	if i >= len(q.busyUntil) {
		return 0
	}
	b := q.busyUntil[i] - now
	if b < 0 {
		return 0
	}
	return b
}

// sendHop transmits pkt across one link starting at time `at` (event time),
// applying queueing, jitter, and loss, and returns the arrival time at the
// far end and whether the packet survived. from must be an endpoint.
func (n *Net) sendHop(link graph.EdgeID, from graph.NodeID, at float64, pkt Packet) (float64, bool) {
	e := n.Topo.G.Edge(link)
	dep := at
	if n.Queue != nil {
		dep = n.Queue.departAfter(link, e.A == from, at)
	}
	if !n.crossLink(link, dep, pkt) {
		return dep, false
	}
	return dep + n.linkDelay(link), true
}

// unicastQueued forwards pkt hop by hop through real events: one pooled
// walker advances along the route, reused for every hop.
func (n *Net) unicastQueued(dest graph.NodeID, pkt Packet) {
	w := n.Eng.getWalker()
	w.op, w.n, w.pkt, w.node, w.dest = wUnicastStep, n, pkt, pkt.From, dest
	n.unicastStep(w)
}

// unicastStep runs one routed hop of a queued unicast (the injection call
// and every popped wUnicastStep event land here).
func (n *Net) unicastStep(w *walker) {
	cur, dest := w.node, w.dest
	if cur == dest {
		pkt := w.pkt
		n.Eng.putWalker(w)
		n.upcall(dest, pkt)
		return
	}
	next, link := n.Routes.NextHop(cur, dest)
	if next == graph.None {
		panic(fmt.Sprintf("sim: no route %d→%d", cur, dest))
	}
	arrive, ok := n.sendHop(link, cur, n.Eng.Now(), w.pkt)
	if !ok {
		n.Eng.putWalker(w)
		return
	}
	w.node = next
	n.Eng.scheduleWalker(arrive, w)
}

// floodQueued floods pkt over tree links outward from start (skipping
// fromLink), hop by hop through real events, delivering to hosts en route.
func (n *Net) floodQueued(start graph.NodeID, fromLink graph.EdgeID, pkt Packet) {
	n.floodFanOut(start, fromLink, pkt)
}

// floodFanOut transmits pkt over every tree link at node except via,
// scheduling one wFloodVisit walker per surviving transmission.
func (n *Net) floodFanOut(node graph.NodeID, via graph.EdgeID, pkt Packet) {
	for _, half := range n.treeAdj.of(node) {
		if half.Edge == via {
			continue
		}
		arrive, ok := n.sendHop(half.Edge, node, n.Eng.Now(), pkt)
		if !ok {
			continue
		}
		w := n.Eng.getWalker()
		w.op, w.n, w.pkt, w.node, w.via = wFloodVisit, n, pkt, half.Peer, half.Edge
		n.Eng.scheduleWalker(arrive, w)
	}
}

// subtreeFloodQueued floods pkt strictly downward from root through real
// events.
func (n *Net) subtreeFloodQueued(root graph.NodeID, pkt Packet) {
	n.subtreeFanOut(root, pkt)
}

// subtreeFanOut transmits pkt to every child of node, scheduling one
// wSubtreeVisit walker per surviving transmission.
func (n *Net) subtreeFanOut(node graph.NodeID, pkt Packet) {
	for i, c := range n.Tree.Children[node] {
		link := n.Tree.ChildLink[node][i]
		arrive, ok := n.sendHop(link, node, n.Eng.Now(), pkt)
		if !ok {
			continue
		}
		w := n.Eng.getWalker()
		w.op, w.n, w.pkt, w.node = wSubtreeVisit, n, pkt, c
		n.Eng.scheduleWalker(arrive, w)
	}
}

// ascendQueued walks pkt up the tree from pkt.From to meet through real
// events, then calls done at the arrival event (or never, on loss). One
// pooled walker is reused for every hop.
func (n *Net) ascendQueued(meet graph.NodeID, pkt Packet, done func()) {
	w := n.Eng.getWalker()
	w.op, w.n, w.pkt, w.node, w.dest, w.done = wAscendStep, n, pkt, pkt.From, meet, done
	n.ascendStep(w)
}

// ascendStep runs one parent hop of a queued ascent.
func (n *Net) ascendStep(w *walker) {
	cur := w.node
	if cur == w.dest {
		done := w.done
		n.Eng.putWalker(w)
		done()
		return
	}
	link := n.Tree.ParentLink[cur]
	parent := n.Tree.Parent[cur]
	arrive, ok := n.sendHop(link, cur, n.Eng.Now(), w.pkt)
	if !ok {
		n.Eng.putWalker(w)
		return
	}
	w.node = parent
	n.Eng.scheduleWalker(arrive, w)
}

// descendQueued walks pkt down the tree from pkt.From to sub through real
// events, then calls done at arrival. The top-down path lives in the
// walker's recycled scratch slice.
func (n *Net) descendQueued(sub graph.NodeID, pkt Packet, done func()) {
	w := n.Eng.getWalker()
	w.op, w.n, w.pkt, w.done = wDescendStep, n, pkt, done
	// Collect the path bottom-up; descendStep walks it from the end.
	w.path = w.path[:0]
	for cur := sub; cur != pkt.From; cur = n.Tree.Parent[cur] {
		w.path = append(w.path, cur)
	}
	w.idx = int32(len(w.path) - 1)
	w.node = pkt.From
	n.descendStep(w)
}

// descendStep runs one child hop of a queued descent.
func (n *Net) descendStep(w *walker) {
	if w.idx < 0 {
		done := w.done
		n.Eng.putWalker(w)
		done()
		return
	}
	next := w.path[w.idx]
	w.idx--
	link := n.Tree.ParentLink[next]
	arrive, ok := n.sendHop(link, w.node, n.Eng.Now(), w.pkt)
	if !ok {
		n.Eng.putWalker(w)
		return
	}
	w.node = next
	n.Eng.scheduleWalker(arrive, w)
}
