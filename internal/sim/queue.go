package sim

import (
	"fmt"

	"rmcast/internal/graph"
)

// QueueModel adds store-and-forward queueing to the network: every link
// direction is a FIFO server that takes PacketTime ms to transmit one
// packet, so bursts serialise and chatty protocols congest shared links.
//
// The paper's simulator deliberately omits this ("unlike a real network,
// the link delay and loss properties are independent of the number of
// packets traversing the link") and notes the omission favours SRM and RMA,
// which "generate more data". Enabling the model quantifies that bias:
// whole-tree floods now pay for themselves in queueing delay.
//
// With a QueueModel attached the network forwards hop by hop through real
// events (a packet's fate at a link depends on traffic that reaches the
// link earlier in simulated time), instead of precomputing whole paths at
// injection time.
type QueueModel struct {
	// PacketTime is the per-packet transmission (service) time per link
	// direction, ms.
	PacketTime float64

	busyUntil map[qkey]float64
}

type qkey struct {
	link  graph.EdgeID
	fromA bool
}

// NewQueueModel returns a queue model with the given per-packet service
// time.
func NewQueueModel(packetTime float64) *QueueModel {
	if packetTime <= 0 {
		panic(fmt.Sprintf("sim: non-positive packet time %v", packetTime))
	}
	return &QueueModel{PacketTime: packetTime, busyUntil: make(map[qkey]float64)}
}

// departAfter reserves the link direction starting no earlier than `at` and
// returns the transmission-complete time. Must be called in nondecreasing
// event-time order per direction, which the event engine guarantees.
func (q *QueueModel) departAfter(link graph.EdgeID, fromA bool, at float64) float64 {
	k := qkey{link, fromA}
	start := at
	if b := q.busyUntil[k]; b > start {
		start = b
	}
	dep := start + q.PacketTime
	q.busyUntil[k] = dep
	return dep
}

// Backlog returns the current queueing backlog (ms of work beyond `now`)
// on a link direction — visibility for tests and congestion metrics.
func (q *QueueModel) Backlog(link graph.EdgeID, fromA bool, now float64) float64 {
	b := q.busyUntil[qkey{link, fromA}] - now
	if b < 0 {
		return 0
	}
	return b
}

// sendHop transmits pkt across one link starting at time `at` (event time),
// applying queueing, jitter, and loss, and returns the arrival time at the
// far end and whether the packet survived. from must be an endpoint.
func (n *Net) sendHop(link graph.EdgeID, from graph.NodeID, at float64, pkt Packet) (float64, bool) {
	e := n.Topo.G.Edge(link)
	dep := at
	if n.Queue != nil {
		dep = n.Queue.departAfter(link, e.A == from, at)
	}
	if !n.crossLink(link, dep, pkt) {
		return dep, false
	}
	return dep + n.linkDelay(link), true
}

// unicastQueued forwards pkt hop by hop through real events.
func (n *Net) unicastQueued(dest graph.NodeID, pkt Packet) {
	var step func(cur graph.NodeID)
	step = func(cur graph.NodeID) {
		if cur == dest {
			n.upcall(dest, pkt)
			return
		}
		next, link := n.Routes.NextHop(cur, dest)
		if next == graph.None {
			panic(fmt.Sprintf("sim: no route %d→%d", cur, dest))
		}
		arrive, ok := n.sendHop(link, cur, n.Eng.Now(), pkt)
		if !ok {
			return
		}
		n.Eng.Schedule(arrive, func() { step(next) })
	}
	step(pkt.From)
}

// floodQueued floods pkt over tree links outward from start (skipping
// fromLink), hop by hop through real events, delivering to hosts en route.
func (n *Net) floodQueued(start graph.NodeID, fromLink graph.EdgeID, pkt Packet) {
	var visit func(node graph.NodeID, via graph.EdgeID)
	visit = func(node graph.NodeID, via graph.EdgeID) {
		if node != start {
			n.upcall(node, pkt)
		}
		for _, half := range n.treeAdj[node] {
			if half.Edge == via {
				continue
			}
			peer, link := half.Peer, half.Edge
			arrive, ok := n.sendHop(link, node, n.Eng.Now(), pkt)
			if !ok {
				continue
			}
			n.Eng.Schedule(arrive, func() { visit(peer, link) })
		}
	}
	visit(start, fromLink)
}

// subtreeFloodQueued floods pkt strictly downward from root through real
// events, starting at the given time offset already elapsed.
func (n *Net) subtreeFloodQueued(root graph.NodeID, pkt Packet) {
	var visit func(node graph.NodeID)
	visit = func(node graph.NodeID) {
		if node != root {
			n.upcall(node, pkt)
		}
		for i, c := range n.Tree.Children[node] {
			link := n.Tree.ChildLink[node][i]
			child := c
			arrive, ok := n.sendHop(link, node, n.Eng.Now(), pkt)
			if !ok {
				continue
			}
			n.Eng.Schedule(arrive, func() { visit(child) })
		}
	}
	visit(root)
}

// ascendQueued walks pkt up the tree from pkt.From to meet through real
// events, then calls done at the arrival event (or never, on loss).
func (n *Net) ascendQueued(meet graph.NodeID, pkt Packet, done func()) {
	var step func(cur graph.NodeID)
	step = func(cur graph.NodeID) {
		if cur == meet {
			done()
			return
		}
		link := n.Tree.ParentLink[cur]
		parent := n.Tree.Parent[cur]
		arrive, ok := n.sendHop(link, cur, n.Eng.Now(), pkt)
		if !ok {
			return
		}
		n.Eng.Schedule(arrive, func() { step(parent) })
	}
	step(pkt.From)
}

// descendQueued walks pkt down the tree from pkt.From to sub through real
// events, then calls done at arrival.
func (n *Net) descendQueued(sub graph.NodeID, pkt Packet, done func()) {
	// Collect the top-down path.
	var path []graph.NodeID
	for cur := sub; cur != pkt.From; cur = n.Tree.Parent[cur] {
		path = append(path, cur)
	}
	// path is bottom-up; walk it from the end.
	idx := len(path) - 1
	var step func(at graph.NodeID)
	step = func(at graph.NodeID) {
		if idx < 0 {
			done()
			return
		}
		next := path[idx]
		idx--
		link := n.Tree.ParentLink[next]
		arrive, ok := n.sendHop(link, at, n.Eng.Now(), pkt)
		if !ok {
			return
		}
		n.Eng.Schedule(arrive, func() { step(next) })
	}
	step(pkt.From)
}
