package sim

import (
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// Allocation-budget regression gates for the zero-allocation event core.
// These are hard limits, not benchmarks: a change that reintroduces per-event
// or per-hop allocation fails the suite.

// TestAllocsScheduleStep locks the steady-state schedule→fire cycle at zero
// allocations once the calendar's backing array has reached capacity.
func TestAllocsScheduleStep(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm-up: grow the heap's backing array past anything the measured
	// loop will need, then drain.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	e.Run(0)
	if avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}); avg != 0 {
		t.Fatalf("Schedule+Step allocates %v per cycle, want 0", avg)
	}
}

type countingCallee struct{ fired int }

func (c *countingCallee) OnSimEvent(op, a, b int) { c.fired++ }

// TestAllocsScheduleCall locks the typed-callback path at zero allocations:
// opcode and arguments ride inside the event, no closure is built.
func TestAllocsScheduleCall(t *testing.T) {
	e := NewEngine()
	c := &countingCallee{}
	for i := 0; i < 64; i++ {
		e.ScheduleCall(e.Now()+1, c, 1, i, i)
	}
	e.Run(0)
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(e.Now()+1, c, 1, 2, 3)
		e.Step()
	}); avg != 0 {
		t.Fatalf("ScheduleCall+Step allocates %v per cycle, want 0", avg)
	}
	if c.fired == 0 {
		t.Fatal("callee never fired")
	}
}

// TestAllocsTimerCycle locks a full arm→fire timer cycle at zero
// allocations beyond the caller's own callback closure (here non-capturing,
// hence free): the timer's state lives in a recycled engine slot.
func TestAllocsTimerCycle(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.NewTimer(1, fn)
	}
	e.Run(0)
	if avg := testing.AllocsPerRun(1000, func() {
		e.NewTimer(1, fn)
		e.Step()
	}); avg != 0 {
		t.Fatalf("NewTimer+fire allocates %v per cycle, want 0", avg)
	}
}

// TestAllocsQueuedUnicastHop budgets a queued-model unicast at one
// allocation per hop at most; with the pooled walkers it is in fact zero
// once the pool is warm.
func TestAllocsQueuedUnicastHop(t *testing.T) {
	topo, err := topology.Chain(3, 2.0, nil) // src —4 links→ client
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mtree.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	n := NewNet(eng, topo, tree, route.Build(topo), rng.New(1))
	n.Queue = NewQueueModelSized(0.1, topo.G.NumEdges())
	deliveries := 0
	n.SetHandler(topo.Clients[0], func(Packet) { deliveries++ })
	send := func() {
		n.Unicast(topo.Clients[0], Packet{Kind: Request, From: topo.Source, Seq: 1})
		eng.Run(0)
	}
	send() // warm the walker pool and calendar
	const hops = 4
	avg := testing.AllocsPerRun(200, send)
	if perHop := avg / hops; perHop > 1 {
		t.Fatalf("queued unicast allocates %v per hop (%v per packet), want ≤ 1", perHop, avg)
	}
	if deliveries == 0 {
		t.Fatal("no deliveries — the measurement exercised nothing")
	}
}

// TestAllocsQueuedFlood budgets a whole queued tree flood: fan-out walkers
// come from the pool, so a warm flood allocates nothing.
func TestAllocsQueuedFlood(t *testing.T) {
	topo, err := topology.Binary(3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mtree.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	n := NewNet(eng, topo, tree, route.Build(topo), rng.New(1))
	n.Queue = NewQueueModelSized(0.1, topo.G.NumEdges())
	for _, c := range topo.Clients {
		n.SetHandler(c, func(Packet) {})
	}
	send := func() {
		n.MulticastFromSource(Packet{Kind: Data, Seq: 1, From: topo.Source})
		eng.Run(0)
	}
	send()
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Fatalf("queued flood allocates %v per multicast, want 0", avg)
	}
}

// BenchmarkEngineScheduleStep measures the raw calendar hot loop.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}
