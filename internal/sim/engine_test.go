package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(9, func() { order = append(order, 3) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 9 {
		t.Fatalf("clock %v, want 9", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		if depth < 100 {
			depth++
			e.After(1, rec)
		}
	}
	e.After(0, rec)
	n := e.Run(0)
	if depth != 100 || n != 101 {
		t.Fatalf("nested chain depth %d events %d", depth, n)
	}
	if e.Now() != 100 {
		t.Fatalf("clock %v, want 100", e.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() {})
	}
	if n := e.Run(4); n != 4 {
		t.Fatalf("Run(4) executed %d", n)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending %d, want 6", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(2, func() { fired++ })
	e.Schedule(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 2 {
		t.Fatalf("RunUntil(3) fired %d, want 2", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if fired != 3 || e.Now() != 10 {
		t.Fatal("RunUntil(10) did not drain")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(5, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should return true")
	}
	if tm.Stop() {
		t.Fatal("double Stop should return false")
	}
	e.Run(0)
	if fired || tm.Fired() {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(5, func() { fired = true })
	e.Run(0)
	if !fired || !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should return false")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run(0)
	if e.Processed() != 7 {
		t.Fatalf("processed %d, want 7", e.Processed())
	}
}

func TestScheduleRejectsNonFinite(t *testing.T) {
	e := NewEngine()
	for _, bad := range []float64{nan(), inf()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Schedule(%v) did not panic", bad)
				}
			}()
			e.Schedule(bad, func() {})
		}()
	}
}

func nan() float64 { return inf() - inf() }
func inf() float64 { x := 1.0; return x / (x - 1) }
