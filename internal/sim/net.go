package sim

import (
	"fmt"
	"math"

	"rmcast/internal/fault"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// Kind classifies simulated packets.
type Kind uint8

const (
	// Data is an original multicast data packet from the source.
	Data Kind = iota
	// Request is a recovery request (RP/RMA unicast request, SRM NACK).
	Request
	// Repair is a retransmission of a lost data packet.
	Repair
)

// String returns the packet kind name.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Request:
		return "request"
	case Repair:
		return "repair"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is one simulated packet. Protocols attach their state via Payload.
type Packet struct {
	Kind Kind
	// Seq is the data sequence number this packet concerns.
	Seq int
	// From is the transmitting host.
	From graph.NodeID
	// Payload carries protocol-specific fields (never inspected here).
	Payload interface{}
}

// Handler receives packets delivered to a host.
type Handler func(pkt Packet)

// HopCount tallies link traversals by packet kind. One traversal of one
// link by one packet counts one hop, whether or not the link then drops
// the packet (the transmission happened) — this is the paper's bandwidth
// measure, "average bandwidth usage per packet recovered (hops)".
type HopCount struct {
	Data, Request, Repair int64
}

// Recovery returns the recovery-traffic hops (requests + repairs).
func (h HopCount) Recovery() int64 { return h.Request + h.Repair }

func (h *HopCount) add(k Kind, n int64) {
	switch k {
	case Data:
		h.Data += n
	case Request:
		h.Request += n
	case Repair:
		h.Repair += n
	}
}

// Net is the simulated network: topology + tree + routing + loss, glued to
// an event engine. It delivers packets to per-host handlers.
type Net struct {
	Eng    *Engine
	Topo   *topology.Network
	Tree   *mtree.Tree
	Routes route.Router
	// Hops accumulates the bandwidth accounting.
	Hops HopCount
	// Drops counts packets killed by link loss, by kind.
	Drops HopCount
	// ControlLoss subjects Request/Repair packets to per-link loss like
	// data. The paper's evaluation implicitly keeps recovery traffic
	// lossless — §3.1 "the probability that the request or the repair is
	// lost is ignored", and Figures 7/8's flat latency up to p=20% is
	// only possible under that assumption — so false is the default and
	// the faithful setting; true enables the harsher model exercised by
	// the failure-injection tests and robustness benchmarks.
	ControlLoss bool
	// OnSend, when non-nil, observes every packet injection (one call per
	// Unicast/flood, not per hop). OnDrop observes per-link losses. Both
	// exist for tracing; nil hooks cost nothing.
	OnSend func(pkt Packet)
	OnDrop func(pkt Packet, link graph.EdgeID)
	// Jitter adds per-traversal queueing variability: each link crossing
	// takes Delay·(1 + Jitter·U[0,1)) instead of the fixed Delay. The
	// paper's model has no queueing ("link delay … independent of the
	// number of packets traversing the link"), so zero is the default;
	// positive values stress the protocols' timeout margins (their RTT
	// estimates remain the no-jitter values).
	Jitter float64
	// Queue, when non-nil, enables the store-and-forward congestion model
	// (see QueueModel): forwarding becomes hop-by-hop events and bursts
	// serialise per link direction.
	Queue *QueueModel
	// Fault, when non-nil, is the failure-injection model (see
	// internal/fault and InstallFault): crashed hosts drop every packet
	// they would send or receive, downed links drop every crossing, and
	// links with a burst chain replace their flat loss draw with the
	// Gilbert–Elliott model. A state compiled from an empty schedule is
	// inert and leaves the run bit-identical to Fault == nil.
	Fault *fault.State
	// OnCrash and OnRecover fire at each effective host crash/recover
	// transition of the installed fault schedule (see InstallFault).
	OnCrash   func(node graph.NodeID)
	OnRecover func(node graph.NodeID)

	r *rng.Rand
	// handlers is the dense per-node handler table of serial nets, allocated
	// lazily on first SetHandler. Sharded nets use hmap instead: a domain
	// owns only ~n/K hosts, and K dense tables would cost K·n slots.
	handlers []Handler
	hmap     map[graph.NodeID]Handler
	// mut is the message-plane mutator of the installed fault state (nil
	// when none): control-plane deliveries route through deliverMutated,
	// which may duplicate, delay, or corrupt them. Data is never mutated.
	mut *fault.Mutator
	// treeAdj is adjacency restricted to tree links, for flood traversal.
	// It is immutable after construction and shared across every shard of a
	// partitioned run (see TreeAdjacency).
	treeAdj *TreeAdjacency

	// Sharded-mode state (see shard.go; all nil/zero in serial runs).
	// shardOf is the shared node→shard map of the partition, shardID this
	// net's own shard, hostsShared the shared handler-bearing node set, and
	// outbox the cross-shard deliveries produced by the current window.
	shardOf     []int32
	shardID     int32
	hostsShared []bool
	outbox      []RemoteDelivery
	// floodStack is reused scratch for the precomputed-path flood walks
	// (floodFrom, subtreeFlood). Safe to share: those walks only schedule
	// deliveries, so no handler — and no nested flood — runs inside them.
	floodStack []floodFrame
}

// floodFrame is one pending node of a precomputed-path flood traversal.
type floodFrame struct {
	node, prev graph.NodeID
	acc        float64
}

// Garbage is the payload substituted when the fault mutator corrupts a
// control packet's payload. Protocol engines must reject it through their
// payload validation (counted as malformed) rather than misbehave.
type Garbage struct{}

// Symbol is the wire payload of one coded repair symbol (the COOP engine's
// block-recovery unit). A block of K data packets is expanded into K+R
// symbols: Index < K names the systematic symbol carrying data sequence
// Block·K+Index verbatim; K ≤ Index < K+R names a coded symbol, any
// combination of which adds one unit of decode rank — a client holding any
// K distinct symbols of a block reconstructs every packet in it. Symbol
// packets travel as Kind Repair (they are recovery traffic for bandwidth
// accounting) and are classed fault.ClassSymbol for mutation.
type Symbol struct {
	Block int32
	Index int32
}

// TreeAdjacency is the tree-link adjacency of a topology in CSR form: one
// shared half-edge buffer plus per-node offsets, instead of a slice header
// and separate allocation per node. It is immutable once built, so a
// partitioned run builds it once and hands the same instance to every
// domain's Net — at n=1,000,000 that turns K copies of a ~2.5M-entry
// adjacency into one.
type TreeAdjacency struct {
	off []int32
	buf []graph.Half
}

// NewTreeAdjacency builds the tree adjacency of topo. Per-node half-edge
// order is TreeEdges order, matching the append-based layout it replaced.
func NewTreeAdjacency(topo *topology.Network) *TreeAdjacency {
	n := topo.NumNodes()
	a := &TreeAdjacency{
		off: make([]int32, n+1),
		buf: make([]graph.Half, 2*len(topo.TreeEdges)),
	}
	for _, id := range topo.TreeEdges {
		e := topo.G.Edge(id)
		a.off[e.A+1]++
		a.off[e.B+1]++
	}
	for i := 0; i < n; i++ {
		a.off[i+1] += a.off[i]
	}
	cur := make([]int32, n)
	copy(cur, a.off[:n])
	for _, id := range topo.TreeEdges {
		e := topo.G.Edge(id)
		a.buf[cur[e.A]] = graph.Half{Edge: id, Peer: e.B}
		cur[e.A]++
		a.buf[cur[e.B]] = graph.Half{Edge: id, Peer: e.A}
		cur[e.B]++
	}
	return a
}

// of returns node's tree half-edges.
func (a *TreeAdjacency) of(node graph.NodeID) []graph.Half {
	return a.buf[a.off[node]:a.off[node+1]]
}

// NewNet wires a network simulation over the given substrate. The rng
// stream is owned by the Net afterwards (loss draws must not interleave
// with other users).
func NewNet(eng *Engine, topo *topology.Network, tree *mtree.Tree, routes route.Router, r *rng.Rand) *Net {
	return NewNetShared(eng, topo, tree, routes, r, NewTreeAdjacency(topo))
}

// NewNetShared is NewNet with a prebuilt tree adjacency, for partitioned
// runs where every shard shares one immutable instance.
func NewNetShared(eng *Engine, topo *topology.Network, tree *mtree.Tree, routes route.Router, r *rng.Rand, adj *TreeAdjacency) *Net {
	return &Net{
		Eng:     eng,
		Topo:    topo,
		Tree:    tree,
		Routes:  routes,
		r:       r,
		treeAdj: adj,
	}
}

// SetHandler registers the packet upcall for a host.
func (n *Net) SetHandler(node graph.NodeID, h Handler) {
	if n.hmap != nil {
		n.hmap[node] = h
		return
	}
	if n.handlers == nil {
		n.handlers = make([]Handler, n.Topo.NumNodes())
	}
	n.handlers[node] = h
}

// handlerOf returns node's handler, nil when none is registered.
func (n *Net) handlerOf(node graph.NodeID) Handler {
	if n.hmap != nil {
		return n.hmap[node]
	}
	if n.handlers == nil {
		return nil
	}
	return n.handlers[node]
}

// InstallFault attaches a failure-injection model and schedules its host
// transitions as engine events, so the OnCrash/OnRecover hooks fire at the
// scheduled instants (the hooks may be assigned after this call; they are
// read at fire time).
func (n *Net) InstallFault(st *fault.State) {
	n.Fault = st
	n.mut = st.Mutator()
	for _, e := range st.HostEvents() {
		n.scheduleHostEvent(e)
	}
}

// scheduleHostEvent schedules one host crash/recover transition.
func (n *Net) scheduleHostEvent(e fault.Event) {
	n.Eng.Schedule(e.At, func() {
		switch e.Kind {
		case fault.CrashHost:
			if n.OnCrash != nil {
				n.OnCrash(e.Node)
			}
		case fault.RecoverHost:
			if n.OnRecover != nil {
				n.OnRecover(e.Node)
			}
		}
	})
}

// senderDown reports whether the packet's origin host is crashed right now,
// in which case the injection is suppressed entirely: no hops are charged
// and no hooks fire — a dead host transmits nothing.
func (n *Net) senderDown(pkt Packet) bool {
	return n.Fault != nil && !n.Fault.HostUpAt(pkt.From, n.Eng.Now())
}

// deliver schedules the handler upcall for node at absolute time at.
// Deliveries to hosts crashed at the arrival instant vanish silently.
// Control-plane deliveries pass through the message mutator when one is
// installed and active for their class.
func (n *Net) deliver(node graph.NodeID, at float64, pkt Packet) {
	if n.mut != nil && pkt.Kind != Data && n.mut.Active(classOf(pkt)) {
		n.deliverMutated(node, at, pkt)
		return
	}
	n.deliverAt(node, at, pkt)
}

// deliverAt is the mutation-free delivery: crash check, then schedule a
// pooled wDeliver walker (no per-delivery closure). In sharded mode a
// delivery to a host another shard owns goes to the outbox instead — the
// arrival time is final here, and the crash check against the shared fault
// state gives the same verdict the owner would compute.
func (n *Net) deliverAt(node graph.NodeID, at float64, pkt Packet) {
	if n.Fault != nil && !n.Fault.HostUpAt(node, at) {
		return
	}
	if n.shardOf != nil {
		if dst := n.shardOf[node]; dst != n.shardID {
			n.outbox = append(n.outbox, RemoteDelivery{At: at, Node: node, Dst: dst, Pkt: pkt})
			return
		}
	}
	if n.handlerOf(node) == nil {
		return
	}
	w := n.Eng.getWalker()
	w.op, w.n, w.pkt, w.node = wDeliver, n, pkt, node
	n.Eng.scheduleWalker(at, w)
}

// deliverMutated samples one delivery's adversarial fate: the original copy
// (possibly delayed and corrupted) plus any duplicate copies, each intact
// and independently delayed. Every copy still respects the crash model at
// its own arrival instant.
func (n *Net) deliverMutated(node graph.NodeID, at float64, pkt Packet) {
	var mu fault.Mutation
	if !n.mut.Sample(classOf(pkt), at, &mu) {
		n.deliverAt(node, at, pkt)
		return
	}
	orig := pkt
	switch mu.Corrupt {
	case fault.CorruptSeq:
		pkt.Seq = -1 - pkt.Seq
	case fault.CorruptFrom:
		pkt.From = -1 - pkt.From
	case fault.CorruptPayload:
		pkt.Payload = Garbage{}
	case fault.CorruptSymbolIndex:
		if sym, ok := pkt.Payload.(Symbol); ok {
			pkt.Payload = Symbol{Block: sym.Block, Index: -1 - sym.Index}
		}
	case fault.CorruptSymbolTrunc:
		pkt.Payload = Garbage{}
	}
	n.deliverAt(node, at+mu.Delay, pkt)
	for _, d := range mu.Copies {
		n.deliverAt(node, at+d, orig)
	}
}

// classOf maps a control packet onto the mutator's class space: repairs
// carrying a coded Symbol payload are their own class (they have payload
// validation to attack), plain repairs and requests keep their classes.
func classOf(pkt Packet) fault.MsgClass {
	if pkt.Kind == Repair {
		if _, ok := pkt.Payload.(Symbol); ok {
			return fault.ClassSymbol
		}
		return fault.ClassRepair
	}
	return fault.ClassRequest
}

// upcall invokes node's handler immediately (queued-model arrivals), unless
// the host is crashed at the current time. A mutated control delivery is
// rescheduled through deliverMutated instead — its copies need their own
// arrival events.
func (n *Net) upcall(node graph.NodeID, pkt Packet) {
	if n.mut != nil && pkt.Kind != Data && n.mut.Active(classOf(pkt)) {
		n.deliverMutated(node, n.Eng.Now(), pkt)
		return
	}
	if n.Fault != nil && !n.Fault.HostUpAt(node, n.Eng.Now()) {
		return
	}
	if h := n.handlerOf(node); h != nil {
		h(pkt)
	}
}

// crossLink charges one hop for the packet and decides its fate on the link
// whose traversal begins at time at: a downed link drops every packet; an
// up link draws loss — from the link's Gilbert–Elliott burst chain when the
// fault model configures one, from the flat Topo.Loss rate otherwise. The
// hop is charged even when the packet then dies (the transmission
// happened); this is the paper's bandwidth measure.
func (n *Net) crossLink(link graph.EdgeID, at float64, pkt Packet) bool {
	n.Hops.add(pkt.Kind, 1)
	if n.Fault != nil && !n.Fault.LinkUpAt(link, at) {
		n.Drops.add(pkt.Kind, 1)
		if n.OnDrop != nil {
			n.OnDrop(pkt, link)
		}
		return false
	}
	if pkt.Kind != Data && !n.ControlLoss {
		return true
	}
	lost := false
	if n.Fault != nil {
		if burstLost, ok := n.Fault.CrossBurst(link); ok {
			lost = burstLost
		} else {
			lost = n.r.Bool(n.Topo.Loss[link])
		}
	} else {
		lost = n.r.Bool(n.Topo.Loss[link])
	}
	if lost {
		n.Drops.add(pkt.Kind, 1)
		if n.OnDrop != nil {
			n.OnDrop(pkt, link)
		}
		return false
	}
	return true
}

// noteSend fires the OnSend hook.
func (n *Net) noteSend(pkt Packet) {
	if n.OnSend != nil {
		n.OnSend(pkt)
	}
}

// linkDelay returns the traversal time of one link for one packet,
// including jitter when configured.
func (n *Net) linkDelay(link graph.EdgeID) float64 {
	d := n.Topo.Delay[link]
	if n.Jitter > 0 {
		d *= 1 + n.Jitter*n.r.Float64()
	}
	return d
}

// Unicast sends pkt from pkt.From to dest along the minimum-delay path,
// applying per-link delay and loss. The delivery (if the packet survives
// every link) is scheduled relative to the current time. It reports the
// packet's fate and the end-to-end delay for testing; protocols normally
// ignore the return values (they cannot observe them without cheating).
func (n *Net) Unicast(dest graph.NodeID, pkt Packet) (delivered bool, delay float64) {
	if n.senderDown(pkt) {
		return false, math.NaN()
	}
	n.noteSend(pkt)
	cur := pkt.From
	if cur == dest {
		n.deliver(dest, n.Eng.Now(), pkt)
		return true, 0
	}
	if n.Queue != nil {
		// Hop-by-hop events: the fate is unknowable at injection time.
		n.unicastQueued(dest, pkt)
		return false, math.NaN()
	}
	var acc float64
	for cur != dest {
		next, link := n.Routes.NextHop(cur, dest)
		if next == graph.None {
			panic(fmt.Sprintf("sim: no route %d→%d", cur, dest))
		}
		start := n.Eng.Now() + acc
		acc += n.linkDelay(link)
		if !n.crossLink(link, start, pkt) {
			return false, acc
		}
		cur = next
	}
	n.deliver(dest, n.Eng.Now()+acc, pkt)
	return true, acc
}

// FloodTree multicasts pkt over the whole multicast tree outward from
// pkt.From (which must be a tree node), the way an SRM member's multicast
// reaches the entire group. Each tree link is traversed once (subject to
// loss pruning); every host reached gets a delivery at its tree-path delay.
func (n *Net) FloodTree(pkt Packet) {
	if n.senderDown(pkt) {
		return
	}
	n.noteSend(pkt)
	if n.Queue != nil {
		n.floodQueued(pkt.From, graph.NoEdge, pkt)
		return
	}
	n.floodFrom(pkt.From, graph.None, 0, pkt)
}

// floodFrom walks tree links outward from cur (skipping the link back to
// prev), delivering to hosts along the way.
func (n *Net) floodFrom(cur, prev graph.NodeID, acc float64, pkt Packet) {
	stack := append(n.floodStack[:0], floodFrame{cur, prev, acc})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range n.treeAdj.of(f.node) {
			if h.Peer == f.prev {
				continue
			}
			start := n.Eng.Now() + f.acc
			d := f.acc + n.linkDelay(h.Edge)
			if !n.crossLink(h.Edge, start, pkt) {
				continue // prune the subtree behind the lossy link
			}
			if n.hasHost(h.Peer) {
				n.deliver(h.Peer, n.Eng.Now()+d, pkt)
			}
			stack = append(stack, floodFrame{h.Peer, f.node, d})
		}
	}
	n.floodStack = stack[:0]
}

// MulticastSubtree sends pkt from a host up the tree to the router meet and
// then multicast down meet's whole subtree — RMA's partial repair (§1: the
// repairer "will multicast the repair to the subtree that contains all the
// receivers that have been requested"). pkt.From must be a tree descendant
// of meet (or meet itself).
func (n *Net) MulticastSubtree(meet graph.NodeID, pkt Packet) {
	if !n.Tree.IsAncestor(meet, pkt.From) {
		panic(fmt.Sprintf("sim: %d not an ancestor of repairer %d", meet, pkt.From))
	}
	if n.senderDown(pkt) {
		return
	}
	n.noteSend(pkt)
	if n.Queue != nil {
		n.ascendQueued(meet, pkt, func() {
			n.upcall(meet, pkt)
			n.subtreeFloodQueued(meet, pkt)
		})
		return
	}
	// Walk up from the repairer to meet.
	var acc float64
	cur := pkt.From
	for cur != meet {
		link := n.Tree.ParentLink[cur]
		start := n.Eng.Now() + acc
		acc += n.linkDelay(link)
		if !n.crossLink(link, start, pkt) {
			return // repair died on the way up
		}
		cur = n.Tree.Parent[cur]
	}
	// Deliver to meet itself if it is a host (it normally is a router).
	if n.hasHost(meet) {
		n.deliver(meet, n.Eng.Now()+acc, pkt)
	}
	// Flood downward, excluding the uplink we came from (upward direction
	// has no tree children anyway: floodFrom with prev = parent(meet)).
	n.subtreeFlood(meet, acc, pkt)
}

// subtreeFlood delivers pkt to every host strictly below root.
func (n *Net) subtreeFlood(root graph.NodeID, acc float64, pkt Packet) {
	stack := append(n.floodStack[:0], floodFrame{node: root, acc: acc})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, c := range n.Tree.Children[f.node] {
			link := n.Tree.ChildLink[f.node][i]
			start := n.Eng.Now() + f.acc
			d := f.acc + n.linkDelay(link)
			if !n.crossLink(link, start, pkt) {
				continue
			}
			if n.hasHost(c) {
				n.deliver(c, n.Eng.Now()+d, pkt)
			}
			stack = append(stack, floodFrame{node: c, acc: d})
		}
	}
	n.floodStack = stack[:0]
}

// MulticastDescend sends pkt from pkt.From (which must be a tree ancestor
// of sub) down the tree path to router sub and then multicast over sub's
// whole subtree. This models a source-subgroup repair (paper §2.2 /
// reference [4]): "whenever S receives a recovery request, it will
// multicast the packet to all members of the subgroup (using the original
// multicast tree) from where the recovery request came".
func (n *Net) MulticastDescend(sub graph.NodeID, pkt Packet) {
	if !n.Tree.IsAncestor(pkt.From, sub) {
		panic(fmt.Sprintf("sim: %d not an ancestor of subgroup root %d", pkt.From, sub))
	}
	if n.senderDown(pkt) {
		return
	}
	n.noteSend(pkt)
	if n.Queue != nil {
		n.descendQueued(sub, pkt, func() {
			n.upcall(sub, pkt)
			n.subtreeFloodQueued(sub, pkt)
		})
		return
	}
	var acc float64
	cur := sub
	// Collect the downward path by walking up, then cross it top-down.
	var path []graph.NodeID
	for cur != pkt.From {
		path = append(path, cur)
		cur = n.Tree.Parent[cur]
	}
	for i := len(path) - 1; i >= 0; i-- {
		link := n.Tree.ParentLink[path[i]]
		start := n.Eng.Now() + acc
		acc += n.linkDelay(link)
		if !n.crossLink(link, start, pkt) {
			return
		}
	}
	if n.hasHost(sub) {
		n.deliver(sub, n.Eng.Now()+acc, pkt)
	}
	n.subtreeFlood(sub, acc, pkt)
}

// MulticastFromSource floods pkt from the tree root downward — the original
// data transmission. Equivalent to FloodTree from the source but named for
// clarity at call sites.
func (n *Net) MulticastFromSource(pkt Packet) {
	if pkt.From != n.Tree.Root {
		panic("sim: MulticastFromSource from non-root")
	}
	if n.senderDown(pkt) {
		return
	}
	n.noteSend(pkt)
	if n.Queue != nil {
		n.subtreeFloodQueued(n.Tree.Root, pkt)
		return
	}
	n.subtreeFlood(n.Tree.Root, 0, pkt)
}

// WouldArrive returns the loss-free tree-path delay from the source to a
// host — the time a data packet sent now would reach it. Protocol engines
// use it for idealised loss-detection timing (see package protocol).
func (n *Net) WouldArrive(host graph.NodeID) float64 {
	return n.Tree.DelayFromRoot[host]
}
