package sim

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/topology"
)

func TestQueueSerialisesBurst(t *testing.T) {
	// Two packets injected at the same instant on the same path: the
	// second must trail the first by PacketTime per shared link.
	topo, _ := topology.Chain(2, 1, nil) // S—r1—r2—C, 3 links of 1 ms
	r := newRig(t, topo, 1)
	r.net.Queue = NewQueueModel(0.5)
	c := topo.Clients[0]
	var arrivals []float64
	r.net.SetHandler(c, func(Packet) { arrivals = append(arrivals, r.eng.Now()) })
	r.net.Unicast(c, Packet{Kind: Request, From: topo.Source, Seq: 0})
	r.net.Unicast(c, Packet{Kind: Request, From: topo.Source, Seq: 1})
	r.eng.Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	// First: 3 hops, each 0.5 service + 1 prop = 4.5.
	if math.Abs(arrivals[0]-4.5) > 1e-9 {
		t.Fatalf("first arrival %v, want 4.5", arrivals[0])
	}
	// Second: pipeline behind the first — finishes one service time later.
	if math.Abs(arrivals[1]-5.0) > 1e-9 {
		t.Fatalf("second arrival %v, want 5.0", arrivals[1])
	}
}

func TestQueueDirectionsIndependent(t *testing.T) {
	// Opposite directions of one link are independent servers.
	topo, _ := topology.Chain(1, 1, nil) // S—r1—C
	r := newRig(t, topo, 2)
	r.net.Queue = NewQueueModel(1)
	c := topo.Clients[0]
	var toC, toS []float64
	r.net.SetHandler(c, func(Packet) { toC = append(toC, r.eng.Now()) })
	r.net.SetHandler(topo.Source, func(Packet) { toS = append(toS, r.eng.Now()) })
	r.net.Unicast(c, Packet{Kind: Request, From: topo.Source})
	r.net.Unicast(topo.Source, Packet{Kind: Request, From: c})
	r.eng.Run(0)
	// Each crosses 2 links: (1 service + 1 prop) × 2 = 4, no interference.
	if len(toC) != 1 || len(toS) != 1 {
		t.Fatalf("deliveries %d/%d", len(toC), len(toS))
	}
	if math.Abs(toC[0]-4) > 1e-9 || math.Abs(toS[0]-4) > 1e-9 {
		t.Fatalf("arrivals %v/%v, want 4/4 (independent directions)", toC[0], toS[0])
	}
}

func TestQueueFloodSelfCongestion(t *testing.T) {
	// A star hub must serialise one multicast's copies onto each branch —
	// but distinct branches are distinct servers, so a single flood is
	// NOT delayed; two back-to-back floods are.
	topo, _ := topology.Star(3, 1)
	r := newRig(t, topo, 3)
	r.net.Queue = NewQueueModel(0.5)
	counts := map[graph.NodeID][]float64{}
	for _, c := range topo.Clients {
		c := c
		r.net.SetHandler(c, func(Packet) { counts[c] = append(counts[c], r.eng.Now()) })
	}
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: 0})
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source, Seq: 1})
	r.eng.Run(0)
	for c, at := range counts {
		if len(at) != 2 {
			t.Fatalf("client %d got %d packets", c, len(at))
		}
		// Packet 0: 2 hops × (0.5+1) = 3. Packet 1 queues behind it on
		// both links: +0.5 per link... the source link serialises (+0.5),
		// then the branch link serialises again, but propagation overlaps:
		// arrival = 3 + 0.5·? — just assert strict ordering and ≥ 0.5 gap.
		if at[1] < at[0]+0.5-1e-9 {
			t.Fatalf("client %d: second flood not serialised: %v then %v", c, at[0], at[1])
		}
	}
}

func TestQueueBacklogVisibility(t *testing.T) {
	q := NewQueueModel(2)
	dep1 := q.departAfter(0, true, 10)
	if dep1 != 12 {
		t.Fatalf("first departure %v, want 12", dep1)
	}
	dep2 := q.departAfter(0, true, 10)
	if dep2 != 14 {
		t.Fatalf("second departure %v, want 14", dep2)
	}
	if b := q.Backlog(0, true, 10); math.Abs(b-4) > 1e-9 {
		t.Fatalf("backlog %v, want 4", b)
	}
	if b := q.Backlog(0, false, 10); b != 0 {
		t.Fatalf("reverse direction backlog %v, want 0", b)
	}
	if b := q.Backlog(0, true, 20); b != 0 {
		t.Fatalf("past-deadline backlog %v, want 0", b)
	}
}

func TestQueueModelPanicsOnBadServiceTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero packet time accepted")
		}
	}()
	NewQueueModel(0)
}

func TestQueueLossStillApplies(t *testing.T) {
	topo, _ := topology.Chain(1, 1, nil)
	topo.SetUniformLoss(1)
	r := newRig(t, topo, 4)
	r.net.Queue = NewQueueModel(0.5)
	got := r.collect()
	r.net.MulticastFromSource(Packet{Kind: Data, From: topo.Source})
	r.eng.Run(0)
	if len(*got) != 0 {
		t.Fatal("lossy link delivered under queueing")
	}
	if r.net.Drops.Data == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestQueuedFloodTreeFromClient(t *testing.T) {
	// SRM-style flood from a member under queueing: everyone else still
	// gets it, with per-hop service added.
	topo, _ := topology.Binary(2, 1)
	r := newRig(t, topo, 5)
	r.net.Queue = NewQueueModel(0.5)
	got := r.collect()
	u := topo.Clients[0]
	r.net.FloodTree(Packet{Kind: Request, From: u, Seq: 1})
	r.eng.Run(0)
	// All other clients + the source.
	if len(*got) != len(topo.Clients) {
		t.Fatalf("deliveries %d, want %d", len(*got), len(topo.Clients))
	}
	for _, d := range *got {
		// Queued arrival is strictly later than the pure tree delay.
		if d.at <= r.tree.TreeDelay(u, d.node) {
			t.Fatalf("node %d arrival %v not delayed by service time", d.node, d.at)
		}
	}
}

func TestQueuedMulticastSubtree(t *testing.T) {
	topo, _ := topology.Chain(3, 1, []int{2})
	r := newRig(t, topo, 6)
	r.net.Queue = NewQueueModel(0.5)
	got := r.collect()
	tail := topo.Clients[0]
	side := topo.Clients[1]
	meet := r.tree.LCA(tail, side)
	r.net.MulticastSubtree(meet, Packet{Kind: Repair, From: side, Seq: 9})
	r.eng.Run(0)
	if len(*got) != 2 {
		t.Fatalf("deliveries %d, want 2 (side echo + tail)", len(*got))
	}
	for _, d := range *got {
		switch d.node {
		case side:
			// up 1 hop (1.5) + down 1 hop (1.5) = 3 with service.
			if math.Abs(d.at-3) > 1e-9 {
				t.Fatalf("side at %v, want 3", d.at)
			}
		case tail:
			// up 1.5 + down 2 hops (3) = 4.5.
			if math.Abs(d.at-4.5) > 1e-9 {
				t.Fatalf("tail at %v, want 4.5", d.at)
			}
		}
	}
}

func TestQueuedMulticastDescend(t *testing.T) {
	topo, _ := topology.Chain(3, 1, []int{2})
	r := newRig(t, topo, 7)
	r.net.Queue = NewQueueModel(0.5)
	got := r.collect()
	tail := topo.Clients[0]
	side := topo.Clients[1]
	sub := r.tree.LCA(tail, side) // r2
	r.net.MulticastDescend(sub, Packet{Kind: Repair, From: topo.Source, Seq: 2})
	r.eng.Run(0)
	// Subtree of r2 holds side and tail.
	if len(*got) != 2 {
		t.Fatalf("deliveries %d, want 2", len(*got))
	}
	// Descend S→r1→r2 (2 hops, 3.0) then side at +1.5, tail at +3.0.
	for _, d := range *got {
		switch d.node {
		case side:
			if math.Abs(d.at-4.5) > 1e-9 {
				t.Fatalf("side at %v, want 4.5", d.at)
			}
		case tail:
			if math.Abs(d.at-6.0) > 1e-9 {
				t.Fatalf("tail at %v, want 6.0", d.at)
			}
		}
	}
}

func TestQueuedAscendLossKillsRepair(t *testing.T) {
	topo, _ := topology.Chain(3, 1, []int{2})
	tree := mtree.MustBuild(topo)
	tail := topo.Clients[0]
	side := topo.Clients[1]
	// The side client's uplink drops everything.
	topo.Loss[tree.ParentLink[side]] = 1
	r := newRig(t, topo, 8)
	r.net.Queue = NewQueueModel(0.5)
	r.net.ControlLoss = true
	got := r.collect()
	meet := r.tree.LCA(tail, side)
	r.net.MulticastSubtree(meet, Packet{Kind: Repair, From: side, Seq: 3})
	r.eng.Run(0)
	if len(*got) != 0 {
		t.Fatalf("repair should have died on the uplink, got %d deliveries", len(*got))
	}
}
