package topology

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// Transit-stub generation (Zegura/Calvert/Bhattacharjee's GT-ITM model, the
// third standard topology family in multicast simulation literature next to
// flat-random and Waxman): a small core of interconnected *transit* domains
// of fast long-haul routers, with *stub* domains of local routers hanging
// off transit attachment points. Hosts (and hence multicast clients) end up
// concentrated in stubs, giving the two-level locality structure real
// internetworks have — nearby clients share almost their entire path from
// the source, which is exactly the regime where RP's competitive-class
// pruning matters.

// TransitStubParams shapes the hierarchy. Zero values take defaults.
type TransitStubParams struct {
	// TransitDomains is the number of core domains (default 3).
	TransitDomains int
	// TransitSize is the router count per transit domain (default 4).
	TransitSize int
	// StubsPerTransitNode is the number of stub domains attached to each
	// transit router (default 2).
	StubsPerTransitNode int
	// StubSize is the router count per stub domain (default 5).
	StubSize int
	// IntraTransitDelay, InterTransitDelay, TransitStubDelay and
	// IntraStubDelay are the nominal delay ranges (ms) for each link
	// class; realised delays still get the §5.1 U[d,2d] draw.
	IntraTransitDelay [2]float64 // default [4,8]
	InterTransitDelay [2]float64 // default [10,25]
	TransitStubDelay  [2]float64 // default [2,5]
	IntraStubDelay    [2]float64 // default [1,3]
}

func (p *TransitStubParams) defaults() {
	if p.TransitDomains <= 0 {
		p.TransitDomains = 3
	}
	if p.TransitSize <= 0 {
		p.TransitSize = 4
	}
	if p.StubsPerTransitNode <= 0 {
		p.StubsPerTransitNode = 2
	}
	if p.StubSize <= 0 {
		p.StubSize = 5
	}
	def := func(r *[2]float64, lo, hi float64) {
		if (*r)[0] <= 0 || (*r)[1] < (*r)[0] {
			*r = [2]float64{lo, hi}
		}
	}
	def(&p.IntraTransitDelay, 4, 8)
	def(&p.InterTransitDelay, 10, 25)
	def(&p.TransitStubDelay, 2, 5)
	def(&p.IntraStubDelay, 1, 3)
}

// Routers returns the total router count the parameters produce.
func (p TransitStubParams) Routers() int {
	q := p
	q.defaults()
	perTransit := q.TransitSize * (1 + q.StubsPerTransitNode*q.StubSize)
	return q.TransitDomains * perTransit
}

// GenerateTransitStub builds a transit-stub backbone, then applies the
// standard pipeline: a multicast tree over the whole graph, host
// attachment, delays, and uniform loss. The cfg's Routers field is ignored
// (the hierarchy determines the count); its tree/host/loss fields apply.
func GenerateTransitStub(cfg Config, ts TransitStubParams, r *rng.Rand) (*Network, error) {
	ts.defaults()
	cfg.Routers = ts.Routers()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	net := &Network{G: graph.New(0)}
	for i := 0; i < cfg.Routers; i++ {
		net.addNode(Router)
	}

	// connectDomain wires the given routers as a random connected
	// subgraph with one extra chord when large enough.
	connectDomain := func(nodes []graph.NodeID, delay [2]float64) {
		perm := r.Perm(len(nodes))
		for i := 1; i < len(nodes); i++ {
			a := nodes[perm[i]]
			b := nodes[perm[r.Intn(i)]]
			net.addLink(a, b, r.Uniform(delay[0], delay[1]), r)
		}
		if len(nodes) >= 4 {
			a := nodes[r.Intn(len(nodes))]
			b := nodes[r.Intn(len(nodes))]
			if a != b && !net.G.HasEdgeBetween(a, b) {
				net.addLink(a, b, r.Uniform(delay[0], delay[1]), r)
			}
		}
	}

	// Transit domains.
	transit := make([][]graph.NodeID, ts.TransitDomains)
	next := 0
	take := func(n int) []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(next)
			next++
		}
		return out
	}
	for d := range transit {
		transit[d] = take(ts.TransitSize)
		connectDomain(transit[d], ts.IntraTransitDelay)
	}
	// Inter-transit: ring of domains plus one random chord pair each.
	for d := range transit {
		e := (d + 1) % ts.TransitDomains
		if e == d {
			break
		}
		a := transit[d][r.Intn(len(transit[d]))]
		b := transit[e][r.Intn(len(transit[e]))]
		if !net.G.HasEdgeBetween(a, b) {
			net.addLink(a, b, r.Uniform(ts.InterTransitDelay[0], ts.InterTransitDelay[1]), r)
		}
	}

	// Stub domains per transit router.
	for d := range transit {
		for _, tr := range transit[d] {
			for sdom := 0; sdom < ts.StubsPerTransitNode; sdom++ {
				stub := take(ts.StubSize)
				connectDomain(stub, ts.IntraStubDelay)
				gw := stub[r.Intn(len(stub))]
				net.addLink(tr, gw, r.Uniform(ts.TransitStubDelay[0], ts.TransitStubDelay[1]), r)
			}
		}
	}
	if next != cfg.Routers {
		return nil, fmt.Errorf("topology: transit-stub wired %d of %d routers", next, cfg.Routers)
	}

	// Standard pipeline from here: tree, hosts, loss.
	var rootRouter graph.NodeID
	var leaves []graph.NodeID
	switch cfg.Tree {
	case RandomTree:
		rootRouter, leaves = buildRandomTree(net, cfg, r)
	case ShortestPathTree:
		rootRouter, leaves = buildShortestPathTree(net, cfg, r)
	default:
		return nil, fmt.Errorf("topology: unknown tree kind %d", cfg.Tree)
	}
	attachHosts(net, cfg, rootRouter, leaves, r)
	net.SetUniformLoss(cfg.LossProb)
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(net.Clients) == 0 {
		return nil, fmt.Errorf("topology: transit-stub generation produced zero clients")
	}
	return net, nil
}
