package topology

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

func TestGenerateBasicInvariants(t *testing.T) {
	for _, m := range []int{10, 50, 100, 200} {
		cfg := DefaultConfig(m)
		net, err := Generate(cfg, rng.New(uint64(m)))
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		// Host counts: m routers + 1 source + k clients.
		if net.NumNodes() != m+1+len(net.Clients) {
			t.Fatalf("m=%d: node count %d != routers+source+clients", m, net.NumNodes())
		}
		// Tree edge count: spanning tree of routers (m-1) + access links
		// (1 source + k clients).
		want := (m - 1) + 1 + len(net.Clients)
		if len(net.TreeEdges) != want {
			t.Fatalf("m=%d: %d tree edges, want %d", m, len(net.TreeEdges), want)
		}
		if net.Kind[net.Source] != Source {
			t.Fatalf("m=%d: source kind %v", m, net.Kind[net.Source])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(80), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(80), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Delay {
		if a.Delay[i] != b.Delay[i] {
			t.Fatalf("same seed produced different delay on link %d", i)
		}
	}
	if len(a.Clients) != len(b.Clients) {
		t.Fatal("same seed produced different client counts")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(80), rng.New(1))
	b, _ := Generate(DefaultConfig(80), rng.New(2))
	if a.NumLinks() == b.NumLinks() && len(a.Clients) == len(b.Clients) {
		same := true
		for i := range a.Delay {
			if a.Delay[i] != b.Delay[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical networks")
		}
	}
}

func TestGenerateClientFractionPlausible(t *testing.T) {
	// Uniform spanning trees have roughly n/e leaves; the paper's
	// topologies have client fractions 0.28–0.42. Assert we land in a
	// generous band around that.
	var total, clients int
	for seed := uint64(0); seed < 10; seed++ {
		net, err := Generate(DefaultConfig(200), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		total += 200
		clients += len(net.Clients)
	}
	frac := float64(clients) / float64(total)
	if frac < 0.2 || frac > 0.55 {
		t.Fatalf("client fraction %v outside plausible band [0.2,0.55]", frac)
	}
}

func TestGenerateMeanDegree(t *testing.T) {
	cfg := DefaultConfig(300)
	net, err := Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Count only router-router links.
	backboneLinks := 0
	for _, e := range net.G.Edges() {
		if net.Kind[e.A] == Router && net.Kind[e.B] == Router {
			backboneLinks++
		}
	}
	deg := 2 * float64(backboneLinks) / 300
	if deg < 2.5 || deg > 3.5 {
		t.Fatalf("mean backbone degree %v, want ≈3", deg)
	}
}

func TestGenerateNoHosts(t *testing.T) {
	cfg := DefaultConfig(60)
	cfg.AttachHosts = false
	net, err := Generate(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 60 {
		t.Fatalf("no-host mode added nodes: %d", net.NumNodes())
	}
	if len(net.TreeEdges) != 59 {
		t.Fatalf("no-host tree should have 59 edges, got %d", len(net.TreeEdges))
	}
	if net.Kind[net.Source] != Source {
		t.Fatal("source kind not set in no-host mode")
	}
}

func TestGenerateWaxman(t *testing.T) {
	cfg := DefaultConfig(80)
	cfg.Model = Waxman
	net, err := Generate(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.Connected(net.G) {
		t.Fatal("Waxman network disconnected")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Routers: 1, DelayMin: 1, DelayMax: 10, AccessDelay: 1, MeanDegree: 3},
		{Routers: 10, DelayMin: 0, DelayMax: 10, AccessDelay: 1, MeanDegree: 3},
		{Routers: 10, DelayMin: 5, DelayMax: 4, AccessDelay: 1, MeanDegree: 3},
		{Routers: 10, DelayMin: 1, DelayMax: 10, AccessDelay: 0, MeanDegree: 3},
		{Routers: 10, DelayMin: 1, DelayMax: 10, AccessDelay: 1, MeanDegree: 3, LossProb: 1.5},
		{Routers: 10, DelayMin: 1, DelayMax: 10, AccessDelay: 1, MeanDegree: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDelaysWithinNominalBand(t *testing.T) {
	net, err := Generate(DefaultConfig(100), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Delay {
		if net.Delay[i] < net.Nominal[i] || net.Delay[i] > 2*net.Nominal[i] {
			t.Fatalf("link %d delay %v outside [d,2d]", i, net.Delay[i])
		}
	}
}

func TestSetUniformLoss(t *testing.T) {
	net, _ := Generate(DefaultConfig(30), rng.New(1))
	net.SetUniformLoss(0.13)
	for i, p := range net.Loss {
		if p != 0.13 {
			t.Fatalf("link %d loss %v", i, p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range loss did not panic")
		}
	}()
	net.SetUniformLoss(2)
}

func TestBuilderChain(t *testing.T) {
	net, err := Chain(4, 2.0, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// 1 source + 4 routers + 2 clients (tail + attached).
	if net.NumNodes() != 7 {
		t.Fatalf("chain node count %d, want 7", net.NumNodes())
	}
	if len(net.Clients) != 2 {
		t.Fatalf("chain client count %d, want 2", len(net.Clients))
	}
	if len(net.TreeEdges) != net.NumLinks() {
		t.Fatal("all chain links should be tree links")
	}
	for i, d := range net.Delay {
		if d != 2.0 {
			t.Fatalf("link %d delay %v, want exact 2.0", i, d)
		}
	}
}

func TestBuilderChainRejectsBadIndex(t *testing.T) {
	if _, err := Chain(3, 1, []int{4}); err == nil {
		t.Fatal("out-of-range client index accepted")
	}
	if _, err := Chain(0, 1, nil); err == nil {
		t.Fatal("zero-hop chain accepted")
	}
}

func TestBuilderStar(t *testing.T) {
	net, err := Star(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Clients) != 5 || net.NumNodes() != 7 {
		t.Fatalf("star shape wrong: %d clients %d nodes", len(net.Clients), net.NumNodes())
	}
}

func TestBuilderBinary(t *testing.T) {
	net, err := Binary(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// depth 3: routers 1+2+4=7, clients 8, source 1.
	if net.NumNodes() != 16 || len(net.Clients) != 8 {
		t.Fatalf("binary shape wrong: %d nodes %d clients", net.NumNodes(), len(net.Clients))
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSharedSegment(t *testing.T) {
	b := NewBuilder()
	src := b.Source()
	r1 := b.Router()
	b.TreeLink(src, r1, 1)
	c1, c2, c3 := b.Client(), b.Client(), b.Client()
	ghost, edges := b.SharedSegment([]graph.NodeID{r1, c1, c2, c3}, 0.5, true)
	b.SetLoss(edges[1], 0.3) // partial loss: only c1's branch drops
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.Kind[ghost] != Ghost {
		t.Fatal("ghost node kind wrong")
	}
	if len(edges) != 4 {
		t.Fatalf("segment edge count %d", len(edges))
	}
	if net.Loss[edges[1]] != 0.3 || net.Loss[edges[2]] != 0 {
		t.Fatal("per-branch loss not honoured")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Source()
	b.Source() // duplicate
	b.Client()
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate source accepted")
	}

	b2 := NewBuilder()
	b2.Client()
	if _, err := b2.Build(); err == nil {
		t.Fatal("missing source accepted")
	}

	b3 := NewBuilder()
	s := b3.Source()
	c := b3.Client()
	b3.Link(s, c, -1)
	if _, err := b3.Build(); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestBuilderCycleInTreeRejected(t *testing.T) {
	b := NewBuilder()
	s := b.Source()
	r := b.Router()
	c := b.Client()
	b.TreeLink(s, r, 1)
	b.TreeLink(r, c, 1)
	b.TreeLink(c, s, 1) // closes a cycle in the tree
	if _, err := b.Build(); err == nil {
		t.Fatal("cyclic tree accepted")
	}
}

func TestStandardHelper(t *testing.T) {
	net, err := Standard(50, 0.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Loss {
		if p != 0.1 {
			t.Fatal("Standard did not apply loss")
		}
	}
}

func TestNodeKindString(t *testing.T) {
	cases := map[NodeKind]string{Router: "router", Source: "source", Client: "client", Ghost: "ghost", NodeKind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestGenerateShortestPathTree(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Tree = ShortestPathTree
	net, err := Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Client count ≈ ClientFraction·routers.
	want := int(cfg.ClientFraction * 100)
	if len(net.Clients) != want {
		t.Fatalf("SPT clients %d, want %d", len(net.Clients), want)
	}
	// The tree must not span more backbone links than a spanning tree.
	backbone := 0
	for _, id := range net.TreeEdges {
		e := net.G.Edge(id)
		if net.Kind[e.A] == Router && net.Kind[e.B] == Router {
			backbone++
		}
	}
	if backbone > 99 {
		t.Fatalf("SPT uses %d backbone links, more than a spanning tree", backbone)
	}
}

func TestShortestPathTreeIsMinimumDelayPerClient(t *testing.T) {
	cfg := DefaultConfig(60)
	cfg.Tree = ShortestPathTree
	net, err := Generate(cfg, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	// Tree-path delay from the source's router to each attach router must
	// equal the graph's shortest delay (that is the defining property).
	// Build tree adjacency and walk.
	treeAdj := make([][]graph.Half, net.NumNodes())
	for _, id := range net.TreeEdges {
		e := net.G.Edge(id)
		treeAdj[e.A] = append(treeAdj[e.A], graph.Half{Edge: id, Peer: e.B})
		treeAdj[e.B] = append(treeAdj[e.B], graph.Half{Edge: id, Peer: e.A})
	}
	// Source host's router:
	var srcRouter graph.NodeID
	for _, h := range net.G.Neighbors(net.Source) {
		srcRouter = h.Peer
	}
	sp := graph.Dijkstra(net.G, srcRouter, net.DelayWeights())
	// DFS tree distances from srcRouter over tree links only.
	dist := make([]float64, net.NumNodes())
	seen := make([]bool, net.NumNodes())
	stack := []graph.NodeID{srcRouter}
	seen[srcRouter] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range treeAdj[u] {
			if !seen[h.Peer] {
				seen[h.Peer] = true
				dist[h.Peer] = dist[u] + net.Delay[h.Edge]
				stack = append(stack, h.Peer)
			}
		}
	}
	for _, c := range net.Clients {
		// The client's router is its single tree neighbour.
		var router graph.NodeID
		for _, h := range net.G.Neighbors(c) {
			router = h.Peer
		}
		if !seen[router] {
			t.Fatalf("attach router %d not reached via tree", router)
		}
		if diff := dist[router] - sp.Dist[router]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("tree path to %d costs %v, shortest is %v", router, dist[router], sp.Dist[router])
		}
	}
}

func TestShortestPathTreeRejectsBadFraction(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Tree = ShortestPathTree
	cfg.ClientFraction = 0
	if _, err := Generate(cfg, rng.New(1)); err == nil {
		t.Fatal("zero client fraction accepted")
	}
	cfg.ClientFraction = 1.5
	if _, err := Generate(cfg, rng.New(1)); err == nil {
		t.Fatal("fraction above 1 accepted")
	}
}

func TestShortestPathTreeShallowerThanRandom(t *testing.T) {
	// SPT minimises source→client delay, so the mean client depth (in
	// delay) must not exceed the random spanning tree's on the same
	// backbone seed.
	depthSum := func(kind TreeKind) (float64, int) {
		cfg := DefaultConfig(150)
		cfg.Tree = kind
		net := MustGenerate(cfg, rng.New(33))
		treeAdj := make([][]graph.Half, net.NumNodes())
		for _, id := range net.TreeEdges {
			e := net.G.Edge(id)
			treeAdj[e.A] = append(treeAdj[e.A], graph.Half{Edge: id, Peer: e.B})
			treeAdj[e.B] = append(treeAdj[e.B], graph.Half{Edge: id, Peer: e.A})
		}
		dist := make([]float64, net.NumNodes())
		seen := make([]bool, net.NumNodes())
		stack := []graph.NodeID{net.Source}
		seen[net.Source] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range treeAdj[u] {
				if !seen[h.Peer] {
					seen[h.Peer] = true
					dist[h.Peer] = dist[u] + net.Delay[h.Edge]
					stack = append(stack, h.Peer)
				}
			}
		}
		var sum float64
		for _, c := range net.Clients {
			sum += dist[c]
		}
		return sum / float64(len(net.Clients)), len(net.Clients)
	}
	sptDepth, _ := depthSum(ShortestPathTree)
	rstDepth, _ := depthSum(RandomTree)
	if sptDepth >= rstDepth {
		t.Fatalf("SPT mean client delay %v not below random tree %v", sptDepth, rstDepth)
	}
}

// TestConfigMatrixAllValid sweeps the full configuration space coarsely:
// every combination must generate a valid network or reject cleanly.
func TestConfigMatrixAllValid(t *testing.T) {
	seeds := []uint64{1, 2}
	for _, model := range []Model{RandomConnected, Waxman} {
		for _, tree := range []TreeKind{RandomTree, ShortestPathTree} {
			for _, hosts := range []bool{true, false} {
				for _, loss := range []float64{0, 0.05, 0.2} {
					for _, seed := range seeds {
						cfg := DefaultConfig(50)
						cfg.Model = model
						cfg.Tree = tree
						cfg.AttachHosts = hosts
						cfg.LossProb = loss
						net, err := Generate(cfg, rng.New(seed))
						if err != nil {
							t.Fatalf("model=%d tree=%d hosts=%v loss=%v seed=%d: %v",
								model, tree, hosts, loss, seed, err)
						}
						if err := net.Validate(); err != nil {
							t.Fatalf("model=%d tree=%d hosts=%v: %v", model, tree, hosts, err)
						}
						if len(net.Clients) == 0 {
							t.Fatalf("model=%d tree=%d hosts=%v: no clients", model, tree, hosts)
						}
					}
				}
			}
		}
	}
}

func TestTransitStubConfigMatrix(t *testing.T) {
	for _, tree := range []TreeKind{RandomTree, ShortestPathTree} {
		for _, hosts := range []bool{true, false} {
			cfg := DefaultConfig(1)
			cfg.Tree = tree
			cfg.AttachHosts = hosts
			net, err := GenerateTransitStub(cfg, TransitStubParams{
				TransitDomains: 2, TransitSize: 3,
				StubsPerTransitNode: 1, StubSize: 4,
			}, rng.New(9))
			if err != nil {
				t.Fatalf("tree=%d hosts=%v: %v", tree, hosts, err)
			}
			if err := net.Validate(); err != nil {
				t.Fatalf("tree=%d hosts=%v: %v", tree, hosts, err)
			}
		}
	}
}
