package topology

import (
	"testing"

	"rmcast/internal/rng"
)

func TestGenerateTreeShape(t *testing.T) {
	for _, n := range []int{1, 2, 10, 500} {
		net, err := GenerateTree(DefaultTreeConfig(n), rng.New(uint64(n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(net.Clients) != n {
			t.Fatalf("n=%d: got %d clients", n, len(net.Clients))
		}
		// Tree-only: every link is a tree link — the property that makes
		// the batch planner's fast path engage unconditionally.
		if len(net.TreeEdges) != net.NumLinks() {
			t.Fatalf("n=%d: %d tree edges of %d links", n, len(net.TreeEdges), net.NumLinks())
		}
		if net.NumLinks() != net.NumNodes()-1 {
			t.Fatalf("n=%d: %d links for %d nodes, want a tree", n, net.NumLinks(), net.NumNodes())
		}
	}
}

func TestGenerateTreeDeterministic(t *testing.T) {
	a, err := GenerateTree(DefaultTreeConfig(200), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTree(DefaultTreeConfig(200), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Delay {
		if a.Delay[i] != b.Delay[i] {
			t.Fatal("same seed produced different delays")
		}
	}
}

func TestGenerateTreeRejectsBadConfig(t *testing.T) {
	bad := []TreeConfig{
		{Clients: 0, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 0, DelayMin: 1, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 0, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 5, DelayMax: 2, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 0},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 1, LossProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateTree(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
