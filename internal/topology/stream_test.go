package topology

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// recordSink captures a StreamTree emission without building a graph,
// modelling the compact consumers the streaming generator exists for.
type recordSink struct {
	cfg     TreeConfig
	routers int
	kind    []NodeKind
	attach  []graph.NodeID
	nominal []float64
	real    []float64
}

func (s *recordSink) Begin(cfg TreeConfig, routers int) {
	s.cfg, s.routers = cfg, routers
}

func (s *recordSink) Node(id graph.NodeID, kind NodeKind, attach graph.NodeID, nominal, realised float64) {
	if int(id) != len(s.kind) {
		panic("stream out of order")
	}
	s.kind = append(s.kind, kind)
	s.attach = append(s.attach, attach)
	s.nominal = append(s.nominal, nominal)
	s.real = append(s.real, realised)
}

// TestStreamMatchesGenerateTree pins the streamed emission to the
// materialised Network bit for bit: same node kinds, same single link per
// node (edge id = node id − 1), same nominal and realised delays, same rng
// consumption. This is the contract that lets compact sinks replace
// GenerateTree at scale.
func TestStreamMatchesGenerateTree(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 2053} {
		cfg := DefaultTreeConfig(n)
		seed := uint64(40 + n)

		var rec recordSink
		if err := StreamTree(cfg, rng.New(seed), &rec); err != nil {
			t.Fatalf("n=%d: StreamTree: %v", n, err)
		}
		net, err := GenerateTree(cfg, rng.New(seed))
		if err != nil {
			t.Fatalf("n=%d: GenerateTree: %v", n, err)
		}

		if got, want := len(rec.kind), net.NumNodes(); got != want {
			t.Fatalf("n=%d: streamed %d nodes, materialised %d", n, got, want)
		}
		if net.NumLinks() != len(rec.kind)-1 {
			t.Fatalf("n=%d: %d links for %d nodes", n, net.NumLinks(), len(rec.kind))
		}
		for id := 0; id < net.NumNodes(); id++ {
			if rec.kind[id] != net.Kind[id] {
				t.Fatalf("n=%d node %d: kind %v != %v", n, id, rec.kind[id], net.Kind[id])
			}
			if id == 0 {
				if rec.attach[0] != graph.None {
					t.Fatalf("n=%d: router 0 has attach %d", n, rec.attach[0])
				}
				continue
			}
			e := net.G.Edge(graph.EdgeID(id - 1))
			if e.A != graph.NodeID(id) || e.B != rec.attach[id] {
				t.Fatalf("n=%d node %d: edge (%d,%d) != streamed (%d,%d)",
					n, id, e.A, e.B, id, rec.attach[id])
			}
			if rec.nominal[id] != net.Nominal[id-1] || rec.real[id] != net.Delay[id-1] {
				t.Fatalf("n=%d node %d: delays (%v,%v) != (%v,%v)",
					n, id, rec.nominal[id], rec.real[id], net.Nominal[id-1], net.Delay[id-1])
			}
		}

		// Both consumed identical rng state: the next draw must coincide.
		ra, rb := rng.New(seed), rng.New(seed)
		var rec2 recordSink
		if err := StreamTree(cfg, ra, &rec2); err != nil {
			t.Fatal(err)
		}
		if _, err := GenerateTree(cfg, rb); err != nil {
			t.Fatal(err)
		}
		if ra.Float64() != rb.Float64() {
			t.Fatalf("n=%d: rng streams diverge after generation", n)
		}
	}
}

// TestStreamRejectsBadConfig mirrors GenerateTree's validation.
func TestStreamRejectsBadConfig(t *testing.T) {
	bad := []TreeConfig{
		{Clients: 0, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 0, DelayMin: 1, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 0, DelayMax: 10, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 5, DelayMax: 2, AccessDelay: 1},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 0},
		{Clients: 10, ClientsPerRouter: 4, DelayMin: 1, DelayMax: 10, AccessDelay: 1, LossProb: 1.5},
	}
	for i, cfg := range bad {
		var rec recordSink
		if err := StreamTree(cfg, rng.New(1), &rec); err == nil {
			t.Errorf("case %d: StreamTree accepted invalid config %+v", i, cfg)
		}
		if _, err := GenerateTree(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: GenerateTree accepted invalid config %+v", i, cfg)
		}
	}
}
