package topology

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

func TestTransitStubShape(t *testing.T) {
	ts := TransitStubParams{}
	want := ts.Routers() // defaults: 3 × 4 × (1 + 2·5) = 132
	if want != 132 {
		t.Fatalf("default router count %d, want 132", want)
	}
	cfg := DefaultConfig(1) // Routers overridden by the hierarchy
	net, err := GenerateTransitStub(cfg, ts, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	routers := 0
	for _, k := range net.Kind {
		if k == Router {
			routers++
		}
	}
	if routers != want {
		t.Fatalf("routers %d, want %d", routers, want)
	}
	if !graph.Connected(net.G) {
		t.Fatal("transit-stub graph disconnected")
	}
	if len(net.Clients) == 0 {
		t.Fatal("no clients")
	}
}

func TestTransitStubCustomParams(t *testing.T) {
	ts := TransitStubParams{
		TransitDomains:      2,
		TransitSize:         3,
		StubsPerTransitNode: 1,
		StubSize:            4,
	}
	if ts.Routers() != 2*3*(1+4) {
		t.Fatalf("Routers() = %d", ts.Routers())
	}
	net, err := GenerateTransitStub(DefaultConfig(1), ts, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a, err := GenerateTransitStub(DefaultConfig(1), TransitStubParams{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransitStub(DefaultConfig(1), TransitStubParams{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() || len(a.Clients) != len(b.Clients) {
		t.Fatal("same seed diverged")
	}
	for i := range a.Delay {
		if a.Delay[i] != b.Delay[i] {
			t.Fatal("delays diverged")
		}
	}
}

func TestTransitStubDelayClasses(t *testing.T) {
	// The realised delay of every link must respect U[d,2d] over its
	// class's nominal range: no link may exceed 2× the largest nominal
	// (inter-transit hi) and none may fall below the smallest nominal
	// (intra-stub lo).
	ts := TransitStubParams{}
	ts.defaults()
	net, err := GenerateTransitStub(DefaultConfig(1), ts, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range net.Delay {
		if net.Nominal[i] < ts.IntraStubDelay[0] && net.Nominal[i] != DefaultConfig(1).AccessDelay {
			t.Fatalf("link %d nominal %v below every class", i, net.Nominal[i])
		}
		if d > 2*ts.InterTransitDelay[1] {
			t.Fatalf("link %d delay %v beyond inter-transit bound", i, d)
		}
	}
}

func TestTransitStubWithSPTAndProtocols(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Tree = ShortestPathTree
	net, err := GenerateTransitStub(cfg, TransitStubParams{}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Clients) == 0 {
		t.Fatal("SPT transit-stub has no clients")
	}
}
