package topology

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// Builder constructs Networks by hand. It exists for tests, examples, and
// the ghost-node shared-segment modeling of §2.2: scenarios where the random
// generator's topology is the wrong tool because the exact wiring matters.
//
// Links added with TreeLink become part of the multicast tree; Link adds
// off-tree backbone links (available to unicast routing only). Delays given
// to the builder are exact — no U[d,2d] resampling — so expected values in
// tests can be computed by hand.
type Builder struct {
	net *Network
	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{net: &Network{G: graph.New(0), Source: graph.None}}
}

// Router adds a backbone router and returns its ID.
func (b *Builder) Router() graph.NodeID { return b.net.addNode(Router) }

// Source adds the multicast source host. Calling it twice is an error,
// reported by Build.
func (b *Builder) Source() graph.NodeID {
	if b.net.Source != graph.None {
		b.fail("duplicate source")
	}
	id := b.net.addNode(Source)
	b.net.Source = id
	return id
}

// Client adds a group-member host and returns its ID.
func (b *Builder) Client() graph.NodeID {
	id := b.net.addNode(Client)
	b.net.Clients = append(b.net.Clients, id)
	return id
}

// Link adds an off-tree link with the exact given delay (ms).
func (b *Builder) Link(a, c graph.NodeID, delay float64) graph.EdgeID {
	return b.link(a, c, delay)
}

// TreeLink adds a link with the exact given delay and marks it as part of
// the multicast tree.
func (b *Builder) TreeLink(a, c graph.NodeID, delay float64) graph.EdgeID {
	id := b.link(a, c, delay)
	b.net.TreeEdges = append(b.net.TreeEdges, id)
	return id
}

func (b *Builder) link(a, c graph.NodeID, delay float64) graph.EdgeID {
	if delay <= 0 {
		b.fail(fmt.Sprintf("non-positive delay %v on link %d-%d", delay, a, c))
		delay = 1
	}
	id := b.net.G.AddEdge(a, c, delay)
	b.net.Nominal = append(b.net.Nominal, delay)
	b.net.Delay = append(b.net.Delay, delay)
	b.net.Loss = append(b.net.Loss, 0)
	return id
}

// SharedSegment models a shared (broadcast-capable) link joining the given
// members, per the paper's ghost-node construction (§2.2, Figure 2): a
// ghost node is inserted and each member is joined to it by a point-to-point
// link carrying the segment delay. "A shared link acts as a multicast
// capable router making copies of the packet using broadcast capacity.
// Hence the ghost node may be viewed as the shared link itself."
//
// When tree is true the branch links join the multicast tree; the caller
// must ensure this does not close a cycle (Build validates).
// The per-branch loss probability can then be set individually on the
// returned edges to model partial loss on the segment.
func (b *Builder) SharedSegment(members []graph.NodeID, delay float64, tree bool) (graph.NodeID, []graph.EdgeID) {
	if len(members) < 2 {
		b.fail("shared segment needs at least two members")
	}
	ghost := b.net.addNode(Ghost)
	edges := make([]graph.EdgeID, 0, len(members))
	for _, m := range members {
		var id graph.EdgeID
		if tree {
			id = b.TreeLink(ghost, m, delay)
		} else {
			id = b.Link(ghost, m, delay)
		}
		edges = append(edges, id)
	}
	return ghost, edges
}

// SetLoss sets the loss probability of one link.
func (b *Builder) SetLoss(id graph.EdgeID, p float64) {
	if p < 0 || p > 1 {
		b.fail(fmt.Sprintf("loss %v out of [0,1]", p))
		return
	}
	b.net.Loss[id] = p
}

// SetUniformLoss sets every link's loss probability.
func (b *Builder) SetUniformLoss(p float64) {
	for i := range b.net.Loss {
		b.SetLoss(graph.EdgeID(i), p)
	}
}

func (b *Builder) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("topology builder: %s", msg)
	}
}

// Build finalises and validates the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.net.Source == graph.None {
		return nil, fmt.Errorf("topology builder: no source")
	}
	if len(b.net.Clients) == 0 {
		return nil, fmt.Errorf("topology builder: no clients")
	}
	if err := b.net.Validate(); err != nil {
		return nil, err
	}
	return b.net, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Network {
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	return net
}

// Chain builds the simplest interesting test topology: S — r1 — r2 — … —
// rHops — C1, with additional clients attached at the given router indices
// (1-based, counted from the source side). Every link has the given delay
// and the multicast tree is the whole chain plus attachments. Used widely
// in unit tests.
func Chain(hops int, delay float64, clientAt []int) (*Network, error) {
	if hops < 1 {
		return nil, fmt.Errorf("topology: chain needs at least one router")
	}
	b := NewBuilder()
	src := b.Source()
	routers := make([]graph.NodeID, hops)
	prev := src
	for i := 0; i < hops; i++ {
		routers[i] = b.Router()
		b.TreeLink(prev, routers[i], delay)
		prev = routers[i]
	}
	tail := b.Client()
	b.TreeLink(routers[hops-1], tail, delay)
	for _, idx := range clientAt {
		if idx < 1 || idx > hops {
			return nil, fmt.Errorf("topology: client index %d out of [1,%d]", idx, hops)
		}
		c := b.Client()
		b.TreeLink(routers[idx-1], c, delay)
	}
	return b.Build()
}

// Star builds a star topology: the source attached to a hub router with n
// clients hanging off it, every link with the given delay. The degenerate
// case where every client is competitive with every other (all meet at the
// hub).
func Star(n int, delay float64) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: star needs at least one client")
	}
	b := NewBuilder()
	src := b.Source()
	hub := b.Router()
	b.TreeLink(src, hub, delay)
	for i := 0; i < n; i++ {
		b.TreeLink(hub, b.Client(), delay)
	}
	return b.Build()
}

// Binary builds a complete binary multicast tree of the given depth with
// clients at every leaf and the source above the root router. All links
// share the given delay.
func Binary(depth int, delay float64) (*Network, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topology: binary tree needs depth >= 1")
	}
	b := NewBuilder()
	src := b.Source()
	root := b.Router()
	b.TreeLink(src, root, delay)
	level := []graph.NodeID{root}
	for d := 1; d < depth; d++ {
		var next []graph.NodeID
		for _, p := range level {
			l, r := b.Router(), b.Router()
			b.TreeLink(p, l, delay)
			b.TreeLink(p, r, delay)
			next = append(next, l, r)
		}
		level = next
	}
	for _, p := range level {
		b.TreeLink(p, b.Client(), delay)
		b.TreeLink(p, b.Client(), delay)
	}
	return b.Build()
}

// Seeded convenience: generate the paper's standard topology for n routers
// with the given loss and seed. Used by benchmarks, examples and the
// experiment harness.
func Standard(routers int, loss float64, seed uint64) (*Network, error) {
	cfg := DefaultConfig(routers)
	cfg.LossProb = loss
	return Generate(cfg, rng.New(seed))
}
