package topology

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// TreeSink consumes a streamed tree-only topology, one node at a time.
// StreamTree drives it in emission order — node IDs are assigned 0, 1, 2, …
// as nodes are emitted, and every node's attachment point precedes it — so a
// sink can build any representation incrementally without ever holding an
// edge list: the edge accompanying node id is always edge id−1 (router 0,
// the first node, has no edge and gets attach == graph.None).
//
// Attachment is the physical link, not the rooted-tree parent: the multicast
// tree is rooted at the source host, which is emitted after the backbone it
// hangs off, so a sink deriving parent pointers must flip the one edge
// between the source and router 0 (the source becomes router 0's parent).
type TreeSink interface {
	// Begin is called once, before any node, with the validated config and
	// the derived backbone size m; the total node count is m+1+cfg.Clients
	// and the total link count is one less. Sinks use it to presize.
	Begin(cfg TreeConfig, routers int)
	// Node is called once per node: kind classifies it, attach is the node
	// its single link connects to (graph.None only for router 0), and
	// nominal/realised are that link's §5.1 delay pair. Per-link loss is
	// uniform at cfg.LossProb (from Begin).
	Node(id graph.NodeID, kind NodeKind, attach graph.NodeID, nominal, realised float64)
}

// StreamTree generates the scaling tier's tree topology (see GenerateTree)
// as a stream of node emissions, never materialising the graph itself. The
// rng draw sequence is exactly GenerateTree's — per backbone router an
// attachment draw and the two delay draws, one realised-delay draw for the
// source link, and per client an attachment draw plus a realised-delay draw
// — so a materialising sink reproduces GenerateTree bit for bit (GenerateTree
// is itself implemented as such a sink; tests pin the equivalence).
func StreamTree(cfg TreeConfig, r *rng.Rand, sink TreeSink) error {
	if cfg.Clients < 1 {
		return fmt.Errorf("topology: need at least 1 client, got %d", cfg.Clients)
	}
	if cfg.ClientsPerRouter < 1 {
		return fmt.Errorf("topology: clients per router %d below 1", cfg.ClientsPerRouter)
	}
	if cfg.DelayMin <= 0 || cfg.DelayMax < cfg.DelayMin {
		return fmt.Errorf("topology: bad delay range [%v,%v]", cfg.DelayMin, cfg.DelayMax)
	}
	if cfg.AccessDelay <= 0 {
		return fmt.Errorf("topology: non-positive access delay %v", cfg.AccessDelay)
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		return fmt.Errorf("topology: loss probability %v out of [0,1]", cfg.LossProb)
	}

	m := cfg.Clients / cfg.ClientsPerRouter
	if m < 2 {
		m = 2
	}
	sink.Begin(cfg, m)
	sink.Node(0, Router, graph.None, 0, 0)
	// Random recursive tree backbone: router i attaches to a uniform earlier
	// router. Draw order per router matches GenerateTree's addLink call:
	// attachment, nominal delay, realised delay.
	for i := 1; i < m; i++ {
		attach := graph.NodeID(r.Intn(i))
		d := r.Uniform(cfg.DelayMin, cfg.DelayMax)
		sink.Node(graph.NodeID(i), Router, attach, d, r.Uniform(d, 2*d))
	}
	// Source host at the backbone root.
	d := cfg.AccessDelay
	sink.Node(graph.NodeID(m), Source, 0, d, r.Uniform(d, 2*d))
	// Client hosts on uniform routers.
	for i := 0; i < cfg.Clients; i++ {
		attach := graph.NodeID(r.Intn(m))
		sink.Node(graph.NodeID(m+1+i), Client, attach, d, r.Uniform(d, 2*d))
	}
	return nil
}
