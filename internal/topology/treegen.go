package topology

import (
	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// TreeConfig parameterises the tree-only generator used by the large-n
// scaling tier: a random recursive tree backbone with client hosts attached
// uniformly at random, and no chord links at all. Every link is a tree
// link, so the unicast metric coincides with the tree metric and batch
// planning runs on the near-linear aggregated path (see internal/core).
// Random recursive trees have expected depth Θ(log m), matching the shallow
// wide trees of real multicast deployments.
type TreeConfig struct {
	// Clients is the number of client hosts n.
	Clients int
	// ClientsPerRouter sets the backbone size: m = max(2, n/ClientsPerRouter)
	// routers. Default 4.
	ClientsPerRouter int
	// DelayMin/DelayMax bound the nominal backbone link delay (ms), drawn
	// uniformly; the realised delay is then a draw from [d, 2d] as
	// everywhere else (§5.1).
	DelayMin, DelayMax float64
	// AccessDelay is the nominal delay of host access links.
	AccessDelay float64
	// LossProb is the uniform per-link loss probability.
	LossProb float64
}

// DefaultTreeConfig returns the scaling tier's configuration for n clients:
// n/4 routers, backbone delays U[1,10) ms, 1 ms access links, 5% loss.
func DefaultTreeConfig(clients int) TreeConfig {
	return TreeConfig{
		Clients:          clients,
		ClientsPerRouter: 4,
		DelayMin:         1,
		DelayMax:         10,
		AccessDelay:      1,
		LossProb:         0.05,
	}
}

// netSink materialises a StreamTree emission into a full Network. It is the
// sink behind GenerateTree; bespoke sinks (compact tree builders, partition
// planners) can consume the same stream without paying for the edge list.
type netSink struct {
	net *Network
}

func (s *netSink) Begin(cfg TreeConfig, routers int) {
	total := routers + 1 + cfg.Clients
	s.net.Kind = make([]NodeKind, 0, total)
	s.net.Nominal = make([]float64, 0, total-1)
	s.net.Delay = make([]float64, 0, total-1)
	s.net.Loss = make([]float64, 0, total-1)
	s.net.TreeEdges = make([]graph.EdgeID, 0, total-1)
	s.net.Clients = make([]graph.NodeID, 0, cfg.Clients)
}

func (s *netSink) Node(id graph.NodeID, kind NodeKind, attach graph.NodeID, nominal, realised float64) {
	nid := s.net.addNode(kind)
	if nid != id {
		panic("topology: stream emitted out of order")
	}
	switch kind {
	case Source:
		s.net.Source = nid
	case Client:
		s.net.Clients = append(s.net.Clients, nid)
	}
	if attach == graph.None {
		return
	}
	eid := s.net.addLinkRealised(nid, attach, nominal, realised)
	s.net.TreeEdges = append(s.net.TreeEdges, eid)
}

// GenerateTree builds a tree-only Network from cfg using the deterministic
// stream r: a random recursive tree over the routers (router i attaches to
// a uniform earlier router), the source host on router 0 (the tree root),
// and each client host on a uniform router. The whole link set is the
// multicast tree. It is StreamTree feeding a materialising sink.
func GenerateTree(cfg TreeConfig, r *rng.Rand) (*Network, error) {
	net := &Network{G: graph.New(0)}
	if err := StreamTree(cfg, r, &netSink{net: net}); err != nil {
		return nil, err
	}
	net.SetUniformLoss(cfg.LossProb)
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// MustGenerateTree is GenerateTree that panics on error.
func MustGenerateTree(cfg TreeConfig, r *rng.Rand) *Network {
	net, err := GenerateTree(cfg, r)
	if err != nil {
		panic(err)
	}
	return net
}
