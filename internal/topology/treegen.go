package topology

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// TreeConfig parameterises the tree-only generator used by the large-n
// scaling tier: a random recursive tree backbone with client hosts attached
// uniformly at random, and no chord links at all. Every link is a tree
// link, so the unicast metric coincides with the tree metric and batch
// planning runs on the near-linear aggregated path (see internal/core).
// Random recursive trees have expected depth Θ(log m), matching the shallow
// wide trees of real multicast deployments.
type TreeConfig struct {
	// Clients is the number of client hosts n.
	Clients int
	// ClientsPerRouter sets the backbone size: m = max(2, n/ClientsPerRouter)
	// routers. Default 4.
	ClientsPerRouter int
	// DelayMin/DelayMax bound the nominal backbone link delay (ms), drawn
	// uniformly; the realised delay is then a draw from [d, 2d] as
	// everywhere else (§5.1).
	DelayMin, DelayMax float64
	// AccessDelay is the nominal delay of host access links.
	AccessDelay float64
	// LossProb is the uniform per-link loss probability.
	LossProb float64
}

// DefaultTreeConfig returns the scaling tier's configuration for n clients:
// n/4 routers, backbone delays U[1,10) ms, 1 ms access links, 5% loss.
func DefaultTreeConfig(clients int) TreeConfig {
	return TreeConfig{
		Clients:          clients,
		ClientsPerRouter: 4,
		DelayMin:         1,
		DelayMax:         10,
		AccessDelay:      1,
		LossProb:         0.05,
	}
}

// GenerateTree builds a tree-only Network from cfg using the deterministic
// stream r: a random recursive tree over the routers (router i attaches to
// a uniform earlier router), the source host on router 0 (the tree root),
// and each client host on a uniform router. The whole link set is the
// multicast tree.
func GenerateTree(cfg TreeConfig, r *rng.Rand) (*Network, error) {
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("topology: need at least 1 client, got %d", cfg.Clients)
	}
	if cfg.ClientsPerRouter < 1 {
		return nil, fmt.Errorf("topology: clients per router %d below 1", cfg.ClientsPerRouter)
	}
	if cfg.DelayMin <= 0 || cfg.DelayMax < cfg.DelayMin {
		return nil, fmt.Errorf("topology: bad delay range [%v,%v]", cfg.DelayMin, cfg.DelayMax)
	}
	if cfg.AccessDelay <= 0 {
		return nil, fmt.Errorf("topology: non-positive access delay %v", cfg.AccessDelay)
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		return nil, fmt.Errorf("topology: loss probability %v out of [0,1]", cfg.LossProb)
	}

	m := cfg.Clients / cfg.ClientsPerRouter
	if m < 2 {
		m = 2
	}
	net := &Network{G: graph.New(0)}
	for i := 0; i < m; i++ {
		net.addNode(Router)
	}
	// Random recursive tree backbone: connected, m−1 links, depth Θ(log m).
	for i := 1; i < m; i++ {
		id := net.addLink(graph.NodeID(i), graph.NodeID(r.Intn(i)),
			r.Uniform(cfg.DelayMin, cfg.DelayMax), r)
		net.TreeEdges = append(net.TreeEdges, id)
	}
	// Source host at the backbone root.
	src := net.addNode(Source)
	net.Source = src
	net.TreeEdges = append(net.TreeEdges, net.addLink(src, 0, cfg.AccessDelay, r))
	// Client hosts on uniform routers (several per router at scale).
	for i := 0; i < cfg.Clients; i++ {
		c := net.addNode(Client)
		net.TreeEdges = append(net.TreeEdges,
			net.addLink(c, graph.NodeID(r.Intn(m)), cfg.AccessDelay, r))
		net.Clients = append(net.Clients, c)
	}

	net.SetUniformLoss(cfg.LossProb)
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// MustGenerateTree is GenerateTree that panics on error.
func MustGenerateTree(cfg TreeConfig, r *rng.Rand) *Network {
	net, err := GenerateTree(cfg, r)
	if err != nil {
		panic(err)
	}
	return net
}
