// Package topology models the physical network of the paper (§2.1, §5.1):
// a backbone of multicast-capable routers connected by point-to-point links,
// with the multicast source and the clients attached as hosts, and a
// multicast tree chosen as a random spanning subtree of the backbone.
//
// Per-link attributes follow §5.1 exactly: every link i has a nominal
// ("typical") delay d(i), and the delay actually used by the simulation is a
// single uniform draw from [d(i), 2d(i)]. Loss probability is an independent
// per-link Bernoulli parameter, uniform across the network in the paper's
// experiments but stored per link here so shared-segment (ghost node, §2.2)
// and heterogeneous-loss scenarios can be expressed.
package topology

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
)

// NodeKind classifies the nodes of a Network.
type NodeKind uint8

const (
	// Router is a multicast-capable backbone router. Routers forward but do
	// not buffer data packets (paper §2.2), so they never answer recovery
	// requests.
	Router NodeKind = iota
	// Source is the multicast source host (the root of the tree).
	Source
	// Client is a group-member host (a leaf of the multicast tree).
	Client
	// Ghost is a synthetic node standing in for a shared (broadcast) link,
	// per the paper's ghost-node transform (§2.2, Figure 2).
	Ghost
)

// String returns a short human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case Router:
		return "router"
	case Source:
		return "source"
	case Client:
		return "client"
	case Ghost:
		return "ghost"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Network is a generated physical topology plus the chosen multicast tree.
type Network struct {
	// G holds nodes (routers, hosts, ghosts) and undirected links.
	G *graph.Undirected
	// Kind classifies each node; indexed by NodeID.
	Kind []NodeKind
	// Nominal is the per-link "typical" delay d(i) in milliseconds.
	Nominal []float64
	// Delay is the per-link delay used by routing and simulation: one draw
	// from U[d(i), 2d(i)] (§5.1). Indexed by EdgeID.
	Delay []float64
	// Loss is the per-link, per-packet loss probability. Indexed by EdgeID.
	Loss []float64
	// Source is the multicast source node.
	Source graph.NodeID
	// Clients lists the group-member nodes, ascending by NodeID.
	Clients []graph.NodeID
	// TreeEdges is the multicast tree: a subset of G's edges spanning the
	// source, every client, and the routers between them.
	TreeEdges []graph.EdgeID
}

// NumNodes returns the node count of the underlying graph.
func (n *Network) NumNodes() int { return n.G.NumNodes() }

// NumLinks returns the link count of the underlying graph.
func (n *Network) NumLinks() int { return n.G.NumEdges() }

// IsClient reports whether id is a group member.
func (n *Network) IsClient(id graph.NodeID) bool { return n.Kind[id] == Client }

// DelayWeights returns a graph.WeightFunc reading the per-link delay, for
// use with Dijkstra-based routing (§3.1: "the routing table will give an
// estimate of one-way delay").
func (n *Network) DelayWeights() graph.WeightFunc {
	return func(id graph.EdgeID) float64 { return n.Delay[id] }
}

// SetUniformLoss sets every link's loss probability to p.
func (n *Network) SetUniformLoss(p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("topology: loss probability %v out of [0,1]", p))
	}
	for i := range n.Loss {
		n.Loss[i] = p
	}
}

// addLink appends a link with nominal delay d, sampling its realised delay
// from U[d, 2d] using r, and returns its EdgeID.
func (n *Network) addLink(a, b graph.NodeID, d float64, r *rng.Rand) graph.EdgeID {
	return n.addLinkRealised(a, b, d, r.Uniform(d, 2*d))
}

// addLinkRealised appends a link whose realised delay was already drawn (the
// streaming generator draws it before handing the node to its sink).
func (n *Network) addLinkRealised(a, b graph.NodeID, d, realised float64) graph.EdgeID {
	id := n.G.AddEdge(a, b, realised)
	n.Nominal = append(n.Nominal, d)
	n.Delay = append(n.Delay, realised)
	n.Loss = append(n.Loss, 0)
	return id
}

// addNode appends a node of the given kind and returns its ID.
func (n *Network) addNode(k NodeKind) graph.NodeID {
	id := n.G.AddNode()
	n.Kind = append(n.Kind, k)
	return id
}

// Validate checks the structural invariants of a Network and returns a
// descriptive error for the first violation found. It is cheap enough to
// run after every generation and in tests.
func (n *Network) Validate() error {
	if len(n.Kind) != n.G.NumNodes() {
		return fmt.Errorf("topology: %d kinds for %d nodes", len(n.Kind), n.G.NumNodes())
	}
	if len(n.Nominal) != n.G.NumEdges() || len(n.Delay) != n.G.NumEdges() || len(n.Loss) != n.G.NumEdges() {
		return fmt.Errorf("topology: link attribute length mismatch")
	}
	for i := range n.Delay {
		if n.Delay[i] < n.Nominal[i] || n.Delay[i] > 2*n.Nominal[i] {
			return fmt.Errorf("topology: link %d delay %v outside [d,2d]=[%v,%v]",
				i, n.Delay[i], n.Nominal[i], 2*n.Nominal[i])
		}
		if n.Loss[i] < 0 || n.Loss[i] > 1 {
			return fmt.Errorf("topology: link %d loss %v outside [0,1]", i, n.Loss[i])
		}
	}
	if n.Source < 0 || int(n.Source) >= n.G.NumNodes() || n.Kind[n.Source] != Source {
		return fmt.Errorf("topology: bad source node %d", n.Source)
	}
	for _, c := range n.Clients {
		if n.Kind[c] != Client {
			return fmt.Errorf("topology: node %d listed as client but has kind %v", c, n.Kind[c])
		}
	}
	if !graph.Connected(n.G) {
		return fmt.Errorf("topology: graph is disconnected")
	}
	// The tree edge set must be acyclic and must connect source and clients.
	uf := graph.NewUnionFind(n.G.NumNodes())
	for _, id := range n.TreeEdges {
		e := n.G.Edge(id)
		if !uf.Union(int32(e.A), int32(e.B)) {
			return fmt.Errorf("topology: tree edge %d closes a cycle", id)
		}
	}
	root := uf.Find(int32(n.Source))
	for _, c := range n.Clients {
		if uf.Find(int32(c)) != root {
			return fmt.Errorf("topology: client %d not connected to source by the tree", c)
		}
	}
	return nil
}
