package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/100 times", same)
	}
}

func TestZeroSeedNonDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.State() == c2.State() {
		t.Fatal("successive Split calls produced identical child states")
	}
	// Children must be deterministic functions of the parent.
	parent2 := New(7)
	d1 := parent2.Split()
	if c1.State() != d1.State() {
		t.Fatal("Split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(9)
	const buckets = 10
	const draws = 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %v", i, c, want)
		}
	}
}

func TestUniform(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Uniform(2.5,7.5) = %v out of range", v)
		}
	}
	// Degenerate interval returns lo.
	if v := r.Uniform(3, 3); v != 3 {
		t.Fatalf("Uniform(3,3) = %v, want 3", v)
	}
}

func TestBoolClamps(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.2) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("Bool(0.2) frequency %v, want ~0.2", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	const lambda = 2.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(lambda)
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("ExpFloat64 mean %v, want ~%v", mean, 1/lambda)
	}
}

func TestExpFloat64PanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpFloat64(0) did not panic")
		}
	}()
	New(1).ExpFloat64(0)
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestSplitNMatchesRepeatedSplit(t *testing.T) {
	a, b := New(99), New(99)
	streams := a.SplitN(8)
	for i, s := range streams {
		want := b.Split()
		for j := 0; j < 16; j++ {
			if got, w := s.Uint64(), want.Uint64(); got != w {
				t.Fatalf("SplitN stream %d draw %d = %d, Split gives %d", i, j, got, w)
			}
		}
	}
	// Parents must end in the same state.
	if a.State() != b.State() {
		t.Fatal("SplitN advanced the parent differently from repeated Split")
	}
}

func TestSplitNStreamsDistinct(t *testing.T) {
	streams := New(7).SplitN(32)
	seen := make(map[uint64]int)
	for i, s := range streams {
		v := s.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share first draw %d", i, j, v)
		}
		seen[v] = i
	}
}
