// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a
// simulation run is fully determined by its seed, so every stochastic
// component (topology generation, link delays, per-packet loss draws,
// protocol timers) draws from an rng.Rand seeded from the experiment
// configuration. Independent streams are derived with Split, which uses a
// splitmix64 finalizer so that derived streams are statistically independent
// of the parent and of each other.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 as its authors recommend. It is not safe for concurrent use;
// callers that need parallelism should Split one stream per goroutine.
package rng

import "math"

// Rand is a deterministic xoshiro256++ PRNG stream.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// for seeding and stream splitting only.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed, including zero, yields
// a valid, non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a new, statistically independent stream from r. The parent
// stream advances by one step, so repeated Split calls yield distinct
// children, and the derivation is itself deterministic.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// SplitN derives n independent streams from r in one call — the fan-out
// primitive for parallel workers: split once per work item in a fixed
// order, hand stream i to item i, and results are independent of which
// goroutine runs which item. Equivalent to calling Split n times.
func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method, which avoids the modulo bias of naive reduction.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling over the top of the range.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p. Probabilities outside [0,1] are
// clamped, so Bool(1.1) is always true and Bool(-0.1) always false.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates, back-to-front).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate lambda
// (mean 1/lambda), via inverse-transform sampling. It panics if lambda <= 0.
func (r *Rand) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: ExpFloat64 called with non-positive rate")
	}
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / lambda
}

// State returns a copy of the internal state, for snapshotting in tests.
func (r *Rand) State() [4]uint64 { return r.s }
