package viz

import (
	"fmt"
	"math"

	"rmcast/internal/experiment"
)

// protocol line colours, cycled.
var lineColors = []string{"#d62728", "#9467bd", "#2ca02c", "#1f77b4", "#ff7f0e", "#8c564b"}

// FigureSVG renders an experiment figure as an SVG line chart with axes,
// ticks, and a legend — the visual counterpart of Figure.Format/Chart.
func FigureSVG(f *experiment.Figure, w, h float64) *Canvas {
	c := NewCanvas(w, h)
	c.Title(f.Name)
	const (
		padL = 56.0
		padR = 14.0
		padT = 28.0
		padB = 44.0
	)
	plotW := w - padL - padR
	plotH := h - padT - padB

	c.Text(w/2, 16, 12, "#222", "middle", f.Name)

	if len(f.Rows) == 0 {
		c.Text(w/2, h/2, 12, "#999", "middle", "(no data)")
		return c
	}

	// Ranges.
	xLo, xHi := f.Rows[0].X, f.Rows[0].X
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, row := range f.Rows {
		if row.X < xLo {
			xLo = row.X
		}
		if row.X > xHi {
			xHi = row.X
		}
		for _, p := range f.Protocols {
			v := f.Value(row.Points[p])
			if v < yLo {
				yLo = v
			}
			if v > yHi {
				yHi = v
			}
		}
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	yLo = 0 // figures are magnitudes; anchor at zero like the paper's plots
	if yHi <= yLo {
		yHi = yLo + 1
	}
	yHi *= 1.08

	px := func(x float64) float64 { return padL + plotW*(x-xLo)/(xHi-xLo) }
	py := func(y float64) float64 { return padT + plotH*(1-(y-yLo)/(yHi-yLo)) }

	// Axes.
	c.Line(padL, padT, padL, padT+plotH, "#333", 1)
	c.Line(padL, padT+plotH, padL+plotW, padT+plotH, "#333", 1)
	// Y ticks (5).
	for i := 0; i <= 5; i++ {
		v := yLo + (yHi-yLo)*float64(i)/5
		y := py(v)
		c.Line(padL-3, y, padL, y, "#333", 1)
		c.Line(padL, y, padL+plotW, y, "#eee", 0.6)
		c.Text(padL-6, y+3, 9, "#333", "end", fmt.Sprintf("%.0f", v))
	}
	// X ticks: one per row.
	for _, row := range f.Rows {
		x := px(row.X)
		c.Line(x, padT+plotH, x, padT+plotH+3, "#333", 1)
		c.Text(x, padT+plotH+14, 9, "#333", "middle", fmt.Sprintf("%g", row.X))
	}
	c.Text(padL+plotW/2, h-8, 10, "#333", "middle", f.XLabel)
	c.Text(12, padT-8, 10, "#333", "start", f.YLabel)

	// Series.
	for pi, p := range f.Protocols {
		col := lineColors[pi%len(lineColors)]
		var pts [][2]float64
		for _, row := range f.Rows {
			pts = append(pts, [2]float64{px(row.X), py(f.Value(row.Points[p]))})
		}
		c.Polyline(pts, col, 1.8)
		for _, pt := range pts {
			c.Circle(pt[0], pt[1], 2.4, col)
		}
		// Legend entry.
		lx := padL + 8 + float64(pi)*90
		c.Rect(lx, padT+4, 10, 3, col)
		c.Text(lx+14, padT+9, 9, "#333", "start", p)
	}
	return c
}
