package viz

import (
	"fmt"

	"rmcast/internal/core"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/topology"
)

// Node colours by kind, plus tree/backbone link styles.
const (
	colSource  = "#d62728"
	colClient  = "#1f77b4"
	colRouter  = "#9e9e9e"
	colGhost   = "#555555"
	colTree    = "#2ca02c"
	colOffTree = "#dddddd"
	colOverlay = "#ff7f0e"
)

// TreeLayout computes deterministic positions for a multicast tree: nodes
// are layered by tree depth (y) and ordered by the preorder position of
// their subtree's leaves (x), the classic tidy-tree arrangement. Off-tree
// nodes are parked on the right margin.
func TreeLayout(t *mtree.Tree, w, h float64) map[graph.NodeID][2]float64 {
	pos := make(map[graph.NodeID][2]float64, t.Net.NumNodes())

	maxDepth := int32(1)
	for _, d := range t.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	// Leaf x-slots in preorder.
	var leaves []graph.NodeID
	for _, v := range t.Order {
		if len(t.Children[v]) == 0 {
			leaves = append(leaves, v)
		}
	}
	margin := 30.0
	xs := make(map[graph.NodeID]float64, len(t.Order))
	span := w - 2*margin
	if len(leaves) == 1 {
		xs[leaves[0]] = w / 2
	} else {
		for i, l := range leaves {
			xs[l] = margin + span*float64(i)/float64(len(leaves)-1)
		}
	}
	// Internal nodes: midpoint of their children (post-order).
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		if len(t.Children[v]) == 0 {
			continue
		}
		var sum float64
		for _, ch := range t.Children[v] {
			sum += xs[ch]
		}
		xs[v] = sum / float64(len(t.Children[v]))
	}
	for _, v := range t.Order {
		y := margin + (h-2*margin)*float64(t.Depth[v])/float64(maxDepth)
		pos[v] = [2]float64{xs[v], y}
	}
	// Off-tree nodes on the right margin, stacked.
	off := 0
	for v := 0; v < t.Net.NumNodes(); v++ {
		if !t.InTree[graph.NodeID(v)] {
			pos[graph.NodeID(v)] = [2]float64{w - margin/2, margin + float64(off)*12}
			off++
		}
	}
	return pos
}

// Topology renders a network with its multicast tree highlighted. When
// strategies is non-nil, each client's first-choice peer is drawn as an
// orange overlay arc (the "who asks whom first" picture of the paper's RP
// lists).
func Topology(net *topology.Network, strategies map[graph.NodeID]*core.Strategy, w, h float64) (*Canvas, error) {
	t, err := mtree.Build(net)
	if err != nil {
		return nil, err
	}
	c := NewCanvas(w, h)
	c.Title(fmt.Sprintf("rmcast topology: %d nodes, %d clients", net.NumNodes(), len(net.Clients)))
	pos := TreeLayout(t, w, h)

	inTree := make(map[graph.EdgeID]bool, len(net.TreeEdges))
	for _, id := range net.TreeEdges {
		inTree[id] = true
	}
	// Off-tree links first (underneath).
	for id, e := range net.G.Edges() {
		if inTree[graph.EdgeID(id)] {
			continue
		}
		a, b := pos[e.A], pos[e.B]
		c.Line(a[0], a[1], b[0], b[1], colOffTree, 0.7)
	}
	for id, e := range net.G.Edges() {
		if !inTree[graph.EdgeID(id)] {
			continue
		}
		a, b := pos[e.A], pos[e.B]
		c.Line(a[0], a[1], b[0], b[1], colTree, 1.6)
	}
	// Strategy overlay: client → first peer.
	if strategies != nil {
		for u, st := range strategies {
			if len(st.Peers) == 0 {
				continue
			}
			a, b := pos[u], pos[st.Peers[0].Peer]
			c.Line(a[0], a[1], b[0], b[1], colOverlay, 1.0)
		}
	}
	for v := 0; v < net.NumNodes(); v++ {
		p := pos[graph.NodeID(v)]
		switch net.Kind[v] {
		case topology.Source:
			c.Circle(p[0], p[1], 6, colSource)
		case topology.Client:
			c.Circle(p[0], p[1], 4, colClient)
		case topology.Ghost:
			c.Circle(p[0], p[1], 2, colGhost)
		default:
			c.Circle(p[0], p[1], 2.2, colRouter)
		}
	}
	c.Text(8, 14, 11, "#333", "start",
		fmt.Sprintf("source=red, clients=blue, tree=green%s",
			map[bool]string{true: ", first-choice peer=orange", false: ""}[strategies != nil]))
	return c, nil
}
