// Package viz renders topologies and experiment figures as standalone SVG
// documents using only the standard library. It exists so the repository's
// artifacts — multicast trees, strategy overlays, and the reproduced paper
// figures — can be inspected visually without any plotting stack:
//
//	topogen -format svg > topo.svg
//	figures -svg figures.svg
//
// Output is deterministic for a given input, and tests validate it by
// parsing the XML and counting shapes.
package viz

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Canvas accumulates SVG elements.
type Canvas struct {
	W, H  float64
	elems []string
}

// NewCanvas returns an empty canvas of the given pixel size.
func NewCanvas(w, h float64) *Canvas {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("viz: non-positive canvas %vx%v", w, h))
	}
	return &Canvas{W: w, H: h}
}

func esc(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Line draws a line segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, esc(stroke), width))
}

// Circle draws a filled circle.
func (c *Canvas) Circle(x, y, r float64, fill string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`, x, y, r, esc(fill)))
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`,
		x, y, w, h, esc(fill)))
}

// Text draws a text label anchored at (x, y).
func (c *Canvas) Text(x, y float64, size float64, fill, anchor, s string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s" text-anchor="%s" font-family="sans-serif">%s</text>`,
		x, y, size, esc(fill), esc(anchor), esc(s)))
}

// Polyline draws a connected series of points.
func (c *Canvas) Polyline(pts [][2]float64, stroke string, width float64) {
	if len(pts) == 0 {
		return
	}
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", p[0], p[1])
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`,
		b.String(), esc(stroke), width))
}

// Title sets the document title (first element).
func (c *Canvas) Title(s string) {
	c.elems = append([]string{fmt.Sprintf(`<title>%s</title>`, esc(s))}, c.elems...)
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		c.W, c.H, c.W, c.H)
	b.WriteString("\n")
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	b.WriteString("\n")
	for _, e := range c.elems {
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Elements returns the number of drawn elements (testing).
func (c *Canvas) Elements() int { return len(c.elems) }
