package viz

import (
	"fmt"
	"math"

	"rmcast/internal/core"
	"rmcast/internal/graph"
)

// StrategyGraphSVG renders the paper's Definition-1 DAG for one client:
// u on the left, the candidates in descending-DS order, S on the right,
// with every arc weight annotated and the optimal path (Algorithm 1)
// highlighted. This is the picture the paper's Example 5 describes.
func StrategyGraphSVG(sg *core.StrategyGraph, w, h float64) *Canvas {
	c := NewCanvas(w, h)
	n := len(sg.Candidates)
	c.Title(fmt.Sprintf("strategy graph for client %d (%d candidates)", sg.Client, n))
	c.Text(w/2, 16, 12, "#222", "middle",
		fmt.Sprintf("strategy graph: client %d, DS_u=%d, %d candidates",
			sg.Client, sg.ClientDepth, n))

	// Node positions: a row, u..v1..vN..S.
	total := n + 2
	margin := 50.0
	y := h * 0.62
	xOf := func(i int) float64 {
		if total == 1 {
			return w / 2
		}
		return margin + (w-2*margin)*float64(i)/float64(total-1)
	}

	// Optimal path for highlighting.
	opt := sg.Algorithm1()
	onPath := map[[2]int]bool{}
	prev := 0
	for _, p := range opt.Peers {
		for i, cand := range sg.Candidates {
			if cand.Peer == p.Peer && cand.DS == p.DS {
				onPath[[2]int{prev, i + 1}] = true
				prev = i + 1
				break
			}
		}
	}
	onPath[[2]int{prev, n + 1}] = true

	// Arcs as elliptical-ish arcs approximated by 3-point polylines above
	// the node row; height scales with span.
	d := sg.Digraph()
	for from := 0; from < total; from++ {
		for _, a := range d.Out(graph.NodeID(from)) {
			to := int(a.To)
			x1, x2 := xOf(from), xOf(to)
			span := math.Abs(x2 - x1)
			peak := y - 14 - span*0.22
			mid := (x1 + x2) / 2
			col, width := "#bbbbbb", 1.0
			if onPath[[2]int{from, to}] {
				col, width = "#d62728", 2.2
			}
			c.Polyline([][2]float64{{x1, y - 6}, {mid, peak}, {x2, y - 6}}, col, width)
			c.Text(mid, peak-3, 8, col, "middle", fmt.Sprintf("%.1f", a.W))
		}
	}

	// Nodes.
	for i := 0; i < total; i++ {
		x := xOf(i)
		var label, col string
		switch {
		case i == 0:
			label, col = "u", "#1f77b4"
		case i == total-1:
			label, col = "S", "#d62728"
		default:
			cand := sg.Candidates[i-1]
			label = fmt.Sprintf("v%d", i)
			col = "#2ca02c"
			c.Text(x, y+26, 8, "#555", "middle",
				fmt.Sprintf("peer %d", cand.Peer))
			c.Text(x, y+36, 8, "#555", "middle",
				fmt.Sprintf("DS=%d rtt=%.1f", cand.DS, cand.RTT))
		}
		c.Circle(x, y, 8, col)
		c.Text(x, y+3, 9, "white", "middle", label)
	}
	c.Text(w/2, h-10, 10, "#333", "middle",
		fmt.Sprintf("optimal path highlighted: E[delay]=%.2f ms (direct source: %.2f ms)",
			opt.ExpectedDelay, sg.SourceRTT))
	return c
}
