package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"rmcast/internal/core"
	"rmcast/internal/experiment"
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// parseSVG validates well-formed XML and counts element names.
func parseSVG(t *testing.T, b []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(b))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(100, 50)
	c.Line(0, 0, 10, 10, "red", 1)
	c.Circle(5, 5, 2, "blue")
	c.Rect(1, 1, 3, 3, "#000")
	c.Text(2, 2, 9, "#333", "middle", `label <&> "quoted"`)
	c.Polyline([][2]float64{{0, 0}, {1, 2}, {3, 4}}, "green", 1)
	c.Polyline(nil, "green", 1) // no-op
	c.Title("t&t")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["svg"] != 1 || counts["line"] != 1 || counts["circle"] != 1 ||
		counts["text"] != 1 || counts["polyline"] != 1 || counts["title"] != 1 {
		t.Fatalf("element counts wrong: %v", counts)
	}
	if !strings.Contains(buf.String(), "&amp;") {
		t.Fatal("special characters not escaped")
	}
	if c.Elements() != 6 {
		t.Fatalf("Elements() = %d, want 6", c.Elements())
	}
}

func TestCanvasRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size canvas accepted")
		}
	}()
	NewCanvas(0, 10)
}

func TestTreeLayoutProperties(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(3))
	tr := mtree.MustBuild(net)
	pos := TreeLayout(tr, 800, 600)
	if len(pos) != net.NumNodes() {
		t.Fatalf("positions for %d nodes, want %d", len(pos), net.NumNodes())
	}
	// Children sit strictly below their parents; all positions in-canvas.
	for _, v := range tr.Order {
		p := pos[v]
		if p[0] < 0 || p[0] > 800 || p[1] < 0 || p[1] > 600 {
			t.Fatalf("node %d out of canvas: %v", v, p)
		}
		if par := tr.Parent[v]; par != graph.None {
			if pos[par][1] >= p[1] {
				t.Fatalf("parent %d not above child %d", par, v)
			}
		}
	}
	// Distinct leaves occupy distinct x slots.
	seen := map[float64]bool{}
	for _, v := range tr.Order {
		if len(tr.Children[v]) == 0 {
			if seen[pos[v][0]] {
				t.Fatalf("leaf x collision at %v", pos[v][0])
			}
			seen[pos[v][0]] = true
		}
	}
}

func TestTopologySVG(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(60), rng.New(7))
	tr := mtree.MustBuild(net)
	p := core.NewPlanner(tr, route.Build(net))
	c, err := Topology(net, p.All(), 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["circle"] != net.NumNodes() {
		t.Fatalf("circles %d != nodes %d", counts["circle"], net.NumNodes())
	}
	// Lines: every link once, plus one overlay per client with peers.
	withPeers := 0
	for _, st := range p.All() {
		if len(st.Peers) > 0 {
			withPeers++
		}
	}
	if counts["line"] != net.NumLinks()+withPeers {
		t.Fatalf("lines %d != links %d + overlays %d",
			counts["line"], net.NumLinks(), withPeers)
	}
}

func TestTopologySVGWithoutStrategies(t *testing.T) {
	net, err := topology.Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Topology(net, nil, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["line"] != net.NumLinks() {
		t.Fatalf("lines %d != links %d", counts["line"], net.NumLinks())
	}
}

func TestFigureSVG(t *testing.T) {
	f := &experiment.Figure{
		Name:      "Figure X",
		XLabel:    "loss",
		YLabel:    "ms",
		Metric:    "latency",
		Protocols: []string{"SRM", "RMA", "RP"},
	}
	for i := 1; i <= 6; i++ {
		f.Rows = append(f.Rows, experiment.Row{
			X: float64(i),
			Points: map[string]experiment.Point{
				"SRM": {Latency: 100 + float64(i)},
				"RMA": {Latency: 90},
				"RP":  {Latency: 40},
			},
		})
	}
	c := FigureSVG(f, 640, 400)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["polyline"] != 3 {
		t.Fatalf("polylines %d, want 3 series", counts["polyline"])
	}
	// One dot per (row, protocol): 18 circles.
	if counts["circle"] != 18 {
		t.Fatalf("circles %d, want 18", counts["circle"])
	}
	if !strings.Contains(buf.String(), "Figure X") {
		t.Fatal("figure title missing")
	}
	// Empty figure renders placeholder without crashing.
	empty := &experiment.Figure{Name: "E", Protocols: []string{"RP"}}
	c2 := FigureSVG(empty, 200, 100)
	buf.Reset()
	if _, err := c2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parseSVG(t, buf.Bytes())
}

func TestStrategyGraphSVG(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(60), rng.New(9))
	tr := mtree.MustBuild(net)
	p := core.NewPlanner(tr, route.Build(net))
	// Pick a client with at least one candidate for an interesting graph.
	var sg *core.StrategyGraph
	for _, c := range net.Clients {
		g := p.BuildStrategyGraph(c)
		if len(g.Candidates) >= 2 {
			sg = g
			break
		}
	}
	if sg == nil {
		t.Skip("no client with 2+ candidates on this seed")
	}
	cv := StrategyGraphSVG(sg, 900, 320)
	var buf bytes.Buffer
	if _, err := cv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	// One circle per DAG node.
	if counts["circle"] != len(sg.Candidates)+2 {
		t.Fatalf("circles %d, want %d", counts["circle"], len(sg.Candidates)+2)
	}
	// One polyline per arc.
	if counts["polyline"] != sg.Digraph().NumArcs() {
		t.Fatalf("polylines %d, want %d arcs", counts["polyline"], sg.Digraph().NumArcs())
	}
	if !strings.Contains(buf.String(), "optimal path highlighted") {
		t.Fatal("caption missing")
	}
}

func TestStrategyGraphSVGNoCandidates(t *testing.T) {
	net, err := topology.Chain(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := mtree.MustBuild(net)
	p := core.NewPlanner(tr, route.Build(net))
	sg := p.BuildStrategyGraph(net.Clients[0])
	cv := StrategyGraphSVG(sg, 400, 200)
	var buf bytes.Buffer
	if _, err := cv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["circle"] != 2 {
		t.Fatalf("circles %d, want 2 (u and S)", counts["circle"])
	}
}
