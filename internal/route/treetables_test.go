package route

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

// TestTreeTablesMatchesDijkstraOnTreeOnly: on a topology whose only links
// are tree links, the shortest-path metric IS the tree metric, so
// TreeTables must agree with the Dijkstra tables on every router query.
func TestTreeTablesMatchesDijkstraOnTreeOnly(t *testing.T) {
	net, err := topology.GenerateTree(topology.DefaultTreeConfig(80), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(net)
	tt := NewTreeTables(tree)
	dij := Build(net)
	if tt.Tree() != tree {
		t.Fatal("Tree() accessor broken")
	}
	ends := append([]graph.NodeID{net.Source}, net.Clients...)
	for _, a := range ends[:20] {
		for _, b := range ends[:20] {
			if a == b {
				continue
			}
			if d1, d2 := tt.OneWayDelay(a, b), dij.OneWayDelay(a, b); math.Abs(d1-d2) > 1e-9 {
				t.Fatalf("OneWayDelay(%d,%d): tree %v dijkstra %v", a, b, d1, d2)
			}
			if r1, r2 := tt.RTT(a, b), dij.RTT(a, b); math.Abs(r1-r2) > 1e-9 {
				t.Fatalf("RTT(%d,%d): tree %v dijkstra %v", a, b, r1, r2)
			}
			if h1, h2 := tt.Hops(a, b), dij.Hops(a, b); h1 != h2 {
				t.Fatalf("Hops(%d,%d): tree %d dijkstra %d", a, b, h1, h2)
			}
		}
	}
}

// TestTreeTablesForwarding walks NextHop from a client to the source and to
// a peer, checking each step is a real tree link and the walk terminates
// with the right hop count.
func TestTreeTablesForwarding(t *testing.T) {
	net, err := topology.GenerateTree(topology.DefaultTreeConfig(60), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(net)
	tt := NewTreeTables(tree)
	walk := func(from, to graph.NodeID) int {
		hops := 0
		for cur := from; cur != to; {
			next, link := tt.NextHop(cur, to)
			if next == graph.None || link == graph.NoEdge {
				t.Fatalf("walk %d→%d stuck at %d", from, to, cur)
			}
			e := net.G.Edge(link)
			if e.Other(cur) != next {
				t.Fatalf("NextHop link %d does not join %d and %d", link, cur, next)
			}
			cur = next
			if hops++; hops > net.NumNodes() {
				t.Fatalf("walk %d→%d does not terminate", from, to)
			}
		}
		return hops
	}
	u, v := net.Clients[0], net.Clients[len(net.Clients)-1]
	if got, want := walk(u, net.Source), tt.Hops(u, net.Source); got != want {
		t.Fatalf("walk to source took %d hops, Hops says %d", got, want)
	}
	if got, want := walk(u, v), tt.Hops(u, v); got != want {
		t.Fatalf("walk to peer took %d hops, Hops says %d", got, want)
	}
	// Path endpoints and degenerate cases.
	p := tt.Path(u, v)
	if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
		t.Fatalf("Path(%d,%d) = %v", u, v, p)
	}
	if n, e := tt.NextHop(u, u); n != graph.None || e != graph.NoEdge {
		t.Fatal("NextHop(u,u) not (None,NoEdge)")
	}
}

// TestTreeTablesOffTree covers hand-built networks with off-tree routers:
// queries involving them must degrade the same way unreachable destinations
// do, not panic (except the delay estimates, which mirror Tables' panic).
func TestTreeTablesOffTree(t *testing.T) {
	b := topology.NewBuilder()
	s := b.Source()
	r1 := b.Router()
	off := b.Router() // connected but not a tree member
	c := b.Client()
	b.TreeLink(s, r1, 1)
	b.TreeLink(r1, c, 1)
	b.Link(r1, off, 5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := mtree.MustBuild(net)
	tt := NewTreeTables(tree)
	if n, e := tt.NextHop(c, off); n != graph.None || e != graph.NoEdge {
		t.Fatal("NextHop to off-tree node should be (None,NoEdge)")
	}
	if p := tt.Path(c, off); p != nil {
		t.Fatalf("Path to off-tree node = %v, want nil", p)
	}
	if h := tt.Hops(c, off); h != -1 {
		t.Fatalf("Hops to off-tree node = %d, want -1", h)
	}
}
