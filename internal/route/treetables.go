package route

import (
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
)

// TreeTables is a Router whose metric IS the multicast tree: delays are
// tree-path delays (via DelayFromRoot and O(1) LCA) and unicast forwarding
// follows the tree. It exists for the large-n scaling tier: Tables runs one
// Dijkstra per client (O(N·(E+V log V)) at build), which dominates the
// planning time this repo measures at 50k clients, whereas TreeTables needs
// no preprocessing at all. On tree-only topologies — every link a tree link
// — the two routers agree exactly; TreeTables also unconditionally
// satisfies the batch planner's tree-metric precondition, so planning runs
// on the near-linear aggregated path.
//
// TreeTables is stateless after construction and safe for concurrent use.
type TreeTables struct {
	tree *mtree.Tree
}

var _ Router = (*TreeTables)(nil)

// NewTreeTables returns a tree-metric router over t.
func NewTreeTables(t *mtree.Tree) *TreeTables { return &TreeTables{tree: t} }

// Tree returns the multicast tree this router routes over. The batch
// planner uses it for the same identity check as Tables.Network.
func (t *TreeTables) Tree() *mtree.Tree { return t.tree }

// OneWayDelay returns the tree-path delay from a to b (ms). Like Tables
// without a prepared destination, it panics for off-tree nodes.
func (t *TreeTables) OneWayDelay(a, b graph.NodeID) float64 {
	return t.tree.TreeDelay(a, b)
}

// RTT returns twice the one-way delay, per §3.1.
func (t *TreeTables) RTT(a, b graph.NodeID) float64 {
	return 2 * t.tree.TreeDelay(a, b)
}

// RTTVia is RTT(a, b) given the endpoints' already-known meet router (their
// LCA): pure root-delay arithmetic, no LCA query at all. The expression is
// the same float operation sequence as RTT∘TreeDelay, so the result is
// bit-identical when meet really is LCA(a, b) — which the batch planner
// guarantees by construction (every candidate's meet comes off the root
// path). This is what lets million-client planning run on BuildLite trees,
// where LCA costs O(log n) instead of O(1).
func (t *TreeTables) RTTVia(a, b, meet graph.NodeID) float64 {
	tr := t.tree
	return 2 * (tr.DelayFromRoot[a] + tr.DelayFromRoot[b] - 2*tr.DelayFromRoot[meet])
}

// NextHop returns the next node and link from cur toward dest along the
// tree path: up toward the root until cur is an ancestor of dest, then down
// the branch containing dest. (None, NoEdge) when cur == dest or either
// node is off-tree.
func (t *TreeTables) NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID) {
	tr := t.tree
	if cur == dest || !tr.InTree[cur] || !tr.InTree[dest] {
		return graph.None, graph.NoEdge
	}
	if tr.IsAncestor(cur, dest) {
		c := tr.ChildToward(cur, dest)
		return c, tr.ParentLink[c]
	}
	return tr.Parent[cur], tr.ParentLink[cur]
}

// Path returns the tree path a→b (inclusive), nil if either end is
// off-tree.
func (t *TreeTables) Path(a, b graph.NodeID) []graph.NodeID {
	if !t.tree.InTree[a] || !t.tree.InTree[b] {
		return nil
	}
	return t.tree.TreePath(a, b)
}

// Hops returns the tree-path hop count, -1 if either end is off-tree.
func (t *TreeTables) Hops(a, b graph.NodeID) int {
	if !t.tree.InTree[a] || !t.tree.InTree[b] {
		return -1
	}
	return int(t.tree.TreeHops(a, b))
}

// Prepare is a no-op: the tree metric needs no per-destination state.
func (t *TreeTables) Prepare(graph.NodeID) {}
