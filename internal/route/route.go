// Package route implements the unicast routing substrate. The paper (§3.1)
// assumes OSPF-style routing where "the routing table will give an estimate
// of one-way delay between u and v_j"; unicast packets in the simulation
// "are routed along paths that minimize expected value of round trip time"
// (§5.1). Both are realised here as per-destination shortest-path trees
// over the realised link delays, computed with Dijkstra.
//
// Because link delays are symmetric, the shortest-path tree rooted at a
// destination simultaneously provides (a) the one-way delay estimate from
// every node, and (b) the next hop of every node toward that destination —
// which is exactly the state an OSPF router would hold. The simulator
// forwards unicast packets hop-by-hop through NextHop so that per-link loss
// applies to every traversed link, as it would in a real network.
package route

import (
	"fmt"

	"rmcast/internal/graph"
	"rmcast/internal/topology"
)

// Router is the routing interface the simulator, the planner, and the
// protocol engines consume: one-way delay estimates ("the routing table
// will give an estimate of one-way delay", §3.1), next hops for hop-by-hop
// unicast forwarding, and path metadata. Tables is the omniscient oracle
// implementation; internal/lsr provides a distributed link-state
// implementation whose estimates carry measurement noise.
type Router interface {
	// OneWayDelay estimates the one-way delay from a to b (ms).
	OneWayDelay(a, b graph.NodeID) float64
	// RTT estimates the round-trip time between a and b (ms).
	RTT(a, b graph.NodeID) float64
	// NextHop returns the next node and link from cur toward dest,
	// or (None, NoEdge) when cur == dest or dest is unreachable.
	NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID)
	// Path returns the node path a→b (inclusive), nil if unreachable.
	Path(a, b graph.NodeID) []graph.NodeID
	// Hops returns the hop count of the a→b path (-1 if unreachable).
	Hops(a, b graph.NodeID) int
	// Prepare ensures routing state exists for destination d.
	Prepare(d graph.NodeID)
}

// Tables holds shortest-path routing state for a set of destinations.
type Tables struct {
	net *topology.Network
	sp  map[graph.NodeID]*graph.ShortestPaths
}

var _ Router = (*Tables)(nil)

// Build computes routing tables for every host (source and clients) of the
// network — the only unicast destinations the recovery protocols use.
// Additional destinations can be added later with Prepare.
func Build(net *topology.Network) *Tables {
	t := &Tables{net: net, sp: make(map[graph.NodeID]*graph.ShortestPaths)}
	t.Prepare(net.Source)
	for _, c := range net.Clients {
		t.Prepare(c)
	}
	return t
}

// Prepare ensures a routing table exists for destination d.
func (t *Tables) Prepare(d graph.NodeID) {
	if _, ok := t.sp[d]; ok {
		return
	}
	t.sp[d] = graph.Dijkstra(t.net.G, d, t.net.DelayWeights())
}

func (t *Tables) table(d graph.NodeID) *graph.ShortestPaths {
	sp, ok := t.sp[d]
	if !ok {
		panic(fmt.Sprintf("route: no table for destination %d (call Prepare)", d))
	}
	return sp
}

// OneWayDelay returns the minimum one-way delay from a to b (ms). This is
// the paper's routing-table delay estimate d̂(a,b).
func (t *Tables) OneWayDelay(a, b graph.NodeID) float64 {
	return t.table(b).Dist[a]
}

// RTT returns the round-trip-time estimate between a and b: twice the
// one-way delay, per §3.1 ("round trip time (over twice the one-way
// delay)"). Queueing inflation is modelled by the simulator, not here.
func (t *Tables) RTT(a, b graph.NodeID) float64 {
	return 2 * t.OneWayDelay(a, b)
}

// NextHop returns the next node and link on the shortest path from cur
// toward dest. It returns (None, NoEdge) when cur == dest or dest is
// unreachable.
func (t *Tables) NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID) {
	if cur == dest {
		return graph.None, graph.NoEdge
	}
	sp := t.table(dest)
	return sp.Parent[cur], sp.ParentEdge[cur]
}

// Path returns the node path a→b (inclusive), or nil if unreachable.
func (t *Tables) Path(a, b graph.NodeID) []graph.NodeID {
	p := t.table(b).PathTo(a)
	if p == nil {
		return nil
	}
	// PathTo gives b→a (tree is rooted at b); reverse into a→b.
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hops returns the hop count of the shortest-delay path a→b.
func (t *Tables) Hops(a, b graph.NodeID) int {
	p := t.Path(a, b)
	if p == nil {
		return -1
	}
	return len(p) - 1
}
