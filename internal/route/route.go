// Package route implements the unicast routing substrate. The paper (§3.1)
// assumes OSPF-style routing where "the routing table will give an estimate
// of one-way delay between u and v_j"; unicast packets in the simulation
// "are routed along paths that minimize expected value of round trip time"
// (§5.1). Both are realised here as per-destination shortest-path trees
// over the realised link delays, computed with Dijkstra.
//
// Because link delays are symmetric, the shortest-path tree rooted at a
// destination simultaneously provides (a) the one-way delay estimate from
// every node, and (b) the next hop of every node toward that destination —
// which is exactly the state an OSPF router would hold. The simulator
// forwards unicast packets hop-by-hop through NextHop so that per-link loss
// applies to every traversed link, as it would in a real network.
package route

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rmcast/internal/graph"
	"rmcast/internal/topology"
)

// Router is the routing interface the simulator, the planner, and the
// protocol engines consume: one-way delay estimates ("the routing table
// will give an estimate of one-way delay", §3.1), next hops for hop-by-hop
// unicast forwarding, and path metadata. Tables is the omniscient oracle
// implementation; internal/lsr provides a distributed link-state
// implementation whose estimates carry measurement noise.
type Router interface {
	// OneWayDelay estimates the one-way delay from a to b (ms).
	OneWayDelay(a, b graph.NodeID) float64
	// RTT estimates the round-trip time between a and b (ms).
	RTT(a, b graph.NodeID) float64
	// NextHop returns the next node and link from cur toward dest,
	// or (None, NoEdge) when cur == dest or dest is unreachable.
	NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID)
	// Path returns the node path a→b (inclusive), nil if unreachable.
	Path(a, b graph.NodeID) []graph.NodeID
	// Hops returns the hop count of the a→b path (-1 if unreachable).
	Hops(a, b graph.NodeID) int
	// Prepare ensures routing state exists for destination d.
	Prepare(d graph.NodeID)
}

// Tables holds shortest-path routing state for a set of destinations.
//
// Tables is safe for concurrent readers: the per-destination trees live in
// a dense slice of atomic pointers indexed by node ID, so lookups are a
// single lock-free load. Prepare may be called concurrently with readers
// (and with other Prepare calls) — lazily-added destinations publish their
// tree with an atomic store under a mutex that only serialises builders,
// never readers.
type Tables struct {
	net *topology.Network
	sp  []atomic.Pointer[graph.ShortestPaths]
	// mu serialises Prepare so concurrent callers do not run duplicate
	// Dijkstra passes for the same destination.
	mu sync.Mutex
}

var _ Router = (*Tables)(nil)

// Build computes routing tables for every host (source and clients) of the
// network — the only unicast destinations the recovery protocols use.
// Additional destinations can be added later with Prepare.
func Build(net *topology.Network) *Tables {
	t := &Tables{net: net, sp: make([]atomic.Pointer[graph.ShortestPaths], net.NumNodes())}
	t.Prepare(net.Source)
	for _, c := range net.Clients {
		t.Prepare(c)
	}
	return t
}

// Network returns the network these tables route over. The batch planner
// uses it to verify the tables and the multicast tree describe the same
// network before enabling the tree-aggregated fast path.
func (t *Tables) Network() *topology.Network { return t.net }

// Prepare ensures a routing table exists for destination d. It is safe to
// call concurrently with readers and with other Prepare calls.
func (t *Tables) Prepare(d graph.NodeID) {
	if t.sp[d].Load() != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sp[d].Load() != nil { // lost the race to another builder
		return
	}
	t.sp[d].Store(graph.Dijkstra(t.net.G, d, t.net.DelayWeights()))
}

func (t *Tables) table(d graph.NodeID) *graph.ShortestPaths {
	sp := t.sp[d].Load()
	if sp == nil {
		panic(fmt.Sprintf("route: no table for destination %d (call Prepare)", d))
	}
	return sp
}

// OneWayDelay returns the minimum one-way delay from a to b (ms). This is
// the paper's routing-table delay estimate d̂(a,b).
func (t *Tables) OneWayDelay(a, b graph.NodeID) float64 {
	return t.table(b).Dist[a]
}

// RTT returns the round-trip-time estimate between a and b: twice the
// one-way delay, per §3.1 ("round trip time (over twice the one-way
// delay)"). Queueing inflation is modelled by the simulator, not here.
func (t *Tables) RTT(a, b graph.NodeID) float64 {
	return 2 * t.OneWayDelay(a, b)
}

// NextHop returns the next node and link on the shortest path from cur
// toward dest. It returns (None, NoEdge) when cur == dest or dest is
// unreachable.
func (t *Tables) NextHop(cur, dest graph.NodeID) (graph.NodeID, graph.EdgeID) {
	if cur == dest {
		return graph.None, graph.NoEdge
	}
	sp := t.table(dest)
	return sp.Parent[cur], sp.ParentEdge[cur]
}

// Path returns the node path a→b (inclusive), or nil if unreachable. The
// result is sized exactly from the tree's stored hop count and filled
// front-to-back by the parent walk (the tree is rooted at b, so the walk
// from a already visits nodes in a→b order): one allocation, no reversal.
func (t *Tables) Path(a, b graph.NodeID) []graph.NodeID {
	sp := t.table(b)
	hops := sp.Hops[a]
	if hops < 0 {
		return nil
	}
	p := make([]graph.NodeID, hops+1)
	v := a
	for i := range p {
		p[i] = v
		v = sp.Parent[v]
	}
	return p
}

// Hops returns the hop count of the shortest-delay path a→b, read directly
// from the shortest-path tree (no path reconstruction).
func (t *Tables) Hops(a, b graph.NodeID) int {
	return int(t.table(b).Hops[a])
}
