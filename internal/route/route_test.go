package route

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

func TestChainDelays(t *testing.T) {
	net, err := topology.Chain(3, 2.0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	rt := Build(net)
	tail := net.Clients[0] // 4 hops from source, delay 8
	side := net.Clients[1] // 2 hops, delay 4
	if d := rt.OneWayDelay(net.Source, tail); math.Abs(d-8) > 1e-9 {
		t.Fatalf("one-way source→tail = %v, want 8", d)
	}
	if d := rt.RTT(side, tail); math.Abs(d-2*8) > 1e-9 {
		// side→r1→r2→r3→tail = 4 links of delay 2 → one-way 8, RTT 16.
		t.Fatalf("RTT side↔tail = %v, want 16", d)
	}
	if h := rt.Hops(net.Source, tail); h != 4 {
		t.Fatalf("hops source→tail = %d, want 4", h)
	}
}

func TestShortcutPreferred(t *testing.T) {
	// Tree path is long; an off-tree shortcut link must be used by unicast.
	b := topology.NewBuilder()
	s := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	c := b.Client()
	b.TreeLink(s, r1, 5)
	b.TreeLink(r1, r2, 5)
	b.TreeLink(r2, r3, 5)
	b.TreeLink(r3, c, 5)
	b.Link(s, r3, 1) // shortcut
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := Build(net)
	if d := rt.OneWayDelay(s, c); math.Abs(d-6) > 1e-9 {
		t.Fatalf("shortcut not used: delay %v, want 6", d)
	}
	path := rt.Path(s, c)
	if len(path) != 3 || path[0] != s || path[1] != r3 || path[2] != c {
		t.Fatalf("unexpected path %v", path)
	}
}

func TestNextHopWalksToDestination(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(100), rng.New(8))
	rt := Build(net)
	src := net.Source
	for _, c := range net.Clients {
		cur := src
		hops := 0
		var accumulated float64
		for cur != c {
			next, link := rt.NextHop(cur, c)
			if next == graph.None {
				t.Fatalf("NextHop dead-ended at %d toward %d", cur, c)
			}
			accumulated += net.Delay[link]
			cur = next
			hops++
			if hops > net.NumNodes() {
				t.Fatalf("NextHop loop toward %d", c)
			}
		}
		if want := rt.OneWayDelay(src, c); math.Abs(accumulated-want) > 1e-9 {
			t.Fatalf("walked delay %v != table delay %v", accumulated, want)
		}
		if hops != rt.Hops(src, c) {
			t.Fatalf("walked hops %d != table hops %d", hops, rt.Hops(src, c))
		}
	}
}

func TestNextHopAtDestination(t *testing.T) {
	net, _ := topology.Star(2, 1)
	rt := Build(net)
	n, e := rt.NextHop(net.Source, net.Source)
	if n != graph.None || e != graph.NoEdge {
		t.Fatal("NextHop(v,v) should be (None, NoEdge)")
	}
}

func TestDelaySymmetry(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(3))
	rt := Build(net)
	cs := net.Clients
	for i := 0; i < len(cs) && i < 10; i++ {
		for j := i + 1; j < len(cs) && j < 10; j++ {
			ab := rt.OneWayDelay(cs[i], cs[j])
			ba := rt.OneWayDelay(cs[j], cs[i])
			if math.Abs(ab-ba) > 1e-9 {
				t.Fatalf("asymmetric delay %v vs %v", ab, ba)
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(60), rng.New(10))
	rt := Build(net)
	cs := net.Clients
	s := net.Source
	for i := 0; i < len(cs); i++ {
		for j := 0; j < len(cs); j++ {
			if i == j {
				continue
			}
			direct := rt.OneWayDelay(cs[i], s)
			via := rt.OneWayDelay(cs[i], cs[j]) + rt.OneWayDelay(cs[j], s)
			if direct > via+1e-9 {
				t.Fatalf("triangle violation: direct %v > via %v", direct, via)
			}
		}
	}
}

func TestPrepareOnDemand(t *testing.T) {
	net, _ := topology.Chain(2, 1, nil)
	rt := Build(net)
	// A router is not a host; NextHop toward it must panic until Prepare.
	var router graph.NodeID = -1
	for v := 0; v < net.NumNodes(); v++ {
		if net.Kind[v] == topology.Router {
			router = graph.NodeID(v)
			break
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unprepared destination did not panic")
			}
		}()
		rt.OneWayDelay(net.Source, router)
	}()
	rt.Prepare(router)
	if d := rt.OneWayDelay(net.Source, router); d <= 0 {
		t.Fatalf("prepared delay %v", d)
	}
	rt.Prepare(router) // idempotent
}

func TestUnicastBeatsOrMatchesTreePath(t *testing.T) {
	// Unicast minimizes delay over the whole graph, so it can never be
	// slower than the tree path between two hosts.
	net := topology.MustGenerate(topology.DefaultConfig(120), rng.New(77))
	rt := Build(net)
	// Tree delays via mtree would create an import cycle in this test's
	// spirit; recompute simply: BFS over tree edges only.
	treeAdj := make([][]graph.Half, net.NumNodes())
	for _, id := range net.TreeEdges {
		e := net.G.Edge(id)
		treeAdj[e.A] = append(treeAdj[e.A], graph.Half{Edge: id, Peer: e.B})
		treeAdj[e.B] = append(treeAdj[e.B], graph.Half{Edge: id, Peer: e.A})
	}
	var treeDelay func(from, to graph.NodeID) float64
	treeDelay = func(from, to graph.NodeID) float64 {
		// DFS (tree: unique path).
		type st struct {
			node graph.NodeID
			prev graph.NodeID
			d    float64
		}
		stack := []st{{from, graph.None, 0}}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.node == to {
				return top.d
			}
			for _, h := range treeAdj[top.node] {
				if h.Peer != top.prev {
					stack = append(stack, st{h.Peer, top.node, top.d + net.Delay[h.Edge]})
				}
			}
		}
		return math.Inf(1)
	}
	s := net.Source
	for _, c := range net.Clients[:min(10, len(net.Clients))] {
		uni := rt.OneWayDelay(c, s)
		tree := treeDelay(c, s)
		if uni > tree+1e-9 {
			t.Fatalf("unicast %v slower than tree %v", uni, tree)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkBuildTables600(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(600), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(net)
	}
}

// TestPathHopsAgreeWithNextHopWalks is the regression test for the
// allocation-free Path/Hops fast paths: on a generated topology, every
// (host, host) pair's Path must equal the node sequence produced by
// repeatedly following NextHop, and Hops must equal its length minus one.
func TestPathHopsAgreeWithNextHopWalks(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(120), rng.New(17))
	rt := Build(net)
	hosts := append([]graph.NodeID{net.Source}, net.Clients...)
	for _, a := range hosts {
		for _, b := range hosts {
			path := rt.Path(a, b)
			if a == b {
				if len(path) != 1 || path[0] != a {
					t.Fatalf("Path(%d,%d) = %v, want [%d]", a, b, path, a)
				}
				if h := rt.Hops(a, b); h != 0 {
					t.Fatalf("Hops(%d,%d) = %d, want 0", a, b, h)
				}
				continue
			}
			var walk []graph.NodeID
			for cur := a; ; {
				walk = append(walk, cur)
				if cur == b {
					break
				}
				next, _ := rt.NextHop(cur, b)
				if next == graph.None {
					t.Fatalf("NextHop walk %d→%d stuck at %d", a, b, cur)
				}
				cur = next
			}
			if len(path) != len(walk) {
				t.Fatalf("Path(%d,%d) length %d != walk length %d", a, b, len(path), len(walk))
			}
			for i := range path {
				if path[i] != walk[i] {
					t.Fatalf("Path(%d,%d)[%d] = %d, walk has %d", a, b, i, path[i], walk[i])
				}
			}
			if h := rt.Hops(a, b); h != len(walk)-1 {
				t.Fatalf("Hops(%d,%d) = %d, want %d", a, b, h, len(walk)-1)
			}
		}
	}
}

// TestConcurrentReadersAndPrepare exercises the lock-free read path while
// other goroutines lazily Prepare new destinations (run with -race).
func TestConcurrentReadersAndPrepare(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(23))
	rt := Build(net)
	// Routers are not prepared by Build; use them as lazy destinations.
	var lazy []graph.NodeID
	for id := graph.NodeID(0); int(id) < net.NumNodes() && len(lazy) < 16; id++ {
		if id != net.Source && !net.IsClient(id) {
			lazy = append(lazy, id)
		}
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				a := net.Clients[(w+i)%len(net.Clients)]
				b := net.Clients[(w*7+i*3)%len(net.Clients)]
				_ = rt.RTT(a, b)
				_ = rt.Hops(a, b)
				_ = rt.Path(a, b)
				d := lazy[(w+i)%len(lazy)]
				rt.Prepare(d)
				_ = rt.OneWayDelay(a, d)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
