package core

import (
	"math"
	"sort"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

func rosterPlanner(t *testing.T, routers int, seed uint64) *Planner {
	t.Helper()
	net := topology.MustGenerate(topology.DefaultConfig(routers), rng.New(seed))
	tr, err := mtree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(tr, route.Build(net))
}

// fullRecompute computes the ground-truth strategies over the active set.
func fullRecompute(p *Planner, active map[graph.NodeID]bool) map[graph.NodeID]*Strategy {
	// Build a roster from scratch restricted to active: easiest is a fresh
	// roster and removals, but that is what we are testing — so compute
	// directly via a throwaway roster's internals by filtering candidates.
	tmp := &Roster{
		p:          p,
		active:     make([]bool, len(p.Tree.Parent)),
		strategies: make(map[graph.NodeID]*Strategy),
		winners:    make(map[graph.NodeID]map[graph.NodeID]Candidate),
	}
	for c := range active {
		tmp.active[c] = true
		tmp.activeCount++
	}
	for c := range active {
		tmp.replan(c)
	}
	return tmp.strategies
}

func sameStrategies(t *testing.T, got, want map[graph.NodeID]*Strategy) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("strategy count %d != %d", len(got), len(want))
	}
	for c, w := range want {
		g, ok := got[c]
		if !ok {
			t.Fatalf("missing strategy for %d", c)
		}
		if math.Abs(g.ExpectedDelay-w.ExpectedDelay) > 1e-9 {
			t.Fatalf("client %d: incremental %v != full %v", c, g.ExpectedDelay, w.ExpectedDelay)
		}
		if len(g.Peers) != len(w.Peers) {
			t.Fatalf("client %d: list length %d != %d", c, len(g.Peers), len(w.Peers))
		}
		for i := range g.Peers {
			if g.Peers[i].Peer != w.Peers[i].Peer {
				t.Fatalf("client %d: peer %d differs", c, i)
			}
		}
	}
}

func TestRosterInitialMatchesPlanner(t *testing.T) {
	p := rosterPlanner(t, 60, 1)
	r := NewRoster(p)
	want := p.All()
	sameStrategies(t, r.Strategies(), want)
	if r.Recomputes() != len(p.Tree.Clients) {
		t.Fatalf("initial recomputes %d != k=%d", r.Recomputes(), len(p.Tree.Clients))
	}
}

func TestRosterChurnMatchesFullRecompute(t *testing.T) {
	p := rosterPlanner(t, 80, 2)
	r := NewRoster(p)
	active := map[graph.NodeID]bool{}
	for _, c := range p.Tree.Clients {
		active[c] = true
	}
	rnd := rng.New(3)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })

	for step := 0; step < 40; step++ {
		v := clients[rnd.Intn(len(clients))]
		if active[v] {
			if len(activeList(active)) <= 2 {
				continue // keep at least two members
			}
			if _, err := r.Leave(v); err != nil {
				t.Fatal(err)
			}
			delete(active, v)
		} else {
			if _, err := r.Join(v); err != nil {
				t.Fatal(err)
			}
			active[v] = true
		}
		sameStrategies(t, r.Strategies(), fullRecompute(p, active))
	}
}

func activeList(m map[graph.NodeID]bool) []graph.NodeID {
	var out []graph.NodeID
	for c := range m {
		out = append(out, c)
	}
	return out
}

func TestRosterIncrementalIsCheaper(t *testing.T) {
	p := rosterPlanner(t, 120, 4)
	r := NewRoster(p)
	k := len(p.Tree.Clients)
	base := r.Recomputes()
	// One leave must not replan everyone (typical winner fan-in is far
	// below k); aggregate across a few leaves to dodge outliers.
	var total int
	rnd := rng.New(5)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	for i := 0; i < 5; i++ {
		v := clients[rnd.Intn(len(clients))]
		if !r.Active(v) {
			continue
		}
		affected, err := r.Leave(v)
		if err != nil {
			t.Fatal(err)
		}
		total += len(affected)
	}
	if r.Recomputes()-base != total {
		t.Fatalf("recompute accounting wrong: %d vs %d", r.Recomputes()-base, total)
	}
	if total >= 5*k {
		t.Fatalf("incremental churn replanned everyone: %d for k=%d", total, k)
	}
}

func TestRosterErrors(t *testing.T) {
	p := rosterPlanner(t, 30, 6)
	r := NewRoster(p)
	c := p.Tree.Clients[0]
	if _, err := r.Join(c); err == nil {
		t.Fatal("double join accepted")
	}
	if _, err := r.Leave(c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Leave(c); err == nil {
		t.Fatal("double leave accepted")
	}
	if r.Strategy(c) != nil || r.Active(c) {
		t.Fatal("left member still present")
	}
	if _, err := r.Join(p.Tree.Root); err == nil {
		t.Fatal("joining the source accepted")
	}
	if _, err := r.Join(c); err != nil {
		t.Fatal("rejoin refused")
	}
}

// BenchmarkRosterChurn measures one full churn cycle — a member dies
// (incremental replan of its dependents) and rejoins (replan of itself plus
// any client it now beats) — the operation the resilient RP engine performs
// on every declared death and recovery.
func BenchmarkRosterChurn(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(200), rng.New(11))
	tr, err := mtree.Build(net)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlanner(tr, route.Build(net))
	r := NewRoster(p)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := clients[i%len(clients)]
		if _, err := r.Leave(v); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Join(v); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRosterStrategiesSnapshotSafe is the aliasing regression test:
// Strategies() must return a map later churn cannot mutate, and the
// *Strategy values captured in it must stay byte-stable while the roster
// replans (replan builds new Strategy structs, never updates in place).
func TestRosterStrategiesSnapshotSafe(t *testing.T) {
	p := rosterPlanner(t, 60, 9)
	r := NewRoster(p)
	snap := r.Strategies()
	frozen := make(map[graph.NodeID]Strategy, len(snap))
	for c, s := range snap {
		cp := *s
		cp.Peers = append([]Candidate(nil), s.Peers...)
		frozen[c] = cp
	}
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	if _, err := r.Leave(clients[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Leave(clients[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join(clients[0]); err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(frozen) {
		t.Fatalf("snapshot map size changed under churn: %d != %d", len(snap), len(frozen))
	}
	for c, want := range frozen {
		got, ok := snap[c]
		if !ok {
			t.Fatalf("snapshot lost client %d under churn", c)
		}
		if got.Client != want.Client || got.ExpectedDelay != want.ExpectedDelay ||
			len(got.Peers) != len(want.Peers) {
			t.Fatalf("client %d: snapshot strategy mutated under churn", c)
		}
		for i := range got.Peers {
			if got.Peers[i] != want.Peers[i] {
				t.Fatalf("client %d: snapshot peer %d mutated under churn", c, i)
			}
		}
	}
	// The live view, by contrast, must reflect churn.
	if _, ok := r.StrategiesLive()[clients[1]]; ok {
		t.Fatal("live map still holds a departed member")
	}
}

// TestNewRosterActiveMatchesChurn pins the full-replan fallback: a roster
// built directly over a subset must equal a full roster driven to the same
// membership by Leave calls.
func TestNewRosterActiveMatchesChurn(t *testing.T) {
	p := rosterPlanner(t, 80, 10)
	r := NewRoster(p)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var members []graph.NodeID
	for i, c := range clients {
		if i%3 == 0 {
			if _, err := r.Leave(c); err != nil {
				t.Fatal(err)
			}
		} else {
			members = append(members, c)
		}
	}
	fresh := NewRosterActive(p, members)
	sameStrategies(t, fresh.Strategies(), r.Strategies())
	if fresh.ActiveCount() != r.ActiveCount() {
		t.Fatalf("active count %d != %d", fresh.ActiveCount(), r.ActiveCount())
	}
	if fresh.Epoch() != 0 {
		t.Fatalf("fresh roster epoch %d != 0", fresh.Epoch())
	}
}

// TestRosterEpochAndDense covers the epoch clock and the dense accessors'
// canonical client-position layout.
func TestRosterEpochAndDense(t *testing.T) {
	p := rosterPlanner(t, 50, 11)
	r := NewRoster(p)
	if r.Epoch() != 0 {
		t.Fatalf("initial epoch %d != 0", r.Epoch())
	}
	c := p.Tree.Clients[0]
	if _, err := r.Leave(c); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch after leave %d != 1", r.Epoch())
	}
	if _, err := r.Leave(c); err == nil {
		t.Fatal("double leave accepted")
	}
	if r.Epoch() != 1 {
		t.Fatalf("rejected op advanced the epoch: %d", r.Epoch())
	}
	if _, err := r.Join(c); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch after join %d != 2", r.Epoch())
	}

	if _, err := r.Leave(c); err != nil {
		t.Fatal(err)
	}
	dense := r.StrategiesDense(nil)
	occ := r.OccupancyDense(nil)
	if len(dense) != len(p.Tree.Clients) || len(occ) != len(dense) {
		t.Fatalf("dense lengths %d/%d != %d", len(dense), len(occ), len(p.Tree.Clients))
	}
	live := r.StrategiesLive()
	for i, u := range p.Tree.Clients {
		if occ[i] != r.Active(u) {
			t.Fatalf("occupancy[%d] disagrees with Active(%d)", i, u)
		}
		if !occ[i] {
			if dense[i] != nil {
				t.Fatalf("inactive position %d holds a strategy", i)
			}
			continue
		}
		if dense[i] != live[u] {
			t.Fatalf("dense[%d] is not client %d's strategy", i, u)
		}
	}
	// Reuse path: a large-enough slice is written in place, not reallocated.
	if again := r.StrategiesDense(dense); &again[0] != &dense[0] {
		t.Fatal("StrategiesDense reallocated a sufficient slice")
	}
}

func TestRosterLoneMemberGoesToSource(t *testing.T) {
	p := rosterPlanner(t, 30, 7)
	r := NewRoster(p)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients[1:] {
		if _, err := r.Leave(c); err != nil {
			t.Fatal(err)
		}
	}
	last := clients[0]
	st := r.Strategy(last)
	if st == nil || len(st.Peers) != 0 {
		t.Fatalf("lone member should plan direct-to-source: %+v", st)
	}
	if math.Abs(st.ExpectedDelay-st.SourceRTT) > 1e-9 {
		t.Fatal("lone member expected delay should equal source RTT")
	}
}
