package core

import (
	"math"
	"sort"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

func rosterPlanner(t *testing.T, routers int, seed uint64) *Planner {
	t.Helper()
	net := topology.MustGenerate(topology.DefaultConfig(routers), rng.New(seed))
	tr, err := mtree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(tr, route.Build(net))
}

// fullRecompute computes the ground-truth strategies over the active set.
func fullRecompute(p *Planner, active map[graph.NodeID]bool) map[graph.NodeID]*Strategy {
	// Build a roster from scratch restricted to active: easiest is a fresh
	// roster and removals, but that is what we are testing — so compute
	// directly via a throwaway roster's internals by filtering candidates.
	tmp := &Roster{
		p:          p,
		active:     make([]bool, len(p.Tree.Parent)),
		strategies: make(map[graph.NodeID]*Strategy),
		winners:    make(map[graph.NodeID]map[graph.NodeID]Candidate),
	}
	for c := range active {
		tmp.active[c] = true
		tmp.activeCount++
	}
	for c := range active {
		tmp.replan(c)
	}
	return tmp.strategies
}

func sameStrategies(t *testing.T, got, want map[graph.NodeID]*Strategy) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("strategy count %d != %d", len(got), len(want))
	}
	for c, w := range want {
		g, ok := got[c]
		if !ok {
			t.Fatalf("missing strategy for %d", c)
		}
		if math.Abs(g.ExpectedDelay-w.ExpectedDelay) > 1e-9 {
			t.Fatalf("client %d: incremental %v != full %v", c, g.ExpectedDelay, w.ExpectedDelay)
		}
		if len(g.Peers) != len(w.Peers) {
			t.Fatalf("client %d: list length %d != %d", c, len(g.Peers), len(w.Peers))
		}
		for i := range g.Peers {
			if g.Peers[i].Peer != w.Peers[i].Peer {
				t.Fatalf("client %d: peer %d differs", c, i)
			}
		}
	}
}

func TestRosterInitialMatchesPlanner(t *testing.T) {
	p := rosterPlanner(t, 60, 1)
	r := NewRoster(p)
	want := p.All()
	sameStrategies(t, r.Strategies(), want)
	if r.Recomputes() != len(p.Tree.Clients) {
		t.Fatalf("initial recomputes %d != k=%d", r.Recomputes(), len(p.Tree.Clients))
	}
}

func TestRosterChurnMatchesFullRecompute(t *testing.T) {
	p := rosterPlanner(t, 80, 2)
	r := NewRoster(p)
	active := map[graph.NodeID]bool{}
	for _, c := range p.Tree.Clients {
		active[c] = true
	}
	rnd := rng.New(3)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })

	for step := 0; step < 40; step++ {
		v := clients[rnd.Intn(len(clients))]
		if active[v] {
			if len(activeList(active)) <= 2 {
				continue // keep at least two members
			}
			if _, err := r.Leave(v); err != nil {
				t.Fatal(err)
			}
			delete(active, v)
		} else {
			if _, err := r.Join(v); err != nil {
				t.Fatal(err)
			}
			active[v] = true
		}
		sameStrategies(t, r.Strategies(), fullRecompute(p, active))
	}
}

func activeList(m map[graph.NodeID]bool) []graph.NodeID {
	var out []graph.NodeID
	for c := range m {
		out = append(out, c)
	}
	return out
}

func TestRosterIncrementalIsCheaper(t *testing.T) {
	p := rosterPlanner(t, 120, 4)
	r := NewRoster(p)
	k := len(p.Tree.Clients)
	base := r.Recomputes()
	// One leave must not replan everyone (typical winner fan-in is far
	// below k); aggregate across a few leaves to dodge outliers.
	var total int
	rnd := rng.New(5)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	for i := 0; i < 5; i++ {
		v := clients[rnd.Intn(len(clients))]
		if !r.Active(v) {
			continue
		}
		affected, err := r.Leave(v)
		if err != nil {
			t.Fatal(err)
		}
		total += len(affected)
	}
	if r.Recomputes()-base != total {
		t.Fatalf("recompute accounting wrong: %d vs %d", r.Recomputes()-base, total)
	}
	if total >= 5*k {
		t.Fatalf("incremental churn replanned everyone: %d for k=%d", total, k)
	}
}

func TestRosterErrors(t *testing.T) {
	p := rosterPlanner(t, 30, 6)
	r := NewRoster(p)
	c := p.Tree.Clients[0]
	if _, err := r.Join(c); err == nil {
		t.Fatal("double join accepted")
	}
	if _, err := r.Leave(c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Leave(c); err == nil {
		t.Fatal("double leave accepted")
	}
	if r.Strategy(c) != nil || r.Active(c) {
		t.Fatal("left member still present")
	}
	if _, err := r.Join(p.Tree.Root); err == nil {
		t.Fatal("joining the source accepted")
	}
	if _, err := r.Join(c); err != nil {
		t.Fatal("rejoin refused")
	}
}

// BenchmarkRosterChurn measures one full churn cycle — a member dies
// (incremental replan of its dependents) and rejoins (replan of itself plus
// any client it now beats) — the operation the resilient RP engine performs
// on every declared death and recovery.
func BenchmarkRosterChurn(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(200), rng.New(11))
	tr, err := mtree.Build(net)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlanner(tr, route.Build(net))
	r := NewRoster(p)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := clients[i%len(clients)]
		if _, err := r.Leave(v); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Join(v); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRosterLoneMemberGoesToSource(t *testing.T) {
	p := rosterPlanner(t, 30, 7)
	r := NewRoster(p)
	clients := append([]graph.NodeID(nil), p.Tree.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients[1:] {
		if _, err := r.Leave(c); err != nil {
			t.Fatal(err)
		}
	}
	last := clients[0]
	st := r.Strategy(last)
	if st == nil || len(st.Peers) != 0 {
		t.Fatalf("lone member should plan direct-to-source: %+v", st)
	}
	if math.Abs(st.ExpectedDelay-st.SourceRTT) > 1e-9 {
		t.Fatal("lone member expected delay should equal source RTT")
	}
}
