package core

import (
	"fmt"
	"slices"

	"rmcast/internal/graph"
)

// Roster maintains recovery strategies for a multicast group under
// membership churn. The paper computes strategies once for a static group;
// in a deployment, members come and go, and recomputing every client's
// strategy graph on every change is O(k·N²). The roster tracks, per client,
// which peer currently wins each competitive class, so that
//
//   - a LEAVING member invalidates only the clients whose lists contain it
//     as a class winner (it can never affect anyone else: Lemma 4 admits
//     only class winners into optimal lists), and
//   - a JOINING member invalidates only the clients for which it beats (or
//     creates) the winner of its own class.
//
// Every other client's strategy is provably unchanged, which keeps churn
// handling near O(affected·N²) instead of O(k·N²). Tests verify the
// incremental results equal full recomputation after arbitrary churn.
type Roster struct {
	p *Planner
	// active is the dense membership set, indexed by NodeID (the roster's
	// churn unit is a tree client, so node-indexed beats a hash map: O(1)
	// with no hashing, and iteration rides Tree.Clients in canonical order).
	active      []bool
	activeCount int
	// strategies holds the current plan per active client.
	strategies map[graph.NodeID]*Strategy
	// winners[u] maps each meet router to u's current class winner, so
	// membership changes can be mapped to affected clients cheaply.
	winners map[graph.NodeID]map[graph.NodeID]Candidate
	// recomputes counts strategy recomputations (observability/testing).
	recomputes int
	// epoch counts successfully applied membership changes since
	// construction. It is the roster's logical clock: two rosters that
	// applied the same churn sequence agree on it, and snapshot publishers
	// stamp it next to their own version so service output is correlatable
	// with plan state.
	epoch uint64
	// agg, when non-nil, is a membership-tracking tree aggregate (see
	// treeagg.go): each replan then reads its candidates off the client's
	// root path in O(depth) instead of scanning every active member, and a
	// join/leave repairs only the O(depth) aggregate nodes above the
	// churned client. nil when the planner configuration requires the scan
	// (see computeFastMode); both paths produce identical strategies.
	agg  *treeAgg
	mode fastMode
}

// NewRoster creates a roster over the planner's full client set, all
// initially active.
func NewRoster(p *Planner) *Roster {
	return NewRosterActive(p, p.Tree.Clients)
}

// NewRosterActive creates a roster whose initial membership is the given
// client subset. NewRosterActive(p, p.Tree.Clients) ≡ NewRoster(p); the
// strategy service uses the subset form as its full-replan fallback — a
// fresh roster over the current active set is the ground truth the
// incremental churn path must match. Construction is O(k·depth) on
// fast-mode planners (one aggregate build plus one replan per member), not
// O(k·depth) per *excluded* member: the aggregate is built directly from
// the subset rather than by leaving members one at a time.
func NewRosterActive(p *Planner, members []graph.NodeID) *Roster {
	r := &Roster{
		p:          p,
		active:     make([]bool, len(p.Tree.Parent)),
		strategies: make(map[graph.NodeID]*Strategy),
		winners:    make(map[graph.NodeID]map[graph.NodeID]Candidate),
	}
	for _, c := range members {
		if !p.Tree.Net.IsClient(c) {
			panic(fmt.Sprintf("core: roster member %d is not a client", c))
		}
		if r.active[c] {
			continue
		}
		r.active[c] = true
		r.activeCount++
	}
	if r.mode = p.computeFastMode(); r.mode != fastOff {
		r.agg = newTreeAggActive(p.Tree, r.active)
	}
	for _, c := range p.Tree.Clients {
		if r.active[c] {
			r.replan(c)
		}
	}
	return r
}

// Active reports whether a client is currently a group member.
func (r *Roster) Active(c graph.NodeID) bool {
	return int(c) >= 0 && int(c) < len(r.active) && r.active[c]
}

// Strategy returns the current strategy of an active client (nil for
// inactive or unknown nodes).
func (r *Roster) Strategy(c graph.NodeID) *Strategy { return r.strategies[c] }

// Recomputes returns the number of per-client strategy recomputations
// performed since construction (including the initial k).
func (r *Roster) Recomputes() int { return r.recomputes }

// candidatesAmong computes u's class-winner map restricted to active peers
// — the roster-aware version of Planner.Candidates.
func (r *Roster) candidatesAmong(u graph.NodeID) map[graph.NodeID]Candidate {
	pol := r.p.timeout()
	best := make(map[graph.NodeID]Candidate)
	for _, v := range r.p.Tree.Clients {
		if v == u || !r.active[v] {
			continue
		}
		meet := r.p.Tree.LCA(u, v)
		cand := r.p.candidateOf(u, meet, v, pol)
		cur, ok := best[meet]
		if !ok {
			best[meet] = cand
			continue
		}
		cc, pc := r.p.attemptCost(u, cand), r.p.attemptCost(u, cur)
		if cc < pc || (cc == pc && cand.Peer < cur.Peer) {
			best[meet] = cand
		}
	}
	return best
}

// candidatesAgg reads u's class-winner map off its root path using the
// membership-tracking aggregate — the O(depth) equivalent of
// candidatesAmong (see planOneTree for the class/winner argument).
func (r *Roster) candidatesAgg(u graph.NodeID) map[graph.NodeID]Candidate {
	pol := r.p.timeout()
	t := r.p.Tree
	best := make(map[graph.NodeID]Candidate, t.Depth[u])
	var e aggEntry
	if r.mode == fastKeyPeerSelf {
		e = bestExcluding(&r.agg.byPeer[u], aggSelf)
	} else {
		e = bestExcluding(&r.agg.byKey[u], aggSelf)
	}
	if e.peer != graph.None {
		best[u] = r.p.candidateOf(u, u, e.peer, pol)
	}
	for x := u; t.Parent[x] != graph.None; x = t.Parent[x] {
		anc := t.Parent[x]
		e := bestExcluding(&r.agg.byKey[anc], r.agg.childPos[x])
		if e.peer != graph.None {
			best[anc] = r.p.candidateOf(u, anc, e.peer, pol)
		}
	}
	return best
}

// replan recomputes one client's strategy from its roster-restricted
// candidates and refreshes the winner index.
func (r *Roster) replan(u graph.NodeID) {
	var best map[graph.NodeID]Candidate
	if r.agg != nil {
		best = r.candidatesAgg(u)
	} else {
		best = r.candidatesAmong(u)
	}
	cands := make([]Candidate, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sortCandidates(cands)
	srcRTT := r.p.Routes.RTT(u, r.p.Tree.Root)
	sg := &StrategyGraph{
		Client:            u,
		ClientDepth:       r.p.Tree.Depth[u],
		Candidates:        cands,
		SourceRTT:         srcRTT,
		SourceTimeout:     r.p.timeout().Timeout(srcRTT),
		AllowDirectSource: r.p.AllowDirectSource,
	}
	if r.p.LossProb > 0 {
		r.strategies[u] = sg.OptimalDP(1 - r.p.LossProb)
	} else {
		r.strategies[u] = sg.Algorithm1()
	}
	r.winners[u] = best
	r.recomputes++
}

// Leave removes a member and incrementally repairs the affected strategies.
// It returns the clients whose strategies were recomputed.
func (r *Roster) Leave(v graph.NodeID) ([]graph.NodeID, error) {
	if !r.Active(v) {
		return nil, fmt.Errorf("core: %d is not an active member", v)
	}
	r.active[v] = false
	r.activeCount--
	r.epoch++
	delete(r.strategies, v)
	delete(r.winners, v)
	if r.agg != nil {
		r.agg.setActive(v, false)
	}
	var affected []graph.NodeID
	for u, classes := range r.winners {
		for _, w := range classes {
			if w.Peer == v {
				affected = append(affected, u)
				break
			}
		}
	}
	slices.Sort(affected)
	for _, u := range affected {
		r.replan(u)
	}
	return affected, nil
}

// Join (re-)activates a member and incrementally repairs the affected
// strategies: clients for which v beats or creates its class winner, plus
// v itself. It returns the clients whose strategies were recomputed
// (excluding v).
func (r *Roster) Join(v graph.NodeID) ([]graph.NodeID, error) {
	if r.Active(v) {
		return nil, fmt.Errorf("core: %d is already active", v)
	}
	if !r.p.Tree.Net.IsClient(v) {
		return nil, fmt.Errorf("core: %d is not a client of this tree", v)
	}
	r.active[v] = true
	r.activeCount++
	r.epoch++
	if r.agg != nil {
		r.agg.setActive(v, true)
	}
	pol := r.p.timeout()
	var affected []graph.NodeID
	for u, classes := range r.winners {
		meet := r.p.Tree.LCA(u, v)
		cand := r.p.candidateOf(u, meet, v, pol)
		cur, ok := classes[meet]
		if !ok {
			affected = append(affected, u)
			continue
		}
		cc, pc := r.p.attemptCost(u, cand), r.p.attemptCost(u, cur)
		if cc < pc || (cc == pc && cand.Peer < cur.Peer) {
			affected = append(affected, u)
		}
	}
	slices.Sort(affected)
	for _, u := range affected {
		r.replan(u)
	}
	r.replan(v)
	return affected, nil
}

// Strategies returns a copy of the current strategy map: the map is fresh
// on every call, so later Join/Leave churn cannot mutate it under a caller
// that snapshots it. The *Strategy values are shared but immutable — replan
// always builds a new Strategy rather than updating the old one in place
// (the property snapshot immutability tests pin down). Callers that want
// the live view — incremental replans visible without re-copying — use
// StrategiesLive.
func (r *Roster) Strategies() map[graph.NodeID]*Strategy {
	out := make(map[graph.NodeID]*Strategy, len(r.strategies))
	for c, s := range r.strategies {
		out[c] = s
	}
	return out
}

// StrategiesLive returns the roster's internal strategy map. It ALIASES
// live state: Join/Leave mutate it in place, which is exactly what the
// resilient RP engine wants (its failure detector replans into the roster
// at run time and reads strategies through one long-held map). Do not
// publish it across goroutines; snapshotters use Strategies or
// StrategiesDense instead.
func (r *Roster) StrategiesLive() map[graph.NodeID]*Strategy { return r.strategies }

// StrategiesDense writes the active clients' strategies into a dense slice
// indexed by client position in Tree.Clients — the same canonical layout as
// Planner.PlanAllDense — with nil at inactive positions. out is reused when
// large enough (len ≥ len(Tree.Clients)); nil allocates. Snapshot
// publishers pass a fresh slice per publish so old snapshots stay frozen.
func (r *Roster) StrategiesDense(out []*Strategy) []*Strategy {
	clients := r.p.Tree.Clients
	if len(out) < len(clients) {
		out = make([]*Strategy, len(clients))
	} else {
		out = out[:len(clients)]
	}
	for i, c := range clients {
		if r.active[c] {
			out[i] = r.strategies[c]
		} else {
			out[i] = nil
		}
	}
	return out
}

// OccupancyDense writes the membership flags in the same dense
// client-position layout as StrategiesDense. out is reused when large
// enough; nil allocates.
func (r *Roster) OccupancyDense(out []bool) []bool {
	clients := r.p.Tree.Clients
	if len(out) < len(clients) {
		out = make([]bool, len(clients))
	} else {
		out = out[:len(clients)]
	}
	for i, c := range clients {
		out[i] = r.active[c]
	}
	return out
}

// ActiveCount returns the number of current members.
func (r *Roster) ActiveCount() int { return r.activeCount }

// Epoch returns the number of successfully applied membership changes since
// construction (0 for a fresh roster). Strictly monotonic under churn.
func (r *Roster) Epoch() uint64 { return r.epoch }
