package core

// This file implements the paper's expected-delay objective (§3.3) and the
// underlying conditional-loss model (§3.2, Lemmas 1–3).
//
// The reliable-network ("p² ≈ 0") assumption means that, conditioned on
// client u missing a packet, exactly one link on the S→u tree path dropped
// it, uniformly among the DS_u links of that path. A peer whose meet router
// with u sits at depth DS has the packet iff the loss lies strictly below
// its shared prefix, i.e. on one of the (current-prefix − DS) deepest
// candidate links. All of the paper's conditional probabilities are
// consequences of this picture; EvalAny implements it directly so it is
// valid for *arbitrary* lists (any order, duplicated classes), which the
// closed form of Eq. (3) is not. Tests verify the two agree on meaningful
// lists and that EvalAny matches Monte-Carlo simulation of the loss model.

// CondLossProb is Lemma 1: the probability that a peer with meet depth ds
// has ALSO lost the packet, given that u lost it and that every previously
// asked peer (whose meet depths lower-bound the loss position to the first
// `prefix` links) lost it: P = ds/prefix, clamped to [0,1].
//
// prefix starts at DS_u and shrinks to min(previous DS values).
func CondLossProb(ds, prefix int32) float64 {
	if prefix <= 0 {
		// The loss is known to sit at the source access link set of size
		// zero — degenerate; treat the peer as certainly having the packet
		// (DS 0 means the peer shares nothing with u).
		return 0
	}
	if ds >= prefix {
		return 1 // Lemma 2: a peer meeting no deeper than a failed one is surely lost
	}
	if ds <= 0 {
		return 0
	}
	return float64(ds) / float64(prefix)
}

// AttemptRef is one recovery attempt for evaluation purposes.
type AttemptRef struct {
	DS      int32   // meet depth with u
	RTT     float64 // round-trip estimate to the peer
	Timeout float64 // t0 charged when the attempt fails
	Priv    int32   // private links below the meet (loss-aware model only)
}

// EvalAny returns the exact expected recovery delay of an arbitrary ordered
// attempt list under the single-loss model, with a final always-successful
// source attempt costing srcRTT. dsU is DS_u (tree hop count S→u).
//
// Unlike Eq. (3) this does not require the list to be "meaningful": it
// correctly charges zero success probability to competitive duplicates and
// to peers whose meet depth is not below the current loss prefix, which is
// exactly what Lemmas 2, 4 and 5 assert such entries cost.
func EvalAny(list []AttemptRef, dsU int32, srcRTT float64) float64 {
	if dsU <= 0 {
		// A client at depth 0 would be the source itself; treat as free.
		return 0
	}
	reach := 1.0  // probability this attempt is reached
	prefix := dsU // loss is uniform on the first `prefix` links of S→u
	total := 0.0
	for _, a := range list {
		if reach == 0 {
			break
		}
		pLost := CondLossProb(a.DS, prefix)
		pHave := 1 - pLost
		total += reach * (pHave*a.RTT + pLost*a.Timeout)
		reach *= pLost
		if a.DS < prefix {
			prefix = a.DS
		}
	}
	total += reach * srcRTT
	return total
}

// EvalMeaningful returns the expected delay of a *meaningful* strategy
// (distinct classes, strictly descending DS) using the paper's closed form,
// Eq. (3):
//
//	Delay(L) = a_1 + (1/DS_u)·[DS_1·a_2 + … + DS_{k-1}·a_k + DS_k·rtt(u,S)]
//
// where a_j is the attempt cost of Eq. (1) with its conditional probability
// taken relative to the predecessor's DS. It panics if the list is not
// strictly descending in DS or exceeds DS_u — those are precondition
// violations, not runtime conditions.
func EvalMeaningful(list []AttemptRef, dsU int32, srcRTT float64) float64 {
	if dsU <= 0 {
		return 0
	}
	prev := dsU
	total := 0.0
	for i, a := range list {
		if a.DS >= prev {
			panic("core: EvalMeaningful on non-descending list")
		}
		pLost := float64(a.DS) / float64(prev)
		aj := a.RTT*(1-pLost) + a.Timeout*pLost
		// P(reach attempt i) = DS_{i-1}/DS_u by Lemma 3's telescoping.
		total += float64(prev) / float64(dsU) * aj
		prev = a.DS
		_ = i
	}
	total += float64(prev) / float64(dsU) * srcRTT
	return total
}

// refs converts a candidate list into attempt references.
func refs(cands []Candidate) []AttemptRef {
	out := make([]AttemptRef, len(cands))
	for i, c := range cands {
		out[i] = AttemptRef{DS: c.DS, RTT: c.RTT, Timeout: c.Timeout, Priv: c.Priv}
	}
	return out
}

// Evaluate returns the expected delay of the given strategy's peer list
// under the exact model — the number Algorithm 1 optimizes.
func (s *Strategy) Evaluate() float64 {
	return EvalAny(refs(s.Peers), s.ClientDepth, s.SourceRTT)
}
