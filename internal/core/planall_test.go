package core

import (
	"fmt"
	"reflect"
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// planners returns a planner per configuration the batch path must cover:
// the paper default, the restricted graph, a fixed timeout policy, and the
// loss-aware model.
func plannersUnderTest(t *testing.T, size int, seed uint64) []*Planner {
	t.Helper()
	net := topology.MustGenerate(topology.DefaultConfig(size), rng.New(seed))
	tree := mtree.MustBuild(net)
	rt := route.Build(net)
	def := NewPlanner(tree, rt)
	restricted := NewPlanner(tree, rt)
	restricted.AllowDirectSource = false
	fixed := NewPlanner(tree, rt)
	fixed.Timeout = FixedTimeout(120)
	aware := NewPlanner(tree, rt)
	aware.LossProb = 0.1
	return []*Planner{def, restricted, fixed, aware}
}

// TestPlanAllMatchesStrategyFor asserts the batch pass is field-for-field
// identical to the per-client path on every configuration.
func TestPlanAllMatchesStrategyFor(t *testing.T) {
	for _, seed := range []uint64{1, 2003} {
		for pi, p := range plannersUnderTest(t, 150, seed) {
			batch := p.PlanAll()
			if len(batch) != len(p.Tree.Clients) {
				t.Fatalf("planner %d: PlanAll returned %d strategies, want %d",
					pi, len(batch), len(p.Tree.Clients))
			}
			for _, u := range p.Tree.Clients {
				want := p.StrategyFor(u)
				if !reflect.DeepEqual(batch[u], want) {
					t.Fatalf("planner %d seed %d: PlanAll[%d] = %v, StrategyFor = %v",
						pi, seed, u, batch[u], want)
				}
			}
		}
	}
}

// TestPlanAllRepeatable asserts two batch passes over the same planner give
// identical results (the scratch reuse must not leak state across calls).
func TestPlanAllRepeatable(t *testing.T) {
	for _, p := range plannersUnderTest(t, 120, 7) {
		a, b := p.PlanAll(), p.PlanAll()
		if !reflect.DeepEqual(a, b) {
			t.Fatal("PlanAll not repeatable")
		}
	}
}

// BenchmarkPlanAll measures batch planning. The chords cell is the historic
// benchmark (default chorded topology, which falls back to the peer scan);
// the scan/tree pair at n=5000 clients is the acceptance comparison for the
// tree-aggregated path: identical topology and router, only the path
// differs.
func BenchmarkPlanAll(b *testing.B) {
	b.Run("chords/n=300", func(b *testing.B) {
		net := topology.MustGenerate(topology.DefaultConfig(300), rng.New(1))
		tree := mtree.MustBuild(net)
		p := NewPlanner(tree, route.Build(net))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.PlanAll()
		}
	})
	for _, mode := range []string{"scan", "tree"} {
		b.Run(mode+"/n=5000", func(b *testing.B) {
			net := topology.MustGenerateTree(topology.DefaultTreeConfig(5000), rng.New(1))
			tree := mtree.MustBuild(net)
			p := NewPlanner(tree, route.NewTreeTables(tree))
			p.DisableFastPath = mode == "scan"
			out := p.PlanAll() // warm scratch and result map
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PlanAllInto(out)
			}
		})
	}
}

// BenchmarkPlanAllLarge is the scaling tier's micro counterpart: steady-
// state full replans on the fast path at the sweep's client counts.
func BenchmarkPlanAllLarge(b *testing.B) {
	for _, n := range []int{1000, 5000, 20000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := topology.MustGenerateTree(topology.DefaultTreeConfig(n), rng.New(1))
			tree := mtree.MustBuild(net)
			p := NewPlanner(tree, route.NewTreeTables(tree))
			if !p.UsesFastPath() {
				b.Fatal("expected fast path")
			}
			out := p.PlanAll()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PlanAllInto(out)
			}
		})
	}
}
