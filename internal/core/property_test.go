package core

import (
	"math"
	"testing"
	"testing/quick"

	"rmcast/internal/rng"
)

// genSG builds a random strategy graph from a compact quick tuple with a
// uniform timeout factor, matching the planner invariant.
func genSG(seed uint64, sizeByte uint8, beta float64) *StrategyGraph {
	r := rng.New(seed)
	dsU := int32(3 + r.Intn(14))
	nWant := int(sizeByte) % 10
	used := map[int32]bool{}
	var cands []Candidate
	for len(cands) < nWant && len(used) < int(dsU) {
		d := int32(r.Intn(int(dsU)))
		if used[d] {
			continue
		}
		used[d] = true
		rtt := r.Uniform(1, 60)
		cands = append(cands, Candidate{
			DS: d, RTT: rtt, Timeout: beta * rtt, Priv: int32(r.Intn(5)),
		})
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].DS > cands[i].DS {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	srcRTT := r.Uniform(20, 250)
	return &StrategyGraph{
		Client: 1, ClientDepth: dsU, Candidates: cands,
		SourceRTT: srcRTT, SourceTimeout: beta * srcRTT,
		AllowDirectSource: true,
	}
}

// Property: the optimum never exceeds the direct-source cost, and the
// returned list is strictly descending in DS with distinct entries.
func TestPropOptimumStructure(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		sg := genSG(seed, size, 3)
		st := sg.Algorithm1()
		if st.ExpectedDelay > sg.SourceRTT+1e-9 {
			return false
		}
		prev := sg.ClientDepth
		for _, c := range st.Peers {
			if c.DS >= prev {
				return false
			}
			prev = c.DS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a candidate cannot improve the optimum (more options
// never hurt an optimal planner).
func TestPropMoreOptionsNeverHurt(t *testing.T) {
	f := func(seed uint64, size uint8, dropByte uint8) bool {
		sg := genSG(seed, size, 3)
		full := sg.Algorithm1().ExpectedDelay
		if len(sg.Candidates) == 0 {
			return true
		}
		drop := int(dropByte) % len(sg.Candidates)
		reduced := &StrategyGraph{
			Client: sg.Client, ClientDepth: sg.ClientDepth,
			SourceRTT: sg.SourceRTT, SourceTimeout: sg.SourceTimeout,
			AllowDirectSource: true,
		}
		for i, c := range sg.Candidates {
			if i != drop {
				reduced.Candidates = append(reduced.Candidates, c)
			}
		}
		return reduced.Algorithm1().ExpectedDelay >= full-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimum is monotone in the timeout factor — cheaper failed
// attempts can only help.
func TestPropOptimumMonotoneInTimeout(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		lo := genSG(seed, size, 1.5).Algorithm1().ExpectedDelay
		hi := genSG(seed, size, 4).Algorithm1().ExpectedDelay
		return lo <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the restricted optimum is never better than the unrestricted
// one, and both coincide when the unrestricted optimum already starts with
// a peer.
func TestPropRestrictionOrdering(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		open := genSG(seed, size, 3)
		openOpt := open.Algorithm1()
		restricted := genSG(seed, size, 3)
		restricted.AllowDirectSource = false
		resOpt := restricted.Algorithm1()
		if resOpt.ExpectedDelay < openOpt.ExpectedDelay-1e-9 {
			return false
		}
		if len(openOpt.Peers) > 0 &&
			math.Abs(resOpt.ExpectedDelay-openOpt.ExpectedDelay) > 1e-9 {
			// If the unrestricted plan already avoids the direct edge,
			// restriction must not change the value.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the loss-aware DP optimum is monotone non-increasing in q (a
// more reliable network can only lower the optimal expected delay, since
// the q=low model prices every list higher).
func TestPropDPMonotoneInQ(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		sg := genSG(seed, size, 3)
		prev := math.Inf(1)
		for _, q := range []float64{0.6, 0.8, 0.95, 1} {
			v := sg.OptimalDP(q).ExpectedDelay
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: prepending the optimum's own first peer to the REMAINING
// optimum reproduces the optimum value (Bellman consistency of the DP).
func TestPropBellmanConsistency(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		sg := genSG(seed, size, 3)
		st := sg.Algorithm1()
		return math.Abs(st.Evaluate()-st.ExpectedDelay) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
