package core

import (
	"fmt"

	"rmcast/internal/graph"
)

// This file is the batch planning path: PlanAll computes every client's
// strategy in one shared pass. Per-client, the result is identical to
// StrategyFor — candidate classes (Lemma 4), descending-DS order (Lemma 5),
// then Algorithm 1 or the loss-aware DP — but the pass shares all scratch
// state across clients and, when the preconditions hold, replaces the
// per-client peer scan with the tree-aggregated index of treeagg.go:
//
//   - Fast path (computeFastMode != fastOff): every candidate class of u is
//     keyed by a meet router on u's root path, and the class winner is an
//     O(1) aggregate lookup, so one client plans in O(depth) and the whole
//     batch in O(N·depth) instead of O(N²). The candidate list falls out
//     already in descending-DS order (ancestors have strictly decreasing
//     depth). The winner's RTT/Timeout fields are filled through the same
//     route calls as the scan, so strategies match field for field; tests
//     fuzz this equivalence across configurations and topologies.
//   - Scan path (the fallback, and the former implementation): the
//     competitive-class winner table is a dense epoch-stamped slice indexed
//     by meet router, the candidate list and shortest-path buffers are
//     reused across clients, and LCA queries hit the O(1) Euler-tour table.
//
// Exactness caveat: the fast path ranks by DelayFromRoot while the scan
// compares summed float costs. With integer (or any dyadic) link delays the
// two are exactly equivalent; with continuous random delays a divergence
// requires two distinct real delays to collapse to the same float sum,
// which has probability zero. Only adversarial non-dyadic delay sets can
// tell the paths apart, and then only by swapping equal-cost winners.
//
// The harness plans every client of every topology of every sweep cell, so
// this path is what BenchmarkPlannerAll measures and what the RP engines
// call at session construction.

// planScratch holds the buffers PlanAll shares across clients.
type planScratch struct {
	// mark/classIdx form the epoch-stamped class-winner table: classIdx[r]
	// is the index in cands of the current winner of meet router r, valid
	// only when mark[r] == epoch.
	mark     []uint32
	classIdx []int32
	epoch    uint32
	// cands is the reused candidate buffer.
	cands []Candidate
	// dist/parent/rev back algorithm1; W/choice back optimalDP.
	dist   []float64
	parent []int
	rev    []int
	W      []float64
	choice []int
}

func newPlanScratch(nodes int) *planScratch {
	return &planScratch{
		mark:     make([]uint32, nodes),
		classIdx: make([]int32, nodes),
	}
}

// batchState lazily builds the planner's shared batch machinery: the
// scratch buffers, the fast-path eligibility decision, and (when eligible)
// the tree aggregate over the full client set. The decision is made once —
// Tree/Routes/Timeout/LossProb must not change after the first batch call.
func (p *Planner) batchState() {
	if p.sc == nil {
		p.sc = newPlanScratch(len(p.Tree.Depth))
	}
	if !p.modeSet {
		p.mode = p.computeFastMode()
		p.modeSet = true
		if p.mode != fastOff {
			p.agg = newTreeAgg(p.Tree)
		}
	}
}

// UsesFastPath reports whether batch planning uses the tree-aggregated
// near-linear path (as opposed to the O(N²) peer scan). Diagnostic; the
// result is fixed at the first batch planning call.
func (p *Planner) UsesFastPath() bool {
	p.batchState()
	return p.mode != fastOff
}

// PlanAll computes strategies for every client in one batch pass. The
// result is identical (field for field) to calling StrategyFor per client;
// tests assert this across planner configurations.
func (p *Planner) PlanAll() map[graph.NodeID]*Strategy {
	return p.PlanAllInto(nil)
}

// PlanAllInto is PlanAll writing into a caller-retained result map: map
// entries and their Strategy values (including Peers backing arrays) are
// updated in place, so steady-state replanning — the RP session attach
// path, sweep cells over the same topology — allocates nothing. A nil map
// behaves like PlanAll. The returned map is the input map.
func (p *Planner) PlanAllInto(out map[graph.NodeID]*Strategy) map[graph.NodeID]*Strategy {
	if out == nil {
		out = make(map[graph.NodeID]*Strategy, len(p.Tree.Clients))
	}
	p.batchState()
	if p.mode != fastOff {
		for _, u := range p.Tree.Clients {
			out[u] = p.planOneTree(u, p.sc, out[u])
		}
		return out
	}
	for _, u := range p.Tree.Clients {
		out[u] = p.planOne(u, p.sc, out[u])
	}
	return out
}

// PlanAllDense is PlanAll into a dense slice indexed by client position in
// Tree.Clients: no map, no per-lookup hashing. The million-client tier uses
// it — at n=1,000,000 a strategy map costs hundreds of MB of buckets and its
// iteration order forces a sort anywhere determinism matters, while the
// dense form is one flat allocation in the tree's canonical client order.
func (p *Planner) PlanAllDense() []*Strategy { return p.PlanAllDenseInto(nil) }

// PlanAllDenseInto is PlanAllDense writing into a caller-retained slice
// (len ≥ len(Tree.Clients)); entries are updated in place like PlanAllInto.
// A nil slice behaves like PlanAllDense.
func (p *Planner) PlanAllDenseInto(out []*Strategy) []*Strategy {
	if out == nil {
		out = make([]*Strategy, len(p.Tree.Clients))
	}
	p.batchState()
	if p.mode != fastOff {
		for i, u := range p.Tree.Clients {
			out[i] = p.planOneTree(u, p.sc, out[i])
		}
		return out
	}
	for i, u := range p.Tree.Clients {
		out[i] = p.planOne(u, p.sc, out[i])
	}
	return out
}

// candidateOf materialises the class-winner candidate for client u at meet
// router meet. Both planning paths build candidates through this helper, so
// the fast path's strategies carry bit-identical RTT/Timeout fields. meet is
// always LCA(u, v) at every call site — planOne computes it, planOneTree
// reads it off the root path — so meetRTT may shortcut the route query.
func (p *Planner) candidateOf(u, meet, v graph.NodeID, pol TimeoutPolicy) Candidate {
	rtt := p.meetRTT(u, v, meet)
	return Candidate{
		Peer:    v,
		Meet:    meet,
		DS:      p.Tree.Depth[meet],
		RTT:     rtt,
		Timeout: pol.Timeout(rtt),
		Priv:    p.Tree.Depth[v] - p.Tree.Depth[meet],
	}
}

// planOne computes one client's strategy by scanning every peer (the
// always-correct fallback). into, when non-nil, is updated in place.
func (p *Planner) planOne(u graph.NodeID, sc *planScratch, into *Strategy) *Strategy {
	if !p.Tree.Net.IsClient(u) {
		panic(fmt.Sprintf("core: plan of non-client node %d", u))
	}
	pol := p.timeout()
	sc.epoch++
	sc.cands = sc.cands[:0]
	for _, v := range p.Tree.Clients {
		if v == u {
			continue
		}
		meet := p.Tree.LCA(u, v)
		cand := p.candidateOf(u, meet, v, pol)
		if sc.mark[meet] != sc.epoch {
			sc.mark[meet] = sc.epoch
			sc.classIdx[meet] = int32(len(sc.cands))
			sc.cands = append(sc.cands, cand)
			continue
		}
		cur := &sc.cands[sc.classIdx[meet]]
		// Same winner rule as Candidates: cheapest expected attempt cost,
		// ties by lower peer ID (Lemma 4 admits one winner per class).
		cc, pc := p.attemptCost(u, cand), p.attemptCost(u, *cur)
		if cc < pc || (cc == pc && cand.Peer < cur.Peer) {
			*cur = cand
		}
	}
	return p.finishPlan(u, sc, pol, into)
}

// planOneTree computes one client's strategy from the tree aggregate: the
// meet routers of u are exactly the nodes of u's root path (u itself when
// peers sit below it), and each class winner is an O(1) lookup excluding
// the branch u hangs under. Candidates emerge deepest-first, i.e. already
// in the strictly-descending-DS order Lemma 5 requires.
func (p *Planner) planOneTree(u graph.NodeID, sc *planScratch, into *Strategy) *Strategy {
	if !p.Tree.Net.IsClient(u) {
		panic(fmt.Sprintf("core: plan of non-client node %d", u))
	}
	pol := p.timeout()
	t := p.Tree
	sc.cands = sc.cands[:0]
	// Descendant class first (meet == u): peers strictly below u. Its
	// conditional loss probability is 1, so under constant-cost policies
	// (fastKeyPeerSelf) the scan's tie-break degenerates to min peer ID.
	var e aggEntry
	if p.mode == fastKeyPeerSelf {
		e = bestExcluding(&p.agg.byPeer[u], aggSelf)
	} else {
		e = bestExcluding(&p.agg.byKey[u], aggSelf)
	}
	if e.peer != graph.None {
		sc.cands = append(sc.cands, p.candidateOf(u, u, e.peer, pol))
	}
	// Ancestor classes, deepest first: exclude the branch leading to u.
	for x := u; t.Parent[x] != graph.None; x = t.Parent[x] {
		r := t.Parent[x]
		e := bestExcluding(&p.agg.byKey[r], p.agg.childPos[x])
		if e.peer != graph.None {
			sc.cands = append(sc.cands, p.candidateOf(u, r, e.peer, pol))
		}
	}
	return p.finishPlan(u, sc, pol, into)
}

// finishPlan runs the shared tail of both planning paths: candidate order,
// strategy graph, and the shortest-path solver over the shared scratch.
func (p *Planner) finishPlan(u graph.NodeID, sc *planScratch, pol TimeoutPolicy, into *Strategy) *Strategy {
	sortCandidates(sc.cands)
	srcRTT := p.Routes.RTT(u, p.Tree.Root)
	sg := &StrategyGraph{
		Client:            u,
		ClientDepth:       p.Tree.Depth[u],
		Candidates:        sc.cands,
		SourceRTT:         srcRTT,
		SourceTimeout:     pol.Timeout(srcRTT),
		AllowDirectSource: p.AllowDirectSource,
	}
	// Grow the shortest-path scratch once; the solvers reslice it.
	if need := len(sc.cands) + 2; cap(sc.dist) < need {
		sc.dist = make([]float64, need)
		sc.parent = make([]int, need)
		sc.rev = make([]int, need)
		sc.W = make([]float64, need)
		sc.choice = make([]int, need)
	}
	if p.LossProb > 0 {
		return sg.optimalDP(1-p.LossProb, sc.W, sc.choice, into)
	}
	return sg.algorithm1(sc.dist, sc.parent, sc.rev, into)
}
