package core

import (
	"fmt"

	"rmcast/internal/graph"
)

// This file is the batch planning path: PlanAll computes every client's
// strategy in one shared pass. Per-client, the work is identical to
// StrategyFor — candidate classes (Lemma 4), descending-DS order (Lemma 5),
// then Algorithm 1 or the loss-aware DP — but the pass shares all scratch
// state across clients:
//
//   - the competitive-class winner table is a dense epoch-stamped slice
//     indexed by meet router instead of a fresh map per client, so class
//     reduction does no hashing and no per-client allocation;
//   - the candidate list and the shortest-path buffers are reused across
//     clients (strategies never retain them: Peers are copied out);
//   - LCA queries hit the tree's O(1) Euler-tour sparse table, so the
//     k² meet-depth lookups cost two array reads each.
//
// The harness plans every client of every topology of every sweep cell, so
// this path is what BenchmarkPlannerAll measures and what the RP engines
// call at session construction.

// planScratch holds the buffers PlanAll shares across clients.
type planScratch struct {
	// mark/classIdx form the epoch-stamped class-winner table: classIdx[r]
	// is the index in cands of the current winner of meet router r, valid
	// only when mark[r] == epoch.
	mark     []uint32
	classIdx []int32
	epoch    uint32
	// cands is the reused candidate buffer.
	cands []Candidate
	// dist/parent back algorithm1; W/choice back optimalDP.
	dist   []float64
	parent []int
	W      []float64
	choice []int
}

func newPlanScratch(nodes int) *planScratch {
	return &planScratch{
		mark:     make([]uint32, nodes),
		classIdx: make([]int32, nodes),
	}
}

// PlanAll computes strategies for every client in one batch pass. The
// result is identical (field for field) to calling StrategyFor per client;
// tests assert this across planner configurations.
func (p *Planner) PlanAll() map[graph.NodeID]*Strategy {
	sc := newPlanScratch(len(p.Tree.Depth))
	out := make(map[graph.NodeID]*Strategy, len(p.Tree.Clients))
	for _, u := range p.Tree.Clients {
		out[u] = p.planOne(u, sc)
	}
	return out
}

// planOne computes one client's strategy using the shared scratch.
func (p *Planner) planOne(u graph.NodeID, sc *planScratch) *Strategy {
	if !p.Tree.Net.IsClient(u) {
		panic(fmt.Sprintf("core: plan of non-client node %d", u))
	}
	pol := p.timeout()
	sc.epoch++
	sc.cands = sc.cands[:0]
	for _, v := range p.Tree.Clients {
		if v == u {
			continue
		}
		meet := p.Tree.LCA(u, v)
		rtt := p.Routes.RTT(u, v)
		cand := Candidate{
			Peer:    v,
			Meet:    meet,
			DS:      p.Tree.Depth[meet],
			RTT:     rtt,
			Timeout: pol.Timeout(rtt),
			Priv:    p.Tree.Depth[v] - p.Tree.Depth[meet],
		}
		if sc.mark[meet] != sc.epoch {
			sc.mark[meet] = sc.epoch
			sc.classIdx[meet] = int32(len(sc.cands))
			sc.cands = append(sc.cands, cand)
			continue
		}
		cur := &sc.cands[sc.classIdx[meet]]
		// Same winner rule as Candidates: cheapest expected attempt cost,
		// ties by lower peer ID (Lemma 4 admits one winner per class).
		cc, pc := p.attemptCost(u, cand), p.attemptCost(u, *cur)
		if cc < pc || (cc == pc && cand.Peer < cur.Peer) {
			*cur = cand
		}
	}
	sortCandidates(sc.cands)
	srcRTT := p.Routes.RTT(u, p.Tree.Root)
	sg := &StrategyGraph{
		Client:            u,
		ClientDepth:       p.Tree.Depth[u],
		Candidates:        sc.cands,
		SourceRTT:         srcRTT,
		SourceTimeout:     pol.Timeout(srcRTT),
		AllowDirectSource: p.AllowDirectSource,
	}
	// Grow the shortest-path scratch once; algorithm1/optimalDP reslice it.
	if need := len(sc.cands) + 2; cap(sc.dist) < need {
		sc.dist = make([]float64, need)
		sc.parent = make([]int, need)
		sc.W = make([]float64, need)
		sc.choice = make([]int, need)
	}
	if p.LossProb > 0 {
		return sg.optimalDP(1-p.LossProb, sc.W, sc.choice)
	}
	return sg.algorithm1(sc.dist, sc.parent)
}
