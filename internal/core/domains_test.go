package core

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// TestDomainAggregatorsMatchElectorate pins the aggregator election rule:
// each domain's aggregator is exactly what an Electorate answers after every
// client outside the domain withdraws — the same (DelayFromRoot, NodeID)
// Algorithm-1 ranking, restricted to domain membership.
func TestDomainAggregatorsMatchElectorate(t *testing.T) {
	for _, n := range []int{24, 100, 513} {
		net, err := topology.GenerateTree(topology.DefaultTreeConfig(n), rng.New(uint64(400+n)))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := mtree.Build(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int{4, 16, 64} {
			part := mtree.PartitionDomains(tree, target)
			agg := DomainAggregators(tree, part)
			if len(agg) != part.K {
				t.Fatalf("n=%d target=%d: %d aggregators for %d domains", n, target, len(agg), part.K)
			}
			for d := 0; d < part.K; d++ {
				e := NewElectorate(tree)
				members := 0
				for _, c := range tree.Clients {
					if int(part.ShardOf[c]) != d {
						e.Leave(c)
					} else {
						members++
					}
				}
				want := e.Best()
				if members == 0 {
					want = graph.None
				}
				if agg[d] != want {
					t.Fatalf("n=%d target=%d domain %d: aggregator %d, electorate says %d",
						n, target, d, agg[d], want)
				}
				// The aggregator must be a member of its own domain.
				if agg[d] != graph.None && int(part.ShardOf[agg[d]]) != d {
					t.Fatalf("n=%d target=%d: aggregator %d not in domain %d", n, target, agg[d], d)
				}
			}
		}
	}
}

// TestDomainAggregatorsLiteTree checks the election runs identically on a
// BuildLite tree — the million-client path never builds the full LCA index.
func TestDomainAggregatorsLiteTree(t *testing.T) {
	net, err := topology.GenerateTree(topology.DefaultTreeConfig(200), rng.New(88))
	if err != nil {
		t.Fatal(err)
	}
	full, err := mtree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	lite, err := mtree.BuildLite(net)
	if err != nil {
		t.Fatal(err)
	}
	pf := mtree.PartitionDomains(full, 16)
	pl := mtree.PartitionDomains(lite, 16)
	af, al := DomainAggregators(full, pf), DomainAggregators(lite, pl)
	if len(af) != len(al) {
		t.Fatalf("domain counts diverge: %d vs %d", len(af), len(al))
	}
	for d := range af {
		if af[d] != al[d] {
			t.Fatalf("domain %d: full-tree aggregator %d, lite-tree %d", d, af[d], al[d])
		}
	}
}

// TestPlanAllDenseMatchesPlanAll pins the dense batch path: the slice entry
// for Tree.Clients[i] must equal the map entry for that client, field for
// field, on both a full and a lite tree (the latter exercising the
// RTTVia/meetRTT LCA-free planning path end to end).
func TestPlanAllDenseMatchesPlanAll(t *testing.T) {
	for _, lite := range []bool{false, true} {
		net, err := topology.GenerateTree(topology.DefaultTreeConfig(120), rng.New(19))
		if err != nil {
			t.Fatal(err)
		}
		build := mtree.Build
		if lite {
			build = mtree.BuildLite
		}
		tree, err := build(net)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPlanner(tree, route.NewTreeTables(tree))
		want := p.PlanAll()
		got := p.PlanAllDense()
		if len(got) != len(tree.Clients) {
			t.Fatalf("lite=%v: dense length %d, want %d", lite, len(got), len(tree.Clients))
		}
		for i, u := range tree.Clients {
			w := want[u]
			g := got[i]
			if g == nil || w == nil {
				t.Fatalf("lite=%v: nil strategy for client %d", lite, u)
			}
			if g.Client != w.Client || g.ExpectedDelay != w.ExpectedDelay ||
				g.SourceRTT != w.SourceRTT || g.SourceTimeout != w.SourceTimeout ||
				len(g.Peers) != len(w.Peers) {
				t.Fatalf("lite=%v client %d: dense strategy diverges: %v vs %v", lite, u, g, w)
			}
			for j := range g.Peers {
				if g.Peers[j] != w.Peers[j] {
					t.Fatalf("lite=%v client %d peer %d: %v vs %v", lite, u, j, g.Peers[j], w.Peers[j])
				}
			}
		}
		// The in-place variant updates the same backing objects.
		prev := append([]*Strategy(nil), got...)
		again := p.PlanAllDenseInto(got)
		for i := range again {
			if again[i] != prev[i] {
				t.Fatalf("lite=%v: PlanAllDenseInto reallocated entry %d", lite, i)
			}
		}
	}
}
