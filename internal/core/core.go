// Package core implements the paper's primary contribution: the RP
// ("Recovery strategy based on Prioritized list") algorithm of §3–4, which
// computes, for every multicast client, the prioritized list of peer clients
// that minimizes the expected recovery delay of a lost packet.
//
// The pipeline per client u is:
//
//  1. Partition the other clients into competitive equivalence classes by
//     their first common router with u (§4, Lemma 4) and keep the cheapest
//     member of each class (the "candidate clients").
//  2. Sort candidates by strictly descending meet depth DS ("meaningful
//     strategies", Lemma 5).
//  3. Build the strategy graph (Definition 1): a weighted DAG whose u⇝S
//     paths are exactly the meaningful recovery strategies, with path
//     length equal to the expected recovery delay of Eq. (3).
//  4. Run Algorithm 1 — DAG shortest path with the paper's
//     distance-vs-source prune — to extract the optimal strategy in O(N²).
//
// The expected-delay model follows §3: conditioned on u having lost the
// packet in a reliable network, the loss sits on exactly one link of the
// S→u tree path, uniformly (Lemmas 1–3 are the resulting telescoping
// conditionals). An attempt at peer v_j costs its RTT if v_j has the packet
// and the timeout t0_j otherwise.
package core

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/route"
)

// TimeoutPolicy chooses the per-attempt timeout t0 used both in planning
// (Eq. 1) and by the RP protocol engine at run time. §3.1 discusses the
// trade-off: a pure timeout grossly overestimates d(), a pure RTT estimate
// underestimates it; the combined estimate needs some t0.
type TimeoutPolicy interface {
	// Timeout returns t0 for an attempt whose estimated RTT is rtt.
	Timeout(rtt float64) float64
}

// FixedTimeout is a constant t0 in milliseconds, the paper's plain
// "let the timeout be t0".
type FixedTimeout float64

// Timeout implements TimeoutPolicy.
func (f FixedTimeout) Timeout(float64) float64 { return float64(f) }

// ProportionalTimeout sets t0 = factor·rtt — an adaptive timeout in the
// style of TCP RTO. The reproduction experiments use factor 3.
type ProportionalTimeout float64

// Timeout implements TimeoutPolicy.
func (p ProportionalTimeout) Timeout(rtt float64) float64 { return float64(p) * rtt }

// Candidate is one prospective recovery peer of a client u: the cheapest
// member of one competitive equivalence class.
type Candidate struct {
	// Peer is the candidate client.
	Peer graph.NodeID
	// Meet is R, the first common router of u and Peer on the tree.
	Meet graph.NodeID
	// DS is the hop count from the source to Meet along the tree.
	DS int32
	// RTT is the unicast round-trip estimate between u and Peer.
	RTT float64
	// Timeout is t0 for an attempt at Peer.
	Timeout float64
	// Priv is the number of tree links on Peer's private path below the
	// meet router (Depth[Peer] − DS) — the exposure the loss-aware model
	// charges against the peer (see aware.go).
	Priv int32
}

// Strategy is a computed recovery strategy for one client: the prioritized
// peer list, ending implicitly at the source.
type Strategy struct {
	// Client is u.
	Client graph.NodeID
	// ClientDepth is DS_u, the tree hop count from the source to u.
	ClientDepth int32
	// Peers is the prioritized list L_u = {v1 … vk}; may be empty, in
	// which case recovery goes straight to the source.
	Peers []Candidate
	// SourceRTT is the unicast round-trip estimate between u and S.
	SourceRTT float64
	// SourceTimeout is t0 for a source attempt (the protocol retries the
	// source forever, so this is a retransmission interval).
	SourceTimeout float64
	// ExpectedDelay is the modelled expected recovery delay of this
	// strategy (the strategy-graph shortest-path length).
	ExpectedDelay float64
}

// String renders the strategy compactly for logs and the cmd/strategy tool.
func (s *Strategy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client %d (DS=%d):", s.Client, s.ClientDepth)
	for _, c := range s.Peers {
		fmt.Fprintf(&b, " →%d(DS=%d,rtt=%.2f)", c.Peer, c.DS, c.RTT)
	}
	fmt.Fprintf(&b, " →S(rtt=%.2f) E[delay]=%.3f", s.SourceRTT, s.ExpectedDelay)
	return b.String()
}

// Planner computes strategies for the clients of one multicast tree.
type Planner struct {
	// Tree is the multicast tree.
	Tree *mtree.Tree
	// Routes supplies RTT estimates (§3.1's routing-table method).
	Routes route.Router
	// Timeout is the per-attempt timeout policy; nil means
	// ProportionalTimeout(3).
	Timeout TimeoutPolicy
	// AllowDirectSource controls the (u→S) edge of the strategy graph.
	// Disabling it reproduces the paper's restricted strategies that
	// "alleviate congestion at source" (§4); the source then appears only
	// after at least one peer attempt (unless u has no candidates at all).
	AllowDirectSource bool
	// LossProb, when positive, switches planning to the loss-aware model
	// (see aware.go) with per-link survival q = 1−LossProb: candidate
	// selection and optimization then account for peers' private-path
	// losses, which the paper's reliable-network model ignores. Zero (the
	// default) is the paper-faithful planner.
	LossProb float64
	// DisableFastPath forces batch planning onto the O(N²) peer scan even
	// when the tree-aggregated path applies. Benchmark/testing knob; the
	// two paths produce identical strategies.
	DisableFastPath bool

	// Lazily built batch-planning state (see planall.go/treeagg.go). The
	// configuration fields above must be set before the first batch call;
	// batch planning methods are not safe for concurrent use on one
	// Planner (per-client methods like StrategyFor remain safe).
	sc      *planScratch
	agg     *treeAgg
	mode    fastMode
	modeSet bool
	mr      meetRouter
	mrSet   bool
}

// meetRouter is implemented by routers that can answer an RTT query from the
// endpoints' precomputed meet router alone (route.TreeTables.RTTVia). Every
// candidate the batch planner builds carries its meet by construction, so on
// such routers planning needs no LCA queries at all — the property that
// keeps BuildLite trees (no O(1) LCA index) off the planning critical path.
type meetRouter interface {
	RTTVia(a, b, meet graph.NodeID) float64
}

// meetRTT returns RTT(u, v) given their meet router, using RTTVia when the
// router offers it (bit-identical by contract) and the plain RTT query
// otherwise.
func (p *Planner) meetRTT(u, v, meet graph.NodeID) float64 {
	if !p.mrSet {
		p.mr, _ = p.Routes.(meetRouter)
		p.mrSet = true
	}
	if p.mr != nil {
		return p.mr.RTTVia(u, v, meet)
	}
	return p.Routes.RTT(u, v)
}

// NewPlanner returns a Planner with the default timeout policy and direct
// source access allowed.
func NewPlanner(t *mtree.Tree, rt route.Router) *Planner {
	return &Planner{Tree: t, Routes: rt, Timeout: ProportionalTimeout(3), AllowDirectSource: true}
}

func (p *Planner) timeout() TimeoutPolicy {
	if p.Timeout == nil {
		return ProportionalTimeout(3)
	}
	return p.Timeout
}

// Candidates computes the candidate clients of u (§4): the other group
// members partitioned into competitive classes by meet router, reduced to
// the minimum-RTT member per class (Lemma 4 allows at most one per class;
// the cheapest is the only one that can appear in an optimal list), and
// sorted by strictly descending DS (Lemma 5). Ties within a class break by
// RTT then by node ID, making the result deterministic; the paper breaks
// them "at random", which is equivalent for the objective value.
func (p *Planner) Candidates(u graph.NodeID) []Candidate {
	if !p.Tree.Net.IsClient(u) {
		panic(fmt.Sprintf("core: Candidates of non-client node %d", u))
	}
	pol := p.timeout()
	best := make(map[graph.NodeID]Candidate) // meet router → cheapest member
	for _, v := range p.Tree.Clients {
		if v == u {
			continue
		}
		meet := p.Tree.LCA(u, v)
		rtt := p.Routes.RTT(u, v)
		cand := Candidate{
			Peer:    v,
			Meet:    meet,
			DS:      p.Tree.Depth[meet],
			RTT:     rtt,
			Timeout: pol.Timeout(rtt),
			Priv:    p.Tree.Depth[v] - p.Tree.Depth[meet],
		}
		cur, ok := best[meet]
		if !ok {
			best[meet] = cand
			continue
		}
		// Within a class the cheapest member is the only possible optimal
		// entry (Lemma 4). "Cheapest" is the expected attempt cost at the
		// widest prefix; with the paper's model (q=1) that is simply
		// min-RTT under a uniform timeout policy.
		cc, pc := p.attemptCost(u, cand), p.attemptCost(u, cur)
		if cc < pc || (cc == pc && cand.Peer < cur.Peer) {
			best[meet] = cand
		}
	}
	out := make([]Candidate, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	sortCandidates(out)
	return out
}

// sortCandidates orders a candidate list the way every planning path
// requires: strictly descending DS (Lemma 5), with equal-DS classes broken
// by ascending peer ID. The tiebreak makes the order — and therefore any
// tie in the downstream shortest-path selection — independent of map
// iteration order, which the parallel harness needs for bit-identical
// reruns. The key is a total order (one winner per class), so the result
// is unique regardless of sorting algorithm; insertion sort handles the
// common short, mostly-sorted lists without sort.Slice's closure
// allocation, with slices.SortFunc (also allocation-free) past the cutoff.
func sortCandidates(cs []Candidate) {
	if len(cs) <= 32 {
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && candCmp(cs[j], cs[j-1]) < 0; j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
		return
	}
	slices.SortFunc(cs, candCmp)
}

// candCmp is the candidate ordering: DS descending, then peer ascending.
func candCmp(a, b Candidate) int {
	if c := cmp.Compare(b.DS, a.DS); c != 0 {
		return c
	}
	return cmp.Compare(a.Peer, b.Peer)
}

// attemptCost is the expected cost of asking cand first (prefix DS_u),
// used only to rank members within one competitive class.
func (p *Planner) attemptCost(u graph.NodeID, cand Candidate) float64 {
	pl := CondLossProbQ(cand.DS, p.Tree.Depth[u], cand.Priv, 1-p.LossProb)
	return (1-pl)*cand.RTT + pl*cand.Timeout
}

// StrategyFor computes the optimal recovery strategy for client u: the
// paper's Algorithm 1 on the strategy graph, or the loss-aware backward DP
// when LossProb is set (see aware.go).
func (p *Planner) StrategyFor(u graph.NodeID) *Strategy {
	sg := p.BuildStrategyGraph(u)
	if p.LossProb > 0 {
		return sg.OptimalDP(1 - p.LossProb)
	}
	return sg.Algorithm1()
}

// All computes strategies for every client, keyed by client node. It
// delegates to the batch path PlanAll (see planall.go), which produces
// results identical to calling StrategyFor per client.
func (p *Planner) All() map[graph.NodeID]*Strategy {
	return p.PlanAll()
}
