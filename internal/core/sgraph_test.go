package core

import (
	"math"
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// syntheticGraph builds a StrategyGraph directly from synthetic candidates,
// bypassing topology construction, for focused algorithm tests.
func syntheticGraph(r *rng.Rand, maxCands int, allowDirect bool) *StrategyGraph {
	dsU := int32(3 + r.Intn(15))
	n := r.Intn(maxCands + 1)
	// Distinct DS values strictly below dsU, descending.
	ds := map[int32]bool{}
	var cands []Candidate
	for len(cands) < n && len(ds) < int(dsU) {
		d := int32(r.Intn(int(dsU)))
		if ds[d] {
			continue
		}
		ds[d] = true
		rtt := r.Uniform(1, 60)
		cands = append(cands, Candidate{
			Peer:    0,
			DS:      d,
			RTT:     rtt,
			Timeout: r.Uniform(1, 4) * rtt,
		})
	}
	// Sort descending by DS.
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].DS > cands[i].DS {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	srcRTT := r.Uniform(20, 300)
	return &StrategyGraph{
		Client:            1,
		ClientDepth:       dsU,
		Candidates:        cands,
		SourceRTT:         srcRTT,
		SourceTimeout:     3 * srcRTT,
		AllowDirectSource: allowDirect,
	}
}

func TestAlgorithm1MatchesGenericDAGSP(t *testing.T) {
	r := rng.New(31337)
	for trial := 0; trial < 400; trial++ {
		sg := syntheticGraph(r, 12, trial%2 == 0)
		a := sg.Algorithm1()
		b := sg.ShortestPathDAG()
		if math.Abs(a.ExpectedDelay-b.ExpectedDelay) > 1e-9 {
			t.Fatalf("trial %d: Algorithm1 %v != DAG SP %v", trial,
				a.ExpectedDelay, b.ExpectedDelay)
		}
		if len(a.Peers) != len(b.Peers) {
			// Equal-cost alternates are possible in principle but with
			// continuous random weights should not occur.
			t.Fatalf("trial %d: different list lengths %d vs %d",
				trial, len(a.Peers), len(b.Peers))
		}
	}
}

func TestAlgorithm1MatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 300; trial++ {
		sg := syntheticGraph(r, 10, true)
		st := sg.Algorithm1()
		best, bestList := BruteForceMeaningful(sg.Candidates, sg.ClientDepth, sg.SourceRTT)
		if math.Abs(st.ExpectedDelay-best) > 1e-9 {
			t.Fatalf("trial %d: Algorithm1 %v != brute force %v (list %v vs %v)",
				trial, st.ExpectedDelay, best, st.Peers, bestList)
		}
	}
}

// TestAlgorithm1BeatsAnyOrder validates Lemmas 4 and 5 empirically: the
// optimum over meaningful strategies (what Algorithm 1 searches) equals the
// optimum over ALL ordered peer sequences, including non-descending orders
// and competitive duplicates.
func TestAlgorithm1BeatsAnyOrder(t *testing.T) {
	r := rng.New(7331)
	for trial := 0; trial < 60; trial++ {
		dsU := int32(3 + r.Intn(8))
		nPool := 1 + r.Intn(5)
		// One timeout policy for the whole pool — the planner invariant
		// that makes min-RTT-per-class candidate selection optimal.
		beta := r.Uniform(1.5, 4)
		pool := make([]AttemptRef, nPool)
		for i := range pool {
			rtt := r.Uniform(1, 50)
			pool[i] = AttemptRef{
				DS:      int32(r.Intn(int(dsU))),
				RTT:     rtt,
				Timeout: beta * rtt,
			}
		}
		srcRTT := r.Uniform(20, 200)

		// Candidates: cheapest per DS class, descending.
		best := map[int32]AttemptRef{}
		for _, a := range pool {
			if cur, ok := best[a.DS]; !ok || a.RTT < cur.RTT {
				best[a.DS] = a
			}
		}
		var cands []Candidate
		for ds, a := range best {
			cands = append(cands, Candidate{DS: ds, RTT: a.RTT, Timeout: a.Timeout})
		}
		for i := range cands {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].DS > cands[i].DS {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		sg := &StrategyGraph{
			Client: 1, ClientDepth: dsU, Candidates: cands,
			SourceRTT: srcRTT, SourceTimeout: 3 * srcRTT, AllowDirectSource: true,
		}
		algo := sg.Algorithm1().ExpectedDelay
		exhaustive := BruteForceAnyOrder(pool, dsU, srcRTT)
		if algo > exhaustive+1e-9 {
			t.Fatalf("trial %d: Algorithm1 %v worse than exhaustive %v",
				trial, algo, exhaustive)
		}
		if exhaustive < algo-1e-9 {
			t.Fatalf("trial %d: exhaustive %v beat Algorithm1 %v — lemma violation",
				trial, exhaustive, algo)
		}
	}
}

func TestStrategyGraphPathLengthEqualsEval(t *testing.T) {
	// The strategy-graph path length must equal the independent evaluation
	// of the extracted list — on synthetic and real instances.
	r := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		sg := syntheticGraph(r, 10, true)
		st := sg.Algorithm1()
		if ev := st.Evaluate(); math.Abs(ev-st.ExpectedDelay) > 1e-9*(1+ev) {
			t.Fatalf("trial %d: path length %v != evaluation %v",
				trial, st.ExpectedDelay, ev)
		}
	}
}

func TestStrategyGraphExplicitDigraphShape(t *testing.T) {
	r := rng.New(5)
	sg := syntheticGraph(r, 6, true)
	n := len(sg.Candidates)
	d := sg.Digraph()
	if d.NumNodes() != n+2 {
		t.Fatalf("digraph nodes %d, want %d", d.NumNodes(), n+2)
	}
	// Definition 1 edge count: u→each candidate (n) + u→S (1) +
	// v_i→v_j for i<j (n(n-1)/2) + v_i→S (n).
	want := n + 1 + n*(n-1)/2 + n
	if d.NumArcs() != want {
		t.Fatalf("digraph arcs %d, want %d", d.NumArcs(), want)
	}
}

func TestStrategyGraphRestrictedOmitsDirectArc(t *testing.T) {
	r := rng.New(6)
	var sg *StrategyGraph
	for {
		sg = syntheticGraph(r, 6, false)
		if len(sg.Candidates) > 0 {
			break
		}
	}
	d := sg.Digraph()
	srcIdx := len(sg.Candidates) + 1
	for _, a := range d.Out(0) {
		if int(a.To) == srcIdx {
			t.Fatal("restricted graph still has u→S arc")
		}
	}
}

func TestAlgorithm1OnRealTopologies(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		net := topology.MustGenerate(topology.DefaultConfig(70), rng.New(seed))
		tr := mtree.MustBuild(net)
		p := NewPlanner(tr, route.Build(net))
		for _, u := range net.Clients {
			sg := p.BuildStrategyGraph(u)
			st := sg.Algorithm1()
			ref := sg.ShortestPathDAG()
			if math.Abs(st.ExpectedDelay-ref.ExpectedDelay) > 1e-9 {
				t.Fatalf("seed %d client %d: algo %v vs dag %v",
					seed, u, st.ExpectedDelay, ref.ExpectedDelay)
			}
			if len(sg.Candidates) <= 14 {
				bf, _ := BruteForceMeaningful(sg.Candidates, sg.ClientDepth, sg.SourceRTT)
				if math.Abs(st.ExpectedDelay-bf) > 1e-9 {
					t.Fatalf("seed %d client %d: algo %v vs brute %v",
						seed, u, st.ExpectedDelay, bf)
				}
			}
		}
	}
}

func TestBruteForceGuards(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized BruteForceMeaningful accepted")
			}
		}()
		BruteForceMeaningful(make([]Candidate, 25), 30, 10)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized BruteForceAnyOrder accepted")
			}
		}()
		BruteForceAnyOrder(make([]AttemptRef, 9), 30, 10)
	}()
}

func BenchmarkAlgorithm1(b *testing.B) {
	r := rng.New(1)
	graphs := make([]*StrategyGraph, 64)
	for i := range graphs {
		graphs[i] = syntheticGraph(r, 14, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graphs[i&63].Algorithm1()
	}
}

func BenchmarkStrategyGraphScaling(b *testing.B) {
	// O(N²) scaling probe for EXPERIMENTS E5: synthetic candidate lists of
	// growing size.
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(byteSize(n), func(b *testing.B) {
			cands := make([]Candidate, n)
			for i := range cands {
				cands[i] = Candidate{DS: int32(n - i), RTT: float64(1 + i%17), Timeout: float64(3 + i%29)}
			}
			sg := &StrategyGraph{
				Client: 1, ClientDepth: int32(n + 1), Candidates: cands,
				SourceRTT: 100, SourceTimeout: 300, AllowDirectSource: true,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sg.Algorithm1()
			}
		})
	}
}

func byteSize(n int) string {
	switch n {
	case 8:
		return "N=8"
	case 32:
		return "N=32"
	case 128:
		return "N=128"
	case 512:
		return "N=512"
	}
	return "N=?"
}

func BenchmarkPlannerAllClients600(b *testing.B) {
	net := topology.MustGenerate(topology.DefaultConfig(600), rng.New(1))
	tr := mtree.MustBuild(net)
	rt := route.Build(net)
	p := NewPlanner(tr, rt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.All()
	}
}
