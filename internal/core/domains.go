package core

import (
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
)

// DomainAggregators elects one aggregator host per recovery domain of part:
// the domain's client with the smallest (DelayFromRoot, NodeID) key — the
// same Algorithm-1 class ranking core.Electorate reads at the tree root,
// restricted to the domain's membership. The aggregator is the domain's
// natural recovery hub (it is the client every Algorithm-1 strategy inside
// the domain would rank first) and the deterministic handover target should
// the domain's coordinator fail.
//
// The returned slice is indexed by domain; graph.None marks a domain with no
// clients (possible when K exceeds the populated band count). One O(n) scan
// over the client list — no per-domain aggregate needed, and no LCA — so it
// runs in lite-tree mode at n=1,000,000. Tests pin agreement with an
// Electorate whose candidates outside the domain have been withdrawn.
func DomainAggregators(t *mtree.Tree, part *mtree.Partition) []graph.NodeID {
	agg := make([]graph.NodeID, part.K)
	for i := range agg {
		agg[i] = graph.None
	}
	for _, c := range t.Clients {
		d := part.ShardOf[c]
		cur := agg[d]
		if cur == graph.None {
			agg[d] = c
			continue
		}
		dc, db := t.DelayFromRoot[c], t.DelayFromRoot[cur]
		if dc < db || (dc == db && c < cur) {
			agg[d] = c
		}
	}
	return agg
}
