package core

import (
	"math"

	"rmcast/internal/graph"
)

// StrategyGraph is the paper's Definition 1: an edge-weighted DAG over
// {u, v1 … vN, S} whose u⇝S paths enumerate exactly the meaningful recovery
// strategies of client u, with path length equal to expected recovery delay.
//
// Node indexing inside the DAG: 0 is u, 1..N are the candidates in strictly
// descending-DS order, N+1 is S. All arcs go from lower to higher index, so
// that ordering is simultaneously the topological order used by Algorithm 1.
//
// The paper writes the inter-candidate weight as w(v_i→v_j) =
// (DS_i/DS)·d(v_j) with the position dependence of d(v_j) (Eq. 1) left
// implicit; since each arc knows both endpoints we encode the exact
// predecessor-conditioned attempt cost, so path length equals the exact
// expectation (see DESIGN.md §4). Tests verify path lengths against both
// EvalMeaningful (Eq. 3) and EvalAny (first-principles model).
type StrategyGraph struct {
	// Client is u; ClientDepth is DS_u.
	Client      graph.NodeID
	ClientDepth int32
	// Candidates are u's candidate clients, strictly descending in DS.
	Candidates []Candidate
	// SourceRTT and SourceTimeout describe the final source attempt.
	SourceRTT     float64
	SourceTimeout float64
	// AllowDirectSource mirrors the planner option: when false the (u→S)
	// arc is omitted (restricted strategies, §4).
	AllowDirectSource bool
}

// BuildStrategyGraph assembles the strategy graph for client u.
func (p *Planner) BuildStrategyGraph(u graph.NodeID) *StrategyGraph {
	srcRTT := p.Routes.RTT(u, p.Tree.Root)
	return &StrategyGraph{
		Client:            u,
		ClientDepth:       p.Tree.Depth[u],
		Candidates:        p.Candidates(u),
		SourceRTT:         srcRTT,
		SourceTimeout:     p.timeout().Timeout(srcRTT),
		AllowDirectSource: p.AllowDirectSource,
	}
}

// NumNodes returns the DAG's node count: u + N candidates + S.
func (sg *StrategyGraph) NumNodes() int { return len(sg.Candidates) + 2 }

// arcWeight returns the weight of the arc from DAG node i to DAG node j
// (i < j), or NaN if the arc does not exist. Node 0 is u; node
// len(Candidates)+1 is S.
func (sg *StrategyGraph) arcWeight(i, j int) float64 {
	n := len(sg.Candidates)
	src := n + 1
	dsU := float64(sg.ClientDepth)
	// Predecessor's loss-prefix depth: DS_u when coming from u itself.
	var dsPrev float64
	if i == 0 {
		dsPrev = dsU
	} else {
		dsPrev = float64(sg.Candidates[i-1].DS)
	}
	switch {
	case j == src:
		if i == 0 && !sg.AllowDirectSource {
			return math.NaN()
		}
		// Reach probability dsPrev/dsU times the (certain) source RTT.
		return dsPrev / dsU * sg.SourceRTT
	case j >= 1 && j <= n && j > i:
		c := sg.Candidates[j-1]
		dsJ := float64(c.DS)
		if dsJ >= dsPrev {
			// Cannot happen for strictly descending candidates, but guard
			// anyway: such an arc would model a zero-information attempt.
			return math.NaN()
		}
		// (dsPrev/dsU) · [ rtt·(1 − dsJ/dsPrev) + t0·(dsJ/dsPrev) ]
		return (c.RTT*(dsPrev-dsJ) + c.Timeout*dsJ) / dsU
	}
	return math.NaN()
}

// Digraph materialises the strategy graph as an explicit graph.Digraph, for
// inspection, printing, and cross-validation against the generic DAG
// shortest-path routine. Node IDs follow the DAG indexing above.
func (sg *StrategyGraph) Digraph() *graph.Digraph {
	n := sg.NumNodes()
	d := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := sg.arcWeight(i, j); !math.IsNaN(w) {
				d.AddArc(graph.NodeID(i), graph.NodeID(j), w)
			}
		}
	}
	return d
}

// Algorithm1 is the paper's Algorithm 1 ("Searching_Minimal_Delay"): DAG
// shortest path from u to S, processing vertices in the order
// u, v1, …, vN, S and skipping any vertex whose tentative distance already
// meets or exceeds the tentative distance of S (the paper's step-4 prune —
// such a vertex cannot improve any path). Runs in O(N²).
func (sg *StrategyGraph) Algorithm1() *Strategy {
	return sg.algorithm1(nil, nil, nil, nil)
}

// algorithm1 is Algorithm1 with caller-provided scratch buffers and an
// optional Strategy to fill in place, so the batch planner (PlanAll) can
// amortise the per-client allocations. nil buffers (the public entry point)
// allocate fresh ones; a nil into allocates a fresh Strategy.
func (sg *StrategyGraph) algorithm1(dist []float64, parent, rev []int, into *Strategy) *Strategy {
	n := len(sg.Candidates)
	srcIdx := n + 1
	if cap(dist) < n+2 {
		dist = make([]float64, n+2)
	}
	dist = dist[:n+2]
	if cap(parent) < n+2 {
		parent = make([]int, n+2)
	}
	parent = parent[:n+2]
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	for x := 0; x <= n; x++ { // S itself has no outgoing arcs
		if math.IsInf(dist[x], 1) {
			continue
		}
		// Step 4 prune: a node no closer than S cannot start a shorter
		// suffix (all weights are non-negative).
		if dist[x] >= dist[srcIdx] {
			continue
		}
		for y := x + 1; y <= srcIdx; y++ {
			w := sg.arcWeight(x, y)
			if math.IsNaN(w) {
				continue
			}
			if nd := dist[x] + w; nd < dist[y] {
				dist[y] = nd
				parent[y] = x
			}
		}
	}
	return sg.extract(dist, parent, rev, into)
}

// ShortestPathDAG computes the same optimum via the generic topological
// relaxation (graph.DAGShortestPaths) over the explicit digraph. It exists
// to cross-check Algorithm 1 in tests and costs an extra materialisation.
func (sg *StrategyGraph) ShortestPathDAG() *Strategy {
	d := sg.Digraph()
	order := make([]graph.NodeID, d.NumNodes())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	dist, par := graph.DAGShortestPaths(d, 0, order)
	parent := make([]int, len(par))
	for i, p := range par {
		parent[i] = int(p)
	}
	return sg.extract(dist, parent, nil, nil)
}

// extract walks parent pointers from S back to u and assembles a Strategy.
// If S is unreachable (restricted graph with zero candidates) it falls back
// to the direct-source strategy, which the protocol needs as a last resort
// regardless of planning restrictions. rev is optional walk scratch; into,
// when non-nil, is reset and filled in place (its Peers array is reused).
func (sg *StrategyGraph) extract(dist []float64, parent, rev []int, into *Strategy) *Strategy {
	n := len(sg.Candidates)
	srcIdx := n + 1
	st := into
	if st == nil {
		st = &Strategy{}
	}
	st.Client = sg.Client
	st.ClientDepth = sg.ClientDepth
	st.Peers = st.Peers[:0]
	st.SourceRTT = sg.SourceRTT
	st.SourceTimeout = sg.SourceTimeout
	if math.IsInf(dist[srcIdx], 1) {
		st.ExpectedDelay = sg.SourceRTT
		return st
	}
	rev = rev[:0]
	for x := srcIdx; x != 0; x = parent[x] {
		rev = append(rev, x)
		if parent[x] < 0 {
			break
		}
	}
	// rev holds S, vk, …, v1 (excluding u). Collect candidates in order.
	for i := len(rev) - 1; i >= 0; i-- {
		idx := rev[i]
		if idx >= 1 && idx <= n {
			st.Peers = append(st.Peers, sg.Candidates[idx-1])
		}
	}
	st.ExpectedDelay = dist[srcIdx]
	return st
}
