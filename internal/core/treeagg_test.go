package core

import (
	"math/rand"
	"reflect"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// treeNet builds a tree-only topology (every link a tree link) with the
// given client count and seed.
func treeNet(t testing.TB, clients int, seed uint64) *topology.Network {
	t.Helper()
	cfg := topology.DefaultTreeConfig(clients)
	net, err := topology.GenerateTree(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// treePlanner builds one planner variant over a tree-only network. router
// "tree" uses TreeTables (tree metric by construction); "dijkstra" uses the
// standard Dijkstra tables, which on a tree-only network must pass the
// dominance check and agree with the tree metric.
func treePlanner(t testing.TB, net *topology.Network, router string) *Planner {
	t.Helper()
	tree := mtree.MustBuild(net)
	var rt route.Router
	switch router {
	case "tree":
		rt = route.NewTreeTables(tree)
	case "dijkstra":
		rt = route.Build(net)
	default:
		t.Fatalf("unknown router %q", router)
	}
	return NewPlanner(tree, rt)
}

// configure applies one of the planner configurations the fast path claims
// to support (and the loss-aware one it must refuse).
func configure(p *Planner, variant string) {
	switch variant {
	case "default":
	case "restricted":
		p.AllowDirectSource = false
	case "fixed":
		p.Timeout = FixedTimeout(120)
	case "prop0":
		p.Timeout = ProportionalTimeout(0)
	case "aware":
		p.LossProb = 0.1
	default:
		panic("unknown variant " + variant)
	}
}

var fastVariants = []string{"default", "restricted", "fixed", "prop0"}

// TestFastPathEligibility pins down when the tree-aggregated path engages:
// tree-metric routers with loss-unaware planning yes, loss-aware or chorded
// topologies no.
func TestFastPathEligibility(t *testing.T) {
	net := treeNet(t, 120, 1)
	for _, router := range []string{"tree", "dijkstra"} {
		for _, v := range fastVariants {
			p := treePlanner(t, net, router)
			configure(p, v)
			if !p.UsesFastPath() {
				t.Errorf("%s/%s: fast path not engaged on tree-only topology", router, v)
			}
		}
		aware := treePlanner(t, net, router)
		configure(aware, "aware")
		if aware.UsesFastPath() {
			t.Errorf("%s: loss-aware planner must fall back to the scan", router)
		}
	}
	// Negative proportional factors could invert the within-class ranking.
	neg := treePlanner(t, net, "tree")
	neg.Timeout = ProportionalTimeout(-1)
	if neg.UsesFastPath() {
		t.Error("negative proportional timeout must fall back to the scan")
	}
	// DisableFastPath is the benchmark knob.
	off := treePlanner(t, net, "tree")
	off.DisableFastPath = true
	if off.UsesFastPath() {
		t.Error("DisableFastPath ignored")
	}
	// Chorded topologies (the default generator, mean degree 3) fail the
	// dominance check under Dijkstra routing: a chord can shortcut a tree
	// path, so the ranking key would be wrong.
	chorded := topology.MustGenerate(topology.DefaultConfig(150), rng.New(3))
	pc := NewPlanner(mtree.MustBuild(chorded), route.Build(chorded))
	if pc.UsesFastPath() {
		t.Error("chorded topology must fall back to the scan")
	}
}

// TestPlanAllTreeMatchesStrategyFor is the tentpole oracle: on tree-metric
// topologies the aggregated path must be field-for-field identical to the
// per-client scan path (StrategyFor), across routers and configurations.
func TestPlanAllTreeMatchesStrategyFor(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		net := treeNet(t, 200, seed)
		for _, router := range []string{"tree", "dijkstra"} {
			for _, v := range fastVariants {
				p := treePlanner(t, net, router)
				configure(p, v)
				batch := p.PlanAll()
				if !p.UsesFastPath() {
					t.Fatalf("%s/%s: expected fast path", router, v)
				}
				if len(batch) != len(p.Tree.Clients) {
					t.Fatalf("%s/%s: %d strategies for %d clients",
						router, v, len(batch), len(p.Tree.Clients))
				}
				for _, u := range p.Tree.Clients {
					want := p.StrategyFor(u)
					if !reflect.DeepEqual(batch[u], want) {
						t.Fatalf("%s/%s seed %d client %d:\n fast %v\n scan %v",
							router, v, seed, u, batch[u], want)
					}
				}
			}
		}
	}
}

// TestPlanAllIntoReuses asserts PlanAllInto updates the caller's map and
// Strategy values in place and still matches a fresh computation.
func TestPlanAllIntoReuses(t *testing.T) {
	for _, router := range []string{"tree", "dijkstra"} {
		p := treePlanner(t, treeNet(t, 150, 9), router)
		out := p.PlanAll()
		firstPtrs := make(map[graph.NodeID]*Strategy, len(out))
		for u, st := range out {
			firstPtrs[u] = st
		}
		again := p.PlanAllInto(out)
		if !sameMap(again, out) {
			t.Fatal("PlanAllInto returned a different map")
		}
		for u, st := range again {
			if firstPtrs[u] != st {
				t.Fatalf("client %d: Strategy reallocated on reuse", u)
			}
		}
		fresh := p.PlanAll()
		if !reflect.DeepEqual(again, fresh) {
			t.Fatal("reused PlanAllInto result differs from a fresh PlanAll")
		}
	}
	// The scan fallback must honour the same reuse contract.
	net := topology.MustGenerate(topology.DefaultConfig(100), rng.New(2))
	p := NewPlanner(mtree.MustBuild(net), route.Build(net))
	out := p.PlanAll()
	if !reflect.DeepEqual(p.PlanAllInto(out), p.PlanAll()) {
		t.Fatal("scan-path PlanAllInto differs from PlanAll")
	}
}

func sameMap(a, b map[graph.NodeID]*Strategy) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestFastPathEquivalenceFuzz cross-checks fast vs scan over many random
// tree topologies × configurations × routers — the property the acceptance
// criteria require.
func TestFastPathEquivalenceFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		cfg := topology.DefaultTreeConfig(10 + rnd.Intn(150))
		cfg.ClientsPerRouter = 1 + rnd.Intn(6)
		net, err := topology.GenerateTree(cfg, rng.New(uint64(i)+100))
		if err != nil {
			t.Fatal(err)
		}
		router := []string{"tree", "dijkstra"}[rnd.Intn(2)]
		variant := fastVariants[rnd.Intn(len(fastVariants))]
		fast := treePlanner(t, net, router)
		configure(fast, variant)
		scan := treePlanner(t, net, router)
		configure(scan, variant)
		scan.DisableFastPath = true
		got, want := fast.PlanAll(), scan.PlanAll()
		if !fast.UsesFastPath() || scan.UsesFastPath() {
			t.Fatalf("iter %d: path selection wrong", i)
		}
		if !reflect.DeepEqual(got, want) {
			for _, u := range net.Clients {
				if !reflect.DeepEqual(got[u], want[u]) {
					t.Fatalf("iter %d (%s/%s, %d clients) client %d:\n fast %v\n scan %v",
						i, router, variant, len(net.Clients), u, got[u], want[u])
				}
			}
		}
	}
}

// FuzzFastPathEquivalence is the go-fuzz entry for the same property, so
// `make fuzz` can search for divergent topologies beyond the fixed seeds.
func FuzzFastPathEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint8(4), uint8(0))
	f.Add(uint64(9), uint16(120), uint8(1), uint8(1))
	f.Add(uint64(77), uint16(15), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, clients uint16, perRouter, variant uint8) {
		n := 2 + int(clients)%250
		cfg := topology.DefaultTreeConfig(n)
		cfg.ClientsPerRouter = 1 + int(perRouter)%8
		net, err := topology.GenerateTree(cfg, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		v := fastVariants[int(variant)%len(fastVariants)]
		fast := treePlanner(t, net, "tree")
		configure(fast, v)
		scan := treePlanner(t, net, "tree")
		configure(scan, v)
		scan.DisableFastPath = true
		got, want := fast.PlanAll(), scan.PlanAll()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fast/scan divergence (%s, %d clients)", v, n)
		}
	})
}

// TestRosterChurnTreeAggMatchesScan drives a roster over a tree-metric
// topology (aggregate path) through random churn and checks every strategy
// after every step against a scan-based roster and a from-scratch rebuilt
// aggregate — the incremental-update-vs-full-rebuild equivalence.
func TestRosterChurnTreeAggMatchesScan(t *testing.T) {
	net := treeNet(t, 90, 5)
	tree := mtree.MustBuild(net)
	rt := route.NewTreeTables(tree)
	for _, variant := range []string{"default", "fixed"} {
		p := NewPlanner(tree, rt)
		configure(p, variant)
		r := NewRoster(p)
		if r.agg == nil {
			t.Fatal("roster did not engage the aggregate on a tree-metric planner")
		}
		pScan := NewPlanner(tree, rt)
		configure(pScan, variant)
		pScan.DisableFastPath = true
		rScan := NewRoster(pScan)
		if rScan.agg != nil {
			t.Fatal("DisableFastPath roster should not build an aggregate")
		}

		rnd := rand.New(rand.NewSource(11))
		var inactive []graph.NodeID
		for step := 0; step < 60; step++ {
			if len(inactive) == 0 || (rnd.Intn(2) == 0 && len(inactive) < len(net.Clients)-1) {
				v := net.Clients[rnd.Intn(len(net.Clients))]
				if !r.Active(v) {
					continue
				}
				if _, err := r.Leave(v); err != nil {
					t.Fatal(err)
				}
				if _, err := rScan.Leave(v); err != nil {
					t.Fatal(err)
				}
				inactive = append(inactive, v)
			} else {
				i := rnd.Intn(len(inactive))
				v := inactive[i]
				inactive = append(inactive[:i], inactive[i+1:]...)
				if _, err := r.Join(v); err != nil {
					t.Fatal(err)
				}
				if _, err := rScan.Join(v); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(r.Strategies(), rScan.Strategies()) {
				t.Fatalf("%s step %d: aggregate roster diverged from scan roster", variant, step)
			}
			if r.Epoch() != rScan.Epoch() {
				t.Fatalf("%s step %d: epochs diverged (%d vs %d)", variant, step, r.Epoch(), rScan.Epoch())
			}
			// Incrementally-updated aggregate == aggregate rebuilt from the
			// current active set.
			fresh := newTreeAgg(tree)
			for _, c := range tree.Clients {
				if !r.Active(c) {
					fresh.setActive(c, false)
				}
			}
			if !reflect.DeepEqual(r.agg.byKey, fresh.byKey) || !reflect.DeepEqual(r.agg.byPeer, fresh.byPeer) {
				t.Fatalf("%s step %d: incremental aggregate != full rebuild", variant, step)
			}
			// Incrementally-churned roster == roster rebuilt from scratch
			// over the current membership (the strategy service's
			// full-replan fallback), compared in the dense snapshot layout.
			var members []graph.NodeID
			for _, c := range tree.Clients {
				if r.Active(c) {
					members = append(members, c)
				}
			}
			rebuilt := NewRosterActive(p, members)
			if !reflect.DeepEqual(r.StrategiesDense(nil), rebuilt.StrategiesDense(nil)) {
				t.Fatalf("%s step %d: incremental roster != full replan", variant, step)
			}
			if !reflect.DeepEqual(r.OccupancyDense(nil), rebuilt.OccupancyDense(nil)) {
				t.Fatalf("%s step %d: occupancy diverged from full replan", variant, step)
			}
		}
	}
}

// TestSortCandidatesMatchesReference checks the insertion/SortFunc hybrid
// against the ordering contract on random lists, including the >32 branch.
func TestSortCandidatesMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rnd.Intn(80)
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{DS: int32(rnd.Intn(10)), Peer: graph.NodeID(rnd.Intn(1000))}
		}
		sortCandidates(cs)
		for i := 1; i < len(cs); i++ {
			if candCmp(cs[i-1], cs[i]) > 0 {
				t.Fatalf("trial %d: out of order at %d: %+v then %+v", trial, i, cs[i-1], cs[i])
			}
		}
	}
}

// TestPlanAllIntoSteadyStateAllocs asserts the fast path's replan loop is
// allocation-free once warmed up — the contract the RP attach path and the
// scaling tier rely on.
func TestPlanAllIntoSteadyStateAllocs(t *testing.T) {
	p := treePlanner(t, treeNet(t, 300, 13), "tree")
	out := p.PlanAll() // warm: map, strategies, scratch, aggregate
	if allocs := testing.AllocsPerRun(20, func() {
		p.PlanAllInto(out)
	}); allocs > 0 {
		t.Fatalf("steady-state PlanAllInto allocates %.1f/op, want 0", allocs)
	}
}

// TestSortCandidatesZeroAlloc pins the satellite requirement: no closure or
// reflection allocation in the hot sort.
func TestSortCandidatesZeroAlloc(t *testing.T) {
	for _, n := range []int{8, 200} {
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{DS: int32(i % 7), Peer: graph.NodeID(n - i)}
		}
		if allocs := testing.AllocsPerRun(20, func() {
			sortCandidates(cs)
		}); allocs > 0 {
			t.Fatalf("sortCandidates(%d) allocates %.1f/op, want 0", n, allocs)
		}
	}
}
