package core

import (
	"math"
	"testing"
)

// FuzzEvalAny drives the evaluator with arbitrary attempt lists: it must
// never panic, never return NaN/negative, and never beat the best single
// component (probabilities are convex weights over non-negative costs).
func FuzzEvalAny(f *testing.F) {
	f.Add(int32(4), int32(2), 10.0, 30.0, int32(1), 100.0)
	f.Add(int32(1), int32(0), 1.0, 1.0, int32(0), 1.0)
	f.Add(int32(20), int32(19), 55.5, 200.0, int32(7), 80.0)
	f.Fuzz(func(t *testing.T, dsU, ds int32, rtt, timeout float64, priv int32, srcRTT float64) {
		if math.IsNaN(rtt) || math.IsNaN(timeout) || math.IsNaN(srcRTT) ||
			math.IsInf(rtt, 0) || math.IsInf(timeout, 0) || math.IsInf(srcRTT, 0) {
			t.Skip()
		}
		if rtt < 0 || timeout < 0 || srcRTT < 0 || rtt > 1e9 || timeout > 1e9 || srcRTT > 1e9 {
			t.Skip()
		}
		list := []AttemptRef{{DS: ds, RTT: rtt, Timeout: timeout, Priv: priv}}
		got := EvalAny(list, dsU, srcRTT)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("EvalAny returned %v for dsU=%d %+v src=%v", got, dsU, list, srcRTT)
		}
		// Upper bound: worst case is timeout then source.
		if dsU > 0 && got > rtt+timeout+srcRTT+1e-9 {
			t.Fatalf("EvalAny %v exceeds worst case %v", got, rtt+timeout+srcRTT)
		}
		// q variants must also be finite and ordered.
		for _, q := range []float64{0, 0.5, 1} {
			v := EvalAnyQ(list, dsU, srcRTT, q)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("EvalAnyQ(q=%v) returned %v", q, v)
			}
		}
	})
}

// FuzzCondLossProb asserts the probability contract on arbitrary inputs.
func FuzzCondLossProb(f *testing.F) {
	f.Add(int32(2), int32(4), int32(3), 0.9)
	f.Add(int32(-5), int32(0), int32(-2), 2.0)
	f.Fuzz(func(t *testing.T, ds, prefix, priv int32, q float64) {
		if math.IsNaN(q) {
			t.Skip()
		}
		p := CondLossProbQ(ds, prefix, priv, q)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("CondLossProbQ(%d,%d,%d,%v) = %v out of [0,1]", ds, prefix, priv, q, p)
		}
		base := CondLossProb(ds, prefix)
		if base < 0 || base > 1 {
			t.Fatalf("CondLossProb(%d,%d) = %v out of [0,1]", ds, prefix, base)
		}
		// Private exposure can only increase loss probability.
		if q >= 0 && q <= 1 && p < base-1e-12 {
			t.Fatalf("private exposure lowered loss probability: %v < %v", p, base)
		}
	})
}
