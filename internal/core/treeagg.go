package core

import (
	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/route"
)

// This file is the tree-aggregated candidate index behind the near-linear
// batch planner (see planall.go for the planning pass itself).
//
// The scan planner costs O(N) per client because it tests every other client
// for every competitive class. But under the tree metric the within-class
// winner is determined by the class alone: all members of the class at meet
// router r share the tree path u⇝r, so their RTTs from u differ only in the
// r⇝v suffix, and the cheapest member is simply the active client of
// subtree(r) — excluding the branch u hangs under — with the smallest
// DelayFromRoot. That quantity is independent of u, so one bottom-up pass
// can precompute it for every (router, excluded branch) pair: each node
// keeps its best and second-best subtree clients *from distinct child
// branches* (the classic top-two trick), and "best excluding branch b" is
// then an O(1) lookup. A client reads its whole candidate list off its root
// path in O(depth).
//
// Two rankings are maintained:
//
//   - byKey ranks by (DelayFromRoot, peer ID) — the RTT order within a
//     class, used for every ancestor class (and the descendant class when
//     the timeout policy keeps attempt cost strictly increasing in RTT);
//   - byPeer ranks by peer ID alone — used for the degenerate descendant
//     class (meet router == u itself, conditional loss probability 1) under
//     timeout policies that make every attempt cost in the class equal, where
//     the scan's tie-break reduces to the minimum peer ID.
//
// The index also supports incremental membership updates: toggling one
// client re-aggregates only its root path (O(depth · branching) slot
// recomputations, with an early exit once an ancestor's summary is
// unchanged), which is what core.Roster uses under churn.

// aggSelf tags a node's own contribution to its aggregate; child branches
// are tagged with their index in Tree.Children. aggEmpty marks empty slots
// and never matches an exclusion query.
const (
	aggSelf  int32 = -1
	aggEmpty int32 = -2
)

// aggEntry is one contender in a node's top-two table.
type aggEntry struct {
	// key is the client's DelayFromRoot — its RTT rank within any class.
	key float64
	// peer is the client, or graph.None for an empty slot.
	peer graph.NodeID
	// tag identifies the contributing branch (child index, aggSelf, or
	// aggEmpty), so queries can exclude the branch the asking client is in.
	tag int32
}

// lessKey is the byKey ranking: DelayFromRoot, ties by peer ID. Under the
// tree metric this is exactly the scan's "cheapest class member, ties by
// lower peer ID" rule (see planall.go for the precondition discussion).
func lessKey(a, b aggEntry) bool {
	return a.key < b.key || (a.key == b.key && a.peer < b.peer)
}

// treeAgg is the per-node top-two aggregate over an active client set.
type treeAgg struct {
	tree   *mtree.Tree
	active []bool
	// childPos[v] is v's index within Children[Parent[v]] (-1 for the root
	// and off-tree nodes), so root-path walks know which branch to exclude
	// and upward updates know which slot changed.
	childPos []int32
	// byKey[r] / byPeer[r] hold the best and second-best active clients of
	// subtree(r) under the two rankings, guaranteed to come from distinct
	// branches (each branch contributes at most its own best).
	byKey  [][2]aggEntry
	byPeer [][2]aggEntry
}

// newTreeAgg builds the aggregate with every tree client active.
func newTreeAgg(t *mtree.Tree) *treeAgg { return newTreeAggActive(t, nil) }

// newTreeAggActive builds the aggregate over a membership subset given as a
// node-indexed flag slice (nil means every tree client). The subset is
// copied, and building directly from it costs one bottom-up pass — the same
// as the full build — rather than one O(depth) repair per excluded member.
func newTreeAggActive(t *mtree.Tree, active []bool) *treeAgg {
	n := len(t.Depth)
	a := &treeAgg{
		tree:     t,
		active:   make([]bool, n),
		childPos: make([]int32, n),
		byKey:    make([][2]aggEntry, n),
		byPeer:   make([][2]aggEntry, n),
	}
	for i := range a.childPos {
		a.childPos[i] = -1
	}
	for _, kids := range t.Children {
		for i, c := range kids {
			a.childPos[c] = int32(i)
		}
	}
	for _, c := range t.Clients {
		a.active[c] = active == nil || active[c]
	}
	// Order is a preorder, so its reverse visits children before parents.
	for i := len(t.Order) - 1; i >= 0; i-- {
		a.recompute(t.Order[i])
	}
	return a
}

// emptyPair is the zero aggregate (both slots empty).
var emptyPair = [2]aggEntry{{peer: graph.None, tag: aggEmpty}, {peer: graph.None, tag: aggEmpty}}

// insertTopTwo inserts e into the top-two pair under less. Each branch
// contributes at most one entry per recompute, so same-tag collisions
// cannot occur.
func insertTopTwo(s *[2]aggEntry, e aggEntry, byPeerOnly bool) {
	var better bool
	if s[0].peer == graph.None {
		better = true
	} else if byPeerOnly {
		better = e.peer < s[0].peer
	} else {
		better = lessKey(e, s[0])
	}
	if better {
		s[1] = s[0]
		s[0] = e
		return
	}
	if s[1].peer == graph.None || (byPeerOnly && e.peer < s[1].peer) || (!byPeerOnly && lessKey(e, s[1])) {
		s[1] = e
	}
}

// recompute rebuilds node r's summaries from its own membership and its
// children's summaries. It reports whether either summary changed, so
// upward propagation can stop early.
func (a *treeAgg) recompute(r graph.NodeID) bool {
	key, peer := emptyPair, emptyPair
	if a.active[r] {
		e := aggEntry{key: a.tree.DelayFromRoot[r], peer: r, tag: aggSelf}
		key[0], peer[0] = e, e
	}
	for i, c := range a.tree.Children[r] {
		if e := a.byKey[c][0]; e.peer != graph.None {
			e.tag = int32(i)
			insertTopTwo(&key, e, false)
		}
		if e := a.byPeer[c][0]; e.peer != graph.None {
			e.tag = int32(i)
			insertTopTwo(&peer, e, true)
		}
	}
	changed := key != a.byKey[r] || peer != a.byPeer[r]
	a.byKey[r] = key
	a.byPeer[r] = peer
	return changed
}

// bestExcluding returns the best entry of a pair whose contributing branch
// is not tag (peer == graph.None when no such client exists). Because the
// two slots come from distinct branches, excluding one branch can only
// shift the answer to the second slot.
func bestExcluding(s *[2]aggEntry, tag int32) aggEntry {
	if s[0].tag != tag {
		return s[0]
	}
	return s[1]
}

// setActive toggles one client's membership and repairs the aggregates
// along its root path, stopping as soon as an ancestor's summary absorbs
// the change.
func (a *treeAgg) setActive(v graph.NodeID, on bool) {
	if a.active[v] == on {
		return
	}
	a.active[v] = on
	for r := v; r != graph.None; r = a.tree.Parent[r] {
		if !a.recompute(r) {
			return
		}
	}
}

// fastMode classifies how batch planning may rank class members.
type fastMode uint8

const (
	// fastOff: scan every peer (the fallback, always correct).
	fastOff fastMode = iota
	// fastKey: every class ranks by (DelayFromRoot, peer).
	fastKey
	// fastKeyPeerSelf: ancestor classes rank by (DelayFromRoot, peer); the
	// descendant class (meet == u) ranks by peer ID alone because its
	// attempt cost is class-constant under the timeout policy.
	fastKeyPeerSelf
)

// computeFastMode decides whether the tree-aggregated path applies. The
// requirements, each of which the scan path does not need:
//
//   - the planner is loss-unaware (LossProb == 0): the loss-aware attempt
//     cost depends on the peer's private depth, so the class winner is not
//     an RTT minimum;
//   - the timeout policy keeps the within-class attempt cost monotone
//     non-decreasing in RTT (FixedTimeout, ProportionalTimeout ≥ 0) — a
//     negative proportional factor could invert the ranking;
//   - the route metric agrees with the tree metric: RTT(u,v) must be the
//     tree-path delay. route.TreeTables guarantees this by construction;
//     Dijkstra tables over the same network qualify when no non-tree link
//     can shortcut a tree path (checked once, O(links) with O(1) LCA).
//
// Everything else (restricted strategies, any timeout values, hand-built
// topologies) is supported by both paths.
func (p *Planner) computeFastMode() fastMode {
	if p.DisableFastPath || p.LossProb > 0 {
		return fastOff
	}
	var mode fastMode
	switch pol := p.timeout().(type) {
	case FixedTimeout:
		mode = fastKeyPeerSelf
	case ProportionalTimeout:
		switch {
		case pol > 0:
			mode = fastKey
		case pol == 0:
			mode = fastKeyPeerSelf
		default:
			return fastOff
		}
	default:
		return fastOff
	}
	switch rt := p.Routes.(type) {
	case *route.TreeTables:
		if rt.Tree() != p.Tree {
			return fastOff
		}
	case *route.Tables:
		if rt.Network() != p.Tree.Net || !p.treeDominatesGraph() {
			return fastOff
		}
	default:
		return fastOff
	}
	return mode
}

// treeDominatesGraph reports whether every non-tree link is at least as
// long as the tree path between its endpoints. When that holds, any
// shortest path can be rerouted link-by-link onto the tree without growing,
// so the Dijkstra metric equals the tree metric and the aggregate ranking
// is exact. A non-tree link touching an off-tree node fails the check (the
// tree metric is undefined there, so no dominance argument applies).
func (p *Planner) treeDominatesGraph() bool {
	t := p.Tree
	net := t.Net
	onTree := make([]bool, net.NumLinks())
	for _, id := range net.TreeEdges {
		onTree[id] = true
	}
	for id, e := range net.G.Edges() {
		if onTree[id] {
			continue
		}
		if !t.InTree[e.A] || !t.InTree[e.B] {
			return false
		}
		if net.Delay[id] < t.TreeDelay(e.A, e.B) {
			return false
		}
	}
	return true
}
