package core

import "math"

// This file provides exhaustive reference optimizers. They exist so that
// Algorithm 1's optimality (and, through it, Lemmas 4 and 5) can be checked
// empirically on small instances, and so cmd/strategy can show the
// brute-force optimum next to the fast one. Exponential — callers bound N.

// BruteForceMeaningful enumerates every subset of the (descending-DS)
// candidate list, preserving order — i.e. every "meaningful strategy" of
// §4 — and returns the minimum expected delay and the minimizing list.
// Complexity O(2^N · N); callers should keep N ≤ ~20.
func BruteForceMeaningful(cands []Candidate, dsU int32, srcRTT float64) (float64, []Candidate) {
	n := len(cands)
	if n > 24 {
		panic("core: BruteForceMeaningful instance too large")
	}
	best := math.Inf(1)
	var bestList []Candidate
	subset := make([]AttemptRef, 0, n)
	pick := make([]Candidate, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		subset = subset[:0]
		pick = pick[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c := cands[i]
				subset = append(subset, AttemptRef{DS: c.DS, RTT: c.RTT, Timeout: c.Timeout})
				pick = append(pick, c)
			}
		}
		if d := EvalAny(subset, dsU, srcRTT); d < best {
			best = d
			bestList = append([]Candidate(nil), pick...)
		}
	}
	return best, bestList
}

// BruteForceAnyOrder enumerates every ordered sequence (every permutation of
// every subset) of the given attempt pool and returns the minimum expected
// delay. This searches a strict superset of the meaningful strategies, so a
// match with Algorithm 1 validates Lemmas 4 and 5 (dropping competitive
// duplicates and non-descending entries never hurts). Factorial — callers
// should keep the pool ≤ ~7.
func BruteForceAnyOrder(pool []AttemptRef, dsU int32, srcRTT float64) float64 {
	if len(pool) > 8 {
		panic("core: BruteForceAnyOrder instance too large")
	}
	best := EvalAny(nil, dsU, srcRTT)
	used := make([]bool, len(pool))
	seq := make([]AttemptRef, 0, len(pool))
	var rec func()
	rec = func() {
		if d := EvalAny(seq, dsU, srcRTT); d < best {
			best = d
		}
		for i := range pool {
			if used[i] {
				continue
			}
			used[i] = true
			seq = append(seq, pool[i])
			rec()
			seq = seq[:len(seq)-1]
			used[i] = false
		}
	}
	rec()
	return best
}
