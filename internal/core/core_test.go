package core

import (
	"math"
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

// planner builds a Planner over a ready-made network.
func planner(t *testing.T, net *topology.Network) *Planner {
	t.Helper()
	tr, err := mtree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(tr, route.Build(net))
}

func TestCandidatesChain(t *testing.T) {
	// S — r1 — r2 — r3 — tail, clients also at r1 and r2.
	net, err := topology.Chain(3, 1.0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := planner(t, net)
	tail := net.Clients[0]
	c1 := net.Clients[1] // at r1 (meet depth 1 with tail)
	c2 := net.Clients[2] // at r2 (meet depth 2 with tail)
	cands := p.Candidates(tail)
	if len(cands) != 2 {
		t.Fatalf("tail candidates %d, want 2", len(cands))
	}
	// Descending DS: c2 (DS=2) then c1 (DS=1).
	if cands[0].Peer != c2 || cands[0].DS != 2 {
		t.Fatalf("first candidate %+v, want peer %d DS 2", cands[0], c2)
	}
	if cands[1].Peer != c1 || cands[1].DS != 1 {
		t.Fatalf("second candidate %+v, want peer %d DS 1", cands[1], c1)
	}
	// RTTs: tail↔c2 = 2·(2 links) = ... tail is at depth 4 (r3+host),
	// c2 at depth 3. Path tail-r3-r2-c2: 3 links, delay 3, RTT 6.
	if math.Abs(cands[0].RTT-6) > 1e-9 {
		t.Fatalf("c2 RTT %v, want 6", cands[0].RTT)
	}
}

func TestCandidatesStarCompetitive(t *testing.T) {
	// All clients meet every other at the hub: one equivalence class.
	net, err := topology.Star(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p := planner(t, net)
	u := net.Clients[0]
	cands := p.Candidates(u)
	if len(cands) != 1 {
		t.Fatalf("star should yield 1 candidate class, got %d", len(cands))
	}
	if cands[0].DS != 1 {
		t.Fatalf("hub meet depth %d, want 1", cands[0].DS)
	}
	// Deterministic tie-break: equal RTTs (all 4.0) → lowest node ID.
	wantPeer := net.Clients[1]
	for _, c := range net.Clients[1:] {
		if c < wantPeer {
			wantPeer = c
		}
	}
	if cands[0].Peer != wantPeer {
		t.Fatalf("tie-break picked %d, want %d", cands[0].Peer, wantPeer)
	}
}

func TestCandidatesExcludeSelfAndAreDescending(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(seed))
		p := planner(t, net)
		for _, u := range net.Clients {
			cands := p.Candidates(u)
			prev := int32(1 << 30)
			seen := map[graph.NodeID]bool{}
			for _, c := range cands {
				if c.Peer == u {
					t.Fatal("candidate list contains the client itself")
				}
				if c.DS >= prev {
					t.Fatalf("candidates not strictly descending: %d then %d", prev, c.DS)
				}
				prev = c.DS
				if seen[c.Meet] {
					t.Fatal("duplicate equivalence class in candidates")
				}
				seen[c.Meet] = true
				if c.DS != p.Tree.Depth[c.Meet] {
					t.Fatal("DS inconsistent with meet depth")
				}
				if c.DS >= p.Tree.Depth[u] {
					t.Fatalf("meet depth %d not below client depth %d", c.DS, p.Tree.Depth[u])
				}
			}
		}
	}
}

func TestCandidatesPanicsOnNonClient(t *testing.T) {
	net, _ := topology.Star(2, 1)
	p := planner(t, net)
	defer func() {
		if recover() == nil {
			t.Fatal("Candidates(source) did not panic")
		}
	}()
	p.Candidates(net.Source)
}

func TestStrategyForChainPrefersUpstreamPeer(t *testing.T) {
	// The source sits behind a 20 ms link while two peers are 3 ms away:
	// the optimal strategy must try the deep-meeting nearby peer before
	// falling back to the distant source.
	b := topology.NewBuilder()
	s := b.Source()
	r1, r2, r3 := b.Router(), b.Router(), b.Router()
	b.TreeLink(s, r1, 20)
	b.TreeLink(r1, r2, 1)
	b.TreeLink(r2, r3, 1)
	tail := b.Client()
	b.TreeLink(r3, tail, 1)
	p2 := b.Client() // meets tail at r2 (DS=2)
	b.TreeLink(r2, p2, 1)
	p1 := b.Client() // meets tail at r1 (DS=1)
	b.TreeLink(r1, p1, 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := planner(t, net)
	st := p.StrategyFor(tail)
	if len(st.Peers) == 0 {
		t.Fatal("distant-source topology should use at least one peer")
	}
	// Hand computation (dsU=4, srcRTT=46, β=3):
	//   [p2]      : ½·6+½·18 + ½·46            = 35
	//   [p1]      : ¾·8+¼·24 + ¼·46            = 23.5   ← optimum
	//   [p2,p1]   : 12 + ½(½·8+½·24) + ¼·46    = 31.5
	// p1's low failure probability (DS 1 vs 2) beats p2's lower RTT.
	if st.Peers[0].Peer != p1 || len(st.Peers) != 1 {
		t.Fatalf("strategy %v, want single peer %d", st.Peers, p1)
	}
	if math.Abs(st.ExpectedDelay-23.5) > 1e-9 {
		t.Fatalf("expected delay %v, want 23.5", st.ExpectedDelay)
	}
	_ = p2
	// The strategy's stored delay must equal its independent evaluation.
	if math.Abs(st.ExpectedDelay-st.Evaluate()) > 1e-9 {
		t.Fatalf("stored delay %v != evaluated %v", st.ExpectedDelay, st.Evaluate())
	}
	// And it must beat going straight to the source.
	if st.ExpectedDelay >= st.SourceRTT {
		t.Fatalf("strategy (%v) no better than direct source (%v)",
			st.ExpectedDelay, st.SourceRTT)
	}
}

func TestStrategyNoCandidates(t *testing.T) {
	// Single client: no peers exist; strategy must be the direct source.
	b := topology.NewBuilder()
	s := b.Source()
	r := b.Router()
	c := b.Client()
	b.TreeLink(s, r, 2)
	b.TreeLink(r, c, 2)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := planner(t, net)
	st := p.StrategyFor(c)
	if len(st.Peers) != 0 {
		t.Fatalf("lone client got peers: %v", st.Peers)
	}
	if math.Abs(st.ExpectedDelay-8) > 1e-9 { // RTT = 2·(2+2)
		t.Fatalf("lone client delay %v, want 8", st.ExpectedDelay)
	}
}

func TestRestrictedStrategyAvoidsDirectSource(t *testing.T) {
	net, err := topology.Chain(3, 1.0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := planner(t, net)
	p.AllowDirectSource = false
	tail := net.Clients[0]
	st := p.StrategyFor(tail)
	if len(st.Peers) == 0 {
		t.Fatal("restricted strategy should pass through a peer")
	}
	// Restricted optimum can only be ≥ the unrestricted one.
	p2 := planner(t, net)
	un := p2.StrategyFor(tail)
	if st.ExpectedDelay < un.ExpectedDelay-1e-9 {
		t.Fatal("restricted strategy beat the unrestricted optimum")
	}
}

func TestRestrictedFallsBackWhenNoCandidates(t *testing.T) {
	b := topology.NewBuilder()
	s := b.Source()
	r := b.Router()
	c := b.Client()
	b.TreeLink(s, r, 1)
	b.TreeLink(r, c, 1)
	net, _ := b.Build()
	p := planner(t, net)
	p.AllowDirectSource = false
	st := p.StrategyFor(c)
	if len(st.Peers) != 0 || st.ExpectedDelay != st.SourceRTT {
		t.Fatalf("restricted lone client should fall back to source: %+v", st)
	}
}

func TestAllCoversEveryClient(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(60), rng.New(4))
	p := planner(t, net)
	all := p.All()
	if len(all) != len(net.Clients) {
		t.Fatalf("All() returned %d strategies for %d clients", len(all), len(net.Clients))
	}
	for _, u := range net.Clients {
		st, ok := all[u]
		if !ok || st.Client != u {
			t.Fatalf("missing/mislabelled strategy for %d", u)
		}
	}
}

func TestStrategyString(t *testing.T) {
	net, _ := topology.Star(3, 1)
	p := planner(t, net)
	s := p.StrategyFor(net.Clients[0]).String()
	if len(s) == 0 {
		t.Fatal("empty strategy string")
	}
}

func TestDefaultTimeoutPolicyApplied(t *testing.T) {
	net, _ := topology.Star(3, 1)
	tr := mtree.MustBuild(net)
	p := &Planner{Tree: tr, Routes: route.Build(net), AllowDirectSource: true} // nil Timeout
	cands := p.Candidates(net.Clients[0])
	for _, c := range cands {
		if math.Abs(c.Timeout-3*c.RTT) > 1e-9 {
			t.Fatalf("default timeout %v, want 3·rtt=%v", c.Timeout, 3*c.RTT)
		}
	}
}

func TestFixedTimeoutPropagates(t *testing.T) {
	net, _ := topology.Chain(3, 1, []int{1})
	tr := mtree.MustBuild(net)
	p := &Planner{Tree: tr, Routes: route.Build(net), Timeout: FixedTimeout(500), AllowDirectSource: true}
	st := p.StrategyFor(net.Clients[0])
	for _, c := range st.Peers {
		if c.Timeout != 500 {
			t.Fatalf("fixed timeout not applied: %v", c.Timeout)
		}
	}
	if st.SourceTimeout != 500 {
		t.Fatal("fixed timeout not applied to source attempt")
	}
}
