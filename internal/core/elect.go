package core

import (
	"slices"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
)

// Electorate is the deterministic RP-election index used by the failover
// layer (rpproto): over the currently-active client set it answers "who is
// the best coordinator candidate" in O(1), and absorbs churn (a candidate
// declared dead, an ex-RP re-admitted) in O(depth).
//
// The metric is the Algorithm-1 class ranking read at the tree root: the
// active client with the smallest (DelayFromRoot, peer ID) key. That is
// exactly the client every Algorithm-1 strategy would rank first within the
// root's competitive class — the natural meet-router surrogate — and it is
// already what the byKey tree aggregate (treeagg.go) maintains per node, so
// Best is a single slot read and Leave/Join reuse setActive's root-path
// repair. Because the ranking is a pure function of (tree, active set),
// every survivor that evaluates it over the same view computes the same
// winner: election needs no agreement round, only a shared deterministic
// rule (the epoch fence arbitrates the views that do diverge).
type Electorate struct {
	t   *mtree.Tree
	agg *treeAgg
}

// NewElectorate builds the index with every tree client an active candidate.
func NewElectorate(t *mtree.Tree) *Electorate {
	return &Electorate{t: t, agg: newTreeAgg(t)}
}

// Active reports whether v is currently a candidate.
func (e *Electorate) Active(v graph.NodeID) bool {
	return int(v) >= 0 && int(v) < len(e.agg.active) && e.agg.active[v]
}

// Leave withdraws a candidate (idempotent): O(depth) aggregate repair.
func (e *Electorate) Leave(v graph.NodeID) { e.agg.setActive(v, false) }

// Join re-admits a candidate (idempotent): O(depth) aggregate repair.
func (e *Electorate) Join(v graph.NodeID) { e.agg.setActive(v, true) }

// Best returns the active client with the smallest (DelayFromRoot, peer ID)
// key, or graph.None when no candidate remains. O(1): the root's aggregate
// summarises the whole tree.
func (e *Electorate) Best() graph.NodeID {
	return e.agg.byKey[e.t.Root][0].peer
}

// ElectionOrder returns every client of the tree sorted by the Electorate's
// metric — the full deterministic succession line, with ElectionOrder(t)[0]
// == NewElectorate(t).Best(). The churn driver uses it to aim crash waves at
// successive expected winners; tests pin the agreement with Electorate.
func ElectionOrder(t *mtree.Tree) []graph.NodeID {
	order := slices.Clone(t.Clients)
	slices.SortFunc(order, func(a, b graph.NodeID) int {
		da, db := t.DelayFromRoot[a], t.DelayFromRoot[b]
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	return order
}
