package core

import (
	"math"
	"testing"

	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/route"
	"rmcast/internal/topology"
)

func TestCondLossProbQReducesToPaperModel(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		ds := int32(r.Intn(10))
		prefix := int32(1 + r.Intn(10))
		priv := int32(r.Intn(8))
		if got, want := CondLossProbQ(ds, prefix, priv, 1), CondLossProb(ds, prefix); got != want {
			t.Fatalf("q=1 mismatch: %v vs %v", got, want)
		}
	}
}

func TestCondLossProbQHandExample(t *testing.T) {
	// shared = 2/4 = .5; private loss = 1 - 0.9² = 0.19;
	// total = .5 + .5·0.19 = 0.595.
	got := CondLossProbQ(2, 4, 2, 0.9)
	if math.Abs(got-0.595) > 1e-12 {
		t.Fatalf("got %v, want 0.595", got)
	}
	if CondLossProbQ(2, 4, 3, 0) != 1 {
		t.Fatal("q=0 with private links should be certain loss")
	}
	if CondLossProbQ(2, 4, 0, 0.5) != 0.5 {
		t.Fatal("no private links: q must not matter")
	}
}

func TestEvalAnyQReducesToEvalAny(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		dsU := int32(2 + r.Intn(12))
		n := r.Intn(5)
		list := make([]AttemptRef, n)
		for i := range list {
			list[i] = AttemptRef{
				DS:      int32(r.Intn(int(dsU))),
				RTT:     r.Uniform(1, 50),
				Timeout: r.Uniform(10, 150),
				Priv:    int32(r.Intn(6)),
			}
		}
		src := r.Uniform(20, 200)
		a := EvalAny(list, dsU, src)
		b := EvalAnyQ(list, dsU, src, 1)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("EvalAnyQ(q=1) %v != EvalAny %v", b, a)
		}
	}
}

func TestEvalAnyQMonotoneInQ(t *testing.T) {
	// With timeouts above RTTs, lower survival can only raise expected
	// delay.
	list := []AttemptRef{
		{DS: 3, RTT: 10, Timeout: 30, Priv: 4},
		{DS: 1, RTT: 20, Timeout: 60, Priv: 2},
	}
	prev := math.Inf(1)
	for _, q := range []float64{0.5, 0.7, 0.9, 0.99, 1} {
		v := EvalAnyQ(list, 6, 100, q)
		if v > prev+1e-12 {
			t.Fatalf("expected delay not non-increasing in q: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
	lo := EvalAnyQ(list, 6, 100, 0.5)
	hi := EvalAnyQ(list, 6, 100, 1)
	if lo <= hi {
		t.Fatalf("q=0.5 (%v) should cost more than q=1 (%v)", lo, hi)
	}
}

func TestOptimalDPMatchesAlgorithm1AtQ1(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 300; trial++ {
		sg := syntheticGraph(r, 12, trial%2 == 0)
		// Give candidates private tails (ignored at q=1).
		for i := range sg.Candidates {
			sg.Candidates[i].Priv = int32(r.Intn(6))
		}
		dp := sg.OptimalDP(1)
		a1 := sg.Algorithm1()
		if math.Abs(dp.ExpectedDelay-a1.ExpectedDelay) > 1e-9 {
			t.Fatalf("trial %d: DP %v != Algorithm1 %v", trial,
				dp.ExpectedDelay, a1.ExpectedDelay)
		}
		if len(dp.Peers) != len(a1.Peers) {
			t.Fatalf("trial %d: DP list %v != Algorithm1 list %v",
				trial, dp.Peers, a1.Peers)
		}
	}
}

// bruteForceQ enumerates all ordered subsets of the candidates (preserving
// descending-DS order) under EvalAnyQ.
func bruteForceQ(cands []Candidate, dsU int32, srcRTT, q float64) float64 {
	n := len(cands)
	best := math.Inf(1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var list []AttemptRef
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c := cands[i]
				list = append(list, AttemptRef{DS: c.DS, RTT: c.RTT, Timeout: c.Timeout, Priv: c.Priv})
			}
		}
		if v := EvalAnyQ(list, dsU, srcRTT, q); v < best {
			best = v
		}
	}
	return best
}

func TestOptimalDPMatchesBruteForceUnderQ(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		sg := syntheticGraph(r, 9, true)
		for i := range sg.Candidates {
			sg.Candidates[i].Priv = int32(r.Intn(8))
		}
		q := r.Uniform(0.7, 1)
		dp := sg.OptimalDP(q)
		want := bruteForceQ(sg.Candidates, sg.ClientDepth, sg.SourceRTT, q)
		if math.Abs(dp.ExpectedDelay-want) > 1e-9 {
			t.Fatalf("trial %d: DP %v != brute force %v (q=%v)",
				trial, dp.ExpectedDelay, want, q)
		}
		// The DP's stored delay must agree with independent evaluation.
		if ev := dp.EvaluateQ(q); math.Abs(ev-dp.ExpectedDelay) > 1e-9 {
			t.Fatalf("trial %d: stored %v != EvaluateQ %v", trial, dp.ExpectedDelay, ev)
		}
	}
}

func TestOptimalDPRestrictedUsesPeerFirst(t *testing.T) {
	r := rng.New(5)
	found := 0
	for trial := 0; trial < 100 && found < 20; trial++ {
		sg := syntheticGraph(r, 8, false) // restricted
		if len(sg.Candidates) == 0 {
			continue
		}
		found++
		dp := sg.OptimalDP(0.95)
		if len(dp.Peers) == 0 {
			t.Fatalf("restricted DP went straight to source with %d candidates",
				len(sg.Candidates))
		}
	}
	if found == 0 {
		t.Fatal("no instances with candidates generated")
	}
}

func TestLossAwarePlannerDropsRiskyPeers(t *testing.T) {
	// The peer sits behind a long private chain below the meet router:
	// under the paper model it looks attractive (deep meet, modest RTT);
	// under the loss-aware model its private path makes it a bad bet.
	b := topology.NewBuilder()
	src := b.Source()
	r1, r2 := b.Router(), b.Router()
	b.TreeLink(src, r1, 12)
	b.TreeLink(r1, r2, 1)
	u := b.Client()
	b.TreeLink(r2, u, 1)
	// Peer behind 8 private links below r2.
	prev := r2
	for i := 0; i < 8; i++ {
		rr := b.Router()
		b.TreeLink(prev, rr, 0.2)
		prev = rr
	}
	v := b.Client()
	b.TreeLink(prev, v, 0.2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.SetUniformLoss(0.15)
	tree := mtree.MustBuild(topo)
	rt := route.Build(topo)

	paper := NewPlanner(tree, rt)
	stPaper := paper.StrategyFor(u)

	aware := NewPlanner(tree, rt)
	aware.LossProb = 0.15
	stAware := aware.StrategyFor(u)

	if len(stPaper.Peers) == 0 {
		t.Skip("paper model already rejects the peer on this geometry")
	}
	if len(stAware.Peers) != 0 {
		t.Fatalf("loss-aware planner kept the risky peer: %v", stAware.Peers)
	}
}

func TestPlannerLossProbEndToEnd(t *testing.T) {
	net := topology.MustGenerate(topology.DefaultConfig(80), rng.New(9))
	tree := mtree.MustBuild(net)
	rt := route.Build(net)
	p := NewPlanner(tree, rt)
	p.LossProb = 0.1
	for _, u := range net.Clients {
		st := p.StrategyFor(u)
		if st.ExpectedDelay <= 0 {
			t.Fatalf("client %d: bad aware strategy %+v", u, st)
		}
		// Aware expectation must be self-consistent.
		if ev := st.EvaluateQ(0.9); math.Abs(ev-st.ExpectedDelay) > 1e-9 {
			t.Fatalf("client %d: stored %v != EvaluateQ %v", u, st.ExpectedDelay, ev)
		}
	}
}
