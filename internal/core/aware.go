package core

import "math"

// This file extends the paper's reliable-network delay model (p² ≈ 0,
// exactly one loss on the S→u path) to independent per-link Bernoulli loss
// with survival q = 1−p per link. The paper explicitly scopes its theory to
// reliable networks (§2.1: "this assumption is required for our theoretical
// work, but not necessary for the application"); at the 5–20% loss rates of
// §5 a peer can also have lost the packet on its own private path below the
// meet router, with probability 1−q^priv, which the single-loss model
// ignores and which makes the unmodified planner over-optimistic about
// peers. The loss-aware model multiplies each peer's success probability by
// its private-path survival and keeps the paper's prefix posterior as a
// Markov approximation (a failed peer updates the loss prefix to its meet
// depth — conservative, because a private failure would leave the prefix
// wider).
//
// Under the loss-aware model the telescoping that turns expected delay into
// additive path length (Eq. 3) breaks, so instead of a DAG shortest path the
// optimum is computed by backward dynamic programming over the candidate
// order — same O(N²), exact for the Markov model, and identical to
// Algorithm 1 at q = 1 (verified by tests).

// CondLossProbQ generalises CondLossProb: the probability that a peer with
// meet depth ds and priv private links below its meet has lost the packet,
// given the loss prefix on u's path is `prefix` links, with per-link
// survival q.
func CondLossProbQ(ds, prefix, priv int32, q float64) float64 {
	shared := CondLossProb(ds, prefix)
	if q >= 1 || priv <= 0 {
		return shared
	}
	if q <= 0 {
		return 1
	}
	privLoss := 1 - math.Pow(q, float64(priv))
	return shared + (1-shared)*privLoss
}

// EvalAnyQ is EvalAny under the loss-aware model with per-link survival q.
// q = 1 reduces exactly to EvalAny.
func EvalAnyQ(list []AttemptRef, dsU int32, srcRTT float64, q float64) float64 {
	if dsU <= 0 {
		return 0
	}
	reach := 1.0
	prefix := dsU
	total := 0.0
	for _, a := range list {
		if reach == 0 {
			break
		}
		pLost := CondLossProbQ(a.DS, prefix, a.Priv, q)
		total += reach * ((1-pLost)*a.RTT + pLost*a.Timeout)
		reach *= pLost
		if a.DS < prefix {
			prefix = a.DS
		}
	}
	total += reach * srcRTT
	return total
}

// OptimalDP computes the minimum-expected-delay strategy under the
// loss-aware model with per-link survival q, by backward induction over the
// descending-DS candidate order:
//
//	W(i) = min( srcRTT·reach-factor handled implicitly,
//	            min_{j>i} (1−pl)·rtt_j + pl·(t0_j + W(j)) )
//
// where pl = CondLossProbQ(DS_j, DS_i, priv_j, q) and W(i) is the expected
// remaining delay given every peer up to and including v_i has failed.
// At q = 1 this is exactly the strategy-graph optimum of Algorithm 1.
func (sg *StrategyGraph) OptimalDP(q float64) *Strategy {
	return sg.optimalDP(q, nil, nil, nil)
}

// optimalDP is OptimalDP with caller-provided scratch buffers and an
// optional Strategy to fill in place (see algorithm1); nil buffers allocate
// fresh ones.
func (sg *StrategyGraph) optimalDP(q float64, W []float64, choice []int, into *Strategy) *Strategy {
	n := len(sg.Candidates)
	// W[i] for i in 1..n is the remaining expected delay after v_i failed;
	// W[0] is the answer (state "only u's loss observed", prefix DS_u).
	if cap(W) < n+1 {
		W = make([]float64, n+1)
	}
	W = W[:n+1]
	if cap(choice) < n+1 {
		choice = make([]int, n+1)
	}
	choice = choice[:n+1] // 0 = go to source; else next candidate index (1-based)
	for i := n; i >= 0; i-- {
		var prefix int32
		if i == 0 {
			prefix = sg.ClientDepth
		} else {
			prefix = sg.Candidates[i-1].DS
		}
		best := sg.SourceRTT // bail out to the source
		bestChoice := 0
		if i == 0 && !sg.AllowDirectSource && n > 0 {
			best = math.Inf(1)
		}
		for j := i + 1; j <= n; j++ {
			c := sg.Candidates[j-1]
			pl := CondLossProbQ(c.DS, prefix, c.Priv, q)
			cost := (1-pl)*c.RTT + pl*(c.Timeout+W[j])
			if cost < best {
				best = cost
				bestChoice = j
			}
		}
		if math.IsInf(best, 1) {
			// Restricted graph with no usable peers: fall back to source.
			best = sg.SourceRTT
			bestChoice = 0
		}
		W[i] = best
		choice[i] = bestChoice
	}
	st := into
	if st == nil {
		st = &Strategy{}
	}
	st.Client = sg.Client
	st.ClientDepth = sg.ClientDepth
	st.Peers = st.Peers[:0]
	st.SourceRTT = sg.SourceRTT
	st.SourceTimeout = sg.SourceTimeout
	st.ExpectedDelay = W[0]
	for i := choice[0]; i != 0; i = choice[i] {
		st.Peers = append(st.Peers, sg.Candidates[i-1])
	}
	return st
}

// EvaluateQ returns the strategy's expected delay under the loss-aware
// model with per-link survival q.
func (s *Strategy) EvaluateQ(q float64) float64 {
	return EvalAnyQ(refs(s.Peers), s.ClientDepth, s.SourceRTT, q)
}
