package core

import (
	"testing"

	"rmcast/internal/graph"
	"rmcast/internal/mtree"
	"rmcast/internal/rng"
	"rmcast/internal/topology"
)

// electNet builds a realistic (tree + cross links) network for election
// tests.
func electNet(t testing.TB, routers int, seed uint64) *topology.Network {
	t.Helper()
	cfg := topology.DefaultConfig(routers)
	net, err := topology.Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestElectionOrderAgreesWithBest pins the succession-line contract:
// ElectionOrder's head is exactly the electorate's Best, and after removing
// the head the next entry wins — for every prefix of the line.
func TestElectionOrderAgreesWithBest(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		net := electNet(t, 60, seed)
		tree := mtree.MustBuild(net)
		order := ElectionOrder(tree)
		if len(order) != len(net.Clients) {
			t.Fatalf("seed %d: order covers %d of %d clients", seed, len(order), len(net.Clients))
		}
		e := NewElectorate(tree)
		for i, want := range order {
			if got := e.Best(); got != want {
				t.Fatalf("seed %d: after %d departures Best = %d, order says %d",
					seed, i, got, want)
			}
			e.Leave(want)
		}
		if got := e.Best(); got != graph.None {
			t.Fatalf("seed %d: empty electorate Best = %d, want None", seed, got)
		}
	}
}

// TestElectorateRejoin: a departed candidate that rejoins is eligible again,
// and the winner reverts.
func TestElectorateRejoin(t *testing.T) {
	net := electNet(t, 40, 3)
	tree := mtree.MustBuild(net)
	order := ElectionOrder(tree)
	e := NewElectorate(tree)
	e.Leave(order[0])
	if got := e.Best(); got != order[1] {
		t.Fatalf("Best after departure = %d, want %d", got, order[1])
	}
	if e.Active(order[0]) {
		t.Fatal("departed candidate still active")
	}
	e.Join(order[0])
	if !e.Active(order[0]) {
		t.Fatal("rejoined candidate not active")
	}
	if got := e.Best(); got != order[0] {
		t.Fatalf("Best after rejoin = %d, want %d", got, order[0])
	}
}

// TestElectorateChurnAgreesWithScan runs random leave/join churn and checks
// the O(depth) electorate against a brute-force scan of the election order
// at every step.
func TestElectorateChurnAgreesWithScan(t *testing.T) {
	net := electNet(t, 60, 11)
	tree := mtree.MustBuild(net)
	order := ElectionOrder(tree)
	e := NewElectorate(tree)
	active := make(map[graph.NodeID]bool, len(order))
	for _, c := range order {
		active[c] = true
	}
	scan := func() graph.NodeID {
		for _, c := range order {
			if active[c] {
				return c
			}
		}
		return graph.None
	}
	r := rng.New(99)
	for step := 0; step < 500; step++ {
		c := order[r.Intn(len(order))]
		if active[c] {
			active[c] = false
			e.Leave(c)
		} else {
			active[c] = true
			e.Join(c)
		}
		if got, want := e.Best(), scan(); got != want {
			t.Fatalf("step %d: Best = %d, scan says %d", step, got, want)
		}
	}
}
