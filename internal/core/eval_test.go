package core

import (
	"math"
	"testing"

	"rmcast/internal/rng"
)

func TestCondLossProbLemmaValues(t *testing.T) {
	// Lemma 1: P(v̄_i | Ū v̄_1…v̄_{i-1}) = DS_i / DS_{i-1}.
	cases := []struct {
		ds, prefix int32
		want       float64
	}{
		{2, 4, 0.5},
		{1, 4, 0.25},
		{0, 4, 0},  // meet at source ⇒ certainly has the packet
		{4, 4, 1},  // Lemma 2: same class as a failed peer ⇒ certainly lost
		{5, 4, 1},  // meet above the current prefix ⇒ certainly lost
		{3, 0, 0},  // degenerate prefix
		{-1, 4, 0}, // clamped
	}
	for _, c := range cases {
		if got := CondLossProb(c.ds, c.prefix); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("CondLossProb(%d,%d) = %v, want %v", c.ds, c.prefix, got, c.want)
		}
	}
}

func TestEvalAnyEmptyList(t *testing.T) {
	// No peers: expected delay is the certain source RTT.
	if d := EvalAny(nil, 7, 42.5); d != 42.5 {
		t.Fatalf("empty list delay %v, want 42.5", d)
	}
}

func TestEvalAnyZeroDepthClient(t *testing.T) {
	if d := EvalAny(nil, 0, 10); d != 0 {
		t.Fatalf("degenerate depth should evaluate to 0, got %v", d)
	}
}

func TestEvalAnyHandExample(t *testing.T) {
	// dsU = 4, single peer with DS=2, rtt=10, timeout=30, srcRTT=100.
	// P(peer lost | u lost) = 2/4 = 0.5.
	// E = 0.5·10 + 0.5·30 + 0.5·100 = 5 + 15 + 50 = 70.
	list := []AttemptRef{{DS: 2, RTT: 10, Timeout: 30}}
	if d := EvalAny(list, 4, 100); math.Abs(d-70) > 1e-12 {
		t.Fatalf("hand example = %v, want 70", d)
	}
}

func TestEvalAnyTwoPeersHandExample(t *testing.T) {
	// dsU=4; v1: DS=2, rtt=10, t0=30; v2: DS=1, rtt=20, t0=60; srcRTT=100.
	// Attempt1: P(lost1)=2/4=.5 → cost .5·10+.5·30 = 20.
	// Attempt2 (reach .5, prefix 2): P(lost2)=1/2 → cost .5·(.5·20+.5·60)= .5·40=20... wait .5·(0.5·20+0.5·60)=.5·40=20.
	// Source (reach .5·.5=.25): .25·100 = 25. Total 20+20+25 = 65.
	list := []AttemptRef{
		{DS: 2, RTT: 10, Timeout: 30},
		{DS: 1, RTT: 20, Timeout: 60},
	}
	if d := EvalAny(list, 4, 100); math.Abs(d-65) > 1e-12 {
		t.Fatalf("two-peer example = %v, want 65", d)
	}
}

func TestEvalAnyCompetitiveDuplicateIsPureLoss(t *testing.T) {
	// Lemma 4: adding a second member of the same class can only add its
	// timeout, weighted by the reach probability.
	base := []AttemptRef{{DS: 2, RTT: 10, Timeout: 30}}
	dup := []AttemptRef{
		{DS: 2, RTT: 10, Timeout: 30},
		{DS: 2, RTT: 8, Timeout: 25}, // same class: conditional success 0
	}
	d0 := EvalAny(base, 4, 100)
	d1 := EvalAny(dup, 4, 100)
	// The duplicate is reached with prob 0.5 and always times out (+25·0.5).
	if math.Abs(d1-(d0+0.5*25)) > 1e-12 {
		t.Fatalf("duplicate accounting wrong: %v vs %v", d1, d0+12.5)
	}
	if d1 <= d0 {
		t.Fatal("Lemma 4 violated: duplicate helped")
	}
}

func TestEvalAnyNonDescendingEntryIsPureLoss(t *testing.T) {
	// Lemma 5: after a peer with DS=1 failed, a peer with DS=3 is surely
	// lost too; asking it only burns its timeout.
	good := []AttemptRef{{DS: 1, RTT: 10, Timeout: 30}}
	bad := []AttemptRef{
		{DS: 1, RTT: 10, Timeout: 30},
		{DS: 3, RTT: 5, Timeout: 20},
	}
	d0 := EvalAny(good, 4, 100)
	d1 := EvalAny(bad, 4, 100)
	if d1 <= d0 {
		t.Fatal("Lemma 5 violated: stale high-DS peer helped")
	}
}

func TestEvalMeaningfulMatchesEvalAny(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 500; trial++ {
		dsU := int32(2 + r.Intn(20))
		// Random strictly descending DS list below dsU.
		var list []AttemptRef
		ds := dsU
		for ds > 0 && r.Float64() < 0.7 {
			ds = int32(r.Intn(int(ds))) // strictly below previous
			list = append(list, AttemptRef{
				DS:      ds,
				RTT:     r.Uniform(1, 50),
				Timeout: r.Uniform(10, 200),
			})
			if ds == 0 {
				break
			}
		}
		srcRTT := r.Uniform(20, 300)
		a := EvalAny(list, dsU, srcRTT)
		m := EvalMeaningful(list, dsU, srcRTT)
		if math.Abs(a-m) > 1e-9*(1+math.Abs(a)) {
			t.Fatalf("trial %d: EvalAny %v != EvalMeaningful %v (dsU=%d list=%v)",
				trial, a, m, dsU, list)
		}
	}
}

func TestEvalMeaningfulPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-descending list accepted")
		}
	}()
	EvalMeaningful([]AttemptRef{{DS: 1}, {DS: 2}}, 4, 10)
}

// TestEvalAnyMatchesMonteCarlo validates the evaluator against a direct
// simulation of the single-loss model: the loss link is uniform on the DS_u
// links of the S→u path; a peer with meet depth DS has the packet iff the
// loss lies strictly below its shared prefix.
func TestEvalAnyMatchesMonteCarlo(t *testing.T) {
	r := rng.New(555)
	for trial := 0; trial < 20; trial++ {
		dsU := int32(3 + r.Intn(10))
		nPeers := 1 + r.Intn(4)
		list := make([]AttemptRef, nPeers)
		for i := range list {
			list[i] = AttemptRef{
				DS:      int32(r.Intn(int(dsU))),
				RTT:     r.Uniform(1, 50),
				Timeout: r.Uniform(10, 100),
			}
		}
		srcRTT := r.Uniform(20, 200)
		want := EvalAny(list, dsU, srcRTT)

		const samples = 200000
		var sum float64
		for s := 0; s < samples; s++ {
			lossLink := int32(1 + r.Intn(int(dsU))) // 1-based depth of lost link
			var cost float64
			recovered := false
			for _, a := range list {
				if a.DS < lossLink { // peer's shared prefix excludes the loss
					cost += a.RTT
					recovered = true
					break
				}
				cost += a.Timeout
			}
			if !recovered {
				cost += srcRTT
			}
			sum += cost
		}
		got := sum / samples
		// Monte-Carlo tolerance: generous but tight enough to catch model
		// errors (which produce O(1) deviations).
		if math.Abs(got-want) > 0.02*(1+math.Abs(want)) {
			t.Fatalf("trial %d: MC %v vs analytic %v (dsU=%d, list=%v)",
				trial, got, want, dsU, list)
		}
	}
}

func TestTimeoutPolicies(t *testing.T) {
	if FixedTimeout(120).Timeout(5) != 120 {
		t.Fatal("FixedTimeout wrong")
	}
	if ProportionalTimeout(3).Timeout(5) != 15 {
		t.Fatal("ProportionalTimeout wrong")
	}
}
